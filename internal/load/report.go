package load

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// kneeFrac is the sustained-throughput criterion: a rate step "holds" when
// goodput (plus separately-accounted degraded answers) reaches this
// fraction of the offered rate. The knee is the last step that holds; past
// it the server is saturated — offered load queues or sheds instead of
// completing.
const kneeFrac = 0.90

// holds reports whether the step sustained its offered rate.
func holds(r Result) bool {
	if r.Invalid > 0 {
		return false // contract violations disqualify a step outright
	}
	return (r.Goodput() + degradedRate(r)) >= kneeFrac*r.RateHz
}

func degradedRate(r Result) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Degraded) / r.Elapsed.Seconds()
}

// Knee returns the index of the last rate step that sustained its offered
// rate, and false when even the first step saturated.
func Knee(steps []Result) (int, bool) {
	knee, ok := -1, false
	for i, s := range steps {
		if holds(s) {
			knee, ok = i, true
		}
	}
	return knee, ok
}

// WriteReport renders the sweep as a fixed-width table with the knee
// marked, the shape the docs/perf.md "Load testing" section explains.
func WriteReport(w io.Writer, steps []Result) error {
	if _, err := fmt.Fprintf(w, "%-6s %-5s %-6s %8s %8s %8s %6s %6s %6s %9s %9s %9s %10s %6s\n",
		"plane", "mode", "rate", "offered", "valid", "degr", "shed", "inval", "errs",
		"p50", "p99", "p999", "goodput/s", "knee"); err != nil {
		return err
	}
	kneeIdx, _ := Knee(steps)
	for i, s := range steps {
		mark := ""
		if i == kneeIdx {
			mark = "<-- knee"
		} else if !holds(s) {
			mark = "sat"
		}
		if _, err := fmt.Fprintf(w, "%-6s %-5s %6.0f %8d %8d %8d %6d %6d %6d %9s %9s %9s %10.1f %6s\n",
			s.Plane, s.Mode, s.RateHz, s.Offered, s.Valid, s.Degraded, s.Shed, s.Invalid, s.Errors,
			fmtLat(s.Latency.Quantile(0.5)), fmtLat(s.Latency.Quantile(0.99)), fmtLat(s.Latency.Quantile(0.999)),
			s.Goodput(), mark); err != nil {
			return err
		}
		if s.FirstViolation != "" {
			if _, err := fmt.Fprintf(w, "       first violation: %s\n", s.FirstViolation); err != nil {
				return err
			}
		}
	}
	return nil
}

func fmtLat(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// BenchRow is one -json export row, shaped to pair with ecobench exports
// under cmd/benchdiff: the shared (fig, dataset, method, config) key,
// ft_ms carrying the p99 latency, sc_pct carrying the valid-answer share,
// plus the load-specific columns benchdiff's goodput gate reads.
type BenchRow struct {
	Fig     string  `json:"fig"`
	Dataset string  `json:"dataset"`
	Method  string  `json:"method"`
	Config  string  `json:"config"`
	SCPct   float64 `json:"sc_pct"` // valid 200s as % of sent
	FtMs    float64 `json:"ft_ms"`  // p99 latency in ms

	Goodput  float64 `json:"goodput"` // valid 200s per second
	P50Ms    float64 `json:"p50_ms"`
	P999Ms   float64 `json:"p999_ms"`
	ShedPct  float64 `json:"shed_pct"`
	Offered  int     `json:"offered"`
	Degraded int     `json:"degraded"`
	Invalid  int     `json:"invalid"`
	Errors   int     `json:"errors"`
}

// BenchRows converts a sweep into benchdiff-comparable rows, one per rate
// step, keyed fig="load-knee", method="<target>-<plane>",
// config="rate=<hz>".
func BenchRows(dataset, target string, steps []Result) []BenchRow {
	rows := make([]BenchRow, 0, len(steps))
	for _, s := range steps {
		validPct := 0.0
		if s.Sent > 0 {
			validPct = float64(s.Valid) / float64(s.Sent) * 100
		}
		rows = append(rows, BenchRow{
			Fig:     "load-knee",
			Dataset: dataset,
			Method:  fmt.Sprintf("%s-%s", target, s.Plane),
			Config:  fmt.Sprintf("rate=%.0f", s.RateHz),
			SCPct:   validPct,
			FtMs:    float64(s.Latency.Quantile(0.99)) / float64(time.Millisecond),

			Goodput:  s.Goodput(),
			P50Ms:    float64(s.Latency.Quantile(0.5)) / float64(time.Millisecond),
			P999Ms:   float64(s.Latency.Quantile(0.999)) / float64(time.Millisecond),
			ShedPct:  s.ShedRate() * 100,
			Offered:  s.Offered,
			Degraded: s.Degraded,
			Invalid:  s.Invalid,
			Errors:   s.Errors,
		})
	}
	return rows
}

// WriteJSONRows exports rows in the array form benchdiff reads.
func WriteJSONRows(w io.Writer, rows []BenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

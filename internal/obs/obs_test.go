package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden exposition file")

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("counter lookup is not idempotent")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	// Nil registry hands out discarding handles.
	var nilReg *Registry
	nc := nilReg.Counter("x")
	nc.Inc()
	nc.Add(7)
	if nc.Value() != 0 {
		t.Fatal("nil counter retained a value")
	}
	ng := nilReg.Gauge("x")
	ng.Set(3)
	if ng.Value() != 0 {
		t.Fatal("nil gauge retained a value")
	}
	nh := nilReg.Histogram("x", nil)
	nh.Observe(1)
	nh.Since(time.Now())
	if nh.Count() != 0 || nh.Sum() != 0 {
		t.Fatal("nil histogram retained observations")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Cumulative buckets: ≤0.01 holds two (0.005 and the boundary 0.01),
	// ≤0.1 adds 0.05, ≤1 adds 0.5, +Inf adds 5.
	want := []uint64{2, 3, 4, 5}
	got := h.snapshotBuckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative buckets = %v, want %v", got, want)
		}
	}
	h.Observe(0.2)
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 7 {
		t.Fatalf("count after duration observe = %d, want 7", h.Count())
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := newHistogram([]float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got, want := h.Sum(), 4000.0; got != want {
		t.Fatalf("sum = %v, want %v (CAS loop lost updates)", got, want)
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(3)
	r.Gauge("entries").Set(11)
	r.Histogram("lat", []float64{1}).Observe(0.5)

	before := r.Snapshot()
	if before["hits_total"] != 3 || before["entries"] != 11 ||
		before["lat_count"] != 1 || before["lat_sum"] != 0.5 {
		t.Fatalf("snapshot = %v", before)
	}
	r.Counter("hits_total").Add(2)
	r.Gauge("entries").Set(4)
	delta := DeltaSnapshot(before, r.Snapshot())
	if delta["hits_total"] != 2 {
		t.Fatalf("delta hits = %v", delta["hits_total"])
	}
	if delta["entries"] != -7 {
		t.Fatalf("delta entries = %v", delta["entries"])
	}
	if _, ok := delta["lat_count"]; ok {
		t.Fatal("unchanged metric leaked into the delta")
	}
}

// TestWriteTextGolden pins the /metrics exposition format byte-for-byte:
// the EIS serves exactly this shape and external scrapers depend on it.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cknn_cache_hits_total").Add(42)
	r.Counter("cknn_cache_misses_total").Add(7)
	r.Gauge("eis_rescache_entries").Set(13)
	h := r.Histogram("eis_http_seconds_offering", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(0.02)
	h.Observe(3)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/obs -update` to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

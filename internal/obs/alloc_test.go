package obs

import (
	"testing"
	"time"
)

// TestMetricUpdatesZeroAlloc is the hot-path discipline gate of the
// acceptance criteria: every metric update the ranking loops perform —
// counter, gauge and histogram, live or disabled — must be allocation
// free, proven the same way the flat kernel proves its steady state.
func TestMetricUpdatesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the no-race CI lane runs this")
	}
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_seconds", nil)
	var nilReg *Registry
	nc := nilReg.Counter("x")
	ng := nilReg.Gauge("x")
	nh := nilReg.Histogram("x", nil)
	start := time.Now()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(0.004) }},
		{"Histogram.Since", func() { h.Since(start) }},
		{"nil.Counter.Inc", func() { nc.Inc() }},
		{"nil.Gauge.Set", func() { ng.Set(1) }},
		{"nil.Histogram.Observe", func() { nh.Observe(0.004) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

package ecocharge

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart shows: build a world, rank, run a trip, compute split points.
func TestFacadeEndToEnd(t *testing.T) {
	graph := GenerateUrban(UrbanConfig{
		Origin:  Point{Lat: 53.1, Lon: 8.2},
		WidthKM: 6, HeightKM: 5, SpacingM: 500,
		RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 4, Seed: 7,
	})
	solar := NewSolarModel(1)
	avail := NewAvailabilityModel(2)
	traffic := NewTrafficModel(3)
	chargers, err := GenerateChargers(graph, avail, ChargerGenConfig{N: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(graph, chargers, solar, avail, traffic, EnvConfig{RadiusM: 10000})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Date(2024, 6, 18, 11, 0, 0, 0, time.UTC)
	here := graph.Bounds().Center()
	node := graph.NearestNode(here)
	q := Query{Anchor: here, AnchorNode: node, ReturnNode: node, Now: now, ETABase: now, K: 3, RadiusM: 10000}

	for _, m := range []Method{
		NewEcoCharge(env, Options{RadiusM: 10000, ReuseDistM: 2000}),
		NewBruteForce(env),
		NewIndexQuadtree(env),
		NewRandom(env, 9),
	} {
		table := m.Rank(q)
		if len(table.Entries) == 0 {
			t.Fatalf("%s: empty table", m.Name())
		}
	}

	trips, err := GenerateTrips(graph, TripGenConfig{
		N: 1, Seed: 5, MinTripKM: 4, MaxTripKM: 8, Start: now, Window: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	method := NewEcoCharge(env, Options{RadiusM: 10000, ReuseDistM: 2000})
	results := RunTrip(env, method, trips[0], TripOptions{K: 3, SegmentLenM: 2000, RadiusM: 10000})
	if len(results) == 0 {
		t.Fatal("no segment results")
	}
	sl := SplitList(env, method, trips[0], TripOptions{K: 3, SegmentLenM: 2000, RadiusM: 10000})
	if len(sl) == 0 {
		t.Fatal("empty split list")
	}
	if w := EqualWeights(); w.L+w.A+w.D < 0.999 {
		t.Errorf("EqualWeights = %+v", w)
	}
}

package ec

import (
	"math"
	"time"

	"ecocharge/internal/interval"
)

// Timetable is a Google-Maps-popular-times-style busy histogram: a busy
// fraction in [0,1] per (weekday, hour). Index by [weekday][hour] with
// time.Weekday semantics (Sunday == 0).
type Timetable [7][24]float64

// BusyAt interpolates the busy fraction at time t (local semantics of t are
// the caller's concern; the experiments use UTC throughout).
func (tt *Timetable) BusyAt(t time.Time) float64 {
	day := int(t.Weekday())
	hour := t.Hour()
	frac := float64(t.Minute())/60 + float64(t.Second())/3600
	cur := tt[day][hour]
	nd, nh := day, hour+1
	if nh == 24 {
		nh = 0
		nd = (nd + 1) % 7
	}
	next := tt[nd][nh]
	return cur*(1-frac) + next*frac
}

// AvailabilityModel estimates charger availability A: the probability that
// a plug is free at the ETA. Ground truth is a per-charger timetable
// (generated once, deterministically) plus short-term fluctuation; the
// estimate is an interval widening with the horizon, because the paper's A
// component comes from third-party busy timetables that are themselves
// statistical.
type AvailabilityModel struct {
	Seed int64
	// FluctuationAmp in [0,1] is the amplitude of the short-term deviation
	// from the timetable. Default 0.15.
	FluctuationAmp float64
}

// NewAvailabilityModel returns a model with default fluctuation.
func NewAvailabilityModel(seed int64) *AvailabilityModel {
	return &AvailabilityModel{Seed: seed, FluctuationAmp: 0.15}
}

func (m *AvailabilityModel) amp() float64 {
	if m.FluctuationAmp < 0 || m.FluctuationAmp > 1 {
		return 0.15
	}
	return m.FluctuationAmp
}

// GenerateTimetable builds the deterministic busy histogram for a charger.
// Weekdays carry commute peaks (8–9 h and 17–19 h), weekends a broad midday
// plateau; every charger gets its own perturbation so rankings are not
// degenerate.
func (m *AvailabilityModel) GenerateTimetable(chargerID int64) Timetable {
	var tt Timetable
	for d := 0; d < 7; d++ {
		weekend := d == 0 || d == 6
		for h := 0; h < 24; h++ {
			base := baseBusy(h, weekend)
			jitter := (hashNoise(uint64(m.Seed), uint64(chargerID), uint64(d*100+h)) - 0.5) * 0.3
			v := base + jitter
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			tt[d][h] = v
		}
	}
	return tt
}

func baseBusy(hour int, weekend bool) float64 {
	if weekend {
		// Broad midday plateau centered on 14h.
		return 0.55 * math.Exp(-sq(float64(hour)-14)/18)
	}
	morning := 0.7 * math.Exp(-sq(float64(hour)-8.5)/2.5)
	evening := 0.8 * math.Exp(-sq(float64(hour)-18)/4.5)
	lunch := 0.35 * math.Exp(-sq(float64(hour)-12.5)/2)
	v := morning + evening + lunch
	if v > 1 {
		v = 1
	}
	return v
}

func sq(x float64) float64 { return x * x }

// TruthBusy returns the actual busy fraction of the charger at time t:
// timetable plus the short-term fluctuation process.
func (m *AvailabilityModel) TruthBusy(chargerID int64, tt *Timetable, t time.Time) float64 {
	busy := tt.BusyAt(t)
	fl := (smoothNoise(uint64(m.Seed)^0xabcd, uint64(chargerID), float64(t.Unix())/3600) - 0.5) * 2 * m.amp()
	v := busy + fl
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return v
}

// availabilityError is the interval half-width of the busy estimate at the
// given horizon: timetables are weekly statistics, so even a nowcast keeps
// a floor of uncertainty, and the error saturates quickly compared to
// weather (crowding an hour ahead is already near the statistical floor).
func availabilityError(horizon time.Duration) float64 {
	h := horizon.Hours()
	if h < 0 {
		h = 0
	}
	return math.Min(0.05+0.03*h, 0.20)
}

// ForecastBusy returns the interval estimate of the busy fraction at t for
// an estimate issued at issuedAt, clamped to [0,1] and containing the truth.
func (m *AvailabilityModel) ForecastBusy(chargerID int64, tt *Timetable, t, issuedAt time.Time) interval.I {
	truth := m.TruthBusy(chargerID, tt, t)
	err := availabilityError(t.Sub(issuedAt))
	return interval.New(truth-err, truth+err).Clamp(0, 1)
}

// ForecastAvailability returns the interval estimate of availability
// A = 1 − busy at t. Larger is better, matching how the SC formula
// aggregates it.
func (m *AvailabilityModel) ForecastAvailability(chargerID int64, tt *Timetable, t, issuedAt time.Time) interval.I {
	return m.ForecastBusy(chargerID, tt, t, issuedAt).Complement()
}

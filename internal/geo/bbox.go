package geo

import "math"

// BBox is an axis-aligned bounding box in degrees. Min is the south-west
// corner, Max the north-east corner. Boxes never cross the antimeridian;
// the datasets in this work (Germany, California, Beijing) do not either.
type BBox struct {
	Min, Max Point
}

// NewBBox returns the bounding box of the given points. It panics on an
// empty argument list because a box of nothing has no meaningful value.
func NewBBox(pts ...Point) BBox {
	if len(pts) == 0 {
		panic("geo: NewBBox of no points")
	}
	b := BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the smallest box containing b and p.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.Min.Lat {
		b.Min.Lat = p.Lat
	}
	if p.Lon < b.Min.Lon {
		b.Min.Lon = p.Lon
	}
	if p.Lat > b.Max.Lat {
		b.Max.Lat = p.Lat
	}
	if p.Lon > b.Max.Lon {
		b.Max.Lon = p.Lon
	}
	return b
}

// Union returns the smallest box containing both boxes.
func (b BBox) Union(o BBox) BBox {
	return b.Extend(o.Min).Extend(o.Max)
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.Min.Lat && p.Lat <= b.Max.Lat &&
		p.Lon >= b.Min.Lon && p.Lon <= b.Max.Lon
}

// Intersects reports whether the two boxes overlap (inclusive).
func (b BBox) Intersects(o BBox) bool {
	return b.Min.Lat <= o.Max.Lat && b.Max.Lat >= o.Min.Lat &&
		b.Min.Lon <= o.Max.Lon && b.Max.Lon >= o.Min.Lon
}

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{Lat: (b.Min.Lat + b.Max.Lat) / 2, Lon: (b.Min.Lon + b.Max.Lon) / 2}
}

// Buffer returns the box grown by approximately dist meters on every side.
func (b BBox) Buffer(dist float64) BBox {
	dLat := dist / EarthRadius * 180 / math.Pi
	lat := b.Center().Lat * math.Pi / 180
	cos := math.Cos(lat)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLon := dLat / cos
	return BBox{
		Min: Point{Lat: b.Min.Lat - dLat, Lon: b.Min.Lon - dLon},
		Max: Point{Lat: b.Max.Lat + dLat, Lon: b.Max.Lon + dLon},
	}
}

// DistanceTo returns the planar-approximation distance in meters from p to
// the closest point of the box; zero when p is inside.
func (b BBox) DistanceTo(p Point) float64 {
	q := p
	if q.Lat < b.Min.Lat {
		q.Lat = b.Min.Lat
	} else if q.Lat > b.Max.Lat {
		q.Lat = b.Max.Lat
	}
	if q.Lon < b.Min.Lon {
		q.Lon = b.Min.Lon
	} else if q.Lon > b.Max.Lon {
		q.Lon = b.Max.Lon
	}
	return Distance(p, q)
}

// WidthMeters and HeightMeters report the approximate physical extent of the box.
func (b BBox) WidthMeters() float64 {
	return Distance(Point{Lat: b.Center().Lat, Lon: b.Min.Lon}, Point{Lat: b.Center().Lat, Lon: b.Max.Lon})
}

// HeightMeters reports the approximate north-south extent of the box.
func (b BBox) HeightMeters() float64 {
	return Distance(Point{Lat: b.Min.Lat, Lon: b.Center().Lon}, Point{Lat: b.Max.Lat, Lon: b.Center().Lon})
}

// PointSegmentDistance returns the distance in meters from p to the segment
// ab, plus the fraction t in [0,1] of the projection along ab. It works in
// a local planar frame centered between a and b, which is accurate for the
// few-kilometer segments that trips are split into.
func PointSegmentDistance(p, a, b Point) (dist, t float64) {
	// Local planar coordinates (meters), equirectangular around a.
	latRef := a.Lat * math.Pi / 180
	cos := math.Cos(latRef)
	ax, ay := 0.0, 0.0
	bx := (b.Lon - a.Lon) * math.Pi / 180 * cos * EarthRadius
	by := (b.Lat - a.Lat) * math.Pi / 180 * EarthRadius
	px := (p.Lon - a.Lon) * math.Pi / 180 * cos * EarthRadius
	py := (p.Lat - a.Lat) * math.Pi / 180 * EarthRadius

	dx, dy := bx-ax, by-ay
	segLen2 := dx*dx + dy*dy
	if segLen2 <= 0 {
		return math.Hypot(px-ax, py-ay), 0
	}
	t = ((px-ax)*dx + (py-ay)*dy) / segLen2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	cx, cy := ax+t*dx, ay+t*dy
	return math.Hypot(px-cx, py-cy), t
}

// PolylineLength returns the summed segment lengths of the polyline in meters.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Distance(pts[i-1], pts[i])
	}
	return total
}

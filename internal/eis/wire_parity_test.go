package eis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/fault"
	"ecocharge/internal/wire"
)

// wireGet performs one GET with the binary format negotiated and returns the
// body after asserting the wire content type and an exact Content-Length.
func wireGet(t *testing.T, url string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	return doWire(t, req)
}

func doWire(t *testing.T, req *http.Request) []byte {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d: %.200s", req.Method, req.URL, resp.StatusCode, buf.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsWire(ct) {
		t.Fatalf("%s: negotiated binary but got Content-Type %q", req.URL, ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(buf.Len()) {
		t.Fatalf("%s: Content-Length %s, body is %d bytes", req.URL, cl, buf.Len())
	}
	return buf.Bytes()
}

func jsonGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %.200s", url, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// assertWireEqualsJSON decodes a binary body, re-renders it as JSON with the
// server's framing (Encoder newline), and requires byte equality with the
// JSON body the same endpoint served.
func assertWireEqualsJSON(t *testing.T, label string, jsonBody, wireBody []byte, out interface{}) {
	t.Helper()
	if err := wire.DecodeInto(wireBody, out); err != nil {
		t.Fatalf("%s: decoding binary body: %v", label, err)
	}
	rendered, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	rendered = append(rendered, '\n')
	if !bytes.Equal(jsonBody, rendered) {
		t.Fatalf("%s: binary and JSON planes disagree\njson: %.400s\nwire: %.400s", label, jsonBody, rendered)
	}
}

// TestChaosWireFormatParity drives every wire-capable endpoint through both
// content types under a 30%% source-fault rate: the binary body, decoded and
// re-rendered as JSON, must be byte-identical to the JSON answer — degraded
// bits, cache flags, nulls, and timestamps included.
func TestChaosWireFormatParity(t *testing.T) {
	ts, _, env := chaosServer(t, fault.Config{Seed: 9, Rate: 0.3})
	base := ts.URL + APIVersion
	anchor := env.Graph.Bounds().Center()
	first := env.Chargers.All()[0]
	at := fixedNow.Format(time.RFC3339)

	q := fmt.Sprintf("?lat=%v&lon=%v&radius_m=5000", anchor.Lat, anchor.Lon)
	var cs []charger.Charger
	assertWireEqualsJSON(t, "chargers", jsonGet(t, base+"/chargers"+q), wireGet(t, base+"/chargers"+q), &cs)
	if len(cs) == 0 {
		t.Fatal("chargers parity compared an empty radius")
	}

	var inv []charger.Charger
	assertWireEqualsJSON(t, "inventory", jsonGet(t, base+"/inventory"), wireGet(t, base+"/inventory"), &inv)
	if len(inv) != len(env.Chargers.All()) {
		t.Fatalf("inventory decoded %d chargers, environment has %d", len(inv), len(env.Chargers.All()))
	}

	wq := fmt.Sprintf("?charger=%d&t=%s", first.ID, at)
	var wr WeatherResponse
	assertWireEqualsJSON(t, "weather", jsonGet(t, base+"/weather"+wq), wireGet(t, base+"/weather"+wq), &wr)
	var ar AvailabilityResponse
	assertWireEqualsJSON(t, "availability", jsonGet(t, base+"/availability"+wq), wireGet(t, base+"/availability"+wq), &ar)

	// Traffic is JSON-only by design: negotiating binary must degrade to
	// JSON, not fail.
	tq := fmt.Sprintf("?t=%s", at)
	req, err := http.NewRequest(http.MethodGet, base+"/traffic"+tq, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || wire.IsWire(resp.Header.Get("Content-Type")) {
		t.Fatalf("traffic with wire Accept: status %d, Content-Type %q; want JSON 200",
			resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}

// TestChaosWireOfferingCacheParity pins the encode-once/write-many cache
// across formats: a fresh Mode 2 compute and its cache hits must agree
// byte-for-byte between JSON and binary clients, whichever format warmed
// the cache.
func TestChaosWireOfferingCacheParity(t *testing.T) {
	ts, _, env := chaosServer(t, fault.Config{Seed: 9, Rate: 0.3})
	url := ts.URL + APIVersion + "/offering"
	anchor := env.Chargers.All()[4].P
	oreq := OfferingRequest{Lat: anchor.Lat, Lon: anchor.Lon, K: 4, Now: fixedNow}
	body, err := json.Marshal(oreq)
	if err != nil {
		t.Fatal(err)
	}

	post := func(accept, contentType string, reqBody []byte) (OfferingResponse, []byte) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offering: status %d: %.200s", resp.StatusCode, buf.Bytes())
		}
		var out OfferingResponse
		if wire.IsWire(resp.Header.Get("Content-Type")) {
			if accept == "" {
				t.Fatal("offering: got binary without asking for it")
			}
			if err := wire.DecodeInto(buf.Bytes(), &out); err != nil {
				t.Fatalf("offering: decoding binary body: %v", err)
			}
		} else if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("offering: decoding JSON body: %v", err)
		}
		return out, buf.Bytes()
	}

	fresh, freshBody := post("", "application/json", body)
	if fresh.Cached {
		t.Fatal("first compute claims to be cached")
	}
	if len(fresh.Entries) == 0 {
		t.Fatal("offering parity compared an empty table")
	}

	// Cache hits in both formats, JSON-warmed.
	jsonHit, jsonHitBody := post("", "application/json", body)
	wireHit, _ := post(wire.ContentType, "application/json", body)
	if !jsonHit.Cached || !wireHit.Cached {
		t.Fatalf("repeat requests not served from cache (json=%v wire=%v)", jsonHit.Cached, wireHit.Cached)
	}
	jb, err := json.Marshal(&wireHit)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonHitBody, append(jb, '\n')) {
		t.Fatalf("cached binary and JSON tables differ\njson: %.400s\nwire: %.400s", jsonHitBody, jb)
	}

	// The cached table must be the fresh table (modulo the Cached flag).
	hitNoFlag := jsonHit
	hitNoFlag.Cached = false
	hb, _ := json.Marshal(&hitNoFlag)
	fb, _ := json.Marshal(&fresh)
	if !bytes.Equal(hb, fb) {
		t.Fatalf("cache hit changed the table\nfresh: %.400s\nhit:   %.400s", fb, hb)
	}
	_ = freshBody

	// Binary Mode 2 request body (the wire client's POST) must hit the same
	// cache entry and produce the same table.
	wireReqBody := wire.AppendOfferingRequest(nil, &oreq)
	binReq, _ := post(wire.ContentType, wire.ContentType, wireReqBody)
	if !binReq.Cached {
		t.Fatal("binary request body missed the cache a JSON body warmed")
	}
	bb, _ := json.Marshal(&binReq)
	wb, _ := json.Marshal(&wireHit)
	if !bytes.Equal(bb, wb) {
		t.Fatalf("binary request body produced a different table\njson-req: %.400s\nwire-req: %.400s", wb, bb)
	}
}

// TestChaosWireClientParity runs the high-level client in both formats
// against the same chaos server: identical requests must return identical
// tables.
func TestChaosWireClientParity(t *testing.T) {
	ts, jsonClient, env := chaosServer(t, fault.Config{Seed: 9, Rate: 0.3})
	wireClient := NewClientOpts(ts.URL, ClientOptions{HTTPClient: ts.Client(), Wire: true})
	ctx := context.Background()
	all := env.Chargers.All()

	for i := 0; i < len(all); i += 16 {
		req := OfferingRequest{Lat: all[i].P.Lat, Lon: all[i].P.Lon, K: 3, Now: fixedNow}
		jr, err := jsonClient.Offering(ctx, req)
		if err != nil {
			t.Fatalf("json client offering %d: %v", i, err)
		}
		wr, err := wireClient.Offering(ctx, req)
		if err != nil {
			t.Fatalf("wire client offering %d: %v", i, err)
		}
		// The second request is a cache hit; compare modulo the flag.
		jr.Cached, wr.Cached = false, false
		jb, _ := json.Marshal(&jr)
		wb, _ := json.Marshal(&wr)
		if !bytes.Equal(jb, wb) {
			t.Fatalf("clients disagree at anchor %d\njson: %.400s\nwire: %.400s", i, jb, wb)
		}
	}

	// Inventory through both clients.
	jcs, err := jsonClient.Chargers(ctx, env.Graph.Bounds().Center(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	wcs, err := wireClient.Chargers(ctx, env.Graph.Bounds().Center(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(jcs)
	wb, _ := json.Marshal(wcs)
	if !bytes.Equal(jb, wb) {
		t.Fatalf("clients disagree on chargers\njson: %.200s\nwire: %.200s", jb, wb)
	}
}

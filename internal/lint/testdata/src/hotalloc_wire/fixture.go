// Package fixture exercises the hotalloc analyzer's wire scope: the file
// poses as part of internal/wire (see the import path in lint_test.go),
// where reflection-based encoding imports and map types are flagged — the
// codec stays alloc-free by hand-marshalling in fixed field order.
package fixture

import (
	"encoding/json" // flagged: reflection-based encoding in the codec
	"reflect"       // flagged: same
)

// BadMarshal reintroduces the reflective encoder the format replaced.
func BadMarshal(v interface{}) ([]byte, error) { return json.Marshal(v) }

// BadWalk pokes at runtime type information instead of fixed field order.
func BadWalk(v interface{}) string { return reflect.TypeOf(v).Kind().String() }

// BadScratch allocates a per-call map on the decode path: both the result
// type and the make type are flagged.
func BadScratch() map[string]float64 {
	return make(map[string]float64, 4)
}

// GoodAppend is the intended shape: fixed field order into a caller-owned
// buffer, no maps, no reflection.
func GoodAppend(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// SuppressedWitness stands in for a JSON-only response type kept off the
// binary plane, where the escape hatch documents why the map is fine.
type SuppressedWitness struct {
	//ecolint:ignore hotalloc JSON-only response type: never travels binary
	M map[string]string
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBBoxAndContains(t *testing.T) {
	b := NewBBox(Point{53.0, 8.0}, Point{53.3, 8.5}, Point{53.1, 8.2})
	if !b.Contains(Point{53.15, 8.25}) {
		t.Error("interior point not contained")
	}
	if b.Contains(Point{52.9, 8.25}) {
		t.Error("exterior point contained")
	}
	// Corners are inclusive.
	if !b.Contains(b.Min) || !b.Contains(b.Max) {
		t.Error("corners must be contained")
	}
}

func TestNewBBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBBox() did not panic on empty input")
		}
	}()
	NewBBox()
}

func TestBBoxExtendIsMonotone(t *testing.T) {
	f := func(s1, s2, s3 float64) bool {
		a, b, c := pointFromSeed(s1), pointFromSeed(s2), pointFromSeed(s3)
		box := NewBBox(a, b).Extend(c)
		return box.Contains(a) && box.Contains(b) && box.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBBoxIntersects(t *testing.T) {
	a := BBox{Min: Point{0, 0}, Max: Point{2, 2}}
	b := BBox{Min: Point{1, 1}, Max: Point{3, 3}}
	c := BBox{Min: Point{5, 5}, Max: Point{6, 6}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping boxes must intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint boxes must not intersect")
	}
	// Touching edges count as intersecting.
	d := BBox{Min: Point{2, 0}, Max: Point{4, 2}}
	if !a.Intersects(d) {
		t.Error("edge-touching boxes must intersect")
	}
}

func TestBBoxUnionContainsBoth(t *testing.T) {
	f := func(s1, s2, s3, s4 float64) bool {
		a := NewBBox(pointFromSeed(s1), pointFromSeed(s2))
		b := NewBBox(pointFromSeed(s3), pointFromSeed(s4))
		u := a.Union(b)
		return u.Contains(a.Min) && u.Contains(a.Max) && u.Contains(b.Min) && u.Contains(b.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBBoxDistanceTo(t *testing.T) {
	b := NewBBox(Point{53.0, 8.0}, Point{53.2, 8.4})
	if d := b.DistanceTo(Point{53.1, 8.2}); d != 0 {
		t.Errorf("inside point distance = %v, want 0", d)
	}
	out := Point{53.3, 8.2}
	d := b.DistanceTo(out)
	direct := Distance(out, Point{53.2, 8.2})
	if math.Abs(d-direct) > 1 {
		t.Errorf("distance to box = %.1f, want %.1f", d, direct)
	}
}

func TestBBoxBufferGrows(t *testing.T) {
	b := NewBBox(Point{53.0, 8.0}, Point{53.2, 8.4})
	g := b.Buffer(1000)
	if !g.Contains(b.Min) || !g.Contains(b.Max) {
		t.Fatal("buffered box must contain original")
	}
	// A point ~500m north of the original box edge must be inside.
	p := Destination(Point{53.2, 8.2}, 0, 500)
	if !g.Contains(p) {
		t.Errorf("point 500m outside original not within 1km buffer: %v", p)
	}
}

func TestPointSegmentDistance(t *testing.T) {
	a := Point{53.10, 8.20}
	b := Point{53.10, 8.30} // ~6.7km east-west segment
	// Point due north of the middle.
	p := Destination(Midpoint(a, b), 0, 1000)
	d, frac := PointSegmentDistance(p, a, b)
	if math.Abs(d-1000) > 20 {
		t.Errorf("perpendicular distance = %.1f, want ~1000", d)
	}
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("projection fraction = %.2f, want ~0.5", frac)
	}
	// Point beyond endpoint b projects to t=1 and distance to b.
	q := Destination(b, 90, 2000)
	d2, f2 := PointSegmentDistance(q, a, b)
	if f2 != 1 {
		t.Errorf("projection beyond end: t=%v, want 1", f2)
	}
	if math.Abs(d2-2000) > 40 {
		t.Errorf("distance beyond end = %.1f, want ~2000", d2)
	}
}

func TestPointSegmentDistanceDegenerate(t *testing.T) {
	a := Point{53.1, 8.2}
	p := Destination(a, 45, 300)
	d, frac := PointSegmentDistance(p, a, a)
	if frac != 0 {
		t.Errorf("degenerate segment t = %v, want 0", frac)
	}
	if math.Abs(d-300) > 10 {
		t.Errorf("degenerate segment distance = %.1f, want ~300", d)
	}
}

func TestPolylineLength(t *testing.T) {
	pts := []Point{{53.1, 8.2}, {53.1, 8.25}, {53.12, 8.25}}
	want := Distance(pts[0], pts[1]) + Distance(pts[1], pts[2])
	if got := PolylineLength(pts); math.Abs(got-want) > 1e-9 {
		t.Errorf("PolylineLength = %v, want %v", got, want)
	}
	if got := PolylineLength(pts[:1]); got != 0 {
		t.Errorf("single-point polyline length = %v, want 0", got)
	}
	if got := PolylineLength(nil); got != 0 {
		t.Errorf("nil polyline length = %v, want 0", got)
	}
}

func TestBBoxWidthHeight(t *testing.T) {
	// A box 0.1 deg tall is ~11.1 km.
	b := NewBBox(Point{53.0, 8.0}, Point{53.1, 8.0})
	h := b.HeightMeters()
	if h < 11000 || h > 11300 {
		t.Errorf("height = %.0f, want ~11120", h)
	}
	if w := b.WidthMeters(); w != 0 {
		t.Errorf("width = %v, want 0", w)
	}
}

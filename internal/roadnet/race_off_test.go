//go:build !race

package roadnet

const raceEnabled = false

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkRow(method string, ft float64) row {
	return row{Fig: "6", Dataset: "Oldenburg", Method: method, FtMs: ft}
}

func mkLoadRow(method string, ft, goodput float64) row {
	return row{Fig: "load-knee", Dataset: "Oldenburg", Method: method, Config: "rate=200", FtMs: ft, Goodput: goodput}
}

func byKey(ds []delta) map[string]delta {
	out := make(map[string]delta, len(ds))
	for _, d := range ds {
		out[d.key] = d
	}
	return out
}

var testGates = gates{tol: 0.10, slackMs: 0.25, gtol: 0.15, gslack: 5.0}

func TestCompareRegressionRules(t *testing.T) {
	seed := map[string]row{}
	cur := map[string]row{}
	add := func(m row, into map[string]row) { into[m.key()] = m }

	add(mkRow("Fast", 0.20), seed) // +50% but within absolute slack
	add(mkRow("Fast", 0.30), cur)
	add(mkRow("Slow", 10.0), seed) // +50% and beyond slack: regression
	add(mkRow("Slow", 15.0), cur)
	add(mkRow("Fine", 10.0), seed) // +5%: inside tolerance
	add(mkRow("Fine", 10.5), cur)
	add(mkRow("Better", 10.0), seed) // improvement
	add(mkRow("Better", 4.0), cur)
	add(mkRow("New", 1.0), cur) // only in current: reported, not failed

	ds := byKey(compare(seed, cur, testGates))
	if ds["6|Oldenburg|Fast|"].regressed {
		t.Error("sub-slack delta flagged as regression")
	}
	if !ds["6|Oldenburg|Slow|"].regressed {
		t.Error("50% regression beyond slack not flagged")
	}
	if ds["6|Oldenburg|Fine|"].regressed {
		t.Error("inside-tolerance delta flagged")
	}
	if d := ds["6|Oldenburg|Better|"]; d.regressed || d.pct > -50 {
		t.Errorf("improvement mishandled: %+v", d)
	}
	if d := ds["6|Oldenburg|New|"]; !d.onlyInOne || d.missingIn != "seed" || d.regressed {
		t.Errorf("current-only row mishandled: %+v", d)
	}
}

func TestCompareGoodputRules(t *testing.T) {
	seed := map[string]row{}
	cur := map[string]row{}
	add := func(m row, into map[string]row) { into[m.key()] = m }

	// Goodput collapsed 200 -> 120 (-40%, beyond slack): regression even
	// though ft_ms is unchanged.
	add(mkLoadRow("Drop", 5.0, 200), seed)
	add(mkLoadRow("Drop", 5.0, 120), cur)
	// -10% is inside the 15% tolerance.
	add(mkLoadRow("Tol", 5.0, 200), seed)
	add(mkLoadRow("Tol", 5.0, 180), cur)
	// -50% relative but only 2/s absolute: inside the slack.
	add(mkLoadRow("Slack", 5.0, 4), seed)
	add(mkLoadRow("Slack", 5.0, 2), cur)
	// Goodput improved and ft_ms steady: clean.
	add(mkLoadRow("Up", 5.0, 200), seed)
	add(mkLoadRow("Up", 5.0, 260), cur)
	// Seed row has no goodput (old ecobench export): gate must not engage
	// no matter what the current row reports.
	add(mkLoadRow("Legacy", 5.0, 0), seed)
	add(mkLoadRow("Legacy", 5.0, 1), cur)

	ds := byKey(compare(seed, cur, testGates))
	if d := ds["load-knee|Oldenburg|Drop|rate=200"]; !d.regressed || !d.goodputHit {
		t.Errorf("goodput collapse not flagged: %+v", d)
	}
	if d := ds["load-knee|Oldenburg|Tol|rate=200"]; d.regressed {
		t.Errorf("inside-tolerance goodput dip flagged: %+v", d)
	}
	if d := ds["load-knee|Oldenburg|Slack|rate=200"]; d.regressed {
		t.Errorf("sub-slack goodput dip flagged: %+v", d)
	}
	if d := ds["load-knee|Oldenburg|Up|rate=200"]; d.regressed {
		t.Errorf("goodput improvement flagged: %+v", d)
	}
	if d := ds["load-knee|Oldenburg|Legacy|rate=200"]; d.regressed || d.goodputHit {
		t.Errorf("goodput gate engaged on a row without seed goodput: %+v", d)
	}
}

func TestRenderMentionsRegression(t *testing.T) {
	seed := map[string]row{mkRow("M", 10).key(): mkRow("M", 10)}
	cur := map[string]row{mkRow("M", 20).key(): mkRow("M", 20)}
	var b strings.Builder
	render(&b, "s.json", "c.json", compare(seed, cur, testGates), 0.10, 0.25)
	if !strings.Contains(b.String(), "REGRESSED") {
		t.Fatalf("report lacks REGRESSED marker:\n%s", b.String())
	}
}

func TestRenderMentionsGoodputRegression(t *testing.T) {
	s := mkLoadRow("M", 5, 200)
	c := mkLoadRow("M", 5, 100)
	seed := map[string]row{s.key(): s}
	cur := map[string]row{c.key(): c}
	var b strings.Builder
	render(&b, "s.json", "c.json", compare(seed, cur, testGates), 0.10, 0.25)
	if !strings.Contains(b.String(), "REGRESSED (goodput)") {
		t.Fatalf("report lacks goodput regression marker:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "100.0/s") {
		t.Fatalf("report lacks goodput column:\n%s", b.String())
	}
}

func TestReadRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rows.json")
	if err := os.WriteFile(path, []byte(`[
		{"fig":"6","dataset":"D","method":"M","config":"","ft_ms":1.5,"goodput":10}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := readRows(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rows["6|D|M|"]
	if !ok || r.FtMs != 1.5 || r.Goodput != 10 {
		t.Fatalf("row mis-keyed or mis-read: %+v", rows)
	}
	if _, err := readRows(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRows(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}

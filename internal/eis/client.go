package eis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
)

// Client talks to an EcoCharge Information Server. It covers Mode 2
// (server-computed Offering Tables) and the data pulls Mode 3 edge
// computation needs.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the EIS at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient selects a default with a 10 s
// timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: baseURL, hc: httpClient}
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out interface{}) error {
	u := c.base + APIVersion + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("eis client: building request: %w", err)
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("eis client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+APIVersion+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("eis client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("eis client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("eis client: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("eis client: %s: %s (HTTP %d)", req.URL.Path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("eis client: %s: HTTP %d", req.URL.Path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("eis client: decoding response: %w", err)
	}
	return nil
}

// Chargers fetches the chargers within radius meters of p.
func (c *Client) Chargers(ctx context.Context, p geo.Point, radiusM float64) ([]charger.Charger, error) {
	q := url.Values{}
	q.Set("lat", fmt.Sprintf("%f", p.Lat))
	q.Set("lon", fmt.Sprintf("%f", p.Lon))
	q.Set("radius_m", fmt.Sprintf("%f", radiusM))
	var out []charger.Charger
	if err := c.get(ctx, "/chargers", q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Weather fetches the production forecast for a charger at time t.
func (c *Client) Weather(ctx context.Context, chargerID int64, t time.Time) (WeatherResponse, error) {
	q := url.Values{}
	q.Set("charger", fmt.Sprintf("%d", chargerID))
	q.Set("t", t.Format(time.RFC3339))
	var out WeatherResponse
	err := c.get(ctx, "/weather", q, &out)
	return out, err
}

// Availability fetches the availability estimate for a charger at time t.
func (c *Client) Availability(ctx context.Context, chargerID int64, t time.Time) (AvailabilityResponse, error) {
	q := url.Values{}
	q.Set("charger", fmt.Sprintf("%d", chargerID))
	q.Set("t", t.Format(time.RFC3339))
	var out AvailabilityResponse
	err := c.get(ctx, "/availability", q, &out)
	return out, err
}

// Traffic fetches the congestion band per road class at time t.
func (c *Client) Traffic(ctx context.Context, t time.Time) (TrafficResponse, error) {
	q := url.Values{}
	q.Set("t", t.Format(time.RFC3339))
	var out TrafficResponse
	err := c.get(ctx, "/traffic", q, &out)
	return out, err
}

// Offering requests a server-computed Offering Table (Mode 2).
func (c *Client) Offering(ctx context.Context, req OfferingRequest) (OfferingResponse, error) {
	var out OfferingResponse
	err := c.post(ctx, "/offering", req, &out)
	return out, err
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Package eis implements the EcoCharge Information Server of §IV and its
// client. The server consolidates charger inventory, weather, availability
// and traffic estimates behind a JSON HTTP API and computes Offering Tables
// centrally (Mode 2); the client supports all three modes of operation:
//
//	Mode 1 — in-vehicle: the embedded OS holds the environment and computes
//	         locally (no server involved; use cknn directly).
//	Mode 2 — server: the client posts a query, the EIS computes the table.
//	Mode 3 — edge: the client pulls the data (chargers + model seeds) from
//	         the EIS once and computes tables on the phone.
package eis

import (
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/interval"
)

// APIVersion prefixes all routes.
const APIVersion = "/api/v1"

// IntervalJSON is the wire form of an interval estimate.
type IntervalJSON struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func toWire(i interval.I) IntervalJSON      { return IntervalJSON{Min: i.Min, Max: i.Max} }
func (i IntervalJSON) Interval() interval.I { return interval.FromBounds(i.Min, i.Max) }

// WeightsJSON is the wire form of the SC weights.
type WeightsJSON struct {
	L float64 `json:"l"`
	A float64 `json:"a"`
	D float64 `json:"d"`
}

// OfferingRequest asks the EIS for an Offering Table (Mode 2).
type OfferingRequest struct {
	Lat     float64     `json:"lat"`
	Lon     float64     `json:"lon"`
	K       int         `json:"k"`
	RadiusM float64     `json:"radius_m"`
	Weights WeightsJSON `json:"weights"`
	// Now is when the estimate is issued; zero means server time.
	Now time.Time `json:"now"`
	// ETA is the arrival time at the query point; zero means Now.
	ETA time.Time `json:"eta"`
}

// OfferingEntry is one ranked charger of the response.
type OfferingEntry struct {
	ChargerID int64        `json:"charger_id"`
	Lat       float64      `json:"lat"`
	Lon       float64      `json:"lon"`
	RateKW    float64      `json:"rate_kw"`
	SC        IntervalJSON `json:"sc"`
	L         IntervalJSON `json:"l"`
	A         IntervalJSON `json:"a"`
	D         IntervalJSON `json:"d"`
	ETA       time.Time    `json:"eta"`
	// Degraded is the cknn.Degraded bitmask of the entry: bit 0 = L,
	// bit 1 = A, bit 2 = D. A set bit means that component's backing source
	// failed and the interval above is the [0,1] ignorance bound, not an
	// estimate. Omitted (0) when every component was estimated.
	Degraded uint8 `json:"degraded,omitempty"`
}

// wireEntry converts one ranked engine entry to its wire form; every
// endpoint emitting Offering Tables goes through it so the wire contract
// (including the Degraded tag) cannot drift between endpoints.
func wireEntry(e cknn.Entry) OfferingEntry {
	return OfferingEntry{
		ChargerID: e.Charger.ID,
		Lat:       e.Charger.P.Lat,
		Lon:       e.Charger.P.Lon,
		RateKW:    e.Charger.Rate.KW(),
		SC:        toWire(e.SC),
		L:         toWire(e.Comp.L),
		A:         toWire(e.Comp.A),
		D:         toWire(e.Comp.D),
		ETA:       e.Comp.ETA,
		Degraded:  uint8(e.Comp.Degraded),
	}
}

// OfferingResponse is the Mode 2 result.
type OfferingResponse struct {
	Entries     []OfferingEntry `json:"entries"`
	GeneratedAt time.Time       `json:"generated_at"`
	Cached      bool            `json:"cached"` // served from the server-side dynamic cache
}

// WeatherResponse reports the production forecast of one charger site.
type WeatherResponse struct {
	ChargerID    int64        `json:"charger_id"`
	At           time.Time    `json:"at"`
	ProductionKW IntervalJSON `json:"production_kw"`
}

// AvailabilityResponse reports the availability estimate of one charger.
type AvailabilityResponse struct {
	ChargerID    int64        `json:"charger_id"`
	At           time.Time    `json:"at"`
	Availability IntervalJSON `json:"availability"`
}

// TrafficResponse reports the congestion multiplier band per road class.
type TrafficResponse struct {
	At         time.Time               `json:"at"`
	Multiplier map[string]IntervalJSON `json:"multiplier"`
}

// ErrorResponse is the JSON body of non-2xx responses.
type ErrorResponse struct {
	Error string `json:"error"`
}

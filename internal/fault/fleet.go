package fault

import (
	"net/http"
	"time"
)

// ShardShape scripts the failure behavior of one fleet shard, keyed by the
// shard's host (req.URL.Host). Every field is expressed in the injector's
// virtual ticks, so a chaos harness walks a whole fleet through blackouts,
// partitions and slowdowns with Advance — deterministically, under -race.
//
// The asymmetric shapes model the two partition lies a health-checked
// gateway must survive: PartitionAPI is a shard whose probes answer while
// its data path is dead (the gateway's passive failure accounting, not the
// prober, has to catch it), and PartitionProbe is the inverse — a healthy
// data path behind a dead health endpoint (the gateway must not hard-fail a
// shard that still answers requests).
type ShardShape struct {
	// Blackouts are windows during which every request to the shard —
	// probes and API alike — fails (the process is gone).
	Blackouts []Window
	// PartitionAPI are windows during which API requests fail while health
	// probes still succeed (asymmetric partition on the data path).
	PartitionAPI []Window
	// PartitionProbe are windows during which health probes fail while API
	// requests still succeed (asymmetric partition on the control path).
	PartitionProbe []Window
	// Slow are windows during which API requests are delayed by Latency
	// before being forwarded (a struggling, not dead, shard). Probes stay
	// fast: slow shards routinely pass health checks.
	Slow []Window
	// Latency is the delay applied inside Slow windows.
	Latency time.Duration
	// DropRate additionally fails API requests with this probability in
	// [0,1] at every tick (flapping); decisions consume the injector's
	// sequence counter so retries and hedges get independent draws.
	DropRate float64
}

// in reports whether tick falls inside any of the windows.
func in(ws []Window, tick uint64) bool {
	for _, w := range ws {
		if tick >= w.From && tick < w.To {
			return true
		}
	}
	return false
}

// Fleet makes deterministic per-shard fault decisions for a gateway's
// outbound traffic. Wrap a transport with Fleet.Transport and drive the
// scenario with the shared injector's Advance.
type Fleet struct {
	inj    *Injector
	shapes map[string]ShardShape
}

// NewFleet returns fleet faults over the injector; shapes are keyed by
// shard host. Hosts without a shape never fault.
func NewFleet(inj *Injector, shapes map[string]ShardShape) *Fleet {
	return &Fleet{inj: inj, shapes: shapes}
}

// probePath is how the transport tells control traffic from data traffic:
// the EIS health endpoint is the only path probers hit.
const probePath = "/healthz"

// Decide classifies one exchange against the shard's shape at the current
// tick. It is exported so non-HTTP harnesses can reuse the schedule.
func (f *Fleet) Decide(host, path string) Decision {
	shape, ok := f.shapes[host]
	if !ok {
		return Decision{}
	}
	tick := f.inj.Tick()
	probe := path == probePath
	if in(shape.Blackouts, tick) {
		return Decision{Fail: true}
	}
	if probe {
		return Decision{Fail: in(shape.PartitionProbe, tick)}
	}
	if in(shape.PartitionAPI, tick) {
		return Decision{Fail: true}
	}
	var d Decision
	if rate := clamp01(shape.DropRate); rate > 0 {
		// Each exchange is a distinct event — the sequence counter gives
		// retries and hedges independent draws, like the transport faults of
		// DecideSeq.
		seq := f.inj.seq.Add(1)
		if f.inj.frac(saltFleet, tick, []uint64{HashString(host), HashString(path), seq}) < rate {
			d.Fail = true
			return d
		}
	}
	if in(shape.Slow, tick) {
		d.Latency = shape.Latency
	}
	return d
}

// Transport wraps inner with the fleet's fault schedule. A nil inner
// selects http.DefaultTransport; a nil sleep selects a context-aware wait
// so injected slowness never outlives the request's deadline.
func (f *Fleet) Transport(inner http.RoundTripper, sleep func(time.Duration)) http.RoundTripper {
	return &fleetTransport{fleet: f, inner: inner, sleep: sleep}
}

type fleetTransport struct {
	fleet *Fleet
	inner http.RoundTripper
	sleep func(time.Duration)
}

// RoundTrip implements http.RoundTripper.
func (t *fleetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	d := t.fleet.Decide(req.URL.Host, req.URL.Path)
	if d.Latency > 0 {
		if t.sleep != nil {
			t.sleep(d.Latency)
		} else if err := sleepCtx(req.Context(), d.Latency); err != nil {
			return nil, err
		}
	}
	if d.Fail {
		return nil, &TransportError{Endpoint: req.URL.Host + req.URL.Path}
	}
	return inner.RoundTrip(req)
}

// saltFleet namespaces fleet drop decisions away from the other users of a
// shared injector.
const saltFleet uint64 = 0xf1ee7

package load

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/eis"
	"ecocharge/internal/fleet"
)

// InprocOptions size the in-process fleet StartInproc builds.
type InprocOptions struct {
	// Shards is the fleet width. 0 selects 3 (the load-smoke shape).
	Shards int
	// MaxInFlight caps concurrent requests per shard; past it the shard
	// sheds 503+Retry-After. 0 disables shedding (the overload suite sets
	// it low on purpose).
	MaxInFlight int
	// RetryAfter stamps shed responses; 0 selects the middleware default.
	RetryAfter time.Duration
	// ShardTimeout, HedgeDelay: gateway fan-out knobs; zero selects the
	// fleet defaults.
	ShardTimeout time.Duration
	HedgeDelay   time.Duration
	// WireShards negotiates the binary format on gateway→shard exchanges.
	WireShards bool
	// Clock pins the shards' time base; nil selects time.Now.
	Clock func() time.Time
	// Server overrides the shard EIS options (cache granularity, ranking
	// workers, request deadline). The overload suite shrinks the cache
	// cell to force full rankings; zero keeps the production defaults.
	Server eis.ServerOptions
	// Wrap, when set, wraps every shard handler (fault injection hooks for
	// the coordinated-omission differential test).
	Wrap func(http.Handler) http.Handler
}

// Inproc is a live in-process fleet: N shard EIS servers partitioned from
// one environment plus a gateway fronting them, all on real loopback TCP
// listeners so the harness exercises the full HTTP stack it would against
// a deployed fleet. Close shuts everything down.
type Inproc struct {
	URL string // gateway base URL
	// ShardURLs are the member EIS bases, index-ordered. The overload
	// suite targets one directly: a saturated bare shard answers
	// 503+Retry-After, where the gateway in front would absorb the shed
	// into a degraded merge.
	ShardURLs []string

	servers []*http.Server
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// StartInproc partitions env across opts.Shards EIS servers and starts a
// gateway over them. The caller must Close the result.
func StartInproc(env *cknn.Env, opts InprocOptions) (*Inproc, error) {
	n := opts.Shards
	if n <= 0 {
		n = 3
	}
	ip := &Inproc{}
	ok := false
	defer func() {
		if !ok {
			ip.Close()
		}
	}()

	sopts := opts.Server
	if opts.Clock != nil {
		sopts.Clock = opts.Clock
	}
	shards := make([]fleet.Shard, n)
	for i := 0; i < n; i++ {
		se, err := fleet.ShardEnv(env, i, n)
		if err != nil {
			return nil, fmt.Errorf("load: shard %d: %w", i, err)
		}
		var h http.Handler = eis.NewServer(se, sopts).Handler()
		if opts.Wrap != nil {
			// Innermost, under the shedding middleware: injected service
			// latency holds an in-flight slot like real ranking work would.
			h = opts.Wrap(h)
		}
		if opts.MaxInFlight > 0 {
			mw := &eis.Middleware{MaxInFlight: opts.MaxInFlight, RetryAfter: opts.RetryAfter}
			h = mw.Wrap(h)
		}
		url, err := ip.serve(h)
		if err != nil {
			return nil, fmt.Errorf("load: shard %d: %w", i, err)
		}
		shards[i].URL = url
		ip.ShardURLs = append(ip.ShardURLs, url)
	}

	gw, err := fleet.NewGateway(shards, fleet.Options{
		ShardTimeout: opts.ShardTimeout,
		HedgeDelay:   opts.HedgeDelay,
		WireShards:   opts.WireShards,
	})
	if err != nil {
		return nil, fmt.Errorf("load: gateway: %w", err)
	}
	ip.URL, err = ip.serve(gw.Handler())
	if err != nil {
		return nil, fmt.Errorf("load: gateway: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ip.cancel = cancel
	ip.wg.Add(1)
	go func() {
		defer ip.wg.Done()
		gw.Run(ctx) // health probes; returns on cancel
	}()
	ok = true
	return ip, nil
}

// serve starts h on a loopback listener and returns its base URL.
func (ip *Inproc) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       time.Minute,
	}
	ip.servers = append(ip.servers, srv)
	ip.wg.Add(1)
	go func() {
		defer ip.wg.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err // listener torn down by Close; nothing to report
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// Close stops the probe loop and every listener, waiting for the serve
// goroutines to exit. Safe on a partially-started Inproc.
func (ip *Inproc) Close() {
	if ip.cancel != nil {
		ip.cancel()
	}
	for _, srv := range ip.servers {
		_ = srv.Close()
	}
	ip.wg.Wait()
}

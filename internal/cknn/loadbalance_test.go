package cknn

import (
	"sync"
	"testing"
	"time"
)

func TestLoadTrackerInducedBusy(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	c := env.Chargers.All()[0]
	at := queryTime

	if got := lt.InducedBusy(c.ID, at); got != 0 {
		t.Fatalf("fresh tracker induced busy = %v", got)
	}
	// One commitment on a p-plug charger contributes 1/p.
	lt.Commit(c.ID, at)
	want := 1.0 / float64(c.Plugs)
	if got := lt.InducedBusy(c.ID, at); got != want {
		t.Fatalf("induced busy = %v, want %v", got, want)
	}
	// Saturates at 1 no matter how many commitments.
	for i := 0; i < 10; i++ {
		lt.Commit(c.ID, at)
	}
	if got := lt.InducedBusy(c.ID, at); got != 1 {
		t.Fatalf("saturated induced busy = %v", got)
	}
}

func TestLoadTrackerExpiry(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	lt.Window = 30 * time.Minute
	c := env.Chargers.All()[1]
	lt.Commit(c.ID, queryTime)
	if got := lt.InducedBusy(c.ID, queryTime.Add(10*time.Minute)); got == 0 {
		t.Fatal("commitment expired too early")
	}
	if got := lt.InducedBusy(c.ID, queryTime.Add(2*time.Hour)); got != 0 {
		t.Fatalf("commitment survived past window: %v", got)
	}
	// Expired commitments are dropped from the diagnostics too.
	if m := lt.Commitments(queryTime.Add(2 * time.Hour)); len(m) != 0 {
		t.Fatalf("Commitments after expiry = %v", m)
	}
}

func TestLoadTrackerCancel(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	c := env.Chargers.All()[2]
	lt.Commit(c.ID, queryTime)
	lt.Cancel(c.ID, queryTime)
	if got := lt.InducedBusy(c.ID, queryTime); got != 0 {
		t.Fatalf("cancelled commitment still counted: %v", got)
	}
	// Cancelling something never committed is a no-op.
	lt.Cancel(c.ID, queryTime.Add(time.Hour))
	lt.Cancel(99999, queryTime)
}

func TestLoadTrackerOverlapWindow(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	lt.Window = 45 * time.Minute
	c := env.Chargers.All()[3]
	lt.Commit(c.ID, queryTime)
	// An arrival 30 minutes later overlaps the 45-minute session.
	if got := lt.InducedBusy(c.ID, queryTime.Add(30*time.Minute)); got == 0 {
		t.Error("overlapping session not counted")
	}
	// An arrival 2 hours later does not (and the commitment has expired).
	if got := lt.InducedBusy(c.ID, queryTime.Add(2*time.Hour)); got != 0 {
		t.Errorf("non-overlapping session counted: %v", got)
	}
}

func TestBalancedRedirectsFleet(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	q := testQuery(env)
	q.K = 3

	// Without balancing every driver gets the same top charger.
	plain := NewBruteForce(env)
	first := plain.Rank(q)
	top, ok := first.Top()
	if !ok {
		t.Fatal("empty table")
	}

	balanced := NewBalanced(NewBruteForce(env), lt)
	picks := map[int64]int{}
	for driver := 0; driver < 8; driver++ {
		table := balanced.Rank(q)
		p, ok := table.Top()
		if !ok {
			t.Fatal("empty balanced table")
		}
		picks[p.Charger.ID]++
	}
	if len(picks) < 2 {
		t.Fatalf("balancing never redirected: all 8 drivers sent to %v", picks)
	}
	// The original top charger must not receive all drivers.
	if picks[top.Charger.ID] == 8 {
		t.Fatal("original top charger got the entire fleet")
	}
}

func TestBalancedNameAndReset(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	m := NewBalanced(NewEcoCharge(env, EcoChargeOptions{}), lt)
	if m.Name() != "EcoCharge+Balanced" {
		t.Errorf("Name = %q", m.Name())
	}
	q := testQuery(env)
	m.Rank(q)
	m.Reset() // must not clear the tracker
	if n := len(lt.Commitments(q.Now)); n == 0 {
		t.Error("Reset cleared fleet-wide commitments")
	}
}

func TestBalancedWithoutAutoCommit(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	m := NewBalanced(NewBruteForce(env), lt)
	m.AutoCommit = false
	q := testQuery(env)
	a := m.Rank(q).IDs()
	b := m.Rank(q).IDs()
	if !sameIDs(a, b) {
		t.Fatal("without commitments repeated queries must agree")
	}
	if n := len(lt.Commitments(q.Now)); n != 0 {
		t.Fatalf("AutoCommit=false still committed: %v", n)
	}
}

func TestLoadTrackerConcurrent(t *testing.T) {
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	ids := make([]int64, 0, 10)
	for i := 0; i < 10; i++ {
		ids = append(ids, env.Chargers.All()[i].ID)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(w+i)%len(ids)]
				lt.Commit(id, queryTime.Add(time.Duration(i)*time.Second))
				lt.InducedBusy(id, queryTime)
				if i%3 == 0 {
					lt.Cancel(id, queryTime.Add(time.Duration(i)*time.Second))
				}
			}
		}(w)
	}
	wg.Wait()
	// No assertion beyond absence of races (run with -race) and sane state.
	m := lt.Commitments(queryTime)
	for id, n := range m {
		if n < 0 {
			t.Fatalf("negative commitments for %d", id)
		}
	}
}

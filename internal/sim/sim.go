// Package sim is a deterministic discrete-event fleet simulator: many EVs
// drive their scheduled trips, continuously query EcoCharge, commit to a
// recommended charger, drive the detour, occupy a plug and hoard renewable
// energy. It provides the measurement substrate for the paper's
// future-work question (§VII) of how the *suggested* Offering Tables shape
// charger congestion — with and without the load-balancing extension.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/trajectory"
)

// Config parameterizes one simulation run.
type Config struct {
	// QueryStepM is the continuous re-evaluation step along trips. 0
	// selects 1 km.
	QueryStepM float64
	// K chargers per Offering Table. 0 selects 3.
	K int
	// RadiusM (R) and ReuseDistM (Q) configure each vehicle's EcoCharge
	// instance. 0 selects 50 km / 5 km.
	RadiusM    float64
	ReuseDistM float64
	// Balanced enables the load-balancing extension: a shared LoadTracker
	// redirects drivers away from already-claimed chargers.
	Balanced bool
	// AcceptSC is the minimum SC midpoint at which a driver commits to
	// charging. 0 selects 0.5.
	AcceptSC float64
	// Session is the charging session length. 0 selects 45 minutes.
	Session time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueryStepM <= 0 {
		c.QueryStepM = 1000
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.RadiusM <= 0 {
		c.RadiusM = 50000
	}
	if c.ReuseDistM <= 0 {
		c.ReuseDistM = 5000
	}
	if c.AcceptSC <= 0 {
		c.AcceptSC = 0.5
	}
	if c.Session <= 0 {
		c.Session = 45 * time.Minute
	}
	return c
}

// Result aggregates one run.
type Result struct {
	Vehicles  int
	Queries   int
	Commits   int
	Conflicts int // arrivals finding every plug occupied
	// CleanKWh is renewable energy delivered across all sessions;
	// GridKWh the grid top-up needed when production lagged the rate.
	CleanKWh float64
	GridKWh  float64
	// UtilizationGini measures how unevenly sessions spread over the
	// chargers that received at least one commitment (0 = even, →1 =
	// concentrated).
	UtilizationGini float64
	// PerCharger counts sessions per charger.
	PerCharger map[int64]int
}

// String summarizes the result for logs and examples.
func (r Result) String() string {
	return fmt.Sprintf("vehicles=%d queries=%d commits=%d conflicts=%d clean=%.1fkWh grid=%.1fkWh gini=%.3f",
		r.Vehicles, r.Queries, r.Commits, r.Conflicts, r.CleanKWh, r.GridKWh, r.UtilizationGini)
}

// event kinds.
type eventKind uint8

const (
	evQuery eventKind = iota
	evArrive
	evDepart
)

type event struct {
	at      time.Time
	kind    eventKind
	vehicle int
	segIdx  int
	charger int64
	eta     time.Time // commitment key for arrivals
	seq     int       // tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// vehicleState tracks one EV through the run.
type vehicleState struct {
	trip      trajectory.Trip
	segments  []trajectory.Segment
	method    cknn.Method
	committed bool
}

// Run simulates the fleet over the given trips (one vehicle per trip) and
// returns the aggregate result. The simulation is deterministic for a
// fixed environment and trip list.
func Run(env *cknn.Env, trips []trajectory.Trip, cfg Config) Result {
	cfg = cfg.withDefaults()
	tracker := cknn.NewLoadTracker(env.Chargers)
	tracker.Window = cfg.Session

	vehicles := make([]*vehicleState, 0, len(trips))
	var q eventQueue
	seq := 0
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&q, e)
	}
	heap.Init(&q)

	for _, trip := range trips {
		segs := trajectory.SegmentTrip(env.Graph, trip, cfg.QueryStepM)
		if len(segs) == 0 {
			continue
		}
		var method cknn.Method = cknn.NewEcoCharge(env, cknn.EcoChargeOptions{
			RadiusM: cfg.RadiusM, ReuseDistM: cfg.ReuseDistM,
		})
		if cfg.Balanced {
			b := cknn.NewBalanced(method, tracker)
			b.AutoCommit = false // the simulator commits explicitly on acceptance
			method = b
		}
		vehicles = append(vehicles, &vehicleState{trip: trip, segments: segs, method: method})
		vi := len(vehicles) - 1
		for si, seg := range segs {
			push(event{at: seg.ETA, kind: evQuery, vehicle: vi, segIdx: si})
		}
	}

	res := Result{Vehicles: len(vehicles), PerCharger: make(map[int64]int)}
	// Plug occupancy: session end times per charger.
	occupancy := make(map[int64][]time.Time)
	plugs := func(id int64) int {
		if c, ok := env.Chargers.ByID(id); ok && c.Plugs > 0 {
			return c.Plugs
		}
		return 1
	}

	opts := cknn.TripOptions{K: cfg.K, SegmentLenM: cfg.QueryStepM, RadiusM: cfg.RadiusM}
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		switch e.kind {
		case evQuery:
			v := vehicles[e.vehicle]
			if v.committed {
				continue // already heading to a charger
			}
			res.Queries++
			query := cknn.QueryForSegment(v.trip, v.segments[e.segIdx], opts)
			table := v.method.Rank(query)
			top, ok := table.Top()
			if !ok || top.SC.Mid() < cfg.AcceptSC {
				continue
			}
			v.committed = true
			res.Commits++
			tracker.Commit(top.Charger.ID, top.Comp.ETA)
			push(event{at: top.Comp.ETA, kind: evArrive, vehicle: e.vehicle, charger: top.Charger.ID, eta: top.Comp.ETA})

		case evArrive:
			// Free ended sessions, then claim a plug.
			ends := occupancy[e.charger]
			kept := ends[:0]
			for _, end := range ends {
				if end.After(e.at) {
					kept = append(kept, end)
				}
			}
			occupancy[e.charger] = kept
			if len(kept) >= plugs(e.charger) {
				res.Conflicts++
				// The driver waits for the earliest plug; the session
				// shifts accordingly.
				earliest := kept[0]
				for _, end := range kept[1:] {
					if end.Before(earliest) {
						earliest = end
					}
				}
				push(event{at: earliest, kind: evArrive, vehicle: e.vehicle, charger: e.charger, eta: e.eta})
				continue
			}
			sessionEnd := e.at.Add(cfg.Session)
			occupancy[e.charger] = append(occupancy[e.charger], sessionEnd)
			res.PerCharger[e.charger]++
			clean, grid := sessionEnergy(env, e.charger, e.at, cfg.Session)
			res.CleanKWh += clean
			res.GridKWh += grid
			push(event{at: sessionEnd, kind: evDepart, vehicle: e.vehicle, charger: e.charger})

		case evDepart:
			tracker.Cancel(e.charger, e.eta) // harmless if already expired
		}
	}
	res.UtilizationGini = gini(res.PerCharger)
	return res
}

// sessionEnergy integrates truth production over the session in 5-minute
// steps: clean up to the production, grid top-up to the plug rate when the
// driver charges at full rate regardless (the hoarding scenario assumes
// renewable-only charging, so grid here quantifies what hoarding avoided).
func sessionEnergy(env *cknn.Env, chargerID int64, from time.Time, session time.Duration) (cleanKWh, gridKWh float64) {
	c, ok := env.Chargers.ByID(chargerID)
	if !ok {
		return 0, 0
	}
	const step = 5 * time.Minute
	rate := c.Rate.KW()
	for t := from; t.Before(from.Add(session)); t = t.Add(step) {
		prod := env.Solar.Truth(c.Site(), t)
		if prod > rate {
			prod = rate
		}
		cleanKWh += prod * step.Hours()
		gridKWh += (rate - prod) * step.Hours()
	}
	return cleanKWh, gridKWh
}

// gini computes the Gini coefficient of the session counts.
func gini(counts map[int64]int) float64 {
	if len(counts) == 0 {
		return 0
	}
	xs := make([]float64, 0, len(counts))
	var sum float64
	for _, n := range counts {
		xs = append(xs, float64(n))
		sum += float64(n)
	}
	if sum <= 0 {
		return 0
	}
	sort.Float64s(xs)
	var cum float64
	for i, x := range xs {
		cum += x * float64(2*(i+1)-len(xs)-1)
	}
	g := cum / (float64(len(xs)) * sum)
	return math.Abs(g)
}

package ec

import (
	"testing"
	"time"
)

var windSite = Site{ID: 3, P: nicosia, CapacityKW: 30}

func TestWindTruthBounds(t *testing.T) {
	m := NewWindModel(1)
	for h := 0; h < 72; h++ {
		ts := noon.Add(time.Duration(h) * time.Hour)
		v := m.Truth(windSite, ts)
		if v < 0 || v > windSite.CapacityKW {
			t.Fatalf("wind truth %v outside [0, %v] at +%dh", v, windSite.CapacityKW, h)
		}
	}
}

func TestWindProducesAtNight(t *testing.T) {
	// Unlike solar, wind output over a long window must be nonzero at
	// night somewhere.
	m := NewWindModel(2)
	var nightTotal float64
	for d := 0; d < 14; d++ {
		ts := time.Date(2024, 6, 1+d, 2, 0, 0, 0, time.UTC)
		nightTotal += m.Truth(windSite, ts)
	}
	if nightTotal == 0 {
		t.Fatal("two weeks of nights with zero wind production")
	}
}

func TestWindForecastContainsTruth(t *testing.T) {
	m := NewWindModel(3)
	for _, horizon := range []time.Duration{0, 2 * time.Hour, 24 * time.Hour, 90 * time.Hour} {
		target := noon.Add(horizon)
		iv := m.Forecast(windSite, target, noon)
		truth := m.Truth(windSite, target)
		if !iv.Contains(truth) && iv.Min > 0 && iv.Max < windSite.CapacityKW {
			t.Errorf("horizon %v: forecast %v missing truth %.2f", horizon, iv, truth)
		}
		if iv.Min < 0 || iv.Max > windSite.CapacityKW {
			t.Errorf("forecast %v outside physical range", iv)
		}
	}
}

func TestWindForecastWidthGrows(t *testing.T) {
	m := NewWindModel(4)
	target := noon.Add(48 * time.Hour)
	near := m.Forecast(windSite, target, target.Add(-time.Hour)).Width()
	far := m.Forecast(windSite, target, target.Add(-60*time.Hour)).Width()
	if far < near {
		t.Errorf("wind forecast width shrank with horizon: %v vs %v", near, far)
	}
}

func TestWindErrorFasterThanSolar(t *testing.T) {
	// Wind forecasts degrade faster than irradiance forecasts at the same
	// horizon (the justification for separate error schedules).
	for _, h := range []time.Duration{6 * time.Hour, 24 * time.Hour, 96 * time.Hour} {
		if windForecastError(h) <= ForecastError(h) {
			t.Errorf("at %v: wind error %v not above solar %v", h, windForecastError(h), ForecastError(h))
		}
	}
}

func TestWindZeroCapacity(t *testing.T) {
	m := NewWindModel(5)
	iv := m.Forecast(Site{ID: 9, P: nicosia, CapacityKW: 0}, noon, noon)
	if iv.Min != 0 || iv.Max != 0 {
		t.Errorf("zero-capacity site forecast %v", iv)
	}
}

func TestWindSynopticVariability(t *testing.T) {
	// Output must actually vary across days (not a constant).
	m := NewWindModel(6)
	seen := map[int]bool{}
	for d := 0; d < 20; d++ {
		ts := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, d)
		seen[int(m.Truth(windSite, ts)/3)] = true
	}
	if len(seen) < 3 {
		t.Errorf("wind output too uniform across 20 days: %d buckets", len(seen))
	}
}

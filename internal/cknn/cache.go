package cknn

import (
	"sync"
	"sync/atomic"

	"ecocharge/internal/geo"
)

// cacheStripes is the number of independently locked shards of a
// ShardedCache. 32 keeps worst-case contention at 1/32 of a single mutex
// while the per-shard maps stay dense.
const cacheStripes = 32

// ShardedCache is the storage of the paper's dynamic cache (§IV.C)
// generalized to fleet service: it holds one Offering Table slot per owner
// (one owner per trip/vehicle), striped across independently locked shards
// so concurrent trips sharing one Env never serialize on a single lock.
// Slots are private to their owner — a trip never adapts another trip's
// table — which is what keeps k concurrent trips byte-identical to k fresh
// single-trip runs (the cache coherence invariant of DESIGN.md §6).
//
// The zero value is not usable; construct with NewShardedCache.
type ShardedCache struct {
	nextOwner atomic.Uint64
	shards    [cacheStripes]cacheShard
}

type cacheShard struct {
	mu     sync.Mutex
	tables map[uint64]OfferingTable
}

// NewShardedCache returns an empty cache ready for concurrent use.
func NewShardedCache() *ShardedCache {
	c := &ShardedCache{}
	for i := range c.shards {
		c.shards[i].tables = make(map[uint64]OfferingTable)
	}
	return c
}

// NewOwner allocates a fresh slot key. Owners are handed out sequentially,
// so the shard function spreads them multiplicatively.
func (c *ShardedCache) NewOwner() uint64 { return c.nextOwner.Add(1) }

func (c *ShardedCache) shard(owner uint64) *cacheShard {
	// Fibonacci hashing: sequential owners land on distinct stripes.
	return &c.shards[(owner*0x9E3779B97F4A7C15)>>(64-5)]
}

// Lookup returns the owner's cached table when it is adaptable for the
// query under the options: the anchor moved at most Q, the table is not
// older than the TTL (and not from the future), and it is non-empty.
func (c *ShardedCache) Lookup(owner uint64, q Query, opts EcoChargeOptions) (OfferingTable, bool) {
	s := c.shard(owner)
	s.mu.Lock()
	t, ok := s.tables[owner]
	s.mu.Unlock()
	if ok && geo.Distance(q.Anchor, t.Anchor) <= opts.ReuseDistM &&
		q.Now.Sub(t.GeneratedAt) <= opts.TTL &&
		!q.Now.Before(t.GeneratedAt) &&
		len(t.Entries) > 0 {
		met.cacheHits.Inc()
		return t, true
	}
	met.cacheMisses.Inc()
	return OfferingTable{}, false
}

// Store replaces the owner's cached table.
func (c *ShardedCache) Store(owner uint64, t OfferingTable) {
	s := c.shard(owner)
	s.mu.Lock()
	_, existed := s.tables[owner]
	s.tables[owner] = t
	s.mu.Unlock()
	met.cacheStores.Inc()
	if !existed {
		met.cacheSlots.Inc()
	}
}

// Invalidate drops the owner's slot (new trip, new cache).
func (c *ShardedCache) Invalidate(owner uint64) {
	s := c.shard(owner)
	s.mu.Lock()
	_, existed := s.tables[owner]
	delete(s.tables, owner)
	s.mu.Unlock()
	met.cacheInvalidations.Inc()
	if existed {
		met.cacheSlots.Dec()
	}
}

// Len reports the number of live slots across all shards (diagnostics).
func (c *ShardedCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].tables)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Package smartgrid implements the paper's second future-work extension
// (§VII): integrating EcoCharge "with smart grid technologies and taking
// advantage of off-peak electricity rates and grid stabilization services."
//
// It adds two more estimated components on top of the CkNN-EC core — a
// time-of-use tariff and a grid-stress signal — and an Advisor that
// re-ranks an Offering Table with a grid-aware score:
//
//	GS = SC − β·pricê − γ·stresŝ
//
// where pricê is the normalized tariff interval at the charging window and
// stresŝ the forecast grid stress. Both are intervals, so the re-ranking
// reuses the same interval machinery (eq. 6 style) as the core.
package smartgrid

import (
	"fmt"
	"math"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/interval"
)

// Band is a tariff price band.
type Band uint8

// Tariff bands, cheapest first.
const (
	OffPeak Band = iota
	Shoulder
	Peak
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case OffPeak:
		return "off-peak"
	case Shoulder:
		return "shoulder"
	case Peak:
		return "peak"
	}
	return fmt.Sprintf("band(%d)", uint8(b))
}

// Tariff is a weekly time-of-use schedule with per-band prices in €/kWh.
type Tariff struct {
	// Prices per band. Zero value selects a typical EU retail spread.
	Prices map[Band]float64
	// Schedule maps (weekday, hour) to a band. The zero value selects the
	// common pattern: off-peak nights and weekend mornings, peak on
	// weekday evenings, shoulder otherwise.
	Schedule func(day time.Weekday, hour int) Band
}

// DefaultTariff returns the standard schedule.
func DefaultTariff() *Tariff {
	return &Tariff{
		Prices: map[Band]float64{OffPeak: 0.18, Shoulder: 0.28, Peak: 0.42},
	}
}

func (t *Tariff) prices() map[Band]float64 {
	if len(t.Prices) == 3 {
		return t.Prices
	}
	return map[Band]float64{OffPeak: 0.18, Shoulder: 0.28, Peak: 0.42}
}

// BandAt returns the band in effect at time ts.
func (t *Tariff) BandAt(ts time.Time) Band {
	if t.Schedule != nil {
		return t.Schedule(ts.Weekday(), ts.Hour())
	}
	h := ts.Hour()
	weekend := ts.Weekday() == time.Saturday || ts.Weekday() == time.Sunday
	switch {
	case h < 6 || h >= 23:
		return OffPeak
	case weekend && h < 12:
		return OffPeak
	case !weekend && h >= 17 && h < 21:
		return Peak
	default:
		return Shoulder
	}
}

// PriceAt returns the €/kWh price at ts.
func (t *Tariff) PriceAt(ts time.Time) float64 {
	return t.prices()[t.BandAt(ts)]
}

// SessionPrice returns the average €/kWh interval over a charging session
// starting at eta with the given duration, sampled in 15-minute steps.
// Day-ahead tariffs are known exactly, so the interval is the min..max of
// bands touched by the session.
func (t *Tariff) SessionPrice(eta time.Time, session time.Duration) interval.I {
	if session <= 0 {
		p := t.PriceAt(eta)
		return interval.Exact(p)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for ts := eta; ts.Before(eta.Add(session)); ts = ts.Add(15 * time.Minute) {
		p := t.PriceAt(ts)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return interval.New(lo, hi)
}

// MaxPrice returns the highest configured price, the normalizer of pricê.
func (t *Tariff) MaxPrice() float64 {
	max := 0.0
	for _, p := range t.prices() {
		if p > max {
			max = p
		}
	}
	return max
}

// GridSignal forecasts grid stress in [0, 1]: 0 means surplus (charging
// helps the grid absorb renewables), 1 means strain (charging competes
// with peak demand). The deterministic shape peaks on weekday evenings and
// dips around solar noon; forecast uncertainty grows mildly with horizon.
type GridSignal struct {
	// PeakStress scales the evening strain. 0 selects 0.9.
	PeakStress float64
}

// NewGridSignal returns the default signal.
func NewGridSignal() *GridSignal { return &GridSignal{PeakStress: 0.9} }

func (g *GridSignal) peak() float64 {
	if g.PeakStress <= 0 || g.PeakStress > 1 {
		return 0.9
	}
	return g.PeakStress
}

// Truth returns the actual stress at ts.
func (g *GridSignal) Truth(ts time.Time) float64 {
	h := float64(ts.Hour()) + float64(ts.Minute())/60
	weekend := ts.Weekday() == time.Saturday || ts.Weekday() == time.Sunday
	evening := math.Exp(-(h - 19) * (h - 19) / 6)
	morning := 0.5 * math.Exp(-(h-8)*(h-8)/4)
	solarDip := 0.35 * math.Exp(-(h-13)*(h-13)/8)
	base := 0.25 + g.peak()*(evening+morning)/1.5 - solarDip
	if weekend {
		base *= 0.7
	}
	if base < 0 {
		return 0
	}
	if base > 1 {
		return 1
	}
	return base
}

// Forecast returns the stress interval at ts for an estimate issued at
// issuedAt.
func (g *GridSignal) Forecast(ts, issuedAt time.Time) interval.I {
	truth := g.Truth(ts)
	horizon := ts.Sub(issuedAt).Hours()
	if horizon < 0 {
		horizon = 0
	}
	err := math.Min(0.02+0.02*horizon, 0.15)
	return interval.New(truth-err, truth+err).Clamp(0, 1)
}

// Advisor re-ranks Offering Tables with the grid-aware score.
type Advisor struct {
	Tariff *Tariff
	Grid   *GridSignal
	// PriceWeight (β) and StressWeight (γ) scale the two penalties.
	// Zero values select 0.2 each.
	PriceWeight  float64
	StressWeight float64
	// Session is the assumed charging duration. 0 selects 45 minutes.
	Session time.Duration
}

// NewAdvisor returns an advisor with default weights over the tariff and
// signal.
func NewAdvisor(t *Tariff, g *GridSignal) *Advisor {
	return &Advisor{Tariff: t, Grid: g, PriceWeight: 0.2, StressWeight: 0.2}
}

func (a *Advisor) weights() (beta, gamma float64) {
	beta, gamma = a.PriceWeight, a.StressWeight
	if beta <= 0 {
		beta = 0.2
	}
	if gamma <= 0 {
		gamma = 0.2
	}
	return beta, gamma
}

func (a *Advisor) session() time.Duration {
	if a.Session <= 0 {
		return 45 * time.Minute
	}
	return a.Session
}

// Advice is one grid-aware Offering Table row.
type Advice struct {
	Entry cknn.Entry
	// GS is the grid-aware score interval.
	GS interval.I
	// Price is the €/kWh interval of the session.
	Price interval.I
	// Stress is the grid-stress interval at the ETA.
	Stress interval.I
	// Band is the tariff band at the ETA.
	Band Band
}

// Advise re-ranks the table's entries by the grid-aware score GS,
// descending. issuedAt anchors the stress forecast horizon.
func (a *Advisor) Advise(table cknn.OfferingTable, issuedAt time.Time) []Advice {
	beta, gamma := a.weights()
	maxPrice := a.Tariff.MaxPrice()
	out := make([]Advice, 0, len(table.Entries))
	for _, e := range table.Entries {
		price := a.Tariff.SessionPrice(e.Comp.ETA, a.session())
		stress := a.Grid.Forecast(e.Comp.ETA, issuedAt)
		pn := price.Normalize(maxPrice)
		gs := e.SC.Sub(pn.Scale(beta)).Sub(stress.Scale(gamma))
		out = append(out, Advice{
			Entry:  e,
			GS:     gs,
			Price:  price,
			Stress: stress,
			Band:   a.Tariff.BandAt(e.Comp.ETA),
		})
	}
	// Order by GS midpoint, ties by lower price then charger ID.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessAdvice(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func lessAdvice(x, y Advice) bool {
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if x.GS.Mid() != y.GS.Mid() {
		return x.GS.Mid() > y.GS.Mid()
	}
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if x.Price.Mid() != y.Price.Mid() {
		return x.Price.Mid() < y.Price.Mid()
	}
	return x.Entry.Charger.ID < y.Entry.Charger.ID
}

// SessionCost estimates the €-cost interval of charging kWh energy
// starting at eta.
func (a *Advisor) SessionCost(eta time.Time, kWh float64) interval.I {
	if kWh <= 0 {
		return interval.Exact(0)
	}
	return a.Tariff.SessionPrice(eta, a.session()).Scale(kWh)
}

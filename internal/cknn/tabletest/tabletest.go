// Package tabletest checks the structural invariants every Offering Table
// must satisfy, regardless of which ranking method produced it or how
// degraded its EC sources were. The differential, chaos and property suites
// all assert through this one helper so "valid table" means the same thing
// everywhere:
//
//   - at most k entries, each with a charger, no charger offered twice;
//   - SC is a well-formed interval inside [0,1] (SC_min ≤ SC_max), and each
//     normalized component L/A/D is inside [0,1];
//   - a set Degraded bit carries the ignorance bound [0,1] on its component
//     — degradation widens intervals, it never invents information;
//   - the shard-degraded bit (an unreachable fleet partition) implies all
//     three component bits: a shard outage takes every source with it, so a
//     shard-tagged entry is fully widened;
//   - entries are totally ordered best-first by SC midpoint with the
//     documented tie-break chain (SC_max desc, SC_min desc, charger ID asc),
//     which reads only the score interval — the Degraded bitmask can never
//     alter the ordering inputs.
package tabletest

import (
	"fmt"
	"testing"

	"ecocharge/internal/cknn"
)

// eps absorbs the float rounding of the weighted interval sum; invariants
// are semantic bounds, not bit patterns.
const eps = 1e-9

// Options tune which invariants apply.
type Options struct {
	// SkipScores disables the SC/component/order checks for methods that
	// never compute scores (the Random baseline fills entries with zero
	// values). Structural checks (size, duplicates, nil chargers) remain.
	SkipScores bool
}

// Check fails the test when the table violates any invariant. The label
// names the producing method/trip in failure messages.
func Check(t testing.TB, table cknn.OfferingTable, k int, label string) {
	t.Helper()
	CheckOpts(t, table, k, label, Options{})
}

// CheckOpts is Check with explicit options.
func CheckOpts(t testing.TB, table cknn.OfferingTable, k int, label string, opts Options) {
	t.Helper()
	if err := Err(table, k, opts); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

// Err reports the first violated invariant, or nil. It is the non-fatal
// core of Check so property-based tests can feed it to testing/quick.
func Err(table cknn.OfferingTable, k int, opts Options) error {
	if k >= 0 && len(table.Entries) > k {
		return fmt.Errorf("table holds %d entries, want at most %d", len(table.Entries), k)
	}
	seen := make(map[int64]bool, len(table.Entries))
	for i, e := range table.Entries {
		if e.Charger == nil {
			return fmt.Errorf("entry %d has no charger", i)
		}
		if seen[e.Charger.ID] {
			return fmt.Errorf("charger %d offered twice", e.Charger.ID)
		}
		seen[e.Charger.ID] = true
		if opts.SkipScores {
			continue
		}
		if err := checkScores(e, i); err != nil {
			return err
		}
		if i > 0 {
			if err := checkOrder(table.Entries[i-1], e, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkScores bounds the score interval and the normalized components, and
// enforces the degradation contract per component.
func checkScores(e cknn.Entry, i int) error {
	if !(e.SC.Min <= e.SC.Max) || e.SC.Min < -eps || e.SC.Max > 1+eps {
		return fmt.Errorf("entry %d (charger %d): SC [%v,%v] outside [0,1]",
			i, e.Charger.ID, e.SC.Min, e.SC.Max)
	}
	if e.Comp.Degraded&cknn.DegradedShard != 0 && e.Comp.Degraded != cknn.DegradedAll {
		return fmt.Errorf("entry %d (charger %d): shard-degraded mask %q is not fully widened",
			i, e.Charger.ID, e.Comp.Degraded)
	}
	comps := [...]struct {
		name     string
		min, max float64
		deg      bool
	}{
		{"L", e.Comp.L.Min, e.Comp.L.Max, e.Comp.Degraded.Has(cknn.CompL)},
		{"A", e.Comp.A.Min, e.Comp.A.Max, e.Comp.Degraded.Has(cknn.CompA)},
		{"D", e.Comp.D.Min, e.Comp.D.Max, e.Comp.Degraded.Has(cknn.CompD)},
	}
	for _, c := range comps {
		if !(c.min <= c.max) || c.min < -eps || c.max > 1+eps {
			return fmt.Errorf("entry %d (charger %d): component %s [%v,%v] outside [0,1]",
				i, e.Charger.ID, c.name, c.min, c.max)
		}
		//ecolint:ignore floateq the ignorance bound is the literal interval [0,1], not a computed value
		if c.deg && (c.min != 0 || c.max != 1) {
			return fmt.Errorf("entry %d (charger %d): degraded %s is [%v,%v], want the ignorance bound [0,1]",
				i, e.Charger.ID, c.name, c.min, c.max)
		}
	}
	return nil
}

// checkOrder enforces the best-first total order between adjacent entries:
// SC midpoint descending, ties by SC_max descending, then SC_min
// descending, then charger ID ascending. Only score-interval fields are
// read, so any influence of the Degraded bitmask on emitted order would
// surface as a violation here.
func checkOrder(prev, cur cknn.Entry, i int) error {
	pm, cm := prev.SC.Mid(), cur.SC.Mid()
	if pm < cm {
		return fmt.Errorf("entries %d/%d out of order: SC mid %v < %v", i-1, i, pm, cm)
	}
	//ecolint:ignore floateq total-order tie-break needs exact comparison, as in the sort comparator
	if pm != cm {
		return nil
	}
	switch {
	//ecolint:ignore floateq total-order tie-break needs exact comparison, as in the sort comparator
	case prev.SC.Max != cur.SC.Max:
		if prev.SC.Max < cur.SC.Max {
			return fmt.Errorf("tie at entry %d broken against SC_max order", i)
		}
	//ecolint:ignore floateq total-order tie-break needs exact comparison, as in the sort comparator
	case prev.SC.Min != cur.SC.Min:
		if prev.SC.Min < cur.SC.Min {
			return fmt.Errorf("tie at entry %d broken against SC_min order", i)
		}
	case prev.Charger.ID >= cur.Charger.ID:
		return fmt.Errorf("full tie at entry %d not in charger-ID order", i)
	}
	return nil
}

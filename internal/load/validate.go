package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/cknn/tabletest"
	"ecocharge/internal/eis"
	"ecocharge/internal/interval"
	"ecocharge/internal/wire"
)

// Outcome classifies one response for the goodput accounting.
type Outcome int

const (
	// OutcomeValid is a 200 whose table passes every tabletest invariant
	// and carries no degraded marker — the only bucket goodput counts.
	OutcomeValid Outcome = iota
	// OutcomeDegraded is a tabletest-valid 200 that carries degraded
	// entries or the X-Fleet-Degraded header: a correct answer computed
	// under partial knowledge. Accounted separately from goodput.
	OutcomeDegraded
	// OutcomeShed is a 503 with a parseable Retry-After — the documented
	// overload answer.
	OutcomeShed
	// OutcomeInvalid is a 200 whose body fails decoding or violates a
	// tabletest invariant, or a 503 without a parseable Retry-After: a
	// contract violation, never acceptable at any load.
	OutcomeInvalid
	// OutcomeError is a transport failure, timeout, or unexpected status.
	OutcomeError
	outcomeCount
)

func (o Outcome) String() string {
	switch o {
	case OutcomeValid:
		return "valid"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeShed:
		return "shed"
	case OutcomeInvalid:
		return "invalid"
	default:
		return "error"
	}
}

// degradedHeader is the gateway's partial-merge marker (fleet package).
const degradedHeader = "X-Fleet-Degraded"

// Classify validates one HTTP exchange against the overload contract:
// every response must be a tabletest-valid 200 or a 503 with parseable
// Retry-After; anything else is a violation. The returned error explains
// Invalid/Error outcomes for the contract suite's failure messages.
func Classify(status int, header http.Header, body []byte, k int) (Outcome, error) {
	switch status {
	case http.StatusOK:
		resp, err := decodeOffering(header.Get("Content-Type"), body)
		if err != nil {
			return OutcomeInvalid, err
		}
		if err := checkTable(resp, k); err != nil {
			return OutcomeInvalid, err
		}
		if isDegraded(header, resp) {
			return OutcomeDegraded, nil
		}
		return OutcomeValid, nil
	case http.StatusServiceUnavailable:
		if _, ok := eis.ParseRetryAfter(header.Get("Retry-After"), time.Now()); !ok {
			return OutcomeInvalid, fmt.Errorf("503 without parseable Retry-After (%q)", header.Get("Retry-After"))
		}
		return OutcomeShed, nil
	default:
		return OutcomeError, fmt.Errorf("unexpected status %d: %.200s", status, body)
	}
}

// decodeOffering parses the body by its Content-Type: binary wire frames
// or JSON, the same negotiation the servers perform.
func decodeOffering(contentType string, body []byte) (*wire.OfferingResponse, error) {
	var resp wire.OfferingResponse
	if wire.IsWire(contentType) {
		if err := wire.DecodeOfferingResponse(body, &resp); err != nil {
			return nil, fmt.Errorf("wire body corrupt: %w", err)
		}
		return &resp, nil
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("JSON body corrupt: %w", err)
	}
	return &resp, nil
}

// checkTable rebuilds a cknn table from the response entries and runs the
// full tabletest invariant suite on it. The chargers are synthesized from
// the entry IDs — everything tabletest reads (IDs for duplicate detection
// and tie-breaks, score/component intervals, degraded bits) travels in the
// response, so the check needs no environment and works against any
// remote target.
func checkTable(resp *wire.OfferingResponse, k int) error {
	tab := cknn.OfferingTable{GeneratedAt: resp.GeneratedAt}
	stubs := make([]charger.Charger, len(resp.Entries))
	for i, e := range resp.Entries {
		stubs[i] = charger.Charger{ID: e.ChargerID}
		tab.Entries = append(tab.Entries, cknn.Entry{
			Charger: &stubs[i],
			SC:      interval.FromBounds(e.SC.Min, e.SC.Max),
			Comp: cknn.Components{
				L: e.L.Interval(), A: e.A.Interval(), D: e.D.Interval(),
				Degraded: cknn.Degraded(e.Degraded),
			},
		})
	}
	return tabletest.Err(tab, k, tabletest.Options{})
}

// isDegraded reports whether the response carries any degraded marker:
// the gateway's partial-merge header or per-entry degraded bits.
func isDegraded(header http.Header, resp *wire.OfferingResponse) bool {
	if header.Get(degradedHeader) != "" {
		return true
	}
	for _, e := range resp.Entries {
		if e.Degraded != 0 {
			return true
		}
	}
	return false
}

// Package obs is the repo's stdlib-only observability layer: an atomic
// metrics registry (counters, gauges, fixed-bucket histograms), lightweight
// span tracing with context propagation, and text/JSON exposition for the
// EIS's /metrics and /debug/vars endpoints.
//
// The design contract mirrors the flat-kernel discipline of DESIGN.md §8:
// metric updates on the ranking hot path are single atomic operations with
// zero allocations (proven by testing.AllocsPerRun), and every handle is
// nil-receiver safe so a disabled registry costs one predictable branch.
// Registration (Counter/Gauge/Histogram lookups by name) takes a lock and
// may allocate — it belongs in package init or constructor code, never
// inside ranking loops; the obsalloc ecolint check additionally forbids
// fmt.Sprintf-built metric names in the hot packages.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable;
// a nil *Counter discards updates, so instrumentation sites never branch on
// configuration.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil counters discard.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level (pool occupancy, live entries,
// breaker state). A nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by delta (negative deltas decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics and renders them. The zero value of
// *Registry (nil) is the disabled registry: every lookup returns a nil
// handle whose updates are discarded, which is what BenchmarkObsOverhead
// compares the instrumented engine against.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	logHistograms map[string]*LogHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		logHistograms: make(map[string]*LogHistogram),
	}
}

// defaultRegistry is the process-wide registry every instrumented package
// registers into; the EIS exposes it at /metrics and /debug/vars and
// ecobench snapshots it into the -json rows.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Lookups are
// idempotent: the same name always yields the same handle. A nil registry
// returns a nil (discarding) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls keep the original buckets). Nil or
// empty bounds select DurationBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// LogHistogram returns the named log-bucket histogram, creating it on
// first use. Unlike Histogram there are no bounds to choose: the
// log-linear bucket layout is fixed and covers the whole duration range.
func (r *Registry) LogHistogram(name string) *LogHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.logHistograms[name]
	if !ok {
		h = NewLogHistogram()
		r.logHistograms[name] = h
	}
	return h
}

// names returns the sorted metric names of one kind; callers hold no lock.
func sortedKeys[M any](m map[string]M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Command ecolint runs the repo-specific static-analysis pass over the
// given package patterns (default ./...). It is built purely on the
// standard library's go/ast, go/parser, go/token and go/types; the go
// command is invoked only for package metadata and export data.
//
// Usage:
//
//	ecolint [flags] [packages]
//
// Flags:
//
//	-json             emit findings as a JSON array instead of text
//	-enable  a,b,...  run only the named analyzers
//	-disable a,b,...  run all but the named analyzers
//	-list             print the available analyzers and exit
//	-tags    a,b,...  build tags to apply when loading packages
//	-C dir            run as if started in dir
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ecocharge/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ecolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
		list    = fs.Bool("list", false, "list available analyzers and exit")
		tags    = fs.String("tags", "", "comma-separated build tags to apply when loading packages")
		chdir   = fs.String("C", ".", "directory to run in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			outf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		outln(stderr, "ecolint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var buildTags []string
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			buildTags = append(buildTags, t)
		}
	}
	pkgs, err := lint.Load(*chdir, patterns, buildTags...)
	if err != nil {
		outln(stderr, "ecolint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			outln(stderr, "ecolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			outln(stdout, d)
		}
		if len(diags) > 0 {
			outf(stderr, "ecolint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -enable/-disable flags against lint.All.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	parse := func(s string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	switch {
	case enable != "":
		want, err := parse(enable)
		if err != nil {
			return nil, err
		}
		var out []*lint.Analyzer
		for _, a := range lint.All {
			if want[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	case disable != "":
		skip, err := parse(disable)
		if err != nil {
			return nil, err
		}
		var out []*lint.Analyzer
		for _, a := range lint.All {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return lint.All, nil
	}
}

// outf and outln write CLI output; errors writing to the process streams
// are unactionable, so they are deliberately dropped here and nowhere else.
func outf(w io.Writer, format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }

func outln(w io.Writer, args ...any) { _, _ = fmt.Fprintln(w, args...) }

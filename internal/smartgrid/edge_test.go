package smartgrid_test

import (
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/interval"
	"ecocharge/internal/smartgrid"
)

// Heavier price weight flips a ranking that mild weights keep: a slightly
// better-SC peak charger loses to an off-peak one once β grows.
func TestPriceWeightControlsTradeoff(t *testing.T) {
	peakEntry := cknn.Entry{
		Charger: &charger.Charger{ID: 1},
		SC:      interval.New(0.74, 0.78), // a bit better
		Comp:    cknn.Components{ETA: time.Date(2024, 6, 18, 18, 0, 0, 0, time.UTC)},
	}
	offEntry := cknn.Entry{
		Charger: &charger.Charger{ID: 2},
		SC:      interval.New(0.70, 0.74),
		Comp:    cknn.Components{ETA: time.Date(2024, 6, 19, 1, 0, 0, 0, time.UTC)},
	}
	table := cknn.OfferingTable{Entries: []cknn.Entry{peakEntry, offEntry}}
	now := time.Date(2024, 6, 18, 17, 0, 0, 0, time.UTC)

	mild := smartgrid.NewAdvisor(smartgrid.DefaultTariff(), smartgrid.NewGridSignal())
	mild.PriceWeight, mild.StressWeight = 0.01, 0.01
	if got := mild.Advise(table, now); got[0].Entry.Charger.ID != 1 {
		t.Fatalf("mild weights flipped the SC order: %v first", got[0].Entry.Charger.ID)
	}

	harsh := smartgrid.NewAdvisor(smartgrid.DefaultTariff(), smartgrid.NewGridSignal())
	harsh.PriceWeight, harsh.StressWeight = 0.5, 0.5
	if got := harsh.Advise(table, now); got[0].Entry.Charger.ID != 2 {
		t.Fatalf("harsh weights did not prefer off-peak: %v first", got[0].Entry.Charger.ID)
	}
}

// A session straddling the peak→off-peak boundary prices as an interval
// spanning both bands.
func TestSessionAcrossBandBoundary(t *testing.T) {
	tf := smartgrid.DefaultTariff()
	start := time.Date(2024, 6, 18, 20, 30, 0, 0, time.UTC) // peak ends 21:00
	iv := tf.SessionPrice(start, time.Hour)
	if iv.IsExact() {
		t.Fatalf("boundary-straddling session priced as a point: %v", iv)
	}
	if iv.Max != tf.PriceAt(start) {
		t.Errorf("interval max %v is not the peak price", iv.Max)
	}
	if iv.Min >= iv.Max {
		t.Errorf("interval %v not widened by the cheaper band", iv)
	}
}

package trajectory

import (
	"time"

	"ecocharge/internal/geo"
)

// IdlePeriod is a hoarding opportunity: a stretch of a trajectory where
// the vehicle stayed within a small radius for a while — the taxi waiting
// for a ride, the parent at after-school practice, the shopper at the
// mall (paper §I). EcoCharge targets exactly these windows.
type IdlePeriod struct {
	// Center is the mean position of the idle samples.
	Center geo.Point
	// Start and End bound the window.
	Start, End time.Time
	// Samples is how many trajectory points the window covers.
	Samples int
}

// Duration returns the window length.
func (ip IdlePeriod) Duration() time.Duration { return ip.End.Sub(ip.Start) }

// IdleConfig tunes detection.
type IdleConfig struct {
	// MinDuration is the shortest stay that counts as idle. 0 selects
	// 10 minutes (enough for a meaningful AC hoarding session).
	MinDuration time.Duration
	// MaxRadiusM bounds how far samples may wander around the window's
	// anchor while still counting as "staying". 0 selects 150 m.
	MaxRadiusM float64
}

func (c IdleConfig) withDefaults() IdleConfig {
	if c.MinDuration <= 0 {
		c.MinDuration = 10 * time.Minute
	}
	if c.MaxRadiusM <= 0 {
		c.MaxRadiusM = 150
	}
	return c
}

// DetectIdlePeriods scans the trajectory for hoarding opportunities: it
// greedily grows windows anchored at each candidate sample while all
// samples stay within MaxRadiusM of the anchor, and keeps windows lasting
// at least MinDuration. Windows never overlap; scanning resumes after
// each detected window.
func DetectIdlePeriods(tr Trajectory, cfg IdleConfig) []IdlePeriod {
	cfg = cfg.withDefaults()
	pts := tr.Points
	var out []IdlePeriod
	i := 0
	for i < len(pts) {
		anchor := pts[i].P
		j := i + 1
		for j < len(pts) && geo.Distance(anchor, pts[j].P) <= cfg.MaxRadiusM {
			j++
		}
		if pts[j-1].T.Sub(pts[i].T) >= cfg.MinDuration {
			var latSum, lonSum float64
			for _, p := range pts[i:j] {
				latSum += p.P.Lat
				lonSum += p.P.Lon
			}
			n := float64(j - i)
			out = append(out, IdlePeriod{
				Center:  geo.Point{Lat: latSum / n, Lon: lonSum / n},
				Start:   pts[i].T,
				End:     pts[j-1].T,
				Samples: j - i,
			})
			i = j
			continue
		}
		i++
	}
	return out
}

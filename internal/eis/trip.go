package eis

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// LatLon is a wire waypoint.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// TripOfferingRequest asks the EIS to evaluate a whole scheduled trip: the
// waypoints are snapped to the road network, routed with shortest paths,
// partitioned into segments, and each segment gets an Offering Table — the
// full Mode 2 form of the continuous CkNN-EC query.
type TripOfferingRequest struct {
	Waypoints []LatLon  `json:"waypoints"`
	Depart    time.Time `json:"depart"`
	K         int       `json:"k"`
	RadiusM   float64   `json:"radius_m"`
	// ReuseDistM is the dynamic-cache Q used across the trip's segments.
	ReuseDistM  float64     `json:"reuse_dist_m"`
	SegmentLenM float64     `json:"segment_len_m"`
	Weights     WeightsJSON `json:"weights"`
}

// SegmentOffering is one per-segment result of a trip evaluation.
type SegmentOffering struct {
	SegmentIndex int             `json:"segment_index"`
	Anchor       LatLon          `json:"anchor"`
	ETA          time.Time       `json:"eta"`
	LengthM      float64         `json:"length_m"`
	Adapted      bool            `json:"adapted"` // served by the dynamic cache
	Entries      []OfferingEntry `json:"entries"`
}

// TripOfferingResponse is the whole-trip Mode 2 result.
type TripOfferingResponse struct {
	TripLengthM float64           `json:"trip_length_m"`
	Segments    []SegmentOffering `json:"segments"`
	SplitPoints []int             `json:"split_points"` // segment indexes where the top-k set changes
}

// handleTripOffering implements POST /api/v1/offering/trip.
func (s *Server) handleTripOffering(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req TripOfferingRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Waypoints) < 2 {
		s.writeError(w, http.StatusBadRequest, "need at least 2 waypoints, got %d", len(req.Waypoints))
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	if req.RadiusM <= 0 {
		req.RadiusM = 50000
	}
	if req.SegmentLenM <= 0 {
		req.SegmentLenM = 4000
	}
	if req.Depart.IsZero() {
		req.Depart = s.opts.Clock()
	}
	weights := cknn.Weights{L: req.Weights.L, A: req.Weights.A, D: req.Weights.D}
	if req.Weights == (WeightsJSON{}) {
		weights = cknn.EqualWeights()
	} else if err := weights.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Snap and route the waypoints.
	var nodes []roadnet.NodeID
	var total float64
	for i, wp := range req.Waypoints {
		p := geo.Point{Lat: wp.Lat, Lon: wp.Lon}
		if !p.Valid() {
			s.writeError(w, http.StatusBadRequest, "waypoint %d invalid: (%v, %v)", i, wp.Lat, wp.Lon)
			return
		}
		n := s.env.Graph.NearestNode(p)
		if n == roadnet.Invalid {
			s.writeError(w, http.StatusUnprocessableEntity, "waypoint %d not on the road network", i)
			return
		}
		if len(nodes) == 0 {
			nodes = append(nodes, n)
			continue
		}
		if n == nodes[len(nodes)-1] {
			continue
		}
		leg, ok := s.env.Graph.ShortestPath(nodes[len(nodes)-1], n, roadnet.DistanceWeight)
		if !ok {
			s.writeError(w, http.StatusUnprocessableEntity, "waypoint %d unreachable from previous", i)
			return
		}
		nodes = append(nodes, leg.Nodes[1:]...)
		total += leg.Weight
	}
	if len(nodes) < 2 {
		s.writeError(w, http.StatusBadRequest, "waypoints collapse to a single road node")
		return
	}

	trip := trajectory.Trip{ID: 1, Path: roadnet.Path{Nodes: nodes, Weight: total}, Depart: req.Depart}
	method := cknn.NewEcoCharge(s.env, cknn.EcoChargeOptions{RadiusM: req.RadiusM, ReuseDistM: req.ReuseDistM})
	results := cknn.RunTrip(s.env, method, trip, cknn.TripOptions{
		K: req.K, SegmentLenM: req.SegmentLenM, RadiusM: req.RadiusM, Weights: weights,
		Workers: s.opts.Workers,
	})

	resp := TripOfferingResponse{TripLengthM: total}
	var prev []int64
	for _, res := range results {
		seg := SegmentOffering{
			SegmentIndex: res.Segment.Index,
			Anchor:       LatLon{Lat: res.Segment.Anchor.Lat, Lon: res.Segment.Anchor.Lon},
			ETA:          res.Segment.ETA,
			LengthM:      res.Segment.LengthM,
			Adapted:      res.Table.Adapted,
		}
		for _, e := range res.Table.Entries {
			seg.Entries = append(seg.Entries, wireEntry(e))
		}
		ids := res.Table.IDs()
		if len(resp.Segments) == 0 || !sameIDs(prev, ids) {
			resp.SplitPoints = append(resp.SplitPoints, res.Segment.Index)
			prev = ids
		}
		resp.Segments = append(resp.Segments, seg)
	}
	writeJSON(w, resp)
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TripOffering requests a whole-trip evaluation (client side).
func (c *Client) TripOffering(ctx context.Context, req TripOfferingRequest) (TripOfferingResponse, error) {
	var out TripOfferingResponse
	err := c.post(ctx, "/offering/trip", req, &out)
	return out, err
}

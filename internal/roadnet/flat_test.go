package roadnet

// Differential property suite for the flat kernel (flat.go): every query is
// replayed against a map-backed reference Dijkstra — a faithful copy of the
// implementation the kernel replaced — and results must match bit for bit.
// This mirrors the seq≡par methodology of the parallel-engine PR: the old
// code path became the test oracle before it was deleted.

import (
	"container/heap"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ecocharge/internal/geo"
)

// --- map-backed reference implementation (the pre-flat code, verbatim) ---

type refItem struct {
	node NodeID
	prio float64
}

type refHeap []refItem

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refDijkstra is the old (*Graph).dijkstra: forward search with maps.
func refDijkstra(g *Graph, src, dst NodeID, w WeightFunc, maxWeight float64) (map[NodeID]float64, map[NodeID]NodeID) {
	if !g.validID(src) {
		return nil, nil
	}
	dist := map[NodeID]float64{src: 0}
	prev := make(map[NodeID]NodeID)
	done := make(map[NodeID]bool)
	pq := &refHeap{{node: src, prio: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(refItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			break
		}
		for _, ei := range g.adj[cur.node] {
			e := g.edges[ei]
			wt := w(e)
			nd := dist[cur.node] + wt
			if nd > maxWeight {
				continue
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur.node
				heap.Push(pq, refItem{node: e.To, prio: nd})
			}
		}
	}
	return dist, prev
}

// refDistancesTo is the old (*Graph).DistancesTo: reverse search with maps.
func refDistancesTo(g *Graph, dst NodeID, w WeightFunc, maxWeight float64) map[NodeID]float64 {
	if !g.validID(dst) {
		return nil
	}
	dist := map[NodeID]float64{dst: 0}
	done := make(map[NodeID]bool)
	pq := &refHeap{{node: dst, prio: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(refItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		for _, ei := range g.radj[cur.node] {
			e := g.edges[ei]
			wt := w(e)
			nd := dist[cur.node] + wt
			if nd > maxWeight {
				continue
			}
			if old, ok := dist[e.From]; !ok || nd < old {
				dist[e.From] = nd
				heap.Push(pq, refItem{node: e.From, prio: nd})
			}
		}
	}
	return dist
}

// --- graph fixtures ---

// randomSparseGraph builds a graph of n nodes with roughly deg directed
// edges per node and random classes; with isolateTail, the last quarter of
// the nodes gets no edges at all (disconnected components).
func randomSparseGraph(seed int64, n, deg int, isolateTail bool) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, n*deg)
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{
			Lat: 53 + rng.Float64()*0.3,
			Lon: 8 + rng.Float64()*0.5,
		})
	}
	connected := n
	if isolateTail {
		connected = n - n/4
	}
	for i := 0; i < connected; i++ {
		for d := 0; d < deg; d++ {
			to := NodeID(rng.Intn(connected))
			if to == NodeID(i) {
				continue
			}
			length := 100 + rng.Float64()*5000
			g.AddEdge(NodeID(i), to, length, RoadClass(rng.Intn(NumRoadClasses)))
		}
	}
	g.Freeze()
	return g
}

func smallUrban(seed int64) *Graph {
	cfg := DefaultUrbanConfig()
	cfg.WidthKM, cfg.HeightKM = 4, 3
	cfg.Seed = seed
	return GenerateUrban(cfg)
}

func diffGraphs() map[string]*Graph {
	return map[string]*Graph{
		"tiny":         tinyGraph(),
		"urban1":       smallUrban(1),
		"urban7":       smallUrban(7),
		"sparse":       randomSparseGraph(3, 200, 3, false),
		"disconnected": randomSparseGraph(4, 160, 2, true),
		"loops":        randomSparseGraphWithLoops(5, 120),
	}
}

// randomSparseGraphWithLoops adds self loops and parallel edges on top of a
// random base, the degenerate shapes the kernel must tolerate.
func randomSparseGraphWithLoops(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, n*4)
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{Lat: 53 + rng.Float64()*0.2, Lon: 8 + rng.Float64()*0.3})
	}
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n), 500+rng.Float64()*1000, ClassLocal)
		if rng.Intn(4) == 0 {
			g.AddEdge(NodeID(i), NodeID(i), 100, ClassLocal) // self loop
		}
		if rng.Intn(3) == 0 {
			to := NodeID(rng.Intn(n))
			g.AddEdge(NodeID(i), to, 900, ClassArterial)
			g.AddEdge(NodeID(i), to, 1100, ClassArterial) // parallel
		}
	}
	g.Freeze()
	return g
}

func diffTables() map[string]ClassWeights {
	skew := ClassWeights{0.9, 1.7, 0.4, 2.3}
	return map[string]ClassWeights{
		"distance": DistanceClassWeights(),
		"time":     TimeClassWeights(),
		"skew":     skew,
	}
}

// expansionToMap reads every node of the flat expansion into a map so it can
// be compared against the reference output.
func expansionToMap(g *Graph, x Expansion) map[NodeID]float64 {
	out := make(map[NodeID]float64)
	for n := 0; n < g.NumNodes(); n++ {
		if d, ok := x.Dist(NodeID(n)); ok {
			out[NodeID(n)] = d
		}
	}
	return out
}

func requireSameDistances(t *testing.T, got, want map[NodeID]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("reached-set size: got %d nodes, want %d", len(got), len(want))
	}
	for n, w := range want {
		gv, ok := got[n]
		if !ok {
			t.Fatalf("node %d missing from flat result (want %v)", n, w)
		}
		if math.Float64bits(gv) != math.Float64bits(w) {
			t.Fatalf("node %d: flat %v (%x) != reference %v (%x)",
				n, gv, math.Float64bits(gv), w, math.Float64bits(w))
		}
	}
}

// TestFlatExpansionMatchesMapKernel is the core differential property: for
// random graphs, disconnected components, multiple weight tables, bounded
// and unbounded searches, forward and reverse direction, the flat kernel
// must reproduce the map implementation's reached set and distances bit for
// bit.
func TestFlatExpansionMatchesMapKernel(t *testing.T) {
	for gname, g := range diffGraphs() {
		for tname, cw := range diffTables() {
			rng := rand.New(rand.NewSource(99))
			w := cw.Func()
			for trial := 0; trial < 8; trial++ {
				src := NodeID(rng.Intn(g.NumNodes()))
				for _, bound := range []float64{math.Inf(1), 1500, 4000} {
					// Forward.
					want, _ := refDijkstra(g, src, Invalid, w, bound)
					x := g.ExpandFrom(src, cw, bound)
					got := expansionToMap(g, x)
					x.Release()
					requireSameDistances(t, got, want)
					// Also via the map-shaped wrapper (WeightFunc path).
					requireSameDistances(t, g.DistancesWithin(src, w, bound), want)

					// Reverse.
					wantR := refDistancesTo(g, src, w, bound)
					xr := g.ExpandTo(src, cw, bound)
					gotR := expansionToMap(g, xr)
					xr.Release()
					requireSameDistances(t, gotR, wantR)
					requireSameDistances(t, g.DistancesTo(src, w, bound), wantR)
				}
				_ = gname
				_ = tname
			}
		}
	}
}

// TestFlatExpansionBoundEdge pins the bound-inclusion rule: a node whose
// distance equals maxWeight exactly stays in the reached set (the skip is
// nd > maxWeight, strictly greater).
func TestFlatExpansionBoundEdge(t *testing.T) {
	g := tinyGraph()
	cw := DistanceClassWeights()
	// Node 4 is exactly 4000 m from node 0.
	x := g.ExpandFrom(0, cw, 4000)
	defer x.Release()
	if d, ok := x.Dist(4); !ok || d != 4000 {
		t.Fatalf("node on the bound: dist=%v ok=%v, want 4000 true", d, ok)
	}
	y := g.ExpandFrom(0, cw, 3999.999)
	defer y.Release()
	if _, ok := y.Dist(4); ok {
		t.Fatal("node beyond the bound must not be reached")
	}
}

// TestFlatPointQueriesMatchReference checks ShortestPath / ShortestDistance
// / AStar against the reference for random node pairs, including pairs with
// no connecting path.
func TestFlatPointQueriesMatchReference(t *testing.T) {
	for gname, g := range diffGraphs() {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 20; trial++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			want, _ := refDijkstra(g, src, Invalid, DistanceWeight, math.Inf(1))
			wantD, reachable := want[dst]

			p, ok := g.ShortestPath(src, dst, DistanceWeight)
			if ok != reachable {
				t.Fatalf("%s %d->%d: ShortestPath ok=%v, reference reachable=%v", gname, src, dst, ok, reachable)
			}
			if ok {
				if math.Float64bits(p.Weight) != math.Float64bits(wantD) {
					t.Fatalf("%s %d->%d: weight %v != reference %v", gname, src, dst, p.Weight, wantD)
				}
				if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
					t.Fatalf("%s %d->%d: bad endpoints %v", gname, src, dst, p.Nodes)
				}
				// The path must really cost its claimed weight.
				if got := pathWeight(g, p.Nodes, DistanceWeight); math.Abs(got-p.Weight) > 1e-6 {
					t.Fatalf("%s %d->%d: path sums to %v, claims %v", gname, src, dst, got, p.Weight)
				}
			}

			sd := g.ShortestDistance(src, dst, DistanceWeight)
			if reachable && math.Float64bits(sd) != math.Float64bits(wantD) {
				t.Fatalf("%s %d->%d: ShortestDistance %v != %v", gname, src, dst, sd, wantD)
			}
			if !reachable && !math.IsInf(sd, 1) {
				t.Fatalf("%s %d->%d: ShortestDistance %v, want +Inf", gname, src, dst, sd)
			}

			// Heuristic scale 0 keeps A* admissible on the random graphs,
			// whose edge lengths are independent of node geometry.
			ap, aok := g.AStar(src, dst, DistanceWeight, 0)
			if aok != reachable {
				t.Fatalf("%s %d->%d: AStar ok=%v, want %v", gname, src, dst, aok, reachable)
			}
			if aok && math.Abs(ap.Weight-wantD) > 1e-9 {
				t.Fatalf("%s %d->%d: AStar weight %v != %v", gname, src, dst, ap.Weight, wantD)
			}
		}
	}
}

func pathWeight(g *Graph, nodes []NodeID, w WeightFunc) float64 {
	var total float64
	for i := 1; i < len(nodes); i++ {
		best := math.Inf(1)
		g.OutEdges(nodes[i-1], func(e Edge) {
			if e.To == nodes[i] {
				if wt := w(e); wt < best {
					best = wt
				}
			}
		})
		total += best
	}
	return total
}

// TestClassWeightsMatchClosureBitwise pins the bit-identity contract between
// the table-driven kernel path and the closure form of the same table.
func TestClassWeightsMatchClosureBitwise(t *testing.T) {
	cw := ClassWeights{0.123456789, 1.7e-3, 42.75, 0.9999999}
	w := cw.Func()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		e := Edge{Length: rng.Float64() * 10000, Class: RoadClass(rng.Intn(NumRoadClasses))}
		a := cw.CostOf(e)
		b := w(e)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("edge %+v: table %x != closure %x", e, math.Float64bits(a), math.Float64bits(b))
		}
	}
}

// TestSearchStateStampWrap forces the generation counter through its uint32
// wrap-around and checks the arrays are cleanly reset instead of aliasing
// four-billion-search-old entries.
func TestSearchStateStampWrap(t *testing.T) {
	g := tinyGraph()
	st := newSearchState(g)
	st.stamp = math.MaxUint32 - 1
	// Fake stale data that would alias stamp 1 after a naive wrap.
	for i := range st.seen {
		st.seen[i] = 1
		st.mark[i].done = 1
		st.dist[i] = -123
	}
	st.begin() // -> MaxUint32
	if st.stamp != math.MaxUint32 {
		t.Fatalf("stamp = %d, want MaxUint32", st.stamp)
	}
	st.run(0, Invalid, nil, &ClassWeights{1, 1, 1, 1}, math.Inf(1), false, false)
	st.inUse = true
	st.begin() // wraps to 0 -> cleared, stamp 1
	if st.stamp != 1 {
		t.Fatalf("stamp after wrap = %d, want 1", st.stamp)
	}
	if st.reached(3) {
		t.Fatal("stale seen entry survived the wrap")
	}
	st.run(0, Invalid, nil, &ClassWeights{1, 1, 1, 1}, math.Inf(1), false, false)
	if d, ok := st.dist[4], st.reached(4); !ok || d != 4000 {
		t.Fatalf("post-wrap search: dist[4]=%v reached=%v, want 4000 true", d, ok)
	}
}

// TestExpansionZeroAllocSteadyState asserts the acceptance criterion
// directly: once the pool is warm, a bounded expansion plus release
// allocates nothing.
func TestExpansionZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	g := smallUrban(2)
	cw := TimeClassWeights()
	src := NodeID(0)
	// Warm the pool and the heap backing array.
	for i := 0; i < 4; i++ {
		x := g.ExpandFrom(src, cw, 600)
		x.Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		x := g.ExpandFrom(src, cw, 600)
		x.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state expansion allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentExpansions runs many expansions from different goroutines
// against one graph; under -race this proves the pooled states do not
// share mutable scratch. Results must match the sequential reference.
func TestConcurrentExpansions(t *testing.T) {
	g := smallUrban(3)
	cw := DistanceClassWeights()
	w := cw.Func()
	srcs := []NodeID{0, 5, 11, 17}
	wants := make([]map[NodeID]float64, len(srcs))
	for i, s := range srcs {
		wants[i], _ = refDijkstra(g, s, Invalid, w, 3000)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for rep := 0; rep < 4; rep++ {
		for i, s := range srcs {
			wg.Add(1)
			go func(i int, s NodeID) {
				defer wg.Done()
				for k := 0; k < 8; k++ {
					x := g.ExpandFrom(s, cw, 3000)
					for n, want := range wants[i] {
						if d, ok := x.Dist(n); !ok || math.Float64bits(d) != math.Float64bits(want) {
							errs <- "concurrent expansion diverged from reference"
							break
						}
					}
					x.Release()
				}
			}(i, s)
		}
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestHeap4PopsAscending is the heap property test: any push sequence pops
// in non-decreasing priority order and returns every element exactly once.
func TestHeap4PopsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		var h heap4
		n := rng.Intn(200)
		sum := 0
		for i := 0; i < n; i++ {
			node := NodeID(rng.Intn(1000))
			sum += int(node)
			h.push(node, rng.Float64()*100)
		}
		prevPrio := math.Inf(-1)
		popped := 0
		for len(h.items) > 0 {
			it := h.pop()
			if it.prio < prevPrio {
				t.Fatalf("trial %d: pop order violated: %v after %v", trial, it.prio, prevPrio)
			}
			prevPrio = it.prio
			sum -= int(it.node)
			popped++
		}
		if popped != n || sum != 0 {
			t.Fatalf("trial %d: popped %d of %d items (residual node sum %d)", trial, popped, n, sum)
		}
	}
}

// TestExpansionInvalidAndReleased covers the defensive surface: invalid
// origins yield empty (but releasable) expansions, the zero Expansion is
// inert, and Dist rejects out-of-range nodes.
func TestExpansionInvalidAndReleased(t *testing.T) {
	g := tinyGraph()
	x := g.ExpandFrom(Invalid, DistanceClassWeights(), math.Inf(1))
	for n := 0; n < g.NumNodes(); n++ {
		if _, ok := x.Dist(NodeID(n)); ok {
			t.Fatalf("invalid-origin expansion reached node %d", n)
		}
	}
	x.Release()
	x.Release() // double release is a no-op

	var zero Expansion
	if _, ok := zero.Dist(0); ok {
		t.Fatal("zero Expansion claims to reach node 0")
	}
	zero.Release()

	y := g.ExpandFrom(0, DistanceClassWeights(), math.Inf(1))
	defer y.Release()
	if _, ok := y.Dist(-5); ok {
		t.Fatal("negative node id reached")
	}
	if _, ok := y.Dist(NodeID(g.NumNodes())); ok {
		t.Fatal("out-of-range node id reached")
	}
}

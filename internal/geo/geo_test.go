package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Two reference cities used across tests.
var (
	oldenburg = Point{Lat: 53.1435, Lon: 8.2146}
	bremen    = Point{Lat: 53.0793, Lon: 8.8017}
)

func TestHaversineKnownDistance(t *testing.T) {
	// Oldenburg -> Bremen is roughly 39.8 km.
	d := Haversine(oldenburg, bremen)
	if d < 39000 || d > 41000 {
		t.Fatalf("Haversine(Oldenburg, Bremen) = %.0f m, want ~39800 m", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(oldenburg, oldenburg); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestEquirectangularCloseToHaversineUrbanScale(t *testing.T) {
	// At urban scale the approximation error must be < 0.1%.
	a := Point{Lat: 53.10, Lon: 8.20}
	b := Point{Lat: 53.18, Lon: 8.30}
	h := Haversine(a, b)
	e := Distance(a, b)
	if rel := math.Abs(h-e) / h; rel > 0.001 {
		t.Fatalf("equirectangular error %.4f%% too large (h=%.1f e=%.1f)", rel*100, h, e)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		return math.Abs(Haversine(a, b)-Haversine(b, a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityHaversine(t *testing.T) {
	f := func(seed1, seed2, seed3 float64) bool {
		a := pointFromSeed(seed1)
		b := pointFromSeed(seed2)
		c := pointFromSeed(seed3)
		// Allow a tiny epsilon for floating error.
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	north := Point{Lat: 54.0, Lon: 8.2146}
	if b := Bearing(oldenburg, north); math.Abs(b) > 0.5 && math.Abs(b-360) > 0.5 {
		t.Errorf("bearing due north = %.2f, want ~0", b)
	}
	east := Point{Lat: 53.1435, Lon: 9.0}
	if b := Bearing(oldenburg, east); math.Abs(b-90) > 1.0 {
		t.Errorf("bearing due east = %.2f, want ~90", b)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(seed, brgSeed, distSeed float64) bool {
		p := pointFromSeed(seed)
		brg := math.Mod(math.Abs(brgSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 50000) // up to 50 km
		q := Destination(p, brg, dist)
		back := Haversine(p, q)
		return math.Abs(back-dist) < dist*0.001+1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMidpointBetween(t *testing.T) {
	m := Midpoint(oldenburg, bremen)
	da := Haversine(oldenburg, m)
	db := Haversine(m, bremen)
	if math.Abs(da-db) > 1.0 {
		t.Fatalf("midpoint unbalanced: %.1f vs %.1f", da, db)
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	if got := Interpolate(oldenburg, bremen, 0); got != oldenburg {
		t.Errorf("f=0 gives %v", got)
	}
	if got := Interpolate(oldenburg, bremen, 1); got != bremen {
		t.Errorf("f=1 gives %v", got)
	}
	mid := Interpolate(oldenburg, bremen, 0.5)
	if mid.Lat <= math.Min(oldenburg.Lat, bremen.Lat) || mid.Lat >= math.Max(oldenburg.Lat, bremen.Lat) {
		t.Errorf("midpoint lat out of range: %v", mid)
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p  Point
		ok bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.ok {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.ok)
		}
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 80) }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 170) }

func pointFromSeed(s float64) Point {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		s = 1
	}
	s = math.Mod(math.Abs(s), 1e6) // avoid overflow when scaling below
	return Point{
		Lat: math.Mod(s*37.77, 70) - 35,
		Lon: math.Mod(s*97.13, 160) - 80,
	}
}

// Package interval implements the closed-interval arithmetic that backs the
// Estimated Components of the paper. Every EC (sustainable charging level L,
// availability A, derouting cost D) is a fuzzy value expressed as a
// [min, max] range; the Sustainability Score combines such ranges with
// weighted sums and the CkNN-EC refinement phase reasons about dominance
// between them (paper §III.B, eqs. 4–6).
package interval

import (
	"fmt"
	"math"
)

// I is a closed interval [Min, Max]. The zero value is the degenerate
// interval [0, 0], which is a valid exact value.
type I struct {
	Min, Max float64
}

// New returns the interval [min, max]. It panics if min > max or either
// bound is NaN, because such an interval is a programming error everywhere
// in this codebase (estimates always have ordered bounds).
func New(min, max float64) I {
	if math.IsNaN(min) || math.IsNaN(max) {
		panic("interval: NaN bound")
	}
	if min > max {
		panic(fmt.Sprintf("interval: min %v > max %v", min, max))
	}
	return I{Min: min, Max: max}
}

// Exact returns the degenerate interval [v, v].
func Exact(v float64) I { return I{Min: v, Max: v} }

// FromBounds returns the interval spanning a and b regardless of order.
// Use it when the bounds come from two independent estimates that may
// cross (e.g. optimistic vs pessimistic models that are not ordered a priori).
// Like New it panics on NaN: before this check a NaN bound slipped through
// the ordering test (NaN compares false) and produced an invalid interval.
func FromBounds(a, b float64) I {
	if math.IsNaN(a) || math.IsNaN(b) {
		panic("interval: NaN bound")
	}
	if a <= b {
		return I{Min: a, Max: b}
	}
	return I{Min: b, Max: a}
}

// String implements fmt.Stringer.
func (a I) String() string { return fmt.Sprintf("[%.4g, %.4g]", a.Min, a.Max) }

// Valid reports whether the interval has ordered, non-NaN bounds.
func (a I) Valid() bool {
	return !math.IsNaN(a.Min) && !math.IsNaN(a.Max) && a.Min <= a.Max
}

// Width returns Max − Min, the uncertainty of the estimate.
func (a I) Width() float64 { return a.Max - a.Min }

// Mid returns the interval midpoint, the natural point estimate.
func (a I) Mid() float64 { return (a.Min + a.Max) / 2 }

// IsExact reports whether the interval is a single point.
//
//ecolint:ignore floateq exact equality is the definition of a degenerate interval
func (a I) IsExact() bool { return a.Min == a.Max }

// Contains reports whether v lies within [Min, Max].
func (a I) Contains(v float64) bool { return v >= a.Min && v <= a.Max }

// ContainsInterval reports whether b lies entirely within a.
func (a I) ContainsInterval(b I) bool { return b.Min >= a.Min && b.Max <= a.Max }

// Add returns a + b under interval arithmetic.
func (a I) Add(b I) I { return I{Min: a.Min + b.Min, Max: a.Max + b.Max} }

// Sub returns a − b under interval arithmetic: [a.Min−b.Max, a.Max−b.Min].
func (a I) Sub(b I) I { return I{Min: a.Min - b.Max, Max: a.Max - b.Min} }

// Scale returns the interval multiplied by scalar s; a negative s flips the
// bounds, preserving Min ≤ Max.
func (a I) Scale(s float64) I {
	if s >= 0 {
		return I{Min: a.Min * s, Max: a.Max * s}
	}
	return I{Min: a.Max * s, Max: a.Min * s}
}

// Neg returns −a.
func (a I) Neg() I { return I{Min: -a.Max, Max: -a.Min} }

// Complement returns 1 − a, the transform the SC formula applies to the
// normalized derouting cost so that all objectives are maximized.
func (a I) Complement() I { return I{Min: 1 - a.Max, Max: 1 - a.Min} }

// Intersect returns the overlap of a and b and whether it is non-empty.
func (a I) Intersect(b I) (I, bool) {
	lo := math.Max(a.Min, b.Min)
	hi := math.Min(a.Max, b.Max)
	if lo > hi {
		return I{}, false
	}
	return I{Min: lo, Max: hi}, true
}

// Overlaps reports whether a and b share at least one point.
func (a I) Overlaps(b I) bool { return a.Min <= b.Max && b.Min <= a.Max }

// Union returns the smallest interval containing both a and b (their hull).
func (a I) Union(b I) I {
	return I{Min: math.Min(a.Min, b.Min), Max: math.Max(a.Max, b.Max)}
}

// Clamp returns a restricted to [lo, hi]. Both bounds are clamped; the
// result is always valid because lo ≤ hi is required of callers.
func (a I) Clamp(lo, hi float64) I {
	return I{Min: clamp(a.Min, lo, hi), Max: clamp(a.Max, lo, hi)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DefinitelyLess reports whether every value of a is strictly below every
// value of b. This is the sound pruning test of the filtering phase: a
// charger whose optimistic SC is DefinitelyLess than the k-th pessimistic
// SC can never enter the result.
func (a I) DefinitelyLess(b I) bool { return a.Max < b.Min }

// PossiblyLess reports whether some value of a is below some value of b.
func (a I) PossiblyLess(b I) bool { return a.Min < b.Max }

// Dominates reports whether a is at least as good as b on both bounds and
// strictly better on one (the interval ordering used when ranking SC scores).
func (a I) Dominates(b I) bool {
	return a.Min >= b.Min && a.Max >= b.Max && (a.Min > b.Min || a.Max > b.Max)
}

// WeightedSum combines intervals with the given weights:
// Σ w_i · x_i, the exact form of eqs. 4–5. It panics when the slices have
// different lengths.
func WeightedSum(xs []I, ws []float64) I {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("interval: WeightedSum length mismatch %d vs %d", len(xs), len(ws)))
	}
	var out I
	for i, x := range xs {
		out = out.Add(x.Scale(ws[i]))
	}
	return out
}

// Normalize divides the interval by the positive scalar max, producing a
// value in [0,1] when the input lies in [0, max]. A non-positive or
// infinite max yields the exact zero interval, which is the safe answer
// for an empty environment (no chargers, zero maximum production).
//
// The bounds are divided directly rather than scaled by 1/max: for
// subnormal max the reciprocal overflows to +Inf and 0·Inf injected a NaN
// bound (caught by FuzzOps' pinned seed).
func (a I) Normalize(max float64) I {
	if max <= 0 || math.IsInf(max, 1) {
		return I{}
	}
	return I{Min: a.Min / max, Max: a.Max / max}.Clamp(0, 1)
}

package cknn_test

// Chaos harness for the graceful-degradation contract: trips run through
// every ranking method with deterministic source faults injected at 0%, 10%
// and 30%. Rate 0 must be byte-identical to the fault-free engine (wiring a
// FaultPolicy costs nothing when it never fires); nonzero rates must still
// produce valid, totally-ordered Offering Tables whose Degraded tags name
// exactly the components the policy failed; and the parallel filtering
// phase must reproduce the sequential oracle under faults (run `make chaos`
// for the -race form).

import (
	"reflect"
	"testing"

	"ecocharge/internal/cknn"
	"ecocharge/internal/cknn/tabletest"
	"ecocharge/internal/experiment"
	"ecocharge/internal/fault"
)

func chaosScenario(t *testing.T) *experiment.Scenario {
	t.Helper()
	sc, err := experiment.BuildScenario("Oldenburg", 0.0005, 7)
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	if len(sc.Trips) == 0 {
		t.Fatal("scenario produced no trips")
	}
	return sc
}

// faultedEnv returns a shallow copy of the scenario environment with the
// policy installed: the copy shares graph/chargers/models (so charger
// pointers stay comparable across runs) but carries its own Faults.
func faultedEnv(env *cknn.Env, rate float64, seed int64) *cknn.Env {
	cp := *env
	cp.Faults = fault.Sources(fault.New(fault.Config{Seed: seed, Rate: rate}))
	return &cp
}

func chaosTrips(sc *experiment.Scenario) []int {
	n := len(sc.Trips)
	if n > 2 {
		n = 2
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

var chaosOpts = cknn.TripOptions{K: 3, SegmentLenM: 4000}

// TestChaosRateZeroByteIdentical asserts the degradation path is free when
// nothing fails: a wired FaultPolicy at rate 0 reproduces the nil-policy
// output byte for byte, for all six methods.
func TestChaosRateZeroByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario builds are slow")
	}
	sc := chaosScenario(t)
	envZero := faultedEnv(sc.Env, 0, 1)
	for _, mt := range equivalenceMethods(sc.Env) {
		mt := mt
		t.Run(mt.name, func(t *testing.T) {
			for _, ti := range chaosTrips(sc) {
				trip := sc.Trips[ti]
				want := cknn.RunTrip(sc.Env, mt.build(), trip, chaosOpts)
				faulted := equivalenceMethodByName(t, envZero, mt.name)
				got := cknn.RunTrip(envZero, faulted, trip, chaosOpts)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trip %d: rate-0 fault policy changed output\nplain: %v\nrate0: %v",
						trip.ID, summarize(want), summarize(got))
				}
			}
		})
	}
}

// equivalenceMethodByName builds the named method over a (possibly faulted)
// environment, reusing the equivalence harness's constructor table.
func equivalenceMethodByName(t *testing.T, env *cknn.Env, name string) cknn.Method {
	t.Helper()
	for _, mt := range equivalenceMethods(env) {
		if mt.name == name {
			return mt.build()
		}
	}
	t.Fatalf("unknown method %q", name)
	return nil
}

// TestChaosDegradedTablesValid drives every method at 10% and 30% fault
// rates and checks the survival contract: tables keep coming, stay totally
// ordered and structurally valid, and each entry's Degraded bitmask names
// exactly the components the policy failed. The parallel filtering phase
// must agree with the sequential oracle byte for byte under faults.
func TestChaosDegradedTablesValid(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario builds are slow")
	}
	sc := chaosScenario(t)
	for _, rate := range []float64{0.1, 0.3} {
		rate := rate
		t.Run(rateName(rate), func(t *testing.T) {
			env := faultedEnv(sc.Env, rate, 42)
			policy := env.Faults
			degradedSeen := 0
			for _, mt := range equivalenceMethods(env) {
				mt := mt
				t.Run(mt.name, func(t *testing.T) {
					for _, ti := range chaosTrips(sc) {
						trip := sc.Trips[ti]
						seq := chaosOpts
						seq.Workers = 1
						par := chaosOpts
						par.Workers = 4
						want := cknn.RunTrip(env, mt.build(), trip, seq)
						got := cknn.RunTrip(env, mt.build(), trip, par)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("trip %d: parallel filtering diverges from the oracle under %s faults",
								trip.ID, rateName(rate))
						}
						for _, res := range want {
							validateChaosTable(t, res.Table, chaosOpts.K, mt.name)
							if mt.name == "Random" {
								continue // Random never computes components
							}
							for _, e := range res.Table.Entries {
								deg := e.Comp.Degraded
								degradedSeen += degradedBits(deg)
								for _, comp := range []cknn.Component{cknn.CompL, cknn.CompA, cknn.CompD} {
									wantBit := !policy.FetchOK(comp, e.Charger.ID, trip.Depart)
									if deg.Has(comp) != wantBit {
										t.Fatalf("%s trip %d charger %d: Degraded bit %s = %v, policy says %v",
											mt.name, trip.ID, e.Charger.ID, comp, deg.Has(comp), wantBit)
									}
									if wantBit {
										iv := componentOf(e.Comp, comp)
										if iv.Min != 0 || iv.Max != 1 {
											t.Fatalf("%s trip %d charger %d: degraded %s is [%v,%v], want the ignorance bound [0,1]",
												mt.name, trip.ID, e.Charger.ID, comp, iv.Min, iv.Max)
										}
									}
								}
							}
						}
					}
				})
			}
			if degradedSeen == 0 {
				t.Fatalf("rate %s injected faults but no offered entry was ever tagged degraded", rateName(rate))
			}
		})
	}
}

func rateName(rate float64) string {
	if rate == 0.1 {
		return "10pct"
	}
	return "30pct"
}

func degradedBits(d cknn.Degraded) int {
	n := 0
	for _, c := range []cknn.Component{cknn.CompL, cknn.CompA, cknn.CompD} {
		if d.Has(c) {
			n++
		}
	}
	return n
}

func componentOf(c cknn.Components, comp cknn.Component) interval {
	switch comp {
	case cknn.CompL:
		return interval{c.L.Min, c.L.Max}
	case cknn.CompA:
		return interval{c.A.Min, c.A.Max}
	default:
		return interval{c.D.Min, c.D.Max}
	}
}

// interval avoids importing internal/interval just for bounds checks.
type interval struct{ Min, Max float64 }

// validateChaosTable asserts structural validity through the shared
// invariant harness; the Random baseline never computes scores, so only the
// structural half applies to it.
func validateChaosTable(t *testing.T, table cknn.OfferingTable, k int, method string) {
	t.Helper()
	tabletest.CheckOpts(t, table, k, method, tabletest.Options{SkipScores: method == "Random"})
}

// Package fixture exercises the floateq analyzer.
package fixture

// Equal compares scores exactly: flagged.
func Equal(a, b float64) bool { return a == b }

// NotEqual is flagged for float32 as well.
func NotEqual(a, b float32) bool { return a != b }

// SentinelSuppressed shows a deliberate exact check with the escape hatch.
func SentinelSuppressed(x float64) bool {
	//ecolint:ignore floateq exact-zero sentinel in fixture
	return x == 0
}

// SentinelUnsuppressed is the same check without a justification: flagged.
func SentinelUnsuppressed(x float64) bool { return x != 0 }

const cA, cB = 1.5, 2.5

// ConstCmp compares two compile-time constants, which is exact: exempt.
var ConstCmp = cA == cB

// IntCmp compares integers: exempt.
func IntCmp(a, b int) bool { return a == b }

// Less uses an ordering operator: exempt.
func Less(a, b float64) bool { return a < b }

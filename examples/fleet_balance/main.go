// Fleet balancing + smart grid: the paper's future-work extensions (§VII)
// in action. A fleet of EVs drives through the same morning; without
// coordination the best chargers collect queues, with the load-balancing
// extension drivers are redirected before conflicts form. The smart-grid
// advisor then re-ranks one driver's Offering Table around off-peak
// tariffs and grid stress.
package main

import (
	"fmt"
	"log"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/sim"
	"ecocharge/internal/smartgrid"
	"ecocharge/internal/trajectory"
)

func main() {
	graph := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin:  geo.Point{Lat: 53.06, Lon: 8.08},
		WidthKM: 10, HeightKM: 8, SpacingM: 500,
		RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 4, Seed: 51,
	})
	solar := ec.NewSolarModel(17)
	avail := ec.NewAvailabilityModel(18)
	traffic := ec.NewTrafficModel(19)
	// A deliberately scarce inventory so the fleet contends for plugs.
	chargers, err := charger.Generate(graph, avail, charger.GenConfig{N: 15, Seed: 20})
	if err != nil {
		log.Fatal(err)
	}
	env, err := cknn.NewEnv(graph, chargers, solar, avail, traffic, cknn.EnvConfig{RadiusM: 10000})
	if err != nil {
		log.Fatal(err)
	}
	depart := time.Date(2024, 6, 18, 9, 0, 0, 0, time.UTC)
	trips, err := trajectory.Generate(graph, trajectory.GenConfig{
		N: 30, Seed: 52, MinTripKM: 4, MaxTripKM: 10,
		Start: depart, Window: 30 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.Config{RadiusM: 10000, AcceptSC: 0.25}
	plain := sim.Run(env, trips, cfg)
	cfg.Balanced = true
	balanced := sim.Run(env, trips, cfg)

	fmt.Println("30-vehicle fleet over 15 chargers, one summer morning:")
	fmt.Printf("  uncoordinated: %v\n", plain)
	fmt.Printf("  balanced:      %v\n", balanced)
	fmt.Printf("  → balancing spread sessions over %d chargers (vs %d) with %d plug conflicts (vs %d)\n\n",
		len(balanced.PerCharger), len(plain.PerCharger), balanced.Conflicts, plain.Conflicts)

	// Smart-grid advice for one driver's evening table.
	evening := time.Date(2024, 6, 18, 18, 30, 0, 0, time.UTC)
	node := graph.NearestNode(graph.Bounds().Center())
	table := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 10000}).Rank(cknn.Query{
		Anchor: graph.Node(node).P, AnchorNode: node, ReturnNode: node,
		Now: evening, ETABase: evening, K: 3, RadiusM: 10000,
	})
	advisor := smartgrid.NewAdvisor(smartgrid.DefaultTariff(), smartgrid.NewGridSignal())
	fmt.Println("grid-aware re-ranking of the 18:30 Offering Table:")
	for i, ad := range advisor.Advise(table, evening) {
		fmt.Printf("  %d. charger %-3d SC=%.2f GS=%.2f  price %s €/kWh (%s)  grid stress %s\n",
			i+1, ad.Entry.Charger.ID, ad.Entry.SC.Mid(), ad.GS.Mid(), ad.Price, ad.Band, ad.Stress)
	}
	fmt.Printf("\n20 kWh session cost if charging now vs after 23:00: %s vs %s €\n",
		advisor.SessionCost(evening, 20),
		advisor.SessionCost(time.Date(2024, 6, 18, 23, 30, 0, 0, time.UTC), 20))
}

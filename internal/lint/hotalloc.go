package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the flat shortest-path kernel's allocation discipline
// inside internal/roadnet (the derouting hot path; see DESIGN.md §8). Two
// shapes are flagged there:
//
//   - any map[NodeID]... type: per-search node maps are exactly what the
//     generation-stamped dense arrays replaced, and reintroducing one puts
//     a hash insert and its allocations back on every relaxed edge;
//   - importing container/heap: its interface-based Push/Pop box every
//     element, which the specialized slice heap exists to avoid.
//
// internal/wire holds the alloc-free binary codec (see docs/perf.md), whose
// steady-state discipline the same analyzer guards with different shapes:
//
//   - importing reflect or encoding/json: the codec's whole reason to exist
//     is hand-rolled field-by-field marshalling; reflection-based encoding
//     reintroduces the per-call allocations the format removed;
//   - any map type: per-call maps on the encode/decode path allocate and
//     hash where the format uses fixed field order and slices.
//
// Cold paths (offline preprocessing, map-shaped convenience APIs) are
// legitimate exceptions: suppress with //ecolint:ignore hotalloc and a
// reason. Other packages are not checked.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation regressions in the roadnet and wire hot paths",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	switch {
	case strings.HasSuffix(pass.Pkg.ImportPath, "internal/roadnet"):
		runRoadnetHotAlloc(pass)
	case strings.HasSuffix(pass.Pkg.ImportPath, "internal/wire"):
		runWireHotAlloc(pass)
	}
}

func runRoadnetHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if strings.Trim(n.Path.Value, `"`) == "container/heap" {
					pass.Reportf(n.Pos(), "container/heap boxes every element through interface{}; use the specialized slice heap (heap4) on the hot path")
				}
			case *ast.MapType:
				if isNodeIDKey(pass, n.Key) {
					pass.Reportf(n.Pos(), "map[NodeID] on the roadnet hot path; use the generation-stamped dense arrays (searchState) instead")
				}
			}
			return true
		})
	}
}

func runWireHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				switch strings.Trim(n.Path.Value, `"`) {
				case "reflect", "encoding/json":
					pass.Reportf(n.Pos(), "reflection-based encoding in the wire codec; the format is hand-marshalled field by field to stay alloc-free (see docs/perf.md)")
				}
			case *ast.MapType:
				pass.Reportf(n.Pos(), "map type in the wire codec; per-call maps allocate on the encode/decode path — use fixed field order and reused slices")
			}
			return true
		})
	}
}

// isNodeIDKey reports whether the map key expression resolves to a named
// type called NodeID (type information preferred, syntax as fallback for
// files that fail to type-check fully).
func isNodeIDKey(pass *Pass, key ast.Expr) bool {
	if t := pass.TypeOf(key); t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj() != nil && named.Obj().Name() == "NodeID"
		}
	}
	switch k := key.(type) {
	case *ast.Ident:
		return k.Name == "NodeID"
	case *ast.SelectorExpr:
		return k.Sel != nil && k.Sel.Name == "NodeID"
	}
	return false
}

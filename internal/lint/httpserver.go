package lint

import (
	"go/ast"
	"go/types"
)

// HTTPServer reports HTTP servers started without read timeouts. Two shapes
// are flagged:
//
//   - an http.Server composite literal that sets neither ReadHeaderTimeout
//     nor ReadTimeout: such a server waits forever for request headers, so
//     one slow client per connection slot is a denial of service
//     (slowloris);
//   - calls to the package-level http.ListenAndServe / ListenAndServeTLS,
//     which construct exactly that timeout-less server internally and offer
//     no way to fix it. The (*http.Server).ListenAndServe method is fine —
//     the literal it is called on is where the first rule applies.
//
// A deliberate exception (a localhost-only debug listener, say) should be
// suppressed with //ecolint:ignore httpserver and a reason.
var HTTPServer = &Analyzer{
	Name: "httpserver",
	Doc:  "flags http.Server literals without read timeouts and package-level ListenAndServe calls",
	Run:  runHTTPServer,
}

func runHTTPServer(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkServerLiteral(pass, n)
			case *ast.CallExpr:
				checkListenAndServeCall(pass, n)
			}
			return true
		})
	}
}

// checkServerLiteral flags http.Server{...} literals that configure no read
// timeout at all.
func checkServerLiteral(pass *Pass, lit *ast.CompositeLit) {
	if !isNamedType(pass.TypeOf(lit), "net/http", "Server") {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if key.Name == "ReadHeaderTimeout" || key.Name == "ReadTimeout" {
			return
		}
	}
	pass.Reportf(lit.Pos(), "http.Server without ReadHeaderTimeout or ReadTimeout: slow clients can hold connections forever (slowloris)")
}

// checkListenAndServeCall flags the package-level http.ListenAndServe and
// http.ListenAndServeTLS functions (not the methods on *http.Server).
func checkListenAndServeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return
	}
	if fn.Name() != "ListenAndServe" && fn.Name() != "ListenAndServeTLS" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // the method on a configured *http.Server is fine
	}
	pass.Reportf(call.Pos(), "http.%s starts a server with no timeouts; build an http.Server with ReadHeaderTimeout instead", fn.Name())
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

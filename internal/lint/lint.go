// Package lint implements ecolint, the repo-specific static-analysis pass.
//
// The paper's refinement phase (eqs. 4-6) is only sound when every
// Estimated Component interval keeps ordered, non-NaN bounds and every
// ranking comparison is deliberate about floating-point exactness. The
// analyzers in this package mechanically enforce those invariants — plus a
// few engineering rules (error handling, goroutine coordination, library
// output discipline) — over the whole tree, using nothing but the standard
// library's go/ast, go/parser, go/token and go/types.
//
// Each analyzer lives in its own file and registers itself in All. Findings
// can be suppressed per line with a comment of the form
//
//	//ecolint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory by convention (ecolint does not parse it, but
// reviewers do).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, in a shape that marshals directly to the
// -json output of cmd/ecolint.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named rule. Run inspects the package held by the Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every analyzer in the order they run. The first eight are
// line-local AST walkers; leakrelease, lockheld and ctxflow are the
// path-sensitive rules built on internal/lint/flow; baredirective polices
// the suppression directives themselves.
var All = []*Analyzer{
	IntervalLiteral,
	FloatEq,
	ErrIgnore,
	NakedGo,
	LibPrint,
	HTTPServer,
	HotAlloc,
	ObsAlloc,
	LeakRelease,
	LockHeld,
	CtxFlow,
	BareDirective,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Package is one type-checked package ready for analysis. Only non-test
// files are loaded: tests legitimately construct invalid values, compare
// floats exactly and spawn throwaway goroutines.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// suppressed maps file name -> line -> set of analyzer names (or "all")
	// silenced by //ecolint:ignore comments.
	suppressed map[string]map[int]map[string]bool
}

// Pass carries one (package, analyzer) pairing and collects findings.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos unless an //ecolint:ignore comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.isSuppressed(position, p.analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAlways records a finding regardless of //ecolint:ignore
// directives. Only baredirective uses it: a bare directive must not be
// able to silence the analyzer that polices bare directives.
func (p *Pass) reportAlways(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Run applies the analyzers to the packages and returns the findings
// ordered by file, line and column.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pkg.buildSuppressions()
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// directive is one parsed //ecolint:ignore comment.
type directive struct {
	pos token.Pos
	// names is the comma-separated analyzer list (or ["all"]). Empty when
	// the directive names no analyzers at all.
	names []string
	// reason is the free text after the analyzer list. docs/lint.md makes
	// it mandatory; the baredirective analyzer enforces that.
	reason string
}

// directives parses every //ecolint:ignore comment in the package. Both
// buildSuppressions and the baredirective analyzer consume this, so the
// suppression semantics and the policing of the directives cannot drift
// apart.
func (p *Package) directives() []directive {
	var out []directive
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "ecolint:ignore") {
					continue
				}
				rest := strings.TrimPrefix(text, "ecolint:ignore")
				d := directive{pos: c.Pos()}
				if fields := strings.Fields(rest); len(fields) > 0 {
					for _, n := range strings.Split(fields[0], ",") {
						if n = strings.TrimSpace(n); n != "" {
							d.names = append(d.names, n)
						}
					}
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// buildSuppressions indexes the package's //ecolint:ignore directives. A
// directive silences the named analyzers on its own line and on the line
// directly below it, so both trailing and standalone-above placements
// work.
func (p *Package) buildSuppressions() {
	if p.suppressed != nil {
		return
	}
	p.suppressed = make(map[string]map[int]map[string]bool)
	for _, d := range p.directives() {
		if len(d.names) == 0 {
			continue
		}
		pos := p.Fset.Position(d.pos)
		byLine := p.suppressed[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			p.suppressed[pos.Filename] = byLine
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			set := byLine[line]
			if set == nil {
				set = make(map[string]bool)
				byLine[line] = set
			}
			for _, n := range d.names {
				set[n] = true
			}
		}
	}
}

func (p *Package) isSuppressed(pos token.Position, analyzer string) bool {
	set := p.suppressed[pos.Filename][pos.Line]
	return set[analyzer] || set["all"]
}

// inIntervalPackage reports whether the package is internal/interval
// itself, the only place allowed to build raw interval.I values.
func (p *Package) inIntervalPackage() bool {
	return strings.HasSuffix(p.ImportPath, "internal/interval")
}

package flow

import (
	"go/ast"
	"sort"
	"testing"
)

// The solver tests run classic textbook problems over string-set facts so
// the engine is exercised independently of any analyzer.

type strset map[string]bool

func (s strset) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalSet(a, b strset) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func cloneSet(s strset) strset {
	out := make(strset, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func union(dst, src strset) strset {
	for k := range src {
		dst[k] = true
	}
	return dst
}

func intersect(dst, src strset) strset {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
	return dst
}

// assignedNames returns the variables directly assigned by the node.
func assignedNames(n ast.Node) []string {
	var out []string
	Inspect(n, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					out = append(out, id.Name)
				}
			}
		}
		return true
	})
	return out
}

// assignTransfer adds every assigned variable to the fact set.
func assignTransfer(b *Block, in strset) strset {
	for _, n := range b.Nodes {
		for _, name := range assignedNames(n) {
			in[name] = true
		}
	}
	return in
}

func join(s strset) []string { return s.sorted() }

func TestSolveForwardMay(t *testing.T) {
	// May-assigned: union join. Both branch variables reach the exit.
	g := parseBody(t, `
z := 0
if c() {
	x := 1
	_ = x
} else {
	y := 2
	_ = y
}
_ = z
return`)
	res := Solve(g, Problem[strset]{
		Dir:      Forward,
		Boundary: func() strset { return strset{} },
		Init:     func() strset { return strset{} },
		Transfer: assignTransfer,
		Join:     union,
		Equal:    equalSet,
		Clone:    cloneSet,
	})
	got := join(res.In[g.Exit])
	want := []string{"x", "y", "z"}
	if len(got) != len(want) {
		t.Fatalf("may-assigned at exit = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("may-assigned at exit = %v, want %v", got, want)
		}
	}
}

func TestSolveForwardMust(t *testing.T) {
	// Must-assigned: intersection join. Only z is assigned on every path.
	// Init must be "top" for intersection; model top with a universe set.
	universe := strset{"x": true, "y": true, "z": true}
	g := parseBody(t, `
z := 0
if c() {
	x := 1
	_ = x
} else {
	y := 2
	_ = y
}
_ = z
return`)
	res := Solve(g, Problem[strset]{
		Dir:      Forward,
		Boundary: func() strset { return strset{} },
		Init:     func() strset { return cloneSet(universe) },
		Transfer: assignTransfer,
		Join:     intersect,
		Equal:    equalSet,
		Clone:    cloneSet,
	})
	got := join(res.In[g.Exit])
	if len(got) != 1 || got[0] != "z" {
		t.Fatalf("must-assigned at exit = %v, want [z]", got)
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	// The loop-body assignment must propagate around the back edge into
	// the loop head's IN set, which requires a second worklist pass.
	g := parseBody(t, `
for c() {
	w := 1
	_ = w
}
return`)
	res := Solve(g, Problem[strset]{
		Dir:      Forward,
		Boundary: func() strset { return strset{} },
		Init:     func() strset { return strset{} },
		Transfer: assignTransfer,
		Join:     union,
		Equal:    equalSet,
		Clone:    cloneSet,
	})
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	head := g.Loops[0].Head
	if !res.In[head]["w"] {
		t.Errorf("loop head IN = %v, want it to contain w (back-edge propagation)", join(res.In[head]))
	}
	if !res.In[g.Exit]["w"] {
		t.Errorf("exit IN = %v, want it to contain w", join(res.In[g.Exit]))
	}
}

func TestSolveBackwardLiveness(t *testing.T) {
	// Live variables: backward, gen = used idents, kill = defined names.
	g := parseBody(t, `
a := input()
b := input()
if c() {
	use(a)
} else {
	use(b)
}
return`)
	uses := func(n ast.Node) strset {
		out := strset{}
		Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, arg := range call.Args {
					if id, ok := arg.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
			return true
		})
		return out
	}
	res := Solve(g, Problem[strset]{
		Dir:      Backward,
		Boundary: func() strset { return strset{} },
		Init:     func() strset { return strset{} },
		Transfer: func(b *Block, in strset) strset {
			// Backward transfer runs the block's nodes in reverse.
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				n := b.Nodes[i]
				for _, name := range assignedNames(n) {
					delete(in, name)
				}
				in = union(in, uses(n))
			}
			return in
		},
		Join:  union,
		Equal: equalSet,
		Clone: cloneSet,
	})
	// Nothing is live at entry: both a and b are defined before use.
	if live := join(res.Out[g.Entry]); len(live) != 0 {
		t.Errorf("live at entry = %v, want none", live)
	}
	// The entry block ends with the branch condition, so its (backward) IN
	// is the liveness after the assignments: both a and b are live, each
	// used on one branch.
	condBlock := g.Entry
	if !res.In[condBlock]["a"] || !res.In[condBlock]["b"] {
		t.Errorf("live before branch = %v, want a and b", join(res.In[condBlock]))
	}
}

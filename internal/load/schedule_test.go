package load

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// scheduleBytes serializes a schedule so determinism can be asserted as
// byte identity, not just value equality.
func scheduleBytes(s Schedule) []byte {
	out := make([]byte, 8*len(s))
	for i, d := range s {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(d))
	}
	return out
}

// TestPoissonDeterministic: same (rate, n, seed) ⇒ byte-identical
// schedule, different seed ⇒ different schedule. The whole harness's
// reproducibility rests on this.
func TestPoissonDeterministic(t *testing.T) {
	check := func(seed int64) bool {
		a, err1 := Poisson(200, 500, seed)
		b, err2 := Poisson(200, 500, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		return string(scheduleBytes(a)) == string(scheduleBytes(b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	a, _ := Poisson(200, 500, 1)
	b, _ := Poisson(200, 500, 2)
	if string(scheduleBytes(a)) == string(scheduleBytes(b)) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestScheduleMonotone: offsets ascend strictly (Poisson) or strictly
// (constant); arrivals never go back in time.
func TestScheduleMonotone(t *testing.T) {
	p, err := Poisson(1000, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Constant(1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Schedule{p, c} {
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("offset %d (%v) before offset %d (%v)", i, s[i], i-1, s[i-1])
			}
		}
	}
}

// realizedRate is n arrivals over the schedule span.
func realizedRate(s Schedule) float64 {
	return float64(len(s)) / s.Span().Seconds()
}

// TestRateAccuracy: the realized rate of a schedule stays within
// tolerance of nominal. For a Poisson process the span of n arrivals is
// Gamma(n, 1/λ) with relative standard deviation 1/√n, so 5% at n=10000
// is a ~5σ bound — deterministic seeds make this a regression test, not a
// flake.
func TestRateAccuracy(t *testing.T) {
	const n, nominal = 10000, 400.0
	for seed := int64(0); seed < 5; seed++ {
		s, err := Poisson(nominal, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		if r := realizedRate(s); math.Abs(r-nominal)/nominal > 0.05 {
			t.Fatalf("seed %d: realized rate %.1f/s, want %.0f/s ±5%%", seed, r, nominal)
		}
	}
	c, err := Constant(nominal, n)
	if err != nil {
		t.Fatal(err)
	}
	if r := realizedRate(c); math.Abs(r-nominal)/nominal > 1e-6 {
		t.Fatalf("constant schedule realized %.4f/s, want exactly %.0f/s", r, nominal)
	}
}

// TestSplitPoissonSuperposition: merging w independent Poisson(λ/w)
// schedules must again be a Poisson(λ) process. Checked on the merged
// inter-arrival times: exponential mean 1/λ (±5%) and coefficient of
// variation 1 (±10%) — a constant-rate merge would give CV≈0 and a bursty
// one CV≫1, so the band is discriminating.
func TestSplitPoissonSuperposition(t *testing.T) {
	const n, nominal, workers = 20000, 500.0, 8
	parts, err := SplitPoisson(nominal, n, 99, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != workers {
		t.Fatalf("got %d parts, want %d", len(parts), workers)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != n {
		t.Fatalf("parts hold %d arrivals, want %d", total, n)
	}
	merged := MergeSchedules(parts...)
	gaps := make([]float64, len(merged)-1)
	var mean float64
	for i := 1; i < len(merged); i++ {
		g := (merged[i] - merged[i-1]).Seconds()
		gaps[i-1] = g
		mean += g
	}
	mean /= float64(len(gaps))
	if want := 1 / nominal; math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("merged mean inter-arrival %.6fs, want %.6fs ±5%%", mean, want)
	}
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps))) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("merged inter-arrival CV %.3f, want ~1 (exponential); the merge broke the Poisson property", cv)
	}
	// Determinism carries through the split: same inputs, same bytes.
	again, err := SplitPoisson(nominal, n, 99, workers)
	if err != nil {
		t.Fatal(err)
	}
	for w := range parts {
		if string(scheduleBytes(parts[w])) != string(scheduleBytes(again[w])) {
			t.Fatalf("worker %d schedule not deterministic", w)
		}
	}
}

// TestScheduleArgValidation covers the error paths.
func TestScheduleArgValidation(t *testing.T) {
	if _, err := Poisson(0, 10, 1); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := Constant(100, 0); err == nil {
		t.Fatal("n 0 accepted")
	}
	if _, err := SplitPoisson(100, 10, 1, 0); err == nil {
		t.Fatal("workers 0 accepted")
	}
	// More workers than arrivals: empty tails allowed, total preserved.
	parts, err := SplitPoisson(100, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(MergeSchedules(parts...)); got != 3 {
		t.Fatalf("merged %d arrivals, want 3", got)
	}
}

package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadTree loads the whole repository exactly once and shares the result
// across the determinism, budget and benchmark tests below.
var loadTree = sync.OnceValues(func() ([]*Package, error) {
	return Load("../..", []string{"./..."})
})

// render flattens diagnostics the same way cmd/ecolint prints them.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRunDeterministic pins down that two full runs over the repository
// produce byte-identical output: stable ordering is what lets CI diff
// ecolint output across commits and lets the goldens exist at all.
func TestRunDeterministic(t *testing.T) {
	pkgs, err := loadTree()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	first := render(Run(pkgs, All))
	second := render(Run(pkgs, All))
	if first != second {
		t.Errorf("two runs differ\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestSeededBugsCaught pins the two canonical regressions the flow
// analyzers exist for: a pool acquisition whose defer Release() was
// removed, and a lock held across a network round trip. The fixtures seed
// both; this test fails loudly if either ever stops being detected, more
// directly than a golden drift would.
func TestSeededBugsCaught(t *testing.T) {
	cases := []struct {
		analyzer   *Analyzer
		importPath string
		wantSubstr string
	}{
		{LeakRelease, "ecocharge/internal/lintfixture/leakrelease",
			"not released on every path"},
		{LockHeld, "ecocharge/internal/lintfixture/internal/cknn",
			"held across an http request"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.analyzer.Name)
			pkg, err := LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			got := render(Run([]*Package{pkg}, []*Analyzer{tc.analyzer}))
			if !strings.Contains(got, tc.wantSubstr) {
				t.Errorf("seeded bug not caught: no diagnostic containing %q\ngot:\n%s", tc.wantSubstr, got)
			}
		})
	}
}

// TestLoadTags exercises the build-tag plumbing end to end: loading under
// the race tag must succeed and reach the same non-test packages (the
// repo's tag-gated files are all _test.go, so the file sets coincide —
// what matters is that the tag makes it to the go command without error).
func TestLoadTags(t *testing.T) {
	pkgs, err := Load("../..", []string{"./internal/obs"}, "race")
	if err != nil {
		t.Fatalf("Load with tags: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "ecocharge/internal/obs" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if diags := Run(pkgs, All); len(diags) != 0 {
		t.Errorf("internal/obs not baseline-clean under -tags race: %v", diags)
	}
}

// TestEcolintRuntimeBudget keeps the lint gate cheap enough to run on
// every push: a full analysis pass over the loaded tree must finish well
// under the budget. The bound is deliberately generous — it exists to
// catch an accidental fixpoint blowup in the dataflow solver (quadratic
// re-queues, non-converging joins), not to benchmark.
func TestEcolintRuntimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping runtime budget in -short mode")
	}
	pkgs, err := loadTree()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	const budget = 30 * time.Second
	start := time.Now()
	Run(pkgs, All)
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("full ecolint pass took %v, budget is %v", elapsed, budget)
	}
}

// BenchmarkEcolint measures a full analysis pass (all analyzers, whole
// repository, loading excluded) so solver or summary regressions show up
// in bench diffs.
func BenchmarkEcolint(b *testing.B) {
	pkgs, err := loadTree()
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(pkgs, All)
	}
}

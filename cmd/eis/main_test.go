package main

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewHandlerServes(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build is slow")
	}
	handler, desc, err := newHandler(handlerConfig{
		dataset: "Oldenburg", seed: 1, ttl: time.Minute, cellM: 2000,
	}, nil)
	if err != nil {
		t.Fatalf("newHandler: %v", err)
	}
	if !strings.Contains(desc, "Oldenburg") {
		t.Errorf("description %q", desc)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// One real endpoint through the wired scenario.
	resp2, err := http.Get(ts.URL + "/api/v1/chargers?lat=53.1&lon=8.2&radius_m=100000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK || len(body) < 10 {
		t.Fatalf("chargers endpoint: status %d body %d bytes", resp2.StatusCode, len(body))
	}
}

func TestNewHandlerBadDataset(t *testing.T) {
	if _, _, err := newHandler(handlerConfig{dataset: "nope", seed: 1, ttl: time.Minute, cellM: 2000}, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNewHandlerFaultRateDescribed(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build is slow")
	}
	_, desc, err := newHandler(handlerConfig{
		dataset: "Oldenburg", seed: 1, ttl: time.Minute, cellM: 2000,
		faultRate: 0.3, faultSeed: 7,
	}, nil)
	if err != nil {
		t.Fatalf("newHandler: %v", err)
	}
	if !strings.Contains(desc, "fault rate 30%") {
		t.Errorf("description %q does not advertise the fault rate", desc)
	}
}

// TestRunGracefulShutdown exercises the signal-driven drain: cancel the run
// context (as SIGTERM would) and assert run returns cleanly after draining
// an in-flight request.
func TestRunGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(started)
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run re-listens on the same port

	ctx, cancel := context.WithCancel(context.Background())
	logger := log.New(io.Discard, "", 0)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, addr, handler, 5*time.Second, logger) }()

	// Wait for the listener, then park one request in the handler.
	base := "http://" + addr
	waitForServer(t, base+"/fast")
	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		slowDone <- err
	}()
	<-started

	cancel() // the SIGTERM path
	select {
	case err := <-runErr:
		t.Fatalf("run returned %v before draining the in-flight request", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after drain")
	}
}

func waitForServer(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server did not start listening")
}

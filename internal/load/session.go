package load

import (
	"fmt"
	"time"

	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// Query is one Mode 2 offering request the harness will issue: a trip's
// current segment anchor with its ETA.
type Query struct {
	TripID  int64
	Segment int
	Lat     float64
	Lon     float64
	ETA     time.Time
}

// session is one vehicle mid-trip: its segmented path and a cursor.
type session struct {
	tripID int64
	segs   []trajectory.Segment
	next   int
}

// Sessions is the trip-session state machine: a fixed-size pool of
// concurrent vehicles, each walking the segments of a sampled trip and
// issuing one offering query per segment anchor. When a vehicle finishes
// its trip the pool streams a fresh one from the Sampler, so a run of any
// length holds only `concurrent` trips in memory. Queries rotate
// round-robin across vehicles — the interleaved per-segment query stream
// of a fleet, not one trip replayed end to end.
//
// Not safe for concurrent use: the pacer draws queries single-threaded
// (before dispatch), which also keeps the offered request sequence
// deterministic for a given sampler seed.
type Sessions struct {
	g        *roadnet.Graph
	sampler  *trajectory.Sampler
	segLenM  float64
	vehicles []session
	cursor   int
	drawn    int64
}

// NewSessions builds the pool and fills it with `concurrent` trips.
func NewSessions(g *roadnet.Graph, sampler *trajectory.Sampler, concurrent int, segLenM float64) (*Sessions, error) {
	if concurrent <= 0 {
		return nil, fmt.Errorf("load: concurrent vehicle count must be positive, got %d", concurrent)
	}
	s := &Sessions{g: g, sampler: sampler, segLenM: segLenM, vehicles: make([]session, concurrent)}
	for i := range s.vehicles {
		if err := s.refill(i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// refill replaces vehicle i with the next sampled trip that segments into
// at least one query point.
func (s *Sessions) refill(i int) error {
	for {
		trip, err := s.sampler.Next()
		if err != nil {
			return err
		}
		segs := trajectory.SegmentTrip(s.g, trip, s.segLenM)
		if len(segs) == 0 {
			continue // degenerate path; the sampler's constraints make this rare
		}
		s.vehicles[i] = session{tripID: trip.ID, segs: segs}
		return nil
	}
}

// Next returns the next query of the fleet: the current vehicle's segment
// anchor, advancing that vehicle (and replacing it when its trip ends).
func (s *Sessions) Next() (Query, error) {
	v := &s.vehicles[s.cursor]
	seg := v.segs[v.next]
	q := Query{
		TripID:  v.tripID,
		Segment: seg.Index,
		Lat:     seg.Anchor.Lat,
		Lon:     seg.Anchor.Lon,
		ETA:     seg.ETA,
	}
	v.next++
	if v.next >= len(v.segs) {
		if err := s.refill(s.cursor); err != nil {
			return Query{}, err
		}
	}
	s.cursor = (s.cursor + 1) % len(s.vehicles)
	s.drawn++
	return q, nil
}

// Drawn returns how many queries the pool has produced.
func (s *Sessions) Drawn() int64 { return s.drawn }

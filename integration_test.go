package ecocharge

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/eis"
	"ecocharge/internal/ev"
	"ecocharge/internal/experiment"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/sim"
	"ecocharge/internal/smartgrid"
	"ecocharge/internal/trajectory"
)

// TestFullPipelineIntegration drives the whole system end to end across
// package boundaries: build a scenario, serialize and reload its world,
// evaluate a trip locally and through the EIS, commit a vehicle through the
// battery model, run the fleet simulator, and get grid-aware advice — all
// from the one scenario.
func TestFullPipelineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	sc, err := experiment.BuildScenario("Oldenburg", 0.001, 7)
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}

	// 1. World serialization round trip: graph and chargers through their
	// codecs, rebuilt into an equivalent environment.
	var gbuf bytes.Buffer
	if err := sc.Graph.WriteCSV(&gbuf); err != nil {
		t.Fatalf("graph WriteCSV: %v", err)
	}
	graph2, err := roadnet.ReadCSV(&gbuf)
	if err != nil {
		t.Fatalf("graph ReadCSV: %v", err)
	}
	var cbuf bytes.Buffer
	if err := sc.Env.Chargers.WriteCSV(&cbuf); err != nil {
		t.Fatalf("chargers WriteCSV: %v", err)
	}
	rows, err := charger.ReadCSV(&cbuf)
	if err != nil {
		t.Fatalf("chargers ReadCSV: %v", err)
	}
	// CSV does not carry timetables; regenerate them from the model as the
	// data pipeline documents.
	for i := range rows {
		rows[i].Timetable = sc.Env.Avail.GenerateTimetable(rows[i].ID)
	}
	set2, err := charger.NewSet(rows)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	env2, err := cknn.NewEnv(graph2, set2, sc.Env.Solar, sc.Env.Avail, sc.Env.Traffic, cknn.EnvConfig{RadiusM: 50000, Wind: sc.Env.Wind})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}

	// 2. The reloaded world must rank like the original.
	trip := sc.Trips[0]
	opts := cknn.TripOptions{K: 3, SegmentLenM: 4000, RadiusM: 50000}
	orig := cknn.RunTrip(sc.Env, cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{}), trip, opts)
	reloaded := cknn.RunTrip(env2, cknn.NewEcoCharge(env2, cknn.EcoChargeOptions{}), trip, opts)
	if len(orig) != len(reloaded) {
		t.Fatalf("segment counts differ: %d vs %d", len(orig), len(reloaded))
	}
	for i := range orig {
		a, b := orig[i].Table.IDs(), reloaded[i].Table.IDs()
		if len(a) != len(b) {
			t.Fatalf("segment %d: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("segment %d rank %d: %d vs %d", i, j, a[j], b[j])
			}
		}
	}

	// 3. The same trip through the EIS trip endpoint agrees on the top
	// charger of the first segment.
	server := httptest.NewServer(eis.NewServer(sc.Env, eis.ServerOptions{
		Clock: func() time.Time { return trip.Depart },
	}).Handler())
	defer server.Close()
	client := eis.NewClient(server.URL, server.Client())
	start := sc.Graph.Node(trip.Path.Nodes[0]).P
	end := sc.Graph.Node(trip.Path.Nodes[len(trip.Path.Nodes)-1]).P
	resp, err := client.TripOffering(context.Background(), eis.TripOfferingRequest{
		Waypoints: []eis.LatLon{{Lat: start.Lat, Lon: start.Lon}, {Lat: end.Lat, Lon: end.Lon}},
		Depart:    trip.Depart, K: 3, RadiusM: 50000, SegmentLenM: 4000,
	})
	if err != nil {
		t.Fatalf("TripOffering: %v", err)
	}
	if len(resp.Segments) == 0 || len(resp.Segments[0].Entries) == 0 {
		t.Fatal("EIS returned no recommendations")
	}
	if got, want := resp.Segments[0].Entries[0].ChargerID, orig[0].Table.IDs()[0]; got != want {
		t.Fatalf("EIS first pick %d differs from local %d", got, want)
	}

	// 4. Battery model: charge the committed pick from solar-limited supply.
	top, _ := orig[len(orig)-1].Table.Top()
	vehicle := ev.CompactEV()
	vehicle.SoC = 0.35
	dc := top.Charger.Rate.KW() > 22
	gained := vehicle.Charge(func(at time.Time) float64 {
		p := sc.Env.Solar.Truth(top.Charger.Site(), at)
		if r := top.Charger.Rate.KW(); p > r {
			p = r
		}
		return p
	}, dc, top.Comp.ETA, 45*time.Minute)
	if gained < 0 || vehicle.SoC < 0.35 {
		t.Fatalf("charging went backwards: gained %v, SoC %v", gained, vehicle.SoC)
	}

	// 5. Fleet simulation over the scenario's trips.
	res := sim.Run(sc.Env, sc.Trips, sim.Config{RadiusM: 20000, AcceptSC: 0.3})
	if res.Vehicles != len(sc.Trips) || res.Queries == 0 {
		t.Fatalf("sim result implausible: %v", res)
	}

	// 6. Grid-aware advice on the last Offering Table.
	advisor := smartgrid.NewAdvisor(smartgrid.DefaultTariff(), smartgrid.NewGridSignal())
	advice := advisor.Advise(orig[len(orig)-1].Table, trip.Depart)
	if len(advice) == 0 {
		t.Fatal("no grid-aware advice")
	}
	for _, ad := range advice {
		if !ad.GS.Valid() || !ad.Price.Valid() {
			t.Fatalf("invalid advice intervals: %+v", ad)
		}
	}

	// 7. Map-matching closes the loop: a sampled GPS stream of the trip
	// reconstructs a routable trip on the same network.
	tr := trajectory.Sample(sc.Graph, trip, 30*time.Second)
	matched := trajectory.MapMatch(sc.Graph, tr, trajectory.MatchConfig{})
	if len(matched) != 1 {
		t.Fatalf("map matching produced %d trips", len(matched))
	}
	if ratio := matched[0].Path.Weight / trip.Path.Weight; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("matched length ratio %.2f", ratio)
	}
}

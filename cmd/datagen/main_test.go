package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecocharge/internal/charger"
	"ecocharge/internal/snapshot"
)

func TestDatagenWritesAllFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build is slow")
	}
	dir := t.TempDir()
	if err := run("Oldenburg", 0.0005, 1, dir, 1, filepath.Join(dir, "world.zip")); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Chargers round-trip through the CSV codec.
	f, err := os.Open(filepath.Join(dir, "chargers.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cs, err := charger.ReadCSV(f)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(cs) != 1000 {
		t.Errorf("chargers.csv has %d rows, want 1000", len(cs))
	}
	// Trips file is non-trivial.
	trips, err := os.ReadFile(filepath.Join(dir, "trips.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(trips), "\n")
	if lines < 2 {
		t.Errorf("trips.csv has %d lines", lines)
	}
	// Production series: 96 samples/day per charger with panels.
	prod, err := os.ReadFile(filepath.Join(dir, "production.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(prod), "\n") < 96 {
		t.Error("production.csv too short")
	}
	// The bundle must load back.
	data, err := os.ReadFile(filepath.Join(dir, "world.zip"))
	if err != nil {
		t.Fatalf("bundle not written: %v", err)
	}
	sc, err := snapshot.LoadFromBytes(data)
	if err != nil {
		t.Fatalf("bundle does not load: %v", err)
	}
	if sc.Name != "Oldenburg" || sc.Env.Chargers.Len() != 1000 {
		t.Errorf("bundle content wrong: %s, %d chargers", sc.Name, sc.Env.Chargers.Len())
	}
}

func TestDatagenBadDataset(t *testing.T) {
	if err := run("nope", 0.001, 1, t.TempDir(), 1, ""); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

package eis

import (
	"net/http"
	"time"
)

// DefaultTransport returns an *http.Transport tuned for sustained
// many-request traffic against one EIS or gateway host. The stdlib
// http.DefaultTransport caps idle connections at 2 per host
// (DefaultMaxIdleConnsPerHost), so anything beyond 2 concurrent workers
// tears down and re-dials TCP connections on every exchange — under a load
// run that measures handshakes, not the service. The returned transport
// keeps up to maxConns idle connections per host (floored at 2).
//
// disableCompression should be true on the binary wire plane: the wire
// codec's payloads don't gzip usefully, and transparent compression both
// hides the real transfer size and burns CPU in the measurement path. The
// JSON plane keeps compression on, matching what a production JSON client
// would negotiate.
func DefaultTransport(maxConns int, disableCompression bool) *http.Transport {
	if maxConns < 2 {
		maxConns = 2
	}
	return &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        maxConns * 2,
		MaxIdleConnsPerHost: maxConns,
		MaxConnsPerHost:     0, // in-flight bounding is the caller's worker pool
		IdleConnTimeout:     90 * time.Second,
		TLSHandshakeTimeout: 10 * time.Second,
		ForceAttemptHTTP2:   true,
		DisableCompression:  disableCompression,
	}
}

// Commute with derouting: the paper's scheduled-trip scenario (Fig. 1). A
// parent drives a fixed 20 km route; EcoCharge continuously recomputes the
// Offering Table along the trip using the dynamic cache, and the example
// shows how the recommendation evolves per path segment, where the split
// points fall, and what the detour to the final choice costs.
package main

import (
	"fmt"
	"log"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

func main() {
	graph := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin:  geo.Point{Lat: 53.05, Lon: 8.05},
		WidthKM: 25, HeightKM: 20, SpacingM: 500,
		RemoveFrac: 0.08, JitterFrac: 0.25, ArterialEach: 5, Seed: 31,
	})
	solar := ec.NewSolarModel(9)
	avail := ec.NewAvailabilityModel(10)
	traffic := ec.NewTrafficModel(11)
	chargers, err := charger.Generate(graph, avail, charger.GenConfig{N: 300, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	env, err := cknn.NewEnv(graph, chargers, solar, avail, traffic, cknn.EnvConfig{RadiusM: 15000})
	if err != nil {
		log.Fatal(err)
	}

	// One scheduled ~20 km trip departing at 15:30 (school pickup).
	depart := time.Date(2024, 6, 18, 15, 30, 0, 0, time.UTC)
	trips, err := trajectory.Generate(graph, trajectory.GenConfig{
		N: 1, Seed: 33, MinTripKM: 18, MaxTripKM: 24, Start: depart, Window: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	trip := trips[0]
	fmt.Printf("scheduled trip: %.1f km departing %s\n\n", trip.Path.Weight/1000, trip.Depart.Format("15:04"))

	method := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 15000, ReuseDistM: 5000})
	opts := cknn.TripOptions{K: 3, SegmentLenM: 4000, RadiusM: 15000}
	results := cknn.RunTrip(env, method, trip, opts)

	fmt.Println("segment  ETA    top charger   SC(mid)  derout(min)  source")
	for _, r := range results {
		top, ok := r.Table.Top()
		if !ok {
			continue
		}
		src := "computed"
		if r.Table.Adapted {
			src = "cache"
		}
		fmt.Printf("   %2d    %s  charger %-4d  %.3f    %5.1f       %s\n",
			r.Segment.Index, r.Segment.ETA.Format("15:04"),
			top.Charger.ID, top.SC.Mid(), top.Comp.DeroutSecM/60, src)
	}

	// Where does the recommended kNN set change along the route?
	sl := cknn.SplitList(env, method, trip, opts)
	fmt.Printf("\n%d split points along the trip:\n", len(sl))
	for _, sp := range sl {
		fmt.Printf("  segment %d (ETA %s): top-3 becomes %v\n", sp.SegmentIndex, sp.ETA.Format("15:04"), sp.NN)
	}

	// Commit to the final segment's best charger and quantify the detour.
	last := results[len(results)-1]
	top, ok := last.Table.Top()
	if !ok {
		log.Fatal("no charger recommended on the final segment")
	}
	lower, upper := traffic.WeightFuncs(last.Segment.ETA, trip.Depart)
	toCharger, ok1 := graph.ShortestPath(last.Segment.AnchorNode, top.Charger.Node, lower)
	backHome, ok2 := graph.ShortestPath(top.Charger.Node, trip.Path.Nodes[len(trip.Path.Nodes)-1], upper)
	if !ok1 || !ok2 {
		log.Fatal("recommended charger unreachable")
	}
	fmt.Printf("\ncommitting to charger %d (%s, %.1f kW panels):\n",
		top.Charger.ID, top.Charger.Rate, top.Charger.PanelKW)
	fmt.Printf("  detour: %.1f min to the charger (optimistic), %.1f min back to the destination (pessimistic)\n",
		toCharger.Weight/60, backHome.Weight/60)
	fmt.Printf("  expected clean power on arrival: %s kW\n",
		solar.Forecast(top.Charger.Site(), top.Comp.ETA, trip.Depart))
}

package charger

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// fuzzCharger builds a charger from raw fuzz inputs, reporting false when
// the inputs fall outside the domain the codecs promise to handle
// (valid WGS84 coordinates, non-negative finite capacities).
func fuzzCharger(id int64, lat, lon float64, node int32, rateKW, panelKW, windKW float64, plugs int, tt0, tt1 float64) (Charger, bool) {
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return Charger{}, false
	}
	for _, v := range []float64{rateKW, panelKW, windKW, tt0, tt1} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e6 {
			return Charger{}, false
		}
	}
	c := Charger{
		ID: id, P: p, Node: roadnet.NodeID(node),
		Rate: rateFromKW(rateKW), PanelKW: panelKW, WindKW: windKW, Plugs: plugs,
	}
	c.Timetable[0][0] = tt0
	c.Timetable[6][23] = tt1
	return c, true
}

// FuzzJSONRoundTrip checks that MarshalJSON/UnmarshalJSON is lossless:
// encoding/json renders float64 with a shortest round-trippable form, so
// every field — including the timetable — must survive exactly.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add(int64(1), 48.1, 11.5, int32(7), 22.0, 30.5, 0.0, 2, 0.5, 0.9)
	f.Add(int64(-3), -90.0, 180.0, int32(-1), 3.7, 0.0, 12.5, 0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, id int64, lat, lon float64, node int32, rateKW, panelKW, windKW float64, plugs int, tt0, tt1 float64) {
		c, ok := fuzzCharger(id, lat, lon, node, rateKW, panelKW, windKW, plugs, tt0, tt1)
		if !ok {
			t.Skip("outside codec domain")
		}
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got Charger
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal(%s): %v", data, err)
		}
		if got != c {
			t.Errorf("JSON round trip changed the charger\n in: %+v\nout: %+v\nwire: %s", c, got, data)
		}
		// A second trip must be a fixed point too.
		data2, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("re-encoding is not stable:\n first: %s\nsecond: %s", data, data2)
		}
	})
}

// FuzzCSVRoundTrip checks the CSV codec's projection property: the first
// Write/Read pass may quantize (6-decimal coordinates, 1-decimal kW,
// nearest rate class), but a second pass over the projected charger must
// reproduce it exactly.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add(int64(1), 48.1, 11.5, int32(7), 22.0, 30.5, 0.0, 2)
	f.Add(int64(9), -89.999999, 179.999999, int32(0), 150.0, 0.05, 7.4, 1)
	f.Fuzz(func(t *testing.T, id int64, lat, lon float64, node int32, rateKW, panelKW, windKW float64, plugs int) {
		c, ok := fuzzCharger(id, lat, lon, node, rateKW, panelKW, windKW, plugs, 0, 0)
		if !ok {
			t.Skip("outside codec domain")
		}
		projected := csvTrip(t, c)
		again := csvTrip(t, projected)
		if again != projected {
			t.Errorf("CSV projection is not idempotent\nfirst:  %+v\nsecond: %+v", projected, again)
		}
		if projected.ID != c.ID || projected.Node != c.Node || projected.Plugs != c.Plugs {
			t.Errorf("CSV trip changed exact fields: %+v -> %+v", c, projected)
		}
	})
}

// csvTrip writes the charger through the CSV codec and reads it back.
func csvTrip(t *testing.T, c Charger) Charger {
	t.Helper()
	set, err := NewSet([]Charger{c})
	if err != nil {
		t.Skipf("unindexable charger: %v", err)
	}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV(%q): %v", buf.String(), err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d chargers, want 1", len(out))
	}
	return out[0]
}

package experiment

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// tinyConfig keeps unit-test runtime low; the figures themselves run at a
// larger configuration via cmd/ecobench and bench_test.go.
func tinyConfig() RunConfig {
	return RunConfig{Repetitions: 2, TripsPerRep: 3, SegmentLenM: 4000}
}

// tinyScenario builds the smallest dataset (Oldenburg) at a very small trip
// scale, reused across tests (building is the slow part).
func tinyScenario(t testing.TB) *Scenario {
	t.Helper()
	sc, err := BuildScenario("Oldenburg", 0.002, 42) // 8 trips
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	return sc
}

func TestBuildScenario(t *testing.T) {
	sc := tinyScenario(t)
	if sc.Name != "Oldenburg" {
		t.Errorf("name = %q", sc.Name)
	}
	if len(sc.Trips) != 8 {
		t.Errorf("trips = %d, want 8", len(sc.Trips))
	}
	if sc.Env.Chargers.Len() != 1000 {
		t.Errorf("chargers = %d, want 1000", sc.Env.Chargers.Len())
	}
	if _, err := BuildScenario("nope", 0.01, 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := BuildScenario("Oldenburg", 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestRunPerformanceShape(t *testing.T) {
	sc := tinyScenario(t)
	ms, err := RunPerformance(context.Background(), sc, tinyConfig())
	if err != nil {
		t.Fatalf("RunPerformance: %v", err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements, want 4", len(ms))
	}
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Method] = m
		if m.Queries == 0 {
			t.Errorf("%s measured zero queries", m.Method)
		}
	}

	bf := byName["BruteForce"]
	eco := byName["EcoCharge"]
	rnd := byName["Random"]
	qt := byName["Index-Quadtree"]

	// Brute force is the optimum by definition.
	if bf.SCPercent.Mean < 99.9 || bf.SCPercent.Mean > 100.1 {
		t.Errorf("brute force SC%% = %v, want 100", bf.SCPercent.Mean)
	}
	// Paper Fig. 6 ordering: EcoCharge near-optimal, quadtree mid, random worst.
	if eco.SCPercent.Mean < qt.SCPercent.Mean {
		t.Errorf("EcoCharge SC %.1f below quadtree %.1f", eco.SCPercent.Mean, qt.SCPercent.Mean)
	}
	if qt.SCPercent.Mean < rnd.SCPercent.Mean {
		t.Errorf("quadtree SC %.1f below random %.1f", qt.SCPercent.Mean, rnd.SCPercent.Mean)
	}
	if rnd.SCPercent.Mean > 80 {
		t.Errorf("random SC %.1f suspiciously high", rnd.SCPercent.Mean)
	}
	if eco.SCPercent.Mean < 85 {
		t.Errorf("EcoCharge SC %.1f too low", eco.SCPercent.Mean)
	}
	// F_t ordering: brute force slowest; random fastest.
	if bf.FtMillis.Mean < eco.FtMillis.Mean {
		t.Errorf("brute force Ft %.2f faster than EcoCharge %.2f", bf.FtMillis.Mean, eco.FtMillis.Mean)
	}
	if rnd.FtMillis.Mean > bf.FtMillis.Mean {
		t.Errorf("random Ft %.2f slower than brute force %.2f", rnd.FtMillis.Mean, bf.FtMillis.Mean)
	}
	// EcoCharge cache must actually be exercised.
	if eco.CacheHits == 0 {
		t.Error("EcoCharge cache never hit")
	}
}

func TestRunROptMonotonicity(t *testing.T) {
	sc := tinyScenario(t)
	ms, err := RunROpt(context.Background(), sc, tinyConfig(), []float64{5, 50})
	if err != nil {
		t.Fatalf("RunROpt: %v", err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	small, large := ms[0], ms[1]
	if small.Config != "R=5km" || large.Config != "R=50km" {
		t.Fatalf("configs = %q, %q", small.Config, large.Config)
	}
	// Larger radius sees at least as many chargers: SC must not decrease
	// meaningfully (tolerance for sampling noise).
	if large.SCPercent.Mean < small.SCPercent.Mean-2 {
		t.Errorf("SC dropped with radius: R=5 %.1f vs R=50 %.1f",
			small.SCPercent.Mean, large.SCPercent.Mean)
	}
}

func TestRunQOptCacheTradeoff(t *testing.T) {
	sc := tinyScenario(t)
	cfg := tinyConfig()
	ms, err := RunQOpt(context.Background(), sc, cfg, []float64{2, 15})
	if err != nil {
		t.Fatalf("RunQOpt: %v", err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	smallQ, largeQ := ms[0], ms[1]
	// More reuse with larger Q.
	if largeQ.CacheHits <= smallQ.CacheHits {
		t.Errorf("larger Q did not increase cache hits: %d vs %d",
			largeQ.CacheHits, smallQ.CacheHits)
	}
	// Larger Q must not be more accurate.
	if largeQ.SCPercent.Mean > smallQ.SCPercent.Mean+1 {
		t.Errorf("larger Q more accurate: Q=2 %.1f vs Q=15 %.1f",
			smallQ.SCPercent.Mean, largeQ.SCPercent.Mean)
	}
}

func TestRunAblationShape(t *testing.T) {
	sc := tinyScenario(t)
	ms, err := RunAblation(context.Background(), sc, tinyConfig())
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements", len(ms))
	}
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Method] = m
		// Shares sum to 1.
		s := m.Shares.L + m.Shares.A + m.Shares.D
		if s < 0.99 || s > 1.01 {
			t.Errorf("%s shares sum to %v", m.Method, s)
		}
	}
	awe := byName["AWE"]
	// AWE must outperform every single-objective function on the
	// equal-weight truth metric (paper: AWE outperforms all).
	for _, name := range []string{"OSC", "OA", "ODC"} {
		if byName[name].SCPercent.Mean > awe.SCPercent.Mean+1 {
			t.Errorf("%s SC %.1f above AWE %.1f", name, byName[name].SCPercent.Mean, awe.SCPercent.Mean)
		}
	}
	// Each single-objective function shifts share mass toward its target.
	if byName["OSC"].Shares.L <= awe.Shares.L {
		t.Errorf("OSC did not raise the L share: %.3f vs AWE %.3f", byName["OSC"].Shares.L, awe.Shares.L)
	}
	if byName["OA"].Shares.A <= awe.Shares.A {
		t.Errorf("OA did not raise the A share: %.3f vs AWE %.3f", byName["OA"].Shares.A, awe.Shares.A)
	}
	if byName["ODC"].Shares.D <= awe.Shares.D {
		t.Errorf("ODC did not raise the D share: %.3f vs AWE %.3f", byName["ODC"].Shares.D, awe.Shares.D)
	}
}

func TestPrintFigure(t *testing.T) {
	sc := tinyScenario(t)
	ms, err := RunPerformance(context.Background(), sc, RunConfig{Repetitions: 1, TripsPerRep: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PrintFigure(&buf, "Fig 6 test", ms); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 6 test", "BruteForce", "EcoCharge", "Oldenburg", "SC%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintAblation(t *testing.T) {
	ms := []Measurement{{Dataset: "X", Method: "AWE", Shares: ObjectiveShares{L: 0.33, A: 0.34, D: 0.33}}}
	var buf bytes.Buffer
	if err := PrintAblation(&buf, "Fig 9 test", ms); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "w1(L)%") || !strings.Contains(buf.String(), "AWE") {
		t.Errorf("ablation output malformed:\n%s", buf.String())
	}
}

func TestRunSeriesErrors(t *testing.T) {
	sc := tinyScenario(t)
	empty := *sc
	empty.Trips = nil
	if _, err := RunPerformance(context.Background(), &empty, tinyConfig()); err == nil {
		t.Error("empty trips accepted")
	}
}

func TestRunSeriesCancellation(t *testing.T) {
	sc := tinyScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first cell starts
	_, err := RunPerformance(ctx, sc, tinyConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunSeriesWorkerDeterminism is the sweep-cell analogue of the cknn
// differential tests: parallel cells must reproduce the sequential
// aggregates exactly, because every repetition owns its seed and results
// are folded in repetition order.
func TestRunSeriesWorkerDeterminism(t *testing.T) {
	sc := tinyScenario(t)
	seqCfg := tinyConfig()
	seqCfg.Workers = 1
	parCfg := tinyConfig()
	parCfg.Workers = 4
	seq, err := RunPerformance(context.Background(), sc, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPerformance(context.Background(), sc, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("measurement counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		// F_t is wall-clock and legitimately varies; everything derived
		// from the ranking itself must be bit-identical.
		if s.Method != p.Method || s.Dataset != p.Dataset || s.Config != p.Config {
			t.Fatalf("row %d identity differs: %+v vs %+v", i, s, p)
		}
		//ecolint:ignore floateq determinism check: parallel cells must be bit-identical
		if s.SCPercent.Mean != p.SCPercent.Mean || s.SCPercent.StdDev != p.SCPercent.StdDev {
			t.Errorf("%s SC%% differs across workers: %v vs %v", s.Method, s.SCPercent, p.SCPercent)
		}
		if s.Queries != p.Queries || s.CacheHits != p.CacheHits || s.CacheMiss != p.CacheMiss {
			t.Errorf("%s counts differ: (%d,%d,%d) vs (%d,%d,%d)", s.Method,
				s.Queries, s.CacheHits, s.CacheMiss, p.Queries, p.CacheHits, p.CacheMiss)
		}
	}
}

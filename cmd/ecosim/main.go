// Command ecosim runs the discrete-event fleet simulator over a dataset
// scenario, comparing uncoordinated EcoCharge recommendations against the
// load-balancing extension (paper §VII future work) — plug conflicts,
// charger utilization spread, and renewable energy hoarded.
//
// Example:
//
//	ecosim -dataset Oldenburg -vehicles 40 -chargers 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/sim"
	"ecocharge/internal/trajectory"
)

func main() {
	var (
		dataset  = flag.String("dataset", "Oldenburg", "dataset profile: Oldenburg, California, T-drive, Geolife")
		vehicles = flag.Int("vehicles", 40, "fleet size")
		chargers = flag.Int("chargers", 25, "charger inventory size (small values force contention)")
		seed     = flag.Int64("seed", 42, "scenario seed")
		radius   = flag.Float64("r", 10, "search radius R in km")
		accept   = flag.Float64("accept", 0.3, "minimum SC midpoint a driver accepts")
		session  = flag.Duration("session", 45*time.Minute, "charging session length")
	)
	flag.Parse()

	if err := run(*dataset, *vehicles, *chargers, *seed, *radius, *accept, *session); err != nil {
		fmt.Fprintln(os.Stderr, "ecosim:", err)
		os.Exit(1)
	}
}

func run(dataset string, vehicles, nChargers int, seed int64, radiusKM, accept float64, session time.Duration) error {
	p, err := trajectory.ProfileByName(dataset)
	if err != nil {
		return err
	}
	g := p.BuildGraph(seed)
	avail := ec.NewAvailabilityModel(seed + 1)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: nChargers, Seed: seed + 2})
	if err != nil {
		return err
	}
	env, err := cknn.NewEnv(g, set, ec.NewSolarModel(seed+3), avail, ec.NewTrafficModel(seed+4),
		cknn.EnvConfig{RadiusM: radiusKM * 1000})
	if err != nil {
		return err
	}
	start := time.Date(2024, 6, 18, 9, 0, 0, 0, time.UTC)
	trips, err := trajectory.Generate(g, trajectory.GenConfig{
		N: vehicles, Seed: seed + 5, MinTripKM: 3, MaxTripKM: 15,
		Start: start, Window: 45 * time.Minute,
	})
	if err != nil {
		return err
	}

	cfg := sim.Config{RadiusM: radiusKM * 1000, AcceptSC: accept, Session: session}
	plain := sim.Run(env, trips, cfg)
	cfg.Balanced = true
	balanced := sim.Run(env, trips, cfg)

	fmt.Printf("%s: %d vehicles over %d chargers (R=%.0f km, accept SC ≥ %.2f, %s sessions)\n\n",
		dataset, vehicles, nChargers, radiusKM, accept, session)
	fmt.Printf("%-16s %10s %10s %10s %12s %10s %8s\n",
		"mode", "commits", "conflicts", "chargers", "clean kWh", "grid kWh", "gini")
	print := func(name string, r sim.Result) {
		fmt.Printf("%-16s %10d %10d %10d %12.1f %10.1f %8.3f\n",
			name, r.Commits, r.Conflicts, len(r.PerCharger), r.CleanKWh, r.GridKWh, r.UtilizationGini)
	}
	print("uncoordinated", plain)
	print("balanced", balanced)

	if balanced.Conflicts < plain.Conflicts {
		fmt.Printf("\nbalancing removed %d plug conflicts (%.0f%%)\n",
			plain.Conflicts-balanced.Conflicts,
			100*float64(plain.Conflicts-balanced.Conflicts)/float64(max(plain.Conflicts, 1)))
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsAlloc guards the observability discipline on the ranking hot paths
// (internal/cknn and internal/roadnet): metric handles must be registered
// once, up front, under constant names. A name built at call time — the
// typical shape is fmt.Sprintf("cknn_%s_total", kind) — means the handle is
// being looked up (or worse, created) inside the loop it instruments, which
// both allocates on a path that docs/observability.md promises is
// zero-alloc and risks unbounded metric cardinality.
//
// The rule: the name argument of Registry.Counter / Registry.Gauge /
// Registry.Histogram must be a compile-time string constant. Anything
// dynamic — Sprintf, concatenation with a variable, a plain variable — is
// flagged. Other packages (servers, benchmarks, tools) are free to build
// names dynamically and are not checked.
var ObsAlloc = &Analyzer{
	Name: "obsalloc",
	Doc:  "flags non-constant metric names passed to obs.Registry in the cknn/roadnet hot paths",
	Run:  runObsAlloc,
}

func runObsAlloc(pass *Pass) {
	path := pass.Pkg.ImportPath
	if !strings.HasSuffix(path, "internal/cknn") && !strings.HasSuffix(path, "internal/roadnet") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isMetricConstructor(sel.Sel.Name) {
				return true
			}
			if !isRegistryReceiver(pass, sel.X) || len(call.Args) == 0 {
				return true
			}
			if !isConstantString(pass, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name for %s built at call time; register handles once with constant names (dynamic names allocate on the hot path and explode cardinality)",
					sel.Sel.Name)
			}
			return true
		})
	}
}

func isMetricConstructor(name string) bool {
	return name == "Counter" || name == "Gauge" || name == "Histogram"
}

// isRegistryReceiver reports whether the expression resolves to a type
// named Registry (type information preferred, pointer receivers included;
// syntax as fallback for files that fail to type-check fully).
func isRegistryReceiver(pass *Pass, x ast.Expr) bool {
	if t := pass.TypeOf(x); t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj() != nil && named.Obj().Name() == "Registry"
		}
		return false
	}
	if id, ok := x.(*ast.Ident); ok {
		return strings.Contains(strings.ToLower(id.Name), "registry")
	}
	return false
}

// isConstantString reports whether the expression folds to a compile-time
// string constant (literals, named constants and constant concatenation all
// qualify).
func isConstantString(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		_, lit := e.(*ast.BasicLit)
		return lit
	}
	return tv.Value != nil
}

package cknn

import (
	"ecocharge/internal/geo"
	"ecocharge/internal/trajectory"
)

// RefineOptions tune split-point refinement.
type RefineOptions struct {
	// ResolutionM stops the bisection once the bracketing interval along
	// the trip is shorter than this. 0 selects 250 m.
	ResolutionM float64
	// MaxProbes bounds the extra Rank calls per segment pair. 0 selects 8.
	MaxProbes int
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.ResolutionM <= 0 {
		o.ResolutionM = 250
	}
	if o.MaxProbes <= 0 {
		o.MaxProbes = 8
	}
	return o
}

// RefineSplitPoints sharpens a segment-granularity split list to
// sub-segment resolution: for every pair of consecutive split points it
// bisects the trip positions between them, probing the method at
// interpolated anchors until the transition is bracketed within
// ResolutionM. The result has the same number of split points with more
// precise positions (the first point, the trip start, is exact already).
//
// This is the practical form of the exact split points SL of the CkNN
// literature (Tao et al.): between consecutive refined points the top-k
// set is constant at the probe resolution.
func RefineSplitPoints(env *Env, method Method, trip trajectory.Trip, opts TripOptions, ropts RefineOptions) []SplitPoint {
	opts = opts.withDefaults()
	ropts = ropts.withDefaults()
	coarse := SplitList(env, method, trip, opts)
	if len(coarse) <= 1 {
		return coarse
	}
	segs := trajectory.SegmentTrip(env.Graph, trip, opts.SegmentLenM)

	out := make([]SplitPoint, len(coarse))
	copy(out, coarse)
	for i := 1; i < len(coarse); i++ {
		prev, cur := coarse[i-1], coarse[i]
		// Bracket: the set changed somewhere between the previous split
		// point's segment anchor and this one's.
		loSeg := prev.SegmentIndex
		hiSeg := cur.SegmentIndex
		if hiSeg <= loSeg {
			continue
		}
		lo := segs[loSeg].Anchor
		hi := segs[hiSeg].Anchor
		loETA := segs[loSeg].ETA
		hiETA := segs[hiSeg].ETA
		want := cur.NN

		probes := 0
		for probes < ropts.MaxProbes && geo.Distance(lo, hi) > ropts.ResolutionM {
			mid := geo.Midpoint(lo, hi)
			midETA := loETA.Add(hiETA.Sub(loETA) / 2)
			node := env.Graph.NearestNode(mid)
			q := Query{
				Anchor: env.Graph.Node(node).P, AnchorNode: node, ReturnNode: node,
				Now: trip.Depart, ETABase: midETA,
				K: opts.K, RadiusM: opts.RadiusM, Weights: opts.Weights,
			}
			method.Reset() // probe without cache interference
			ids := method.Rank(q).IDs()
			if sameIDs(ids, want) {
				hi, hiETA = mid, midETA
			} else {
				lo, loETA = mid, midETA
			}
			probes++
		}
		out[i].P = hi
		out[i].ETA = hiETA
	}
	return out
}

// TransitionDistanceM reports the along-trip distance (approximated by the
// geodesic between consecutive refined points) covered by each split
// interval. Diagnostics for the continuous query's stability.
func TransitionDistanceM(points []SplitPoint) []float64 {
	if len(points) < 2 {
		return nil
	}
	out := make([]float64, 0, len(points)-1)
	for i := 1; i < len(points); i++ {
		out = append(out, geo.Distance(points[i-1].P, points[i].P))
	}
	return out
}

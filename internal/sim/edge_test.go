package sim

import (
	"testing"
	"time"

	"ecocharge/internal/trajectory"
)

// A fleet larger than the plug supply must queue: waiting shifts sessions
// later instead of dropping drivers.
func TestConflictsShiftSessionsNotDropThem(t *testing.T) {
	env, trips := fleetWorld(t, 6) // very scarce
	res := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.2, Session: time.Hour})
	total := 0
	for _, n := range res.PerCharger {
		total += n
	}
	if total != res.Commits {
		t.Fatalf("%d sessions for %d commits: conflicts dropped drivers", total, res.Commits)
	}
}

// Session length controls energy: longer sessions harvest at least as much.
func TestSessionLengthMonotone(t *testing.T) {
	env, trips := fleetWorld(t, 40)
	short := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.3, Session: 15 * time.Minute})
	long := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.3, Session: 90 * time.Minute})
	if long.CleanKWh+long.GridKWh < short.CleanKWh+short.GridKWh {
		t.Fatalf("longer sessions delivered less total energy: %.1f vs %.1f",
			long.CleanKWh+long.GridKWh, short.CleanKWh+short.GridKWh)
	}
}

// Degenerate trips (too short to segment) are skipped, not counted.
func TestDegenerateTripsSkipped(t *testing.T) {
	env, trips := fleetWorld(t, 20)
	broken := append([]trajectory.Trip{{ID: 999}}, trips[:3]...)
	res := Run(env, broken, Config{RadiusM: 8000, AcceptSC: 0.3})
	if res.Vehicles != 3 {
		t.Fatalf("degenerate trip counted: %d vehicles", res.Vehicles)
	}
}

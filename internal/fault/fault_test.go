package fault

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/cknn"
)

func TestDecideDeterministic(t *testing.T) {
	in := New(Config{Seed: 42, Rate: 0.3, StaleRate: 0.2, LatencyRate: 0.5, Latency: time.Second})
	for i := uint64(0); i < 200; i++ {
		a := in.Decide(i, i*7)
		b := in.Decide(i, i*7)
		if a != b {
			t.Fatalf("Decide not pure for keys (%d,%d): %+v vs %+v", i, i*7, a, b)
		}
	}
}

func TestDecideSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1, Rate: 0.5})
	b := New(Config{Seed: 2, Rate: 0.5})
	same := 0
	const n = 512
	for i := uint64(0); i < n; i++ {
		if a.Decide(i).Fail == b.Decide(i).Fail {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault realizations")
	}
}

func TestDecideRateEmpirical(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.3, 1} {
		in := New(Config{Seed: 7, Rate: rate})
		fails := 0
		const n = 4000
		for i := uint64(0); i < n; i++ {
			if in.Decide(i).Fail {
				fails++
			}
		}
		got := float64(fails) / n
		if math.Abs(got-rate) > 0.03 {
			t.Errorf("rate %.2f: empirical failure fraction %.3f", rate, got)
		}
	}
}

func TestZeroConfigNeverFails(t *testing.T) {
	in := New(Config{Seed: 99})
	for i := uint64(0); i < 1000; i++ {
		if d := in.Decide(i); d.Fail || d.Stale || d.Latency != 0 {
			t.Fatalf("zero-rate config injected %+v for key %d", d, i)
		}
	}
}

func TestBlackoutWindows(t *testing.T) {
	in := New(Config{Seed: 3, Blackouts: []Window{{From: 2, To: 4}}})
	if in.InBlackout() {
		t.Fatal("tick 0 should be clear")
	}
	if d := in.Decide(1); d.Fail {
		t.Fatal("decision failed outside blackout with rate 0")
	}
	in.Advance(2) // tick 2: inside
	if !in.InBlackout() {
		t.Fatal("tick 2 should be in blackout")
	}
	if d := in.Decide(1); !d.Fail {
		t.Fatal("decision succeeded inside blackout")
	}
	in.Advance(2) // tick 4: half-open upper bound is exclusive
	if in.InBlackout() {
		t.Fatal("tick 4 should be clear (half-open window)")
	}
	if d := in.Decide(1); d.Fail {
		t.Fatal("decision failed after blackout ended")
	}
}

func TestDecideSeqIndependentAttempts(t *testing.T) {
	in := New(Config{Seed: 11, Rate: 0.5})
	varied := false
	first := in.DecideSeq(1).Fail
	for i := 0; i < 64; i++ {
		if in.DecideSeq(1).Fail != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("sequenced decisions at rate 0.5 never varied across attempts")
	}
}

func TestConfigClamped(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 7, StaleRate: -1})
	if !in.Decide(1).Fail {
		t.Fatal("rate clamped to 1 should always fail")
	}
	in2 := New(Config{Seed: 5, Rate: -3})
	if in2.Decide(1).Fail {
		t.Fatal("rate clamped to 0 should never fail")
	}
}

func TestLatencyBounded(t *testing.T) {
	max := 80 * time.Millisecond
	in := New(Config{Seed: 13, LatencyRate: 1, Latency: max})
	hit := false
	for i := uint64(0); i < 100; i++ {
		d := in.Decide(i)
		if d.Latency < 0 || d.Latency >= max {
			t.Fatalf("latency %v outside [0, %v)", d.Latency, max)
		}
		if d.Latency > 0 {
			hit = true
		}
	}
	if !hit {
		t.Fatal("LatencyRate 1 never injected latency")
	}
}

func TestSourcePolicyPureAndBucketed(t *testing.T) {
	p := Sources(New(Config{Seed: 17, Rate: 0.5}))
	issued := time.Unix(1700000000, 0)
	for id := int64(0); id < 100; id++ {
		a := p.FetchOK(cknn.CompL, id, issued)
		if b := p.FetchOK(cknn.CompL, id, issued); a != b {
			t.Fatalf("FetchOK not pure for charger %d", id)
		}
		// Same freshness bucket, same answer.
		if b := p.FetchOK(cknn.CompL, id, issued.Add(time.Second)); a != b {
			t.Fatalf("FetchOK changed within one bucket for charger %d", id)
		}
	}
	// Across buckets the realization must eventually change.
	changed := false
	for id := int64(0); id < 100 && !changed; id++ {
		a := p.FetchOK(cknn.CompA, id, issued)
		changed = a != p.FetchOK(cknn.CompA, id, issued.Add(time.Hour))
	}
	if !changed {
		t.Fatal("fault realization identical across distant buckets for all chargers")
	}
}

func TestSourcePolicyComponentsIndependent(t *testing.T) {
	p := Sources(New(Config{Seed: 23, Rate: 0.5}))
	issued := time.Unix(1700000000, 0)
	identical := true
	for id := int64(0); id < 64 && identical; id++ {
		identical = p.FetchOK(cknn.CompL, id, issued) == p.FetchOK(cknn.CompD, id, issued)
	}
	if identical {
		t.Fatal("L and D fetch decisions perfectly correlated")
	}
}

// staticTripper returns a fixed 200 response.
type staticTripper struct{ calls int }

func (s *staticTripper) RoundTrip(*http.Request) (*http.Response, error) {
	s.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader("{}")),
	}, nil
}

func TestTransportInjectsFailures(t *testing.T) {
	inner := &staticTripper{}
	tr := &Transport{Inner: inner, Inj: New(Config{Seed: 31, Rate: 0.5})}
	req, _ := http.NewRequest(http.MethodGet, "http://eis.local/v1/offering", nil)
	fails := 0
	const n = 200
	for i := 0; i < n; i++ {
		resp, err := tr.RoundTrip(req)
		if err != nil {
			var te *TransportError
			if !errors.As(err, &te) {
				t.Fatalf("unexpected error type %T: %v", err, err)
			}
			if te.Endpoint != "/v1/offering" {
				t.Fatalf("fault recorded wrong endpoint %q", te.Endpoint)
			}
			fails++
			continue
		}
		resp.Body.Close()
	}
	if fails == 0 || fails == n {
		t.Fatalf("fault rate 0.5 produced %d/%d failures", fails, n)
	}
	if inner.calls != n-fails {
		t.Fatalf("inner transport saw %d calls, want %d (faulted requests must not reach it)", inner.calls, n-fails)
	}
}

func TestTransportBlackout(t *testing.T) {
	inner := &staticTripper{}
	tr := &Transport{Inner: inner, Inj: New(Config{Seed: 31, Blackouts: []Window{{From: 0, To: 10}}})}
	req, _ := http.NewRequest(http.MethodGet, "http://eis.local/v1/health", nil)
	if _, err := tr.RoundTrip(req); err == nil {
		t.Fatal("round trip succeeded during blackout")
	}
	tr.Inj.Advance(10)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("round trip failed after blackout: %v", err)
	}
	resp.Body.Close()
}

func TestTransportLatencyUsesInjectedSleep(t *testing.T) {
	var slept []time.Duration
	tr := &Transport{
		Inner: &staticTripper{},
		Inj:   New(Config{Seed: 41, LatencyRate: 1, Latency: time.Hour}),
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	req, _ := http.NewRequest(http.MethodGet, "http://eis.local/v1/health", nil)
	for i := 0; i < 20; i++ {
		if resp, err := tr.RoundTrip(req); err == nil {
			resp.Body.Close()
		}
	}
	if len(slept) == 0 {
		t.Fatal("LatencyRate 1 never invoked the injected sleep")
	}
	for _, d := range slept {
		if d <= 0 || d >= time.Hour {
			t.Fatalf("injected sleep %v outside (0, 1h)", d)
		}
	}
}

func TestTransportNilInjectorPassesThrough(t *testing.T) {
	inner := &staticTripper{}
	tr := &Transport{Inner: inner}
	req, _ := http.NewRequest(http.MethodGet, "http://eis.local/v1/health", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("nil-injector transport failed: %v", err)
	}
	resp.Body.Close()
	if inner.calls != 1 {
		t.Fatalf("inner transport saw %d calls, want 1", inner.calls)
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("/v1/offering") == HashString("/v1/trip-offering") {
		t.Fatal("distinct endpoints hashed identically")
	}
	if HashString("") == HashString("x") {
		t.Fatal("empty and non-empty strings hashed identically")
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the flat shortest-path kernel's allocation discipline
// inside internal/roadnet (the derouting hot path; see DESIGN.md §8). Two
// shapes are flagged there:
//
//   - any map[NodeID]... type: per-search node maps are exactly what the
//     generation-stamped dense arrays replaced, and reintroducing one puts
//     a hash insert and its allocations back on every relaxed edge;
//   - importing container/heap: its interface-based Push/Pop box every
//     element, which the specialized slice heap exists to avoid.
//
// Cold paths (offline preprocessing, map-shaped convenience APIs) are
// legitimate exceptions: suppress with //ecolint:ignore hotalloc and a
// reason. Packages outside internal/roadnet are not checked.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags map[NodeID] types and container/heap imports in the roadnet hot path",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.ImportPath, "internal/roadnet") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if strings.Trim(n.Path.Value, `"`) == "container/heap" {
					pass.Reportf(n.Pos(), "container/heap boxes every element through interface{}; use the specialized slice heap (heap4) on the hot path")
				}
			case *ast.MapType:
				if isNodeIDKey(pass, n.Key) {
					pass.Reportf(n.Pos(), "map[NodeID] on the roadnet hot path; use the generation-stamped dense arrays (searchState) instead")
				}
			}
			return true
		})
	}
}

// isNodeIDKey reports whether the map key expression resolves to a named
// type called NodeID (type information preferred, syntax as fallback for
// files that fail to type-check fully).
func isNodeIDKey(pass *Pass, key ast.Expr) bool {
	if t := pass.TypeOf(key); t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj() != nil && named.Obj().Name() == "NodeID"
		}
	}
	switch k := key.(type) {
	case *ast.Ident:
		return k.Name == "NodeID"
	case *ast.SelectorExpr:
		return k.Sel != nil && k.Sel.Name == "NodeID"
	}
	return false
}

package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/stats"
	"ecocharge/internal/trajectory"
)

// RunConfig carries the evaluation parameters shared by all experiment
// series. Zero values select the paper's defaults.
type RunConfig struct {
	K          int     // chargers per Offering Table (default 3)
	RadiusM    float64 // R (default 50 km)
	ReuseDistM float64 // Q (default 5 km)
	// SegmentLenM is the continuous re-evaluation step: a query is issued
	// each time the vehicle advances this far (the paper updates results
	// at every segment intersection of the trip). Default 500 m.
	SegmentLenM float64
	Weights     cknn.Weights
	Repetitions int // measurement repetitions (paper: ~10; default 5)
	TripsPerRep int // trips sampled per repetition (default 8)
	// Workers bounds the pool running sweep cells (repetitions)
	// concurrently. Every repetition owns its RNG seed and its method
	// instances, so results are independent of scheduling; cells are folded
	// in repetition order so aggregates are bit-stable too. 0 selects
	// GOMAXPROCS; 1 runs cells sequentially. Per-query latency (F_t) is
	// measured inside a cell either way — methods evaluate on one core so
	// the figures stay comparable across worker counts.
	Workers int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.K <= 0 {
		c.K = 3
	}
	if c.RadiusM <= 0 {
		c.RadiusM = 50000
	}
	if c.ReuseDistM <= 0 {
		c.ReuseDistM = 5000
	}
	if c.SegmentLenM <= 0 {
		c.SegmentLenM = 500
	}
	if c.Weights == (cknn.Weights{}) {
		c.Weights = cknn.EqualWeights()
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 5
	}
	if c.TripsPerRep <= 0 {
		c.TripsPerRep = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// forEachCell runs fn(i) for every cell index in [0, n) on a pool of at
// most workers goroutines, stopping early — unstarted cells are skipped —
// once ctx is cancelled. It returns ctx.Err() when the run was cut short.
// fn must confine its writes to per-index state.
func forEachCell(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Measurement is one figure data point: a method on a dataset under one
// configuration.
type Measurement struct {
	Dataset string
	Method  string
	Config  string // e.g. "R=50km" for the sweeps; empty otherwise

	SCPercent stats.Summary // SC as % of brute force, per repetition
	FtMillis  stats.Summary // mean per-query CPU ms, per repetition

	Queries   int // total queries measured across repetitions
	CacheHits int // EcoCharge only
	CacheMiss int
	// Shares are the achieved objective contributions of the chosen
	// chargers (ablation study): fraction of the truth SC mass coming from
	// L, A and (1−D). Zero for non-ablation runs.
	Shares ObjectiveShares
}

// ObjectiveShares are the achieved per-objective contribution fractions,
// summing to 1 for ablation measurements.
type ObjectiveShares struct {
	L, A, D float64
}

// methodFactory builds a fresh method instance per repetition so per-trip
// state never leaks across repetitions.
type methodFactory struct {
	name  string
	build func(env *cknn.Env, cfg RunConfig, seed int64) cknn.Method
}

func allMethodFactories() []methodFactory {
	return []methodFactory{
		{"BruteForce", func(env *cknn.Env, _ RunConfig, _ int64) cknn.Method {
			return cknn.NewBruteForce(env)
		}},
		{"Index-Quadtree", func(env *cknn.Env, _ RunConfig, _ int64) cknn.Method {
			return cknn.NewIndexQuadtree(env)
		}},
		{"Random", func(env *cknn.Env, _ RunConfig, seed int64) cknn.Method {
			return cknn.NewRandom(env, seed)
		}},
		{"EcoCharge", func(env *cknn.Env, cfg RunConfig, _ int64) cknn.Method {
			return cknn.NewEcoCharge(env, cknn.EcoChargeOptions{
				RadiusM: cfg.RadiusM, ReuseDistM: cfg.ReuseDistM,
			})
		}},
	}
}

func ecoOnlyFactory() []methodFactory {
	fs := allMethodFactories()
	return []methodFactory{fs[0], fs[3]} // brute force (denominator) + EcoCharge
}

// repResult accumulates one repetition of one method.
type repResult struct {
	truthSum float64
	ftMillis []float64
	queries  int
}

// runOnce executes one repetition: the sampled trips are evaluated by every
// factory's method, per-query latency is measured around Rank only, and the
// chosen chargers of each method are scored against ground truth. It
// returns per-method results plus the brute-force truth sum (the SC%
// denominator). The first factory must be BruteForce.
func runOnce(sc *Scenario, cfg RunConfig, factories []methodFactory, rep int) (map[string]*repResult, map[string]cknn.Method) {
	rng := rand.New(rand.NewSource(sc.Seed*1000 + int64(rep)))
	trips := sampleTrips(rng, sc.Trips, cfg.TripsPerRep)
	opts := cknn.TripOptions{
		K: cfg.K, SegmentLenM: cfg.SegmentLenM, RadiusM: cfg.RadiusM, Weights: cfg.Weights,
	}
	engine := cknn.Engine{Env: sc.Env}

	methods := make(map[string]cknn.Method, len(factories))
	results := make(map[string]*repResult, len(factories))
	for _, f := range factories {
		methods[f.name] = f.build(sc.Env, cfg, sc.Seed*77+int64(rep))
		results[f.name] = &repResult{}
	}

	for _, trip := range trips {
		segs := trajectory.SegmentTrip(sc.Graph, trip, cfg.SegmentLenM)
		for _, m := range methods {
			m.Reset()
		}
		for _, seg := range segs {
			q := cknn.QueryForSegment(trip, seg, opts)
			picks := make(map[string][]int64, len(factories))
			for _, f := range factories {
				m := methods[f.name]
				start := time.Now()
				table := m.Rank(q)
				elapsed := time.Since(start)
				r := results[f.name]
				r.ftMillis = append(r.ftMillis, float64(elapsed)/float64(time.Millisecond))
				r.queries++
				picks[f.name] = table.IDs()
			}
			tm := engine.TruthMaps(q)
			for name, ids := range picks {
				r := results[name]
				for _, id := range ids {
					c, ok := sc.Env.Chargers.ByID(id)
					if !ok {
						continue
					}
					if v, ok := engine.TruthSC(q, tm, c); ok {
						r.truthSum += v
					}
				}
			}
		}
	}
	return results, methods
}

func sampleTrips(rng *rand.Rand, trips []trajectory.Trip, n int) []trajectory.Trip {
	if n >= len(trips) {
		return trips
	}
	perm := rng.Perm(len(trips))
	out := make([]trajectory.Trip, n)
	for i := 0; i < n; i++ {
		out[i] = trips[perm[i]]
	}
	return out
}

// RunPerformance executes the Fig. 6 series on one scenario: the four
// methods under the default configuration.
func RunPerformance(ctx context.Context, sc *Scenario, cfg RunConfig) ([]Measurement, error) {
	return runSeries(ctx, sc, cfg, allMethodFactories(), "")
}

// runSeries runs repetitions of the factories on the scenario, aggregating
// SC% (vs the BruteForce factory, which must be present) and F_t.
// Repetitions are the sweep cells: they run concurrently on the config's
// worker pool and are folded in repetition order, so the aggregates do not
// depend on scheduling.
func runSeries(ctx context.Context, sc *Scenario, cfg RunConfig, factories []methodFactory, label string) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if len(sc.Trips) == 0 {
		return nil, fmt.Errorf("experiment: scenario %s has no trips", sc.Name)
	}
	if factories[0].name != "BruteForce" {
		return nil, fmt.Errorf("experiment: first factory must be BruteForce (got %s)", factories[0].name)
	}
	type repOut struct {
		results map[string]*repResult
		methods map[string]cknn.Method
	}
	outs := make([]repOut, cfg.Repetitions)
	err := forEachCell(ctx, cfg.Repetitions, cfg.Workers, func(rep int) {
		results, methods := runOnce(sc, cfg, factories, rep)
		outs[rep] = repOut{results: results, methods: methods}
	})
	if err != nil {
		return nil, err
	}

	scPct := make(map[string][]float64)
	ft := make(map[string][]float64)
	queries := make(map[string]int)
	hits := make(map[string]int)
	misses := make(map[string]int)
	for _, o := range outs {
		denom := o.results["BruteForce"].truthSum
		for name, r := range o.results {
			if denom > 0 {
				scPct[name] = append(scPct[name], r.truthSum/denom*100)
			}
			ft[name] = append(ft[name], stats.Mean(r.ftMillis))
			queries[name] += r.queries
		}
		for name, m := range o.methods {
			if eco, ok := m.(*cknn.EcoCharge); ok {
				h, ms := eco.Stats()
				hits[name] += h
				misses[name] += ms
			}
		}
	}

	out := make([]Measurement, 0, len(factories))
	for _, f := range factories {
		out = append(out, Measurement{
			Dataset:   sc.Name,
			Method:    f.name,
			Config:    label,
			SCPercent: stats.Summarize(scPct[f.name]),
			FtMillis:  stats.Summarize(ft[f.name]),
			Queries:   queries[f.name],
			CacheHits: hits[f.name],
			CacheMiss: misses[f.name],
		})
	}
	return out, nil
}

// RunROpt executes the Fig. 7 series: EcoCharge under R ∈ radiiKM (paper:
// 25, 50, 75 km), reporting SC% against the same brute-force optimum.
func RunROpt(ctx context.Context, sc *Scenario, cfg RunConfig, radiiKM []float64) ([]Measurement, error) {
	if len(radiiKM) == 0 {
		radiiKM = []float64{25, 50, 75}
	}
	var out []Measurement
	for _, r := range radiiKM {
		c := cfg
		c.RadiusM = r * 1000
		ms, err := runSeries(ctx, sc, c, ecoOnlyFactory(), fmt.Sprintf("R=%.0fkm", r))
		if err != nil {
			return nil, err
		}
		// Keep only the EcoCharge rows; brute force is the denominator.
		for _, m := range ms {
			if m.Method == "EcoCharge" {
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// RunQOpt executes the Fig. 8 series: EcoCharge under Q ∈ qKM (paper: 5,
// 10, 15 km).
func RunQOpt(ctx context.Context, sc *Scenario, cfg RunConfig, qKM []float64) ([]Measurement, error) {
	if len(qKM) == 0 {
		qKM = []float64{5, 10, 15}
	}
	var out []Measurement
	for _, qv := range qKM {
		c := cfg
		c.ReuseDistM = qv * 1000
		ms, err := runSeries(ctx, sc, c, ecoOnlyFactory(), fmt.Sprintf("Q=%.0fkm", qv))
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if m.Method == "EcoCharge" {
				out = append(out, m)
			}
		}
	}
	return out, nil
}

package wire

import (
	"time"

	"ecocharge/internal/interval"
)

// This file holds the wire types of the EIS API. They moved here from
// internal/eis so the binary codec below them and the fleet gateway's merge
// can share one definition without an import cycle; internal/eis aliases
// them back (eis.OfferingResponse = wire.OfferingResponse), so the HTTP
// surface and every existing caller are unchanged. The JSON tags are the
// canonical wire contract; the binary codec encodes exactly these structs.

// IntervalJSON is the wire form of an interval estimate.
type IntervalJSON struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// ToWire converts an interval estimate to its wire form.
func ToWire(i interval.I) IntervalJSON { return IntervalJSON{Min: i.Min, Max: i.Max} }

// Interval converts the wire form back to an interval estimate.
func (i IntervalJSON) Interval() interval.I { return interval.FromBounds(i.Min, i.Max) }

// WeightsJSON is the wire form of the SC weights.
type WeightsJSON struct {
	L float64 `json:"l"`
	A float64 `json:"a"`
	D float64 `json:"d"`
}

// OfferingRequest asks the EIS for an Offering Table (Mode 2).
type OfferingRequest struct {
	Lat     float64     `json:"lat"`
	Lon     float64     `json:"lon"`
	K       int         `json:"k"`
	RadiusM float64     `json:"radius_m"`
	Weights WeightsJSON `json:"weights"`
	// Now is when the estimate is issued; zero means server time.
	Now time.Time `json:"now"`
	// ETA is the arrival time at the query point; zero means Now.
	ETA time.Time `json:"eta"`
}

// OfferingEntry is one ranked charger of the response.
type OfferingEntry struct {
	ChargerID int64        `json:"charger_id"`
	Lat       float64      `json:"lat"`
	Lon       float64      `json:"lon"`
	RateKW    float64      `json:"rate_kw"`
	SC        IntervalJSON `json:"sc"`
	L         IntervalJSON `json:"l"`
	A         IntervalJSON `json:"a"`
	D         IntervalJSON `json:"d"`
	ETA       time.Time    `json:"eta"`
	// Degraded is the cknn.Degraded bitmask of the entry: bit 0 = L,
	// bit 1 = A, bit 2 = D. A set bit means that component's backing source
	// failed and the interval above is the [0,1] ignorance bound, not an
	// estimate. Omitted (0) when every component was estimated.
	Degraded uint8 `json:"degraded,omitempty"`
}

// OfferingResponse is the Mode 2 result.
type OfferingResponse struct {
	Entries     []OfferingEntry `json:"entries"`
	GeneratedAt time.Time       `json:"generated_at"`
	Cached      bool            `json:"cached"` // served from the server-side dynamic cache
}

// WeatherResponse reports the production forecast of one charger site.
type WeatherResponse struct {
	ChargerID    int64        `json:"charger_id"`
	At           time.Time    `json:"at"`
	ProductionKW IntervalJSON `json:"production_kw"`
}

// AvailabilityResponse reports the availability estimate of one charger.
type AvailabilityResponse struct {
	ChargerID    int64        `json:"charger_id"`
	At           time.Time    `json:"at"`
	Availability IntervalJSON `json:"availability"`
}

// TrafficResponse reports the congestion multiplier band per road class.
// It stays JSON-only on the wire: the map-shaped body is tiny, fleet-global,
// and nowhere near the fan-out hot path.
type TrafficResponse struct {
	At time.Time `json:"at"`
	//ecolint:ignore hotalloc JSON-only response type: traffic never travels binary, the map is the endpoint's contract
	Multiplier map[string]IntervalJSON `json:"multiplier"`
}

// ErrorResponse is the JSON body of non-2xx responses. Errors are always
// JSON, even when the request negotiated binary: failure bodies are cold
// and must stay curl-readable.
type ErrorResponse struct {
	Error string `json:"error"`
}

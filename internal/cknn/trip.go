package cknn

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/trajectory"
)

// TripOptions configure a continuous evaluation over a scheduled trip.
type TripOptions struct {
	// K chargers per Offering Table. 0 selects 3.
	K int
	// SegmentLenM is the trip partition length (paper: ≈3–5 km). 0
	// selects 4 km.
	SegmentLenM float64
	// RadiusM is the search radius R. 0 selects 50 km.
	RadiusM float64
	// Weights of the SC objectives; zero value selects equal weights.
	Weights Weights
	// Workers bounds the evaluation's worker pool. 0 selects GOMAXPROCS;
	// 1 selects the fully sequential path (the testing oracle). Output is
	// identical for every value: stateless methods fan out per segment with
	// index-stable result placement, order-dependent methods keep the
	// sequential segment walk and fan out inside the filtering phase.
	Workers int
}

func (o TripOptions) withDefaults() TripOptions {
	if o.K <= 0 {
		o.K = 3
	}
	if o.SegmentLenM <= 0 {
		o.SegmentLenM = 4000
	}
	if o.RadiusM <= 0 {
		o.RadiusM = 50000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// SegmentResult pairs a trip segment with its Offering Table.
type SegmentResult struct {
	Segment trajectory.Segment
	Table   OfferingTable
}

// QueryForSegment builds the CkNN-EC query of one trip segment: the anchor
// is the segment's representative point, the return node is the segment's
// end (the vehicle rejoins its route there after a charging detour), and
// all forecasts are issued at the trip's departure — so estimate horizons
// grow along the trip, exactly the regime that makes the components
// "estimated".
func QueryForSegment(trip trajectory.Trip, seg trajectory.Segment, opts TripOptions) Query {
	opts = opts.withDefaults()
	end := seg.Nodes[len(seg.Nodes)-1]
	return Query{
		Anchor:     seg.Anchor,
		AnchorNode: seg.AnchorNode,
		ReturnNode: end,
		Now:        trip.Depart,
		ETABase:    seg.ETA,
		K:          opts.K,
		RadiusM:    opts.RadiusM,
		Weights:    opts.Weights,
	}
}

// RunTrip evaluates the method over every segment of the trip (the
// continuous CkNN-EC evaluation of §III.A), resetting the method's per-trip
// state first. The i-th result corresponds to segment i.
//
// With Workers > 1 the evaluation is concurrent: methods marked
// ConcurrentRanker (stateless ones) build segment tables in parallel, with
// each worker writing result i into slot i so the output order is the
// travel order regardless of scheduling; other methods walk segments
// sequentially — the EcoCharge cache chain and the Random stream are
// order-dependent — and parallelize per-charger evaluation inside the
// filtering phase instead. Both regimes produce byte-identical results to
// Workers=1, which the differential equivalence suite enforces.
func RunTrip(env *Env, method Method, trip trajectory.Trip, opts TripOptions) []SegmentResult {
	opts = opts.withDefaults()
	method.Reset()
	segs := trajectory.SegmentTrip(env.Graph, trip, opts.SegmentLenM)
	out := make([]SegmentResult, len(segs))
	if _, ok := method.(ConcurrentRanker); ok && opts.Workers > 1 && len(segs) > 1 {
		// Per-segment fan-out saturates the pool on its own; keep each
		// Rank call sequential inside so the total stays bounded.
		if wc, ok := method.(WorkersConfigurable); ok {
			wc.SetWorkers(1)
		}
		workers := opts.Workers
		if workers > len(segs) {
			workers = len(segs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(segs) {
						return
					}
					q := QueryForSegment(trip, segs[i], opts)
					out[i] = SegmentResult{Segment: segs[i], Table: method.Rank(q)}
				}
			}()
		}
		wg.Wait()
		return out
	}
	if wc, ok := method.(WorkersConfigurable); ok {
		wc.SetWorkers(opts.Workers)
	}
	for i, seg := range segs {
		q := QueryForSegment(trip, seg, opts)
		out[i] = SegmentResult{Segment: seg, Table: method.Rank(q)}
	}
	return out
}

// SplitPoint marks a position on the trip where the kNN result set changes:
// from this point until the next split point, NN is the valid charger set
// (the SL structure of Tao et al. that the paper builds on).
type SplitPoint struct {
	P            geo.Point
	SegmentIndex int
	ETA          time.Time
	NN           []int64 // ranked charger IDs valid from this point on
}

// SplitList computes the split points of a trip under the method: it walks
// the per-segment Offering Tables and records every point where the ranked
// top-k set differs from the previous segment's. The first split point is
// the trip start. Between recorded points the result set is constant at
// segment granularity (the paper's SL is maintained per processed split).
func SplitList(env *Env, method Method, trip trajectory.Trip, opts TripOptions) []SplitPoint {
	results := RunTrip(env, method, trip, opts)
	var out []SplitPoint
	var prev []int64
	for _, r := range results {
		ids := r.Table.IDs()
		if len(out) == 0 || !sameIDs(prev, ids) {
			out = append(out, SplitPoint{
				P:            r.Segment.Start,
				SegmentIndex: r.Segment.Index,
				ETA:          r.Segment.ETA,
				NN:           ids,
			})
			prev = ids
		}
	}
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

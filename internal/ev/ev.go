// Package ev models the electric vehicle side of the framework: battery
// state of charge, the CC-CV charging curve that couples accepted power to
// SoC, charging-session integration against a time-varying (solar-limited)
// supply, and trip energy consumption over the road network. The paper's
// system model assigns vehicles charger-class limits ("a user with an
// 11 kW AC charger car", Fig. 3) and energy edge weights (§II.A); this
// package supplies those quantities.
package ev

import (
	"fmt"
	"math"
	"time"

	"ecocharge/internal/roadnet"
)

// Battery is a traction battery with its usable capacity and state of
// charge.
type Battery struct {
	CapacityKWh float64
	SoC         float64 // state of charge in [0, 1]
}

// EnergyKWh returns the stored energy.
func (b Battery) EnergyKWh() float64 { return b.CapacityKWh * b.SoC }

// Valid reports whether the battery parameters are physically meaningful.
func (b Battery) Valid() bool {
	return b.CapacityKWh > 0 && b.SoC >= 0 && b.SoC <= 1 &&
		!math.IsNaN(b.CapacityKWh) && !math.IsNaN(b.SoC)
}

// Vehicle is an EV with its charging limits and consumption profile.
type Vehicle struct {
	Battery
	// MaxACkW and MaxDCkW cap the power the on-board charger (AC) and the
	// battery (DC) accept.
	MaxACkW float64
	MaxDCkW float64
	// BaseConsumption is the flat consumption in kWh/km at urban speed;
	// class-dependent factors scale it (drag grows with speed).
	BaseConsumption float64
	// AuxKW is the constant auxiliary load (HVAC, electronics) applied
	// over driving time.
	AuxKW float64
}

// CompactEV returns a typical compact EV: 58 kWh pack, 11 kW AC / 150 kW
// DC, 0.155 kWh/km base consumption.
func CompactEV() Vehicle {
	return Vehicle{
		Battery:         Battery{CapacityKWh: 58, SoC: 0.5},
		MaxACkW:         11,
		MaxDCkW:         150,
		BaseConsumption: 0.155,
		AuxKW:           0.5,
	}
}

// Validate reports the first configuration error, or nil.
func (v Vehicle) Validate() error {
	if !v.Battery.Valid() {
		return fmt.Errorf("ev: invalid battery %+v", v.Battery)
	}
	if v.MaxACkW <= 0 || v.MaxDCkW <= 0 {
		return fmt.Errorf("ev: non-positive charging limits AC=%v DC=%v", v.MaxACkW, v.MaxDCkW)
	}
	if v.BaseConsumption <= 0 {
		return fmt.Errorf("ev: non-positive consumption %v", v.BaseConsumption)
	}
	if v.AuxKW < 0 {
		return fmt.Errorf("ev: negative auxiliary load %v", v.AuxKW)
	}
	return nil
}

// cvKnee is the SoC where constant-current charging ends and the
// constant-voltage taper begins.
const cvKnee = 0.80

// taperFloor is the relative power accepted as SoC approaches 1.
const taperFloor = 0.05

// AcceptedKW returns the power the vehicle draws when offered offeredKW at
// the given SoC over a DC (dc=true) or AC connection: the offer is capped
// by the connection limit, then tapered above the CV knee.
func (v Vehicle) AcceptedKW(offeredKW float64, dc bool, soc float64) float64 {
	if offeredKW <= 0 || soc >= 1 {
		return 0
	}
	limit := v.MaxACkW
	if dc {
		limit = v.MaxDCkW
	}
	p := math.Min(offeredKW, limit)
	if soc <= cvKnee {
		return p
	}
	// Linear taper from 1.0 at the knee to taperFloor at SoC 1.
	frac := 1 - (soc-cvKnee)/(1-cvKnee)*(1-taperFloor)
	return p * frac
}

// Charge integrates a charging session from `from` for `dur` against a
// time-varying supply (e.g. solar-limited production), advancing the SoC
// in 1-minute steps. It returns the energy gained. The supply function
// receives absolute time; dc selects the connection type.
func (v *Vehicle) Charge(supplyKW func(time.Time) float64, dc bool, from time.Time, dur time.Duration) (gainedKWh float64) {
	if dur <= 0 {
		return 0
	}
	const step = time.Minute
	for t := from; t.Before(from.Add(dur)); t = t.Add(step) {
		p := v.AcceptedKW(supplyKW(t), dc, v.SoC)
		if p <= 0 {
			continue
		}
		dE := p * step.Hours()
		room := v.CapacityKWh * (1 - v.SoC)
		if dE > room {
			dE = room
		}
		v.SoC += dE / v.CapacityKWh
		gainedKWh += dE
		if v.SoC >= 1 {
			v.SoC = 1
			break
		}
	}
	return gainedKWh
}

// TimeToSoC estimates how long charging at a constant offered power takes
// to reach targetSoC, integrating the taper in 1-minute steps. It returns
// false when the target is unreachable (zero accepted power).
func (v Vehicle) TimeToSoC(targetSoC, offeredKW float64, dc bool) (time.Duration, bool) {
	if targetSoC <= v.SoC {
		return 0, true
	}
	if targetSoC > 1 {
		targetSoC = 1
	}
	soc := v.SoC
	const step = time.Minute
	var elapsed time.Duration
	// Bound the loop: even a trickle charge finishes a pack within a week.
	for elapsed < 7*24*time.Hour {
		p := v.AcceptedKW(offeredKW, dc, soc)
		if p <= 0 {
			return 0, false
		}
		soc += p * step.Hours() / v.CapacityKWh
		elapsed += step
		if soc >= targetSoC {
			return elapsed, true
		}
	}
	return 0, false
}

// classFactor scales consumption per road class (drag at speed).
func classFactor(c roadnet.RoadClass) float64 {
	switch c {
	case roadnet.ClassLocal:
		return 1.0
	case roadnet.ClassArterial:
		return 0.95 // steady flow beats stop-and-go
	case roadnet.ClassHighway:
		return 1.10
	case roadnet.ClassMotorway:
		return 1.30
	}
	return 1.0
}

// TripEnergyKWh returns the traction + auxiliary energy of driving the
// path at free-flow speeds.
func (v Vehicle) TripEnergyKWh(g *roadnet.Graph, path roadnet.Path) float64 {
	var traction, seconds float64
	for i := 1; i < len(path.Nodes); i++ {
		prev, next := path.Nodes[i-1], path.Nodes[i]
		found := false
		g.OutEdges(prev, func(e roadnet.Edge) {
			if e.To == next && !found {
				traction += e.Length / 1000 * v.BaseConsumption * classFactor(e.Class)
				seconds += e.Length / e.Class.FreeFlowSpeed()
				found = true
			}
		})
	}
	return traction + v.AuxKW*seconds/3600
}

// RangeKM estimates the remaining urban range.
func (v Vehicle) RangeKM() float64 {
	if v.BaseConsumption <= 0 {
		return 0
	}
	return v.EnergyKWh() / v.BaseConsumption
}

// CanReach reports whether the vehicle's current charge covers the path
// with the given reserve fraction kept (e.g. 0.1 keeps 10 % SoC).
func (v Vehicle) CanReach(g *roadnet.Graph, path roadnet.Path, reserve float64) bool {
	if reserve < 0 {
		reserve = 0
	}
	need := v.TripEnergyKWh(g, path) + v.CapacityKWh*reserve
	return v.EnergyKWh() >= need
}

package roadnet

import (
	"container/heap"
	"math"

	"ecocharge/internal/geo"
)

// spItem is a priority-queue element for Dijkstra/A*.
type spItem struct {
	node NodeID
	prio float64 // dist (Dijkstra) or dist+heuristic (A*)
}

type spHeap []spItem

func (h spHeap) Len() int            { return len(h) }
func (h spHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(spItem)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ShortestPath runs Dijkstra from src to dst under the weight function.
// It returns the path and true, or a zero path and false when dst is
// unreachable. Negative weights are a caller bug and panic.
func (g *Graph) ShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	dist, prev := g.dijkstra(src, dst, w, math.Inf(1))
	d, ok := dist[dst]
	if !ok {
		return Path{}, false
	}
	return Path{Nodes: reconstruct(prev, src, dst), Weight: d}, true
}

// ShortestDistance returns only the weight of the shortest src→dst path,
// or +Inf when unreachable. It avoids path reconstruction.
func (g *Graph) ShortestDistance(src, dst NodeID, w WeightFunc) float64 {
	dist, _ := g.dijkstra(src, dst, w, math.Inf(1))
	if d, ok := dist[dst]; ok {
		return d
	}
	return math.Inf(1)
}

// DistancesWithin runs a bounded Dijkstra from src, returning the weight of
// every node reachable within maxWeight. This is the network-expansion
// primitive of the derouting-cost component: one expansion prices all
// candidate chargers around the vehicle.
func (g *Graph) DistancesWithin(src NodeID, w WeightFunc, maxWeight float64) map[NodeID]float64 {
	dist, _ := g.dijkstra(src, Invalid, w, maxWeight)
	return dist
}

// DistancesTo runs a bounded Dijkstra on the reverse graph, yielding the
// weight of reaching dst from every node within maxWeight. Used for the
// return-to-route leg of the derouting cost.
func (g *Graph) DistancesTo(dst NodeID, w WeightFunc, maxWeight float64) map[NodeID]float64 {
	g.mustFrozen()
	if !g.validID(dst) {
		return nil
	}
	dist := map[NodeID]float64{dst: 0}
	done := make(map[NodeID]bool)
	pq := &spHeap{{node: dst, prio: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(spItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		for _, ei := range g.radj[cur.node] {
			e := g.edges[ei]
			wt := w(e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := dist[cur.node] + wt
			if nd > maxWeight {
				continue
			}
			if old, ok := dist[e.From]; !ok || nd < old {
				dist[e.From] = nd
				heap.Push(pq, spItem{node: e.From, prio: nd})
			}
		}
	}
	return dist
}

// dijkstra is the shared forward search. When dst is valid the search stops
// as soon as dst settles; when maxWeight is finite nodes beyond the bound
// are not expanded.
func (g *Graph) dijkstra(src, dst NodeID, w WeightFunc, maxWeight float64) (map[NodeID]float64, map[NodeID]NodeID) {
	g.mustFrozen()
	if !g.validID(src) {
		return nil, nil
	}
	dist := map[NodeID]float64{src: 0}
	prev := make(map[NodeID]NodeID)
	done := make(map[NodeID]bool)
	pq := &spHeap{{node: src, prio: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(spItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			break
		}
		for _, ei := range g.adj[cur.node] {
			e := g.edges[ei]
			wt := w(e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := dist[cur.node] + wt
			if nd > maxWeight {
				continue
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur.node
				heap.Push(pq, spItem{node: e.To, prio: nd})
			}
		}
	}
	return dist, prev
}

// AStar runs A* from src to dst under the weight function, using a
// haversine-based admissible heuristic scaled by heuristicSpeedup. For the
// distance metric pass 1.0; for time metrics pass the inverse of the
// maximum speed so the heuristic stays admissible.
func (g *Graph) AStar(src, dst NodeID, w WeightFunc, heuristicScale float64) (Path, bool) {
	g.mustFrozen()
	if !g.validID(src) || !g.validID(dst) {
		return Path{}, false
	}
	target := g.nodes[dst].P
	h := func(id NodeID) float64 {
		return geo.Distance(g.nodes[id].P, target) * heuristicScale
	}
	dist := map[NodeID]float64{src: 0}
	prev := make(map[NodeID]NodeID)
	done := make(map[NodeID]bool)
	pq := &spHeap{{node: src, prio: h(src)}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(spItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			return Path{Nodes: reconstruct(prev, src, dst), Weight: dist[dst]}, true
		}
		for _, ei := range g.adj[cur.node] {
			e := g.edges[ei]
			wt := w(e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := dist[cur.node] + wt
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur.node
				heap.Push(pq, spItem{node: e.To, prio: nd + h(e.To)})
			}
		}
	}
	return Path{}, false
}

func reconstruct(prev map[NodeID]NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		p, ok := prev[at]
		if !ok {
			return nil // should not happen when dist[dst] exists
		}
		at = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Package fixture exercises the libprint analyzer. The test harness loads
// it under an internal/ import path, where printing is banned.
package fixture

import (
	"fmt"
	"log"
)

// Bad prints from library code: all four flagged.
func Bad(x int) {
	fmt.Println("debug:", x)
	fmt.Printf("x=%d\n", x)
	log.Printf("x=%d", x)
	log.Fatalln("giving up from library depth")
}

// Good formats into a value and lets the caller decide where it goes.
func Good(x int) string {
	return fmt.Sprintf("x=%d", x)
}

// Suppressed shows the escape hatch.
func Suppressed() {
	//ecolint:ignore libprint fixture for the suppression story
	fmt.Println("tolerated")
}

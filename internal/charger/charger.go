// Package charger models the EV charging points B of the paper: their
// location on the road network, AC/DC rate class, attached renewable
// capacity, and busy timetable. It also generates the synthetic
// PlugShare-style inventory and the CDGS-style 15-minute solar production
// series the evaluation consumes (see DESIGN.md substitution table).
package charger

import (
	"fmt"
	"math/rand"
	"time"

	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/spatial"
)

// RateClass is the charger's electrical rate category.
type RateClass uint8

// Common public-charging rate classes.
const (
	RateAC37  RateClass = iota // 3.7 kW single-phase AC
	RateAC11                   // 11 kW three-phase AC
	RateAC22                   // 22 kW three-phase AC
	RateDC50                   // 50 kW DC
	RateDC150                  // 150 kW DC fast
	numRateClasses
)

// KW returns the nominal rate in kilowatts.
func (r RateClass) KW() float64 {
	switch r {
	case RateAC37:
		return 3.7
	case RateAC11:
		return 11
	case RateAC22:
		return 22
	case RateDC50:
		return 50
	case RateDC150:
		return 150
	}
	return 11
}

// String implements fmt.Stringer.
func (r RateClass) String() string {
	switch r {
	case RateAC37:
		return "AC 3.7kW"
	case RateAC11:
		return "AC 11kW"
	case RateAC22:
		return "AC 22kW"
	case RateDC50:
		return "DC 50kW"
	case RateDC150:
		return "DC 150kW"
	}
	return fmt.Sprintf("rate(%d)", uint8(r))
}

// Charger is one EV charging point b ∈ B.
type Charger struct {
	ID        int64
	P         geo.Point
	Node      roadnet.NodeID // nearest road-network node
	Rate      RateClass
	PanelKW   float64 // attached (or net-metered) solar capacity
	WindKW    float64 // attached (or net-metered) wind nameplate capacity
	Plugs     int     // number of plugs at the site
	Timetable ec.Timetable
}

// Site converts the charger to the solar model's site descriptor.
func (c *Charger) Site() ec.Site {
	return ec.Site{ID: c.ID, P: c.P, CapacityKW: c.PanelKW}
}

// WindSite converts the charger to the wind model's site descriptor.
func (c *Charger) WindSite() ec.Site {
	return ec.Site{ID: c.ID, P: c.P, CapacityKW: c.WindKW}
}

// RESKW is the total renewable nameplate capacity at the site.
func (c *Charger) RESKW() float64 { return c.PanelKW + c.WindKW }

// Set is an immutable collection of chargers with a spatial index. Build it
// with NewSet; queries are safe for concurrent use.
type Set struct {
	chargers []Charger
	byID     map[int64]int
	index    *spatial.Quadtree
	maxPanel float64
}

// NewSet indexes the given chargers. Charger IDs must be unique; duplicate
// IDs return an error because downstream ranking keys on them.
func NewSet(chargers []Charger) (*Set, error) {
	s := &Set{
		chargers: append([]Charger(nil), chargers...),
		byID:     make(map[int64]int, len(chargers)),
	}
	if len(chargers) > 0 {
		pts := make([]geo.Point, len(chargers))
		for i, c := range chargers {
			pts[i] = c.P
		}
		s.index = spatial.NewQuadtree(geo.NewBBox(pts...), 0)
	}
	for i, c := range s.chargers {
		if _, dup := s.byID[c.ID]; dup {
			return nil, fmt.Errorf("charger: duplicate ID %d", c.ID)
		}
		s.byID[c.ID] = i
		s.index.Insert(spatial.Item{P: c.P, ID: c.ID})
		if res := c.RESKW(); res > s.maxPanel {
			s.maxPanel = res
		}
	}
	return s, nil
}

// Len reports |B|.
func (s *Set) Len() int { return len(s.chargers) }

// All returns the underlying slice; callers must not mutate it.
func (s *Set) All() []Charger { return s.chargers }

// ByID returns the charger with the given ID.
func (s *Set) ByID(id int64) (*Charger, bool) {
	i, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return &s.chargers[i], true
}

// Within returns chargers within radius meters of p, closest first.
func (s *Set) Within(p geo.Point, radius float64) []*Charger {
	if s.index == nil {
		return nil
	}
	ns := s.index.Within(p, radius)
	out := make([]*Charger, len(ns))
	for i, n := range ns {
		out[i] = &s.chargers[s.byID[n.ID]]
	}
	return out
}

// KNearest returns the k chargers nearest to p by geodesic distance.
func (s *Set) KNearest(p geo.Point, k int) []*Charger {
	if s.index == nil {
		return nil
	}
	ns := s.index.KNN(p, k)
	out := make([]*Charger, len(ns))
	for i, n := range ns {
		out[i] = &s.chargers[s.byID[n.ID]]
	}
	return out
}

// MaxRESKW is the environment's maximum renewable capacity at a single
// site (solar + wind), one normalizer candidate for the L component.
func (s *Set) MaxRESKW() float64 { return s.maxPanel }

// GenConfig parameterizes the synthetic charger inventory generator.
type GenConfig struct {
	N    int   // number of chargers
	Seed int64 // placement and sizing seed
	// ClusterFrac of chargers are placed in POI clusters; the rest
	// uniformly over the network. Default 0.5.
	ClusterFrac float64
	// Clusters is the number of POI clusters. Default 8.
	Clusters int
}

// Generate places N chargers on nodes of the road network, assigns rate
// classes with a realistic mix, solar capacities, plug counts and busy
// timetables, and returns the indexed set.
func Generate(g *roadnet.Graph, avail *ec.AvailabilityModel, cfg GenConfig) (*Set, error) {
	if cfg.N <= 0 {
		return NewSet(nil)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("charger: cannot generate on empty graph")
	}
	if cfg.ClusterFrac < 0 || cfg.ClusterFrac > 1 {
		cfg.ClusterFrac = 0.5
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]roadnet.NodeID, cfg.Clusters)
	for i := range centers {
		centers[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
	}
	bounds := g.Bounds()
	clusterRadius := bounds.WidthMeters() * 0.05

	chargers := make([]Charger, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var node roadnet.NodeID
		clustered := rng.Float64() < cfg.ClusterFrac
		if clustered {
			center := centers[rng.Intn(len(centers))]
			near := g.NodesWithin(g.Node(center).P, clusterRadius)
			if len(near) > 0 {
				node = near[rng.Intn(len(near))]
			} else {
				node = center
			}
		} else {
			node = roadnet.NodeID(rng.Intn(g.NumNodes()))
		}
		rate := pickRate(rng)
		c := Charger{
			ID:      int64(i + 1),
			P:       g.Node(node).P,
			Node:    node,
			Rate:    rate,
			PanelKW: pickPanel(rng, rate, clustered),
			Plugs:   1 + rng.Intn(4),
		}
		// A minority of standalone sites are net-metered against wind
		// turbines instead of (or in addition to) solar.
		if !clustered && rng.Float64() < 0.12 {
			c.WindKW = float64(int(rate.KW()*(0.5+rng.Float64())*10)) / 10
		}
		c.Timetable = avail.GenerateTimetable(c.ID)
		chargers = append(chargers, c)
	}
	return NewSet(chargers)
}

// pickRate draws a rate class with a public-infrastructure-like mix:
// mostly 11/22 kW AC, some DC.
func pickRate(rng *rand.Rand) RateClass {
	v := rng.Float64()
	switch {
	case v < 0.10:
		return RateAC37
	case v < 0.45:
		return RateAC11
	case v < 0.80:
		return RateAC22
	case v < 0.95:
		return RateDC50
	default:
		return RateDC150
	}
}

// pickPanel sizes the attached solar array. Dense POI-cluster sites carry
// small rooftop arrays (urban land is scarce), while standalone sites host
// the large carport/farm installations — so the highest sustainable
// charging levels are usually *not* at the geometrically nearest downtown
// chargers, which is precisely what separates CkNN-EC from distance-only
// retrieval. A site is occasionally grid-only (zero panels).
func pickPanel(rng *rand.Rand, rate RateClass, clustered bool) float64 {
	if rng.Float64() < 0.15 {
		return 0 // no renewables at this site
	}
	var base float64
	if clustered {
		base = rate.KW() * (0.15 + rng.Float64()*0.45)
	} else {
		base = rate.KW() * (0.75 + rng.Float64()*1.0)
	}
	return float64(int(base*10)) / 10
}

// ProductionSample is one CDGS-style record: production of a site in a
// 15-minute interval.
type ProductionSample struct {
	ChargerID int64
	Start     time.Time
	KW        float64 // average power over the interval
}

// ProductionSeries generates the 15-minute production series for the
// charger between from and to using the solar model, the synthetic
// equivalent of the California Distributed Generation Statistics feed.
func ProductionSeries(m *ec.SolarModel, c *Charger, from, to time.Time) []ProductionSample {
	if !from.Before(to) {
		return nil
	}
	site := c.Site()
	var out []ProductionSample
	for t := from; t.Before(to); t = t.Add(15 * time.Minute) {
		out = append(out, ProductionSample{
			ChargerID: c.ID,
			Start:     t,
			KW:        m.Truth(site, t.Add(7*time.Minute+30*time.Second)),
		})
	}
	return out
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load expands the go-list patterns (e.g. "./...") in dir, type-checks
// every matched non-test package against compiler export data and returns
// them ready for analysis. It shells out to the go command only for
// metadata and export files; all parsing and type checking happens in
// process with the standard library. Optional build tags are forwarded to
// the go command, so tag-gated files get linted under the same constraints
// they build under.
func Load(dir string, patterns []string, tags ...string) ([]*Package, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}
	if len(tags) > 0 {
		args = append(args, "-tags="+strings.Join(tags, ","))
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := checkFiles(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses every non-test .go file directly inside dir as a single
// package with the given import path and type-checks it against export
// data for its imports. It exists for fixture packages under testdata/,
// which the go tool refuses to list.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// Parse once to learn the fixture's imports, then ask the go command
	// for export data covering exactly that dependency closure.
	fset := token.NewFileSet()
	var syntax []*ast.File
	imports := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
		for _, spec := range af.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := []string{"list", "-export", "-deps", "-json=ImportPath,Export,Error", "--"}
		for p := range imports {
			args = append(args, p)
		}
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list (fixture deps): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(&stdout)
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return checkSyntax(fset, importPath, syntax, exportImporter(fset, exports))
}

// exportImporter returns a types.Importer that reads gc export data from
// the files recorded by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkFiles parses and type-checks the named files as one package.
func checkFiles(fset *token.FileSet, importPath string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	return checkSyntax(fset, importPath, syntax, imp)
}

func checkSyntax(fset *token.FileSet, importPath string, syntax []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

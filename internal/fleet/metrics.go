package fleet

import "ecocharge/internal/obs"

// fleetMetrics bundles the gateway's instrumentation, resolved once at
// package init (the register-cold/update-hot contract of internal/obs).
type fleetMetrics struct {
	// Per-endpoint gateway request duration histograms, measured around the
	// whole fan-out including the merge.
	httpChargers *obs.Histogram
	httpWeather  *obs.Histogram
	httpAvail    *obs.Histogram
	httpTraffic  *obs.Histogram
	httpOffering *obs.Histogram
	httpTrip     *obs.Histogram

	// Shard exchanges: every primary or hedged attempt against a shard.
	shardRequests *obs.Counter
	shardFailures *obs.Counter

	// Hedging: hedges fired (replica engaged after the hedge delay) and
	// hedge wins (the replica answered first or the primary had failed).
	hedgesFired *obs.Counter
	hedgeWins   *obs.Counter

	// Probing and membership.
	probes          *obs.Counter
	probeFailures   *obs.Counter
	inventoryPulls  *obs.Counter
	shardsUnhealthy *obs.Gauge

	// Degraded merges: responses that widened at least one shard to the
	// ignorance bound, and the synthesized entries they carried.
	degradedMerges  *obs.Counter
	degradedEntries *obs.Counter

	// Per-format decode share of the fan-out path: how long the gateway
	// spends unmarshalling shard bodies, split by interchange format.
	decodeJSON *obs.Histogram
	decodeWire *obs.Histogram
}

func newFleetMetrics(r *obs.Registry) *fleetMetrics {
	return &fleetMetrics{
		httpChargers: r.Histogram("gateway_http_seconds_chargers", nil),
		httpWeather:  r.Histogram("gateway_http_seconds_weather", nil),
		httpAvail:    r.Histogram("gateway_http_seconds_availability", nil),
		httpTraffic:  r.Histogram("gateway_http_seconds_traffic", nil),
		httpOffering: r.Histogram("gateway_http_seconds_offering", nil),
		httpTrip:     r.Histogram("gateway_http_seconds_offering_trip", nil),

		shardRequests: r.Counter("gateway_shard_requests_total"),
		shardFailures: r.Counter("gateway_shard_failures_total"),

		hedgesFired: r.Counter("gateway_hedges_fired_total"),
		hedgeWins:   r.Counter("gateway_hedge_wins_total"),

		probes:          r.Counter("gateway_probes_total"),
		probeFailures:   r.Counter("gateway_probe_failures_total"),
		inventoryPulls:  r.Counter("gateway_inventory_pulls_total"),
		shardsUnhealthy: r.Gauge("gateway_shards_unhealthy"),

		degradedMerges:  r.Counter("gateway_degraded_merges_total"),
		degradedEntries: r.Counter("gateway_degraded_entries_total"),

		decodeJSON: r.Histogram("gateway_decode_seconds_json", nil),
		decodeWire: r.Histogram("gateway_decode_seconds_wire", nil),
	}
}

var met = newFleetMetrics(obs.Default())

package ev

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

var chargeStart = time.Date(2024, 6, 18, 10, 0, 0, 0, time.UTC)

func TestCompactEVValid(t *testing.T) {
	v := CompactEV()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.EnergyKWh() != 29 {
		t.Errorf("half-charged 58 kWh pack holds %v", v.EnergyKWh())
	}
	if r := v.RangeKM(); r < 150 || r > 250 {
		t.Errorf("range %v km implausible for half charge", r)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Vehicle{
		{Battery: Battery{CapacityKWh: 0, SoC: 0.5}, MaxACkW: 11, MaxDCkW: 50, BaseConsumption: 0.15},
		{Battery: Battery{CapacityKWh: 58, SoC: 1.5}, MaxACkW: 11, MaxDCkW: 50, BaseConsumption: 0.15},
		{Battery: Battery{CapacityKWh: 58, SoC: 0.5}, MaxACkW: 0, MaxDCkW: 50, BaseConsumption: 0.15},
		{Battery: Battery{CapacityKWh: 58, SoC: 0.5}, MaxACkW: 11, MaxDCkW: 50, BaseConsumption: 0},
		{Battery: Battery{CapacityKWh: 58, SoC: 0.5}, MaxACkW: 11, MaxDCkW: 50, BaseConsumption: 0.15, AuxKW: -1},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, v)
		}
	}
}

func TestAcceptedKWCurve(t *testing.T) {
	v := CompactEV()
	// AC capped at the on-board charger.
	if got := v.AcceptedKW(22, false, 0.5); got != 11 {
		t.Errorf("AC accepted %v, want 11", got)
	}
	// DC passes more.
	if got := v.AcceptedKW(50, true, 0.5); got != 50 {
		t.Errorf("DC accepted %v, want 50", got)
	}
	if got := v.AcceptedKW(300, true, 0.5); got != 150 {
		t.Errorf("DC accepted %v, want the 150 limit", got)
	}
	// Taper: less power above the knee, near-zero at full.
	full := v.AcceptedKW(50, true, 0.5)
	high := v.AcceptedKW(50, true, 0.9)
	top := v.AcceptedKW(50, true, 0.999)
	if !(full > high && high > top) {
		t.Errorf("taper not monotone: %.1f, %.1f, %.1f", full, high, top)
	}
	if got := v.AcceptedKW(50, true, 1.0); got != 0 {
		t.Errorf("full battery accepted %v", got)
	}
	if got := v.AcceptedKW(0, true, 0.5); got != 0 {
		t.Errorf("zero offer accepted %v", got)
	}
	if got := v.AcceptedKW(-5, true, 0.5); got != 0 {
		t.Errorf("negative offer accepted %v", got)
	}
}

func TestPropAcceptedKWBounded(t *testing.T) {
	v := CompactEV()
	f := func(offer, socRaw float64, dc bool) bool {
		offer = math.Abs(math.Mod(offer, 500))
		soc := math.Abs(math.Mod(socRaw, 1))
		p := v.AcceptedKW(offer, dc, soc)
		limit := v.MaxACkW
		if dc {
			limit = v.MaxDCkW
		}
		return p >= 0 && p <= math.Min(offer, limit)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargeConstantSupply(t *testing.T) {
	v := CompactEV()
	v.SoC = 0.2
	gained := v.Charge(func(time.Time) float64 { return 11 }, false, chargeStart, time.Hour)
	// One hour at 11 kW below the knee gains ~11 kWh.
	if math.Abs(gained-11) > 0.5 {
		t.Errorf("gained %v kWh in 1h at 11 kW", gained)
	}
	wantSoC := 0.2 + gained/58
	if math.Abs(v.SoC-wantSoC) > 1e-9 {
		t.Errorf("SoC %v inconsistent with gain", v.SoC)
	}
}

func TestChargeStopsAtFull(t *testing.T) {
	v := CompactEV()
	v.SoC = 0.99
	gained := v.Charge(func(time.Time) float64 { return 150 }, true, chargeStart, 10*time.Hour)
	if v.SoC != 1 {
		t.Errorf("SoC %v after overlong charge", v.SoC)
	}
	if math.Abs(gained-0.01*58) > 0.2 {
		t.Errorf("gained %v, want ~%.2f", gained, 0.01*58)
	}
	// Charging a full battery gains nothing.
	if g := v.Charge(func(time.Time) float64 { return 150 }, true, chargeStart, time.Hour); g != 0 {
		t.Errorf("full battery gained %v", g)
	}
	// Zero / negative duration gains nothing.
	if g := v.Charge(func(time.Time) float64 { return 150 }, true, chargeStart, 0); g != 0 {
		t.Errorf("zero duration gained %v", g)
	}
}

func TestChargeVariableSupply(t *testing.T) {
	// Supply available only in the second half-hour; the gain must reflect
	// that.
	v := CompactEV()
	v.SoC = 0.3
	cutover := chargeStart.Add(30 * time.Minute)
	gained := v.Charge(func(t time.Time) float64 {
		if t.Before(cutover) {
			return 0
		}
		return 11
	}, false, chargeStart, time.Hour)
	if math.Abs(gained-5.5) > 0.3 {
		t.Errorf("gained %v kWh, want ~5.5", gained)
	}
}

func TestTimeToSoC(t *testing.T) {
	v := CompactEV()
	v.SoC = 0.2
	// 0.2 → 0.8 at 11 kW: 0.6·58/11 ≈ 3.16 h (no taper below the knee).
	d, ok := v.TimeToSoC(0.8, 11, false)
	if !ok {
		t.Fatal("unreachable")
	}
	want := 0.6 * 58 / 11 * float64(time.Hour)
	if math.Abs(float64(d)-want) > float64(5*time.Minute) {
		t.Errorf("time to 80%% = %v, want ~%v", d, time.Duration(want))
	}
	// Charging into the taper takes disproportionately longer.
	d100, ok := v.TimeToSoC(1.0, 11, false)
	if !ok {
		t.Fatal("full charge unreachable")
	}
	linear := 0.8 * 58 / 11 * float64(time.Hour)
	if float64(d100) < linear {
		t.Errorf("taper ignored: %v for full charge", d100)
	}
	// Already there.
	if d, ok := v.TimeToSoC(0.1, 11, false); !ok || d != 0 {
		t.Errorf("target below SoC: %v %v", d, ok)
	}
	// Zero power never reaches.
	if _, ok := v.TimeToSoC(0.9, 0, false); ok {
		t.Error("zero power reported reachable")
	}
}

func evGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	return roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 4, Seed: 1,
	})
}

func TestTripEnergy(t *testing.T) {
	g := evGraph(t)
	path, ok := g.ShortestPath(0, roadnet.NodeID(g.NumNodes()-1), roadnet.DistanceWeight)
	if !ok {
		t.Fatal("no path")
	}
	v := CompactEV()
	e := v.TripEnergyKWh(g, path)
	km := path.Weight / 1000
	// Plausibility: between base consumption and 2× (aux + class factors).
	if e < km*v.BaseConsumption*0.9 || e > km*v.BaseConsumption*2 {
		t.Errorf("trip energy %v kWh for %.1f km implausible", e, km)
	}
	// Empty path costs nothing.
	if got := v.TripEnergyKWh(g, roadnet.Path{}); got != 0 {
		t.Errorf("empty path energy %v", got)
	}
}

func TestCanReach(t *testing.T) {
	g := evGraph(t)
	path, ok := g.ShortestPath(0, roadnet.NodeID(g.NumNodes()-1), roadnet.DistanceWeight)
	if !ok {
		t.Fatal("no path")
	}
	v := CompactEV()
	v.SoC = 0.9
	if !v.CanReach(g, path, 0.1) {
		t.Error("90% pack cannot cover a ~10 km trip")
	}
	v.SoC = 0.005
	if v.CanReach(g, path, 0.1) {
		t.Error("nearly-empty pack claims to cover the trip with reserve")
	}
	// Negative reserve is treated as zero.
	v.SoC = 0.05
	_ = v.CanReach(g, path, -1)
}

func TestPropChargeNeverExceedsCapacity(t *testing.T) {
	f := func(socRaw, supplyRaw float64, minutes uint16) bool {
		v := CompactEV()
		v.SoC = math.Abs(math.Mod(socRaw, 1))
		supply := math.Abs(math.Mod(supplyRaw, 400))
		v.Charge(func(time.Time) float64 { return supply }, true, chargeStart,
			time.Duration(minutes%600)*time.Minute)
		return v.SoC >= 0 && v.SoC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package cknn implements the paper's primary contribution: the Continuous
// k-Nearest-Neighbor query with Estimated Components (CkNN-EC) and the
// EcoCharge ranking framework built on it (paper §III).
//
// The pipeline per query point is exactly Algorithm 1: evaluate the three
// Estimated Components L (sustainable charging level), A (availability) and
// D (derouting cost) as intervals for every candidate charger (filtering
// phase), combine them into lower/upper Sustainability Scores with eqs. 4–5,
// intersect the two top-k rankings per eq. 6 (refinement phase), and emit a
// sorted Offering Table. Four interchangeable ranking methods mirror the
// evaluation's baselines: BruteForce, IndexQuadtree, Random and EcoCharge
// (with the dynamic R/Q cache of §IV.C).
package cknn

import (
	"fmt"
	"sort"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
)

// Weights are the user-configurable objective weights w1 (L), w2 (A),
// w3 (D) of the Sustainability Score.
type Weights struct {
	L, A, D float64
}

// EqualWeights is the paper's default configuration (AWE): w1=w2=w3=1/3.
func EqualWeights() Weights { return Weights{L: 1.0 / 3, A: 1.0 / 3, D: 1.0 / 3} }

// OnlyL, OnlyA and OnlyD are the single-objective configurations of the
// ablation study (OSC, OA, ODC).
func OnlyL() Weights { return Weights{L: 1} }

// OnlyA is the availability-only distance function (OA).
func OnlyA() Weights { return Weights{A: 1} }

// OnlyD is the derouting-only distance function (ODC).
func OnlyD() Weights { return Weights{D: 1} }

// Validate reports whether the weights are non-negative and not all zero.
func (w Weights) Validate() error {
	if w.L < 0 || w.A < 0 || w.D < 0 {
		return fmt.Errorf("cknn: negative weight %+v", w)
	}
	//ecolint:ignore floateq exact-zero sentinel: unset weights are literal zeros
	if w.L == 0 && w.A == 0 && w.D == 0 {
		return fmt.Errorf("cknn: all weights zero")
	}
	return nil
}

// Normalized returns the weights scaled to sum to 1, as the paper requires
// (w1 + w2 + w3 = 1). It panics on invalid weights.
func (w Weights) Normalized() Weights {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	s := w.L + w.A + w.D
	return Weights{L: w.L / s, A: w.A / s, D: w.D / s}
}

// Degraded is a bitmask naming the components that fell back to their
// ignorance bound [0,1] because the backing source failed or served stale
// data. Zero means every component was estimated from a live source.
type Degraded uint8

// One bit per Estimated Component, aligned with the Component constants so
// 1<<comp is the bit of component comp.
const (
	DegradedL Degraded = 1 << CompL
	DegradedA Degraded = 1 << CompA
	DegradedD Degraded = 1 << CompD
	// DegradedShard marks an entry whose owning fleet shard did not answer:
	// the gateway synthesized it from the shard's last known inventory with
	// every component at the ignorance bound, so the charger stays in the
	// Offering Table instead of being silently pruned. It always rides with
	// DegradedL|DegradedA|DegradedD — a shard outage degrades all three
	// sources at once — and like them it is metadata: it never enters SC.
	DegradedShard Degraded = 1 << 3
)

// DegradedAll is the fully widened mask a shard outage produces.
const DegradedAll = DegradedL | DegradedA | DegradedD | DegradedShard

// Has reports whether the component's bit is set.
func (d Degraded) Has(c Component) bool { return d&(1<<c) != 0 }

// String renders the set bits as "L|A|D" fragments (plus "shard" for the
// fleet bit); empty when none.
func (d Degraded) String() string {
	s := ""
	for _, c := range [...]Component{CompL, CompA, CompD} {
		if d.Has(c) {
			if s != "" {
				s += "|"
			}
			s += c.String()
		}
	}
	if d&DegradedShard != 0 {
		if s != "" {
			s += "|"
		}
		s += "shard"
	}
	return s
}

// ignoranceBound is the degraded form of a normalized component: with the
// backing source down, the only sound statement is "somewhere in [0,1]" —
// the interval algebra of eqs. 4–6 then carries the uncertainty through SC
// instead of turning the outage into an error.
func ignoranceBound() interval.I { return interval.New(0, 1) }

// Components are the normalized Estimated Components of one charger at one
// query: every field lies in [0, 1]. D is the normalized derouting cost
// where 0 means "on the route" and 1 means "at the derouting budget".
type Components struct {
	L interval.I // sustainable charging level (higher is better)
	A interval.I // availability = 1 − busy (higher is better)
	D interval.I // derouting cost (lower is better)

	ETA        time.Time // estimated arrival at the charger
	DeroutSecM float64   // mid-estimate derouting seconds (diagnostics)
	// Degraded names the components that were defaulted to [0,1] instead
	// of estimated (source failure). It does not enter SC — the widened
	// intervals already do — but callers surface it so clients can tell an
	// estimate from a default.
	Degraded Degraded
}

// SC applies eqs. 4–5: SC = L·w1 + A·w2 + (1−D)·w3 as an interval.
// Weights must already be normalized.
func (c Components) SC(w Weights) interval.I {
	return interval.WeightedSum(
		[]interval.I{c.L, c.A, c.D.Complement()},
		[]float64{w.L, w.A, w.D},
	)
}

// Entry is one Offering Table row: a charger, its interval score, and the
// components behind it.
type Entry struct {
	Charger *charger.Charger
	SC      interval.I
	Comp    Components
}

// OfferingTable is the ranked result the driver sees for one query point
// (paper Fig. 1): chargers for one path segment, sorted best-first.
type OfferingTable struct {
	Anchor      geo.Point // query point the table was computed for
	GeneratedAt time.Time // wall time of the estimate (issuedAt)
	ETABase     time.Time // arrival time at the anchor
	Entries     []Entry   // sorted: highest SC first
	// Adapted reports whether this table was derived from a cached one
	// (dynamic caching hit) rather than computed from scratch.
	Adapted bool
}

// IDs returns the charger IDs of the table in rank order.
func (o OfferingTable) IDs() []int64 {
	ids := make([]int64, len(o.Entries))
	for i, e := range o.Entries {
		ids[i] = e.Charger.ID
	}
	return ids
}

// Top returns the best entry and true, or a zero entry and false when the
// table is empty.
func (o OfferingTable) Top() (Entry, bool) {
	if len(o.Entries) == 0 {
		return Entry{}, false
	}
	return o.Entries[0], true
}

// Rank implements the refinement phase (eq. 6): it produces the top-k by
// SC_max and the top-k by SC_min, intersects them, and orders the result by
// SC midpoint (ties by higher SC_max, then lower charger ID). When the
// intersection holds fewer than k chargers it is padded from the SC_max
// ranking so the output "contains k chargers" as the paper specifies.
func Rank(entries []Entry, k int) []Entry {
	if k <= 0 || len(entries) == 0 {
		return nil
	}
	byMax := append([]Entry(nil), entries...)
	sort.Slice(byMax, func(i, j int) bool { return lessEntry(byMax[i], byMax[j], maxKey) })
	byMin := append([]Entry(nil), entries...)
	sort.Slice(byMin, func(i, j int) bool { return lessEntry(byMin[i], byMin[j], minKey) })

	n := k
	if n > len(entries) {
		n = len(entries)
	}
	inMin := make(map[int64]bool, n)
	for _, e := range byMin[:n] {
		inMin[e.Charger.ID] = true
	}
	out := make([]Entry, 0, n)
	seen := make(map[int64]bool, n)
	for _, e := range byMax[:n] {
		if inMin[e.Charger.ID] {
			out = append(out, e)
			seen[e.Charger.ID] = true
		}
	}
	// Pad from the SC_max order to reach k chargers.
	for _, e := range byMax {
		if len(out) >= n {
			break
		}
		if !seen[e.Charger.ID] {
			out = append(out, e)
			seen[e.Charger.ID] = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessEntry(out[i], out[j], midKey) })
	return out
}

type sortKey int

const (
	maxKey sortKey = iota
	minKey
	midKey
)

// lessEntry orders entries best-first under the chosen key with
// deterministic tie-breaking: ties fall through the full score interval
// (SC_max, then SC_min) before the final charger-ID comparison, so the
// order is total for every key — equal-SC chargers always emerge in ID
// order and no evaluation or merge order (in particular the parallel
// filtering phase's) can change an emitted table.
func lessEntry(a, b Entry, key sortKey) bool {
	var av, bv float64
	switch key {
	case maxKey:
		av, bv = a.SC.Max, b.SC.Max
	case minKey:
		av, bv = a.SC.Min, b.SC.Min
	default:
		av, bv = a.SC.Mid(), b.SC.Mid()
	}
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if av != bv {
		return av > bv
	}
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if a.SC.Max != b.SC.Max {
		return a.SC.Max > b.SC.Max
	}
	//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
	if a.SC.Min != b.SC.Min {
		return a.SC.Min > b.SC.Min
	}
	return a.Charger.ID < b.Charger.ID
}

package spatial

import (
	"math/rand"
	"testing"

	"ecocharge/internal/geo"
)

func TestRTreeAgreesWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	items := randomItems(r, 700)
	bf := NewBruteForce()
	for _, it := range items {
		bf.Insert(it)
	}
	rt := NewRTree(items, 0)
	if rt.Len() != len(items) {
		t.Fatalf("Len = %d", rt.Len())
	}
	for trial := 0; trial < 80; trial++ {
		q := geo.Point{
			Lat: testBounds.Min.Lat + r.Float64()*0.4,
			Lon: testBounds.Min.Lon + r.Float64()*0.6,
		}
		for _, k := range []int{1, 5, 25} {
			want := bf.KNN(q, k)
			if got := rt.KNN(q, k); !neighborsEqual(got, want) {
				t.Fatalf("trial %d k=%d: rtree KNN mismatch", trial, k)
			}
		}
		for _, radius := range []float64{800, 5000} {
			want := bf.Within(q, radius)
			if got := rt.Within(q, radius); !neighborsEqual(got, want) {
				t.Fatalf("trial %d r=%.0f: rtree Within mismatch (%d vs %d)", trial, radius, len(got), len(want))
			}
		}
	}
}

func TestRTreeEmptyAndDegenerate(t *testing.T) {
	rt := NewRTree(nil, 8)
	if rt.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if got := rt.KNN(testBounds.Center(), 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
	if got := rt.Within(testBounds.Center(), 1000); got != nil {
		t.Errorf("empty Within = %v", got)
	}
	// Single item.
	rt.Bulk([]Item{{P: testBounds.Center(), ID: 1}})
	if got := rt.KNN(testBounds.Center(), 5); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("single-item KNN = %v", got)
	}
	if got := rt.Within(testBounds.Center(), -1); got != nil {
		t.Errorf("negative radius = %v", got)
	}
}

func TestRTreeCoLocatedPoints(t *testing.T) {
	p := testBounds.Center()
	items := make([]Item, 64)
	for i := range items {
		items[i] = Item{P: p, ID: int64(i)}
	}
	rt := NewRTree(items, 4)
	got := rt.KNN(p, 64)
	if len(got) != 64 {
		t.Fatalf("KNN returned %d of 64 co-located points", len(got))
	}
	for i, n := range got {
		if n.ID != int64(i) {
			t.Fatalf("tie order broken at %d", i)
		}
	}
}

func TestRTreeIncrementalInsert(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	base := randomItems(r, 200)
	extra := randomItems(r, 100)
	for i := range extra {
		extra[i].ID += 1000
	}
	rt := NewRTree(base, 8)
	bf := NewBruteForce()
	for _, it := range base {
		bf.Insert(it)
	}
	for _, it := range extra {
		rt.Insert(it)
		bf.Insert(it)
	}
	if rt.Len() != 300 {
		t.Fatalf("Len after inserts = %d", rt.Len())
	}
	for trial := 0; trial < 40; trial++ {
		q := geo.Point{
			Lat: testBounds.Min.Lat + r.Float64()*0.4,
			Lon: testBounds.Min.Lon + r.Float64()*0.6,
		}
		want := bf.KNN(q, 10)
		if got := rt.KNN(q, 10); !neighborsEqual(got, want) {
			t.Fatalf("trial %d: post-insert KNN mismatch", trial)
		}
	}
	// Insert into an empty tree.
	empty := NewRTree(nil, 8)
	empty.Insert(Item{P: testBounds.Center(), ID: 7})
	if got := empty.KNN(testBounds.Center(), 1); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("insert into empty tree: %v", got)
	}
}

func TestRTreeHeightLogarithmic(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(41)), 4096)
	rt := NewRTree(items, 16)
	// fan 16 over 4096 items: 256 leaves, height ≤ 4 (leaf + up to 3 internal).
	if h := rt.Height(); h > 4 {
		t.Errorf("height %d too tall for STR packing", h)
	}
}

func BenchmarkRTreeKNN(b *testing.B) {
	items := randomItems(rand.New(rand.NewSource(5)), 10000)
	rt := NewRTree(items, 0)
	q := testBounds.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.KNN(q, 10)
	}
}

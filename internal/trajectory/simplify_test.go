package trajectory

import (
	"testing"
	"time"
)

func TestTrajectorySimplify(t *testing.T) {
	g := smallGraph(t)
	trip := genTrips(t, g, 1)[0]
	dense := Sample(g, trip, 2*time.Second) // Geolife-style density
	slim := dense.Simplify(25)

	if slim.ID != dense.ID {
		t.Error("ID lost")
	}
	if len(slim.Points) >= len(dense.Points) {
		t.Fatalf("no compression: %d -> %d", len(dense.Points), len(slim.Points))
	}
	if len(slim.Points) < 2 {
		t.Fatalf("over-compressed to %d points", len(slim.Points))
	}
	// Endpoints and their timestamps preserved.
	if slim.Points[0] != dense.Points[0] {
		t.Error("first sample changed")
	}
	if slim.Points[len(slim.Points)-1] != dense.Points[len(dense.Points)-1] {
		t.Error("last sample changed")
	}
	// Timestamps remain monotone.
	for i := 1; i < len(slim.Points); i++ {
		if slim.Points[i].T.Before(slim.Points[i-1].T) {
			t.Fatal("timestamps out of order after simplify")
		}
	}
	// Length is roughly preserved (simplification cuts corners slightly).
	if ratio := slim.LengthMeters() / dense.LengthMeters(); ratio < 0.95 || ratio > 1.001 {
		t.Errorf("length ratio %v after simplify", ratio)
	}
}

func TestTrajectorySimplifyEmpty(t *testing.T) {
	var tr Trajectory
	if got := tr.Simplify(25); len(got.Points) != 0 {
		t.Errorf("empty simplify: %v", got)
	}
}

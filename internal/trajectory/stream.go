package trajectory

import (
	"fmt"
	"math/rand"
	"time"

	"ecocharge/internal/roadnet"
)

// Sampler streams Brinkhoff-style trips one at a time instead of
// materializing a full slice up front. The load harness drives millions of
// synthetic trips through it without holding them all in memory; Generate
// is now a thin collector over the same sampler, so a Sampler with the
// same GenConfig emits the byte-identical trip sequence (same RNG call
// order: hotspots first, then per attempt src/dst picks, then the
// departure draw on success).
type Sampler struct {
	g       *roadnet.Graph
	cfg     GenConfig
	rng     *rand.Rand
	hot     []roadnet.NodeID
	emitted int64
}

// NewSampler validates the graph, applies the GenConfig defaults and draws
// the hotspot set — everything Generate did before its trip loop.
func NewSampler(g *roadnet.Graph, cfg GenConfig) (*Sampler, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("trajectory: graph too small (%d nodes)", g.NumNodes())
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Hour
	}
	if cfg.Hotspots <= 0 {
		cfg.Hotspots = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hot := make([]roadnet.NodeID, cfg.Hotspots)
	for i := range hot {
		hot[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
	}
	return &Sampler{g: g, cfg: cfg, rng: rng, hot: hot}, nil
}

// pick draws one endpoint. The rng.Float64 call happens on every biased
// pick regardless of HotspotFrac so the stream stays byte-identical to the
// pre-sampler Generate for every config.
func (s *Sampler) pick(hotBiased bool) roadnet.NodeID {
	if hotBiased && s.rng.Float64() < s.cfg.HotspotFrac {
		return s.hot[s.rng.Intn(len(s.hot))]
	}
	return roadnet.NodeID(s.rng.Intn(s.g.NumNodes()))
}

// Emitted returns how many trips the sampler has produced so far.
func (s *Sampler) Emitted() int64 { return s.emitted }

// Next produces the next trip. Unlike Generate it is not bounded by cfg.N:
// callers stream as many trips as their run needs. It returns an error
// when the graph cannot satisfy the length constraints within the bounded
// attempt budget.
func (s *Sampler) Next() (Trip, error) {
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		src := s.pick(true)
		dst := s.pick(true)
		if src == dst {
			continue
		}
		path, found := s.g.ShortestPath(src, dst, roadnet.DistanceWeight)
		if !found {
			continue
		}
		km := path.Weight / 1000
		if km < s.cfg.MinTripKM {
			continue
		}
		if s.cfg.MaxTripKM > 0 && km > s.cfg.MaxTripKM {
			continue
		}
		depart := s.cfg.Start.Add(time.Duration(s.rng.Float64() * float64(s.cfg.Window)))
		s.emitted++
		return Trip{ID: s.emitted, Path: path, Depart: depart}, nil
	}
	return Trip{}, fmt.Errorf("trajectory: could not generate trip %d within %d attempts (graph connectivity or length constraints too strict)", s.emitted, maxAttempts)
}

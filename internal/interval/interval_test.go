package interval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genI produces a random valid interval for quick.Check via a custom
// generator so bounds stay in a sane range.
type genI I

func (genI) Generate(r *rand.Rand, _ int) reflect.Value {
	a := r.Float64()*200 - 100
	b := r.Float64()*200 - 100
	return reflect.ValueOf(genI(FromBounds(a, b)))
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"reversed": func() { New(2, 1) },
		"nan-min":  func() { New(math.NaN(), 1) },
		"nan-max":  func() { New(0, math.NaN()) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestBasics(t *testing.T) {
	a := New(1, 3)
	if a.Width() != 2 {
		t.Errorf("Width = %v", a.Width())
	}
	if a.Mid() != 2 {
		t.Errorf("Mid = %v", a.Mid())
	}
	if a.IsExact() {
		t.Error("non-degenerate interval reported exact")
	}
	if !Exact(5).IsExact() {
		t.Error("Exact not exact")
	}
	if !a.Contains(1) || !a.Contains(3) || a.Contains(3.0001) {
		t.Error("Contains bounds wrong")
	}
	if !a.ContainsInterval(New(1.5, 2.5)) || a.ContainsInterval(New(0, 2)) {
		t.Error("ContainsInterval wrong")
	}
}

func TestFromBounds(t *testing.T) {
	if got := FromBounds(3, 1); got != (I{1, 3}) {
		t.Errorf("FromBounds(3,1) = %v", got)
	}
	if got := FromBounds(1, 3); got != (I{1, 3}) {
		t.Errorf("FromBounds(1,3) = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a, b := New(1, 2), New(10, 20)
	if got := a.Add(b); got != (I{11, 22}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (I{8, 19}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); got != (I{3, 6}) {
		t.Errorf("Scale(3) = %v", got)
	}
	if got := a.Scale(-1); got != (I{-2, -1}) {
		t.Errorf("Scale(-1) = %v", got)
	}
	if got := a.Neg(); got != (I{-2, -1}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestComplement(t *testing.T) {
	d := New(0.2, 0.5)
	c := d.Complement()
	if c != (I{0.5, 0.8}) {
		t.Errorf("Complement = %v", c)
	}
}

func TestIntersectUnion(t *testing.T) {
	a, b := New(1, 5), New(3, 8)
	got, ok := a.Intersect(b)
	if !ok || got != (I{3, 5}) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := New(0, 1).Intersect(New(2, 3)); ok {
		t.Error("disjoint intervals intersected")
	}
	// Touching intervals intersect in a point.
	got, ok = New(0, 2).Intersect(New(2, 4))
	if !ok || got != (I{2, 2}) {
		t.Errorf("touching Intersect = %v, %v", got, ok)
	}
	if u := a.Union(b); u != (I{1, 8}) {
		t.Errorf("Union = %v", u)
	}
}

func TestOrderingPredicates(t *testing.T) {
	lo, hi := New(0, 1), New(2, 3)
	if !lo.DefinitelyLess(hi) {
		t.Error("DefinitelyLess false for disjoint ordered intervals")
	}
	if hi.DefinitelyLess(lo) {
		t.Error("DefinitelyLess true in reverse")
	}
	over := New(0.5, 2.5)
	if lo.DefinitelyLess(over) {
		t.Error("DefinitelyLess true for overlapping")
	}
	if !lo.PossiblyLess(over) {
		t.Error("PossiblyLess false for overlapping")
	}
	if !New(2, 4).Dominates(New(1, 3)) {
		t.Error("Dominates false for strictly better interval")
	}
	if New(1, 3).Dominates(New(1, 3)) {
		t.Error("interval dominates itself")
	}
}

func TestWeightedSumMatchesEquations(t *testing.T) {
	// Replicates eq. 4/5: SC = L*w1 + A*w2 + (1-D)*w3 with exact values.
	l, a, d := New(0.6, 0.9), New(0.3, 0.5), New(0.1, 0.4)
	ws := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	sc := WeightedSum([]I{l, a, d.Complement()}, ws)
	wantMin := (0.6 + 0.3 + (1 - 0.4)) / 3
	wantMax := (0.9 + 0.5 + (1 - 0.1)) / 3
	if math.Abs(sc.Min-wantMin) > 1e-12 || math.Abs(sc.Max-wantMax) > 1e-12 {
		t.Errorf("SC = %v, want [%v, %v]", sc, wantMin, wantMax)
	}
}

func TestWeightedSumPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedSum([]I{Exact(1)}, []float64{0.5, 0.5})
}

func TestNormalize(t *testing.T) {
	a := New(20, 60)
	if got := a.Normalize(100); got != (I{0.2, 0.6}) {
		t.Errorf("Normalize = %v", got)
	}
	// Values above max clamp to 1.
	if got := New(50, 200).Normalize(100); got != (I{0.5, 1}) {
		t.Errorf("Normalize clamp = %v", got)
	}
	if got := a.Normalize(0); got != (I{}) {
		t.Errorf("Normalize by 0 = %v, want zero interval", got)
	}
	if got := a.Normalize(-5); got != (I{}) {
		t.Errorf("Normalize by negative = %v, want zero interval", got)
	}
}

func TestClamp(t *testing.T) {
	if got := New(-1, 2).Clamp(0, 1); got != (I{0, 1}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := New(0.2, 0.8).Clamp(0, 1); got != (I{0.2, 0.8}) {
		t.Errorf("Clamp identity = %v", got)
	}
}

// ----- property-based tests -----

func TestPropAddCommutative(t *testing.T) {
	f := func(x, y genI) bool { return I(x).Add(I(y)) == I(y).Add(I(x)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddPreservesValidity(t *testing.T) {
	f := func(x, y genI) bool { return I(x).Add(I(y)).Valid() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubValid(t *testing.T) {
	f := func(x, y genI) bool { return I(x).Sub(I(y)).Valid() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleValid(t *testing.T) {
	f := func(x genI, s float64) bool {
		s = math.Mod(s, 1e6)
		if math.IsNaN(s) {
			s = 0
		}
		return I(x).Scale(s).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Interval arithmetic must over-approximate: for any point values inside the
// operands, the pointwise result lies inside the interval result.
func TestPropAddEncloses(t *testing.T) {
	f := func(x, y genI, fx, fy float64) bool {
		fx, fy = frac(fx), frac(fy)
		px := I(x).Min + fx*I(x).Width()
		py := I(y).Min + fy*I(y).Width()
		return I(x).Add(I(y)).Contains(px + py)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropComplementInvolution(t *testing.T) {
	f := func(x genI) bool {
		c := I(x).Complement().Complement()
		return math.Abs(c.Min-I(x).Min) < 1e-9 && math.Abs(c.Max-I(x).Max) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectIsSubset(t *testing.T) {
	f := func(x, y genI) bool {
		got, ok := I(x).Intersect(I(y))
		if !ok {
			return !I(x).Overlaps(I(y))
		}
		return I(x).ContainsInterval(got) && I(y).ContainsInterval(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(x, y genI) bool {
		u := I(x).Union(I(y))
		return u.ContainsInterval(I(x)) && u.ContainsInterval(I(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDefinitelyLessIsStrongerThanPossibly(t *testing.T) {
	f := func(x, y genI) bool {
		if I(x).DefinitelyLess(I(y)) {
			return I(x).PossiblyLess(I(y))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func frac(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(v, 1))
}

// Package snapshot bundles a complete scenario world — road network,
// charger inventory, trip workload and the model seeds — into a single zip
// archive, and restores it bit-for-bit. It is how a reproducible
// evaluation world travels between machines: the EIS of the paper
// distributes consolidated data to clients (§IV); the snapshot is the
// batch equivalent.
package snapshot

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/experiment"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// Manifest records everything the CSV payloads cannot: identity, scale and
// the deterministic model seeds the world regenerates its forecasts from.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	Name          string    `json:"name"`
	Scale         float64   `json:"scale"`
	Seed          int64     `json:"seed"`
	Start         time.Time `json:"start"`
	// Model seeds, read from the environment's models so custom worlds
	// restore with identical forecasts.
	SolarSeed   int64 `json:"solar_seed"`
	AvailSeed   int64 `json:"avail_seed"`
	TrafficSeed int64 `json:"traffic_seed"`
	WindSeed    int64 `json:"wind_seed"`
	HasWind     bool  `json:"has_wind"`
	// MaxDeroutSec preserves the environment's derouting budget (it is
	// derived from the configured radius and changes every normalized D).
	MaxDeroutSec float64 `json:"max_derout_sec"`
	// Counts for integrity checking on load.
	Nodes    int `json:"nodes"`
	Edges    int `json:"edges"`
	Chargers int `json:"chargers"`
	Trips    int `json:"trips"`
}

const formatVersion = 1

// Archive member names.
const (
	manifestName = "manifest.json"
	graphName    = "graph.csv"
	chargersName = "chargers.csv"
	tripsName    = "trips.json"
)

// tripJSON is the archived trip form (node paths are graph-relative).
type tripJSON struct {
	ID     int64     `json:"id"`
	Depart time.Time `json:"depart"`
	Weight float64   `json:"weight"`
	Nodes  []int32   `json:"nodes"`
}

// Save writes the scenario as a zip archive.
func Save(w io.Writer, sc *experiment.Scenario) error {
	zw := zip.NewWriter(w)

	man := Manifest{
		FormatVersion: formatVersion,
		Name:          sc.Name,
		Scale:         sc.Scale,
		Seed:          sc.Seed,
		Start:         sc.Start,
		SolarSeed:     sc.Env.Solar.Seed,
		AvailSeed:     sc.Env.Avail.Seed,
		TrafficSeed:   sc.Env.Traffic.Seed,
		Nodes:         sc.Graph.NumNodes(),
		Edges:         sc.Graph.NumEdges(),
		Chargers:      sc.Env.Chargers.Len(),
		Trips:         len(sc.Trips),
	}
	if sc.Env.Wind != nil {
		man.HasWind = true
		man.WindSeed = sc.Env.Wind.Seed
	}
	man.MaxDeroutSec = sc.Env.MaxDeroutSec
	if err := writeZipJSON(zw, manifestName, man); err != nil {
		return err
	}

	gw, err := zw.Create(graphName)
	if err != nil {
		return err
	}
	if err := sc.Graph.WriteCSV(gw); err != nil {
		return fmt.Errorf("snapshot: writing graph: %w", err)
	}

	cw, err := zw.Create(chargersName)
	if err != nil {
		return err
	}
	if err := sc.Env.Chargers.WriteCSV(cw); err != nil {
		return fmt.Errorf("snapshot: writing chargers: %w", err)
	}

	trips := make([]tripJSON, len(sc.Trips))
	for i, t := range sc.Trips {
		nodes := make([]int32, len(t.Path.Nodes))
		for j, n := range t.Path.Nodes {
			nodes[j] = int32(n)
		}
		trips[i] = tripJSON{ID: t.ID, Depart: t.Depart, Weight: t.Path.Weight, Nodes: nodes}
	}
	if err := writeZipJSON(zw, tripsName, trips); err != nil {
		return err
	}
	return zw.Close()
}

func writeZipJSON(zw *zip.Writer, name string, v interface{}) error {
	w, err := zw.Create(name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("snapshot: encoding %s: %w", name, err)
	}
	return nil
}

// Load reconstructs the scenario from an archive produced by Save. The
// models are re-seeded from the manifest, so forecasts and truths match
// the original world exactly.
func Load(r io.ReaderAt, size int64) (*experiment.Scenario, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("snapshot: opening archive: %w", err)
	}
	files := make(map[string]*zip.File, len(zr.File))
	for _, f := range zr.File {
		files[f.Name] = f
	}
	for _, need := range []string{manifestName, graphName, chargersName, tripsName} {
		if files[need] == nil {
			return nil, fmt.Errorf("snapshot: archive missing %s", need)
		}
	}

	var man Manifest
	if err := readZipJSON(files[manifestName], &man); err != nil {
		return nil, err
	}
	if man.FormatVersion != formatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d", man.FormatVersion)
	}

	graph, err := readGraph(files[graphName])
	if err != nil {
		return nil, err
	}
	if graph.NumNodes() != man.Nodes || graph.NumEdges() != man.Edges {
		return nil, fmt.Errorf("snapshot: graph size %d/%d does not match manifest %d/%d",
			graph.NumNodes(), graph.NumEdges(), man.Nodes, man.Edges)
	}

	rows, err := readChargers(files[chargersName])
	if err != nil {
		return nil, err
	}
	avail := ec.NewAvailabilityModel(man.AvailSeed)
	for i := range rows {
		rows[i].Timetable = avail.GenerateTimetable(rows[i].ID)
	}
	set, err := charger.NewSet(rows)
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding charger set: %w", err)
	}
	if set.Len() != man.Chargers {
		return nil, fmt.Errorf("snapshot: %d chargers, manifest says %d", set.Len(), man.Chargers)
	}

	envCfg := cknn.EnvConfig{RadiusM: 50000, MaxDeroutSec: man.MaxDeroutSec}
	if man.HasWind {
		envCfg.Wind = ec.NewWindModel(man.WindSeed)
	}
	env, err := cknn.NewEnv(graph, set,
		ec.NewSolarModel(man.SolarSeed), avail, ec.NewTrafficModel(man.TrafficSeed), envCfg)
	if err != nil {
		return nil, err
	}

	var trips []tripJSON
	if err := readZipJSON(files[tripsName], &trips); err != nil {
		return nil, err
	}
	if len(trips) != man.Trips {
		return nil, fmt.Errorf("snapshot: %d trips, manifest says %d", len(trips), man.Trips)
	}
	out := make([]trajectory.Trip, len(trips))
	for i, t := range trips {
		nodes := make([]roadnet.NodeID, len(t.Nodes))
		for j, n := range t.Nodes {
			if int(n) < 0 || int(n) >= graph.NumNodes() {
				return nil, fmt.Errorf("snapshot: trip %d references missing node %d", t.ID, n)
			}
			nodes[j] = roadnet.NodeID(n)
		}
		out[i] = trajectory.Trip{
			ID:     t.ID,
			Depart: t.Depart,
			Path:   roadnet.Path{Nodes: nodes, Weight: t.Weight},
		}
	}

	profile, err := trajectory.ProfileByName(man.Name)
	if err != nil {
		profile = nil // custom worlds are fine; the profile is advisory
	}
	return &experiment.Scenario{
		Name: man.Name, Profile: profile, Graph: graph, Env: env,
		Trips: out, Scale: man.Scale, Seed: man.Seed, Start: man.Start,
	}, nil
}

func readZipJSON(f *zip.File, v interface{}) error {
	rc, err := f.Open()
	if err != nil {
		return err
	}
	defer rc.Close()
	if err := json.NewDecoder(rc).Decode(v); err != nil {
		return fmt.Errorf("snapshot: decoding %s: %w", f.Name, err)
	}
	return nil
}

func readGraph(f *zip.File) (*roadnet.Graph, error) {
	rc, err := f.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	g, err := roadnet.ReadCSV(rc)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading graph: %w", err)
	}
	return g, nil
}

func readChargers(f *zip.File) ([]charger.Charger, error) {
	rc, err := f.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	rows, err := charger.ReadCSV(rc)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading chargers: %w", err)
	}
	return rows, nil
}

// SaveToBytes is a convenience wrapper for tests and small worlds.
func SaveToBytes(sc *experiment.Scenario) ([]byte, error) {
	var buf bytes.Buffer
	if err := Save(&buf, sc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadFromBytes is the inverse of SaveToBytes.
func LoadFromBytes(data []byte) (*experiment.Scenario, error) {
	return Load(bytes.NewReader(data), int64(len(data)))
}

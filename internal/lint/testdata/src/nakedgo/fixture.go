// Package fixture exercises the nakedgo analyzer.
package fixture

import (
	"context"
	"sync"
)

func work() {}

func workCtx(ctx context.Context) { _ = ctx }

// Bad spawns goroutines with no visible coordination: both flagged.
func Bad() {
	go func() { work() }()
	go work()
}

// GoodWaitGroup coordinates through a WaitGroup.
func GoodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// GoodChannel signals completion by closing a channel.
func GoodChannel(done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}

// GoodCtxArg hands the goroutine a context for cancellation.
func GoodCtxArg(ctx context.Context) {
	go workCtx(ctx)
}

type server struct{}

func (s *server) loop() {}

// Suppressed shows the escape hatch for coordination the heuristic cannot
// see (loop blocks on an internal channel).
func Suppressed(s *server) {
	//ecolint:ignore nakedgo fixture: loop blocks on an internal channel
	go s.loop()
}

package cknn

// Differential suite for the slice-backed DeroutingMaps: a faithful copy of
// the old map-backed implementation (four materialized maps, scaleMap
// copies, lookup defaults) serves as the oracle, and the flat version must
// reproduce its Cost and TravelTo outputs bit for bit over every node of
// the graph, for both the exact and the approximate variant. Together with
// the kernel-level differential suite in roadnet/flat_test.go and the
// engine-level TestParallelTripEquivalence (all six methods, Workers 1 vs
// 4), this proves the flat pipeline end-to-end equivalent to the code it
// replaced.

import (
	"math"
	"testing"

	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

// refDerouting is the old DeroutingMaps shape: four materialized maps.
type refDerouting struct {
	fwdLo, fwdHi map[roadnet.NodeID]float64
	retLo, retHi map[roadnet.NodeID]float64
	baseLo       float64
	baseHi       float64
}

// refDeroutingExact replicates the old (*Env).deroutingMaps.
func refDeroutingExact(env *Env, q Query, boundSec float64) refDerouting {
	lower, upper := env.Traffic.WeightFuncs(q.ETABase, q.Now)
	var d refDerouting
	d.fwdLo = env.Graph.DistancesWithin(q.AnchorNode, lower, boundSec)
	d.fwdHi = env.Graph.DistancesWithin(q.AnchorNode, upper, boundSec)
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	d.retLo = env.Graph.DistancesTo(ret, lower, boundSec)
	d.retHi = env.Graph.DistancesTo(ret, upper, boundSec)
	d.baseLo = lookup(d.fwdLo, ret, math.Inf(1))
	d.baseHi = lookup(d.fwdHi, ret, math.Inf(1))
	if math.IsInf(d.baseLo, 1) {
		d.baseLo, d.baseHi = 0, 0
	}
	return d
}

// refDeroutingApprox replicates the old (*Env).deroutingMapsApprox: one
// expansion per direction under mid weights, full-map scaled copies for the
// lo and hi views.
func refDeroutingApprox(env *Env, q Query, boundSec float64) refDerouting {
	loT, hiT := env.Traffic.ClassWeightTables(q.ETABase, q.Now)
	var midT roadnet.ClassWeights
	loRatio, hiRatio := 1.0, 1.0
	for c := range midT {
		midT[c] = (loT[c] + hiT[c]) / 2
		if midT[c] <= 0 {
			continue
		}
		if r := loT[c] / midT[c]; r < loRatio {
			loRatio = r
		}
		if r := hiT[c] / midT[c]; r > hiRatio {
			hiRatio = r
		}
	}
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	mid := midT.Func()
	fwd := env.Graph.DistancesWithin(q.AnchorNode, mid, boundSec)
	rev := env.Graph.DistancesTo(ret, mid, boundSec)

	scale := func(m map[roadnet.NodeID]float64, s float64) map[roadnet.NodeID]float64 {
		if s == 1 {
			return m
		}
		out := make(map[roadnet.NodeID]float64, len(m))
		for k, v := range m {
			out[k] = v * s
		}
		return out
	}
	var d refDerouting
	d.fwdLo = scale(fwd, loRatio)
	d.fwdHi = scale(fwd, hiRatio)
	d.retLo = scale(rev, loRatio)
	d.retHi = scale(rev, hiRatio)
	base := lookup(fwd, ret, math.Inf(1))
	if math.IsInf(base, 1) {
		d.baseLo, d.baseHi = 0, 0
	} else {
		d.baseLo, d.baseHi = base*loRatio, base*hiRatio
	}
	return d
}

// cost is the old DeroutingMaps.Cost, verbatim.
func (d refDerouting) cost(n roadnet.NodeID) (interval.I, bool) {
	fLo, ok1 := d.fwdLo[n]
	rLo, ok2 := d.retLo[n]
	if !ok1 || !ok2 {
		return interval.I{}, false
	}
	fHi := lookup(d.fwdHi, n, fLo)
	rHi := lookup(d.retHi, n, rLo)
	lo := fLo + rLo - d.baseHi
	hi := fHi + rHi - d.baseLo
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi), true
}

// travelTo is the old DeroutingMaps.TravelTo, verbatim.
func (d refDerouting) travelTo(n roadnet.NodeID) (interval.I, bool) {
	lo, ok := d.fwdLo[n]
	if !ok {
		return interval.I{}, false
	}
	hi := lookup(d.fwdHi, n, lo)
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi), true
}

func sameInterval(a, b interval.I) bool {
	return math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}

// TestDeroutingMapsMatchMapImplementation is the cknn-level differential
// property: over every node of the graph, both derouting variants must
// price visits bit-identically to the old map machinery, bounded and
// unbounded, for anchored and distinct return nodes.
func TestDeroutingMapsMatchMapImplementation(t *testing.T) {
	env := testEnv(t)
	base := testQuery(env).normalized()
	distinctRet := base
	distinctRet.ReturnNode = roadnet.NodeID(env.Graph.NumNodes() / 3)
	noRet := base
	noRet.ReturnNode = -1

	for qname, q := range map[string]Query{
		"anchored": base, "distinctReturn": distinctRet, "defaultReturn": noRet,
	} {
		for _, bound := range []float64{math.Inf(1), 600, q.RadiusM / avgUrbanSpeed} {
			flatE := env.deroutingMaps(q, bound)
			refE := refDeroutingExact(env, q, bound)
			compareDerouting(t, env, qname+"/exact", flatE, refE)
			flatE.Release()

			flatA := env.deroutingMapsApprox(q, bound)
			refA := refDeroutingApprox(env, q, bound)
			compareDerouting(t, env, qname+"/approx", flatA, refA)
			flatA.Release()
		}
	}
}

func compareDerouting(t *testing.T, env *Env, label string, flat DeroutingMaps, ref refDerouting) {
	t.Helper()
	priced := 0
	for n := 0; n < env.Graph.NumNodes(); n++ {
		id := roadnet.NodeID(n)
		fc, fok := flat.Cost(id)
		rc, rok := ref.cost(id)
		if fok != rok {
			t.Fatalf("%s node %d: Cost reachability flat=%v ref=%v", label, n, fok, rok)
		}
		if fok {
			priced++
			if !sameInterval(fc, rc) {
				t.Fatalf("%s node %d: Cost flat=%v ref=%v", label, n, fc, rc)
			}
		}
		ft, fok2 := flat.TravelTo(id)
		rt, rok2 := ref.travelTo(id)
		if fok2 != rok2 {
			t.Fatalf("%s node %d: TravelTo reachability flat=%v ref=%v", label, n, fok2, rok2)
		}
		if fok2 && !sameInterval(ft, rt) {
			t.Fatalf("%s node %d: TravelTo flat=%v ref=%v", label, n, ft, rt)
		}
	}
	if priced == 0 {
		t.Fatalf("%s: no node was priced; the comparison is vacuous", label)
	}
}

// TestDeroutingMapsZeroAllocSteadyState asserts the hot path's allocation
// budget: once the search pool is warm, building, reading and releasing the
// derouting expansions allocates nothing.
func TestDeroutingMapsZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	env := testEnv(t)
	q := testQuery(env).normalized()
	budget := q.RadiusM / avgUrbanSpeed
	nodes := []roadnet.NodeID{0, roadnet.NodeID(env.Graph.NumNodes() / 2), roadnet.NodeID(env.Graph.NumNodes() - 1)}
	for i := 0; i < 4; i++ { // warm the pool (4 states live at once in exact mode)
		d := env.deroutingMaps(q, budget)
		d.Release()
	}
	for name, run := range map[string]func() DeroutingMaps{
		"exact":  func() DeroutingMaps { return env.deroutingMaps(q, budget) },
		"approx": func() DeroutingMaps { return env.deroutingMapsApprox(q, budget) },
	} {
		allocs := testing.AllocsPerRun(20, func() {
			d := run()
			for _, n := range nodes {
				d.Cost(n)
				d.TravelTo(n)
			}
			d.Release()
		})
		if allocs != 0 {
			t.Errorf("%s derouting allocates %.1f allocs/op steady-state, want 0", name, allocs)
		}
	}
}

// BenchmarkDeroutingMaps measures the derouting hot path end to end:
// expansions plus a Cost read per charger, exact and approximate variants.
func BenchmarkDeroutingMaps(b *testing.B) {
	env := testEnv(b)
	q := testQuery(env).normalized()
	budget := q.RadiusM / avgUrbanSpeed
	chargers := env.Chargers.All()
	for _, bench := range []struct {
		name string
		run  func() DeroutingMaps
	}{
		{"exact", func() DeroutingMaps { return env.deroutingMaps(q, budget) }},
		{"approx", func() DeroutingMaps { return env.deroutingMapsApprox(q, budget) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := bench.run()
				for j := range chargers {
					d.Cost(chargers[j].Node)
				}
				d.Release()
			}
		})
	}
}

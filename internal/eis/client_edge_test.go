package eis

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// A 200 response with a non-JSON body must surface a decode error, not a
// zero-value result.
func TestClientRejectsMalformedBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("<html>not json</html>"))
	}))
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Traffic(context.Background(), time.Now()); err == nil {
		t.Fatal("malformed body accepted")
	} else if !strings.Contains(err.Error(), "decoding") {
		t.Errorf("unexpected error: %v", err)
	}
}

// Error responses with JSON bodies carry the server's message through.
func TestClientSurfacesServerErrorMessage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"location not on the road network"}`))
	}))
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	_, err := client.Offering(context.Background(), OfferingRequest{Lat: 53, Lon: 8})
	if err == nil || !strings.Contains(err.Error(), "location not on the road network") {
		t.Fatalf("server message lost: %v", err)
	}
}

// Context cancellation aborts in-flight requests.
func TestClientHonorsContext(t *testing.T) {
	blocked := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-blocked
	}))
	defer ts.Close()
	defer close(blocked)
	client := NewClient(ts.URL, &http.Client{})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.Traffic(ctx, time.Now()); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation not honored promptly")
	}
}

// Oversized response bodies are truncated by the client's read limit
// rather than exhausting memory; the decode then fails cleanly.
func TestClientBoundsResponseSize(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"multiplier":{"local":{"min":1,"max":`))
		filler := strings.Repeat(" ", 9<<20)
		w.Write([]byte(filler))
		w.Write([]byte(`2}}}`))
	}))
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Traffic(context.Background(), time.Now()); err == nil {
		t.Fatal("9 MB body accepted despite the 8 MB limit")
	}
}

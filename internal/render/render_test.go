package render

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

func renderWorld(t testing.TB) (*cknn.Env, trajectory.Trip) {
	t.Helper()
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 6, HeightKM: 5,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 4, Seed: 1,
	})
	avail := ec.NewAvailabilityModel(2)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	env, err := cknn.NewEnv(g, set, ec.NewSolarModel(4), avail, ec.NewTrafficModel(5), cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	trips, err := trajectory.Generate(g, trajectory.GenConfig{
		N: 1, Seed: 6, MinTripKM: 4, MaxTripKM: 7,
		Start: time.Date(2024, 6, 18, 10, 0, 0, 0, time.UTC), Window: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, trips[0]
}

func TestWriteSVGComplete(t *testing.T) {
	env, trip := renderWorld(t)
	method := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 8000})
	opts := cknn.TripOptions{K: 3, SegmentLenM: 2000, RadiusM: 8000}
	results := cknn.RunTrip(env, method, trip, opts)
	sl := cknn.SplitList(env, method, trip, opts)

	m := NewMap(env.Graph.Bounds(), Options{WidthPx: 800, ShowChargers: true})
	m.AddRoadNetwork(env.Graph)
	m.AddChargers(env.Chargers)
	m.AddTrip(env.Graph, trip.Path)
	m.AddOfferingTable(results[0].Table)
	m.AddSplitPoints(sl)

	var buf bytes.Buffer
	if err := m.WriteSVG(&buf); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatal("not an SVG document")
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("document not closed")
	}
	for name, want := range map[string]string{
		"road edges":     "<line",
		"charger dots":   `fill="#7fb069"`,
		"trip polyline":  "<polyline",
		"offering marks": `fill="#dd6b20"`,
		"split markers":  `fill="#b83280"`,
		"legend text":    "offering table",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %s (%q)", name, want)
		}
	}
	// All drawn coordinates must be inside the viewBox (no negative pixels).
	if strings.Contains(svg, `x1="-`) || strings.Contains(svg, `cx="-`) {
		t.Error("negative coordinates in SVG")
	}
	// Ranked markers numbered from 1.
	if !strings.Contains(svg, ">1</text>") {
		t.Error("rank labels missing")
	}
}

func TestMaxEdgesCap(t *testing.T) {
	env, _ := renderWorld(t)
	m := NewMap(env.Graph.Bounds(), Options{WidthPx: 400, MaxEdges: 100})
	m.AddRoadNetwork(env.Graph)
	var buf bytes.Buffer
	if err := m.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "<line")
	if lines > 110 {
		t.Errorf("edge cap ignored: %d lines drawn", lines)
	}
	if lines == 0 {
		t.Error("no edges drawn at all")
	}
}

func TestDegenerateBounds(t *testing.T) {
	p := geo.Point{Lat: 53, Lon: 8}
	m := NewMap(geo.BBox{Min: p, Max: p}, Options{})
	var buf bytes.Buffer
	if err := m.WriteSVG(&buf); err != nil {
		t.Fatalf("degenerate bounds: %v", err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no document emitted")
	}
}

func TestEmptyTripIgnored(t *testing.T) {
	env, _ := renderWorld(t)
	m := NewMap(env.Graph.Bounds(), Options{})
	m.AddTrip(env.Graph, roadnet.Path{})
	var buf bytes.Buffer
	if err := m.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<polyline") {
		t.Error("empty trip drew a polyline")
	}
}

// Taxi idle-time hoarding: the paper's first motivating scenario (§I). An
// electric taxi fleet idles between rides in a dense downtown; during each
// idle window the driver asks EcoCharge where to hoard renewable energy.
// The example compares the chargers EcoCharge recommends against what a
// purely distance-based pick (the Index-Quadtree baseline) would choose,
// and prints how much estimated clean charge each policy accumulates over
// a shift.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

func main() {
	// Beijing-style dense downtown, T-drive-like.
	graph := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin:  geo.Point{Lat: 39.85, Lon: 116.30},
		WidthKM: 15, HeightKM: 12, SpacingM: 450,
		RemoveFrac: 0.06, JitterFrac: 0.2, ArterialEach: 4, Seed: 21,
	})
	solar := ec.NewSolarModel(5)
	avail := ec.NewAvailabilityModel(6)
	traffic := ec.NewTrafficModel(7)
	chargers, err := charger.Generate(graph, avail, charger.GenConfig{N: 200, Seed: 8, ClusterFrac: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	env, err := cknn.NewEnv(graph, chargers, solar, avail, traffic, cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		log.Fatal(err)
	}
	eco := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 8000, ReuseDistM: 3000})
	nearest := cknn.NewIndexQuadtree(env)
	engine := cknn.Engine{Env: env}

	// A shift: the taxi's GPS stream is a sequence of rides with parked
	// gaps; the idle detector finds the hoarding opportunities, exactly the
	// paper's §I scenario.
	rng := rand.New(rand.NewSource(99))
	// 01:00 UTC is ~08:45 local solar time at Beijing longitudes.
	day := time.Date(2024, 6, 18, 1, 0, 0, 0, time.UTC)
	stream := taxiShift(graph, rng, day)
	idles := trajectory.DetectIdlePeriods(stream, trajectory.IdleConfig{MinDuration: 20 * time.Minute})
	if len(idles) == 0 {
		log.Fatal("no idle periods detected in the shift")
	}
	fmt.Printf("detected %d idle windows in the shift's GPS stream\n\n", len(idles))

	var ecoClean, nearClean float64
	fmt.Println("idle window      EcoCharge pick                    nearest-first pick")
	for i, idle := range idles {
		at := idle.Start
		node := graph.NearestNode(idle.Center)
		q := cknn.Query{
			Anchor: graph.Node(node).P, AnchorNode: node, ReturnNode: node,
			Now: at, ETABase: at, K: 1, RadiusM: 8000,
		}
		eco.Reset() // each idle window is a fresh stop
		ecoPick, ok1 := eco.Rank(q).Top()
		nearPick, ok2 := nearest.Rank(q).Top()
		if !ok1 || !ok2 {
			log.Fatalf("window %d: no chargers found", i)
		}
		tm := engine.TruthMaps(q)
		ecoSC, _ := engine.TruthSC(q, tm, ecoPick.Charger)
		nearSC, _ := engine.TruthSC(q, tm, nearPick.Charger)

		// Clean energy hoarded over the detected idle window at each pick.
		ecoKWh := cleanKWh(solar, ecoPick.Charger, at, idle.Duration())
		nearKWh := cleanKWh(solar, nearPick.Charger, at, idle.Duration())
		ecoClean += ecoKWh
		nearClean += nearKWh

		fmt.Printf("%s    charger %-4d SC=%.2f  %4.1f kWh    charger %-4d SC=%.2f  %4.1f kWh\n",
			at.Format("15:04"),
			ecoPick.Charger.ID, ecoSC, ecoKWh,
			nearPick.Charger.ID, nearSC, nearKWh)
	}
	fmt.Printf("\nclean energy hoarded over the shift: EcoCharge %.1f kWh vs nearest-first %.1f kWh\n",
		ecoClean, nearClean)
	if ecoClean > nearClean {
		fmt.Println("→ renewable hoarding with CkNN-EC beats distance-only selection.")
	}
}

// taxiShift synthesizes one taxi's GPS day: rides between random nodes
// with 25-40 minute parked gaps between them.
func taxiShift(g *roadnet.Graph, rng *rand.Rand, start time.Time) trajectory.Trajectory {
	stream := trajectory.Trajectory{ID: 1}
	at := start
	for ride := 0; ride < 6; ride++ {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		path, ok := g.ShortestPath(src, dst, roadnet.DistanceWeight)
		if !ok || len(path.Nodes) < 2 {
			continue
		}
		leg := trajectory.Sample(g, trajectory.Trip{ID: 1, Path: path, Depart: at}, 30*time.Second)
		stream.Points = append(stream.Points, leg.Points...)
		at = leg.Points[len(leg.Points)-1].T
		// Parked: samples every 2 minutes at the drop-off point.
		gap := time.Duration(25+rng.Intn(16)) * time.Minute
		spot := leg.Points[len(leg.Points)-1].P
		for t := at.Add(2 * time.Minute); t.Before(at.Add(gap)); t = t.Add(2 * time.Minute) {
			stream.Points = append(stream.Points, trajectory.TimedPoint{P: spot, T: t})
		}
		at = at.Add(gap)
	}
	return stream
}

// cleanKWh integrates the truth production (capped by the charger's rate)
// over an idle window in 5-minute steps.
func cleanKWh(solar *ec.SolarModel, c *charger.Charger, from time.Time, idle time.Duration) float64 {
	const step = 5 * time.Minute
	var kwh float64
	for t := from; t.Before(from.Add(idle)); t = t.Add(step) {
		kw := solar.Truth(c.Site(), t)
		if rate := c.Rate.KW(); kw > rate {
			kw = rate
		}
		kwh += kw * step.Hours()
	}
	return kwh
}

// Command gateway fronts a sharded EIS fleet: it health-checks the member
// instances, fans queries out with per-shard deadlines and hedged replicas,
// and merges per-shard Offering Tables into the table a single EIS over the
// whole inventory would serve. Chargers owned by an unreachable shard stay
// in every table at the ignorance bound, tagged shard-degraded, instead of
// silently disappearing.
//
// Each shard is "primary" or "primary|replica"; shards are comma-separated
// and their order must match the -shard i/n indexes the members were
// started with:
//
//	eis -addr :8081 -shard 0/2 &
//	eis -addr :8082 -shard 1/2 &
//	gateway -addr :8080 -shards http://localhost:8081,http://localhost:8082
//
// SIGINT/SIGTERM trigger a graceful shutdown: probing stops, the listener
// closes, and in-flight requests get the drain deadline to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecocharge/internal/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shardsArg = flag.String("shards", "", `comma-separated shard base URLs, each "primary" or "primary|replica", in shard-index order`)
		timeout   = flag.Duration("shard-timeout", 2*time.Second, "per-shard deadline of one fan-out exchange")
		hedge     = flag.Duration("hedge", 250*time.Millisecond, "delay before hedging a slow primary to its replica (negative disables hedging)")
		probeIvl  = flag.Duration("probe-interval", 2*time.Second, "active health-check period")
		threshold = flag.Int("breaker-threshold", 5, "consecutive shard faults that open its breaker")
		cooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open time before a shard breaker admits its half-open trial")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")
		wireFmt   = flag.Bool("wire", true, "negotiate the compact binary format on shard exchanges (shards without the codec keep answering JSON)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	shards, err := parseShards(*shardsArg)
	if err != nil {
		logger.Fatalf("gateway: %v", err)
	}
	gw, err := fleet.NewGateway(shards, fleet.Options{
		ShardTimeout:     *timeout,
		HedgeDelay:       *hedge,
		ProbeInterval:    *probeIvl,
		BreakerThreshold: *threshold,
		BreakerCooldown:  *cooldown,
		Logger:           logger,
		WireShards:       *wireFmt,
	})
	if err != nil {
		logger.Fatalf("gateway: %v", err)
	}
	logger.Printf("gateway: fronting %d shards on %s", len(shards), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go gw.Run(ctx)
	if err := run(ctx, *addr, gw.Handler(), *drain, logger); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

// parseShards splits the -shards value into fleet members.
func parseShards(arg string) ([]fleet.Shard, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, fmt.Errorf("-shards is required (comma-separated shard URLs)")
	}
	var out []fleet.Shard
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("-shards has an empty entry")
		}
		primary, replica, _ := strings.Cut(part, "|")
		out = append(out, fleet.Shard{URL: strings.TrimSuffix(primary, "/"), Replica: strings.TrimSuffix(replica, "/")})
	}
	return out, nil
}

// run serves until the context is cancelled, then drains in-flight requests
// for up to drain before forcing connections closed (same lifecycle as
// cmd/eis).
func run(ctx context.Context, addr string, handler http.Handler, drain time.Duration, logger *log.Logger) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Printf("gateway: shutdown signal received, draining for up to %v", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("gateway: drained, bye")
	return nil
}

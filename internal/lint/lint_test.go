package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expect.txt files")

// golden runs one analyzer over its fixture package and compares the
// rendered diagnostics with testdata/src/<name>/expect.txt.
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		analyzer   *Analyzer
		importPath string
	}{
		// Import paths are chosen so the path-sensitive analyzers
		// (libprint wants internal/, intervalliteral must not be
		// internal/interval itself) see a realistic location.
		{IntervalLiteral, "ecocharge/internal/lintfixture/intervalliteral"},
		{FloatEq, "ecocharge/internal/lintfixture/floateq"},
		{ErrIgnore, "ecocharge/internal/lintfixture/errignore"},
		{NakedGo, "ecocharge/internal/lintfixture/nakedgo"},
		{LibPrint, "ecocharge/internal/lintfixture/libprint"},
		{HTTPServer, "ecocharge/internal/lintfixture/httpserver"},
		// hotalloc only fires inside internal/roadnet, so the fixture
		// masquerades as that package.
		{HotAlloc, "ecocharge/internal/lintfixture/internal/roadnet"},
		// obsalloc fires in internal/cknn and internal/roadnet; the fixture
		// masquerades as the former.
		{ObsAlloc, "ecocharge/internal/lintfixture/internal/cknn"},
		{LeakRelease, "ecocharge/internal/lintfixture/leakrelease"},
		// lockheld only fires in the hot packages; pose as internal/cknn.
		{LockHeld, "ecocharge/internal/lintfixture/internal/cknn"},
		// ctxflow's loop rule only fires in server/worker packages; pose as
		// internal/eis so both rules are active.
		{CtxFlow, "ecocharge/internal/lintfixture/internal/eis"},
		{BareDirective, "ecocharge/internal/lintfixture/baredirective"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.analyzer.Name)
			pkg, err := LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			if len(diags) == 0 {
				t.Fatalf("analyzer %s produced no diagnostics on its fixture; want at least one true positive", tc.analyzer.Name)
			}
			var b strings.Builder
			for _, d := range diags {
				if d.Analyzer != tc.analyzer.Name {
					t.Errorf("diagnostic attributed to %q, want %q", d.Analyzer, tc.analyzer.Name)
				}
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.File), d.Line, d.Col, d.Analyzer, d.Message)
			}
			got := b.String()

			golden := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (run `go test ./internal/lint -update` to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want (%s) ---\n%s", got, golden, want)
			}
		})
	}
}

// The fixtures bundle a //ecolint:ignore example per analyzer; this test
// pins down that the directive actually silences findings (the golden
// files would also drift, but a direct check gives a clearer failure).
func TestSuppression(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floateq")
	pkg, err := LoadDir(dir, "ecocharge/internal/lintfixture/floateq")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{FloatEq}) {
		line := lineOf(t, filepath.Join(dir, filepath.Base(d.File)), d.Line)
		if strings.Contains(line, "SentinelSuppressed") || strings.Contains(line, "x == 0") {
			t.Errorf("finding on suppressed line %d: %s", d.Line, d.Message)
		}
	}
}

func lineOf(t *testing.T, file string, n int) string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

func TestByName(t *testing.T) {
	for _, a := range All {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := ByName("nonexistent"); got != nil {
		t.Errorf("ByName(nonexistent) = %v, want nil", got)
	}
}

// TestLoadRealPackage exercises the go-list loader against the repository
// itself: the interval package must load, type-check and come back clean.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", []string{"./internal/interval"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "ecocharge/internal/interval" {
		t.Errorf("ImportPath = %q", pkg.ImportPath)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil {
		t.Fatalf("package not fully loaded: %+v", pkg)
	}
	if diags := Run(pkgs, All); len(diags) != 0 {
		t.Errorf("internal/interval not baseline-clean: %v", diags)
	}
}

package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/stats"
	"ecocharge/internal/trajectory"
)

// AblationFunction names one distance function of the Fig. 9 ablation.
type AblationFunction struct {
	Name    string
	Weights cknn.Weights
}

// AblationFunctions returns the paper's four configurations: AWE (all
// weights equal — the EcoCharge default), OSC (only sustainable charging),
// OA (only availability) and ODC (only derouting cost).
func AblationFunctions() []AblationFunction {
	return []AblationFunction{
		{Name: "AWE", Weights: cknn.EqualWeights()},
		{Name: "OSC", Weights: cknn.OnlyL()},
		{Name: "OA", Weights: cknn.OnlyA()},
		{Name: "ODC", Weights: cknn.OnlyD()},
	}
}

// RunAblation executes the Fig. 9 series on one scenario: EcoCharge ranks
// with each ablated distance function, but every chosen set is *scored*
// under the equal-weight truth SC against the equal-weight brute-force
// optimum — isolating what the weight configuration costs. The achieved
// objective shares (the w1/w2/w3 percentages the figure annotates) are the
// fractions of the truth score mass contributed by each objective.
// Repetitions run concurrently on the config's worker pool (each owns its
// RNG seed and method instances) and are folded in repetition order.
func RunAblation(ctx context.Context, sc *Scenario, cfg RunConfig) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if len(sc.Trips) == 0 {
		return nil, fmt.Errorf("experiment: scenario %s has no trips", sc.Name)
	}
	engine := cknn.Engine{Env: sc.Env}
	eqW := cknn.EqualWeights()
	fns := AblationFunctions()

	type shareAcc struct{ l, a, d float64 }
	type repOut struct {
		truth   map[string]float64
		ftMS    map[string][]float64
		shares  map[string]*shareAcc
		queries map[string]int
		denom   float64
	}
	outs := make([]repOut, cfg.Repetitions)
	err := forEachCell(ctx, cfg.Repetitions, cfg.Workers, func(rep int) {
		rng := rand.New(rand.NewSource(sc.Seed*1000 + int64(rep)))
		trips := sampleTrips(rng, sc.Trips, cfg.TripsPerRep)

		bf := cknn.NewBruteForce(sc.Env)
		methods := make(map[string]cknn.Method, len(fns))
		o := repOut{
			truth:   make(map[string]float64),
			ftMS:    make(map[string][]float64),
			shares:  make(map[string]*shareAcc),
			queries: make(map[string]int),
		}
		for _, fn := range fns {
			methods[fn.Name] = cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{
				RadiusM: cfg.RadiusM, ReuseDistM: cfg.ReuseDistM,
			})
			o.shares[fn.Name] = &shareAcc{}
		}

		for _, trip := range trips {
			segs := trajectory.SegmentTrip(sc.Graph, trip, cfg.SegmentLenM)
			for _, m := range methods {
				m.Reset()
			}
			bf.Reset()
			for _, seg := range segs {
				baseQ := cknn.QueryForSegment(trip, seg, cknn.TripOptions{
					K: cfg.K, SegmentLenM: cfg.SegmentLenM, RadiusM: cfg.RadiusM, Weights: eqW,
				})
				tm := engine.TruthMaps(baseQ)
				// Denominator: brute force under equal weights.
				for _, e := range bf.Rank(baseQ).Entries {
					if v, ok := engine.TruthSC(baseQ, tm, e.Charger); ok {
						o.denom += v
					}
				}
				for _, fn := range fns {
					q := baseQ
					q.Weights = fn.Weights
					start := time.Now()
					table := methods[fn.Name].Rank(q)
					o.ftMS[fn.Name] = append(o.ftMS[fn.Name], float64(time.Since(start))/float64(time.Millisecond))
					o.queries[fn.Name]++
					acc := o.shares[fn.Name]
					for _, e := range table.Entries {
						l, a, dc, ok := engine.TruthComponents(baseQ, tm, e.Charger)
						if !ok {
							continue
						}
						// Scored under equal weights regardless of the
						// ranking function.
						o.truth[fn.Name] += (l + a + dc) / 3
						acc.l += l
						acc.a += a
						acc.d += dc
					}
				}
			}
		}
		outs[rep] = o
	})
	if err != nil {
		return nil, err
	}

	scPct := make(map[string][]float64)
	ft := make(map[string][]float64)
	shares := make(map[string]*shareAcc)
	queries := make(map[string]int)
	for _, fn := range fns {
		shares[fn.Name] = &shareAcc{}
	}
	for _, o := range outs {
		for _, fn := range fns {
			if o.denom > 0 {
				scPct[fn.Name] = append(scPct[fn.Name], o.truth[fn.Name]/o.denom*100)
			}
			ft[fn.Name] = append(ft[fn.Name], stats.Mean(o.ftMS[fn.Name]))
			queries[fn.Name] += o.queries[fn.Name]
			shares[fn.Name].l += o.shares[fn.Name].l
			shares[fn.Name].a += o.shares[fn.Name].a
			shares[fn.Name].d += o.shares[fn.Name].d
		}
	}

	out := make([]Measurement, 0, len(fns))
	for _, fn := range fns {
		acc := shares[fn.Name]
		total := acc.l + acc.a + acc.d
		m := Measurement{
			Dataset:   sc.Name,
			Method:    fn.Name,
			Config:    "ablation",
			SCPercent: stats.Summarize(scPct[fn.Name]),
			FtMillis:  stats.Summarize(ft[fn.Name]),
			Queries:   queries[fn.Name],
		}
		if total > 0 {
			m.Shares = ObjectiveShares{L: acc.l / total, A: acc.a / total, D: acc.d / total}
		}
		out = append(out, m)
	}
	return out, nil
}

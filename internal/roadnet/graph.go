// Package roadnet models the directed weighted road network G = (V, E) of
// the paper's system model (§II.A): nodes carry spatial coordinates, edges
// carry a travel weight, and shortest paths between locations provide the
// derouting cost D. The package also ships the synthetic network generators
// that stand in for the Oldenburg / California road graphs (see DESIGN.md,
// substitution table).
package roadnet

import (
	"fmt"
	"math"
	"sync"

	"ecocharge/internal/geo"
	"ecocharge/internal/spatial"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..NumNodes-1.
type NodeID int32

// Invalid is the sentinel for "no node".
const Invalid NodeID = -1

// RoadClass categorizes edges; the traffic model assigns different
// free-flow speeds and congestion profiles per class.
type RoadClass uint8

// Road classes, from local streets up to motorways.
const (
	ClassLocal RoadClass = iota
	ClassArterial
	ClassHighway
	ClassMotorway
	numRoadClasses
)

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassArterial:
		return "arterial"
	case ClassHighway:
		return "highway"
	case ClassMotorway:
		return "motorway"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// FreeFlowSpeed returns the class's nominal speed in m/s.
func (c RoadClass) FreeFlowSpeed() float64 {
	switch c {
	case ClassLocal:
		return 30.0 / 3.6
	case ClassArterial:
		return 50.0 / 3.6
	case ClassHighway:
		return 80.0 / 3.6
	case ClassMotorway:
		return 110.0 / 3.6
	}
	return 50.0 / 3.6
}

// Node is a road-network vertex.
type Node struct {
	ID NodeID
	P  geo.Point
}

// Edge is a directed road segment.
type Edge struct {
	From, To NodeID
	Length   float64 // meters
	Class    RoadClass
}

// Graph is a directed weighted road network. Build it with AddNode/AddEdge,
// then call Freeze before querying; Freeze constructs the adjacency arrays
// and the nearest-node index. The zero value is an empty, unfrozen graph.
type Graph struct {
	nodes  []Node
	edges  []Edge
	adj    [][]int32 // node -> indexes into edges
	radj   [][]int32 // reverse adjacency, for return-trip costs
	index  *spatial.Quadtree
	pool   *sync.Pool // recycled searchState scratch (see flat.go); set by Freeze
	frozen bool
}

// NewGraph returns an empty graph with capacity hints.
func NewGraph(nodeHint, edgeHint int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, nodeHint),
		edges: make([]Edge, 0, edgeHint),
	}
}

// AddNode appends a node at p and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	if g.frozen {
		panic("roadnet: AddNode on frozen graph")
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, P: p})
	return id
}

// AddEdge appends a directed edge. Length ≤ 0 is replaced by the geodesic
// distance between endpoints. It panics on unknown node IDs: a malformed
// graph is a programming error, not a runtime condition.
func (g *Graph) AddEdge(from, to NodeID, length float64, class RoadClass) {
	if g.frozen {
		panic("roadnet: AddEdge on frozen graph")
	}
	if !g.validID(from) || !g.validID(to) {
		panic(fmt.Sprintf("roadnet: AddEdge with invalid node %d -> %d (have %d nodes)", from, to, len(g.nodes)))
	}
	if length <= 0 {
		length = geo.Distance(g.nodes[from].P, g.nodes[to].P)
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Length: length, Class: class})
}

// AddBidirectional adds the edge in both directions.
func (g *Graph) AddBidirectional(a, b NodeID, length float64, class RoadClass) {
	g.AddEdge(a, b, length, class)
	g.AddEdge(b, a, length, class)
}

func (g *Graph) validID(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// Freeze finalizes the graph: adjacency lists and the spatial index become
// available, and further mutation panics. Freeze is idempotent.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	g.adj = make([][]int32, len(g.nodes))
	g.radj = make([][]int32, len(g.nodes))
	for i, e := range g.edges {
		g.adj[e.From] = append(g.adj[e.From], int32(i))
		g.radj[e.To] = append(g.radj[e.To], int32(i))
	}
	if len(g.nodes) > 0 {
		pts := make([]geo.Point, len(g.nodes))
		for i, n := range g.nodes {
			pts[i] = n.P
		}
		g.index = spatial.NewQuadtree(geo.NewBBox(pts...), 0)
		for _, n := range g.nodes {
			g.index.Insert(spatial.Item{P: n.P, ID: int64(n.ID)})
		}
	}
	g.initSearchPool()
	g.frozen = true
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node {
	if !g.validID(id) {
		panic(fmt.Sprintf("roadnet: Node(%d) out of range", id))
	}
	return g.nodes[id]
}

// Edges returns the raw edge slice; callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// OutEdges calls fn for each edge leaving id.
func (g *Graph) OutEdges(id NodeID, fn func(Edge)) {
	g.mustFrozen()
	for _, ei := range g.adj[id] {
		fn(g.edges[ei])
	}
}

// InEdges calls fn for each edge entering id.
func (g *Graph) InEdges(id NodeID, fn func(Edge)) {
	g.mustFrozen()
	for _, ei := range g.radj[id] {
		fn(g.edges[ei])
	}
}

func (g *Graph) mustFrozen() {
	if !g.frozen {
		panic("roadnet: graph not frozen; call Freeze before querying")
	}
}

// Bounds returns the bounding box of all nodes. It panics on an empty graph.
func (g *Graph) Bounds() geo.BBox {
	if len(g.nodes) == 0 {
		panic("roadnet: Bounds of empty graph")
	}
	g.mustFrozen()
	return g.index.Bounds()
}

// NearestNode snaps p to the closest node (map-matching in the simplest
// form the paper needs: GPS points become query nodes). It returns Invalid
// on an empty graph.
func (g *Graph) NearestNode(p geo.Point) NodeID {
	g.mustFrozen()
	if g.index == nil {
		return Invalid
	}
	ns := g.index.KNN(p, 1)
	if len(ns) == 0 {
		return Invalid
	}
	return NodeID(ns[0].ID)
}

// NodesWithin returns the node IDs within radius meters of p, closest first.
func (g *Graph) NodesWithin(p geo.Point, radius float64) []NodeID {
	g.mustFrozen()
	if g.index == nil {
		return nil
	}
	ns := g.index.Within(p, radius)
	out := make([]NodeID, len(ns))
	for i, n := range ns {
		out[i] = NodeID(n.ID)
	}
	return out
}

// Path is a node sequence through the graph together with its total weight.
type Path struct {
	Nodes  []NodeID
	Weight float64 // sum of edge weights under the metric used to compute it
}

// Points converts the path to its polyline.
func (g *Graph) Points(p Path) []geo.Point {
	pts := make([]geo.Point, len(p.Nodes))
	for i, id := range p.Nodes {
		pts[i] = g.Node(id).P
	}
	return pts
}

// LengthMeters returns the physical length of the path in meters
// (independent of the weight metric used to find it).
func (g *Graph) LengthMeters(p Path) float64 {
	var total float64
	for i := 1; i < len(p.Nodes); i++ {
		total += geo.Distance(g.Node(p.Nodes[i-1]).P, g.Node(p.Nodes[i]).P)
	}
	return total
}

// WeightFunc maps an edge to its traversal cost. Costs must be positive and
// finite; math.Inf(1) marks an impassable edge.
type WeightFunc func(Edge) float64

// DistanceWeight is the plain length metric.
func DistanceWeight(e Edge) float64 { return e.Length }

// TimeWeight is free-flow travel time in seconds.
func TimeWeight(e Edge) float64 { return e.Length / e.Class.FreeFlowSpeed() }

// EnergyWeight approximates traction energy in kWh for a typical compact EV
// (≈0.16 kWh/km on locals, rising with speed due to drag).
func EnergyWeight(e Edge) float64 {
	perKM := 0.16
	switch e.Class {
	case ClassArterial:
		perKM = 0.15
	case ClassHighway:
		perKM = 0.17
	case ClassMotorway:
		perKM = 0.20
	}
	return e.Length / 1000 * perKM
}

// Blocked is the weight of an impassable edge.
var Blocked = math.Inf(1)

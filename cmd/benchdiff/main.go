// Command benchdiff compares two ecobench -json exports and reports the
// per-method filtering-time (ft_ms) deltas. It exits nonzero when any method
// shared by both files regressed beyond the tolerance, which lets CI gate on
// `make bench-diff` against the committed seed baseline.
//
// Example:
//
//	benchdiff -seed BENCH_seed.json -current bench-current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// row mirrors the ecobench benchRow export shape; unknown fields are
// ignored so the tool reads old and new exports alike. Goodput is the
// loadgen export's valid-answers-per-second column: zero on ecobench rows
// (absent field), so the goodput gate only engages on load rows where
// both files carry it.
type row struct {
	Fig     string  `json:"fig"`
	Dataset string  `json:"dataset"`
	Method  string  `json:"method"`
	Config  string  `json:"config"`
	SCPct   float64 `json:"sc_pct"`
	FtMs    float64 `json:"ft_ms"`
	Goodput float64 `json:"goodput"`
}

func (r row) key() string {
	return strings.Join([]string{r.Fig, r.Dataset, r.Method, r.Config}, "|")
}

// delta is one seed-vs-current comparison.
type delta struct {
	key        string
	seed, cur  row
	pct        float64 // ft_ms change in percent; positive = slower
	regressed  bool
	goodputHit bool // the goodput gate (not just ft_ms) tripped
	onlyInOne  bool
	missingIn  string
}

func main() {
	var (
		seedPath = flag.String("seed", "BENCH_seed.json", "baseline ecobench -json export")
		curPath  = flag.String("current", "bench-current.json", "current ecobench -json export")
		tol      = flag.Float64("tolerance", 0.10, "relative ft_ms regression tolerance (0.10 = +10%)")
		slackMs  = flag.Float64("slack-ms", 0.25, "absolute ft_ms slack: smaller deltas never count as regressions (absorbs timer noise on sub-ms methods)")
		gtol     = flag.Float64("goodput-tolerance", 0.15, "relative goodput regression tolerance (0.15 = -15%); only applied to rows where both files report goodput")
		gslack   = flag.Float64("goodput-slack", 5.0, "absolute goodput slack in answers/s: smaller drops never count as regressions")
		report   = flag.String("report", "", "also write the text report to this file")
	)
	flag.Parse()

	seed, err := readRows(*seedPath)
	if err != nil {
		fatal(err)
	}
	cur, err := readRows(*curPath)
	if err != nil {
		fatal(err)
	}
	deltas := compare(seed, cur, gates{tol: *tol, slackMs: *slackMs, gtol: *gtol, gslack: *gslack})

	var b strings.Builder
	render(&b, *seedPath, *curPath, deltas, *tol, *slackMs)
	fmt.Print(b.String())
	if *report != "" {
		if err := os.WriteFile(*report, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	for _, d := range deltas {
		if d.regressed {
			fmt.Fprintln(os.Stderr, "benchdiff: regression beyond tolerance")
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func readRows(path string) (map[string]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]row, len(rows))
	for _, r := range rows {
		out[r.key()] = r
	}
	return out, nil
}

// gates bundles the regression thresholds. ft_ms regresses upward
// (slower), goodput regresses downward (fewer valid answers per second);
// each gate needs both its relative tolerance and absolute slack exceeded.
type gates struct {
	tol, slackMs float64 // ft_ms: relative tolerance + absolute ms slack
	gtol, gslack float64 // goodput: relative tolerance + absolute answers/s slack
}

// compare pairs rows by (fig, dataset, method, config) and marks a
// regression when current ft_ms exceeds seed by more than the relative
// tolerance AND the absolute slack, or — on rows where both files report
// goodput — when current goodput drops below seed by more than the goodput
// tolerance AND slack. Rows present in only one file are reported but
// never fail the run (method sets may evolve across PRs).
func compare(seed, cur map[string]row, g gates) []delta {
	keys := make(map[string]bool, len(seed)+len(cur))
	for k := range seed {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	var out []delta
	for k := range keys {
		s, inSeed := seed[k]
		c, inCur := cur[k]
		d := delta{key: k, seed: s, cur: c}
		switch {
		case !inSeed:
			d.onlyInOne, d.missingIn = true, "seed"
		case !inCur:
			d.onlyInOne, d.missingIn = true, "current"
		default:
			if s.FtMs > 0 {
				d.pct = (c.FtMs - s.FtMs) / s.FtMs * 100
			}
			d.regressed = c.FtMs > s.FtMs*(1+g.tol) && c.FtMs-s.FtMs > g.slackMs
			if s.Goodput > 0 && c.Goodput > 0 &&
				c.Goodput < s.Goodput*(1-g.gtol) && s.Goodput-c.Goodput > g.gslack {
				d.regressed, d.goodputHit = true, true
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func render(w io.Writer, seedPath, curPath string, deltas []delta, tol, slackMs float64) {
	_, _ = fmt.Fprintf(w, "benchdiff: %s vs %s (tolerance +%.0f%%, slack %.2f ms)\n\n", seedPath, curPath, tol*100, slackMs)
	_, _ = fmt.Fprintf(w, "%-44s %10s %10s %8s %8s %9s  %s\n", "fig|dataset|method|config", "seed ms", "cur ms", "Δ%", "sc_pct", "goodput", "status")
	for _, d := range deltas {
		if d.onlyInOne {
			_, _ = fmt.Fprintf(w, "%-44s %10s %10s %8s %8s %9s  only in %s\n", d.key, "-", "-", "-", "-", "-",
				map[string]string{"seed": "current file", "current": "seed file"}[d.missingIn])
			continue
		}
		status := "ok"
		switch {
		case d.regressed && d.goodputHit:
			status = "REGRESSED (goodput)"
		case d.regressed:
			status = "REGRESSED"
		case d.pct < -5:
			status = "improved"
		}
		goodput := "-"
		if d.seed.Goodput > 0 || d.cur.Goodput > 0 {
			goodput = fmt.Sprintf("%.1f/s", d.cur.Goodput)
		}
		_, _ = fmt.Fprintf(w, "%-44s %10.3f %10.3f %+7.1f%% %8.1f %9s  %s\n",
			d.key, d.seed.FtMs, d.cur.FtMs, d.pct, d.cur.SCPct, goodput, status)
	}
}

package cknn

import (
	"math"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

var queryTime = time.Date(2024, 6, 18, 9, 30, 0, 0, time.UTC)

// testEnv builds a small but realistic world shared across the package's
// tests: a 10×8 km urban grid with 150 chargers.
func testEnv(t testing.TB) *Env {
	t.Helper()
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 10, HeightKM: 8,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 1,
	})
	avail := ec.NewAvailabilityModel(11)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: 150, Seed: 12})
	if err != nil {
		t.Fatalf("charger.Generate: %v", err)
	}
	env, err := NewEnv(g, set, ec.NewSolarModel(13), avail, ec.NewTrafficModel(14), EnvConfig{RadiusM: 10000})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func testQuery(env *Env) Query {
	anchor := env.Graph.Node(roadnet.NodeID(env.Graph.NumNodes() / 2))
	return Query{
		Anchor:     anchor.P,
		AnchorNode: anchor.ID,
		ReturnNode: anchor.ID,
		Now:        queryTime,
		ETABase:    queryTime.Add(10 * time.Minute),
		K:          3,
		RadiusM:    10000,
	}
}

func TestWeights(t *testing.T) {
	if err := EqualWeights().Validate(); err != nil {
		t.Fatal(err)
	}
	w := EqualWeights()
	if math.Abs(w.L+w.A+w.D-1) > 1e-12 {
		t.Errorf("equal weights sum to %v", w.L+w.A+w.D)
	}
	n := (Weights{L: 2, A: 1, D: 1}).Normalized()
	if math.Abs(n.L-0.5) > 1e-12 || math.Abs(n.A-0.25) > 1e-12 {
		t.Errorf("Normalized = %+v", n)
	}
	if err := (Weights{L: -1, A: 1, D: 1}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (Weights{}).Validate(); err == nil {
		t.Error("zero weights accepted")
	}
	for _, w := range []Weights{OnlyL(), OnlyA(), OnlyD()} {
		if err := w.Validate(); err != nil {
			t.Errorf("single-objective weights invalid: %+v", w)
		}
	}
}

func TestComponentsSCMatchesEquations(t *testing.T) {
	c := Components{
		L: interval.New(0.6, 0.9),
		A: interval.New(0.3, 0.5),
		D: interval.New(0.1, 0.4),
	}
	sc := c.SC(EqualWeights())
	wantMin := (0.6 + 0.3 + (1 - 0.4)) / 3
	wantMax := (0.9 + 0.5 + (1 - 0.1)) / 3
	if math.Abs(sc.Min-wantMin) > 1e-12 || math.Abs(sc.Max-wantMax) > 1e-12 {
		t.Fatalf("SC = %v, want [%v, %v]", sc, wantMin, wantMax)
	}
}

func mkEntry(id int64, min, max float64) Entry {
	return Entry{Charger: &charger.Charger{ID: id}, SC: interval.I{Min: min, Max: max}}
}

func TestRankIntersection(t *testing.T) {
	// Chargers 1 and 2 are in both top-2 rankings; 3 only leads on max,
	// 4 only on min.
	entries := []Entry{
		mkEntry(1, 0.8, 0.9),
		mkEntry(2, 0.7, 0.85),
		mkEntry(3, 0.1, 0.95), // wide: top by max, bottom by min
		mkEntry(4, 0.75, 0.76),
	}
	got := Rank(entries, 2)
	if len(got) != 2 {
		t.Fatalf("Rank returned %d entries", len(got))
	}
	// top-2 by max: {3, 1}; top-2 by min: {1, 4}; intersection: {1}; pad
	// with best remaining by max: 3.
	if got[0].Charger.ID != 1 {
		t.Errorf("first ranked = %d, want 1", got[0].Charger.ID)
	}
	ids := map[int64]bool{got[0].Charger.ID: true, got[1].Charger.ID: true}
	if !ids[3] {
		t.Errorf("padding should add charger 3 (best by SC_max): got %v", got)
	}
}

func TestRankIsSubsetAndSorted(t *testing.T) {
	entries := []Entry{
		mkEntry(1, 0.2, 0.4), mkEntry(2, 0.5, 0.6), mkEntry(3, 0.1, 0.9),
		mkEntry(4, 0.55, 0.58), mkEntry(5, 0.3, 0.35),
	}
	got := Rank(entries, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].SC.Mid() > got[i-1].SC.Mid() {
			t.Errorf("not sorted by midpoint at %d", i)
		}
	}
}

func TestRankEdgeCases(t *testing.T) {
	if got := Rank(nil, 3); got != nil {
		t.Errorf("Rank(nil) = %v", got)
	}
	if got := Rank([]Entry{mkEntry(1, 0.1, 0.2)}, 0); got != nil {
		t.Errorf("Rank k=0 = %v", got)
	}
	// k larger than pool returns the whole pool.
	got := Rank([]Entry{mkEntry(1, 0.1, 0.2), mkEntry(2, 0.3, 0.4)}, 10)
	if len(got) != 2 {
		t.Errorf("k>n returned %d", len(got))
	}
}

func TestRankDeterministicOnTies(t *testing.T) {
	entries := []Entry{mkEntry(3, 0.5, 0.5), mkEntry(1, 0.5, 0.5), mkEntry(2, 0.5, 0.5)}
	got := Rank(entries, 3)
	for i, want := range []int64{1, 2, 3} {
		if got[i].Charger.ID != want {
			t.Fatalf("tie order: got %v", got)
		}
	}
}

// Regression for the tie-breaking hardening: entries equal on the primary
// sort key must fall through the full (SC_max, SC_min, charger ID) order,
// so chargers with equal SC midpoints always emerge in ID order and no
// input permutation — in particular none a parallel evaluation could
// produce — changes the emitted table.
func TestRankTieBreakTotalOrder(t *testing.T) {
	entries := []Entry{
		mkEntry(5, 0.40, 0.60), // mid 0.50
		mkEntry(2, 0.45, 0.55), // mid 0.50, lower SC_max → after the 0.60 group
		mkEntry(9, 0.40, 0.60), // identical interval to 5 and 1 → ID order
		mkEntry(1, 0.40, 0.60),
	}
	want := []int64{1, 5, 9, 2}
	for perm := 0; perm < len(entries); perm++ {
		rotated := append(append([]Entry(nil), entries[perm:]...), entries[:perm]...)
		got := Rank(rotated, len(entries))
		for i, id := range want {
			if got[i].Charger.ID != id {
				t.Fatalf("permutation %d: order %v, want %v", perm, summarizeIDs(got), want)
			}
		}
	}
}

func summarizeIDs(entries []Entry) []int64 {
	ids := make([]int64, len(entries))
	for i, e := range entries {
		ids[i] = e.Charger.ID
	}
	return ids
}

func TestNewEnvValidation(t *testing.T) {
	env := testEnv(t)
	if env.MaxLKW <= 0 {
		t.Error("MaxLKW not derived")
	}
	if env.MaxDeroutSec <= 0 {
		t.Error("MaxDeroutSec not derived")
	}
	if _, err := NewEnv(nil, env.Chargers, env.Solar, env.Avail, env.Traffic, EnvConfig{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewEnv(env.Graph, nil, env.Solar, env.Avail, env.Traffic, EnvConfig{}); err == nil {
		t.Error("nil chargers accepted")
	}
	if _, err := NewEnv(env.Graph, env.Chargers, nil, env.Avail, env.Traffic, EnvConfig{}); err == nil {
		t.Error("nil solar accepted")
	}
}

func TestDeroutingCostProperties(t *testing.T) {
	env := testEnv(t)
	q := testQuery(env).normalized()
	d := env.deroutingMaps(q, math.Inf(1))

	// The anchor itself (= return node) has zero derouting.
	iv, ok := d.Cost(q.AnchorNode)
	if !ok {
		t.Fatal("anchor unreachable from itself")
	}
	if iv.Min != 0 {
		t.Errorf("derouting to anchor = %v, want min 0", iv)
	}
	// All costs are valid intervals with Min ≥ 0.
	for _, c := range env.Chargers.All() {
		iv, ok := d.Cost(c.Node)
		if !ok {
			continue
		}
		if !iv.Valid() || iv.Min < 0 {
			t.Fatalf("invalid derouting interval %v for charger %d", iv, c.ID)
		}
	}
}

func TestDeroutingZeroForOnRouteCharger(t *testing.T) {
	env := testEnv(t)
	q := testQuery(env).normalized()
	// Pick a return node one hop away and verify a "charger" exactly at the
	// return node has zero minimum derouting.
	var next roadnet.NodeID = -1
	env.Graph.OutEdges(q.AnchorNode, func(e roadnet.Edge) {
		if next < 0 {
			next = e.To
		}
	})
	if next < 0 {
		t.Skip("anchor has no outgoing edges")
	}
	q.ReturnNode = next
	d := env.deroutingMaps(q, math.Inf(1))
	iv, ok := d.Cost(next)
	if !ok {
		t.Fatal("return node unreachable")
	}
	if iv.Min > 1 { // up to a second of interval slack
		t.Errorf("on-route node derouting = %v, want ~0", iv)
	}
}

func TestEvaluateProducesNormalizedComponents(t *testing.T) {
	env := testEnv(t)
	eng := Engine{Env: env}
	q := testQuery(env).normalized()
	d := env.deroutingMaps(q, math.Inf(1))
	evaluated := 0
	for i := range env.Chargers.All() {
		c := &env.Chargers.All()[i]
		entry, ok := eng.evaluate(c, d, q)
		if !ok {
			continue
		}
		evaluated++
		for name, iv := range map[string]interval.I{"L": entry.Comp.L, "A": entry.Comp.A, "D": entry.Comp.D} {
			if !iv.Valid() || iv.Min < -1e-12 || iv.Max > 1+1e-12 {
				t.Fatalf("charger %d: component %s = %v not normalized", c.ID, name, iv)
			}
		}
		if entry.Comp.ETA.Before(q.ETABase) {
			t.Fatalf("charger %d: ETA before base", c.ID)
		}
		if !entry.SC.Valid() {
			t.Fatalf("charger %d: invalid SC %v", c.ID, entry.SC)
		}
	}
	if evaluated < 100 {
		t.Fatalf("only %d chargers evaluable", evaluated)
	}
}

func TestBruteForceTopKStructure(t *testing.T) {
	env := testEnv(t)
	bf := NewBruteForce(env)
	q := testQuery(env)
	table := bf.Rank(q)
	if len(table.Entries) != 3 {
		t.Fatalf("table has %d entries, want 3", len(table.Entries))
	}
	ids := table.IDs()
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate charger %d in table", id)
		}
		seen[id] = true
	}
	if top, ok := table.Top(); !ok || top.Charger.ID != ids[0] {
		t.Error("Top() inconsistent with IDs()")
	}
	if table.Adapted {
		t.Error("brute force table marked adapted")
	}
}

// The filtering-phase prune must not change results: compare against a
// prune-free evaluation of the same pool.
func TestPruningIsLossless(t *testing.T) {
	env := testEnv(t)
	eng := Engine{Env: env}
	q := testQuery(env).normalized()
	d := env.deroutingMaps(q, math.Inf(1))
	all := env.Chargers.All()
	cands := make([]*charger.Charger, len(all))
	for i := range all {
		cands[i] = &all[i]
	}
	pruned := eng.rankPool(cands, d, q)

	var plain []Entry
	for _, c := range cands {
		if e, ok := eng.evaluate(c, d, q); ok {
			plain = append(plain, e)
		}
	}
	unpruned := Rank(plain, q.K)
	if len(pruned) != len(unpruned) {
		t.Fatalf("pruned %d vs unpruned %d entries", len(pruned), len(unpruned))
	}
	for i := range pruned {
		if pruned[i].Charger.ID != unpruned[i].Charger.ID {
			t.Fatalf("rank %d: pruned %d vs unpruned %d", i, pruned[i].Charger.ID, unpruned[i].Charger.ID)
		}
	}
}

func TestQuadtreeMethodSubsetOfNearest(t *testing.T) {
	env := testEnv(t)
	m := NewIndexQuadtree(env)
	q := testQuery(env)
	table := m.Rank(q)
	if len(table.Entries) == 0 {
		t.Fatal("empty table")
	}
	// Every returned charger must be among the factor*k nearest.
	nearest := env.Chargers.KNearest(q.Anchor, m.CandidateFactor*3)
	nearIDs := map[int64]bool{}
	for _, c := range nearest {
		nearIDs[c.ID] = true
	}
	for _, e := range table.Entries {
		if !nearIDs[e.Charger.ID] {
			t.Errorf("charger %d not among nearest candidates", e.Charger.ID)
		}
	}
}

func TestRandomMethodWithinRadius(t *testing.T) {
	env := testEnv(t)
	m := NewRandom(env, 99)
	q := testQuery(env)
	q.RadiusM = 3000
	table := m.Rank(q)
	if len(table.Entries) == 0 {
		t.Fatal("empty random table")
	}
	for _, e := range table.Entries {
		if d := geo.Distance(q.Anchor, e.Charger.P); d > 3000 {
			t.Errorf("random charger %d at %.0f m outside radius", e.Charger.ID, d)
		}
	}
	// Distinct picks.
	seen := map[int64]bool{}
	for _, e := range table.Entries {
		if seen[e.Charger.ID] {
			t.Fatal("duplicate random pick")
		}
		seen[e.Charger.ID] = true
	}
}

func TestEcoChargeCacheBehaviour(t *testing.T) {
	env := testEnv(t)
	m := NewEcoCharge(env, EcoChargeOptions{RadiusM: 10000, ReuseDistM: 2000})
	q := testQuery(env)

	t1 := m.Rank(q)
	if t1.Adapted {
		t.Fatal("first table must be computed, not adapted")
	}
	// Move 500 m: within Q, must adapt.
	q2 := q
	q2.Anchor = geo.Destination(q.Anchor, 90, 500)
	q2.AnchorNode = env.Graph.NearestNode(q2.Anchor)
	t2 := m.Rank(q2)
	if !t2.Adapted {
		t.Fatal("movement within Q did not hit the cache")
	}
	// Adapted table re-ranks the same chargers.
	inOld := map[int64]bool{}
	for _, id := range t1.IDs() {
		inOld[id] = true
	}
	for _, id := range t2.IDs() {
		if !inOld[id] {
			t.Errorf("adapted table introduced charger %d not in cached table", id)
		}
	}
	// Move 5 km: beyond Q from the cached anchor, must recompute.
	q3 := q
	q3.Anchor = geo.Destination(q.Anchor, 90, 5000)
	q3.AnchorNode = env.Graph.NearestNode(q3.Anchor)
	t3 := m.Rank(q3)
	if t3.Adapted {
		t.Fatal("movement beyond Q still hit the cache")
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	// Reset drops the cache.
	m.Reset()
	if t4 := m.Rank(q); t4.Adapted {
		t.Error("Rank after Reset adapted a dropped cache")
	}
}

func TestEcoChargeCacheTTL(t *testing.T) {
	env := testEnv(t)
	m := NewEcoCharge(env, EcoChargeOptions{RadiusM: 10000, ReuseDistM: 5000, TTL: 10 * time.Minute})
	q := testQuery(env)
	m.Rank(q)
	// Same place, 30 minutes later: TTL expired, must recompute.
	q2 := q
	q2.Now = q.Now.Add(30 * time.Minute)
	q2.ETABase = q2.Now
	if table := m.Rank(q2); table.Adapted {
		t.Fatal("stale cache adapted beyond TTL")
	}
}

func TestEcoChargeMatchesBruteForceWithinRadius(t *testing.T) {
	// With the whole environment inside R, the derouting budget covering
	// the whole graph, and no cache reuse, EcoCharge's fresh computation
	// must match brute force exactly. (Under a tight budget EcoCharge
	// intentionally drops chargers costing more than MaxDeroutSec to
	// visit, while brute force keeps them with D clamped to 1.)
	env := testEnv(t)
	big, err := NewEnv(env.Graph, env.Chargers, env.Solar, env.Avail, env.Traffic, EnvConfig{RadiusM: 100000})
	if err != nil {
		t.Fatal(err)
	}
	env = big
	bf := NewBruteForce(env)
	eco := NewEcoCharge(env, EcoChargeOptions{RadiusM: 100000, ReuseDistM: 1, ExactDerouting: true})
	q := testQuery(env)
	q.RadiusM = 100000
	want := bf.Rank(q).IDs()
	got := eco.Rank(q).IDs()
	if !sameIDs(want, got) {
		t.Fatalf("EcoCharge %v != BruteForce %v", got, want)
	}
}

func TestRunTripAndSplitList(t *testing.T) {
	env := testEnv(t)
	trips, err := trajectory.Generate(env.Graph, trajectory.GenConfig{
		N: 3, Seed: 5, MinTripKM: 6, MaxTripKM: 12, Start: queryTime, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewEcoCharge(env, EcoChargeOptions{RadiusM: 10000, ReuseDistM: 3000})
	for _, trip := range trips {
		results := RunTrip(env, m, trip, TripOptions{K: 3, SegmentLenM: 3000, RadiusM: 10000})
		if len(results) == 0 {
			t.Fatalf("trip %d: no segment results", trip.ID)
		}
		for i, r := range results {
			if r.Segment.Index != i {
				t.Fatalf("trip %d: segment order broken", trip.ID)
			}
			if len(r.Table.Entries) == 0 {
				t.Fatalf("trip %d segment %d: empty table", trip.ID, i)
			}
		}
		sl := SplitList(env, m, trip, TripOptions{K: 3, SegmentLenM: 3000, RadiusM: 10000})
		if len(sl) == 0 {
			t.Fatalf("trip %d: empty split list", trip.ID)
		}
		if sl[0].SegmentIndex != 0 {
			t.Errorf("trip %d: first split point not at trip start", trip.ID)
		}
		// Consecutive split points must carry different NN sets.
		for i := 1; i < len(sl); i++ {
			if sameIDs(sl[i-1].NN, sl[i].NN) {
				t.Errorf("trip %d: redundant split point %d", trip.ID, i)
			}
		}
	}
}

func TestTruthSCInUnitRange(t *testing.T) {
	env := testEnv(t)
	eng := Engine{Env: env}
	q := testQuery(env)
	tm := eng.TruthMaps(q)
	n := 0
	for i := range env.Chargers.All() {
		c := &env.Chargers.All()[i]
		sc, ok := eng.TruthSC(q, tm, c)
		if !ok {
			continue
		}
		n++
		if sc < 0 || sc > 1 {
			t.Fatalf("truth SC %v out of range for charger %d", sc, c.ID)
		}
	}
	if n < 100 {
		t.Fatalf("only %d chargers scored", n)
	}
}

func TestBruteForceBeatsRandomOnTruth(t *testing.T) {
	env := testEnv(t)
	eng := Engine{Env: env}
	bf := NewBruteForce(env)
	rnd := NewRandom(env, 7)
	var bfSum, rndSum float64
	for trial := 0; trial < 10; trial++ {
		node := roadnet.NodeID((trial * 37) % env.Graph.NumNodes())
		q := testQuery(env)
		q.Anchor = env.Graph.Node(node).P
		q.AnchorNode = node
		q.ReturnNode = node
		tm := eng.TruthMaps(q)
		for _, e := range bf.Rank(q).Entries {
			if sc, ok := eng.TruthSC(q, tm, e.Charger); ok {
				bfSum += sc
			}
		}
		for _, e := range rnd.Rank(q).Entries {
			if sc, ok := eng.TruthSC(q, tm, e.Charger); ok {
				rndSum += sc
			}
		}
	}
	if bfSum <= rndSum {
		t.Fatalf("brute force truth SC %.3f not above random %.3f", bfSum, rndSum)
	}
}

func TestWeightsChangeRanking(t *testing.T) {
	env := testEnv(t)
	bf := NewBruteForce(env)
	q := testQuery(env)
	q.K = 5
	base := bf.Rank(q).IDs()
	differs := false
	for _, w := range []Weights{OnlyL(), OnlyA(), OnlyD()} {
		q2 := q
		q2.Weights = w
		if !sameIDs(base, bf.Rank(q2).IDs()) {
			differs = true
		}
	}
	if !differs {
		t.Error("single-objective weights never changed the ranking")
	}
}

func TestBottomK(t *testing.T) {
	b := newBottomK(3)
	if b.kth() != math.Inf(-1) {
		t.Error("empty bottomK kth not -Inf")
	}
	for _, v := range []float64{0.5, 0.1, 0.9, 0.3, 0.7} {
		b.push(v)
	}
	// The 3 largest are {0.9, 0.7, 0.5}; kth (3rd best) = 0.5.
	if got := b.kth(); got != 0.5 {
		t.Errorf("kth = %v, want 0.5", got)
	}
	z := newBottomK(0)
	if z.push(1) {
		t.Error("k=0 bottomK claims readiness")
	}
}

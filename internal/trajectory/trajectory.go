// Package trajectory provides scheduled trips P on a road network, their
// partitioning into path segments p (paper §III.A step 1), and the
// network-based moving-object generators that stand in for the Oldenburg,
// California, T-drive and Geolife trajectory datasets (see DESIGN.md).
package trajectory

import (
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// TimedPoint is one GPS sample of a trajectory.
type TimedPoint struct {
	P geo.Point
	T time.Time
}

// Trajectory is a recorded point stream, the raw form of the T-drive and
// Geolife datasets.
type Trajectory struct {
	ID     int64
	Points []TimedPoint
}

// LengthMeters returns the summed inter-sample distance.
func (tr *Trajectory) LengthMeters() float64 {
	var total float64
	for i := 1; i < len(tr.Points); i++ {
		total += geo.Distance(tr.Points[i-1].P, tr.Points[i].P)
	}
	return total
}

// Duration returns last sample time minus first, or zero.
func (tr *Trajectory) Duration() time.Duration {
	if len(tr.Points) < 2 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T.Sub(tr.Points[0].T)
}

// Simplify reduces the trajectory with Douglas-Peucker at the given
// spatial tolerance, keeping the timestamps of retained samples. The dense
// Geolife-style streams (1–5 s sampling) compress by an order of magnitude
// at a 25 m tolerance without moving the geometry beyond it.
func (tr *Trajectory) Simplify(toleranceM float64) Trajectory {
	out := Trajectory{ID: tr.ID}
	if len(tr.Points) == 0 {
		return out
	}
	pts := make([]geo.Point, len(tr.Points))
	for i, p := range tr.Points {
		pts[i] = p.P
	}
	kept := geo.Simplify(pts, toleranceM)
	// Walk both sequences to recover the timestamps of kept points;
	// Simplify preserves order, so a single forward scan suffices.
	j := 0
	for _, kp := range kept {
		for j < len(tr.Points) && tr.Points[j].P != kp {
			j++
		}
		if j < len(tr.Points) {
			out.Points = append(out.Points, tr.Points[j])
			j++
		}
	}
	return out
}

// Trip is a scheduled trip P: a shortest path on the road network with a
// departure time. All EcoCharge queries run against trips.
type Trip struct {
	ID     int64
	Path   roadnet.Path
	Depart time.Time
}

// Segment is one path segment p_i of a partitioned trip. Anchor is the
// representative query point of the segment (its midpoint node position),
// ETA the estimated arrival at the anchor under free-flow driving.
type Segment struct {
	Index      int
	Nodes      []roadnet.NodeID
	Start, End geo.Point
	LengthM    float64
	Anchor     geo.Point
	AnchorNode roadnet.NodeID
	ETA        time.Time
}

// SegmentTrip partitions the trip into segments of approximately segLenM
// meters (the paper's ≈3–5 km default; the caller chooses). ETAs use the
// free-flow time weight of the underlying edges. A trip shorter than one
// segment yields a single segment. It returns nil for degenerate trips
// (fewer than 2 nodes).
func SegmentTrip(g *roadnet.Graph, trip Trip, segLenM float64) []Segment {
	nodes := trip.Path.Nodes
	if len(nodes) < 2 {
		return nil
	}
	if segLenM <= 0 {
		segLenM = 4000
	}
	var segs []Segment
	cur := Segment{Index: 0, Start: g.Node(nodes[0]).P}
	cur.Nodes = append(cur.Nodes, nodes[0])
	elapsed := time.Duration(0)
	segStartElapsed := elapsed

	flush := func(endNode roadnet.NodeID) {
		cur.End = g.Node(endNode).P
		mid := cur.Nodes[len(cur.Nodes)/2]
		cur.Anchor = g.Node(mid).P
		cur.AnchorNode = mid
		// ETA at the segment anchor: halfway between start and end times.
		half := segStartElapsed + (elapsed-segStartElapsed)/2
		cur.ETA = trip.Depart.Add(half)
		segs = append(segs, cur)
	}

	for i := 1; i < len(nodes); i++ {
		prev, next := nodes[i-1], nodes[i]
		var length float64
		var travel time.Duration
		found := false
		g.OutEdges(prev, func(e roadnet.Edge) {
			if e.To == next && !found {
				length = e.Length
				travel = time.Duration(roadnet.TimeWeight(e) * float64(time.Second))
				found = true
			}
		})
		if !found {
			// Path node pair without a direct edge (should not happen for
			// shortest paths); fall back to geodesic distance at 50 km/h.
			length = geo.Distance(g.Node(prev).P, g.Node(next).P)
			travel = time.Duration(length / (50.0 / 3.6) * float64(time.Second))
		}
		cur.LengthM += length
		elapsed += travel
		cur.Nodes = append(cur.Nodes, next)
		if cur.LengthM >= segLenM && i < len(nodes)-1 {
			flush(next)
			cur = Segment{Index: len(segs), Start: g.Node(next).P}
			cur.Nodes = append(cur.Nodes, next)
			segStartElapsed = elapsed
		}
	}
	flush(nodes[len(nodes)-1])
	return segs
}

// Sample converts a trip into a GPS trajectory with the given sampling
// interval, interpolating positions along edges at free-flow speed.
func Sample(g *roadnet.Graph, trip Trip, every time.Duration) Trajectory {
	tr := Trajectory{ID: trip.ID}
	nodes := trip.Path.Nodes
	if len(nodes) == 0 {
		return tr
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	now := trip.Depart
	nextSample := now
	emit := func(p geo.Point, t time.Time) {
		tr.Points = append(tr.Points, TimedPoint{P: p, T: t})
	}
	emit(g.Node(nodes[0]).P, now)
	nextSample = nextSample.Add(every)
	for i := 1; i < len(nodes); i++ {
		a, b := g.Node(nodes[i-1]).P, g.Node(nodes[i]).P
		var travel time.Duration
		found := false
		g.OutEdges(nodes[i-1], func(e roadnet.Edge) {
			if e.To == nodes[i] && !found {
				travel = time.Duration(roadnet.TimeWeight(e) * float64(time.Second))
				found = true
			}
		})
		if !found {
			travel = time.Duration(geo.Distance(a, b) / (50.0 / 3.6) * float64(time.Second))
		}
		edgeEnd := now.Add(travel)
		for !nextSample.After(edgeEnd) && travel > 0 {
			f := float64(nextSample.Sub(now)) / float64(travel)
			emit(geo.Interpolate(a, b, f), nextSample)
			nextSample = nextSample.Add(every)
		}
		now = edgeEnd
	}
	emit(g.Node(nodes[len(nodes)-1]).P, now)
	return tr
}

// GenConfig parameterizes trip generation: random origin/destination pairs
// with shortest-path routing, the essence of the Brinkhoff network-based
// moving-object generator.
type GenConfig struct {
	N         int // number of trips
	Seed      int64
	MinTripKM float64       // reject OD pairs with shorter shortest paths
	MaxTripKM float64       // resample destinations with longer paths (0 = unlimited)
	Start     time.Time     // departure window start
	Window    time.Duration // departures uniform in [Start, Start+Window)
	// HotspotFrac of trips start or end at one of a few hotspot nodes
	// (downtown bias of the taxi datasets). 0 disables.
	HotspotFrac float64
	Hotspots    int
}

// Generate builds N trips on the graph. It returns an error when the graph
// is too small or too disconnected to satisfy the constraints after a
// bounded number of attempts per trip. It is a collector over Sampler, so
// generated slices and streamed trips are byte-identical for a given
// config (TestSamplerMatchesGenerate pins this).
func Generate(g *roadnet.Graph, cfg GenConfig) ([]Trip, error) {
	s, err := NewSampler(g, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		return nil, nil
	}
	trips := make([]Trip, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		trip, err := s.Next()
		if err != nil {
			return nil, err
		}
		trips = append(trips, trip)
	}
	return trips, nil
}

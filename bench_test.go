// Benchmarks regenerating the paper's evaluation figures. Each BenchmarkFigN
// corresponds to one figure of §V; sub-benchmarks enumerate the datasets and
// the swept parameter. F_t in the paper is per-query CPU time, which is what
// ns/op reports here (one op = one Offering Table computation, or one whole
// trip for the cache-sensitive Fig. 8 sweep).
//
// Run with:
//
//	go test -bench=. -benchmem
package ecocharge

import (
	"fmt"
	"sync"
	"testing"

	"ecocharge/internal/cknn"
	"ecocharge/internal/experiment"
	"ecocharge/internal/trajectory"
)

// benchScale keeps scenario construction tractable; the swept methods see
// the full charger inventories (the paper's >1,000 per dataset), only the
// trip count is scaled.
const benchScale = 0.002

var (
	benchOnce      sync.Once
	benchScenarios []*experiment.Scenario
	benchErr       error
)

func scenarios(b *testing.B) []*experiment.Scenario {
	b.Helper()
	benchOnce.Do(func() {
		benchScenarios, benchErr = experiment.BuildAllScenarios(benchScale, 42)
	})
	if benchErr != nil {
		b.Fatalf("building scenarios: %v", benchErr)
	}
	return benchScenarios
}

// queriesFor materializes the per-segment queries of the scenario's first
// trips, the workload every figure replays.
func queriesFor(sc *experiment.Scenario, maxTrips int) []cknn.Query {
	opts := cknn.TripOptions{K: 3, SegmentLenM: 500, RadiusM: 50000}
	var qs []cknn.Query
	for i, trip := range sc.Trips {
		if i >= maxTrips {
			break
		}
		for _, seg := range trajectory.SegmentTrip(sc.Graph, trip, opts.SegmentLenM) {
			qs = append(qs, cknn.QueryForSegment(trip, seg, opts))
		}
	}
	return qs
}

// BenchmarkFig6 measures F_t of the four compared methods on each dataset
// (Figure 6, Performance Evaluation). Per-op time is one Offering Table.
func BenchmarkFig6(b *testing.B) {
	for _, sc := range scenarios(b) {
		qs := queriesFor(sc, 4)
		if len(qs) == 0 {
			b.Fatalf("%s: no queries", sc.Name)
		}
		methods := []cknn.Method{
			cknn.NewBruteForce(sc.Env),
			cknn.NewIndexQuadtree(sc.Env),
			cknn.NewRandom(sc.Env, 7),
			cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{RadiusM: 50000, ReuseDistM: 5000}),
		}
		for _, m := range methods {
			m := m
			b.Run(fmt.Sprintf("%s/%s", sc.Name, m.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = m.Rank(qs[i%len(qs)])
				}
			})
		}
	}
}

// BenchmarkFig7 measures F_t of EcoCharge under the radius sweep
// R ∈ {25, 50, 75} km (Figure 7, R-opt Evaluation).
func BenchmarkFig7(b *testing.B) {
	for _, sc := range scenarios(b) {
		qs := queriesFor(sc, 4)
		for _, rKM := range []float64{25, 50, 75} {
			rKM := rKM
			m := cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{RadiusM: rKM * 1000, ReuseDistM: 5000})
			b.Run(fmt.Sprintf("%s/R=%.0fkm", sc.Name, rKM), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := qs[i%len(qs)]
					q.RadiusM = rKM * 1000
					_ = m.Rank(q)
				}
			})
		}
	}
}

// BenchmarkFig8 measures F_t of EcoCharge under the reuse-distance sweep
// Q ∈ {5, 10, 15} km (Figure 8, Q-opt Evaluation). One op is a whole trip
// so the cache hit pattern matches real continuous operation.
func BenchmarkFig8(b *testing.B) {
	for _, sc := range scenarios(b) {
		trips := sc.Trips
		if len(trips) > 4 {
			trips = trips[:4]
		}
		for _, qKM := range []float64{5, 10, 15} {
			qKM := qKM
			m := cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{RadiusM: 50000, ReuseDistM: qKM * 1000})
			opts := cknn.TripOptions{K: 3, SegmentLenM: 500, RadiusM: 50000}
			b.Run(fmt.Sprintf("%s/Q=%.0fkm", sc.Name, qKM), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = cknn.RunTrip(sc.Env, m, trips[i%len(trips)], opts)
				}
			})
		}
	}
}

// BenchmarkFig9 measures F_t of EcoCharge under the four ablated distance
// functions (Figure 9, Ablation of Weight Parameters). SC effects of the
// ablation are produced by `ecobench -fig 9` and TestRunAblationShape; this
// bench captures that the weight configuration does not change the cost.
func BenchmarkFig9(b *testing.B) {
	for _, sc := range scenarios(b) {
		qs := queriesFor(sc, 4)
		for _, fn := range experiment.AblationFunctions() {
			fn := fn
			m := cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{RadiusM: 50000, ReuseDistM: 5000})
			b.Run(fmt.Sprintf("%s/%s", sc.Name, fn.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := qs[i%len(qs)]
					q.Weights = fn.Weights
					_ = m.Rank(q)
				}
			})
		}
	}
}

// BenchmarkSplitList covers the continuous-query bookkeeping itself.
func BenchmarkSplitList(b *testing.B) {
	sc := scenarios(b)[0] // Oldenburg
	m := cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{RadiusM: 50000, ReuseDistM: 5000})
	opts := cknn.TripOptions{K: 3, SegmentLenM: 4000, RadiusM: 50000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cknn.SplitList(sc.Env, m, sc.Trips[i%len(sc.Trips)], opts)
	}
}

package cknn

import (
	"testing"

	"ecocharge/internal/charger"
	"ecocharge/internal/ec"
	"ecocharge/internal/roadnet"
)

// All three index-backed baselines must produce identical tables: the
// candidate set is "the factor·k nearest chargers" regardless of which
// structure retrieves them.
func TestIndexMethodsAgree(t *testing.T) {
	env := testEnv(t)
	qt := NewIndexQuadtree(env)
	grid := NewIndexGrid(env, 1000)
	rtree := NewIndexRTree(env)

	for trial := 0; trial < 15; trial++ {
		node := (trial * 211) % env.Graph.NumNodes()
		q := testQuery(env)
		nid := roadnet.NodeID(node)
		q.Anchor = env.Graph.Node(nid).P
		q.AnchorNode = nid
		q.ReturnNode = nid

		want := qt.Rank(q).IDs()
		if got := grid.Rank(q).IDs(); !sameIDs(got, want) {
			t.Fatalf("trial %d: grid %v vs quadtree %v", trial, got, want)
		}
		if got := rtree.Rank(q).IDs(); !sameIDs(got, want) {
			t.Fatalf("trial %d: rtree %v vs quadtree %v", trial, got, want)
		}
	}
}

func TestIndexMethodNames(t *testing.T) {
	env := testEnv(t)
	if NewIndexGrid(env, 0).Name() != "Index-Grid" {
		t.Error("grid name wrong")
	}
	if NewIndexRTree(env).Name() != "Index-RTree" {
		t.Error("rtree name wrong")
	}
}

func TestIndexMethodEmptySet(t *testing.T) {
	set, err := charger.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	base := testEnv(t)
	env, err := NewEnv(base.Graph, set, ec.NewSolarModel(1), ec.NewAvailabilityModel(2), ec.NewTrafficModel(3), EnvConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{NewIndexGrid(env, 0), NewIndexRTree(env)} {
		if table := m.Rank(testQuery(env)); len(table.Entries) != 0 {
			t.Errorf("%s: entries on empty set", m.Name())
		}
	}
}

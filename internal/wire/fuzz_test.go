package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// fuzzTime builds a time from fuzzed parts, rejecting anything RFC 3339
// cannot render canonically: the wire's equality contract is "re-encoded
// JSON is byte-identical", so inputs outside JSON's own domain are skipped,
// not failed.
func fuzzTime(sec int64, nsec uint32, offMin int32) (time.Time, bool) {
	if sec < 0 || sec > 4_000_000_000 || nsec >= 1_000_000_000 {
		return time.Time{}, false
	}
	off := int(offMin) * 60
	if off < -14*3600 || off > 14*3600 {
		return time.Time{}, false
	}
	loc := time.UTC
	if off != 0 {
		loc = time.FixedZone("", off)
	}
	return time.Unix(sec, int64(nsec)).In(loc), true
}

func finite(fs ...float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// FuzzWireRoundTrip is the codec's central correctness pin: for any valid
// domain value, binary encode→decode must reproduce the exact JSON bytes
// the original would have produced, and a JSON round trip must wire-encode
// to the same binary bytes. Either direction drifting means the two
// content types no longer describe the same response.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(53.07, 8.81, 5, 25000.0, 0.5, 0.25, 0.25,
		int64(1718702000), uint32(0), int32(0),
		int64(42), 0.1, 0.9, int64(1718703000), uint32(123456789), int32(120), uint8(3), true)
	f.Add(-10.0, 170.0, 1, 1.0, 1.0, 0.0, 0.0,
		int64(0), uint32(1), int32(-840),
		int64(-1), 0.0, 1.0, int64(4_000_000_000), uint32(999_999_999), int32(840), uint8(255), false)
	f.Fuzz(func(t *testing.T,
		lat, lon float64, k int, radius, wl, wa, wd float64,
		nowSec int64, nowNsec uint32, nowOff int32,
		chargerID int64, scMin, scMax float64,
		etaSec int64, etaNsec uint32, etaOff int32,
		degraded uint8, cached bool,
	) {
		if !finite(lat, lon, radius, wl, wa, wd, scMin, scMax) {
			t.Skip("non-finite input is JSON-unrepresentable")
		}
		now, ok := fuzzTime(nowSec, nowNsec, nowOff)
		if !ok {
			t.Skip("time outside the RFC 3339 domain")
		}
		eta, ok := fuzzTime(etaSec, etaNsec, etaOff)
		if !ok {
			t.Skip("time outside the RFC 3339 domain")
		}

		req := OfferingRequest{
			Lat: lat, Lon: lon, K: k, RadiusM: radius,
			Weights: WeightsJSON{L: wl, A: wa, D: wd},
			Now:     now, ETA: eta,
		}
		var reqOut OfferingRequest
		if err := DecodeOfferingRequest(AppendOfferingRequest(nil, &req), &reqOut); err != nil {
			t.Fatalf("request decode: %v", err)
		}
		assertFuzzJSONEqual(t, "request", &req, &reqOut)

		resp := OfferingResponse{
			Entries: []OfferingEntry{{
				ChargerID: chargerID, Lat: lat, Lon: lon, RateKW: radius,
				SC:  IntervalJSON{Min: scMin, Max: scMax},
				L:   IntervalJSON{Min: wl, Max: wl},
				A:   IntervalJSON{Min: wa, Max: wa},
				D:   IntervalJSON{Min: wd, Max: wd},
				ETA: eta, Degraded: degraded,
			}},
			GeneratedAt: now, Cached: cached,
		}
		var respOut OfferingResponse
		enc := AppendOfferingResponse(nil, &resp)
		if err := DecodeOfferingResponse(enc, &respOut); err != nil {
			t.Fatalf("response decode: %v", err)
		}
		assertFuzzJSONEqual(t, "response", &resp, &respOut)

		// JSON round trip, then wire-encode both sides: the binary rendering
		// must be independent of which plane the value last travelled.
		jb, err := json.Marshal(&resp)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var viaJSON OfferingResponse
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !bytes.Equal(enc, AppendOfferingResponse(nil, &viaJSON)) {
			t.Fatalf("wire bytes differ after a JSON round trip\njson: %s", jb)
		}

		// Charger inventory leg, gated on coordinates the domain accepts.
		p := geo.Point{Lat: lat, Lon: lon}
		if !p.Valid() || radius < 0 {
			return
		}
		cs := []charger.Charger{{
			ID: chargerID, P: p, Node: roadnet.NodeID(int32(k)),
			Rate: charger.RateFromKW(radius), PanelKW: wl, WindKW: wa,
			Plugs: int(degraded),
		}}
		cs[0].Timetable[int(degraded)%7][int(degraded)%24] = wd
		csOut, err := DecodeChargers(AppendChargers(nil, cs), nil)
		if err != nil {
			t.Fatalf("chargers decode: %v", err)
		}
		assertFuzzJSONEqual(t, "chargers", cs, csOut)
	})
}

func assertFuzzJSONEqual(t *testing.T, leg string, want, got interface{}) {
	t.Helper()
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("%s: marshal want: %v", leg, err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("%s: marshal got: %v", leg, err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("%s: JSON drift across the binary plane\nwant %s\ngot  %s", leg, wb, gb)
	}
}

// FuzzWireDecode throws raw bytes at every decoder: none may panic, and
// anything that decodes must re-encode and decode again to the same value
// (idempotence — the decoder accepts nothing it cannot reproduce).
func FuzzWireDecode(f *testing.F) {
	req := sampleRequest()
	resp := sampleResponse(2)
	f.Add(AppendOfferingRequest(nil, &req))
	f.Add(AppendOfferingResponse(nil, &resp))
	f.Add(AppendChargers(nil, sampleChargers(1)))
	f.Add(AppendWeather(nil, &WeatherResponse{ChargerID: 1, At: utcNow}))
	f.Add([]byte{magic, version, kindChargers, 1, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var reqOut OfferingRequest
		if err := DecodeOfferingRequest(data, &reqOut); err == nil {
			var again OfferingRequest
			if err := DecodeOfferingRequest(AppendOfferingRequest(nil, &reqOut), &again); err != nil {
				t.Fatalf("request re-decode: %v", err)
			}
			assertFuzzJSONEqual(t, "request", &reqOut, &again)
		}
		var respOut OfferingResponse
		if err := DecodeOfferingResponse(data, &respOut); err == nil {
			var again OfferingResponse
			if err := DecodeOfferingResponse(AppendOfferingResponse(nil, &respOut), &again); err != nil {
				t.Fatalf("response re-decode: %v", err)
			}
			assertFuzzJSONEqual(t, "response", &respOut, &again)
		}
		if cs, err := DecodeChargers(data, nil); err == nil {
			if _, err := DecodeChargers(AppendChargers(nil, cs), nil); err != nil {
				t.Fatalf("chargers re-decode: %v", err)
			}
		}
		var w WeatherResponse
		_ = DecodeWeather(data, &w)
		var a AvailabilityResponse
		_ = DecodeAvailability(data, &a)
	})
}

// FuzzOfferingJSONRoundTrip pins the JSON plane itself: marshal→unmarshal→
// marshal must be byte-stable for any domain response, so cached JSON
// bodies and freshly encoded ones can be compared byte-wise.
func FuzzOfferingJSONRoundTrip(f *testing.F) {
	f.Add(int64(42), 53.07, 8.81, 150.0, 0.25, 0.75,
		int64(1718702000), uint32(500), int32(60), uint8(0), true, false)
	f.Add(int64(-7), -90.0, 180.0, 0.0, 1.0, 0.0,
		int64(0), uint32(0), int32(0), uint8(255), false, true)
	f.Fuzz(func(t *testing.T,
		id int64, lat, lon, rate, lo, hi float64,
		sec int64, nsec uint32, offMin int32,
		degraded uint8, cached, nilEntries bool,
	) {
		if !finite(lat, lon, rate, lo, hi) {
			t.Skip("non-finite input is JSON-unrepresentable")
		}
		ts, ok := fuzzTime(sec, nsec, offMin)
		if !ok {
			t.Skip("time outside the RFC 3339 domain")
		}
		resp := OfferingResponse{GeneratedAt: ts, Cached: cached}
		if !nilEntries {
			resp.Entries = []OfferingEntry{{
				ChargerID: id, Lat: lat, Lon: lon, RateKW: rate,
				SC:  IntervalJSON{Min: lo, Max: hi},
				L:   IntervalJSON{Min: lo, Max: hi},
				A:   IntervalJSON{Min: lo, Max: hi},
				D:   IntervalJSON{Min: lo, Max: hi},
				ETA: ts, Degraded: degraded,
			}}
		}
		first, err := json.Marshal(&resp)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back OfferingResponse
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("JSON round trip unstable\nfirst  %s\nsecond %s", first, second)
		}
	})
}

package cknn_test

// Method-level differential suite for the batched derouting maps: every
// ranking method, run over real trips, must emit byte-identical Offering
// Tables whether the engine prices candidates through the batched
// target-aware expansions (production default) or the full-ball expansions
// they replaced (Env.FullDerouting oracle switch). reflect.DeepEqual over
// the full []SegmentResult catches any divergence — entry order, scores,
// components, ETAs — and tabletest pins the table invariants on top, so
// "equal but both wrong" cannot slip through. The maps-level suite
// (derouting_batch_test.go) proves the expansions equal at every node; this
// one proves no call site reads outside the target contract.

import (
	"reflect"
	"testing"

	"ecocharge/internal/cknn"
	"ecocharge/internal/cknn/tabletest"
	"ecocharge/internal/experiment"
	"ecocharge/internal/trajectory"
)

func TestBatchedDeroutingTripEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario builds are slow")
	}
	for _, p := range trajectory.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			sc, err := experiment.BuildScenarioFromProfile(p, 0.0005, 7)
			if err != nil {
				t.Fatalf("BuildScenarioFromProfile: %v", err)
			}
			trips := sc.Trips
			if len(trips) > 2 {
				trips = trips[:2]
			}
			if len(trips) == 0 {
				t.Fatalf("profile %s produced no trips", p.Name)
			}
			opts := cknn.TripOptions{K: 3, SegmentLenM: 4000}
			opts.Workers = 1

			methods := equivalenceMethods(sc.Env)
			// EcoCharge's exact-derouting configuration exercises the batched
			// four-expansion path the default (approx) configuration skips.
			methods = append(methods, struct {
				name  string
				build func() cknn.Method
			}{"EcoCharge-Exact", func() cknn.Method {
				return cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{ReuseDistM: 5000, ExactDerouting: true})
			}})

			for _, mt := range methods {
				mt := mt
				t.Run(mt.name, func(t *testing.T) {
					for _, trip := range trips {
						sc.Env.FullDerouting = true
						want := cknn.RunTrip(sc.Env, mt.build(), trip, opts)
						sc.Env.FullDerouting = false
						got := cknn.RunTrip(sc.Env, mt.build(), trip, opts)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("trip %d: batched derouting results differ from full-ball\nfull:  %v\nbatch: %v",
								trip.ID, summarize(want), summarize(got))
						}
						for _, res := range got {
							tabletest.CheckOpts(t, res.Table, opts.K, mt.name,
								tabletest.Options{SkipScores: mt.name == "Random"})
						}
					}
				})
			}
		})
	}
}

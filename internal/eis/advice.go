package eis

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/smartgrid"
)

// AdviceRequest asks the EIS for a grid-aware Offering Table (the §VII
// smart-grid extension served centrally): the standard CkNN-EC ranking is
// re-ordered by the grid-aware score GS = SC − β·price − γ·stress.
type AdviceRequest struct {
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
	K       int     `json:"k"`
	RadiusM float64 `json:"radius_m"`
	// Now is when the estimate is issued; zero means server time.
	Now time.Time `json:"now"`
	// PriceWeight (β) and StressWeight (γ); zero selects the defaults.
	PriceWeight  float64 `json:"price_weight"`
	StressWeight float64 `json:"stress_weight"`
}

// AdviceEntry is one grid-aware recommendation.
type AdviceEntry struct {
	OfferingEntry
	GS     IntervalJSON `json:"gs"`
	Price  IntervalJSON `json:"price_eur_kwh"`
	Stress IntervalJSON `json:"grid_stress"`
	Band   string       `json:"tariff_band"`
}

// AdviceResponse is the grid-aware table.
type AdviceResponse struct {
	Entries     []AdviceEntry `json:"entries"`
	GeneratedAt time.Time     `json:"generated_at"`
}

// handleAdvice implements POST /api/v1/advice.
func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AdviceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	p := geo.Point{Lat: req.Lat, Lon: req.Lon}
	if !p.Valid() {
		s.writeError(w, http.StatusBadRequest, "invalid location (%v, %v)", req.Lat, req.Lon)
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	if req.RadiusM <= 0 {
		req.RadiusM = 50000
	}
	now := req.Now
	if now.IsZero() {
		now = s.opts.Clock()
	}
	node := s.env.Graph.NearestNode(p)
	if node == roadnet.Invalid {
		s.writeError(w, http.StatusUnprocessableEntity, "location not on the road network")
		return
	}
	table := cknn.NewEcoCharge(s.env, cknn.EcoChargeOptions{RadiusM: req.RadiusM}).Rank(cknn.Query{
		Anchor: p, AnchorNode: node, ReturnNode: node,
		Now: now, ETABase: now, K: req.K, RadiusM: req.RadiusM,
	})
	advisor := smartgrid.NewAdvisor(smartgrid.DefaultTariff(), smartgrid.NewGridSignal())
	if req.PriceWeight > 0 {
		advisor.PriceWeight = req.PriceWeight
	}
	if req.StressWeight > 0 {
		advisor.StressWeight = req.StressWeight
	}
	resp := AdviceResponse{GeneratedAt: now}
	for _, ad := range advisor.Advise(table, now) {
		resp.Entries = append(resp.Entries, AdviceEntry{
			OfferingEntry: OfferingEntry{
				ChargerID: ad.Entry.Charger.ID,
				Lat:       ad.Entry.Charger.P.Lat,
				Lon:       ad.Entry.Charger.P.Lon,
				RateKW:    ad.Entry.Charger.Rate.KW(),
				SC:        toWire(ad.Entry.SC),
				L:         toWire(ad.Entry.Comp.L),
				A:         toWire(ad.Entry.Comp.A),
				D:         toWire(ad.Entry.Comp.D),
				ETA:       ad.Entry.Comp.ETA,
			},
			GS:     toWire(ad.GS),
			Price:  toWire(ad.Price),
			Stress: toWire(ad.Stress),
			Band:   ad.Band.String(),
		})
	}
	writeJSON(w, resp)
}

// Advice requests a grid-aware recommendation (client side).
func (c *Client) Advice(ctx context.Context, req AdviceRequest) (AdviceResponse, error) {
	var out AdviceResponse
	err := c.post(ctx, "/advice", req, &out)
	return out, err
}

// Package fixture exercises the httpserver analyzer: timeout-less
// http.Server literals and the package-level ListenAndServe helpers are
// flagged; configured servers and the methods on them are not.
package fixture

import (
	"net/http"
	"time"
)

// BadLiteral builds a server with no read timeout at all: flagged.
func BadLiteral(h http.Handler) *http.Server {
	return &http.Server{Addr: ":8080", Handler: h}
}

// BadEmpty is the degenerate case: flagged.
func BadEmpty() http.Server {
	return http.Server{}
}

// BadHelpers delegates to the package-level helpers, which build a
// timeout-less server internally: both calls flagged.
func BadHelpers(h http.Handler) {
	_ = http.ListenAndServe(":8080", h)
	_ = http.ListenAndServeTLS(":8443", "cert.pem", "key.pem", h)
}

// Good sets a header-read deadline; calling the ListenAndServe *method* on
// the configured server is fine.
func Good(h http.Handler) error {
	srv := &http.Server{
		Addr:              ":8080",
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}

// GoodReadTimeout covers the other accepted field.
func GoodReadTimeout(h http.Handler) http.Server {
	return http.Server{Handler: h, ReadTimeout: 30 * time.Second}
}

// Suppressed shows the escape hatch for a deliberate exception.
func Suppressed(h http.Handler) {
	//ecolint:ignore httpserver localhost-only fixture listener
	_ = http.ListenAndServe("127.0.0.1:0", h)
}

package roadnet

// many.go is the target-aware face of the flat kernel: one-to-many
// expansions that know the node set the caller will read and stop as soon
// as every one of those nodes is settled. The derouting component prices a
// visit to a few hundred candidate chargers per query but the plain bounded
// expansion settles every node inside the travel-time ball — orders of
// magnitude more than gets read. Because Dijkstra settles nodes in
// non-decreasing distance order, a settled target's distance is final, so
// terminating after the last target is byte-identical *at the targets* to
// running the expansion to exhaustion; the differential and fuzz suites in
// many_test.go pin that equivalence against a map-backed oracle.

// ExpandToMany runs a bounded forward expansion from src that terminates as
// soon as every node in targets has been settled. Dist is exact (and
// byte-identical to ExpandFrom) for src and every target reachable within
// maxWeight; values at other nodes are whatever the truncated search left
// behind and must not be read. Targets that are invalid, duplicated, or
// unreachable within the bound are tolerated — unreachable targets simply
// cost the full bounded expansion, exactly what ExpandFrom would have paid.
// An empty (or all-invalid) target set yields an empty expansion without
// searching. Callers must Release the expansion, as with ExpandFrom.
func (g *Graph) ExpandToMany(src NodeID, targets []NodeID, cw ClassWeights, maxWeight float64) Expansion {
	return g.expandMany(src, targets, cw, maxWeight, false)
}

// ExpandToManyReverse is ExpandToMany on the reverse graph: the weight of
// reaching dst from each target (the return-to-route leg), terminating once
// all targets are settled.
func (g *Graph) ExpandToManyReverse(dst NodeID, targets []NodeID, cw ClassWeights, maxWeight float64) Expansion {
	return g.expandMany(dst, targets, cw, maxWeight, true)
}

func (g *Graph) expandMany(origin NodeID, targets []NodeID, cw ClassWeights, maxWeight float64, reverse bool) Expansion {
	met.manyExpansions.Inc()
	g.mustFrozen()
	st := g.acquireState()
	if !g.validID(origin) {
		return Expansion{st: st}
	}
	want := st.markTargets(targets)
	if want == 0 {
		// Nothing will be read: the empty expansion is the cheapest answer
		// that satisfies the contract.
		met.manyEarlyTerms.Inc()
		return Expansion{st: st}
	}
	st.cw = cw
	st.run(origin, Invalid, nil, &st.cw, maxWeight, false, reverse)
	met.manySettled.Add(uint64(st.settled))
	met.manyTargetsSettled.Add(uint64(want - st.targetsLeft))
	if st.targetsLeft == 0 && len(st.pq.items) > 0 {
		// All targets settled with frontier remaining: the truncation saved
		// the whole tail of the ball.
		met.manyEarlyTerms.Inc()
	}
	return Expansion{st: st}
}

// markTargets stamps the target set into the generation-stamped mark array
// and returns the number of distinct valid targets. Sharing the search
// stamp makes clearing free: entries from previous searches can never alias
// the current generation.
func (st *searchState) markTargets(targets []NodeID) int {
	n := 0
	for _, t := range targets {
		if t < 0 || int(t) >= len(st.mark) || st.mark[t].targ == st.stamp {
			continue
		}
		st.mark[t].targ = st.stamp
		n++
	}
	st.targetsLeft = n
	return n
}

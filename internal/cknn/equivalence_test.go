package cknn_test

// Differential equivalence harness: the sequential engine (Workers=1) is
// the testing oracle, and every parallel configuration must reproduce its
// Offering Tables and split lists byte-for-byte on every dataset profile
// and every method. reflect.DeepEqual over the full []SegmentResult catches
// any divergence — entry order, scores, components, anchors, timestamps.

import (
	"reflect"
	"testing"

	"ecocharge/internal/cknn"
	"ecocharge/internal/cknn/tabletest"
	"ecocharge/internal/experiment"
	"ecocharge/internal/trajectory"
)

// equivalenceMethods enumerates every ranking method under test with a
// constructor returning a fresh instance — fresh per run, because the
// EcoCharge cache chain and the Random stream carry state across Rank calls
// and must start identical on both sides of the comparison.
func equivalenceMethods(env *cknn.Env) []struct {
	name  string
	build func() cknn.Method
} {
	return []struct {
		name  string
		build func() cknn.Method
	}{
		{"BruteForce", func() cknn.Method { return cknn.NewBruteForce(env) }},
		{"Index-Quadtree", func() cknn.Method { return cknn.NewIndexQuadtree(env) }},
		{"Index-Grid", func() cknn.Method { return cknn.NewIndexGrid(env, 0) }},
		{"Index-RTree", func() cknn.Method { return cknn.NewIndexRTree(env) }},
		{"Random", func() cknn.Method { return cknn.NewRandom(env, 21) }},
		{"EcoCharge", func() cknn.Method {
			return cknn.NewEcoCharge(env, cknn.EcoChargeOptions{ReuseDistM: 5000})
		}},
	}
}

func TestParallelTripEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario builds are slow")
	}
	for _, p := range trajectory.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			sc, err := experiment.BuildScenarioFromProfile(p, 0.0005, 7)
			if err != nil {
				t.Fatalf("BuildScenarioFromProfile: %v", err)
			}
			trips := sc.Trips
			if len(trips) > 2 {
				trips = trips[:2]
			}
			if len(trips) == 0 {
				t.Fatalf("profile %s produced no trips", p.Name)
			}
			seq := cknn.TripOptions{K: 3, SegmentLenM: 4000}
			seq.Workers = 1
			par := seq
			par.Workers = 4
			for _, mt := range equivalenceMethods(sc.Env) {
				mt := mt
				t.Run(mt.name, func(t *testing.T) {
					for _, trip := range trips {
						want := cknn.RunTrip(sc.Env, mt.build(), trip, seq)
						got := cknn.RunTrip(sc.Env, mt.build(), trip, par)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("trip %d: Workers=4 results differ from Workers=1\nseq: %v\npar: %v",
								trip.ID, summarize(want), summarize(got))
						}
						// Equivalence alone would accept two identically
						// malformed tables; pin the invariants too.
						for _, res := range want {
							tabletest.CheckOpts(t, res.Table, seq.K, mt.name,
								tabletest.Options{SkipScores: mt.name == "Random"})
						}
						wantSL := cknn.SplitList(sc.Env, mt.build(), trip, seq)
						gotSL := cknn.SplitList(sc.Env, mt.build(), trip, par)
						if !reflect.DeepEqual(wantSL, gotSL) {
							t.Fatalf("trip %d: split lists differ: seq %v vs par %v",
								trip.ID, splitIDs(wantSL), splitIDs(gotSL))
						}
					}
				})
			}
		})
	}
}

// summarize renders per-segment charger IDs for failure messages.
func summarize(rs []cknn.SegmentResult) [][]int64 {
	out := make([][]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Table.IDs()
	}
	return out
}

func splitIDs(sl []cknn.SplitPoint) [][]int64 {
	out := make([][]int64, len(sl))
	for i, s := range sl {
		out[i] = s.NN
	}
	return out
}

package fault

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Transport is an http.RoundTripper that injects deterministic faults in
// front of an inner transport: outright failures (a transport error before
// the request reaches the inner round tripper), staleness (the response
// passes through with an X-Fault-Stale header for observability), and
// latency (via an injectable sleep, so tests never block on real time).
//
// Each attempt is a distinct event — decisions consume the injector's
// sequence counter — which is what gives client retries a chance to succeed
// at nonzero fault rates.
type Transport struct {
	// Inner handles requests the injector lets through. Nil selects
	// http.DefaultTransport.
	Inner http.RoundTripper
	// Inj makes the decisions; nil disables injection entirely.
	Inj *Injector
	// Sleep applies injected latency. Nil selects time.Sleep; tests install
	// a recorder to keep the suite instant.
	Sleep func(time.Duration)
}

// TransportError is the injected failure returned by a faulted round trip,
// distinguishable from genuine transport errors in assertions.
type TransportError struct {
	// Endpoint is the path of the faulted request.
	Endpoint string
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("fault: injected transport error on %s", e.Endpoint)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if t.Inj == nil {
		return inner.RoundTrip(req)
	}
	d := t.Inj.DecideSeq(saltTransport, HashString(req.Method), HashString(req.URL.Path))
	if d.Latency > 0 {
		if t.Sleep != nil {
			t.Sleep(d.Latency)
		} else if err := sleepCtx(req.Context(), d.Latency); err != nil {
			return nil, err
		}
	}
	if d.Fail {
		return nil, &TransportError{Endpoint: req.URL.Path}
	}
	resp, err := inner.RoundTrip(req)
	if err == nil && d.Stale {
		resp.Header.Set("X-Fault-Stale", strconv.FormatUint(t.Inj.Tick(), 10))
	}
	return resp, err
}

// sleepCtx waits for d or until the request's context is cancelled,
// whichever comes first, so injected latency cannot outlive the caller's
// deadline.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// saltTransport namespaces transport decisions away from source decisions
// sharing the same injector.
const saltTransport uint64 = 0x7a2a5b0

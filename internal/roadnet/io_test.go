package roadnet

import (
	"bytes"
	"strings"
	"testing"

	"ecocharge/internal/geo"
)

func TestGraphCSVRoundTrip(t *testing.T) {
	orig := GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 4, HeightKM: 3,
		SpacingM: 500, RemoveFrac: 0.1, JitterFrac: 0.2, ArterialEach: 3, Seed: 9,
	})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumNodes() != orig.NumNodes() || back.NumEdges() != orig.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), orig.NumNodes(), orig.NumEdges())
	}
	for i := 0; i < orig.NumNodes(); i += 7 {
		op, bp := orig.Node(NodeID(i)).P, back.Node(NodeID(i)).P
		if geo.Distance(op, bp) > 0.2 {
			t.Fatalf("node %d drifted %.2f m", i, geo.Distance(op, bp))
		}
	}
	for i, oe := range orig.Edges() {
		be := back.Edges()[i]
		if oe.From != be.From || oe.To != be.To || oe.Class != be.Class {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, oe, be)
		}
	}
	// Shortest paths must agree (within rounding of the 0.1 m lengths).
	for _, pair := range [][2]NodeID{{0, NodeID(orig.NumNodes() - 1)}, {3, 17}} {
		a := orig.ShortestDistance(pair[0], pair[1], DistanceWeight)
		b := back.ShortestDistance(pair[0], pair[1], DistanceWeight)
		if diff := a - b; diff > 1 || diff < -1 {
			t.Fatalf("shortest path %v differs: %.1f vs %.1f", pair, a, b)
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	valid := "id,lat,lon\n0,53.0,8.0\n1,53.1,8.1\n\nfrom,to,length_m,class\n0,1,100.0,0\n"
	if _, err := ReadCSV(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	cases := map[string]string{
		"bad nodes header": "nope,lat,lon\n",
		"missing edges":    "id,lat,lon\n0,53.0,8.0\n",
		"id out of order":  "id,lat,lon\n1,53.0,8.0\n\nfrom,to,length_m,class\n",
		"bad lat":          "id,lat,lon\n0,abc,8.0\n\nfrom,to,length_m,class\n",
		"lat out of range": "id,lat,lon\n0,99,8.0\n\nfrom,to,length_m,class\n",
		"edge bad node":    "id,lat,lon\n0,53.0,8.0\n\nfrom,to,length_m,class\n0,5,100,0\n",
		"edge bad class":   "id,lat,lon\n0,53.0,8.0\n1,53.1,8.1\n\nfrom,to,length_m,class\n0,1,100,9\n",
		"edge neg length":  "id,lat,lon\n0,53.0,8.0\n1,53.1,8.1\n\nfrom,to,length_m,class\n0,1,-5,0\n",
		"edge bad from":    "id,lat,lon\n0,53.0,8.0\n\nfrom,to,length_m,class\nxx,0,100,0\n",
		"empty":            "",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}

func TestReadCSVEmptyGraphSections(t *testing.T) {
	// Headers only: a legal zero-node, zero-edge graph.
	data := "id,lat,lon\nfrom,to,length_m,class\n"
	g, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatalf("headers-only graph rejected: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

// Package fleet turns the single-process EIS into a partition-tolerant
// sharded deployment: N EIS instances each own a rendezvous-hashed
// partition of the charger inventory, and a thin gateway in front fans
// queries out, health-checks the members, hedges slow shards, and merges
// per-shard Offering Tables into exactly the table a single EIS over the
// whole inventory would have served.
//
// The design contract is the degraded-component machinery of
// docs/resilience.md lifted one level up: a shard that dies, hangs or flaps
// mid-trip never makes a request fail and never silently shrinks a table.
// Its chargers stay in every Offering Table at the ignorance bound [0,1],
// tagged cknn.DegradedShard, so a client can tell "this charger scored
// badly" from "this charger's shard did not answer" — and nothing is ever
// wrongly pruned.
//
// Correctness of the merge rests on two properties the tests pin:
//
//  1. Per-charger scores are shard-independent. Every Estimated Component
//     of a charger is a function of the charger, the query and the
//     environment models — never of the other candidates — provided the
//     shard environments share the parent's normalizers (MaxLKW,
//     MaxDeroutSec), which ShardEnv guarantees.
//  2. cknn.Rank's output set is exactly the top-k under the SC_max total
//     order (the eq. 6 intersection plus its SC_max-ordered padding is
//     set-wise that top-k), emitted in SC-midpoint order. Restricting a
//     total order to a partition preserves relative order, so the union of
//     per-shard top-k tables contains the global top-k, and the gateway
//     recovers it exactly: select k by the SC_max chain, emit in the
//     midpoint chain.
package fleet

import (
	"fmt"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
)

// Partition assigns chargers to shards by rendezvous (highest-random-
// weight) hashing over the charger ID: every participant — shard builders
// and gateway alike — computes the same owner without any shared state, and
// changing N moves only the minimal set of chargers.
type Partition struct {
	// N is the shard count; ShardOf panics when it is not positive.
	N int
}

// ShardOf returns the owning shard index in [0, N) for a charger ID.
func (p Partition) ShardOf(id int64) int {
	if p.N <= 0 {
		panic(fmt.Sprintf("fleet: partition over %d shards", p.N))
	}
	best, bestScore := 0, uint64(0)
	for s := 0; s < p.N; s++ {
		score := rendezvousScore(uint64(s), uint64(id))
		if score > bestScore || (score == bestScore && s < best) {
			best, bestScore = s, score
		}
	}
	return best
}

// rendezvousScore mixes (shard, charger) with the same splitmix64 finalizer
// the fault and obs layers use for deterministic hashing.
func rendezvousScore(shard, id uint64) uint64 {
	x := shard*0x9e3779b97f4a7c15 + id + 0x632be59bd9b4e019
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardEnv restricts a parent environment to the chargers shard owns under
// an N-way partition. The road network, the EC models and — critically —
// the normalizers MaxLKW and MaxDeroutSec are shared with the parent, so a
// charger's Estimated Components (and therefore its SC interval) are
// bit-identical whether evaluated against the shard environment or the
// whole-world one. Recomputing MaxLKW from the partition would silently
// re-scale L per shard and break the cross-shard merge.
func ShardEnv(parent *cknn.Env, shard, n int) (*cknn.Env, error) {
	if shard < 0 || shard >= n {
		return nil, fmt.Errorf("fleet: shard %d outside [0,%d)", shard, n)
	}
	part := Partition{N: n}
	var own []charger.Charger
	for _, c := range parent.Chargers.All() {
		if part.ShardOf(c.ID) == shard {
			own = append(own, c)
		}
	}
	set, err := charger.NewSet(own)
	if err != nil {
		return nil, fmt.Errorf("fleet: building shard %d charger set: %w", shard, err)
	}
	env := *parent
	env.Chargers = set
	return &env, nil
}

package roadnet

import "ecocharge/internal/obs"

// kernelMetrics are the package's instrumentation handles, resolved once at
// init so the expansion hot path pays a single atomic op per update (0
// allocs/op; priced end-to-end by BenchmarkObsOverhead). Metric names are
// constants — the obsalloc ecolint check rejects fmt.Sprintf-built names in
// this package.
type kernelMetrics struct {
	expansions   *obs.Counter // bounded network expansions started
	poolAcquires *obs.Counter // search states checked out of the pool
	poolNews     *obs.Counter // pool misses: fresh searchState allocations
	poolReleases *obs.Counter // states returned to the pool

	// Many-target expansions (ExpandToMany and its reverse form): how much
	// of the travel-time ball the target-aware truncation actually touches.
	manyExpansions     *obs.Counter // many-target expansions started
	manyTargetsSettled *obs.Counter // targets settled across many-target runs
	manySettled        *obs.Counter // nodes settled (touched) by many-target runs
	manyEarlyTerms     *obs.Counter // runs cut short before exhausting the frontier
}

func newKernelMetrics(r *obs.Registry) *kernelMetrics {
	return &kernelMetrics{
		expansions:         r.Counter("roadnet_expansions_total"),
		poolAcquires:       r.Counter("roadnet_pool_acquires_total"),
		poolNews:           r.Counter("roadnet_pool_news_total"),
		poolReleases:       r.Counter("roadnet_pool_releases_total"),
		manyExpansions:     r.Counter("roadnet_many_expansions_total"),
		manyTargetsSettled: r.Counter("roadnet_many_targets_settled_total"),
		manySettled:        r.Counter("roadnet_many_nodes_settled_total"),
		manyEarlyTerms:     r.Counter("roadnet_many_early_terminations_total"),
	}
}

var met = newKernelMetrics(obs.Default())

package geo

// Simplify reduces a polyline with the Douglas-Peucker algorithm: points
// farther than toleranceM meters from the simplified line are kept. The
// Geolife profile samples every 1–5 seconds, producing far more points
// than the CkNN evaluation needs; simplification keeps the geometry within
// a bounded error. The first and last points are always retained.
func Simplify(pts []Point, toleranceM float64) []Point {
	if len(pts) <= 2 || toleranceM <= 0 {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	simplifyRange(pts, 0, len(pts)-1, toleranceM, keep)
	out := make([]Point, 0, len(pts))
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

// simplifyRange marks the points to keep between the fixed endpoints lo
// and hi (exclusive interior), recursing on the farthest outlier.
func simplifyRange(pts []Point, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxDist := -1.0
	maxIdx := -1
	for i := lo + 1; i < hi; i++ {
		d, _ := PointSegmentDistance(pts[i], pts[lo], pts[hi])
		if d > maxDist {
			maxDist = d
			maxIdx = i
		}
	}
	if maxDist <= tol {
		return
	}
	keep[maxIdx] = true
	simplifyRange(pts, lo, maxIdx, tol, keep)
	simplifyRange(pts, maxIdx, hi, tol, keep)
}

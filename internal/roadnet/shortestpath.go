package roadnet

import (
	"ecocharge/internal/geo"
)

// All point-to-point and expansion queries below run on the flat kernel in
// flat.go: pooled search states with generation-stamped dense arrays replace
// the per-call map[NodeID] bookkeeping of the original implementation. The
// differential suite in flat_test.go proves each query equivalent to its
// map-backed predecessor before that code was deleted.

// ShortestPath runs Dijkstra from src to dst under the weight function.
// It returns the path and true, or a zero path and false when dst is
// unreachable. Negative weights are a caller bug and panic.
func (g *Graph) ShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	g.mustFrozen()
	if !g.validID(src) || !g.validID(dst) {
		return Path{}, false
	}
	st := g.acquireState()
	defer st.release()
	st.run(src, dst, w, nil, unreachable, true, false)
	if !st.reached(dst) {
		return Path{}, false
	}
	return Path{Nodes: st.path(src, dst), Weight: st.dist[dst]}, true
}

// ShortestDistance returns only the weight of the shortest src→dst path,
// or +Inf when unreachable. It runs with predecessor bookkeeping disabled:
// distance-only callers pay for distances only.
func (g *Graph) ShortestDistance(src, dst NodeID, w WeightFunc) float64 {
	g.mustFrozen()
	if !g.validID(src) || !g.validID(dst) {
		return unreachable
	}
	st := g.acquireState()
	defer st.release()
	st.run(src, dst, w, nil, unreachable, false, false)
	if !st.reached(dst) {
		return unreachable
	}
	return st.dist[dst]
}

// DistancesWithin runs a bounded Dijkstra from src, returning the weight of
// every node reachable within maxWeight. This is the map-shaped convenience
// form of the network-expansion primitive; hot callers use ExpandFrom and
// read the dense arrays directly through Expansion.
//
//ecolint:ignore hotalloc map-shaped convenience API; hot callers use ExpandFrom
func (g *Graph) DistancesWithin(src NodeID, w WeightFunc, maxWeight float64) map[NodeID]float64 {
	g.mustFrozen()
	if !g.validID(src) {
		return nil
	}
	st := g.acquireState()
	defer st.release()
	st.run(src, Invalid, w, nil, maxWeight, false, false)
	return st.toMap()
}

// DistancesTo runs a bounded Dijkstra on the reverse graph, yielding the
// weight of reaching dst from every node within maxWeight. Map-shaped
// convenience form of ExpandTo, used for the return-to-route leg.
//
//ecolint:ignore hotalloc map-shaped convenience API; hot callers use ExpandTo
func (g *Graph) DistancesTo(dst NodeID, w WeightFunc, maxWeight float64) map[NodeID]float64 {
	g.mustFrozen()
	if !g.validID(dst) {
		return nil
	}
	st := g.acquireState()
	defer st.release()
	st.run(dst, Invalid, w, nil, maxWeight, false, true)
	return st.toMap()
}

// AStar runs A* from src to dst under the weight function, using a
// haversine-based admissible heuristic scaled by heuristicScale. For the
// distance metric pass 1.0; for time metrics pass the inverse of the
// maximum speed so the heuristic stays admissible.
func (g *Graph) AStar(src, dst NodeID, w WeightFunc, heuristicScale float64) (Path, bool) {
	g.mustFrozen()
	if !g.validID(src) || !g.validID(dst) {
		return Path{}, false
	}
	target := g.nodes[dst].P
	h := func(id NodeID) float64 {
		return geo.Distance(g.nodes[id].P, target) * heuristicScale
	}
	st := g.acquireState()
	defer st.release()
	st.dist[src] = 0
	st.seen[src] = st.stamp
	st.prev[src] = Invalid
	st.pq.push(src, h(src))
	for len(st.pq.items) > 0 {
		cur := st.pq.pop()
		if st.mark[cur.node].done == st.stamp {
			continue
		}
		st.mark[cur.node].done = st.stamp
		if cur.node == dst {
			return Path{Nodes: st.path(src, dst), Weight: st.dist[dst]}, true
		}
		base := st.dist[cur.node]
		for _, ei := range g.adj[cur.node] {
			e := &g.edges[ei]
			wt := w(*e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := base + wt
			if st.seen[e.To] != st.stamp || nd < st.dist[e.To] {
				st.dist[e.To] = nd
				st.seen[e.To] = st.stamp
				st.prev[e.To] = cur.node
				st.pq.push(e.To, nd+h(e.To))
			}
		}
	}
	return Path{}, false
}

// Command ecobench regenerates the paper's evaluation figures (Figs. 6–9)
// as text tables: for every dataset it runs the compared methods and prints
// SC% (of the Brute-Force optimum) and per-query CPU time F_t, mean ±
// standard deviation over repetitions. The extra "design" figure isolates
// EcoCharge's own design choices (cache, interval approximation).
//
// Example:
//
//	ecobench -fig all -scale 0.002 -reps 10 -csv results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ecocharge/internal/experiment"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, design, horizon or all")
		scale = flag.Float64("scale", 0.002, "trip-count scale relative to the paper's full datasets")
		seed  = flag.Int64("seed", 42, "scenario seed")
		reps  = flag.Int("reps", 5, "measurement repetitions (paper: ~10)")
		trips = flag.Int("trips", 8, "trips sampled per repetition")
		k     = flag.Int("k", 3, "chargers per Offering Table")
		csvP  = flag.String("csv", "", "also export all measurements to this CSV file")
	)
	flag.Parse()

	cfg := experiment.RunConfig{Repetitions: *reps, TripsPerRep: *trips, K: *k}
	if err := run(*fig, *scale, *seed, cfg, *csvP); err != nil {
		fmt.Fprintln(os.Stderr, "ecobench:", err)
		os.Exit(1)
	}
}

// figureSpec binds a figure id to its runner and title.
type figureSpec struct {
	id       string
	title    string
	ablation bool // use the ablation printer (shares columns)
	run      func(sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error)
}

func figures() []figureSpec {
	return []figureSpec{
		{
			id:    "6",
			title: "Figure 6 — Performance Evaluation (all methods, R=50km Q=5km, equal weights)",
			run:   experiment.RunPerformance,
		},
		{
			id:    "7",
			title: "Figure 7 — R-opt Evaluation (EcoCharge, R ∈ {25, 50, 75} km)",
			run: func(sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error) {
				return experiment.RunROpt(sc, cfg, []float64{25, 50, 75})
			},
		},
		{
			id:    "8",
			title: "Figure 8 — Q-opt Evaluation (EcoCharge, Q ∈ {5, 10, 15} km)",
			run: func(sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error) {
				return experiment.RunQOpt(sc, cfg, []float64{5, 10, 15})
			},
		},
		{
			id:       "9",
			title:    "Figure 9 — Ablation of Weight Parameters (AWE/OSC/OA/ODC)",
			ablation: true,
			run:      experiment.RunAblation,
		},
		{
			id:    "horizon",
			title: "Horizon Sweep — EcoCharge planning h ahead vs a fresh-forecast oracle",
			run: func(sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error) {
				return experiment.RunHorizonSweep(sc, cfg, []time.Duration{0, 2 * time.Hour, 6 * time.Hour, 24 * time.Hour})
			},
		},
		{
			id:    "design",
			title: "Design Ablation — EcoCharge variants (cache off / exact intervals)",
			run:   experiment.RunDesignAblation,
		},
	}
}

func run(fig string, scale float64, seed int64, cfg experiment.RunConfig, csvPath string) error {
	valid := false
	for _, spec := range figures() {
		if fig == "all" || fig == spec.id {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("unknown figure %q (want one of %s)", fig,
			strings.Join([]string{"6", "7", "8", "9", "design", "horizon", "all"}, ", "))
	}

	scenarios, err := experiment.BuildAllScenarios(scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("scenarios at scale %g (trips per dataset: ", scale)
	for i, sc := range scenarios {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", sc.Name, len(sc.Trips))
	}
	fmt.Println(")")
	fmt.Println()

	var exported []experiment.Measurement
	for _, spec := range figures() {
		if fig != "all" && fig != spec.id {
			continue
		}
		var all []experiment.Measurement
		for _, sc := range scenarios {
			ms, err := spec.run(sc, cfg)
			if err != nil {
				return err
			}
			all = append(all, ms...)
		}
		if spec.ablation {
			err = experiment.PrintAblation(os.Stdout, spec.title, all)
		} else {
			err = experiment.PrintFigure(os.Stdout, spec.title, all)
		}
		if err != nil {
			return err
		}
		fmt.Println()
		exported = append(exported, all...)
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiment.WriteMeasurementsCSV(f, exported); err != nil {
			return fmt.Errorf("exporting CSV: %w", err)
		}
		fmt.Printf("exported %d measurements to %s\n", len(exported), csvPath)
	}
	return nil
}

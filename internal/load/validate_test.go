package load

import (
	"net/http"
	"strings"
	"testing"
)

// TestClassifyContract pins the per-response contract table without a
// server: which (status, headers, body) shapes count as valid, degraded,
// shed, invalid, and error.
func TestClassifyContract(t *testing.T) {
	hdr := func(kv ...string) http.Header {
		h := http.Header{}
		for i := 0; i+1 < len(kv); i += 2 {
			h.Set(kv[i], kv[i+1])
		}
		return h
	}
	emptyTable := []byte(`{"generated_at":"2024-06-18T09:30:00Z","entries":[]}`)
	// Two entries misordered by SC: decodes fine, fails tabletest.
	misordered := []byte(`{"generated_at":"2024-06-18T09:30:00Z","entries":[` +
		`{"charger_id":1,"sc":{"min":0.1,"max":0.2},"l":{"min":0,"max":1},"a":{"min":0,"max":1},"d":{"min":0,"max":1}},` +
		`{"charger_id":2,"sc":{"min":0.8,"max":0.9},"l":{"min":0,"max":1},"a":{"min":0,"max":1},"d":{"min":0,"max":1}}]}`)

	cases := []struct {
		name    string
		status  int
		header  http.Header
		body    []byte
		want    Outcome
		errFrag string
	}{
		{"valid empty table", 200, hdr(), emptyTable, OutcomeValid, ""},
		{"degraded header", 200, hdr(degradedHeader, "1"), emptyTable, OutcomeDegraded, ""},
		{"corrupt json", 200, hdr(), []byte(`{"entries":`), OutcomeInvalid, "JSON body corrupt"},
		{"corrupt wire", 200, hdr("Content-Type", "application/x-ecocharge-wire"), []byte{0xEC, 0xFF}, OutcomeInvalid, "wire body corrupt"},
		{"misordered table", 200, hdr(), misordered, OutcomeInvalid, ""},
		{"shed with seconds", 503, hdr("Retry-After", "2"), nil, OutcomeShed, ""},
		{"shed without retry-after", 503, hdr(), nil, OutcomeInvalid, "Retry-After"},
		{"shed with garbage retry-after", 503, hdr("Retry-After", "soon"), nil, OutcomeInvalid, "Retry-After"},
		{"unexpected status", 418, hdr(), []byte("teapot"), OutcomeError, "unexpected status 418"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Classify(tc.status, tc.header, tc.body, 5)
			if got != tc.want {
				t.Fatalf("Classify=%v (%v), want %v", got, err, tc.want)
			}
			if tc.want == OutcomeValid || tc.want == OutcomeDegraded || tc.want == OutcomeShed {
				if err != nil {
					t.Fatalf("clean outcome carried error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("violation outcome carried no explanation")
			}
			if tc.errFrag != "" && !strings.Contains(err.Error(), tc.errFrag) {
				t.Fatalf("error %q lacks %q", err, tc.errFrag)
			}
		})
	}
}

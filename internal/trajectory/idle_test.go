package trajectory

import (
	"testing"
	"time"

	"ecocharge/internal/geo"
)

// mkIdleTrajectory builds: drive east, park 30 min, drive east again.
func mkIdleTrajectory(parkMin int) Trajectory {
	tr := Trajectory{ID: 1}
	at := t0
	p := geo.Point{Lat: 53.10, Lon: 8.20}
	emit := func() {
		tr.Points = append(tr.Points, TimedPoint{P: p, T: at})
	}
	// Drive: 10 samples, 300 m apart, 30 s apart.
	for i := 0; i < 10; i++ {
		emit()
		p = geo.Destination(p, 90, 300)
		at = at.Add(30 * time.Second)
	}
	// Park: samples every minute with ±20 m GPS jitter.
	base := p
	for i := 0; i < parkMin; i++ {
		p = geo.Destination(base, float64(i*73%360), 20)
		emit()
		at = at.Add(time.Minute)
	}
	p = base
	// Drive again.
	for i := 0; i < 10; i++ {
		emit()
		p = geo.Destination(p, 90, 300)
		at = at.Add(30 * time.Second)
	}
	return tr
}

func TestDetectIdlePeriods(t *testing.T) {
	tr := mkIdleTrajectory(30)
	got := DetectIdlePeriods(tr, IdleConfig{})
	if len(got) != 1 {
		t.Fatalf("detected %d idle periods, want 1", len(got))
	}
	ip := got[0]
	if d := ip.Duration(); d < 25*time.Minute || d > 35*time.Minute {
		t.Errorf("idle duration %v, want ~29min", d)
	}
	if ip.Samples < 25 {
		t.Errorf("idle covers %d samples", ip.Samples)
	}
	// Center near the parking spot (within the jitter radius).
	park := tr.Points[10].P
	if d := geo.Distance(ip.Center, park); d > 100 {
		t.Errorf("center %v is %.0f m from the parking spot", ip.Center, d)
	}
}

func TestDetectIdleRespectsMinDuration(t *testing.T) {
	tr := mkIdleTrajectory(5) // 5-minute stop
	if got := DetectIdlePeriods(tr, IdleConfig{MinDuration: 10 * time.Minute}); len(got) != 0 {
		t.Fatalf("5-minute stop detected with a 10-minute threshold: %v", got)
	}
	if got := DetectIdlePeriods(tr, IdleConfig{MinDuration: 3 * time.Minute}); len(got) != 1 {
		t.Fatalf("5-minute stop missed with a 3-minute threshold")
	}
}

func TestDetectIdleMovingTrajectory(t *testing.T) {
	// Constant driving: no idle windows at all.
	g := smallGraph(t)
	trip := genTrips(t, g, 1)[0]
	tr := Sample(g, trip, 30*time.Second)
	if got := DetectIdlePeriods(tr, IdleConfig{}); len(got) != 0 {
		t.Fatalf("moving trajectory produced idle periods: %v", got)
	}
}

func TestDetectIdleMultipleStops(t *testing.T) {
	a := mkIdleTrajectory(20)
	// Append a second trajectory's points shifted in time and space to
	// create a second stop.
	b := mkIdleTrajectory(15)
	offset := a.Points[len(a.Points)-1].T.Sub(t0) + time.Minute
	shift := geo.Distance(a.Points[0].P, a.Points[len(a.Points)-1].P) + 1000
	for _, p := range b.Points {
		a.Points = append(a.Points, TimedPoint{
			P: geo.Destination(p.P, 90, shift),
			T: p.T.Add(offset),
		})
	}
	got := DetectIdlePeriods(a, IdleConfig{})
	if len(got) != 2 {
		t.Fatalf("detected %d idle periods, want 2", len(got))
	}
	if !got[1].Start.After(got[0].End) {
		t.Error("idle periods overlap")
	}
}

func TestDetectIdleEmpty(t *testing.T) {
	if got := DetectIdlePeriods(Trajectory{}, IdleConfig{}); got != nil {
		t.Errorf("empty trajectory: %v", got)
	}
}

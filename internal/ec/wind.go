package ec

import (
	"math"
	"time"

	"ecocharge/internal/interval"
)

// WindModel predicts production of wind turbines attached to charger
// sites. The paper's RES integration names "photovoltaic panels, wind
// turbines" (§I); wind complements solar with a very different profile —
// it produces at night and in winter, with synoptic (multi-day) rather
// than diurnal variability, and its forecasts degrade faster than solar
// because wind speed errors cube into power errors.
type WindModel struct {
	Seed int64
	// MeanCapacityFactor in (0,1) is the long-run average output fraction.
	// Default 0.30 (onshore).
	MeanCapacityFactor float64
}

// NewWindModel returns a model with the default capacity factor.
func NewWindModel(seed int64) *WindModel {
	return &WindModel{Seed: seed, MeanCapacityFactor: 0.30}
}

func (m *WindModel) meanCF() float64 {
	if m.MeanCapacityFactor <= 0 || m.MeanCapacityFactor >= 1 {
		return 0.30
	}
	return m.MeanCapacityFactor
}

// capacityFactor returns the true output fraction in [0,1] for the site's
// weather cell at t: a slow synoptic process (~36 h timescale) modulated
// by a mild nocturnal boost (stable boundary layer winds).
func (m *WindModel) capacityFactor(site Site, t time.Time) float64 {
	cellLat := int64(math.Floor(site.P.Lat * 4)) // coarser cells than solar: wind fronts are wide
	cellLon := int64(math.Floor(site.P.Lon * 4))
	cell := uint64(cellLat)<<32 ^ uint64(uint32(cellLon))
	// Synoptic noise: interpolate 36-hour buckets.
	synoptic := smoothNoise(uint64(m.Seed)^windSalt, cell, float64(t.Unix())/3600/36)
	// Map uniform noise through a skewed curve so calm spells and storms
	// both occur; scale to the configured mean.
	cf := math.Pow(synoptic, 1.6) * m.meanCF() / 0.38
	// Nocturnal boost up to +15%.
	h := float64(t.Hour())
	night := 0.15 * math.Exp(-sq(h-2)/18)
	cf *= 1 + night
	if cf > 1 {
		cf = 1
	}
	return cf
}

// windSalt decorrelates wind noise from the other EC streams.
const windSalt uint64 = 0x3b1ade5

// Truth returns the actual wind production in kW at t for a site whose
// CapacityKW is the turbine nameplate rating.
func (m *WindModel) Truth(site Site, t time.Time) float64 {
	return site.CapacityKW * m.capacityFactor(site, t)
}

// windForecastError is the relative half-width at the horizon: wind power
// forecasts degrade roughly twice as fast as irradiance forecasts.
func windForecastError(horizon time.Duration) float64 {
	h := horizon.Hours()
	switch {
	case h <= 0:
		return 0.01
	case h <= 12:
		return 0.09 * h / 12
	case h <= 72:
		return 0.09 + (0.20-0.09)*(h-12)/60
	default:
		return 0.30
	}
}

// Forecast returns the production interval at t for a forecast issued at
// issuedAt, clamped to the physical [0, capacity] range and containing the
// truth.
func (m *WindModel) Forecast(site Site, t, issuedAt time.Time) interval.I {
	if site.CapacityKW <= 0 {
		return interval.Exact(0)
	}
	truth := m.Truth(site, t)
	err := windForecastError(t.Sub(issuedAt)) * site.CapacityKW
	return interval.New(truth-err, truth+err).Clamp(0, site.CapacityKW)
}

package cknn

import "ecocharge/internal/obs"

// engineMetrics bundles the package's hot-path instrumentation handles.
// Handles are resolved once at package init — metric registration takes a
// lock and belongs off the ranking path — and every update below is a
// single atomic op (0 allocs/op, proven by the obs package and by
// BenchmarkObsOverhead on the full EcoCharge method). Names are constants:
// the obsalloc ecolint check rejects fmt.Sprintf-built metric names here.
type engineMetrics struct {
	// Filtering/refinement phase durations per Rank call (Alg. 1's two
	// phases).
	filterSeconds *obs.Histogram
	refineSeconds *obs.Histogram

	// Filtering-phase outcome counters, one increment per candidate.
	pruneRejected *obs.Counter // optimistic bound could not enter the top-k
	evaluated     *obs.Counter // full EC evaluation performed
	unreachable   *obs.Counter // outside the expansion bound

	// Degraded-component tags emitted by evaluate/adapt (one per entry
	// whose source failed, per component).
	degradedL *obs.Counter
	degradedA *obs.Counter
	degradedD *obs.Counter

	// ShardedCache traffic (the paper's dynamic cache §IV.C).
	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheStores        *obs.Counter
	cacheInvalidations *obs.Counter
	cacheAdaptDropped  *obs.Counter // cached entries that drifted out of R on adapt
	cacheSlots         *obs.Gauge   // live owner slots across all ShardedCaches

	// DeroutingMaps construction and release (each exact computation runs
	// four pooled expansions, each approximation two). Batched computations
	// also count their targets, so targets-per-computation and (with the
	// roadnet_many_* counters) settled-nodes-per-target are derivable.
	deroutExact    *obs.Counter
	deroutApprox   *obs.Counter
	deroutBatched  *obs.Counter
	deroutTargets  *obs.Counter
	deroutReleases *obs.Counter
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	return &engineMetrics{
		filterSeconds:      r.Histogram("cknn_filter_seconds", nil),
		refineSeconds:      r.Histogram("cknn_refine_seconds", nil),
		pruneRejected:      r.Counter("cknn_prune_rejected_total"),
		evaluated:          r.Counter("cknn_evaluated_total"),
		unreachable:        r.Counter("cknn_unreachable_total"),
		degradedL:          r.Counter("cknn_degraded_l_total"),
		degradedA:          r.Counter("cknn_degraded_a_total"),
		degradedD:          r.Counter("cknn_degraded_d_total"),
		cacheHits:          r.Counter("cknn_cache_hits_total"),
		cacheMisses:        r.Counter("cknn_cache_misses_total"),
		cacheStores:        r.Counter("cknn_cache_stores_total"),
		cacheInvalidations: r.Counter("cknn_cache_invalidations_total"),
		cacheAdaptDropped:  r.Counter("cknn_cache_adapt_dropped_total"),
		cacheSlots:         r.Gauge("cknn_cache_slots"),
		deroutExact:        r.Counter("cknn_derouting_exact_total"),
		deroutApprox:       r.Counter("cknn_derouting_approx_total"),
		deroutBatched:      r.Counter("cknn_derouting_batched_total"),
		deroutTargets:      r.Counter("cknn_derouting_targets_total"),
		deroutReleases:     r.Counter("cknn_derouting_releases_total"),
	}
}

// met is the package's live instrumentation. BenchmarkObsOverhead swaps it
// for newEngineMetrics(nil) — all-discarding handles — to price the
// instrumentation against the disabled path.
var met = newEngineMetrics(obs.Default())

// countDegraded tags the component counters for one emitted entry.
func countDegraded(deg Degraded) {
	if deg == 0 {
		return
	}
	if deg.Has(CompL) {
		met.degradedL.Inc()
	}
	if deg.Has(CompA) {
		met.degradedA.Inc()
	}
	if deg.Has(CompD) {
		met.degradedD.Inc()
	}
}

module ecocharge

go 1.22

package interval_test

import (
	"fmt"

	"ecocharge/internal/interval"
)

// The Sustainability Score of eqs. 4–5: three interval-valued Estimated
// Components combined with equal weights.
func ExampleWeightedSum() {
	l := interval.New(0.6, 0.9) // sustainable charging level
	a := interval.New(0.3, 0.5) // availability
	d := interval.New(0.1, 0.4) // derouting cost (lower is better)
	w := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	sc := interval.WeightedSum([]interval.I{l, a, d.Complement()}, w)
	fmt.Println(sc)
	// Output: [0.5, 0.7667]
}

func ExampleI_DefinitelyLess() {
	worse := interval.New(0.1, 0.3)
	better := interval.New(0.5, 0.9)
	overlapping := interval.New(0.25, 0.6)
	fmt.Println(worse.DefinitelyLess(better))
	fmt.Println(worse.DefinitelyLess(overlapping))
	// Output:
	// true
	// false
}

func ExampleI_Intersect() {
	a := interval.New(0.2, 0.6)
	b := interval.New(0.4, 0.9)
	got, ok := a.Intersect(b)
	fmt.Println(got, ok)
	// Output: [0.4, 0.6] true
}

package load

import (
	"testing"
	"time"

	"ecocharge/internal/trajectory"
)

// TestSessionsRoundRobin pins the query source's state machine: queries
// rotate across the vehicle pool, every query is a real segment anchor
// with a valid location, per-trip segment indexes advance in order, and
// finished trips are transparently replaced so the stream never ends.
func TestSessionsRoundRobin(t *testing.T) {
	env := testEnv(t)
	sampler, err := trajectory.NewSampler(env.Graph, trajectory.GenConfig{
		Seed: 9, MinTripKM: 1, Start: fixedNow, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	const vehicles = 8
	src, err := NewSessions(env.Graph, sampler, vehicles, 2000)
	if err != nil {
		t.Fatal(err)
	}

	lastSeg := make(map[int64]int)
	tripOfSlot := make(map[int]int64)
	const draws = 500
	for i := 0; i < draws; i++ {
		q, err := src.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if q.Lat == 0 && q.Lon == 0 {
			t.Fatalf("draw %d: zero anchor", i)
		}
		if q.ETA.Before(fixedNow) {
			t.Fatalf("draw %d: ETA %v before the departure window", i, q.ETA)
		}
		slot := i % vehicles
		if prev, ok := tripOfSlot[slot]; ok && prev == q.TripID {
			if q.Segment != lastSeg[q.TripID]+1 {
				t.Fatalf("draw %d: trip %d jumped from segment %d to %d", i, q.TripID, lastSeg[q.TripID], q.Segment)
			}
		} else if q.Segment != 0 {
			t.Fatalf("draw %d: fresh trip %d started at segment %d", i, q.TripID, q.Segment)
		}
		tripOfSlot[slot] = q.TripID
		lastSeg[q.TripID] = q.Segment
	}
	if src.Drawn() != draws {
		t.Fatalf("Drawn=%d, want %d", src.Drawn(), draws)
	}
	if len(lastSeg) <= vehicles {
		t.Fatalf("only %d trips seen over %d draws — finished trips are not being replaced", len(lastSeg), draws)
	}

	// Determinism: a second pool over the same seed yields the same stream.
	sampler2, err := trajectory.NewSampler(env.Graph, trajectory.GenConfig{
		Seed: 9, MinTripKM: 1, Start: fixedNow, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	src1, err := NewSessions(env.Graph, sampler2, vehicles, 2000)
	if err != nil {
		t.Fatal(err)
	}
	sampler3, _ := trajectory.NewSampler(env.Graph, trajectory.GenConfig{
		Seed: 9, MinTripKM: 1, Start: fixedNow, Window: time.Hour,
	})
	src2, err := NewSessions(env.Graph, sampler3, vehicles, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a, err1 := src1.Next()
		b, err2 := src2.Next()
		if err1 != nil || err2 != nil {
			t.Fatalf("draw %d: %v / %v", i, err1, err2)
		}
		if a != b {
			t.Fatalf("draw %d: query streams diverge: %+v vs %+v", i, a, b)
		}
	}

	if _, err := NewSessions(env.Graph, sampler, 0, 2000); err == nil {
		t.Fatal("vehicle count 0 accepted")
	}
}

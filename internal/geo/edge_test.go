package geo

import (
	"math"
	"testing"
)

func TestDestinationCrossesAntimeridian(t *testing.T) {
	// 200 km due east from just west of the date line lands just east of
	// it, with longitude normalized into [-180, 180].
	p := Point{Lat: 0, Lon: 179.5}
	q := Destination(p, 90, 200000)
	if q.Lon > -178 || q.Lon < -180 {
		t.Fatalf("crossed longitude = %v, want ≈ -178.7", q.Lon)
	}
	if !q.Valid() {
		t.Fatalf("invalid point after crossing: %v", q)
	}
}

func TestDestinationNearPole(t *testing.T) {
	p := Point{Lat: 89.5, Lon: 0}
	q := Destination(p, 0, 100000) // 100 km north crosses the pole region
	if !q.Valid() {
		t.Fatalf("invalid point near pole: %v", q)
	}
	if math.Abs(Haversine(p, q)-100000) > 1000 {
		t.Fatalf("distance %v, want ~100km", Haversine(p, q))
	}
}

func TestBearingSamePoint(t *testing.T) {
	p := Point{Lat: 53.1, Lon: 8.2}
	b := Bearing(p, p)
	if math.IsNaN(b) || b < 0 || b >= 360 {
		t.Fatalf("self bearing = %v", b)
	}
}

func TestMidpointAntipodalStable(t *testing.T) {
	// Nearly antipodal points: the midpoint must still be a valid point.
	a := Point{Lat: 10, Lon: 0}
	b := Point{Lat: -10, Lon: 179.9}
	m := Midpoint(a, b)
	if !m.Valid() {
		t.Fatalf("invalid midpoint: %v", m)
	}
}

func TestHaversineAntipodal(t *testing.T) {
	a := Point{Lat: 0, Lon: 0}
	b := Point{Lat: 0, Lon: 180}
	d := Haversine(a, b)
	half := math.Pi * EarthRadius
	if math.Abs(d-half) > 1000 {
		t.Fatalf("antipodal distance %v, want %v", d, half)
	}
}

func TestBBoxBufferNearPole(t *testing.T) {
	b := NewBBox(Point{Lat: 89.0, Lon: 10}, Point{Lat: 89.5, Lon: 20})
	g := b.Buffer(10000)
	if !g.Contains(b.Min) || !g.Contains(b.Max) {
		t.Fatal("buffered polar box lost the original")
	}
	// The longitude padding must be finite despite cos(lat) → 0.
	if math.IsInf(g.Min.Lon, 0) || math.IsNaN(g.Min.Lon) {
		t.Fatalf("polar buffer degenerate: %v", g)
	}
}

func TestSimplifyPreservesClosedLoop(t *testing.T) {
	// A square loop: all four corners survive any reasonable tolerance.
	var pts []Point
	corners := []Point{{53.0, 8.0}, {53.0, 8.05}, {53.03, 8.05}, {53.03, 8.0}, {53.0, 8.0}}
	for i := 1; i < len(corners); i++ {
		for f := 0.0; f < 1.0; f += 0.1 {
			pts = append(pts, Interpolate(corners[i-1], corners[i], f))
		}
	}
	pts = append(pts, corners[len(corners)-1])
	out := Simplify(pts, 50)
	if len(out) < 4 {
		t.Fatalf("loop collapsed to %d points", len(out))
	}
}

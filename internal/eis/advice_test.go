package eis

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestAdviceEndpoint(t *testing.T) {
	_, client, env := testServer(t)
	center := env.Graph.Bounds().Center()
	resp, err := client.Advice(context.Background(), AdviceRequest{
		Lat: center.Lat, Lon: center.Lon, K: 3, RadiusM: 8000, Now: fixedNow,
	})
	if err != nil {
		t.Fatalf("Advice: %v", err)
	}
	if len(resp.Entries) != 3 {
		t.Fatalf("got %d entries", len(resp.Entries))
	}
	for i, e := range resp.Entries {
		if e.Band == "" {
			t.Errorf("entry %d missing tariff band", i)
		}
		gs := e.GS.Interval()
		sc := e.SC.Interval()
		if gs.Mid() > sc.Mid() {
			t.Errorf("entry %d: GS %v above SC %v (penalties only subtract)", i, gs, sc)
		}
		if p := e.Price.Interval(); p.Min <= 0 {
			t.Errorf("entry %d: non-positive price %v", i, p)
		}
		if st := e.Stress.Interval(); st.Min < 0 || st.Max > 1 {
			t.Errorf("entry %d: stress %v out of range", i, st)
		}
	}
	// Entries ordered by GS midpoint.
	for i := 1; i < len(resp.Entries); i++ {
		if resp.Entries[i].GS.Interval().Mid() > resp.Entries[i-1].GS.Interval().Mid()+1e-9 {
			t.Errorf("advice not sorted at %d", i)
		}
	}
}

func TestAdviceValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	for name, body := range map[string]string{
		"bad json": `{`,
		"bad lat":  `{"lat": 95, "lon": 8}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/advice", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/advice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET advice: %d", resp.StatusCode)
	}
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/eis"
	"ecocharge/internal/geo"
	"ecocharge/internal/obs"
	"ecocharge/internal/wire"
)

// Shard names one fleet member: its primary base URL and an optional
// replica the gateway hedges slow or failing primaries against.
type Shard struct {
	URL     string
	Replica string
}

// Options configure the gateway.
type Options struct {
	// ShardTimeout is the per-shard deadline of one fan-out exchange; a
	// shard that has not answered by then is cancelled and treated as dead
	// for this request. 0 selects 2 s.
	ShardTimeout time.Duration
	// HedgeDelay is how long the gateway waits on the primary before firing
	// the hedged request at the replica (when the shard has one). A shard
	// whose last probe failed is hedged immediately. 0 selects 250 ms;
	// negative disables hedging even for probe-failed shards.
	HedgeDelay time.Duration
	// ProbeInterval is the active health-check period. 0 selects 2 s.
	ProbeInterval time.Duration
	// BreakerThreshold and BreakerCooldown configure each shard's circuit
	// breaker (consecutive faults to open; open time before the half-open
	// trial). Zero values select 5 faults and 5 s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HTTPClient performs shard exchanges and probes; nil selects a fresh
	// default client (deadlines come from request contexts, not the client).
	HTTPClient *http.Client
	// Clock is overridable for tests; nil selects time.Now.
	Clock func() time.Time
	// Logger for degraded merges and shard errors; nil silences logging.
	Logger *log.Logger
	// WireShards negotiates the binary format of internal/wire on the
	// shard-side exchanges whose payloads the codec covers (charger fan-out
	// and offering merges). The client-facing format is negotiated
	// independently per request, and a shard without the codec keeps
	// answering JSON — the gateway decodes by Content-Type — so mixed fleets
	// work during a rollout.
	WireShards bool
}

func (o Options) withDefaults() Options {
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Second
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 250 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// maxShardResponseBytes bounds one shard response (the inventory of a large
// shard is the biggest payload the gateway handles).
const maxShardResponseBytes int64 = 32 << 20

// Gateway is the stateless fleet front: it owns no environment, only the
// shard membership (addresses, breakers, probe verdicts, inventory caches)
// and the merge logic. Everything it serves is reconstructed per request
// from shard answers, so any gateway instance can serve any request.
type Gateway struct {
	members []*member
	part    Partition
	opts    Options
}

// NewGateway returns a gateway over the shards, in shard-index order (the
// order must match the partition the shard environments were built with).
func NewGateway(shards []Shard, opts Options) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: gateway needs at least one shard")
	}
	opts = opts.withDefaults()
	g := &Gateway{part: Partition{N: len(shards)}, opts: opts}
	for i, s := range shards {
		m, err := newMember(i, s, opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock)
		if err != nil {
			return nil, err
		}
		g.members = append(g.members, m)
	}
	return g, nil
}

func (g *Gateway) logf(format string, args ...interface{}) {
	if g.opts.Logger != nil {
		g.opts.Logger.Printf("gateway: "+format, args...)
	}
}

// shardResult is the outcome of one logical exchange with a shard (primary
// plus any hedge): either a terminal HTTP response (any status) or an error
// meaning the shard is unreachable for this request.
type shardResult struct {
	status      int
	body        []byte
	contentType string
	retryAfter  string
	err         error
	// buf is the pooled backing storage of body; release returns it. A
	// hedge loser that lands after its exchange returned is simply dropped —
	// its buffer falls to the GC instead of the pool, which is safe.
	buf *wire.Buffer
}

// release returns the result's pooled body buffer; neither the result nor
// any slice of body may be touched afterwards.
func (res *shardResult) release() {
	if res != nil && res.buf != nil {
		wire.PutBuffer(res.buf)
		res.buf, res.body = nil, nil
	}
}

// releaseAll releases every fan-out result's pooled body.
func releaseAll(results []*shardResult) {
	for _, res := range results {
		res.release()
	}
}

// retryableStatus mirrors the client's transient-fault classification: these
// statuses mean "the shard cannot serve right now", not "the request is
// wrong", so the gateway treats them as shard failures and degrades.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// attempt performs one HTTP exchange against one base URL. The body is read
// into a pooled buffer (the old per-attempt ReadAll re-grew a slice on every
// exchange); the caller owns the result and must release() it.
func (g *Gateway) attempt(ctx context.Context, base, method, pathq string, body []byte, contentType, accept string) *shardResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+pathq, rd)
	if err != nil {
		return &shardResult{err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := g.opts.HTTPClient.Do(req)
	if err != nil {
		return &shardResult{err: err}
	}
	defer resp.Body.Close()
	buf := wire.GetBuffer()
	if err := buf.ReadLimit(resp.Body, maxShardResponseBytes); err != nil {
		wire.PutBuffer(buf)
		return &shardResult{err: err}
	}
	if int64(len(buf.B)) > maxShardResponseBytes {
		wire.PutBuffer(buf)
		return &shardResult{err: fmt.Errorf("fleet: shard response exceeds %d bytes", maxShardResponseBytes)}
	}
	if retryableStatus(resp.StatusCode) {
		wire.PutBuffer(buf)
		return &shardResult{err: fmt.Errorf("fleet: shard %s: HTTP %d", base, resp.StatusCode)}
	}
	return &shardResult{
		status:      resp.StatusCode,
		body:        buf.B,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		buf:         buf,
	}
}

// exchange performs one logical exchange with a shard under the per-shard
// deadline: the primary immediately, the replica after the hedge delay (or
// at once when the shard's last probe failed, or as failover when the
// primary fails first). The first terminal answer wins; a late loser is
// cancelled by the shared context. Exactly one breaker outcome is recorded
// per exchange.
func (g *Gateway) exchange(ctx context.Context, m *member, method, pathq string, body []byte, contentType, accept string) *shardResult {
	if err := m.breaker.Allow(); err != nil {
		met.shardFailures.Inc()
		return &shardResult{err: fmt.Errorf("fleet: shard %d: %w", m.index, err)}
	}
	ctx, cancel := context.WithTimeout(ctx, g.opts.ShardTimeout)
	defer cancel()

	type attempt struct {
		res    *shardResult
		hedged bool
	}
	ch := make(chan attempt, 2)
	do := func(base string, hedged bool) {
		ch <- attempt{res: g.attempt(ctx, base, method, pathq, body, contentType, accept), hedged: hedged}
	}
	met.shardRequests.Inc()
	//ecolint:ignore nakedgo do reports into ch (buffered for both attempts) and the attempt is bounded by the exchange context
	go do(m.baseURL, false)

	var hedgeC <-chan time.Time
	hedgeable := m.replica != "" && g.opts.HedgeDelay >= 0
	if hedgeable {
		delay := g.opts.HedgeDelay
		if !m.probeOK.Load() {
			delay = 0
		}
		timer := time.NewTimer(delay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	fireHedge := func() {
		hedgeC = nil
		hedgeable = false
		met.hedgesFired.Inc()
		met.shardRequests.Inc()
		//ecolint:ignore nakedgo do reports into ch (buffered for both attempts) and the attempt is bounded by the exchange context
		go do(m.replica, true)
	}

	pending := 1
	var firstErr *shardResult
	for {
		select {
		case <-hedgeC:
			fireHedge()
			pending++
		case a := <-ch:
			if a.res.err == nil {
				if a.hedged {
					met.hedgeWins.Inc()
				}
				m.breaker.OnSuccess()
				return a.res
			}
			if firstErr == nil {
				firstErr = a.res
			}
			pending--
			if pending == 0 {
				if hedgeable {
					// The primary failed before the hedge timer: fail over to
					// the replica for the remainder of the deadline.
					fireHedge()
					pending++
					continue
				}
				met.shardFailures.Inc()
				m.breaker.OnFailure()
				return firstErr
			}
		case <-ctx.Done():
			met.shardFailures.Inc()
			m.breaker.OnFailure()
			return &shardResult{err: fmt.Errorf("fleet: shard %d: %w", m.index, ctx.Err())}
		}
	}
}

// fanout runs one exchange against every shard concurrently and returns the
// results indexed by shard.
func (g *Gateway) fanout(ctx context.Context, method, pathq string, body []byte, contentType, accept string) []*shardResult {
	results := make([]*shardResult, len(g.members))
	done := make(chan int, len(g.members))
	for i, m := range g.members {
		go func(i int, m *member) {
			results[i] = g.exchange(ctx, m, method, pathq, body, contentType, accept)
			done <- i
		}(i, m)
	}
	for range g.members {
		<-done
	}
	return results
}

// shardAccept is the Accept header value of shard-side exchanges on the
// binary-covered payloads; empty keeps the shards' JSON default.
func (g *Gateway) shardAccept() string {
	if g.opts.WireShards {
		return wire.ContentType
	}
	return ""
}

func (g *Gateway) writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	g.logf("%d %s", code, msg)
	writeJSONStatus(w, code, eis.ErrorResponse{Error: msg})
}

// writeUnavailable is the all-shards-dead answer: an honest 503 with a
// Retry-After hint, never a fabricated table.
func (g *Gateway) writeUnavailable(w http.ResponseWriter, what string) {
	w.Header().Set("Retry-After", "1")
	g.writeError(w, http.StatusServiceUnavailable, "no shard could serve %s", what)
}

const ctJSON = "application/json"

// errEncodeBody is the fallback 500 body when marshalling a response fails;
// the old streaming encoder silently truncated a 200 instead.
var errEncodeBody = []byte(`{"error":"encoding response"}` + "\n")

// jsonBufs pools the gateway's JSON encode buffers (the twin of the EIS
// server's pool): encode into a reusable buffer, set Content-Length, write
// once.
var jsonBufs = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// maxPooledJSONBuf caps the capacity a returned buffer may keep.
const maxPooledJSONBuf = 1 << 22

func writeBody(w http.ResponseWriter, code int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body) // client went away; nothing to do with the error
}

func writeJSONStatus(w http.ResponseWriter, code int, v interface{}) {
	buf := jsonBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufs.Put(buf)
		writeBody(w, http.StatusInternalServerError, ctJSON, errEncodeBody)
		return
	}
	writeBody(w, code, ctJSON, buf.Bytes())
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufs.Put(buf)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	writeJSONStatus(w, http.StatusOK, v)
}

// respond writes a merged result to the client in its negotiated format:
// enc appends the binary message for payloads the wire codec covers, JSON
// stays the default. Degraded synth responses and errors are always JSON.
func (g *Gateway) respond(w http.ResponseWriter, r *http.Request, v interface{}, enc func([]byte) []byte) {
	if enc != nil && wire.Accepts(r.Header.Get("Accept")) {
		buf := wire.GetBuffer()
		buf.B = enc(buf.B)
		writeBody(w, http.StatusOK, wire.ContentType, buf.B)
		wire.PutBuffer(buf)
		return
	}
	writeJSONStatus(w, http.StatusOK, v)
}

// passthrough relays a shard's terminal response verbatim, so error bodies
// (and their statuses) stay byte-identical to the single-EIS deployment.
func passthrough(w http.ResponseWriter, res *shardResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// degradedHeader names the shards a response was widened for. It is only
// present on degraded responses, so fault-free traffic stays byte-identical
// header-wise too.
const degradedHeader = "X-Fleet-Degraded"

func markDegraded(w http.ResponseWriter, dead []int, synthesized int) {
	parts := make([]string, len(dead))
	for i, d := range dead {
		parts[i] = strconv.Itoa(d)
	}
	w.Header().Set(degradedHeader, strings.Join(parts, ","))
	met.degradedMerges.Inc()
	met.degradedEntries.Add(uint64(synthesized))
}

// splitResults partitions fan-out results into live decoded 200 bodies (in
// shard-index order), the lowest-index terminal non-200 (for pass-through),
// and the dead shard indexes.
func splitResults(results []*shardResult) (ok []int, bad *shardResult, dead []int) {
	for i, res := range results {
		switch {
		case res.err != nil:
			dead = append(dead, i)
		case res.status != http.StatusOK:
			if bad == nil {
				bad = res
			}
		default:
			ok = append(ok, i)
		}
	}
	return ok, bad, dead
}

// Handler returns the gateway's HTTP surface: the six consolidated EIS
// methods (chargers, weather, availability, traffic, offering,
// offering/trip) plus the observability endpoints and the fleet status
// view.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(eis.APIVersion+"/chargers", g.timed(met.httpChargers, g.handleChargers))
	mux.HandleFunc(eis.APIVersion+"/weather", g.timed(met.httpWeather, g.handleWeather))
	mux.HandleFunc(eis.APIVersion+"/availability", g.timed(met.httpAvail, g.handleAvailability))
	mux.HandleFunc(eis.APIVersion+"/traffic", g.timed(met.httpTraffic, g.handleTraffic))
	mux.HandleFunc(eis.APIVersion+"/offering", g.timed(met.httpOffering, g.handleOffering))
	mux.HandleFunc(eis.APIVersion+"/offering/trip", g.timed(met.httpTrip, g.handleTrip))
	mux.Handle("/metrics", obs.Default().Handler())
	mux.Handle("/debug/vars", obs.Default().VarsHandler())
	mux.HandleFunc("/fleet/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, g.Status())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = fmt.Fprintln(w, "ok")
	})
	return mux
}

func (g *Gateway) timed(hist *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer hist.Since(start)
		fn(w, r)
	}
}

// ---- chargers ----

func (g *Gateway) handleChargers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	pathq := eis.APIVersion + "/chargers?" + r.URL.RawQuery
	results := g.fanout(r.Context(), http.MethodGet, pathq, nil, "", g.shardAccept())
	defer releaseAll(results)
	ok, bad, dead := splitResults(results)
	if bad != nil {
		passthrough(w, bad)
		return
	}
	if len(ok) == 0 {
		g.writeUnavailable(w, "chargers")
		return
	}
	lists := make([][]charger.Charger, 0, len(g.members))
	for _, i := range ok {
		l, err := decodeChargerList(results[i])
		if err != nil {
			g.writeError(w, http.StatusBadGateway, "shard %d: decoding chargers: %v", i, err)
			return
		}
		lists = append(lists, l)
	}
	p, radius, paramsOK := chargersParams(r)
	synthesized := 0
	if paramsOK {
		for _, i := range dead {
			matched := 0
			for _, c := range g.members[i].chargers() {
				if geo.Distance(p, c.P) <= radius {
					matched++
				}
			}
			if matched > 0 {
				inRange := make([]charger.Charger, 0, matched)
				for _, c := range g.members[i].chargers() {
					if geo.Distance(p, c.P) <= radius {
						inRange = append(inRange, c)
					}
				}
				lists = append(lists, inRange)
				synthesized += matched
			}
		}
	}
	if len(dead) > 0 {
		markDegraded(w, dead, synthesized)
		g.logf("chargers served degraded: shards %v down", dead)
	}
	merged := mergeChargers(lists, p)
	g.respond(w, r, merged, func(b []byte) []byte { return wire.AppendChargers(b, merged) })
}

// decodeChargerList decodes one shard's charger payload by its Content-Type,
// timing the per-format decode share of the fan-out.
func decodeChargerList(res *shardResult) ([]charger.Charger, error) {
	start := time.Now()
	if wire.IsWire(res.contentType) {
		l, err := wire.DecodeChargers(res.body, nil)
		met.decodeWire.Since(start)
		return l, err
	}
	var l []charger.Charger
	err := json.Unmarshal(res.body, &l)
	met.decodeJSON.Since(start)
	return l, err
}

// chargersParams mirrors the shard-side parameter handling of /chargers;
// when it fails the shards have already produced the canonical 400, so the
// values are only used for sorting and dead-shard synthesis.
func chargersParams(r *http.Request) (geo.Point, float64, bool) {
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
	radius, err3 := strconv.ParseFloat(q.Get("radius_m"), 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return geo.Point{}, 0, false
	}
	return geo.Point{Lat: lat, Lon: lon}, radius, true
}

// ---- weather / availability (single-owner pass-through) ----

// ownerOf routes a per-charger request: the rendezvous partition names the
// owning shard with no shared state. An unparseable charger parameter goes
// to shard 0, whose canonical 400 is passed through.
func (g *Gateway) ownerOf(r *http.Request) *member {
	idF, err := strconv.ParseFloat(r.URL.Query().Get("charger"), 64)
	if err != nil {
		return g.members[0]
	}
	return g.members[g.part.ShardOf(int64(idF))]
}

func (g *Gateway) handleWeather(w http.ResponseWriter, r *http.Request) {
	g.perCharger(w, r, "weather", func(c charger.Charger, at time.Time) interface{} {
		// Honest fallback: the site cannot produce more than its nameplate
		// renewable capacity, and might produce nothing.
		return degradedWeather{
			ChargerID:    c.ID,
			At:           at,
			ProductionKW: eis.IntervalJSON{Min: 0, Max: c.PanelKW + c.WindKW},
			Degraded:     true,
		}
	})
}

func (g *Gateway) handleAvailability(w http.ResponseWriter, r *http.Request) {
	g.perCharger(w, r, "availability", func(c charger.Charger, at time.Time) interface{} {
		return degradedAvailability{
			ChargerID:    c.ID,
			At:           at,
			Availability: ignoranceWire(),
			Degraded:     true,
		}
	})
}

// degradedWeather and degradedAvailability extend the shard wire forms with
// the degraded marker; the shard forms stay untouched so fault-free traffic
// is byte-identical.
type degradedWeather struct {
	ChargerID    int64            `json:"charger_id"`
	At           time.Time        `json:"at"`
	ProductionKW eis.IntervalJSON `json:"production_kw"`
	Degraded     bool             `json:"degraded"`
}

type degradedAvailability struct {
	ChargerID    int64            `json:"charger_id"`
	At           time.Time        `json:"at"`
	Availability eis.IntervalJSON `json:"availability"`
	Degraded     bool             `json:"degraded"`
}

// perCharger serves one of the per-charger estimate endpoints: pass-through
// from the owning shard when it answers, a synthesized ignorance-bound
// response from its cached inventory when it does not.
func (g *Gateway) perCharger(w http.ResponseWriter, r *http.Request, what string, synth func(charger.Charger, time.Time) interface{}) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m := g.ownerOf(r)
	pathq := eis.APIVersion + "/" + what + "?" + r.URL.RawQuery
	// Forward the client's own Accept header: when the client negotiated
	// binary the shard's encoded bytes pass through with no gateway
	// decode/re-encode at all.
	res := g.exchange(r.Context(), m, http.MethodGet, pathq, nil, "", r.Header.Get("Accept"))
	defer res.release()
	if res.err == nil {
		passthrough(w, res)
		return
	}
	idF, err := strconv.ParseFloat(r.URL.Query().Get("charger"), 64)
	if err != nil {
		g.writeUnavailable(w, what)
		return
	}
	for _, c := range m.chargers() {
		if c.ID == int64(idF) {
			at := g.opts.Clock()
			if raw := r.URL.Query().Get("t"); raw != "" {
				t, terr := time.Parse(time.RFC3339, raw)
				if terr != nil {
					g.writeError(w, http.StatusBadRequest, "parameter %q is not RFC3339: %v", "t", terr)
					return
				}
				at = t
			}
			markDegraded(w, []int{m.index}, 1)
			g.logf("%s for charger %d served degraded: shard %d down", what, c.ID, m.index)
			writeJSON(w, synth(c, at))
			return
		}
	}
	// Unknown charger on a dead shard: without its inventory the gateway
	// cannot even confirm existence — an honest 503 beats a guessed 404.
	g.writeUnavailable(w, what)
}

// ---- traffic (any-shard pass-through) ----

// handleTraffic serves the fleet-global congestion bands from any shard
// (every shard holds the same traffic model), preferring healthy members.
func (g *Gateway) handleTraffic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	order := make([]*member, len(g.members))
	copy(order, g.members)
	sort.SliceStable(order, func(i, j int) bool {
		return trafficRank(order[i]) < trafficRank(order[j])
	})
	pathq := eis.APIVersion + "/traffic?" + r.URL.RawQuery
	for _, m := range order {
		res := g.exchange(r.Context(), m, http.MethodGet, pathq, nil, "", r.Header.Get("Accept"))
		if res.err == nil {
			passthrough(w, res)
			res.release()
			return
		}
		res.release()
	}
	g.writeUnavailable(w, "traffic")
}

// trafficRank orders members for any-shard reads: fully healthy first, then
// open-breaker last; index order inside each class keeps the choice
// deterministic.
func trafficRank(m *member) int {
	switch {
	case m.probeOK.Load() && !m.breaker.Open():
		return 0
	case !m.breaker.Open():
		return 1
	default:
		return 2
	}
}

// ---- offering ----

// offeringParams applies the shard-side request defaulting so the gateway
// selects and synthesizes with exactly the parameters the shards ranked
// under.
func offeringParams(req eis.OfferingRequest) (k int, radius float64, weights cknn.Weights, ok bool) {
	k = req.K
	if k <= 0 {
		k = 3
	}
	radius = req.RadiusM
	if radius <= 0 {
		radius = 50000
	}
	if req.Weights == (eis.WeightsJSON{}) {
		weights = cknn.EqualWeights()
	} else {
		weights = cknn.Weights{L: req.Weights.L, A: req.Weights.A, D: req.Weights.D}
		if weights.Validate() != nil {
			return 0, 0, cknn.Weights{}, false
		}
		weights = weights.Normalized()
	}
	return k, radius, weights, true
}

func (g *Gateway) handleOffering(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		g.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	// The body is forwarded with the client's own Content-Type: a binary
	// Mode 2 request travels to the shards verbatim, no transcoding.
	reqCT := r.Header.Get("Content-Type")
	if reqCT == "" {
		reqCT = ctJSON
	}
	results := g.fanout(r.Context(), http.MethodPost, eis.APIVersion+"/offering", body, reqCT, g.shardAccept())
	defer releaseAll(results)
	ok, bad, dead := splitResults(results)
	if bad != nil {
		passthrough(w, bad)
		return
	}
	if len(ok) == 0 {
		g.writeUnavailable(w, "offering")
		return
	}
	live := make([]eis.OfferingResponse, 0, len(ok))
	for _, i := range ok {
		var t eis.OfferingResponse
		start := time.Now()
		if wire.IsWire(results[i].contentType) {
			err = wire.DecodeOfferingResponse(results[i].body, &t)
			met.decodeWire.Since(start)
		} else {
			err = json.Unmarshal(results[i].body, &t)
			met.decodeJSON.Since(start)
		}
		if err != nil {
			g.writeError(w, http.StatusBadGateway, "shard %d: decoding offering: %v", i, err)
			return
		}
		live = append(live, t)
	}
	var req eis.OfferingRequest
	reqParsed := false
	if wire.IsWire(reqCT) {
		reqParsed = wire.DecodeOfferingRequest(body, &req) == nil
	} else {
		reqParsed = json.Unmarshal(body, &req) == nil
	}
	var synth []eis.OfferingEntry
	k := 3
	if reqParsed {
		var radius float64
		var weights cknn.Weights
		var paramsOK bool
		k, radius, weights, paramsOK = offeringParams(req)
		if paramsOK {
			anchor := geo.Point{Lat: req.Lat, Lon: req.Lon}
			for _, i := range dead {
				synth = append(synth, synthWithin(g.members[i].chargers(), anchor, radius, weights)...)
			}
		}
	}
	if len(dead) > 0 {
		markDegraded(w, dead, len(synth))
		g.logf("offering served degraded: shards %v down, %d entries widened", dead, len(synth))
	}
	merged := mergeOffering(live, synth, k)
	g.respond(w, r, &merged, func(b []byte) []byte { return wire.AppendOfferingResponse(b, &merged) })
}

// ---- offering/trip ----

func (g *Gateway) handleTrip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		g.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	// Trip offerings stay JSON end to end (the segment-shaped payload is not
	// in the binary codec's hot set).
	results := g.fanout(r.Context(), http.MethodPost, eis.APIVersion+"/offering/trip", body, ctJSON, "")
	defer releaseAll(results)
	ok, bad, dead := splitResults(results)
	if bad != nil {
		passthrough(w, bad)
		return
	}
	if len(ok) == 0 {
		g.writeUnavailable(w, "offering/trip")
		return
	}
	live := make([]eis.TripOfferingResponse, 0, len(ok))
	for _, i := range ok {
		var t eis.TripOfferingResponse
		if err := json.Unmarshal(results[i].body, &t); err != nil {
			g.writeError(w, http.StatusBadGateway, "shard %d: decoding trip offering: %v", i, err)
			return
		}
		live = append(live, t)
	}
	var req eis.TripOfferingRequest
	k := 3
	var synthAt func(geo.Point) []eis.OfferingEntry
	if json.Unmarshal(body, &req) == nil {
		ko, radius, weights, paramsOK := offeringParams(eis.OfferingRequest{K: req.K, RadiusM: req.RadiusM, Weights: req.Weights})
		if paramsOK {
			k = ko
			if len(dead) > 0 {
				deadInv := make([][]charger.Charger, 0, len(dead))
				for _, i := range dead {
					deadInv = append(deadInv, g.members[i].chargers())
				}
				synthAt = func(anchor geo.Point) []eis.OfferingEntry {
					var out []eis.OfferingEntry
					for _, inv := range deadInv {
						out = append(out, synthWithin(inv, anchor, radius, weights)...)
					}
					return out
				}
			}
		}
	}
	merged, err := mergeTrips(live, synthAt, k)
	if err != nil {
		g.writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	if len(dead) > 0 {
		synthesized := 0
		for _, seg := range merged.Segments {
			for _, e := range seg.Entries {
				if e.Degraded&uint8(cknn.DegradedShard) != 0 {
					synthesized++
				}
			}
		}
		markDegraded(w, dead, synthesized)
		g.logf("trip offering served degraded: shards %v down", dead)
	}
	writeJSON(w, merged)
}

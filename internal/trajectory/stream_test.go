package trajectory

import (
	"reflect"
	"testing"
	"time"

	"ecocharge/internal/roadnet"
)

func streamTestGraph() *roadnet.Graph {
	cfg := roadnet.DefaultUrbanConfig()
	cfg.Seed = 11
	cfg.WidthKM, cfg.HeightKM = 10, 8
	return roadnet.GenerateUrban(cfg)
}

// TestSamplerMatchesGenerate pins the refactor contract: streaming N trips
// from a Sampler yields the byte-identical sequence Generate returns for
// the same config — including a hotspot-biased one, whose extra RNG draws
// are the easy thing to get out of order.
func TestSamplerMatchesGenerate(t *testing.T) {
	g := streamTestGraph()
	start := time.Date(2024, 6, 18, 8, 0, 0, 0, time.UTC)
	for _, cfg := range []GenConfig{
		{N: 40, Seed: 42, MinTripKM: 1, MaxTripKM: 12, Start: start, Window: time.Hour},
		{N: 40, Seed: 7, MinTripKM: 0.5, Start: start, Window: 2 * time.Hour, HotspotFrac: 0.6, Hotspots: 4},
	} {
		want, err := Generate(g, cfg)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		s, err := NewSampler(g, cfg)
		if err != nil {
			t.Fatalf("NewSampler: %v", err)
		}
		for i, w := range want {
			got, err := s.Next()
			if err != nil {
				t.Fatalf("Next(%d): %v", i, err)
			}
			if !reflect.DeepEqual(got, w) {
				t.Fatalf("trip %d diverges: sampler %+v, generate %+v", i, got, w)
			}
		}
		if s.Emitted() != int64(len(want)) {
			t.Fatalf("Emitted=%d, want %d", s.Emitted(), len(want))
		}
	}
}

// TestSamplerStreamsPastN shows the sampler is unbounded: it keeps
// producing valid trips beyond any GenConfig.N, with monotone IDs.
func TestSamplerStreamsPastN(t *testing.T) {
	g := streamTestGraph()
	cfg := GenConfig{N: 2, Seed: 3, MinTripKM: 1, Start: time.Unix(0, 0).UTC(), Window: time.Hour}
	s, err := NewSampler(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		trip, err := s.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if trip.ID != int64(i) {
			t.Fatalf("trip ID %d, want %d", trip.ID, i)
		}
		if len(trip.Path.Nodes) < 2 {
			t.Fatalf("trip %d has degenerate path", i)
		}
		if trip.Path.Weight/1000 < cfg.MinTripKM {
			t.Fatalf("trip %d below MinTripKM: %.2f km", i, trip.Path.Weight/1000)
		}
	}
}

// TestSamplerConfigMatchesGenerateTrips pins the profile contract: a
// sampler built from SamplerConfig streams the exact trips GenerateTrips
// materializes for the same profile, scale, and seed.
func TestSamplerConfigMatchesGenerateTrips(t *testing.T) {
	p, err := ProfileByName("Oldenburg")
	if err != nil {
		t.Fatal(err)
	}
	g := p.BuildGraph(5)
	start := time.Date(2024, 6, 18, 8, 0, 0, 0, time.UTC)
	want, err := p.GenerateTrips(g, 0.001, 5, start)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.SamplerConfig(5, start)
	if cfg.N != 0 {
		t.Fatalf("SamplerConfig.N=%d, want 0 (unbounded)", cfg.N)
	}
	s, err := NewSampler(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("trip %d diverges from GenerateTrips", i)
		}
	}
}

// TestSamplerRejectsTinyGraph mirrors Generate's validation.
func TestSamplerRejectsTinyGraph(t *testing.T) {
	g := roadnet.NewGraph(0, 0)
	if _, err := NewSampler(g, GenConfig{N: 1}); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

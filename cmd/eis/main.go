// Command eis runs the EcoCharge Information Server (Mode 2 of the paper's
// architecture): it assembles a dataset scenario and serves the JSON API on
// the given address. SIGINT/SIGTERM trigger a graceful shutdown: the
// listener closes immediately, in-flight requests get the drain deadline to
// finish.
//
// Example:
//
//	eis -addr :8080 -dataset Oldenburg
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecocharge/internal/eis"
	"ecocharge/internal/experiment"
	"ecocharge/internal/fault"
	"ecocharge/internal/fleet"
	"ecocharge/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataset     = flag.String("dataset", "Oldenburg", "dataset profile: Oldenburg, California, T-drive, Geolife")
		seed        = flag.Int64("seed", 42, "scenario seed")
		ttl         = flag.Duration("cache-ttl", 5*time.Minute, "server-side dynamic cache TTL")
		cell        = flag.Float64("cache-cell", 2000, "server-side cache cell size in meters")
		workers     = flag.Int("workers", 0, "ranking parallelism per request (0 = GOMAXPROCS, 1 = sequential)")
		shard       = flag.String("shard", "", `serve one shard of an n-way fleet partition, as "i/n" (e.g. 0/3); empty serves the whole inventory`)
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")
		faultRate   = flag.Float64("faultrate", 0, "injected EC-source fault rate in [0,1] (chaos/testing; 0 disables)")
		faultSeed   = flag.Int64("faultseed", 1, "fault-injection seed (with -faultrate)")
		debugP      = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/ (profiling; do not expose publicly)")
		traceP      = flag.String("trace", "", "export request spans as JSON lines to this file")
		traceSample = flag.Int64("trace-sample", 1, "export one trace in N (with -trace; 1 = every trace)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	cfg := handlerConfig{
		dataset: *dataset, seed: *seed, ttl: *ttl, cellM: *cell, workers: *workers,
		shard:     *shard,
		faultRate: *faultRate, faultSeed: *faultSeed,
	}
	if *traceP != "" {
		f, err := os.OpenFile(*traceP, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("eis: opening -trace file: %v", err)
		}
		defer f.Close()
		every := uint64(1)
		if *traceSample > 1 {
			every = uint64(*traceSample)
		}
		cfg.tracer = obs.NewTracer(f, obs.TracerOptions{SampleEvery: every})
		logger.Printf("eis: exporting spans to %s (1 in %d traces)", *traceP, every)
	}
	handler, desc, err := newHandler(cfg, logger)
	if err != nil {
		logger.Fatalf("eis: %v", err)
	}
	if *debugP {
		handler = withPprof(handler)
		logger.Printf("eis: pprof mounted at /debug/pprof/")
	}
	logger.Printf("eis: serving %s on %s", desc, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, handler, *drain, logger); err != nil {
		fmt.Fprintln(os.Stderr, "eis:", err)
		os.Exit(1)
	}
}

// run serves until the context is cancelled (a shutdown signal), then
// drains in-flight requests for up to drain before forcing connections
// closed. The connection timeouts bound slow or stalled clients so one bad
// peer cannot hold a handler goroutine forever (slowloris protection).
func run(ctx context.Context, addr string, handler http.Handler, drain time.Duration, logger *log.Logger) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// The listener died on its own (port in use, etc.).
		return err
	case <-ctx.Done():
	}

	logger.Printf("eis: shutdown signal received, draining for up to %v", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("eis: drained, bye")
	return nil
}

// withPprof overlays the stdlib profiling handlers on the API routes. The
// explicit registrations keep the server off http.DefaultServeMux, so
// nothing else that imports net/http/pprof can leak handlers into the EIS.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handlerConfig carries the scenario and resilience knobs of newHandler.
type handlerConfig struct {
	dataset   string
	seed      int64
	ttl       time.Duration
	cellM     float64
	workers   int
	shard     string
	faultRate float64
	faultSeed int64
	tracer    *obs.Tracer
}

// parseShard splits the "i/n" form of -shard.
func parseShard(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want the form i/n", s)
	}
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: index %d outside [0,%d)", s, i, n)
	}
	return i, n, nil
}

// newHandler assembles the scenario and returns the EIS routes plus a
// human-readable description of what is being served.
func newHandler(cfg handlerConfig, logger *log.Logger) (http.Handler, string, error) {
	// The EIS only needs the environment; trips are client business.
	sc, err := experiment.BuildScenario(cfg.dataset, 0.001, cfg.seed)
	if err != nil {
		return nil, "", fmt.Errorf("building scenario: %w", err)
	}
	env := sc.Env
	if cfg.shard != "" {
		// A fleet member serves only its rendezvous partition; ShardEnv keeps
		// the parent normalizers so per-charger scores stay fleet-identical.
		i, n, err := parseShard(cfg.shard)
		if err != nil {
			return nil, "", err
		}
		env, err = fleet.ShardEnv(env, i, n)
		if err != nil {
			return nil, "", err
		}
	}
	desc := fmt.Sprintf("%s (%d chargers, %d road nodes)",
		sc.Name, env.Chargers.Len(), sc.Graph.NumNodes())
	if cfg.shard != "" {
		desc += fmt.Sprintf(", shard %s", cfg.shard)
	}
	if cfg.faultRate > 0 {
		// Degrade EC sources at the configured rate: tables keep coming,
		// affected components carry the Degraded tag. The env copy keeps the
		// scenario itself pristine.
		envCopy := *env
		envCopy.Faults = fault.Sources(fault.New(fault.Config{Seed: cfg.faultSeed, Rate: cfg.faultRate}))
		env = &envCopy
		desc += fmt.Sprintf(", fault rate %.0f%%", 100*cfg.faultRate)
	}
	srv := eis.NewServer(env, eis.ServerOptions{
		CacheTTL:   cfg.ttl,
		CacheCellM: cfg.cellM,
		Workers:    cfg.workers,
		Logger:     logger,
		Tracer:     cfg.tracer,
	})
	mw := &eis.Middleware{MaxInFlight: 256, Logger: logger}
	return mw.Wrap(srv.Handler()), desc, nil
}

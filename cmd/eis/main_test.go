package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewHandlerServes(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build is slow")
	}
	handler, desc, err := newHandler("Oldenburg", 1, time.Minute, 2000, 0, nil)
	if err != nil {
		t.Fatalf("newHandler: %v", err)
	}
	if !strings.Contains(desc, "Oldenburg") {
		t.Errorf("description %q", desc)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// One real endpoint through the wired scenario.
	resp2, err := http.Get(ts.URL + "/api/v1/chargers?lat=53.1&lon=8.2&radius_m=100000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK || len(body) < 10 {
		t.Fatalf("chargers endpoint: status %d body %d bytes", resp2.StatusCode, len(body))
	}
}

func TestNewHandlerBadDataset(t *testing.T) {
	if _, _, err := newHandler("nope", 1, time.Minute, 2000, 0, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ecocharge/internal/experiment"
)

func TestRunUnknownFigure(t *testing.T) {
	cfg := experiment.RunConfig{Repetitions: 1, TripsPerRep: 1}
	o := runOpts{fig: "42", scale: 0.0005, seed: 1, cfg: cfg}
	if err := run(context.Background(), o); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep is slow")
	}
	cfg := experiment.RunConfig{Repetitions: 1, TripsPerRep: 1, SegmentLenM: 4000}
	o := runOpts{fig: "6", scale: 0.0003, seed: 1, cfg: cfg}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("run fig 6: %v", err)
	}
}

func TestRunJSONExport(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build is slow")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	cfg := experiment.RunConfig{Repetitions: 1, TripsPerRep: 1, SegmentLenM: 4000}
	o := runOpts{
		fig: "6", dataset: "Oldenburg", scale: 0.0003, seed: 1,
		cfg: cfg, jsonPath: jsonPath, commit: "deadbeef",
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("reading export: %v", err)
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("invalid JSON export: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no benchmark rows exported")
	}
	for _, r := range rows {
		if r.Commit != "deadbeef" {
			t.Errorf("row commit = %q, want deadbeef", r.Commit)
		}
		if r.Dataset != "Oldenburg" {
			t.Errorf("row dataset = %q, want Oldenburg", r.Dataset)
		}
		if r.Fig != "6" {
			t.Errorf("row fig = %q, want 6", r.Fig)
		}
		if r.Workers < 1 {
			t.Errorf("row workers = %d, want >= 1", r.Workers)
		}
	}
}

func TestResolveCommit(t *testing.T) {
	if got := resolveCommit("abc123"); got != "abc123" {
		t.Fatalf("flag override ignored: %q", got)
	}
	// Without a flag the result depends on build stamping; it must still be
	// non-empty so every JSON row carries a commit value.
	if got := resolveCommit(""); got == "" {
		t.Fatal("empty commit resolved")
	}
}

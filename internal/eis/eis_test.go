package eis

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

var fixedNow = time.Date(2024, 6, 18, 9, 30, 0, 0, time.UTC)

func testEnv(t testing.TB) *cknn.Env {
	t.Helper()
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 1,
	})
	avail := ec.NewAvailabilityModel(2)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	env, err := cknn.NewEnv(g, set, ec.NewSolarModel(4), avail, ec.NewTrafficModel(5), cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func testServer(t testing.TB) (*httptest.Server, *Client, *cknn.Env) {
	t.Helper()
	env := testEnv(t)
	srv := NewServer(env, ServerOptions{Clock: func() time.Time { return fixedNow }})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client()), env
}

func TestHealthz(t *testing.T) {
	_, client, _ := testServer(t)
	if !client.Healthy(context.Background()) {
		t.Fatal("server not healthy")
	}
}

func TestInventoryEndpoint(t *testing.T) {
	_, client, env := testServer(t)
	got, err := client.Inventory(context.Background())
	if err != nil {
		t.Fatalf("Inventory: %v", err)
	}
	if len(got) != env.Chargers.Len() {
		t.Fatalf("inventory returned %d chargers, want %d", len(got), env.Chargers.Len())
	}
	seen := make(map[int64]bool, len(got))
	for _, c := range got {
		if seen[c.ID] {
			t.Fatalf("duplicate charger %d in inventory", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestChargersEndpoint(t *testing.T) {
	_, client, env := testServer(t)
	center := env.Graph.Bounds().Center()
	got, err := client.Chargers(context.Background(), center, 5000)
	if err != nil {
		t.Fatalf("Chargers: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no chargers returned")
	}
	for _, c := range got {
		if d := geo.Distance(center, c.P); d > 5000 {
			t.Errorf("charger %d at %.0f m outside radius", c.ID, d)
		}
		if _, ok := env.Chargers.ByID(c.ID); !ok {
			t.Errorf("charger %d not in environment", c.ID)
		}
	}
}

func TestChargersBadParams(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, u := range []string{
		"/api/v1/chargers", // missing all
		"/api/v1/chargers?lat=abc&lon=8&radius_m=100", // non-numeric
		"/api/v1/chargers?lat=95&lon=8&radius_m=100",  // out of range
		"/api/v1/chargers?lat=53&lon=8&radius_m=-5",   // negative radius
		"/api/v1/chargers?lat=NaN&lon=8&radius_m=100", // NaN
	} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
}

func TestWeatherAndAvailabilityEndpoints(t *testing.T) {
	_, client, env := testServer(t)
	ctx := context.Background()
	id := env.Chargers.All()[0].ID
	at := fixedNow.Add(time.Hour)

	w, err := client.Weather(ctx, id, at)
	if err != nil {
		t.Fatalf("Weather: %v", err)
	}
	if w.ChargerID != id || !w.At.Equal(at) {
		t.Errorf("weather echo wrong: %+v", w)
	}
	if iv := w.ProductionKW.Interval(); !iv.Valid() || iv.Min < 0 {
		t.Errorf("production interval invalid: %+v", w.ProductionKW)
	}

	a, err := client.Availability(ctx, id, at)
	if err != nil {
		t.Fatalf("Availability: %v", err)
	}
	iv := a.Availability.Interval()
	if iv.Min < 0 || iv.Max > 1 {
		t.Errorf("availability out of range: %+v", a.Availability)
	}

	if _, err := client.Weather(ctx, 99999, at); err == nil {
		t.Error("unknown charger accepted")
	} else if !strings.Contains(err.Error(), "not found") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTrafficEndpoint(t *testing.T) {
	_, client, _ := testServer(t)
	resp, err := client.Traffic(context.Background(), fixedNow.Add(30*time.Minute))
	if err != nil {
		t.Fatalf("Traffic: %v", err)
	}
	if len(resp.Multiplier) != 4 {
		t.Fatalf("got %d classes, want 4", len(resp.Multiplier))
	}
	for class, iv := range resp.Multiplier {
		if iv.Min < 1 {
			t.Errorf("class %s multiplier %v below free flow", class, iv)
		}
	}
}

func TestOfferingMode2(t *testing.T) {
	_, client, env := testServer(t)
	center := env.Graph.Bounds().Center()
	req := OfferingRequest{
		Lat: center.Lat, Lon: center.Lon, K: 3, RadiusM: 8000,
		Now: fixedNow, ETA: fixedNow.Add(10 * time.Minute),
	}
	resp, err := client.Offering(context.Background(), req)
	if err != nil {
		t.Fatalf("Offering: %v", err)
	}
	if len(resp.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(resp.Entries))
	}
	if resp.Cached {
		t.Error("first request served from cache")
	}
	for _, e := range resp.Entries {
		if _, ok := env.Chargers.ByID(e.ChargerID); !ok {
			t.Errorf("unknown charger %d in response", e.ChargerID)
		}
		sc := e.SC.Interval()
		if !sc.Valid() || sc.Max > 1.001 || sc.Min < -0.001 {
			t.Errorf("SC out of range: %+v", e.SC)
		}
		if e.ETA.Before(req.ETA) {
			t.Errorf("charger ETA before anchor ETA")
		}
	}
	// The server must agree with a local (Mode 1) computation.
	node := env.Graph.NearestNode(center)
	local := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 8000}).Rank(cknn.Query{
		Anchor: center, AnchorNode: node, ReturnNode: node,
		Now: fixedNow, ETABase: fixedNow.Add(10 * time.Minute),
		K: 3, RadiusM: 8000,
	})
	localIDs := local.IDs()
	for i, e := range resp.Entries {
		if e.ChargerID != localIDs[i] {
			t.Errorf("rank %d: server %d vs local %d", i, e.ChargerID, localIDs[i])
		}
	}
}

func TestOfferingServerCache(t *testing.T) {
	_, client, env := testServer(t)
	center := env.Graph.Bounds().Center()
	req := OfferingRequest{Lat: center.Lat, Lon: center.Lon, K: 3, RadiusM: 8000, Now: fixedNow}
	first, err := client.Offering(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Offering(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeated request not served from cache")
	}
	if len(first.Entries) != len(second.Entries) {
		t.Error("cached response differs")
	}
	// A nearby point within the same cache cell also hits.
	req2 := req
	req2.Lat += 0.001 // ~110 m
	third, err := client.Offering(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("same-cell request missed the cache")
	}
	// A different K is a different cache key.
	req3 := req
	req3.K = 5
	fourth, err := client.Offering(context.Background(), req3)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Error("different K hit the cache")
	}
}

func TestOfferingValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	cases := map[string]string{
		"bad json":    `{`,
		"bad lat":     `{"lat": 95, "lon": 8}`,
		"neg weights": `{"lat": 53, "lon": 8, "weights": {"l": -1, "a": 1, "d": 1}}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/offering", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/api/v1/offering")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET offering: status %d, want 405", resp.StatusCode)
	}
}

func TestMode3EdgeComputation(t *testing.T) {
	// Mode 3: pull charger data from the EIS, build a local environment on
	// the edge device, compute the table locally, and verify it matches the
	// server's Mode 2 answer for the same query.
	_, client, env := testServer(t)
	ctx := context.Background()
	center := env.Graph.Bounds().Center()

	pulled, err := client.Chargers(ctx, center, 100000)
	if err != nil {
		t.Fatal(err)
	}
	set, err := charger.NewSet(pulled)
	if err != nil {
		t.Fatal(err)
	}
	// The edge device shares the road network and model seeds with the
	// server (they come from the same EIS distribution).
	edgeEnv, err := cknn.NewEnv(env.Graph, set, env.Solar, env.Avail, env.Traffic, cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	node := edgeEnv.Graph.NearestNode(center)
	local := cknn.NewEcoCharge(edgeEnv, cknn.EcoChargeOptions{RadiusM: 8000}).Rank(cknn.Query{
		Anchor: center, AnchorNode: node, ReturnNode: node,
		Now: fixedNow, ETABase: fixedNow, K: 3, RadiusM: 8000,
	})
	remote, err := client.Offering(ctx, OfferingRequest{
		Lat: center.Lat, Lon: center.Lon, K: 3, RadiusM: 8000, Now: fixedNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Entries) != len(remote.Entries) {
		t.Fatalf("local %d vs remote %d entries", len(local.Entries), len(remote.Entries))
	}
	for i := range local.Entries {
		if local.Entries[i].Charger.ID != remote.Entries[i].ChargerID {
			t.Errorf("rank %d: local %d vs remote %d", i,
				local.Entries[i].Charger.ID, remote.Entries[i].ChargerID)
		}
	}
}

func TestClientErrorPaths(t *testing.T) {
	// A server that always 500s without a JSON body.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Traffic(context.Background(), fixedNow); err == nil {
		t.Error("HTTP 500 not surfaced")
	}
	if client.Healthy(context.Background()) {
		t.Error("unhealthy server reported healthy")
	}
	// Unreachable server.
	dead := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond})
	if _, err := dead.Chargers(context.Background(), geo.Point{Lat: 53, Lon: 8}, 100); err == nil {
		t.Error("unreachable server not surfaced")
	}
}

func TestParseTimeQuery(t *testing.T) {
	ts, _, env := testServer(t)
	id := env.Chargers.All()[0].ID
	u := ts.URL + "/api/v1/weather?charger=" + strconv.FormatInt(id, 10) + "&t=not-a-time"
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad time accepted: %d", resp.StatusCode)
	}
}

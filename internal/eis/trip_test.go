package eis

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/geo"
)

func TestTripOfferingEndToEnd(t *testing.T) {
	_, client, env := testServer(t)
	b := env.Graph.Bounds()
	req := TripOfferingRequest{
		Waypoints: []LatLon{
			{Lat: b.Min.Lat + 0.005, Lon: b.Min.Lon + 0.005},
			{Lat: b.Center().Lat, Lon: b.Center().Lon},
			{Lat: b.Max.Lat - 0.005, Lon: b.Max.Lon - 0.005},
		},
		Depart:      fixedNow,
		K:           3,
		RadiusM:     8000,
		SegmentLenM: 2000,
	}
	resp, err := client.TripOffering(context.Background(), req)
	if err != nil {
		t.Fatalf("TripOffering: %v", err)
	}
	if resp.TripLengthM <= 0 {
		t.Fatal("zero trip length")
	}
	if len(resp.Segments) < 2 {
		t.Fatalf("got %d segments for a cross-town trip", len(resp.Segments))
	}
	if len(resp.SplitPoints) == 0 || resp.SplitPoints[0] != 0 {
		t.Fatalf("split points = %v, must start at segment 0", resp.SplitPoints)
	}
	var prevETA time.Time
	for i, seg := range resp.Segments {
		if seg.SegmentIndex != i {
			t.Fatalf("segment %d has index %d", i, seg.SegmentIndex)
		}
		if len(seg.Entries) == 0 {
			t.Fatalf("segment %d empty", i)
		}
		if seg.ETA.Before(prevETA) {
			t.Fatalf("segment %d ETA out of order", i)
		}
		prevETA = seg.ETA
		anchor := geo.Point{Lat: seg.Anchor.Lat, Lon: seg.Anchor.Lon}
		if !b.Buffer(500).Contains(anchor) {
			t.Fatalf("segment %d anchor outside network: %v", i, anchor)
		}
	}
	// The dynamic cache must serve some later segments.
	adapted := 0
	for _, seg := range resp.Segments {
		if seg.Adapted {
			adapted++
		}
	}
	if adapted == 0 && len(resp.Segments) > 2 {
		t.Error("no segment was served from the dynamic cache")
	}
}

func TestTripOfferingValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	cases := map[string]string{
		"one waypoint":  `{"waypoints":[{"lat":53.05,"lon":8.05}]}`,
		"bad waypoint":  `{"waypoints":[{"lat":95,"lon":8},{"lat":53.05,"lon":8.05}]}`,
		"bad weights":   `{"waypoints":[{"lat":53.02,"lon":8.02},{"lat":53.05,"lon":8.05}],"weights":{"l":-1,"a":2,"d":0}}`,
		"same waypoint": `{"waypoints":[{"lat":53.02,"lon":8.02},{"lat":53.02,"lon":8.02}]}`,
		"garbage":       `{{{`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/offering/trip", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/offering/trip")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET trip offering: status %d", resp.StatusCode)
	}
}

func TestTripOfferingMatchesLocalSplitList(t *testing.T) {
	_, client, env := testServer(t)
	b := env.Graph.Bounds()
	req := TripOfferingRequest{
		Waypoints: []LatLon{
			{Lat: b.Min.Lat + 0.01, Lon: b.Min.Lon + 0.01},
			{Lat: b.Max.Lat - 0.01, Lon: b.Max.Lon - 0.01},
		},
		Depart: fixedNow, K: 3, RadiusM: 8000, SegmentLenM: 2000,
	}
	resp, err := client.TripOffering(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Split points are strictly increasing segment indexes.
	for i := 1; i < len(resp.SplitPoints); i++ {
		if resp.SplitPoints[i] <= resp.SplitPoints[i-1] {
			t.Fatalf("split points not increasing: %v", resp.SplitPoints)
		}
	}
	// Consecutive segments flagged by a split point really differ.
	bySeg := make(map[int][]int64)
	for _, seg := range resp.Segments {
		ids := make([]int64, len(seg.Entries))
		for i, e := range seg.Entries {
			ids[i] = e.ChargerID
		}
		bySeg[seg.SegmentIndex] = ids
	}
	for _, sp := range resp.SplitPoints[1:] {
		if sameIDs(bySeg[sp], bySeg[sp-1]) {
			t.Errorf("split point at %d but sets equal", sp)
		}
	}
}

package charger

import (
	"bytes"
	"strings"
	"testing"

	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
)

// Quoted CSV fields (as spreadsheet exports produce) parse fine.
func TestReadCSVQuotedFields(t *testing.T) {
	data := `id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs
"1","53.0","8.0","0","11.0","5.0","0.0","2"
`
	got, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatalf("quoted CSV rejected: %v", err)
	}
	if len(got) != 1 || got[0].ID != 1 || got[0].Rate != RateAC11 {
		t.Fatalf("parsed %+v", got)
	}
}

// An empty CSV (header only) round-trips to an empty set.
func TestCSVHeaderOnly(t *testing.T) {
	s, err := NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("header-only CSV rejected: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
}

// Wind capacities survive the CSV round trip.
func TestCSVWindRoundTrip(t *testing.T) {
	avail := ec.NewAvailabilityModel(1)
	cs := []Charger{{
		ID: 7, P: geo.Point{Lat: 53.01, Lon: 8.02}, Node: 3,
		Rate: RateDC50, PanelKW: 12.5, WindKW: 33.0, Plugs: 2,
		Timetable: avail.GenerateTimetable(7),
	}}
	s, err := NewSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].WindKW != 33.0 || back[0].PanelKW != 12.5 {
		t.Fatalf("capacities drifted: %+v", back[0])
	}
	if got := s.MaxRESKW(); got != 45.5 {
		t.Fatalf("MaxRESKW = %v, want 45.5", got)
	}
}

// Generate produces some wind-equipped chargers and none in clusters.
func TestGenerateWindPlacement(t *testing.T) {
	s := testSet(t, 400)
	withWind := 0
	for _, c := range s.All() {
		if c.WindKW > 0 {
			withWind++
			if c.WindKW < 0 {
				t.Fatalf("negative wind capacity: %+v", c)
			}
		}
	}
	if withWind == 0 {
		t.Fatal("no wind-equipped chargers generated")
	}
	if withWind > 200 {
		t.Fatalf("wind everywhere: %d of 400", withWind)
	}
}

package sim

import (
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

var simStart = time.Date(2024, 6, 18, 9, 0, 0, 0, time.UTC)

// fleetWorld builds a small dense world where contention is likely: few
// chargers, many overlapping trips.
func fleetWorld(t testing.TB, chargers int) (*cknn.Env, []trajectory.Trip) {
	t.Helper()
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 4, Seed: 2,
	})
	avail := ec.NewAvailabilityModel(3)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: chargers, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	env, err := cknn.NewEnv(g, set, ec.NewSolarModel(5), avail, ec.NewTrafficModel(6), cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	trips, err := trajectory.Generate(g, trajectory.GenConfig{
		N: 25, Seed: 7, MinTripKM: 4, MaxTripKM: 10,
		Start: simStart, Window: 20 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, trips
}

func TestRunBasics(t *testing.T) {
	env, trips := fleetWorld(t, 40)
	res := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.3})
	if res.Vehicles != 25 {
		t.Fatalf("vehicles = %d", res.Vehicles)
	}
	if res.Queries == 0 {
		t.Fatal("no queries issued")
	}
	if res.Commits == 0 {
		t.Fatal("no driver ever committed — AcceptSC too strict for the world")
	}
	if res.Commits > res.Vehicles {
		t.Fatalf("commits %d exceed vehicles %d", res.Commits, res.Vehicles)
	}
	if res.CleanKWh < 0 || res.GridKWh < 0 {
		t.Fatalf("negative energy: %+v", res)
	}
	if res.CleanKWh == 0 {
		t.Error("morning sessions harvested no clean energy")
	}
	total := 0
	for _, n := range res.PerCharger {
		total += n
	}
	if total != res.Commits {
		t.Errorf("sessions %d != commits %d", total, res.Commits)
	}
	if res.UtilizationGini < 0 || res.UtilizationGini > 1 {
		t.Errorf("gini = %v", res.UtilizationGini)
	}
}

func TestRunDeterministic(t *testing.T) {
	env, trips := fleetWorld(t, 40)
	a := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.3})
	b := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.3})
	if a.Commits != b.Commits || a.Conflicts != b.Conflicts || a.CleanKWh != b.CleanKWh {
		t.Fatalf("simulation not deterministic:\n a=%v\n b=%v", a, b)
	}
}

func TestBalancedReducesConcentration(t *testing.T) {
	// Scarce chargers force contention; balancing must spread the load.
	env, trips := fleetWorld(t, 12)
	plain := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.2})
	balanced := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.2, Balanced: true})

	if plain.Commits == 0 || balanced.Commits == 0 {
		t.Fatalf("no commits: plain=%v balanced=%v", plain, balanced)
	}
	// Balancing must not increase plug conflicts.
	if balanced.Conflicts > plain.Conflicts {
		t.Errorf("balancing increased conflicts: %d vs %d", balanced.Conflicts, plain.Conflicts)
	}
	// And must spread sessions over at least as many chargers.
	if len(balanced.PerCharger) < len(plain.PerCharger) {
		t.Errorf("balancing reduced charger diversity: %d vs %d",
			len(balanced.PerCharger), len(plain.PerCharger))
	}
	maxSessions := func(m map[int64]int) int {
		max := 0
		for _, n := range m {
			if n > max {
				max = n
			}
		}
		return max
	}
	if maxSessions(balanced.PerCharger) > maxSessions(plain.PerCharger) {
		t.Errorf("balancing increased the hottest charger's load: %d vs %d",
			maxSessions(balanced.PerCharger), maxSessions(plain.PerCharger))
	}
}

func TestAcceptThresholdGates(t *testing.T) {
	env, trips := fleetWorld(t, 40)
	none := Run(env, trips, Config{RadiusM: 8000, AcceptSC: 0.999})
	if none.Commits != 0 {
		t.Errorf("impossible threshold still committed %d drivers", none.Commits)
	}
	if none.Queries == 0 {
		t.Error("queries must still run")
	}
}

func TestEmptyFleet(t *testing.T) {
	env, _ := fleetWorld(t, 10)
	res := Run(env, nil, Config{})
	if res.Vehicles != 0 || res.Queries != 0 || res.Commits != 0 {
		t.Errorf("empty fleet result: %v", res)
	}
}

func TestGini(t *testing.T) {
	if g := gini(nil); g != 0 {
		t.Errorf("gini(nil) = %v", g)
	}
	even := map[int64]int{1: 5, 2: 5, 3: 5, 4: 5}
	skew := map[int64]int{1: 17, 2: 1, 3: 1, 4: 1}
	ge, gs := gini(even), gini(skew)
	if ge != 0 {
		t.Errorf("even gini = %v, want 0", ge)
	}
	if gs <= ge {
		t.Errorf("skewed gini %v not above even %v", gs, ge)
	}
	if gs > 1 {
		t.Errorf("gini %v above 1", gs)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Vehicles: 2, Commits: 1, CleanKWh: 3.5}
	if s := r.String(); s == "" {
		t.Error("empty String")
	}
}

package ec

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

var (
	nicosia = geo.Point{Lat: 35.17, Lon: 33.36}
	// A summer weekday noon and midnight, UTC.
	noon     = time.Date(2024, 6, 18, 10, 0, 0, 0, time.UTC) // ~local noon at 33°E
	midnight = time.Date(2024, 6, 18, 22, 0, 0, 0, time.UTC)
	site     = Site{ID: 7, P: nicosia, CapacityKW: 50}
)

func TestHashNoiseRangeAndDeterminism(t *testing.T) {
	f := func(a, b uint64) bool {
		v := hashNoise(a, b)
		return v >= 0 && v < 1 && v == hashNoise(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if hashNoise(1, 2) == hashNoise(2, 1) {
		t.Error("hashNoise should depend on key order")
	}
}

func TestSmoothNoiseContinuity(t *testing.T) {
	// Consecutive samples 1 minute apart must differ by a small amount.
	for h := 0.0; h < 48; h += 0.93 {
		a := smoothNoise(1, 2, h)
		b := smoothNoise(1, 2, h+1.0/60)
		if math.Abs(a-b) > 0.06 {
			t.Fatalf("noise jump %.3f at t=%.2f", math.Abs(a-b), h)
		}
	}
}

func TestClearSkyFactor(t *testing.T) {
	day := ClearSkyFactor(nicosia, noon)
	night := ClearSkyFactor(nicosia, midnight)
	if day < 0.7 {
		t.Errorf("noon clear-sky factor = %.3f, want high", day)
	}
	if night != 0 {
		t.Errorf("midnight clear-sky factor = %.3f, want 0", night)
	}
	// Winter noon is lower than summer noon at mid latitudes.
	winterNoon := time.Date(2024, 12, 18, 10, 0, 0, 0, time.UTC)
	if w := ClearSkyFactor(nicosia, winterNoon); w >= day {
		t.Errorf("winter noon %.3f not below summer noon %.3f", w, day)
	}
}

func TestSolarTruthBounds(t *testing.T) {
	m := NewSolarModel(1)
	for h := 0; h < 24; h++ {
		tm := time.Date(2024, 6, 18, h, 0, 0, 0, time.UTC)
		v := m.Truth(site, tm)
		max := site.CapacityKW * ClearSkyFactor(site.P, tm)
		if v < 0 || v > max+1e-9 {
			t.Fatalf("truth %v outside [0, %v] at hour %d", v, max, h)
		}
	}
}

func TestSolarForecastContainsTruth(t *testing.T) {
	m := NewSolarModel(3)
	for _, horizon := range []time.Duration{0, time.Hour, 6 * time.Hour, 24 * time.Hour, 100 * time.Hour} {
		target := noon.Add(horizon)
		iv := m.Forecast(site, target, noon)
		truth := m.Truth(site, target)
		if !iv.Contains(truth) {
			t.Errorf("horizon %v: forecast %v does not contain truth %.3f", horizon, iv, truth)
		}
		if iv.Min < 0 {
			t.Errorf("forecast lower bound negative: %v", iv)
		}
	}
}

func TestSolarForecastWidthGrowsWithHorizon(t *testing.T) {
	m := NewSolarModel(3)
	// Compare widths at the same target time with different issue times, so
	// the clear-sky envelope is identical and only horizon differs.
	target := noon
	wNear := m.Forecast(site, target, target.Add(-time.Hour)).Width()
	wFar := m.Forecast(site, target, target.Add(-48*time.Hour)).Width()
	if wFar < wNear {
		t.Errorf("forecast width shrank with horizon: near=%v far=%v", wNear, wFar)
	}
}

func TestForecastErrorSchedule(t *testing.T) {
	if e := ForecastError(6 * time.Hour); e <= 0 || e > 0.045 {
		t.Errorf("6h error = %v", e)
	}
	if e12, e72 := ForecastError(12*time.Hour), ForecastError(72*time.Hour); e72 <= e12 {
		t.Errorf("error must grow: 12h=%v 72h=%v", e12, e72)
	}
	if e := ForecastError(1000 * time.Hour); e != 0.15 {
		t.Errorf("saturated error = %v, want 0.15", e)
	}
	if e := ForecastError(-time.Hour); e != 0.005 {
		t.Errorf("negative horizon error = %v, want nowcast floor", e)
	}
}

func TestSolarNightIsZero(t *testing.T) {
	m := NewSolarModel(5)
	iv := m.Forecast(site, midnight, midnight.Add(-2*time.Hour))
	if iv.Min != 0 || iv.Max != 0 {
		t.Errorf("night forecast = %v, want exactly 0", iv)
	}
}

func TestDaylightHours(t *testing.T) {
	from, to := DaylightHours(nicosia, noon)
	if to-from < 12 || to-from > 16 {
		t.Errorf("summer daylight at 35N = %.1f h, want 12-16", to-from)
	}
	wFrom, wTo := DaylightHours(nicosia, time.Date(2024, 12, 18, 12, 0, 0, 0, time.UTC))
	if wTo-wFrom >= to-from {
		t.Error("winter day not shorter than summer day")
	}
}

func TestTimetableBusyAtInterpolates(t *testing.T) {
	var tt Timetable
	tt[1][10] = 0.2 // Monday 10:00
	tt[1][11] = 0.8
	mon1030 := time.Date(2024, 6, 17, 10, 30, 0, 0, time.UTC) // a Monday
	if got := tt.BusyAt(mon1030); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("interpolated busy = %v, want 0.5", got)
	}
	// Wrap across midnight into the next day.
	tt[1][23] = 1.0
	tt[2][0] = 0.0
	mon2330 := time.Date(2024, 6, 17, 23, 30, 0, 0, time.UTC)
	if got := tt.BusyAt(mon2330); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("midnight wrap busy = %v, want 0.5", got)
	}
}

func TestGenerateTimetableShape(t *testing.T) {
	m := NewAvailabilityModel(1)
	tt := m.GenerateTimetable(42)
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			if tt[d][h] < 0 || tt[d][h] > 1 {
				t.Fatalf("busy[%d][%d] = %v out of range", d, h, tt[d][h])
			}
		}
	}
	// Weekday evening peak must exceed weekday 3am, on average across chargers.
	var evening, night float64
	for id := int64(0); id < 50; id++ {
		x := m.GenerateTimetable(id)
		evening += x[2][18]
		night += x[2][3]
	}
	if evening <= night {
		t.Errorf("evening busy %.2f not above 3am busy %.2f", evening/50, night/50)
	}
	// Deterministic per charger, distinct across chargers.
	if m.GenerateTimetable(42) != tt {
		t.Error("timetable generation not deterministic")
	}
	if m.GenerateTimetable(43) == tt {
		t.Error("different chargers share identical timetable")
	}
}

func TestAvailabilityForecastContainsTruth(t *testing.T) {
	m := NewAvailabilityModel(9)
	tt := m.GenerateTimetable(5)
	for _, horizon := range []time.Duration{0, 30 * time.Minute, 4 * time.Hour} {
		target := noon.Add(horizon)
		iv := m.ForecastBusy(5, &tt, target, noon)
		truth := m.TruthBusy(5, &tt, target)
		if !iv.Contains(truth) {
			t.Errorf("horizon %v: busy forecast %v missing truth %.3f", horizon, iv, truth)
		}
		av := m.ForecastAvailability(5, &tt, target, noon)
		if math.Abs(av.Min-(1-iv.Max)) > 1e-12 || math.Abs(av.Max-(1-iv.Min)) > 1e-12 {
			t.Errorf("availability not complement of busy: %v vs %v", av, iv)
		}
	}
}

func TestAvailabilityErrorSaturates(t *testing.T) {
	if availabilityError(0) < 0.05 {
		t.Error("nowcast floor missing")
	}
	if availabilityError(100*time.Hour) != 0.20 {
		t.Errorf("saturation = %v", availabilityError(100*time.Hour))
	}
	if availabilityError(-time.Hour) != availabilityError(0) {
		t.Error("negative horizon should clamp to 0")
	}
}

func TestTrafficMultiplierPeaks(t *testing.T) {
	m := NewTrafficModel(2)
	rush := time.Date(2024, 6, 18, 8, 30, 0, 0, time.UTC) // Tuesday
	calm := time.Date(2024, 6, 18, 3, 0, 0, 0, time.UTC)
	for c := roadnet.RoadClass(0); c < 4; c++ {
		r := m.TruthMultiplier(c, rush)
		q := m.TruthMultiplier(c, calm)
		if r < 1 || q < 1 {
			t.Fatalf("multiplier below 1: rush=%v calm=%v", r, q)
		}
		if r <= q {
			t.Errorf("class %v: rush %v not above calm %v", c, r, q)
		}
	}
}

func TestTrafficForecastContainsTruthAndAboveOne(t *testing.T) {
	m := NewTrafficModel(2)
	issued := time.Date(2024, 6, 18, 7, 0, 0, 0, time.UTC)
	for _, horizon := range []time.Duration{0, time.Hour, 5 * time.Hour} {
		target := issued.Add(horizon)
		for c := roadnet.RoadClass(0); c < 4; c++ {
			iv := m.ForecastMultiplier(c, target, issued)
			if iv.Min < 1 {
				t.Errorf("lower bound %v below free flow", iv)
			}
			if !iv.Contains(m.TruthMultiplier(c, target)) && iv.Min != 1 {
				// When clamped at 1 the truth may sit below the clamp only if
				// it were <1, which TruthMultiplier forbids.
				t.Errorf("forecast %v missing truth %v", iv, m.TruthMultiplier(c, target))
			}
		}
	}
}

func TestTrafficWeightFuncsOrdering(t *testing.T) {
	m := NewTrafficModel(4)
	issued := time.Date(2024, 6, 18, 7, 0, 0, 0, time.UTC)
	lower, upper := m.WeightFuncs(issued.Add(2*time.Hour), issued)
	e := roadnet.Edge{Length: 1000, Class: roadnet.ClassArterial}
	lo, hi := lower(e), upper(e)
	freeFlow := 1000 / roadnet.ClassArterial.FreeFlowSpeed()
	if lo < freeFlow-1e-9 {
		t.Errorf("lower weight %v below free flow %v", lo, freeFlow)
	}
	if hi < lo {
		t.Errorf("upper %v below lower %v", hi, lo)
	}
}

func TestWeekendTrafficMilder(t *testing.T) {
	m := NewTrafficModel(6)
	weekdayRush := time.Date(2024, 6, 18, 17, 30, 0, 0, time.UTC) // Tuesday
	weekendSame := time.Date(2024, 6, 22, 17, 30, 0, 0, time.UTC) // Saturday
	wd := m.baseProfile(roadnet.ClassArterial, weekdayRush)
	we := m.baseProfile(roadnet.ClassArterial, weekendSame)
	if we >= wd {
		t.Errorf("weekend profile %v not milder than weekday %v", we, wd)
	}
}

// Package ecocharge is the public facade of the EcoCharge framework, a Go
// reproduction of "A Framework for Continuous kNN Ranking of EV Chargers
// with Estimated Components" (ICDE 2024).
//
// EcoCharge ranks EV chargers along a scheduled trip by a Sustainability
// Score combining three interval-valued Estimated Components — the clean
// charging level L (weather/solar forecast), the availability A (busy
// timetables) and the derouting cost D (traffic-scaled network detour) —
// via a Continuous k-Nearest-Neighbor query with Estimated Components
// (CkNN-EC).
//
// The facade re-exports the library's primary types so downstream users
// interact with a single import path:
//
//	env, _ := ecocharge.NewEnv(graph, chargers, solar, avail, traffic, ecocharge.EnvConfig{})
//	method := ecocharge.NewEcoCharge(env, ecocharge.Options{RadiusM: 50000, ReuseDistM: 5000})
//	table := method.Rank(ecocharge.Query{...})
//
// The implementation lives in the internal packages: internal/cknn (the
// core algorithm), internal/ec (the Estimated Component models),
// internal/roadnet, internal/spatial, internal/charger,
// internal/trajectory, internal/eis (the information server) and
// internal/experiment (the paper's evaluation harness). See DESIGN.md for
// the full system inventory and EXPERIMENTS.md for the reproduced figures.
package ecocharge

import (
	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/ev"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// Geographic primitives.
type (
	// Point is a WGS84 location.
	Point = geo.Point
	// BBox is an axis-aligned bounding box.
	BBox = geo.BBox
)

// Interval arithmetic backing the Estimated Components.
type Interval = interval.I

// Road network.
type (
	// Graph is the directed weighted road network G = (V, E).
	Graph = roadnet.Graph
	// NodeID identifies a graph node.
	NodeID = roadnet.NodeID
	// UrbanConfig parameterizes the urban network generator.
	UrbanConfig = roadnet.UrbanConfig
	// HighwayConfig parameterizes the sparse highway generator.
	HighwayConfig = roadnet.HighwayConfig
)

// Estimated Component models.
type (
	// SolarModel forecasts clean production (the L component).
	SolarModel = ec.SolarModel
	// AvailabilityModel forecasts charger availability (the A component).
	AvailabilityModel = ec.AvailabilityModel
	// TrafficModel forecasts congestion (the D component).
	TrafficModel = ec.TrafficModel
	// Timetable is a busy histogram per (weekday, hour).
	Timetable = ec.Timetable
)

// Chargers.
type (
	// Charger is one EV charging point.
	Charger = charger.Charger
	// ChargerSet is an indexed charger collection.
	ChargerSet = charger.Set
	// RateClass is the charger's electrical rate category.
	RateClass = charger.RateClass
)

// Trips.
type (
	// Trip is a scheduled trip on the road network.
	Trip = trajectory.Trip
	// Segment is one partitioned path segment of a trip.
	Segment = trajectory.Segment
)

// Core CkNN-EC query machinery.
type (
	// Env bundles the world a query runs against.
	Env = cknn.Env
	// EnvConfig carries NewEnv's optional knobs.
	EnvConfig = cknn.EnvConfig
	// Query is one CkNN-EC evaluation point.
	Query = cknn.Query
	// Weights are the SC objective weights (w1, w2, w3).
	Weights = cknn.Weights
	// Components are the normalized ECs of one charger at one query.
	Components = cknn.Components
	// Entry is one Offering Table row.
	Entry = cknn.Entry
	// OfferingTable is the ranked result for one path segment.
	OfferingTable = cknn.OfferingTable
	// Method is a ranking strategy (BruteForce, IndexQuadtree, Random,
	// EcoCharge).
	Method = cknn.Method
	// Options configure the EcoCharge method (R, Q, TTL).
	Options = cknn.EcoChargeOptions
	// TripOptions configure a continuous trip evaluation.
	TripOptions = cknn.TripOptions
	// SegmentResult pairs a segment with its Offering Table.
	SegmentResult = cknn.SegmentResult
	// SplitPoint marks where the kNN result set changes along a trip.
	SplitPoint = cknn.SplitPoint
)

// NewEnv assembles a query environment. See cknn.NewEnv.
func NewEnv(g *Graph, set *ChargerSet, solar *SolarModel, avail *AvailabilityModel, traffic *TrafficModel, cfg EnvConfig) (*Env, error) {
	return cknn.NewEnv(g, set, solar, avail, traffic, cfg)
}

// NewEcoCharge returns the paper's method: radius-bounded CkNN-EC with the
// dynamic R/Q cache.
func NewEcoCharge(env *Env, opts Options) *cknn.EcoCharge { return cknn.NewEcoCharge(env, opts) }

// NewBruteForce returns the exhaustive optimal baseline.
func NewBruteForce(env *Env) *cknn.BruteForce { return cknn.NewBruteForce(env) }

// NewIndexQuadtree returns the spatial-index baseline.
func NewIndexQuadtree(env *Env) *cknn.IndexQuadtree { return cknn.NewIndexQuadtree(env) }

// NewRandom returns the random baseline.
func NewRandom(env *Env, seed int64) *cknn.Random { return cknn.NewRandom(env, seed) }

// EqualWeights is the default w1=w2=w3=1/3 configuration.
func EqualWeights() Weights { return cknn.EqualWeights() }

// RunTrip evaluates a method over every segment of a trip.
func RunTrip(env *Env, m Method, trip Trip, opts TripOptions) []SegmentResult {
	return cknn.RunTrip(env, m, trip, opts)
}

// SplitList computes the positions along a trip where the kNN set changes.
func SplitList(env *Env, m Method, trip Trip, opts TripOptions) []SplitPoint {
	return cknn.SplitList(env, m, trip, opts)
}

// GenerateUrban builds a synthetic urban road network.
func GenerateUrban(cfg UrbanConfig) *Graph { return roadnet.GenerateUrban(cfg) }

// GenerateHighway builds a synthetic sparse highway network.
func GenerateHighway(cfg HighwayConfig) *Graph { return roadnet.GenerateHighway(cfg) }

// GenerateChargers places a synthetic charger inventory on a road network.
func GenerateChargers(g *Graph, avail *AvailabilityModel, cfg charger.GenConfig) (*ChargerSet, error) {
	return charger.Generate(g, avail, cfg)
}

// ChargerGenConfig parameterizes GenerateChargers.
type ChargerGenConfig = charger.GenConfig

// NewSolarModel returns the weather/solar EC model.
func NewSolarModel(seed int64) *SolarModel { return ec.NewSolarModel(seed) }

// NewAvailabilityModel returns the busy-timetable EC model.
func NewAvailabilityModel(seed int64) *AvailabilityModel { return ec.NewAvailabilityModel(seed) }

// NewTrafficModel returns the congestion EC model.
func NewTrafficModel(seed int64) *TrafficModel { return ec.NewTrafficModel(seed) }

// GenerateTrips builds scheduled trips on a road network.
func GenerateTrips(g *Graph, cfg trajectory.GenConfig) ([]Trip, error) {
	return trajectory.Generate(g, cfg)
}

// TripGenConfig parameterizes GenerateTrips.
type TripGenConfig = trajectory.GenConfig

// Extensions (paper §VII future work).
type (
	// LoadTracker accounts for demand the framework itself induces at
	// chargers; Balanced wraps any Method with redirection based on it.
	LoadTracker = cknn.LoadTracker
	// Balanced is the load-balancing Method decorator.
	Balanced = cknn.Balanced
	// RefineOptions tune split-point bisection refinement.
	RefineOptions = cknn.RefineOptions
)

// NewLoadTracker returns a fleet-wide induced-demand tracker.
func NewLoadTracker(set *ChargerSet) *LoadTracker { return cknn.NewLoadTracker(set) }

// NewBalanced wraps a method with induced-demand redirection.
func NewBalanced(inner Method, tracker *LoadTracker) *Balanced {
	return cknn.NewBalanced(inner, tracker)
}

// RefineSplitPoints sharpens a trip's split list to sub-segment resolution.
func RefineSplitPoints(env *Env, m Method, trip Trip, opts TripOptions, ropts RefineOptions) []SplitPoint {
	return cknn.RefineSplitPoints(env, m, trip, opts, ropts)
}

// WindModel forecasts wind-turbine production (the second RES of §I).
type WindModel = ec.WindModel

// NewWindModel returns the wind EC model; attach it via EnvConfig.Wind.
func NewWindModel(seed int64) *WindModel { return ec.NewWindModel(seed) }

// DetourPlan is the route change of committing to a recommendation.
type DetourPlan = cknn.DetourPlan

// PlanDetour builds the route change for committing to an Offering Table
// entry at a trip segment (paper §IV.A).
func PlanDetour(env *Env, trip Trip, seg Segment, entry Entry) (DetourPlan, error) {
	return cknn.PlanDetour(env, trip, seg, entry)
}

// Vehicle is the EV battery/consumption model.
type Vehicle = ev.Vehicle

// CompactEV returns a typical compact EV (58 kWh, 11 kW AC / 150 kW DC).
func CompactEV() Vehicle { return ev.CompactEV() }

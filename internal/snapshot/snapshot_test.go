package snapshot

import (
	"archive/zip"
	"bytes"
	"io"
	"testing"

	"ecocharge/internal/cknn"
	"ecocharge/internal/experiment"
)

func tinyScenario(t testing.TB) *experiment.Scenario {
	t.Helper()
	sc, err := experiment.BuildScenario("Oldenburg", 0.001, 11)
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	return sc
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sc := tinyScenario(t)
	data, err := SaveToBytes(sc)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := LoadFromBytes(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Name != sc.Name || back.Scale != sc.Scale || back.Seed != sc.Seed {
		t.Fatalf("manifest fields lost: %+v", back)
	}
	if back.Graph.NumNodes() != sc.Graph.NumNodes() || back.Graph.NumEdges() != sc.Graph.NumEdges() {
		t.Fatal("graph size changed")
	}
	if back.Env.Chargers.Len() != sc.Env.Chargers.Len() {
		t.Fatal("charger count changed")
	}
	if len(back.Trips) != len(sc.Trips) {
		t.Fatal("trip count changed")
	}
	if !back.Start.Equal(sc.Start) {
		t.Fatal("start time changed")
	}

	// The restored world must rank exactly like the original (same seeds →
	// same forecasts; same CSVs → same geometry).
	trip := sc.Trips[0]
	opts := cknn.TripOptions{K: 3, SegmentLenM: 4000, RadiusM: 50000}
	want := cknn.RunTrip(sc.Env, cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{}), trip, opts)
	got := cknn.RunTrip(back.Env, cknn.NewEcoCharge(back.Env, cknn.EcoChargeOptions{}), back.Trips[0], opts)
	if len(want) != len(got) {
		t.Fatalf("segment counts: %d vs %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i].Table.IDs(), got[i].Table.IDs()
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("segment %d rank %d: %d vs %d", i, j, g[j], w[j])
			}
		}
	}
}

func TestLoadRejectsCorruptArchives(t *testing.T) {
	sc := tinyScenario(t)
	good, err := SaveToBytes(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Not a zip at all.
	if _, err := LoadFromBytes([]byte("not a zip")); err == nil {
		t.Error("garbage accepted")
	}
	// Missing member: rebuild the archive without the manifest.
	zr, err := zip.NewReader(bytes.NewReader(good), int64(len(good)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, f := range zr.File {
		if f.Name == "manifest.json" {
			continue
		}
		w, err := zw.Create(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(w, rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
	}
	zw.Close()
	if _, err := LoadFromBytes(buf.Bytes()); err == nil {
		t.Error("archive without manifest accepted")
	}
}

func TestLoadChecksIntegrity(t *testing.T) {
	sc := tinyScenario(t)
	good, err := SaveToBytes(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: replace the manifest with inconsistent counts.
	zr, _ := zip.NewReader(bytes.NewReader(good), int64(len(good)))
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, f := range zr.File {
		w, _ := zw.Create(f.Name)
		if f.Name == "manifest.json" {
			w.Write([]byte(`{"format_version":1,"name":"Oldenburg","nodes":1,"edges":1,"chargers":1,"trips":1}`))
			continue
		}
		rc, _ := f.Open()
		io.Copy(w, rc)
		rc.Close()
	}
	zw.Close()
	if _, err := LoadFromBytes(buf.Bytes()); err == nil {
		t.Error("inconsistent manifest accepted")
	}
}

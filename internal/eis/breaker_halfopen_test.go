package eis

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerConcurrentHalfOpenProbe hammers one breaker from 16 goroutines
// across the open→half-open transition on a fake clock and asserts the
// admission contract: exactly one caller is admitted as the probe, everyone
// else fails fast with ErrCircuitOpen, and the probe's outcome alone decides
// the next state. Run under -race this also proves the transition itself is
// race-clean.
func TestBreakerConcurrentHalfOpenProbe(t *testing.T) {
	var now atomic.Int64 // unix nanos, stepped explicitly
	clock := func() time.Time { return time.Unix(0, now.Load()) }
	b := NewBreaker(3, time.Second, clock)

	// Open the breaker with threshold consecutive faults.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused request %d: %v", i, err)
		}
		b.OnFailure()
	}
	if !b.Open() {
		t.Fatalf("breaker state %q after threshold faults, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker within cooldown admitted a request (err=%v)", err)
	}

	// Step past the cooldown, then race 16 goroutines into Allow. The
	// barrier releases them together so the half-open transition itself is
	// contended, not just the steady half-open state.
	now.Add(int64(time.Second))
	const goroutines = 16
	var (
		start    sync.WaitGroup
		done     sync.WaitGroup
		admitted atomic.Int64
		refused  atomic.Int64
	)
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			switch err := b.Allow(); {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrCircuitOpen):
				refused.Add(1)
			default:
				t.Errorf("unexpected Allow error: %v", err)
			}
		}()
	}
	start.Done()
	done.Wait()

	if admitted.Load() != 1 {
		t.Fatalf("half-open transition admitted %d probes, want exactly 1", admitted.Load())
	}
	if refused.Load() != goroutines-1 {
		t.Fatalf("%d goroutines refused, want %d", refused.Load(), goroutines-1)
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state %q while the probe is in flight, want half-open", got)
	}

	// A failed probe re-opens immediately; the next admission needs a fresh
	// cooldown.
	b.OnFailure()
	if !b.Open() {
		t.Fatalf("state %q after failed probe, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("re-opened breaker admitted a request before the cooldown (err=%v)", err)
	}

	// After another cooldown a successful probe closes the breaker for
	// everyone — run the storm again to prove the closed state admits all.
	now.Add(int64(time.Second))
	if err := b.Allow(); err != nil {
		t.Fatalf("second half-open probe refused: %v", err)
	}
	b.OnSuccess()
	if got := b.State(); got != "closed" {
		t.Fatalf("state %q after successful probe, want closed", got)
	}
	var open atomic.Int64
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			if err := b.Allow(); err != nil {
				open.Add(1)
			} else {
				b.OnSuccess()
			}
		}()
	}
	done.Wait()
	if open.Load() != 0 {
		t.Fatalf("closed breaker refused %d of %d concurrent requests", open.Load(), goroutines)
	}
}

package cknn

import (
	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
	"ecocharge/internal/spatial"
)

// SpatialIndexMethod generalizes the Index-Quadtree baseline over any
// spatial.Index: candidates are the CandidateFactor·k chargers nearest the
// anchor according to the index, then ranked with the full CkNN-EC scoring.
// The CkNN literature the paper surveys (§VI.B) uses grids and R-trees for
// this retrieval step; plugging them in quantifies how little the index
// choice matters next to the candidate-set semantics.
type SpatialIndexMethod struct {
	engine Engine
	name   string
	index  spatial.Index
	// CandidateFactor scales the candidate set; values below 1 select 2.
	CandidateFactor int
}

// NewIndexGrid returns the baseline backed by a uniform grid with the
// given cell size (0 selects 1 km).
func NewIndexGrid(env *Env, cellMeters float64) *SpatialIndexMethod {
	chargers := env.Chargers.All()
	var grid *spatial.Grid
	if len(chargers) > 0 {
		pts := make([]geo.Point, len(chargers))
		for i, c := range chargers {
			pts[i] = c.P
		}
		grid = spatial.NewGrid(geo.NewBBox(pts...), cellMeters)
		for _, c := range chargers {
			grid.Insert(spatial.Item{P: c.P, ID: c.ID})
		}
	} else {
		grid = spatial.NewGrid(geo.BBox{Min: geo.Point{}, Max: geo.Point{Lat: 1, Lon: 1}}, cellMeters)
	}
	return &SpatialIndexMethod{
		engine: Engine{Env: env}, name: "Index-Grid", index: grid, CandidateFactor: 2,
	}
}

// NewIndexRTree returns the baseline backed by an STR-packed R-tree.
func NewIndexRTree(env *Env) *SpatialIndexMethod {
	chargers := env.Chargers.All()
	items := make([]spatial.Item, len(chargers))
	for i, c := range chargers {
		items[i] = spatial.Item{P: c.P, ID: c.ID}
	}
	return &SpatialIndexMethod{
		engine: Engine{Env: env}, name: "Index-RTree",
		index: spatial.NewRTree(items, 0), CandidateFactor: 2,
	}
}

// Name implements Method.
func (m *SpatialIndexMethod) Name() string { return m.name }

// Reset implements Method; the method is stateless.
func (m *SpatialIndexMethod) Reset() {}

// ConcurrentRankOK implements ConcurrentRanker; the index is immutable
// after construction and the engine is stateless.
func (m *SpatialIndexMethod) ConcurrentRankOK() {}

// SetWorkers implements WorkersConfigurable.
func (m *SpatialIndexMethod) SetWorkers(n int) { m.engine.Workers = n }

// Rank implements Method with the same candidate-bounded evaluation as
// IndexQuadtree.
func (m *SpatialIndexMethod) Rank(q Query) OfferingTable {
	q = q.normalized()
	factor := m.CandidateFactor
	if factor < 1 {
		factor = 2
	}
	neighbors := m.index.KNN(q.Anchor, factor*q.K)
	cands := make([]*charger.Charger, 0, len(neighbors))
	for _, n := range neighbors {
		if c, ok := m.engine.Env.Chargers.ByID(n.ID); ok {
			cands = append(cands, c)
		}
	}
	bound := m.engine.Env.MaxDeroutSec
	if len(cands) > 0 {
		far := geo.Distance(q.Anchor, cands[len(cands)-1].P)
		if b := 4 * far / (avgUrbanSpeed / 2); b < bound {
			bound = b
		}
	}
	d := m.engine.Env.deroutingMapsFor(q, bound, deroutTargets(cands, q.ReturnNode))
	defer d.Release()
	return OfferingTable{
		Anchor:      q.Anchor,
		GeneratedAt: q.Now,
		ETABase:     q.ETABase,
		Entries:     m.engine.rankPool(cands, d, q),
	}
}

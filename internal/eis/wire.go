// Package eis implements the EcoCharge Information Server of §IV and its
// client. The server consolidates charger inventory, weather, availability
// and traffic estimates behind an HTTP API and computes Offering Tables
// centrally (Mode 2); the client supports all three modes of operation:
//
//	Mode 1 — in-vehicle: the embedded OS holds the environment and computes
//	         locally (no server involved; use cknn directly).
//	Mode 2 — server: the client posts a query, the EIS computes the table.
//	Mode 3 — edge: the client pulls the data (chargers + model seeds) from
//	         the EIS once and computes tables on the phone.
//
// JSON is the canonical, default interchange format. The hot-path payloads
// (Offering Tables, charger lists, point lookups) additionally negotiate
// the compact binary format of internal/wire via standard Accept /
// Content-Type headers; see that package for the format and the
// equivalence contract.
package eis

import (
	"ecocharge/internal/cknn"
	"ecocharge/internal/interval"
	"ecocharge/internal/wire"
)

// APIVersion prefixes all routes.
const APIVersion = "/api/v1"

// The wire types live in internal/wire (shared with the binary codec and
// the fleet gateway); the aliases keep eis.OfferingResponse et al. the
// canonical names for every caller.
type (
	// IntervalJSON is the wire form of an interval estimate.
	IntervalJSON = wire.IntervalJSON
	// WeightsJSON is the wire form of the SC weights.
	WeightsJSON = wire.WeightsJSON
	// OfferingRequest asks the EIS for an Offering Table (Mode 2).
	OfferingRequest = wire.OfferingRequest
	// OfferingEntry is one ranked charger of the response.
	OfferingEntry = wire.OfferingEntry
	// OfferingResponse is the Mode 2 result.
	OfferingResponse = wire.OfferingResponse
	// WeatherResponse reports the production forecast of one charger site.
	WeatherResponse = wire.WeatherResponse
	// AvailabilityResponse reports the availability estimate of one charger.
	AvailabilityResponse = wire.AvailabilityResponse
	// TrafficResponse reports the congestion multiplier band per road class.
	TrafficResponse = wire.TrafficResponse
	// ErrorResponse is the JSON body of non-2xx responses.
	ErrorResponse = wire.ErrorResponse
)

func toWire(i interval.I) IntervalJSON { return wire.ToWire(i) }

// wireEntry converts one ranked engine entry to its wire form; every
// endpoint emitting Offering Tables goes through it so the wire contract
// (including the Degraded tag) cannot drift between endpoints.
func wireEntry(e cknn.Entry) OfferingEntry {
	return OfferingEntry{
		ChargerID: e.Charger.ID,
		Lat:       e.Charger.P.Lat,
		Lon:       e.Charger.P.Lon,
		RateKW:    e.Charger.Rate.KW(),
		SC:        toWire(e.SC),
		L:         toWire(e.Comp.L),
		A:         toWire(e.Comp.A),
		D:         toWire(e.Comp.D),
		ETA:       e.Comp.ETA,
		Degraded:  uint8(e.Comp.Degraded),
	}
}

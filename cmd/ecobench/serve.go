package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"text/tabwriter"
	"time"

	"ecocharge/internal/eis"
	"ecocharge/internal/experiment"
	"ecocharge/internal/wire"
)

// servePlane is one content-type lane of the serve figure.
type servePlane struct {
	method string
	wire   bool
}

// runServeFig measures the Mode 2 serve path end to end — client encode,
// HTTP, server decode, rank, encode, client decode — once per negotiated
// content type, plus a micro-benchmark of the response encode alone so the
// JSON rows carry ns/op, bytes/op, and allocs/op for the marshal share.
// Each lane gets its own server so both start with a cold dynamic cache and
// see the identical anchor sequence.
func runServeFig(ctx context.Context, scenarios []*experiment.Scenario, o runOpts) ([]benchRow, error) {
	planes := []servePlane{{method: "mode2-json", wire: false}}
	if o.wire {
		planes = append(planes, servePlane{method: "mode2-wire", wire: true})
	}
	commit := resolveCommit(o.commit)
	workers := o.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	fmt.Println("Serve — Mode 2 over HTTP (per negotiated content type)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "dataset\tmethod\trt_ms\tenc_ns/op\tenc_B/op\tenc_allocs/op")

	var rows []benchRow
	for _, sc := range scenarios {
		for _, plane := range planes {
			row, err := runServePlane(ctx, sc, o, plane)
			if err != nil {
				return nil, err
			}
			row.Commit, row.GOOS, row.Workers = commit, runtime.GOOS, workers
			_, _ = fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.0f\t%.0f\t%.0f\n",
				row.Dataset, row.Method, row.FtMs, row.EncNsOp, row.EncBOp, row.EncAllocsOp)
			rows = append(rows, row)
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Println()
	return rows, nil
}

func runServePlane(ctx context.Context, sc *experiment.Scenario, o runOpts, plane servePlane) (benchRow, error) {
	srv := httptest.NewServer(eis.NewServer(sc.Env, eis.ServerOptions{}).Handler())
	defer srv.Close()
	client := eis.NewClientOpts(srv.URL, eis.ClientOptions{HTTPClient: srv.Client(), Wire: plane.wire})

	anchors := sc.Env.Chargers.All()
	stride := len(anchors)/o.cfg.TripsPerRep + 1
	now := time.Now()
	var sample eis.OfferingResponse
	var total time.Duration
	n := 0
	// Repetition 0 computes fresh tables; later repetitions replay the same
	// anchors, so the mean mixes compute and cache-hit serving the way a
	// steady-state fleet does.
	for rep := 0; rep < o.cfg.Repetitions; rep++ {
		for i := 0; i < len(anchors); i += stride {
			req := eis.OfferingRequest{
				Lat: anchors[i].P.Lat, Lon: anchors[i].P.Lon,
				K: o.cfg.K, Now: now,
			}
			start := time.Now()
			resp, err := client.Offering(ctx, req)
			if err != nil {
				return benchRow{}, fmt.Errorf("serve %s/%s: %w", sc.Name, plane.method, err)
			}
			total += time.Since(start)
			n++
			if len(resp.Entries) > len(sample.Entries) {
				sample = resp
			}
		}
	}
	if n == 0 {
		return benchRow{}, fmt.Errorf("serve %s: no anchors to query", sc.Name)
	}

	// Marshal share of the lane, on the largest table the run produced.
	var enc testing.BenchmarkResult
	if plane.wire {
		enc = testing.Benchmark(func(b *testing.B) {
			buf := make([]byte, 0, 1<<16)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = wire.AppendOfferingResponse(buf[:0], &sample)
			}
		})
	} else {
		enc = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := json.Marshal(&sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	return benchRow{
		Fig: "serve", Dataset: sc.Name, Method: plane.method,
		FaultRate:   o.faultRate,
		FtMs:        total.Seconds() * 1000 / float64(n),
		EncNsOp:     float64(enc.NsPerOp()),
		EncBOp:      float64(enc.AllocedBytesPerOp()),
		EncAllocsOp: float64(enc.AllocsPerOp()),
	}, nil
}

package eis

// Chaos tests of the comms stack: circuit-breaker walks through a scripted
// transport blackout on a fake clock, and end-to-end server runs over a
// fault-injected environment — requests must keep answering 200 with valid,
// correctly tagged Offering Tables at 30% source faults and even during a
// total source blackout.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/fault"
)

// fakeClock is a manually advanced clock for breaker cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestChaosBreakerBlackoutRecovery walks the breaker through a scripted
// blackout: closed → open after threshold faults, fail-fast while open,
// half-open probe after the cooldown (re-opening while the outage lasts),
// and half-open → closed once the transport recovers.
func TestChaosBreakerBlackoutRecovery(t *testing.T) {
	inner := &countingTripper{}
	inj := fault.New(fault.Config{Seed: 5, Blackouts: []fault.Window{{From: 0, To: 1}}})
	clk := &fakeClock{t: fixedNow}
	rec := &sleepRecorder{}
	c := NewClientOpts("http://eis.test", ClientOptions{
		HTTPClient:       &http.Client{Transport: &fault.Transport{Inner: inner, Inj: inj}},
		MaxRetries:       -1, // isolate the breaker from the retry loop
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Clock:            clk.Now,
		Sleep:            rec.sleep,
	})
	ctx := context.Background()
	at := time.Unix(0, 0)

	// Blackout: three consecutive faults open the /traffic breaker.
	for i := 0; i < 3; i++ {
		_, err := c.Traffic(ctx, at)
		if err == nil {
			t.Fatalf("call %d succeeded during blackout", i)
		}
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d failed fast before the threshold", i)
		}
	}
	reached := inner.count()
	if _, err := c.Traffic(ctx, at); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not open after 3 faults: %v", err)
	}
	if inner.count() != reached {
		t.Fatal("open breaker let a request reach the transport")
	}

	// Cooldown elapses while the blackout persists: the half-open probe
	// fails and the breaker re-opens immediately.
	clk.Advance(2 * time.Minute)
	if _, err := c.Traffic(ctx, at); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe outcome wrong during blackout: %v", err)
	}
	if _, err := c.Traffic(ctx, at); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not re-open the breaker: %v", err)
	}

	// The blackout ends and the cooldown elapses: the probe succeeds, the
	// breaker closes, and traffic flows freely again.
	inj.Advance(1)
	clk.Advance(2 * time.Minute)
	if _, err := c.Traffic(ctx, at); err != nil {
		t.Fatalf("half-open probe after recovery: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Traffic(ctx, at); err != nil {
			t.Fatalf("closed breaker rejected call %d after recovery: %v", i, err)
		}
	}
}

// countingTripper serves minimal valid JSON and counts exchanges.
type countingTripper struct {
	mu sync.Mutex
	n  int
}

func (c *countingTripper) RoundTrip(*http.Request) (*http.Response, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return (&scriptTripper{steps: []scriptStep{{status: http.StatusOK, body: `{"multiplier":{}}`}}}).RoundTrip(nil)
}

func (c *countingTripper) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// chaosServer builds an httptest EIS over a fault-injected copy of the
// test environment.
func chaosServer(t *testing.T, cfg fault.Config) (*httptest.Server, *Client, *cknn.Env) {
	t.Helper()
	env := testEnv(t)
	cp := *env
	cp.Faults = fault.Sources(fault.New(cfg))
	srv := NewServer(&cp, ServerOptions{Clock: func() time.Time { return fixedNow }, Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client()), &cp
}

// TestChaosServerDegradedOfferings hits the Mode 2 endpoint across many
// anchors at a 30% source-fault rate: every request must answer 200 with a
// valid table whose wire-level Degraded tags match the policy exactly.
func TestChaosServerDegradedOfferings(t *testing.T) {
	_, client, env := chaosServer(t, fault.Config{Seed: 9, Rate: 0.3})
	policy := env.Faults
	ctx := context.Background()
	degraded := 0
	all := env.Chargers.All()
	for i := 0; i < len(all); i += 8 {
		anchor := all[i].P
		resp, err := client.Offering(ctx, OfferingRequest{
			Lat: anchor.Lat, Lon: anchor.Lon, K: 3, Now: fixedNow,
		})
		if err != nil {
			t.Fatalf("offering at charger %d anchor under 30%% faults: %v", all[i].ID, err)
		}
		for j, e := range resp.Entries {
			for _, comp := range []cknn.Component{cknn.CompL, cknn.CompA, cknn.CompD} {
				wantBit := !policy.FetchOK(comp, e.ChargerID, fixedNow)
				gotBit := cknn.Degraded(e.Degraded).Has(comp)
				if gotBit != wantBit {
					t.Fatalf("entry %d charger %d: wire Degraded bit %s = %v, policy says %v",
						j, e.ChargerID, comp, gotBit, wantBit)
				}
				if wantBit {
					degraded++
				}
			}
			if j > 0 {
				prev := resp.Entries[j-1].SC.Interval()
				cur := e.SC.Interval()
				if prev.Mid() < cur.Mid() {
					t.Fatalf("entries %d/%d out of order under faults: %v < %v", j-1, j, prev.Mid(), cur.Mid())
				}
			}
		}
	}
	if degraded == 0 {
		t.Fatal("30% fault rate produced no degraded wire entries across all anchors")
	}
}

// TestChaosServerSourceBlackout runs the offering endpoint during a total
// EC-source blackout: the table must still arrive (HTTP 200, entries
// present) with every component of every entry tagged degraded.
func TestChaosServerSourceBlackout(t *testing.T) {
	_, client, env := chaosServer(t, fault.Config{Seed: 9, Blackouts: []fault.Window{{From: 0, To: 1 << 32}}})
	anchor := env.Chargers.All()[0].P
	resp, err := client.Offering(context.Background(), OfferingRequest{
		Lat: anchor.Lat, Lon: anchor.Lon, K: 3, Now: fixedNow,
	})
	if err != nil {
		t.Fatalf("offering during total source blackout: %v", err)
	}
	if len(resp.Entries) == 0 {
		t.Fatal("blackout emptied the Offering Table; expected degraded entries")
	}
	allBits := uint8(cknn.DegradedL | cknn.DegradedA | cknn.DegradedD)
	for i, e := range resp.Entries {
		if e.Degraded != allBits {
			t.Fatalf("entry %d: Degraded = %#x during total blackout, want %#x", i, e.Degraded, allBits)
		}
		for name, iv := range map[string]IntervalJSON{"l": e.L, "a": e.A, "d": e.D} {
			if iv.Min != 0 || iv.Max != 1 {
				t.Fatalf("entry %d component %s = [%v,%v], want the ignorance bound", i, name, iv.Min, iv.Max)
			}
		}
	}
}

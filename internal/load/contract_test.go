package load

import (
	"context"
	"net/http"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/eis"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// fixedNow pins the scenario clock: a summer Tuesday morning with active
// solar, matching the fleet suite's time base.
var fixedNow = time.Date(2024, 6, 18, 9, 30, 0, 0, time.UTC)

// testEnv is the small urban environment of the fleet chaos suite: an
// 8×6 km grid with 80 chargers — big enough for real tables, small enough
// that a rate step runs in well under a second.
func testEnv(t testing.TB) *cknn.Env {
	t.Helper()
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 1,
	})
	avail := ec.NewAvailabilityModel(2)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	env, err := cknn.NewEnv(g, set, ec.NewSolarModel(4), avail, ec.NewTrafficModel(5), cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// testSessions builds a query source over the test env's graph.
func testSessions(t testing.TB, env *cknn.Env, seed int64) *Sessions {
	t.Helper()
	sampler, err := trajectory.NewSampler(env.Graph, trajectory.GenConfig{
		Seed: seed, MinTripKM: 1, Start: fixedNow, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSessions(env.Graph, sampler, 32, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// delayHandler injects fixed service latency under the shedding
// middleware, standing in for real ranking work so the tiny in-flight cap
// actually bites. The wait observes the request context (never a bare
// sleep), so canceled requests release their slot immediately.
func delayHandler(d time.Duration) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-r.Context().Done():
				return
			case <-timer.C:
			}
			next.ServeHTTP(w, r)
		})
	}
}

// overloadFleet is the saturation fixture: 3 shards, 2 in-flight slots and
// 25 ms injected service latency each — a hard capacity of 240 requests/s
// that the suite's 600/s offered load overruns 2.5×.
func overloadFleet(t *testing.T, env *cknn.Env) *Inproc {
	t.Helper()
	ip, err := StartInproc(env, InprocOptions{
		Shards:      3,
		MaxInFlight: 2,
		RetryAfter:  time.Second,
		WireShards:  true,
		Clock:       func() time.Time { return fixedNow },
		Server:      eis.ServerOptions{CacheCellM: 1, Workers: 1},
		Wrap:        delayHandler(25 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ip.Close)
	return ip
}

// TestOverloadContract drives the stack far past saturation on both planes
// and asserts the overload contract on every single response:
//
//   - every answer is a tabletest-valid 200 (possibly degraded) or a 503
//     with a parseable Retry-After — OutcomeInvalid counts corrupt or
//     misordered bodies and malformed sheds, and must stay zero;
//   - no request is observed past its deadline (no hung connections);
//   - the overload actually bites, otherwise the test proves nothing.
//
// Two targets see two shapes of the same contract: a bare shard sheds
// client-visible 503s, while the gateway absorbs shard sheds into
// tabletest-valid degraded merges.
func TestOverloadContract(t *testing.T) {
	env := testEnv(t)
	ip := overloadFleet(t, env)
	const timeout = 3 * time.Second

	targets := []struct {
		name string
		url  string
		// bit asserts that saturation surfaced the way this target sheds.
		bit func(t *testing.T, res Result)
	}{
		{"shard", ip.ShardURLs[0], func(t *testing.T, res Result) {
			t.Helper()
			if res.Shed == 0 {
				t.Fatalf("saturated bare shard never shed (valid %d, degraded %d, errors %d)", res.Valid, res.Degraded, res.Errors)
			}
		}},
		{"gateway", ip.URL, func(t *testing.T, res Result) {
			t.Helper()
			if res.Degraded == 0 && res.Shed == 0 && res.Errors == 0 {
				t.Fatalf("saturated gateway showed no overload at all (valid %d)", res.Valid)
			}
		}},
	}
	for _, target := range targets {
		for _, plane := range []Plane{PlaneJSON, PlaneWire} {
			t.Run(target.name+"/"+string(plane), func(t *testing.T) {
				runner, err := NewRunner(Options{
					BaseURL: target.url, Plane: plane,
					K: 5, Now: fixedNow,
					Timeout: timeout, Workers: 64,
				})
				if err != nil {
					t.Fatal(err)
				}
				sched, err := Poisson(600, 600, 17)
				if err != nil {
					t.Fatal(err)
				}
				res, err := runner.Run(context.Background(), testSessions(t, env, 23), sched, 600)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Sent != res.Offered {
					t.Fatalf("sent %d of %d offered", res.Sent, res.Offered)
				}
				if got := res.Valid + res.Degraded + res.Shed + res.Invalid + res.Errors; got != res.Sent {
					t.Fatalf("accounting leak: %d classified of %d sent", got, res.Sent)
				}
				if res.Invalid > 0 {
					t.Fatalf("%d contract violations; first: %s", res.Invalid, res.FirstViolation)
				}
				if res.Valid+res.Degraded == 0 {
					t.Fatal("no successful answers at all under overload; shedding should spare capacity, not consume it")
				}
				target.bit(t, res)
				const slack = 2 * time.Second // scheduler + accept-queue headroom on a loaded CI box
				if res.MaxLat > timeout+slack {
					t.Fatalf("request observed %v after its intended start with a %v deadline — a request hung past its deadline", res.MaxLat, timeout)
				}
			})
		}
	}
}

// TestRunnerValidAtLowRate is the complement: an unsaturated run must be
// all valid answers, byte-clean on both planes.
func TestRunnerValidAtLowRate(t *testing.T) {
	env := testEnv(t)
	ip, err := StartInproc(env, InprocOptions{
		Shards: 3, WireShards: true,
		Clock: func() time.Time { return fixedNow },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	for _, plane := range []Plane{PlaneJSON, PlaneWire} {
		runner, err := NewRunner(Options{
			BaseURL: ip.URL, Plane: plane, K: 5, Now: fixedNow,
			Timeout: 5 * time.Second, Workers: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Poisson(100, 60, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Run(context.Background(), testSessions(t, env, 5), sched, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Valid != res.Offered {
			t.Fatalf("%s: %d valid of %d offered (degraded %d, shed %d, invalid %d, errors %d; first: %s)",
				plane, res.Valid, res.Offered, res.Degraded, res.Shed, res.Invalid, res.Errors, res.FirstViolation)
		}
		if res.Latency.Count() != uint64(res.Sent) {
			t.Fatalf("%s: %d latencies recorded for %d requests", plane, res.Latency.Count(), res.Sent)
		}
	}
}

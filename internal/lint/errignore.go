package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// ErrIgnore reports calls whose error result is silently discarded: an
// expression statement calling a function that returns an error drops the
// error on the floor. An explicit `_ = f()` assignment is accepted as a
// deliberate acknowledgement, as are `defer` and `go` statements (closing
// resources on the way out is idiomatic). Packages under examples/ are
// exempt — they optimise for brevity.
//
// Following errcheck convention, a few writes whose errors are
// unactionable are also exempt: fmt.Print/Printf/Println (process stdout),
// fmt.Fprint* aimed at os.Stdout or os.Stderr, and fmt.Fprint* into a
// *bytes.Buffer or *strings.Builder (whose Write never fails).
var ErrIgnore = &Analyzer{
	Name: "errignore",
	Doc:  "flags expression statements that discard a returned error",
	Run:  runErrIgnore,
}

func runErrIgnore(pass *Pass) {
	if strings.Contains(pass.Pkg.ImportPath, "/examples/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(pass, call) && !isExemptPrint(pass, call) {
				pass.Reportf(call.Pos(), "result of %s contains an error that is discarded; handle it or assign to _ explicitly",
					exprString(pass.Pkg.Fset, call.Fun))
			}
			return true
		})
	}
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isExemptPrint reports whether call is one of the conventional
// can't-act-on-the-error print forms documented on ErrIgnore.
func isExemptPrint(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		return isStdStream(pass, call.Args[0]) || isInfallibleWriter(pass.TypeOf(call.Args[0]))
	}
	return false
}

// isStdStream reports whether e is literally os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// isInfallibleWriter reports whether t is *bytes.Buffer or
// *strings.Builder, whose Write methods are documented never to fail.
func isInfallibleWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	return (path == "bytes" && name == "Buffer") || (path == "strings" && name == "Builder")
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// exprString renders a short source form of e for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "call"
	}
	return buf.String()
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// logHistMaxRelErr is the quantization guarantee under test: a reported
// quantile never under-states the true order statistic and over-states it
// by at most one sub-bucket width (2^-logSubBits = 3.125%), plus 1 ns for
// the inclusive-bound rounding.
const logHistMaxRelErr = 1.0 / logSubCount

// exactQuantile is the sorted-sample oracle with the same rank definition
// Quantile uses: the ceil(q·n)-th smallest sample (1-based).
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestLogHistogramQuantileOracle drives random latency distributions
// through the histogram and checks every reported quantile against the
// exact sorted-sample oracle within the quantization bound — the
// correctness contract the load harness's p50/p99/p999 numbers rest on.
func TestLogHistogramQuantileOracle(t *testing.T) {
	quantiles := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		// Mix three regimes so one run spans several orders of magnitude:
		// microsecond-scale service times, millisecond bulk, and a heavy
		// seconds-scale tail (the shape an overloaded open-loop run records).
		samples := make([]time.Duration, n)
		h := NewLogHistogram()
		for i := range samples {
			var d time.Duration
			switch rng.Intn(3) {
			case 0:
				d = time.Duration(rng.Int63n(int64(50 * time.Microsecond)))
			case 1:
				d = time.Duration(float64(5*time.Millisecond) * rng.ExpFloat64())
			default:
				d = time.Duration(float64(time.Second) * math.Pow(rng.Float64(), 4))
			}
			samples[i] = d
			h.Observe(d)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			got, want := h.Quantile(q), exactQuantile(samples, q)
			if got < want {
				t.Logf("seed %d q=%v: estimate %v below true %v", seed, q, got, want)
				return false
			}
			if float64(got) > float64(want)*(1+logHistMaxRelErr)+1 {
				t.Logf("seed %d q=%v: estimate %v exceeds true %v beyond the %.2f%% bound",
					seed, q, got, want, 100*logHistMaxRelErr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLogHistogramBucketLayout pins the index/bound round trip: every
// value lands in a bucket whose bound is ≥ the value and within one
// sub-bucket width of it, indexes are monotone, and the extremes of the
// uint64 range stay inside the fixed array.
func TestLogHistogramBucketLayout(t *testing.T) {
	vals := []uint64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1023, 1 << 20, 1<<20 + 3,
		uint64(time.Second), uint64(time.Hour), 1 << 62, math.MaxInt64, math.MaxUint64}
	prev := -1
	for _, v := range vals {
		idx := logBucketIndex(v)
		if idx < 0 || idx >= logBucketCount {
			t.Fatalf("value %d: index %d outside [0,%d)", v, idx, logBucketCount)
		}
		if idx < prev {
			t.Fatalf("value %d: index %d not monotone (previous %d)", v, idx, prev)
		}
		prev = idx
		bound := logBucketBound(idx)
		if bound < v {
			t.Fatalf("value %d: bucket bound %d below the value", v, bound)
		}
		if v >= 2*logSubCount && float64(bound) > float64(v)*(1+logHistMaxRelErr)+1 {
			t.Fatalf("value %d: bucket bound %d beyond the %.2f%% width bound", v, bound, 100*logHistMaxRelErr)
		}
		if idx > 0 && logBucketBound(idx-1) >= v {
			t.Fatalf("value %d: previous bucket %d already covers it (bound %d)", v, idx-1, logBucketBound(idx-1))
		}
	}
}

// TestLogHistogramEdges covers the nil/empty/degenerate contract.
func TestLogHistogramEdges(t *testing.T) {
	var nilH *LogHistogram
	nilH.Observe(time.Second) // must not panic
	nilH.Merge(NewLogHistogram())
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h := NewLogHistogram()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.Observe(-time.Second) // clock step: clamps to 0, still counted
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Fatalf("negative observation: count=%d q1=%v, want 1 and 0", h.Count(), h.Quantile(1))
	}
	h.Observe(42 * time.Millisecond)
	if got := h.Sum(); got != 42*time.Millisecond {
		t.Fatalf("Sum=%v, want 42ms", got)
	}
}

// TestLogHistogramMerge proves merged per-worker histograms report the
// same quantiles as one shared histogram fed everything.
func TestLogHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shared := NewLogHistogram()
	parts := []*LogHistogram{NewLogHistogram(), NewLogHistogram(), NewLogHistogram()}
	for i := 0; i < 3000; i++ {
		d := time.Duration(rng.Int63n(int64(2 * time.Second)))
		shared.Observe(d)
		parts[i%len(parts)].Observe(d)
	}
	merged := NewLogHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != shared.Count() || merged.Sum() != shared.Sum() {
		t.Fatalf("merge lost observations: count %d vs %d", merged.Count(), shared.Count())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != shared.Quantile(q) {
			t.Fatalf("q=%v: merged %v != shared %v", q, merged.Quantile(q), shared.Quantile(q))
		}
	}
}

// TestLogHistogramObserveZeroAlloc is the same hot-path discipline gate
// the fixed-bucket histogram passes: recording a latency sample must not
// allocate, live or nil.
func TestLogHistogramObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the no-race CI lane runs this")
	}
	h := NewLogHistogram()
	var nilH *LogHistogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Observe", func() { h.Observe(1234567 * time.Nanosecond) }},
		{"nil.Observe", func() { nilH.Observe(time.Millisecond) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("LogHistogram.%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}
}

// TestLogHistogramExposition checks the registry round trip: summary-form
// text exposition and the Snapshot keys the -json rows embed.
func TestLogHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.LogHistogram("load_latency_seconds")
	if h2 := r.LogHistogram("load_latency_seconds"); h2 != h {
		t.Fatal("lookup is not idempotent")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE load_latency_seconds summary",
		`load_latency_seconds{quantile="0.5"}`,
		`load_latency_seconds{quantile="0.999"}`,
		"load_latency_seconds_count 1000",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	snap := r.Snapshot()
	if snap["load_latency_seconds_count"] != 1000 {
		t.Fatalf("snapshot count = %v, want 1000", snap["load_latency_seconds_count"])
	}
	p999 := snap["load_latency_seconds_p999"]
	if p999 < 0.99 || p999 > 1.04 {
		t.Fatalf("snapshot p999 = %v, want ~0.999s within the quantization bound", p999)
	}
	var nilReg *Registry
	if nilReg.LogHistogram("x") != nil {
		t.Fatal("nil registry must return the discarding handle")
	}
}

func BenchmarkLogHistogramObserve(b *testing.B) {
	h := NewLogHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
}

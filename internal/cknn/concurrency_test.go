package cknn

// Concurrency suite: the cache-coherence property of concurrent trips over
// one shared Env, goroutine storms on the mutable shared structures
// (LoadTracker, ShardedCache), and the parallel-trip benchmark. Run with
// -race; the CI test job does.

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/trajectory"
)

// TestSharedCacheTripCoherence is the cache-coherence property: k trips
// running concurrently over one shared Env and one shared ShardedCache must
// each produce exactly what a fresh single-trip run produces — per-owner
// slots mean a trip can never observe (or adapt) another trip's tables.
func TestSharedCacheTripCoherence(t *testing.T) {
	env := testEnv(t)
	opts := EcoChargeOptions{RadiusM: 10000, ReuseDistM: 3000}
	tripOpts := TripOptions{K: 3, SegmentLenM: 3000, RadiusM: 10000, Workers: 2}
	property := func(s uint8) bool {
		trips, err := trajectory.Generate(env.Graph, trajectory.GenConfig{
			N: 3, Seed: int64(s) + 1, MinTripKM: 5, MaxTripKM: 10,
			Start: queryTime, Window: time.Hour,
		})
		if err != nil || len(trips) == 0 {
			return false
		}
		shared := NewShardedCache()
		got := make([][]SegmentResult, len(trips))
		var wg sync.WaitGroup
		for i := range trips {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				m := NewEcoChargeShared(env, opts, shared)
				got[i] = RunTrip(env, m, trips[i], tripOpts)
			}(i)
		}
		wg.Wait()
		for i := range trips {
			want := RunTrip(env, NewEcoCharge(env, opts), trips[i], tripOpts)
			if !reflect.DeepEqual(want, got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTrackerConcurrency(t *testing.T) {
	t.Parallel()
	env := testEnv(t)
	lt := NewLoadTracker(env.Chargers)
	all := env.Chargers.All()
	ids := make([]int64, 8)
	for i := range ids {
		ids[i] = all[i].ID
	}
	const goroutines = 16
	const opsPer = 200
	var bad atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				id := ids[(g+i)%len(ids)]
				eta := queryTime.Add(time.Duration(i) * time.Minute)
				lt.Commit(id, eta)
				if v := lt.InducedBusy(id, eta); v < 0 || v > 1 {
					bad.Store(true)
					return
				}
				if i%3 == 0 {
					lt.Cancel(id, eta)
				}
				if i%50 == 0 {
					lt.Commitments(eta)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("InducedBusy left [0, 1] under concurrent load")
	}
	if v := lt.InducedBusy(ids[0], queryTime); v < 0 || v > 1 {
		t.Fatalf("post-storm InducedBusy = %v", v)
	}
}

func TestShardedCacheStorm(t *testing.T) {
	t.Parallel()
	cache := NewShardedCache()
	opts := EcoChargeOptions{}.withDefaults()
	anchor := geo.Point{Lat: 53, Lon: 8}
	const goroutines = 32
	var bad atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			owner := cache.NewOwner()
			table := OfferingTable{
				Anchor: anchor, GeneratedAt: queryTime,
				Entries: []Entry{mkEntry(int64(owner), 0.5, 0.6)},
			}
			q := Query{Anchor: anchor, Now: queryTime}
			for i := 0; i < 500; i++ {
				cache.Store(owner, table)
				got, ok := cache.Lookup(owner, q, opts)
				if !ok || got.Entries[0].Charger.ID != int64(owner) {
					bad.Store(true)
					return
				}
				if i%7 == 0 {
					cache.Invalidate(owner)
					if _, ok := cache.Lookup(owner, q, opts); ok {
						bad.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("cache crossed owner slots or served an invalidated table")
	}
	if n := cache.Len(); n != goroutines {
		t.Fatalf("live slots after storm = %d, want %d", n, goroutines)
	}
}

func TestShardedCacheLookupSemantics(t *testing.T) {
	cache := NewShardedCache()
	owner := cache.NewOwner()
	opts := EcoChargeOptions{ReuseDistM: 2000, TTL: 10 * time.Minute}.withDefaults()
	anchor := geo.Point{Lat: 53, Lon: 8}
	table := OfferingTable{
		Anchor: anchor, GeneratedAt: queryTime,
		Entries: []Entry{mkEntry(1, 0.5, 0.6)},
	}
	cache.Store(owner, table)

	if _, ok := cache.Lookup(owner, Query{Anchor: anchor, Now: queryTime}, opts); !ok {
		t.Fatal("same-place same-time lookup missed")
	}
	// Beyond Q.
	far := Query{Anchor: geo.Destination(anchor, 90, 3000), Now: queryTime}
	if _, ok := cache.Lookup(owner, far, opts); ok {
		t.Error("lookup hit beyond the reuse distance")
	}
	// Beyond TTL.
	stale := Query{Anchor: anchor, Now: queryTime.Add(time.Hour)}
	if _, ok := cache.Lookup(owner, stale, opts); ok {
		t.Error("lookup hit beyond the TTL")
	}
	// A query issued before the table existed must not adapt it.
	early := Query{Anchor: anchor, Now: queryTime.Add(-time.Minute)}
	if _, ok := cache.Lookup(owner, early, opts); ok {
		t.Error("lookup hit a future table")
	}
	// Other owners never see the slot.
	other := cache.NewOwner()
	if _, ok := cache.Lookup(other, Query{Anchor: anchor, Now: queryTime}, opts); ok {
		t.Error("foreign owner hit the slot")
	}
}

func BenchmarkRunTripParallel(b *testing.B) {
	env := testEnv(b)
	trips, err := trajectory.Generate(env.Graph, trajectory.GenConfig{
		N: 1, Seed: 9, MinTripKM: 10, MaxTripKM: 14, Start: queryTime, Window: time.Hour,
	})
	if err != nil || len(trips) == 0 {
		b.Fatalf("trajectory.Generate: %v (%d trips)", err, len(trips))
	}
	trip := trips[0]
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			m := NewBruteForce(env)
			opts := TripOptions{K: 3, SegmentLenM: 1000, RadiusM: 10000, Workers: workers}
			segments := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				segments += len(RunTrip(env, m, trip, opts))
			}
			b.ReportMetric(float64(segments)/b.Elapsed().Seconds(), "segments/sec")
		})
	}
}

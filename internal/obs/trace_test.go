package obs

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock steps deterministically so span durations are exact.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(time.Millisecond)
	return f.now
}

func TestSpanParentChildAndExport(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{Clock: (&fakeClock{now: time.Unix(0, 0).UTC()}).Now})

	ctx, root := tr.StartSpan(context.Background(), "root")
	ctx2, child := tr.StartSpan(ctx, "child")
	_, grandchild := tr.StartSpan(ctx2, "grandchild")
	grandchild.End()
	child.End()
	root.End()

	recs, err := ParseSpanRecords(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseSpanRecords: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("exported %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	rootRec, childRec, gcRec := byName["root"], byName["child"], byName["grandchild"]
	if rootRec.Trace == "" || rootRec.Parent != "" {
		t.Fatalf("root record malformed: %+v", rootRec)
	}
	if childRec.Trace != rootRec.Trace || gcRec.Trace != rootRec.Trace {
		t.Fatal("spans of one operation landed in different traces")
	}
	if childRec.Parent != rootRec.Span {
		t.Fatalf("child parent = %q, want root span %q", childRec.Parent, rootRec.Span)
	}
	if gcRec.Parent != childRec.Span {
		t.Fatalf("grandchild parent = %q, want child span %q", gcRec.Parent, childRec.Span)
	}
	for _, r := range recs {
		if r.DurNS <= 0 {
			t.Fatalf("span %s has non-positive duration %d", r.Name, r.DurNS)
		}
	}
}

func TestHTTPPropagationRoundTrip(t *testing.T) {
	tr := NewTracer(nil, TracerOptions{})
	ctx, span := tr.StartSpan(context.Background(), "client")
	h := make(http.Header)
	InjectHTTP(ctx, h)
	got, ok := ExtractHTTP(h)
	if !ok {
		t.Fatal("headers did not round-trip")
	}
	if got != span.Context() {
		t.Fatalf("extracted %+v, want %+v", got, span.Context())
	}
	// Absent or garbage headers extract nothing.
	if _, ok := ExtractHTTP(make(http.Header)); ok {
		t.Fatal("empty headers produced a span context")
	}
	bad := make(http.Header)
	bad.Set(HeaderTraceID, "not-hex")
	bad.Set(HeaderSpanID, "123")
	if _, ok := ExtractHTTP(bad); ok {
		t.Fatal("garbage trace ID accepted")
	}
}

func TestSamplingIsPerTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{SampleEvery: 2})
	exported, dropped := 0, 0
	for i := 0; i < 64; i++ {
		ctx, root := tr.StartSpan(context.Background(), "op")
		_, child := tr.StartSpan(ctx, "step")
		child.End()
		root.End()
		recs, err := ParseSpanRecords(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		switch len(recs) {
		case 0:
			dropped++
		case 2:
			exported++ // sampled traces export whole: root and child
		default:
			t.Fatalf("trace exported %d spans, want 0 or 2", len(recs))
		}
	}
	if exported == 0 || dropped == 0 {
		t.Fatalf("sampling degenerate: %d exported, %d dropped", exported, dropped)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartSpan(context.Background(), "x")
	if ctx == nil {
		t.Fatal("nil tracer lost the context")
	}
	span.End() // must not panic
	if span.Context().Valid() {
		t.Fatal("nil span claims a valid context")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("nil tracer injected a span context")
	}
}

func TestTracerIDsUniqueUnderConcurrency(t *testing.T) {
	tr := NewTracer(nil, TracerOptions{Seed: 99})
	const n = 2000
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				_, sp := tr.StartSpan(context.Background(), "x")
				ids <- sp.Context().SpanID
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool, n)
	for id := range ids {
		if id == 0 {
			t.Fatal("zero span ID")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %x", id)
		}
		seen[id] = true
	}
}

// Package fault implements deterministic, seeded fault injection for the
// EcoCharge pipeline: it decides — reproducibly, from a PRNG seed and the
// identity of each operation — whether an external dependency (a forecast
// source, the EIS HTTP transport) fails, serves stale data, or stalls.
//
// The paper's Estimated Components are backed by third-party feeds
// (weather, popular-times, traffic); those feeds fail in production, and
// eqs. 4–6 already define the principled response: an unavailable component
// degrades to its ignorance bound [0,1] instead of an error. This package
// supplies the failure side of that contract so the degradation path can be
// driven — and asserted on — by tests and benchmarks.
//
// Determinism rules:
//
//   - Decisions never read the wall clock. Time enters only through caller
//     supplied logical timestamps (query issue times) and the injector's
//     explicit virtual tick, advanced by the harness with Advance.
//   - Decide is a pure function of (seed, virtual tick, keys): the same
//     call yields the same decision regardless of goroutine interleaving,
//     which is what lets the chaos suite run under -race and still compare
//     outputs structurally.
//   - Sequenced decisions (DecideSeq, used by the HTTP transport where each
//     attempt is a distinct event) consume an atomic counter; they are
//     reproducible for any sequential driver.
package fault

import (
	"sync/atomic"
	"time"
)

// Window is a half-open range [From, To) of virtual ticks during which
// every decision fails — a scripted blackout (total source or transport
// outage). The harness moves through windows with Injector.Advance.
type Window struct {
	From, To uint64
}

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed selects the fault realization; different seeds fail different
	// (operation, entity) pairs at the same rates.
	Seed int64
	// Rate is the probability in [0,1] that an operation fails outright.
	Rate float64
	// StaleRate is the probability in [0,1] that an operation succeeds but
	// serves data past its freshness horizon. Consumers that need fresh
	// estimates (the EC sources) treat stale as failed; transports pass it
	// through as a header-level concern.
	StaleRate float64
	// LatencyRate is the probability in [0,1] that an operation is slowed
	// by up to Latency (scaled by a deterministic fraction).
	LatencyRate float64
	// Latency is the maximum injected delay when LatencyRate hits.
	Latency time.Duration
	// Blackouts are virtual-tick windows of total outage.
	Blackouts []Window
}

// clamped returns the config with probabilities forced into [0,1].
func (c Config) clamped() Config {
	c.Rate = clamp01(c.Rate)
	c.StaleRate = clamp01(c.StaleRate)
	c.LatencyRate = clamp01(c.LatencyRate)
	return c
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Decision is the outcome of one injected operation.
type Decision struct {
	// Fail means the operation failed outright (transport error, source
	// down, blackout).
	Fail bool
	// Stale means the operation succeeded but the data is past its
	// freshness horizon.
	Stale bool
	// Latency is the delay to inject before the operation completes.
	Latency time.Duration
}

// Degraded reports whether the decision should degrade a component fetch:
// failed or stale sources both fall back to the ignorance bound.
func (d Decision) Degraded() bool { return d.Fail || d.Stale }

// Injector makes deterministic fault decisions. It is safe for concurrent
// use; all methods are non-blocking.
type Injector struct {
	cfg  Config
	tick atomic.Uint64
	seq  atomic.Uint64
}

// New returns an injector over the config with the virtual clock at tick 0.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg.clamped()}
}

// Advance moves the virtual clock forward by n ticks and returns the new
// tick. Blackout windows are expressed in these ticks; nothing else in the
// injector observes the passage of real time.
func (in *Injector) Advance(n uint64) uint64 { return in.tick.Add(n) }

// Tick returns the current virtual tick.
func (in *Injector) Tick() uint64 { return in.tick.Load() }

// InBlackout reports whether the current tick falls inside a blackout
// window.
func (in *Injector) InBlackout() bool { return in.blackoutAt(in.tick.Load()) }

func (in *Injector) blackoutAt(tick uint64) bool {
	for _, w := range in.cfg.Blackouts {
		if tick >= w.From && tick < w.To {
			return true
		}
	}
	return false
}

// Decide returns the deterministic decision for the operation identified by
// keys at the current virtual tick. It is pure between Advance calls: the
// same keys always produce the same decision, so callers may consult it
// repeatedly (e.g. once in a prune bound and once in the evaluation) and
// stay consistent, and evaluation order — sequential or parallel — cannot
// change any outcome.
func (in *Injector) Decide(keys ...uint64) Decision {
	tick := in.tick.Load()
	if in.blackoutAt(tick) {
		return Decision{Fail: true}
	}
	var d Decision
	if in.frac(saltFail, tick, keys) < in.cfg.Rate {
		d.Fail = true
		return d
	}
	if in.frac(saltStale, tick, keys) < in.cfg.StaleRate {
		d.Stale = true
	}
	if in.cfg.Latency > 0 && in.frac(saltLatency, tick, keys) < in.cfg.LatencyRate {
		scale := in.frac(saltLatencyAmt, tick, keys)
		d.Latency = time.Duration(scale * float64(in.cfg.Latency))
	}
	return d
}

// DecideSeq stamps the operation with a fresh sequence number and decides
// on (keys..., seq): consecutive attempts against the same endpoint get
// independent decisions, which is what makes retries meaningful. The
// sequence is deterministic for a sequential driver.
func (in *Injector) DecideSeq(keys ...uint64) Decision {
	seq := in.seq.Add(1)
	return in.Decide(append(append([]uint64(nil), keys...), seq)...)
}

// Salts decorrelate the independent probability draws of one decision.
const (
	saltFail       uint64 = 0xfa17
	saltStale      uint64 = 0x57a1e
	saltLatency    uint64 = 0x1a7e
	saltLatencyAmt uint64 = 0x1a7e2
)

// frac maps (seed, salt, tick, keys) to a uniform fraction in [0, 1).
func (in *Injector) frac(salt, tick uint64, keys []uint64) float64 {
	h := splitmix64(uint64(in.cfg.Seed) ^ salt)
	h = splitmix64(h ^ tick)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same cheap
// high-quality hash the EC models use for their deterministic noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString folds a string into one key for Decide — used to identify
// endpoints and operations without allocating.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211 // FNV-1a prime
	}
	return h
}

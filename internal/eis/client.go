package eis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
	"ecocharge/internal/obs"
	"ecocharge/internal/wire"
)

// maxResponseBytes bounds how much of a response body the client reads: a
// misbehaving server cannot make a vehicle buffer unbounded data.
const maxResponseBytes = 8 << 20

// ClientOptions tune the client's resilience machinery. The zero value
// selects production defaults.
type ClientOptions struct {
	// HTTPClient performs the exchanges. Nil selects a default with a 10 s
	// timeout.
	HTTPClient *http.Client
	// MaxRetries bounds how many times an idempotent GET is re-attempted
	// after a retryable failure (so up to MaxRetries+1 exchanges). 0 selects
	// 3; negative disables retries.
	MaxRetries int
	// BackoffBase is the first retry delay; each further retry doubles it.
	// 0 selects 100 ms.
	BackoffBase time.Duration
	// BackoffCap caps the exponential delay. 0 selects 2 s.
	BackoffCap time.Duration
	// JitterSeed decorrelates the deterministic jitter of concurrent
	// clients; any value is fine, equal seeds retry in lockstep.
	JitterSeed int64
	// BreakerThreshold is the number of consecutive faults that opens an
	// endpoint's circuit. 0 selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fails fast before
	// admitting a half-open probe. 0 selects 5 s.
	BreakerCooldown time.Duration
	// Clock supplies the time for breaker cooldowns. Nil selects time.Now.
	// Tests inject a fake to step through breaker states without sleeping.
	Clock func() time.Time
	// Sleep waits between retries. Nil selects a context-aware timer wait.
	// Tests inject a recorder so the suite never sleeps for real.
	Sleep func(time.Duration)
	// Tracer exports one root span per logical request plus one child span
	// per attempt, and stamps the attempt's span context onto the outgoing
	// headers so the server joins the same trace. Nil disables tracing.
	Tracer *obs.Tracer
	// Wire negotiates the binary interchange format of internal/wire: every
	// request advertises it via Accept (and Mode 2 Offering bodies are
	// POSTed binary), while responses are decoded by their Content-Type — a
	// server without the codec keeps answering JSON and nothing breaks.
	Wire bool
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.HTTPClient == nil {
		// The zero-config client gets the load-ready transport: the stdlib
		// default's 2 idle connections per host would re-dial TCP under any
		// real concurrency, and the wire plane skips gzip (binary payloads
		// don't compress usefully).
		o.HTTPClient = &http.Client{
			Timeout:   10 * time.Second,
			Transport: DefaultTransport(64, o.Wire),
		}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Client talks to an EcoCharge Information Server. It covers Mode 2
// (server-computed Offering Tables) and the data pulls Mode 3 edge
// computation needs.
//
// Resilience: idempotent GETs are retried with capped exponential backoff
// and deterministic jitter, honoring Retry-After and the request context;
// each endpoint carries a circuit breaker that fails fast (ErrCircuitOpen)
// during sustained outages and recovers through a half-open probe. POSTs are
// never retried (the exchange is not known to be idempotent) but share the
// breaker bookkeeping.
type Client struct {
	base     string
	opts     ClientOptions
	breakers breakerSet
}

// NewClient returns a client for the EIS at baseURL (e.g.
// "http://localhost:8080") with default resilience options. A nil
// httpClient selects a default with a 10 s timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return NewClientOpts(baseURL, ClientOptions{HTTPClient: httpClient})
}

// NewClientOpts returns a client with explicit resilience options.
func NewClientOpts(baseURL string, opts ClientOptions) *Client {
	c := &Client{base: baseURL, opts: opts.withDefaults()}
	c.breakers.init(c.opts.BreakerThreshold, c.opts.BreakerCooldown, c.opts.Clock)
	return c
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out interface{}) error {
	u := c.base + APIVersion + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("eis client: building request: %w", err)
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	ct := ctJSON
	var data []byte
	var buf *wire.Buffer
	if wreq, ok := body.(*OfferingRequest); ok && c.opts.Wire {
		buf = wire.GetBuffer()
		buf.B = wire.AppendOfferingRequest(buf.B, wreq)
		data, ct = buf.B, wire.ContentType
	} else {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("eis client: encoding request: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+APIVersion+path, bytes.NewReader(data))
	if err != nil {
		wire.PutBuffer(buf)
		return fmt.Errorf("eis client: building request: %w", err)
	}
	req.Header.Set("Content-Type", ct)
	err = c.do(req, out)
	wire.PutBuffer(buf) // nil-safe; the body was fully sent by now
	return err
}

// attemptOutcome classifies one exchange for the retry loop and the
// breaker.
type attemptOutcome struct {
	err        error
	retryable  bool          // worth re-attempting (idempotent methods only)
	fault      bool          // counts against the endpoint's breaker
	retryAfter time.Duration // server-requested delay (Retry-After), 0 if none
}

// do performs the exchange with retries (idempotent GETs only), backoff,
// and per-endpoint circuit breaking.
func (c *Client) do(req *http.Request, out interface{}) error {
	br := c.breakers.forEndpoint(req.URL.Path)
	retries := 0
	if req.Method == http.MethodGet {
		retries = c.opts.MaxRetries
	}
	if c.opts.Wire {
		// Advertise the binary format everywhere; the server answers binary
		// only for payloads its codec covers, so JSON-only endpoints (and
		// pre-codec servers) keep working unchanged.
		req.Header.Set("Accept", wire.ContentType)
	}
	// One root span covers the whole logical request: every retry attempt
	// below becomes a child of it, so a retried exchange still reads as one
	// trace with N attempt spans.
	rootCtx, rootSpan := c.opts.Tracer.StartSpan(req.Context(), "eis.client "+req.URL.Path)
	defer rootSpan.End()
	var last attemptOutcome
	for attempt := 0; ; attempt++ {
		if err := br.allow(); err != nil {
			return fmt.Errorf("eis client: %s %s: %w", req.Method, req.URL.Path, err)
		}
		if attempt > 0 {
			met.clientRetries.Inc()
		}
		attemptCtx, attemptSpan := c.opts.Tracer.StartSpan(rootCtx, "eis.attempt")
		areq := req.Clone(req.Context())
		obs.InjectHTTP(attemptCtx, areq.Header)
		last = c.attempt(areq, out)
		attemptSpan.End()
		if last.fault {
			br.onFailure()
		} else {
			br.onSuccess()
		}
		if last.err == nil || !last.retryable || attempt >= retries {
			return last.err
		}
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return last.err
		}
		delay := c.backoff(req.URL.Path, attempt)
		if last.retryAfter > 0 {
			delay = last.retryAfter
		}
		if err := c.wait(req.Context(), delay); err != nil {
			return last.err
		}
	}
}

// attempt performs a single exchange and classifies the result.
func (c *Client) attempt(req *http.Request, out interface{}) attemptOutcome {
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		// Transport-level failure: the server may never have seen the
		// request, so an idempotent retry is safe. A dead context is not
		// retryable — do checks it before sleeping.
		return attemptOutcome{
			err:       fmt.Errorf("eis client: %s %s: %w", req.Method, req.URL.Path, err),
			retryable: true,
			fault:     true,
		}
	}
	defer resp.Body.Close()
	// The body is read into a pooled buffer (every decoder below copies out
	// of it, so releasing on return is safe); the old ReadAll grew a fresh
	// slice through O(log n) copies on every exchange.
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	if err := buf.ReadLimit(resp.Body, maxResponseBytes); err != nil {
		// The exchange died mid-body (connection reset, context cancelled).
		return attemptOutcome{
			err:       fmt.Errorf("eis client: reading response: %w", err),
			retryable: true,
			fault:     true,
		}
	}
	body := buf.B
	if len(body) > maxResponseBytes {
		// Oversized responses are truncated by policy, never buffered; the
		// server is misbehaving, not unreachable, so this is terminal.
		return attemptOutcome{
			err: fmt.Errorf("eis client: %s: response exceeds %d bytes", req.URL.Path, maxResponseBytes),
		}
	}
	if resp.StatusCode != http.StatusOK {
		return c.classifyStatus(req, resp, body)
	}
	if out == nil {
		return attemptOutcome{}
	}
	if wire.IsWire(resp.Header.Get("Content-Type")) {
		if err := wire.DecodeInto(body, out); err != nil {
			return attemptOutcome{err: fmt.Errorf("eis client: decoding response: %w", err)}
		}
		return attemptOutcome{}
	}
	if err := json.Unmarshal(body, out); err != nil {
		// The server answered 200 with an unparseable body; retrying the
		// same request would decode the same garbage.
		return attemptOutcome{err: fmt.Errorf("eis client: decoding response: %w", err)}
	}
	return attemptOutcome{}
}

// classifyStatus maps a non-200 response to an outcome: overload and
// gateway statuses are retryable breaker faults honoring Retry-After, other
// statuses (validation errors and the like) are terminal answers.
func (c *Client) classifyStatus(req *http.Request, resp *http.Response, body []byte) attemptOutcome {
	msg := fmt.Errorf("eis client: %s: HTTP %d", req.URL.Path, resp.StatusCode)
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = fmt.Errorf("eis client: %s: %s (HTTP %d)", req.URL.Path, e.Error, resp.StatusCode)
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		o := attemptOutcome{err: msg, retryable: true, fault: true}
		if d, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), c.opts.Clock()); ok {
			o.retryAfter = d
		}
		return o
	default:
		return attemptOutcome{err: msg}
	}
}

// maxRetryAfter caps the delay a server can request through Retry-After: a
// misconfigured (or adversarial) upstream cannot park a vehicle's retry
// loop for an hour. The cap applies to both header forms.
const maxRetryAfter = 30 * time.Second

// ParseRetryAfter interprets a Retry-After header value per RFC 7231 §7.1.3:
// either a non-negative integer delay in seconds or an HTTP-date after which
// to retry. It returns the capped delay and whether the header asked for a
// positive wait. Dates are evaluated against now; past dates mean "retry
// whenever" and report false like a missing header.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	var d time.Duration
	if s, err := strconv.Atoi(v); err == nil {
		if s <= 0 {
			return 0, false
		}
		d = time.Duration(s) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		d = at.Sub(now)
		if d <= 0 {
			return 0, false
		}
	} else {
		return 0, false
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// backoff computes the capped exponential delay for a retry with
// deterministic jitter in [50%, 100%] of the nominal delay, decorrelated
// per (seed, endpoint, attempt) so lockstep clients spread out without any
// wall-clock or global-PRNG reads.
func (c *Client) backoff(endpoint string, attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt)
	if d > c.opts.BackoffCap || d <= 0 {
		d = c.opts.BackoffCap
	}
	h := uint64(c.opts.JitterSeed)
	for i := 0; i < len(endpoint); i++ {
		h = (h ^ uint64(endpoint[i])) * 1099511628211
	}
	h = (h ^ uint64(attempt)) * 1099511628211
	frac := float64(h>>11) / float64(1<<53) // uniform [0,1)
	return time.Duration((0.5 + 0.5*frac) * float64(d))
}

// wait sleeps for d or until the context dies, whichever is first. An
// injected Sleep (tests) is called unconditionally, then the context is
// consulted.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.opts.Sleep != nil {
		c.opts.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// breakerSet lazily creates one breaker per endpoint path.
type breakerSet struct {
	mu        sync.Mutex
	m         map[string]*breaker
	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

func (s *breakerSet) init(threshold int, cooldown time.Duration, now func() time.Time) {
	s.m = make(map[string]*breaker)
	s.threshold = threshold
	s.cooldown = cooldown
	s.now = now
}

func (s *breakerSet) forEndpoint(path string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[path]
	if !ok {
		b = newBreaker(s.threshold, s.cooldown, s.now)
		s.m[path] = b
	}
	return b
}

// Chargers fetches the chargers within radius meters of p.
func (c *Client) Chargers(ctx context.Context, p geo.Point, radiusM float64) ([]charger.Charger, error) {
	q := url.Values{}
	q.Set("lat", fmt.Sprintf("%f", p.Lat))
	q.Set("lon", fmt.Sprintf("%f", p.Lon))
	q.Set("radius_m", fmt.Sprintf("%f", radiusM))
	var out []charger.Charger
	if err := c.get(ctx, "/chargers", q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Inventory fetches the server's complete charger inventory — for a
// sharded deployment, the partition the instance owns. The fleet gateway
// pulls it alongside health probes so it can keep offering a dead shard's
// chargers (at the ignorance bound) instead of silently dropping them.
func (c *Client) Inventory(ctx context.Context) ([]charger.Charger, error) {
	var out []charger.Charger
	if err := c.get(ctx, "/inventory", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Weather fetches the production forecast for a charger at time t.
func (c *Client) Weather(ctx context.Context, chargerID int64, t time.Time) (WeatherResponse, error) {
	q := url.Values{}
	q.Set("charger", fmt.Sprintf("%d", chargerID))
	q.Set("t", t.Format(time.RFC3339))
	var out WeatherResponse
	err := c.get(ctx, "/weather", q, &out)
	return out, err
}

// Availability fetches the availability estimate for a charger at time t.
func (c *Client) Availability(ctx context.Context, chargerID int64, t time.Time) (AvailabilityResponse, error) {
	q := url.Values{}
	q.Set("charger", fmt.Sprintf("%d", chargerID))
	q.Set("t", t.Format(time.RFC3339))
	var out AvailabilityResponse
	err := c.get(ctx, "/availability", q, &out)
	return out, err
}

// Traffic fetches the congestion band per road class at time t.
func (c *Client) Traffic(ctx context.Context, t time.Time) (TrafficResponse, error) {
	q := url.Values{}
	q.Set("t", t.Format(time.RFC3339))
	var out TrafficResponse
	err := c.get(ctx, "/traffic", q, &out)
	return out, err
}

// Offering requests a server-computed Offering Table (Mode 2).
func (c *Client) Offering(ctx context.Context, req OfferingRequest) (OfferingResponse, error) {
	var out OfferingResponse
	err := c.post(ctx, "/offering", &req, &out)
	return out, err
}

// Healthy reports whether the server answers its health check. It bypasses
// retries and breakers: health probes must observe the raw state.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

package spatial

import (
	"container/heap"

	"ecocharge/internal/geo"
)

// Quadtree is a point quadtree over a fixed bounding region, the
// "Index-Quadtree Method" of the paper's evaluation: it partitions 2-D
// space so that candidate retrieval drops from O(n) scans to O(log n)
// descents. Leaves split once they exceed their capacity; points exactly on
// split lines go to the south/west child deterministically.
type Quadtree struct {
	root     *qnode
	bounds   geo.BBox
	capacity int
	size     int
}

const defaultLeafCapacity = 16

type qnode struct {
	bounds   geo.BBox
	items    []Item // leaf payload; nil after split
	children *[4]qnode
}

// NewQuadtree returns a quadtree covering bounds. Items inserted outside
// bounds are clamped into it (the generators always stay inside, but the
// index must not corrupt itself on stray GPS points). leafCapacity ≤ 0
// selects the default of 16.
func NewQuadtree(bounds geo.BBox, leafCapacity int) *Quadtree {
	if leafCapacity <= 0 {
		leafCapacity = defaultLeafCapacity
	}
	return &Quadtree{
		root:     &qnode{bounds: bounds},
		bounds:   bounds,
		capacity: leafCapacity,
	}
}

// Bounds returns the region the tree covers.
func (t *Quadtree) Bounds() geo.BBox { return t.bounds }

// Len implements Index.
func (t *Quadtree) Len() int { return t.size }

// Insert implements Index.
func (t *Quadtree) Insert(it Item) {
	if !t.bounds.Contains(it.P) {
		it.P = clampInto(it.P, t.bounds)
	}
	t.insert(t.root, it, 0)
	t.size++
}

// maxDepth bounds subdivision so that many co-located points cannot recurse
// forever; beyond it leaves simply grow.
const maxDepth = 24

func (t *Quadtree) insert(n *qnode, it Item, depth int) {
	for {
		if n.children == nil {
			n.items = append(n.items, it)
			if len(n.items) > t.capacity && depth < maxDepth {
				t.split(n)
				// Fall through to redistribute: items were moved already.
			}
			return
		}
		n = &n.children[childIndex(n.bounds, it.P)]
		depth++
	}
}

func (t *Quadtree) split(n *qnode) {
	c := n.bounds.Center()
	var ch [4]qnode
	// Quadrants: 0=SW 1=SE 2=NW 3=NE.
	ch[0].bounds = geo.BBox{Min: n.bounds.Min, Max: c}
	ch[1].bounds = geo.BBox{Min: geo.Point{Lat: n.bounds.Min.Lat, Lon: c.Lon}, Max: geo.Point{Lat: c.Lat, Lon: n.bounds.Max.Lon}}
	ch[2].bounds = geo.BBox{Min: geo.Point{Lat: c.Lat, Lon: n.bounds.Min.Lon}, Max: geo.Point{Lat: n.bounds.Max.Lat, Lon: c.Lon}}
	ch[3].bounds = geo.BBox{Min: c, Max: n.bounds.Max}
	n.children = &ch
	items := n.items
	n.items = nil
	for _, it := range items {
		child := &n.children[childIndex(n.bounds, it.P)]
		child.items = append(child.items, it)
	}
}

func childIndex(b geo.BBox, p geo.Point) int {
	c := b.Center()
	idx := 0
	if p.Lon >= c.Lon {
		idx |= 1
	}
	if p.Lat >= c.Lat {
		idx |= 2
	}
	return idx
}

func clampInto(p geo.Point, b geo.BBox) geo.Point {
	if p.Lat < b.Min.Lat {
		p.Lat = b.Min.Lat
	} else if p.Lat > b.Max.Lat {
		p.Lat = b.Max.Lat
	}
	if p.Lon < b.Min.Lon {
		p.Lon = b.Min.Lon
	} else if p.Lon > b.Max.Lon {
		p.Lon = b.Max.Lon
	}
	return p
}

// qentry is a priority-queue element for the best-first kNN search: either
// a subtree (lower-bounded by box distance) or a concrete item.
type qentry struct {
	dist float64
	node *qnode // nil for concrete items
	item Item
}

type qpq []qentry

func (q qpq) Len() int            { return len(q) }
func (q qpq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q qpq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *qpq) Push(x interface{}) { *q = append(*q, x.(qentry)) }
func (q *qpq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// KNN implements Index with a best-first search: subtrees are expanded in
// order of their minimum possible distance, so the first k concrete items
// popped are exactly the k nearest.
func (t *Quadtree) KNN(q geo.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := qpq{{dist: t.root.bounds.DistanceTo(q), node: t.root}}
	heap.Init(&pq)
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(&pq).(qentry)
		if e.node == nil {
			out = append(out, Neighbor{Item: e.item, Dist: e.dist})
			continue
		}
		n := e.node
		if n.children != nil {
			for i := range n.children {
				c := &n.children[i]
				heap.Push(&pq, qentry{dist: c.bounds.DistanceTo(q), node: c})
			}
			continue
		}
		for _, it := range n.items {
			heap.Push(&pq, qentry{dist: geo.Distance(q, it.P), item: it})
		}
	}
	stabilizeTies(out)
	return out
}

// stabilizeTies re-orders equal-distance runs by ID so results are
// deterministic regardless of heap pop order.
func stabilizeTies(ns []Neighbor) {
	i := 0
	for i < len(ns) {
		j := i + 1
		//ecolint:ignore floateq ties are exact duplicates of the same distance value
		for j < len(ns) && ns[j].Dist == ns[i].Dist {
			j++
		}
		if j-i > 1 {
			sub := ns[i:j]
			sortNeighbors(sub)
		}
		i = j
	}
}

// Within implements Index by pruning subtrees farther than radius.
func (t *Quadtree) Within(q geo.Point, radius float64) []Neighbor {
	var out []Neighbor
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if n.bounds.DistanceTo(q) > radius {
			return
		}
		if n.children != nil {
			for i := range n.children {
				walk(&n.children[i])
			}
			return
		}
		for _, it := range n.items {
			if d := geo.Distance(q, it.P); d <= radius {
				out = append(out, Neighbor{Item: it, Dist: d})
			}
		}
	}
	walk(t.root)
	sortNeighbors(out)
	return out
}

// Depth returns the height of the tree, exposed for diagnostics and tests.
func (t *Quadtree) Depth() int {
	var walk func(n *qnode) int
	walk = func(n *qnode) int {
		if n.children == nil {
			return 1
		}
		max := 0
		for i := range n.children {
			if d := walk(&n.children[i]); d > max {
				max = d
			}
		}
		return max + 1
	}
	return walk(t.root)
}

// Package render draws scenarios as standalone SVG maps: the road network,
// a scheduled trip, the recommended chargers and the split points. It is
// the presentation-layer substitute for the paper's Folium/Leaflet mobile
// GUI (§IV.B) — everything the figures of the paper show on a map, as a
// file any browser opens, with no dependencies.
package render

import (
	"fmt"
	"io"
	"math"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// Options tune the SVG output.
type Options struct {
	// WidthPx of the output image; height follows the region's aspect
	// ratio. 0 selects 1000.
	WidthPx float64
	// MaxEdges caps how many road edges are drawn (huge graphs clutter).
	// 0 draws all.
	MaxEdges int
	// ShowChargers draws the full inventory as faint dots.
	ShowChargers bool
}

func (o Options) withDefaults() Options {
	if o.WidthPx <= 0 {
		o.WidthPx = 1000
	}
	return o
}

// Map accumulates layers and writes the SVG.
type Map struct {
	opts   Options
	bounds geo.BBox
	body   []string
	legend []string
}

// NewMap creates a map over the region.
func NewMap(bounds geo.BBox, opts Options) *Map {
	return &Map{opts: opts.withDefaults(), bounds: bounds}
}

// project maps a point to SVG coordinates (y grows downward).
func (m *Map) project(p geo.Point) (x, y float64) {
	w := m.opts.WidthPx
	h := m.height()
	dLon := m.bounds.Max.Lon - m.bounds.Min.Lon
	dLat := m.bounds.Max.Lat - m.bounds.Min.Lat
	if dLon <= 0 || dLat <= 0 {
		return w / 2, h / 2
	}
	x = (p.Lon - m.bounds.Min.Lon) / dLon * w
	y = (m.bounds.Max.Lat - p.Lat) / dLat * h
	return x, y
}

func (m *Map) height() float64 {
	dLon := m.bounds.Max.Lon - m.bounds.Min.Lon
	dLat := m.bounds.Max.Lat - m.bounds.Min.Lat
	if dLon <= 0 || dLat <= 0 {
		return m.opts.WidthPx * 0.75
	}
	// Correct the aspect ratio for latitude compression.
	lat := m.bounds.Center().Lat * math.Pi / 180
	return m.opts.WidthPx * (dLat / dLon) / math.Max(math.Cos(lat), 0.2)
}

// AddRoadNetwork draws the graph's edges as light gray lines.
func (m *Map) AddRoadNetwork(g *roadnet.Graph) {
	edges := g.Edges()
	step := 1
	if m.opts.MaxEdges > 0 && len(edges) > m.opts.MaxEdges {
		step = (len(edges) + m.opts.MaxEdges - 1) / m.opts.MaxEdges
	}
	for i := 0; i < len(edges); i += step {
		e := edges[i]
		x1, y1 := m.project(g.Node(e.From).P)
		x2, y2 := m.project(g.Node(e.To).P)
		width := 0.5
		if e.Class >= roadnet.ClassHighway {
			width = 1.2
		}
		m.body = append(m.body, fmt.Sprintf(
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#c9c9c9" stroke-width="%.1f"/>`,
			x1, y1, x2, y2, width))
	}
	m.addLegend("#c9c9c9", "road network")
}

// AddChargers draws the inventory as dots sized by renewable capacity.
func (m *Map) AddChargers(set *charger.Set) {
	for _, c := range set.All() {
		x, y := m.project(c.P)
		r := 1.5 + math.Sqrt(c.RESKW())/4
		m.body = append(m.body, fmt.Sprintf(
			`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#7fb069" fill-opacity="0.45"/>`,
			x, y, r))
	}
	m.addLegend("#7fb069", "chargers (radius ~ renewable capacity)")
}

// AddTrip draws the scheduled trip as a bold blue polyline with start and
// end markers.
func (m *Map) AddTrip(g *roadnet.Graph, path roadnet.Path) {
	if len(path.Nodes) == 0 {
		return
	}
	points := ""
	for _, n := range path.Nodes {
		x, y := m.project(g.Node(n).P)
		points += fmt.Sprintf("%.1f,%.1f ", x, y)
	}
	m.body = append(m.body, fmt.Sprintf(
		`<polyline points="%s" fill="none" stroke="#2b6cb0" stroke-width="2.5"/>`, points))
	sx, sy := m.project(g.Node(path.Nodes[0]).P)
	ex, ey := m.project(g.Node(path.Nodes[len(path.Nodes)-1]).P)
	m.body = append(m.body,
		fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="5" fill="#2b6cb0"/>`, sx, sy),
		fmt.Sprintf(`<rect x="%.1f" y="%.1f" width="9" height="9" fill="#2b6cb0"/>`, ex-4.5, ey-4.5))
	m.addLegend("#2b6cb0", "scheduled trip")
}

// AddOfferingTable highlights the table's chargers, rank 1 largest.
func (m *Map) AddOfferingTable(table cknn.OfferingTable) {
	for rank, e := range table.Entries {
		x, y := m.project(e.Charger.P)
		r := 9.0 - 1.5*float64(rank)
		if r < 4 {
			r = 4
		}
		m.body = append(m.body, fmt.Sprintf(
			`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#dd6b20" stroke="#7b341e" stroke-width="1.2"/>`,
			x, y, r))
		m.body = append(m.body, fmt.Sprintf(
			`<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#fff">%d</text>`,
			x, y+3.5, rank+1))
	}
	m.addLegend("#dd6b20", "offering table (numbered by rank)")
}

// AddSplitPoints marks the CkNN split positions.
func (m *Map) AddSplitPoints(points []cknn.SplitPoint) {
	for _, sp := range points {
		x, y := m.project(sp.P)
		m.body = append(m.body, fmt.Sprintf(
			`<path d="M %.1f %.1f l 5 8 l -10 0 z" fill="#b83280"/>`, x, y-5))
	}
	m.addLegend("#b83280", "split points (kNN set changes)")
}

func (m *Map) addLegend(color, label string) {
	m.legend = append(m.legend, fmt.Sprintf(`<circle cx="12" cy="%d" r="5" fill="%s"/>
<text x="24" y="%d" font-size="12" fill="#333">%s</text>`,
		18+16*len(m.legend)/2, color, 22+16*len(m.legend)/2, label))
}

// WriteSVG emits the document.
func (m *Map) WriteSVG(w io.Writer) error {
	h := m.height()
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">
<rect width="100%%" height="100%%" fill="#f7f7f2"/>
`, m.opts.WidthPx, h, m.opts.WidthPx, h); err != nil {
		return err
	}
	for _, el := range m.body {
		if _, err := fmt.Fprintln(w, el); err != nil {
			return err
		}
	}
	for _, el := range m.legend {
		if _, err := fmt.Fprintln(w, el); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

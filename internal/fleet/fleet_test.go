package fleet

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/eis"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

var fixedNow = time.Date(2024, 6, 18, 9, 30, 0, 0, time.UTC)

// fakeClock is a manually advanced clock for breaker cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testEnv mirrors the eis package's synthetic scenario: an 8×6 km urban
// grid with 80 chargers.
func testEnv(t testing.TB) *cknn.Env {
	t.Helper()
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 1,
	})
	avail := ec.NewAvailabilityModel(2)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	env, err := cknn.NewEnv(g, set, ec.NewSolarModel(4), avail, ec.NewTrafficModel(5), cknn.EnvConfig{RadiusM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestPartitionStableAndMinimal pins the rendezvous properties the fleet
// depends on: ownership is a pure function of (id, n), every shard owns
// something at realistic sizes, and growing the fleet only moves chargers
// onto the new shard — never between surviving shards.
func TestPartitionStableAndMinimal(t *testing.T) {
	p3, p4 := Partition{N: 3}, Partition{N: 4}
	counts := make([]int, 3)
	moved, kept := 0, 0
	for id := int64(0); id < 1000; id++ {
		own := p3.ShardOf(id)
		if own != p3.ShardOf(id) {
			t.Fatalf("ShardOf(%d) unstable", id)
		}
		counts[own]++
		switch next := p4.ShardOf(id); {
		case next == own:
			kept++
		case next == 3:
			moved++
		default:
			t.Fatalf("charger %d moved between surviving shards: %d → %d", id, own, next)
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no chargers out of 1000", s)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate rebalance: moved=%d kept=%d", moved, kept)
	}
}

// TestShardEnvPartitionsInventory: the shard environments tile the parent
// inventory exactly and keep the parent's normalizers, which is what makes
// per-charger scores shard-independent.
func TestShardEnvPartitionsInventory(t *testing.T) {
	env := testEnv(t)
	const n = 3
	seen := make(map[int64]int)
	total := 0
	for s := 0; s < n; s++ {
		se, err := ShardEnv(env, s, n)
		if err != nil {
			t.Fatalf("ShardEnv(%d): %v", s, err)
		}
		//ecolint:ignore floateq normalizers must be copied bit-identically, not recomputed
		if se.MaxLKW != env.MaxLKW || se.MaxDeroutSec != env.MaxDeroutSec {
			t.Fatalf("shard %d recomputed normalizers: MaxLKW %v vs %v, MaxDeroutSec %v vs %v",
				s, se.MaxLKW, env.MaxLKW, se.MaxDeroutSec, env.MaxDeroutSec)
		}
		for _, c := range se.Chargers.All() {
			if prev, dup := seen[c.ID]; dup {
				t.Fatalf("charger %d owned by shards %d and %d", c.ID, prev, s)
			}
			seen[c.ID] = s
			if own := (Partition{N: n}).ShardOf(c.ID); own != s {
				t.Fatalf("charger %d in shard %d but partition says %d", c.ID, s, own)
			}
			total++
		}
	}
	if total != env.Chargers.Len() {
		t.Fatalf("shards hold %d chargers, parent holds %d", total, env.Chargers.Len())
	}

	if _, err := ShardEnv(env, 3, 3); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestMergeRecoversGlobalRank is the merge-correctness theorem as a
// property test: splitting random entries across shards, ranking each shard
// with the real cknn.Rank, and merging the per-shard tables must reproduce
// the global Rank exactly — IDs and order.
func TestMergeRecoversGlobalRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(14)
		k := 1 + rng.Intn(6)
		shards := 1 + rng.Intn(4)
		entries := make([]cknn.Entry, n)
		perShard := make([][]cknn.Entry, shards)
		for i := range entries {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			if rng.Intn(5) == 0 {
				b = a // point intervals exercise the tie-break chain
			}
			e := cknn.Entry{
				Charger: &charger.Charger{ID: int64(i + 1)},
				SC:      interval.FromBounds(a, b),
			}
			entries[i] = e
			s := rng.Intn(shards)
			perShard[s] = append(perShard[s], e)
		}
		want := cknn.Rank(entries, k)

		var pool []eis.OfferingEntry
		for _, sub := range perShard {
			for _, e := range cknn.Rank(sub, k) {
				pool = append(pool, eis.OfferingEntry{
					ChargerID: e.Charger.ID,
					SC:        eis.IntervalJSON{Min: e.SC.Min, Max: e.SC.Max},
				})
			}
		}
		got := mergeEntries(pool, k)

		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d entries, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ChargerID != want[i].Charger.ID {
				t.Fatalf("trial %d: position %d holds charger %d, want %d",
					trial, i, got[i].ChargerID, want[i].Charger.ID)
			}
		}
	}
}

// TestMergeDedupPrefersLiveEntry: a live entry beats a synthesized one for
// the same charger (stale inventory after a repartition must not shadow
// real data).
func TestMergeDedupPrefersLiveEntry(t *testing.T) {
	live := eis.OfferingEntry{
		ChargerID: 7,
		SC:        eis.IntervalJSON{Min: 0.4, Max: 0.6},
		L:         eis.IntervalJSON{Min: 0.4, Max: 0.6},
		A:         eis.IntervalJSON{Min: 0.4, Max: 0.6},
		D:         eis.IntervalJSON{Min: 0.4, Max: 0.6},
	}
	synth := synthEntry(charger.Charger{ID: 7}, cknn.EqualWeights())
	for _, order := range [][]eis.OfferingEntry{{live, synth}, {synth, live}} {
		got := mergeEntries(order, 3)
		if len(got) != 1 {
			t.Fatalf("dedup kept %d entries, want 1", len(got))
		}
		if got[0].Degraded != 0 {
			t.Fatalf("dedup kept the synthesized entry (mask %#x)", got[0].Degraded)
		}
	}
}

// TestSynthEntryIsIgnoranceBound: synthesized entries carry [0,1] on every
// component, the full degraded mask, and an SC computed through the real
// scoring path.
func TestSynthEntryIsIgnoranceBound(t *testing.T) {
	c := charger.Charger{ID: 42, P: geo.Point{Lat: 53, Lon: 8}, Rate: charger.RateDC50}
	e := synthEntry(c, cknn.Weights{L: 2, A: 1, D: 1}.Normalized())
	if e.Degraded != uint8(cknn.DegradedAll) {
		t.Fatalf("mask %#x, want DegradedAll", e.Degraded)
	}
	for name, iv := range map[string]eis.IntervalJSON{"l": e.L, "a": e.A, "d": e.D} {
		if iv.Min != 0 || iv.Max != 1 {
			t.Fatalf("component %s = [%v,%v], want [0,1]", name, iv.Min, iv.Max)
		}
	}
	if e.SC.Min < 0 || e.SC.Max > 1 || e.SC.Min > e.SC.Max {
		t.Fatalf("SC [%v,%v] outside [0,1]", e.SC.Min, e.SC.Max)
	}
	if e.RateKW != c.Rate.KW() {
		t.Fatalf("RateKW %v, want %v", e.RateKW, c.Rate.KW())
	}
}

package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"ecocharge/internal/geo"
)

// tinyGraph builds the 6-node test fixture:
//
//	0 --1km-- 1 --1km-- 2
//	|                   |
//	3km                 1km
//	|                   |
//	3 --1km-- 4 --1km-- 5
func tinyGraph() *Graph {
	g := NewGraph(6, 14)
	pts := []geo.Point{
		{Lat: 53.02, Lon: 8.00}, {Lat: 53.02, Lon: 8.015}, {Lat: 53.02, Lon: 8.03},
		{Lat: 53.00, Lon: 8.00}, {Lat: 53.00, Lon: 8.015}, {Lat: 53.00, Lon: 8.03},
	}
	for _, p := range pts {
		g.AddNode(p)
	}
	g.AddBidirectional(0, 1, 1000, ClassLocal)
	g.AddBidirectional(1, 2, 1000, ClassLocal)
	g.AddBidirectional(0, 3, 3000, ClassLocal)
	g.AddBidirectional(2, 5, 1000, ClassLocal)
	g.AddBidirectional(3, 4, 1000, ClassLocal)
	g.AddBidirectional(4, 5, 1000, ClassLocal)
	g.Freeze()
	return g
}

func TestShortestPathBasic(t *testing.T) {
	g := tinyGraph()
	p, ok := g.ShortestPath(0, 4, DistanceWeight)
	if !ok {
		t.Fatal("no path found")
	}
	// 0->1->2->5->4 is 4000; 0->3->4 is 4000 too. Both optimal.
	if p.Weight != 4000 {
		t.Fatalf("weight = %v, want 4000", p.Weight)
	}
	if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 4 {
		t.Fatalf("endpoints wrong: %v", p.Nodes)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := tinyGraph()
	p, ok := g.ShortestPath(2, 2, DistanceWeight)
	if !ok || p.Weight != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v, ok=%v", p, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(2, 0)
	g.AddNode(geo.Point{Lat: 53, Lon: 8})
	g.AddNode(geo.Point{Lat: 53.1, Lon: 8.1})
	g.Freeze()
	if _, ok := g.ShortestPath(0, 1, DistanceWeight); ok {
		t.Fatal("path found in disconnected graph")
	}
	if d := g.ShortestDistance(0, 1, DistanceWeight); !math.IsInf(d, 1) {
		t.Fatalf("distance = %v, want +Inf", d)
	}
}

func TestDirectedEdgesRespected(t *testing.T) {
	g := NewGraph(2, 1)
	a := g.AddNode(geo.Point{Lat: 53, Lon: 8})
	b := g.AddNode(geo.Point{Lat: 53, Lon: 8.01})
	g.AddEdge(a, b, 500, ClassLocal) // one-way
	g.Freeze()
	if _, ok := g.ShortestPath(a, b, DistanceWeight); !ok {
		t.Fatal("forward path missing")
	}
	if _, ok := g.ShortestPath(b, a, DistanceWeight); ok {
		t.Fatal("one-way edge traversed backwards")
	}
}

func TestDistancesWithinBound(t *testing.T) {
	g := tinyGraph()
	d := g.DistancesWithin(0, DistanceWeight, 2000)
	if _, ok := d[4]; ok {
		t.Error("node beyond bound included")
	}
	if got := d[2]; got != 2000 {
		t.Errorf("dist to 2 = %v, want 2000", got)
	}
	if got := d[0]; got != 0 {
		t.Errorf("dist to self = %v", got)
	}
}

func TestDistancesToMatchesForward(t *testing.T) {
	g := tinyGraph()
	back := g.DistancesTo(4, DistanceWeight, math.Inf(1))
	for n := NodeID(0); n < 6; n++ {
		want := g.ShortestDistance(n, 4, DistanceWeight)
		got, ok := back[n]
		if !ok {
			t.Fatalf("node %d missing from DistancesTo", n)
		}
		if got != want {
			t.Errorf("DistancesTo[%d] = %v, forward = %v", n, got, want)
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g := GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 6, HeightKM: 5,
		SpacingM: 500, RemoveFrac: 0.1, JitterFrac: 0.2, ArterialEach: 4, Seed: 3,
	})
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		src := NodeID(r.Intn(g.NumNodes()))
		dst := NodeID(r.Intn(g.NumNodes()))
		dij, ok1 := g.ShortestPath(src, dst, DistanceWeight)
		ast, ok2 := g.AStar(src, dst, DistanceWeight, 1.0)
		if ok1 != ok2 {
			t.Fatalf("reachability disagrees for %d->%d", src, dst)
		}
		if !ok1 {
			continue
		}
		if math.Abs(dij.Weight-ast.Weight) > 1e-6 {
			t.Fatalf("A* %v vs Dijkstra %v for %d->%d", ast.Weight, dij.Weight, src, dst)
		}
	}
}

// Dijkstra sanity: triangle inequality over the shortest-path metric and
// prefix optimality of returned paths.
func TestShortestPathMetricProperties(t *testing.T) {
	g := GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 4, HeightKM: 4,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 3, Seed: 4,
	})
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		c := NodeID(r.Intn(g.NumNodes()))
		ab := g.ShortestDistance(a, b, DistanceWeight)
		bc := g.ShortestDistance(b, c, DistanceWeight)
		ac := g.ShortestDistance(a, c, DistanceWeight)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v+%v", a, c, ac, ab, bc)
		}
		// Prefix optimality: each prefix of an optimal path is optimal.
		p, ok := g.ShortestPath(a, b, DistanceWeight)
		if !ok || len(p.Nodes) < 3 {
			continue
		}
		mid := p.Nodes[len(p.Nodes)/2]
		var prefix float64
		for i := 1; i <= len(p.Nodes)/2; i++ {
			prefix += g.ShortestDistance(p.Nodes[i-1], p.Nodes[i], DistanceWeight)
		}
		if direct := g.ShortestDistance(a, mid, DistanceWeight); prefix < direct-1e-6 {
			t.Fatalf("prefix shorter than shortest: %v < %v", prefix, direct)
		}
	}
}

func TestNearestNodeAndWithin(t *testing.T) {
	g := tinyGraph()
	p := geo.Point{Lat: 53.021, Lon: 8.001}
	if got := g.NearestNode(p); got != 0 {
		t.Errorf("NearestNode = %d, want 0", got)
	}
	near := g.NodesWithin(g.Node(0).P, 1200)
	found := map[NodeID]bool{}
	for _, id := range near {
		found[id] = true
	}
	if !found[0] || !found[1] {
		t.Errorf("NodesWithin(1200m) = %v, want to include 0 and 1", near)
	}
	if found[2] {
		t.Errorf("node 2 (~2km away) included in 1.2km radius")
	}
}

func TestWeightFuncs(t *testing.T) {
	e := Edge{Length: 1000, Class: ClassMotorway}
	if DistanceWeight(e) != 1000 {
		t.Error("DistanceWeight wrong")
	}
	wantT := 1000 / (110.0 / 3.6)
	if got := TimeWeight(e); math.Abs(got-wantT) > 1e-9 {
		t.Errorf("TimeWeight = %v, want %v", got, wantT)
	}
	if got := EnergyWeight(e); math.Abs(got-0.20) > 1e-12 {
		t.Errorf("EnergyWeight = %v, want 0.20", got)
	}
}

func TestGraphMutationAfterFreezePanics(t *testing.T) {
	g := tinyGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode after Freeze did not panic")
		}
	}()
	g.AddNode(geo.Point{})
}

func TestAddEdgeInvalidNodePanics(t *testing.T) {
	g := NewGraph(1, 1)
	g.AddNode(geo.Point{Lat: 53, Lon: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge with bad node did not panic")
		}
	}()
	g.AddEdge(0, 5, 100, ClassLocal)
}

func TestQueryBeforeFreezePanics(t *testing.T) {
	g := NewGraph(1, 0)
	g.AddNode(geo.Point{Lat: 53, Lon: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("query before Freeze did not panic")
		}
	}()
	g.OutEdges(0, func(Edge) {})
}

func TestGenerateUrbanConnected(t *testing.T) {
	g := GenerateUrban(UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 8, HeightKM: 6,
		SpacingM: 500, RemoveFrac: 0.1, JitterFrac: 0.25, ArterialEach: 5, Seed: 5,
	})
	if g.NumNodes() < 100 {
		t.Fatalf("urban graph too small: %d nodes", g.NumNodes())
	}
	if size := g.ConnectedComponentSize(0); size < g.NumNodes()*9/10 {
		t.Errorf("urban graph fragmented: component %d of %d", size, g.NumNodes())
	}
}

func TestGenerateUrbanDeterministic(t *testing.T) {
	cfg := DefaultUrbanConfig()
	cfg.WidthKM, cfg.HeightKM = 4, 4
	a := GenerateUrban(cfg)
	b := GenerateUrban(cfg)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("generator not deterministic in size")
	}
	for i := 0; i < a.NumNodes(); i += 17 {
		if a.Node(NodeID(i)).P != b.Node(NodeID(i)).P {
			t.Fatalf("node %d differs between runs", i)
		}
	}
}

func TestGenerateHighwayConnected(t *testing.T) {
	g := GenerateHighway(DefaultHighwayConfig())
	if g.NumNodes() < 500 {
		t.Fatalf("highway graph too small: %d", g.NumNodes())
	}
	if size := g.ConnectedComponentSize(0); size != g.NumNodes() {
		t.Errorf("highway graph not fully connected: %d of %d", size, g.NumNodes())
	}
	// It must contain motorway edges and local edges.
	var motorway, local bool
	for _, e := range g.Edges() {
		switch e.Class {
		case ClassMotorway:
			motorway = true
		case ClassLocal:
			local = true
		}
	}
	if !motorway || !local {
		t.Error("highway graph missing expected road classes")
	}
}

func TestRoadClassString(t *testing.T) {
	if ClassMotorway.String() != "motorway" || ClassLocal.String() != "local" {
		t.Error("RoadClass String wrong")
	}
	if RoadClass(250).String() == "" {
		t.Error("unknown class must still format")
	}
}

func TestPathHelpers(t *testing.T) {
	g := tinyGraph()
	p, _ := g.ShortestPath(0, 2, DistanceWeight)
	pts := g.Points(p)
	if len(pts) != len(p.Nodes) {
		t.Fatal("Points length mismatch")
	}
	if l := g.LengthMeters(p); l <= 0 {
		t.Errorf("LengthMeters = %v", l)
	}
}

func BenchmarkDijkstraUrban(b *testing.B) {
	g := GenerateUrban(DefaultUrbanConfig())
	b.ReportAllocs()
	r := rand.New(rand.NewSource(1))
	srcs := make([]NodeID, 64)
	dsts := make([]NodeID, 64)
	for i := range srcs {
		srcs[i] = NodeID(r.Intn(g.NumNodes()))
		dsts[i] = NodeID(r.Intn(g.NumNodes()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestDistance(srcs[i%64], dsts[i%64], DistanceWeight)
	}
}

func BenchmarkBoundedDijkstra5km(b *testing.B) {
	g := GenerateUrban(DefaultUrbanConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistancesWithin(NodeID(i%g.NumNodes()), DistanceWeight, 5000)
	}
}

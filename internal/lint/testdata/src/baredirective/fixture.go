// Package fixture exercises the baredirective analyzer: every
// //ecolint:ignore directive must carry a free-text justification after
// the analyzer names, or the directive itself becomes a finding.
package fixture

const eps = 1e-9

// GoodJustified carries a reason; nothing to report.
func GoodJustified(b float64) bool {
	//ecolint:ignore floateq exact sentinel comparison: zero is a literal "unset" marker
	return b == 0.0
}

// BadBare suppresses without saying why.
func BadBare(b float64) bool {
	//ecolint:ignore floateq
	return b == 0.0
}

// BadBareMulti names two analyzers and justifies neither.
func BadBareMulti(b float64) bool {
	//ecolint:ignore floateq,errignore
	return b == 0.0
}

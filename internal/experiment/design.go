package experiment

import (
	"context"

	"ecocharge/internal/cknn"
)

// RunDesignAblation measures the contribution of EcoCharge's own design
// choices (beyond the paper's weight ablation): the dynamic cache, the
// cheap cache-hit adaptation, and the single-expansion derouting
// approximation. Each variant runs the same workload as Fig. 6 and is
// scored against the same brute-force optimum.
//
// Variants:
//
//	EcoCharge           — the full method (cache + adaptation + approx)
//	Eco-NoCache         — Q ≈ 0: every query recomputes (isolates caching)
//	Eco-ExactIntervals  — exact four-expansion derouting (isolates the
//	                      mid-traffic approximation)
func RunDesignAblation(ctx context.Context, sc *Scenario, cfg RunConfig) ([]Measurement, error) {
	factories := []methodFactory{
		{"BruteForce", func(env *cknn.Env, _ RunConfig, _ int64) cknn.Method {
			return cknn.NewBruteForce(env)
		}},
		{"EcoCharge", func(env *cknn.Env, c RunConfig, _ int64) cknn.Method {
			return cknn.NewEcoCharge(env, cknn.EcoChargeOptions{
				RadiusM: c.RadiusM, ReuseDistM: c.ReuseDistM,
			})
		}},
		{"Eco-NoCache", func(env *cknn.Env, c RunConfig, _ int64) cknn.Method {
			return cknn.NewEcoCharge(env, cknn.EcoChargeOptions{
				RadiusM: c.RadiusM, ReuseDistM: 1, // effectively never reuse
			})
		}},
		{"Eco-ExactIntervals", func(env *cknn.Env, c RunConfig, _ int64) cknn.Method {
			return cknn.NewEcoCharge(env, cknn.EcoChargeOptions{
				RadiusM: c.RadiusM, ReuseDistM: c.ReuseDistM, ExactDerouting: true,
			})
		}},
	}
	return runSeries(ctx, sc, cfg, factories, "design")
}

package main

import (
	"testing"

	"ecocharge/internal/load"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("50, 100,200", 0)
	if err != nil || len(got) != 3 || got[0] != 50 || got[2] != 200 {
		t.Fatalf("parseRates sweep: %v, %v", got, err)
	}
	got, err = parseRates("", 75)
	if err != nil || len(got) != 1 || got[0] != 75 {
		t.Fatalf("parseRates single: %v, %v", got, err)
	}
	for _, bad := range []string{"50,abc", "50,-1", "0"} {
		if _, err := parseRates(bad, 0); err == nil {
			t.Fatalf("parseRates(%q) accepted", bad)
		}
	}
	if _, err := parseRates("", 0); err == nil {
		t.Fatal("zero single rate accepted")
	}
}

func TestParsePlanes(t *testing.T) {
	if p, err := parsePlanes("json"); err != nil || len(p) != 1 || p[0] != load.PlaneJSON {
		t.Fatalf("json: %v, %v", p, err)
	}
	if p, err := parsePlanes("wire"); err != nil || len(p) != 1 || p[0] != load.PlaneWire {
		t.Fatalf("wire: %v, %v", p, err)
	}
	if p, err := parsePlanes("both"); err != nil || len(p) != 2 {
		t.Fatalf("both: %v, %v", p, err)
	}
	if _, err := parsePlanes("telepathy"); err == nil {
		t.Fatal("unknown plane accepted")
	}
}

func TestBuildSchedule(t *testing.T) {
	p, err := buildSchedule("poisson", 100, 50, 1)
	if err != nil || len(p) != 50 {
		t.Fatalf("poisson: %d arrivals, %v", len(p), err)
	}
	c, err := buildSchedule("constant", 100, 50, 1)
	if err != nil || len(c) != 50 {
		t.Fatalf("constant: %d arrivals, %v", len(c), err)
	}
	if _, err := buildSchedule("uniform", 100, 50, 1); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

package cknn

import (
	"testing"
	"time"

	"ecocharge/internal/trajectory"
)

func TestPlanDetour(t *testing.T) {
	env := testEnv(t)
	trips, err := trajectory.Generate(env.Graph, trajectory.GenConfig{
		N: 2, Seed: 23, MinTripKM: 6, MaxTripKM: 10, Start: queryTime, Window: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewEcoCharge(env, EcoChargeOptions{RadiusM: 10000})
	for _, trip := range trips {
		results := RunTrip(env, m, trip, TripOptions{K: 3, SegmentLenM: 3000, RadiusM: 10000})
		seg := results[0].Segment
		top, ok := results[0].Table.Top()
		if !ok {
			t.Fatal("empty table")
		}
		plan, err := PlanDetour(env, trip, seg, top)
		if err != nil {
			t.Fatalf("PlanDetour: %v", err)
		}
		if plan.Charger.ID != top.Charger.ID {
			t.Error("plan charger mismatch")
		}
		// Route legs connect anchor → charger → destination.
		if plan.ToCharger.Nodes[0] != seg.AnchorNode {
			t.Error("detour does not start at the anchor")
		}
		if plan.ToCharger.Nodes[len(plan.ToCharger.Nodes)-1] != top.Charger.Node {
			t.Error("detour does not reach the charger")
		}
		dest := trip.Path.Nodes[len(trip.Path.Nodes)-1]
		if plan.FromCharger.Nodes[len(plan.FromCharger.Nodes)-1] != dest {
			t.Error("continuation does not reach the destination")
		}
		// The extra-time interval is ordered and non-negative.
		if plan.ExtraSecondsMin < 0 || plan.ExtraSecondsMax < plan.ExtraSecondsMin {
			t.Errorf("extra time interval [%v, %v] invalid", plan.ExtraSecondsMin, plan.ExtraSecondsMax)
		}
		if plan.ArriveAt.Before(seg.ETA) {
			t.Error("arrival before the segment ETA")
		}
	}
}

func TestPlanDetourErrors(t *testing.T) {
	env := testEnv(t)
	trips, _ := trajectory.Generate(env.Graph, trajectory.GenConfig{
		N: 1, Seed: 3, MinTripKM: 4, MaxTripKM: 8, Start: queryTime, Window: time.Minute,
	})
	segs := trajectory.SegmentTrip(env.Graph, trips[0], 3000)
	if _, err := PlanDetour(env, trips[0], segs[0], Entry{}); err == nil {
		t.Fatal("nil charger accepted")
	}
}

package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunChargerScalability(t *testing.T) {
	sc := tinyScenario(t)
	cfg := RunConfig{Repetitions: 1, TripsPerRep: 2, SegmentLenM: 4000}
	ms, err := RunChargerScalability(context.Background(), sc, cfg, []int{100, 400})
	if err != nil {
		t.Fatalf("RunChargerScalability: %v", err)
	}
	if len(ms) != 8 { // 2 counts × 4 methods
		t.Fatalf("got %d measurements", len(ms))
	}
	// Brute-force cost must grow with the inventory.
	var bfSmall, bfLarge float64
	for _, m := range ms {
		if m.Method == "BruteForce" {
			switch m.Config {
			case "|B|=100":
				bfSmall = m.FtMillis.Mean
			case "|B|=400":
				bfLarge = m.FtMillis.Mean
			}
		}
	}
	if bfLarge <= bfSmall {
		t.Errorf("brute force did not slow down with |B|: %.3f vs %.3f ms", bfSmall, bfLarge)
	}
}

func TestRunKSweep(t *testing.T) {
	sc := tinyScenario(t)
	cfg := RunConfig{Repetitions: 1, TripsPerRep: 2, SegmentLenM: 4000}
	ms, err := RunKSweep(context.Background(), sc, cfg, []int{1, 5})
	if err != nil {
		t.Fatalf("RunKSweep: %v", err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	for _, m := range ms {
		if m.Method != "EcoCharge" {
			t.Errorf("unexpected method %s", m.Method)
		}
		if m.SCPercent.Mean <= 0 {
			t.Errorf("%s: zero SC", m.Config)
		}
	}
}

func TestWriteMeasurementsCSV(t *testing.T) {
	ms := []Measurement{{
		Dataset: "Oldenburg", Method: "EcoCharge", Config: "R=50km",
		Queries: 10, CacheHits: 7, CacheMiss: 3,
	}}
	var buf bytes.Buffer
	if err := WriteMeasurementsCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dataset,method,config") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "Oldenburg,EcoCharge,R=50km") {
		t.Errorf("missing row:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Errorf("got %d lines", lines)
	}
}

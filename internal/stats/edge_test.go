package stats

import (
	"math"
	"testing"
)

func TestSummaryPercentilesOrdered(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8, 4, 6}
	s := Summarize(xs)
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("percentiles unordered: %+v", s)
	}
}

func TestStdDevConstantSeries(t *testing.T) {
	xs := []float64{4, 4, 4, 4}
	if sd := StdDev(xs); sd != 0 {
		t.Fatalf("constant series stddev = %v", sd)
	}
}

func TestMeanLargeValuesStable(t *testing.T) {
	xs := []float64{1e15, 1e15 + 2, 1e15 + 4}
	if m := Mean(xs); math.Abs(m-(1e15+2)) > 1 {
		t.Fatalf("mean of large values = %v", m)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("P%v of singleton = %v", p, got)
		}
	}
}

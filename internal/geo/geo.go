// Package geo provides the geodesic primitives used throughout EcoCharge:
// geographic points, great-circle and fast planar distances, bearings,
// bounding boxes, and point-to-segment projections.
//
// Coordinates are WGS84 degrees. Distances are meters unless stated
// otherwise. For the urban scales the paper targets (tens of kilometers)
// the equirectangular approximation is accurate to well under 0.1% and is
// the default inside hot loops; Haversine is available where callers need
// long-range correctness (e.g. the California dataset spans 1,220 km).
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in meters (IUGG).
const EarthRadius = 6371008.8

// Point is a geographic location in degrees.
type Point struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the legal WGS84 range.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Radians returns the latitude and longitude in radians.
func (p Point) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp against floating error before Asin.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(s))
}

// Distance returns the equirectangular-approximation distance between a and
// b in meters. It is the default metric for urban-scale computation.
func Distance(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	x := (lon2 - lon1) * math.Cos((lat1+lat2)/2)
	y := lat2 - lat1
	return EarthRadius * math.Hypot(x, y)
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from north, in [0, 360).
func Bearing(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Destination returns the point reached by traveling dist meters from p on
// the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, dist float64) Point {
	lat1, lon1 := p.Radians()
	brg := bearingDeg * math.Pi / 180
	ad := dist / EarthRadius
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*math.Sin(lat2),
	)
	return Point{Lat: lat2 * 180 / math.Pi, Lon: normalizeLonRad(lon2) * 180 / math.Pi}
}

func normalizeLonRad(lon float64) float64 {
	for lon > math.Pi {
		lon -= 2 * math.Pi
	}
	for lon < -math.Pi {
		lon += 2 * math.Pi
	}
	return lon
}

// Midpoint returns the point halfway along the great circle from a to b.
func Midpoint(a, b Point) Point {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return Point{Lat: lat3 * 180 / math.Pi, Lon: normalizeLonRad(lon3) * 180 / math.Pi}
}

// Interpolate returns the point at fraction f in [0,1] along the straight
// (planar) interpolation from a to b. Adequate for the short segments of a
// trip polyline.
func Interpolate(a, b Point, f float64) Point {
	if f <= 0 {
		return a
	}
	if f >= 1 {
		return b
	}
	return Point{Lat: a.Lat + (b.Lat-a.Lat)*f, Lon: a.Lon + (b.Lon-a.Lon)*f}
}

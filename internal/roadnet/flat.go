package roadnet

// flat.go is the flat shortest-path kernel behind every network expansion:
// dense distance/predecessor arrays recycled across searches through
// generation stamps (no clearing, no per-search maps), a slice-based 4-ary
// min-heap specialized to (NodeID, float64) pairs, precompiled per-road-class
// weight tables, and a sync.Pool of search-state scratch so concurrent
// queries reuse buffers instead of allocating. The derouting component runs
// two to four bounded expansions per segment per trip per user (paper
// Alg. 1 lines 9-10), which makes this the hottest loop in the repository;
// see DESIGN.md §8 for the engineering rules it follows.

import (
	"math"
	"sync"
)

// NumRoadClasses is the number of distinct road classes. ClassWeights
// tables carry exactly one multiplier per class.
const NumRoadClasses = int(numRoadClasses)

// ClassWeights is a precompiled per-road-class cost table: the traversal
// cost of an edge is edge.Length * table[edge.Class]. The kernel multiplies
// the table entry directly instead of calling a WeightFunc closure per edge,
// and because the closure form returned by Func computes the exact same
// product, table-driven and closure-driven searches produce bit-identical
// path sums (float multiplication of the same two operands is
// deterministic; see DESIGN.md §8).
type ClassWeights [numRoadClasses]float64

// CostOf prices one edge under the table.
func (cw *ClassWeights) CostOf(e Edge) float64 {
	return e.Length * cw[e.Class%numRoadClasses]
}

// Func adapts the table to the WeightFunc shape for the generic
// (cold-path) search APIs. The closure computes the identical product the
// kernel computes, so mixing the two forms cannot diverge.
func (cw ClassWeights) Func() WeightFunc {
	return func(e Edge) float64 { return e.Length * cw[e.Class%numRoadClasses] }
}

// DistanceClassWeights is the table form of DistanceWeight: cost = length.
func DistanceClassWeights() ClassWeights {
	var cw ClassWeights
	for i := range cw {
		cw[i] = 1
	}
	return cw
}

// TimeClassWeights is the table form of free-flow travel time in seconds.
func TimeClassWeights() ClassWeights {
	var cw ClassWeights
	for c := RoadClass(0); c < numRoadClasses; c++ {
		cw[c] = 1 / c.FreeFlowSpeed()
	}
	return cw
}

// heapItem is one pending (node, priority) pair of the search frontier.
type heapItem struct {
	node NodeID
	prio float64
}

// heap4 is a slice-backed 4-ary min-heap on heapItem. Compared to
// container/heap it avoids the interface boxing of Push/Pop (one alloc per
// operation) and halves the tree depth, trading slightly wider sift-down
// scans — a good fit for the short-priority-range frontiers of road-network
// Dijkstra. The backing slice is owned by a searchState and recycled.
type heap4 struct {
	items []heapItem
}

func (h *heap4) reset() { h.items = h.items[:0] }

func (h *heap4) push(node NodeID, prio float64) {
	h.items = append(h.items, heapItem{node: node, prio: prio})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h.items[p].prio <= h.items[i].prio {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *heap4) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i, n := 0, last
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.items[c].prio < h.items[min].prio {
				min = c
			}
		}
		if h.items[i].prio <= h.items[min].prio {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top
}

// nodeMark packs one node's settled and target generation stamps into a
// single word. The hot settle loop writes mark[n].done on every pop; keeping
// the target stamp beside it means the many-target probe reads the cache
// line the loop just touched instead of paying a second random load — that
// probe costs ~20% of a whole-graph expansion when targ is a separate array.
type nodeMark struct {
	done uint32 // == stamp ⇔ n was settled (popped) this search
	targ uint32 // == stamp ⇔ n is a still-unsettled target (see many.go)
}

// searchState is the recycled scratch of one search: dense distance,
// predecessor and generation arrays sized to the graph, plus the frontier
// heap. A slot n is valid for the current search iff seen[n] == stamp;
// bumping the stamp in begin invalidates every slot in O(1), so nothing is
// ever cleared between searches. States live in the graph's sync.Pool.
type searchState struct {
	g     *Graph
	dist  []float64
	prev  []NodeID
	seen  []uint32 // seen[n] == stamp ⇔ dist[n]/prev[n] hold this search's values
	mark  []nodeMark
	stamp uint32
	cw    ClassWeights // table slot so ExpandFrom/ExpandTo need no extra escape
	pq    heap4
	// targetsLeft counts the marked-but-unsettled targets of a many-target
	// search; 0 disables early termination (the plain expansion path).
	targetsLeft int
	// settled counts the nodes popped by the last run, reported to the obs
	// layer by the many-target wrappers.
	settled int
	inUse   bool
}

func newSearchState(g *Graph) *searchState {
	n := len(g.nodes)
	return &searchState{
		g:    g,
		dist: make([]float64, n),
		prev: make([]NodeID, n),
		seen: make([]uint32, n),
		mark: make([]nodeMark, n),
		pq:   heap4{items: make([]heapItem, 0, 256)},
	}
}

// acquireState checks a search state out of the graph's pool and starts a
// fresh generation. Callers must release it exactly once.
func (g *Graph) acquireState() *searchState {
	met.poolAcquires.Inc()
	st := g.pool.Get().(*searchState)
	st.begin()
	return st
}

// begin opens a new search generation. On the (once per 2^32 searches)
// stamp wrap-around the generation arrays are cleared so stale entries from
// four billion searches ago cannot alias the new stamp.
func (st *searchState) begin() {
	st.inUse = true
	st.targetsLeft = 0 // a prior search may have ended with unsettled targets
	st.settled = 0
	st.stamp++
	if st.stamp == 0 {
		for i := range st.seen {
			st.seen[i] = 0
			st.mark[i] = nodeMark{}
		}
		st.stamp = 1
	}
	st.pq.reset()
}

// release returns the state to the pool. Releasing twice is a no-op, so a
// deferred release composes with early returns.
func (st *searchState) release() {
	if !st.inUse {
		return
	}
	st.inUse = false
	met.poolReleases.Inc()
	st.g.pool.Put(st)
}

// seed initializes the search origin.
func (st *searchState) seed(n NodeID) {
	st.dist[n] = 0
	st.seen[n] = st.stamp
	st.prev[n] = Invalid
	st.pq.push(n, 0)
}

// reached reports whether the last search settled or touched n.
func (st *searchState) reached(n NodeID) bool {
	return n >= 0 && int(n) < len(st.seen) && st.seen[n] == st.stamp
}

// run executes the shared Dijkstra kernel from src. When dst is valid the
// search stops as soon as dst settles; when maxWeight is finite, nodes
// beyond the bound are not recorded. reverse walks the reverse adjacency
// (distances *to* src). Edge costs come from the class table when cw is
// non-nil (the hot path: one multiply, no call) and from w otherwise.
// needPrev controls predecessor bookkeeping; distance-only callers skip it.
func (st *searchState) run(src, dst NodeID, w WeightFunc, cw *ClassWeights, maxWeight float64, needPrev, reverse bool) {
	g := st.g
	st.seed(src)
	for len(st.pq.items) > 0 {
		cur := st.pq.pop()
		m := &st.mark[cur.node]
		if m.done == st.stamp {
			continue
		}
		m.done = st.stamp
		st.settled++
		if cur.node == dst {
			break
		}
		if st.targetsLeft > 0 && m.targ == st.stamp {
			// A target just settled: its distance is final (Dijkstra pops in
			// non-decreasing order), so once the last one settles nothing the
			// remaining frontier could discover changes any target value —
			// stopping here is byte-identical at the targets to running the
			// expansion to exhaustion.
			if st.targetsLeft--; st.targetsLeft == 0 {
				break
			}
		}
		var out []int32
		if reverse {
			out = g.radj[cur.node]
		} else {
			out = g.adj[cur.node]
		}
		base := st.dist[cur.node]
		for _, ei := range out {
			e := &g.edges[ei]
			var wt float64
			if cw != nil {
				wt = e.Length * cw[e.Class%numRoadClasses]
			} else {
				wt = w(*e)
			}
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := base + wt
			if nd > maxWeight {
				continue
			}
			to := e.To
			if reverse {
				to = e.From
			}
			if st.seen[to] != st.stamp || nd < st.dist[to] {
				st.dist[to] = nd
				st.seen[to] = st.stamp
				if needPrev {
					st.prev[to] = cur.node
				}
				st.pq.push(to, nd)
			}
		}
	}
}

// path reconstructs src→dst from the predecessor array. It returns nil when
// the chain is broken (only possible if dst was never reached).
func (st *searchState) path(src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		if !st.reached(at) || st.prev[at] == Invalid {
			return nil
		}
		at = st.prev[at]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// toMap copies the reached set into the map shape of the convenience API.
// Cold path only: the per-query expansion machinery reads the dense arrays
// through Expansion instead.
func (st *searchState) toMap() map[NodeID]float64 { //ecolint:ignore hotalloc cold-path convenience copy; hot callers use Expansion
	//ecolint:ignore hotalloc cold-path convenience copy; hot callers use Expansion
	out := make(map[NodeID]float64, 64)
	for n, s := range st.seen {
		if s == st.stamp {
			out[NodeID(n)] = st.dist[n]
		}
	}
	return out
}

// Expansion is the zero-copy result of one bounded network expansion: a
// read-only view over a pooled search state's dense arrays. Dist is safe
// for concurrent readers. Callers must Release the expansion when done —
// typically with defer — after which Dist must not be called; the zero
// Expansion is valid and empty.
type Expansion struct {
	st *searchState
}

// Dist returns the expansion weight of n and whether n was reached.
func (x Expansion) Dist(n NodeID) (float64, bool) {
	st := x.st
	if st == nil || n < 0 || int(n) >= len(st.seen) || st.seen[n] != st.stamp {
		return 0, false
	}
	return st.dist[n], true
}

// Release returns the expansion's scratch buffers to the graph's pool.
// Releasing twice (or releasing the zero Expansion) is a no-op.
func (x Expansion) Release() {
	if x.st != nil {
		x.st.release()
	}
}

// ExpandFrom runs a bounded expansion from src under the class table,
// pricing every node reachable within maxWeight. This is the
// network-expansion primitive of the derouting component (Alg. 1 lines
// 9-10) in its allocation-free form: scratch comes from the graph's pool
// and goes back on Release.
func (g *Graph) ExpandFrom(src NodeID, cw ClassWeights, maxWeight float64) Expansion {
	return g.expand(src, cw, maxWeight, false)
}

// ExpandTo is ExpandFrom on the reverse graph: the weight of reaching dst
// from every node within maxWeight (the return-to-route leg).
func (g *Graph) ExpandTo(dst NodeID, cw ClassWeights, maxWeight float64) Expansion {
	return g.expand(dst, cw, maxWeight, true)
}

func (g *Graph) expand(origin NodeID, cw ClassWeights, maxWeight float64, reverse bool) Expansion {
	met.expansions.Inc()
	g.mustFrozen()
	st := g.acquireState()
	if g.validID(origin) {
		st.cw = cw
		st.run(origin, Invalid, nil, &st.cw, maxWeight, false, reverse)
	}
	return Expansion{st: st}
}

// initSearchPool wires the graph's search-state pool; called by Freeze.
func (g *Graph) initSearchPool() {
	g.pool = &sync.Pool{New: func() any {
		met.poolNews.Inc()
		return newSearchState(g)
	}}
}

// unreachable is the canonical "no path" weight.
var unreachable = math.Inf(1)

package roadnet

import (
	"math"
)

// BidirectionalShortestPath runs Dijkstra simultaneously from src (forward)
// and dst (backward on the reverse graph), terminating when the frontiers
// guarantee the best meeting point is settled. For point-to-point detour
// costing it explores roughly half the nodes plain Dijkstra would.
// Results are identical to ShortestPath. The two searches run on two pooled
// flat states (see flat.go), so a query allocates nothing beyond the
// returned path.
func (g *Graph) BidirectionalShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	g.mustFrozen()
	if !g.validID(src) || !g.validID(dst) {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}, Weight: 0}, true
	}

	stF := g.acquireState()
	defer stF.release()
	stB := g.acquireState()
	defer stB.release()
	stF.seed(src)
	stB.seed(dst)

	best := math.Inf(1)
	meet := Invalid

	// relax expands cur in st's direction and tests each tentative distance
	// against the opposite search for a cheaper meeting point.
	relax := func(st, other *searchState, cur NodeID, reverse bool) {
		var out []int32
		if reverse {
			out = g.radj[cur]
		} else {
			out = g.adj[cur]
		}
		base := st.dist[cur]
		for _, ei := range out {
			e := &g.edges[ei]
			wt := w(*e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := base + wt
			to := e.To
			if reverse {
				to = e.From
			}
			if st.seen[to] != st.stamp || nd < st.dist[to] {
				st.dist[to] = nd
				st.seen[to] = st.stamp
				st.prev[to] = cur
				st.pq.push(to, nd)
			}
			if other.seen[to] == other.stamp {
				if total := nd + other.dist[to]; total < best {
					best = total
					meet = to
				}
			}
		}
	}

	for len(stF.pq.items) > 0 || len(stB.pq.items) > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if len(stF.pq.items) > 0 {
			topF = stF.pq.items[0].prio
		}
		if len(stB.pq.items) > 0 {
			topB = stB.pq.items[0].prio
		}
		// Standard stopping criterion: once the sum of the two frontiers'
		// minima reaches the best known meeting cost, no better path exists.
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			cur := stF.pq.pop()
			if stF.mark[cur.node].done == stF.stamp {
				continue
			}
			stF.mark[cur.node].done = stF.stamp
			relax(stF, stB, cur.node, false)
		} else {
			cur := stB.pq.pop()
			if stB.mark[cur.node].done == stB.stamp {
				continue
			}
			stB.mark[cur.node].done = stB.stamp
			relax(stB, stF, cur.node, true)
		}
	}
	if meet == Invalid {
		return Path{}, false
	}

	// Stitch: src→meet from the forward tree, meet→dst from the backward.
	forward := stF.path(src, meet)
	if forward == nil {
		return Path{}, false
	}
	nodes := forward
	for at := meet; at != dst; {
		if !stB.reached(at) || stB.prev[at] == Invalid {
			return Path{}, false
		}
		next := stB.prev[at]
		nodes = append(nodes, next)
		at = next
	}
	return Path{Nodes: nodes, Weight: best}, true
}

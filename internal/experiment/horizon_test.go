package experiment

import (
	"context"
	"testing"
	"time"
)

func TestRunHorizonSweep(t *testing.T) {
	sc := tinyScenario(t)
	cfg := RunConfig{Repetitions: 2, TripsPerRep: 3, SegmentLenM: 4000}
	ms, err := RunHorizonSweep(context.Background(), sc, cfg, []time.Duration{0, 24 * time.Hour})
	if err != nil {
		t.Fatalf("RunHorizonSweep: %v", err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	fresh, stale := ms[0], ms[1]
	if fresh.Config != "horizon=0s" || stale.Config != "horizon=24h0m0s" {
		t.Fatalf("configs: %q, %q", fresh.Config, stale.Config)
	}
	if fresh.Queries == 0 || stale.Queries == 0 {
		t.Fatal("no queries measured")
	}
	// Planning a day ahead must not beat planning with fresh forecasts
	// (tolerance for sampling noise).
	if stale.SCPercent.Mean > fresh.SCPercent.Mean+1.5 {
		t.Errorf("stale forecasts scored higher: %.1f vs %.1f",
			stale.SCPercent.Mean, fresh.SCPercent.Mean)
	}
	if fresh.SCPercent.Mean < 80 {
		t.Errorf("fresh-forecast SC %.1f implausibly low", fresh.SCPercent.Mean)
	}
}

func TestRunHorizonSweepEmptyTrips(t *testing.T) {
	sc := tinyScenario(t)
	empty := *sc
	empty.Trips = nil
	if _, err := RunHorizonSweep(context.Background(), &empty, RunConfig{}, nil); err == nil {
		t.Fatal("empty trips accepted")
	}
}

package cknn

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
)

func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Method is a ranking strategy producing Offering Tables for query points.
// Implementations correspond one-to-one to the evaluation's compared
// approaches. Methods may keep per-trip state (the EcoCharge cache); call
// Reset between trips. Methods are not safe for concurrent use unless they
// implement ConcurrentRanker; create one per goroutine otherwise.
type Method interface {
	// Name is the label used in the figures.
	Name() string
	// Rank computes the Offering Table for the query.
	Rank(q Query) OfferingTable
	// Reset clears per-trip state.
	Reset()
}

// ConcurrentRanker marks methods whose Rank may be called from multiple
// goroutines simultaneously and whose output does not depend on call order
// (stateless methods over the immutable Env). RunTrip parallelizes
// per-segment table construction only for these; order-dependent methods
// (EcoCharge's cache chain, Random's deterministic stream, Balanced's
// commitment feedback) keep the sequential segment walk and parallelize
// inside the filtering phase instead.
type ConcurrentRanker interface {
	Method
	// ConcurrentRankOK is a marker; it must be safe to call Rank
	// concurrently on implementations.
	ConcurrentRankOK()
}

// WorkersConfigurable is implemented by methods whose engine can bound a
// filtering-phase worker pool. RunTrip threads TripOptions.Workers through
// it; standalone callers (e.g. the EIS) set it directly.
type WorkersConfigurable interface {
	// SetWorkers bounds the filtering-phase pool; 0 and 1 select the
	// sequential oracle path.
	SetWorkers(n int)
}

// BruteForce exhaustively evaluates the entire charger pool with unbounded
// network expansions: the optimal-but-slowest baseline (SC = 100% by
// definition of the evaluation metric).
type BruteForce struct {
	engine Engine
}

// NewBruteForce returns the exhaustive baseline method.
func NewBruteForce(env *Env) *BruteForce { return &BruteForce{engine: Engine{Env: env}} }

// Name implements Method.
func (m *BruteForce) Name() string { return "BruteForce" }

// Reset implements Method; BruteForce is stateless.
func (m *BruteForce) Reset() {}

// ConcurrentRankOK implements ConcurrentRanker; BruteForce is stateless.
func (m *BruteForce) ConcurrentRankOK() {}

// SetWorkers implements WorkersConfigurable.
func (m *BruteForce) SetWorkers(n int) { m.engine.Workers = n }

// Rank implements Method.
func (m *BruteForce) Rank(q Query) OfferingTable {
	q = q.normalized()
	all := m.engine.Env.Chargers.All()
	cands := make([]*charger.Charger, len(all))
	for i := range all {
		cands[i] = &all[i]
	}
	// Unbounded search effort, but the expansions still stop once every
	// charger (and the return node) is settled — the exhaustive baseline
	// pays for the candidate set, not for the whole graph.
	d := m.engine.Env.deroutingMapsFor(q, math.Inf(1), deroutTargets(cands, q.ReturnNode))
	defer d.Release()
	return OfferingTable{
		Anchor:      q.Anchor,
		GeneratedAt: q.Now,
		ETABase:     q.ETABase,
		Entries:     m.engine.rankPool(cands, d, q),
	}
}

// IndexQuadtree retrieves candidates through the spatial index — the
// CandidateFactor·k chargers geometrically nearest the anchor — and ranks
// only those. Retrieval drops from O(n) to O(log n), trading SC: the best
// sustainability score is not always among the nearest chargers.
type IndexQuadtree struct {
	engine Engine
	// CandidateFactor scales the candidate set (factor·k nearest); values
	// below 1 are treated as the default 2.
	CandidateFactor int
}

// NewIndexQuadtree returns the index-based baseline method.
func NewIndexQuadtree(env *Env) *IndexQuadtree {
	return &IndexQuadtree{engine: Engine{Env: env}, CandidateFactor: 2}
}

// Name implements Method.
func (m *IndexQuadtree) Name() string { return "Index-Quadtree" }

// Reset implements Method; the method is stateless.
func (m *IndexQuadtree) Reset() {}

// ConcurrentRankOK implements ConcurrentRanker; the method is stateless.
func (m *IndexQuadtree) ConcurrentRankOK() {}

// SetWorkers implements WorkersConfigurable.
func (m *IndexQuadtree) SetWorkers(n int) { m.engine.Workers = n }

// Rank implements Method.
func (m *IndexQuadtree) Rank(q Query) OfferingTable {
	q = q.normalized()
	factor := m.CandidateFactor
	if factor < 1 {
		factor = 2
	}
	cands := m.engine.Env.Chargers.KNearest(q.Anchor, factor*q.K)
	// The expansion only needs to price the retrieved candidates: bound it
	// by a generous detour budget to the farthest one (4× the geodesic
	// distance at half urban speed covers grid detours and congestion).
	bound := m.engine.Env.MaxDeroutSec
	if len(cands) > 0 {
		far := geo.Distance(q.Anchor, cands[len(cands)-1].P)
		if b := 4 * far / (avgUrbanSpeed / 2); b < bound {
			bound = b
		}
	}
	d := m.engine.Env.deroutingMapsFor(q, bound, deroutTargets(cands, q.ReturnNode))
	defer d.Release()
	return OfferingTable{
		Anchor:      q.Anchor,
		GeneratedAt: q.Now,
		ETABase:     q.ETABase,
		Entries:     m.engine.rankPool(cands, d, q),
	}
}

// Random fills the Offering Table with k random chargers inside the radius,
// ignoring every objective — the paper's lower-bound baseline. It performs
// no network expansion and no forecasting, so it is the fastest method; its
// entries carry zero scores because it never computes any.
type Random struct {
	env *Env
	rng *rand.Rand
}

// NewRandom returns the random baseline with a deterministic stream.
func NewRandom(env *Env, seed int64) *Random {
	return &Random{env: env, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Method.
func (m *Random) Name() string { return "Random" }

// Reset implements Method; the random stream continues across trips by
// design (resetting it would correlate trips).
func (m *Random) Reset() {}

// Rank implements Method.
func (m *Random) Rank(q Query) OfferingTable {
	q = q.normalized()
	pool := m.env.Chargers.Within(q.Anchor, q.RadiusM)
	t := OfferingTable{Anchor: q.Anchor, GeneratedAt: q.Now, ETABase: q.ETABase}
	if len(pool) == 0 {
		return t
	}
	n := q.K
	if n > len(pool) {
		n = len(pool)
	}
	perm := m.rng.Perm(len(pool))
	for _, idx := range perm[:n] {
		t.Entries = append(t.Entries, Entry{Charger: pool[idx]})
	}
	return t
}

// EcoChargeOptions configure the paper's method: the search radius R, the
// re-generation distance Q, and the cache validity horizon.
type EcoChargeOptions struct {
	// RadiusM is R: chargers farther than this from the anchor are not
	// considered. 0 selects 50 km (the paper's chosen configuration).
	RadiusM float64
	// ReuseDistM is Q: a previously generated Offering Table is adapted
	// instead of recomputed while the vehicle stays within this distance
	// of the table's anchor. 0 selects 5 km.
	ReuseDistM float64
	// TTL bounds how long a cached table stays adaptable regardless of
	// distance (the ECs decay with time). 0 selects 15 minutes.
	TTL time.Duration
	// ExactDerouting selects the exact four-expansion derouting interval
	// computation on cache misses instead of the default single-expansion
	// mid-traffic approximation (see Env.deroutingMapsApprox).
	ExactDerouting bool
}

func (o EcoChargeOptions) withDefaults() EcoChargeOptions {
	if o.RadiusM <= 0 {
		o.RadiusM = 50000
	}
	if o.ReuseDistM <= 0 {
		o.ReuseDistM = 5000
	}
	if o.TTL <= 0 {
		o.TTL = 15 * time.Minute
	}
	return o
}

// EcoCharge is the paper's method: radius-bounded CkNN-EC evaluation with
// the dynamic bottom-up cache of §IV.C. On a cache hit (vehicle moved less
// than Q from the cached table's anchor and the table is fresh) the cached
// table is adapted — only the derouting component is re-derived from the
// new position, cheaply and approximately — instead of recomputed.
//
// Each method instance owns one slot of a ShardedCache; a fleet of
// concurrent trips over one Env shares the cache (NewEcoChargeShared) while
// every trip still adapts only its own tables.
type EcoCharge struct {
	engine Engine
	opts   EcoChargeOptions
	cache  *ShardedCache
	owner  uint64
	hits   atomic.Int64
	misses atomic.Int64
}

// NewEcoCharge returns the EcoCharge method with the given options and a
// private cache.
func NewEcoCharge(env *Env, opts EcoChargeOptions) *EcoCharge {
	return NewEcoChargeShared(env, opts, NewShardedCache())
}

// NewEcoChargeShared returns an EcoCharge instance storing its dynamic
// cache in the given shared ShardedCache. One instance per concurrent trip;
// the instance allocates its own slot so trips never adapt each other's
// tables.
func NewEcoChargeShared(env *Env, opts EcoChargeOptions, cache *ShardedCache) *EcoCharge {
	return &EcoCharge{
		engine: Engine{Env: env},
		opts:   opts.withDefaults(),
		cache:  cache,
		owner:  cache.NewOwner(),
	}
}

// Name implements Method.
func (m *EcoCharge) Name() string { return "EcoCharge" }

// Reset implements Method: it drops the cached table (new trip, new cache).
func (m *EcoCharge) Reset() { m.cache.Invalidate(m.owner) }

// SetWorkers implements WorkersConfigurable.
func (m *EcoCharge) SetWorkers(n int) { m.engine.Workers = n }

// Stats reports cache hits and misses since construction, used by the
// experiments to explain the Q tradeoff.
func (m *EcoCharge) Stats() (hits, misses int) {
	return int(m.hits.Load()), int(m.misses.Load())
}

// Rank implements Method.
func (m *EcoCharge) Rank(q Query) OfferingTable {
	q = q.normalized()
	q.RadiusM = m.opts.RadiusM
	if cached, ok := m.cache.Lookup(m.owner, q, m.opts); ok {
		m.hits.Add(1)
		return m.adapt(cached, q)
	}
	m.misses.Add(1)
	table := m.compute(q)
	m.cache.Store(m.owner, table)
	return table
}

// compute is the cache-miss path: full CkNN-EC over the chargers within R.
// Network expansions are bounded by the derouting budget MaxDeroutSec;
// chargers inside R whose visit would exceed the budget are not offered
// (brute force instead keeps them with D clamped to 1), which is part of
// the R-opt accuracy/cost tradeoff of Fig. 7.
func (m *EcoCharge) compute(q Query) OfferingTable {
	cands := m.engine.Env.Chargers.Within(q.Anchor, q.RadiusM)
	// The user-configured radius sets the derouting budget: with R = 25 km
	// the driver accepts at most a ~30-minute detour, with R = 75 km three
	// times that. Larger R therefore expands farther (slower) and keeps
	// more chargers offerable (more accurate) — the Fig. 7 tradeoff.
	budget := q.RadiusM / avgUrbanSpeed
	targets := deroutTargets(cands, q.ReturnNode)
	var d DeroutingMaps
	if m.opts.ExactDerouting {
		d = m.engine.Env.deroutingMapsFor(q, budget, targets)
	} else {
		d = m.engine.Env.deroutingMapsApproxFor(q, budget, targets)
	}
	defer d.Release()
	return OfferingTable{
		Anchor:      q.Anchor,
		GeneratedAt: q.Now,
		ETABase:     q.ETABase,
		Entries:     m.engine.rankPool(cands, d, q),
	}
}

// adapt is the cache-hit path (§IV.C bottom-up reuse): L and A estimates of
// the cached entries are kept, only D is re-derived from the new anchor
// using the geodesic round-trip approximation — no network expansion, no
// forecasting. The approximation is what trades accuracy for speed as Q
// grows (Fig. 8).
func (m *EcoCharge) adapt(cached OfferingTable, q Query) OfferingTable {
	out := OfferingTable{
		Anchor:      q.Anchor,
		GeneratedAt: q.Now,
		ETABase:     q.ETABase,
		Adapted:     true,
	}
	out.Entries = make([]Entry, 0, len(cached.Entries))
	for _, e := range cached.Entries {
		straight := geo.Distance(q.Anchor, e.Charger.P)
		if straight > q.RadiusM {
			met.cacheAdaptDropped.Inc()
			continue // drifted out of the search radius
		}
		// Shift the cached network derouting by the geodesic movement
		// delta (round trip at urban speed): small moves perturb the
		// exact value instead of replacing it. The spread keeps the old
		// relative uncertainty.
		oldStraight := geo.Distance(cached.Anchor, e.Charger.P)
		approxSec := e.Comp.DeroutSecM + 2*(straight-oldStraight)/avgUrbanSpeed
		if approxSec < 0 {
			approxSec = 0
		}
		comp := e.Comp
		// D is re-derived at this query's issue time, so its degradation is
		// re-decided too: the cached L/A estimates (and their Degraded bits)
		// are reused as-is, but a traffic outage now widens D regardless of
		// what the cached table saw, and a recovered source re-estimates it.
		if !m.engine.Env.DSourceOK(e.Charger.ID, q.Now) {
			comp.D = ignoranceBound()
			comp.Degraded |= DegradedD
		} else {
			spread := e.Comp.D.Width() / 2
			if e.Comp.Degraded.Has(CompD) {
				// The cached D was the ignorance bound: its width carries no
				// information about the estimate, so adapt from the point
				// value instead of inheriting the [0,1] spread.
				spread = 0
			}
			dMid := approxSec / m.engine.Env.MaxDeroutSec
			comp.D = interval.FromBounds(dMid-spread, dMid+spread).Clamp(0, 1)
			comp.Degraded &^= DegradedD
		}
		comp.DeroutSecM = approxSec
		countDegraded(comp.Degraded)
		out.Entries = append(out.Entries, Entry{
			Charger: e.Charger,
			SC:      comp.SC(q.Weights),
			Comp:    comp,
		})
	}
	out.Entries = Rank(out.Entries, q.K)
	return out
}

package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LogHistogram counts durations into log-linear (HDR-style) buckets over
// the full int64-nanosecond range: every power of two is subdivided into
// logSubCount linear sub-buckets, so the relative quantization error is
// bounded by 1/logSubCount (~3.1%) at every magnitude from nanoseconds to
// hours. That is what the fixed-bucket Histogram cannot do — its 16 bounds
// resolve a p50 fine but collapse the tail, and a p999 read from it is a
// bucket-edge artifact. The load harness records open-loop latency here.
//
// Observe is two shifts plus three atomic adds — zero allocations, no
// locks — and a nil *LogHistogram discards observations, matching the
// registry's nil-receiver contract.
type LogHistogram struct {
	counts [logBucketCount]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds; wraps after ~584 years observed
}

const (
	// logSubBits sets the linear subdivision of each power of two:
	// 2^logSubBits sub-buckets per octave bound the relative error of any
	// reported quantile by 2^-logSubBits.
	logSubBits  = 5
	logSubCount = 1 << logSubBits

	// logBucketCount covers the whole uint64 range: values below
	// 2*logSubCount map one-to-one (exact), every further octave adds
	// logSubCount buckets. The top index is reached at v = 2^64-1:
	// shift = 64-logSubBits-1 = 58, index = 58*32 + 63 = 1919.
	logBucketCount = (64-logSubBits-1)*logSubCount + 2*logSubCount
)

// NewLogHistogram returns an empty histogram. The zero value is also
// ready to use; the constructor exists for symmetry with the pooled
// harness code that embeds one per rate step.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// logBucketIndex maps a non-negative nanosecond value to its bucket.
func logBucketIndex(v uint64) int {
	if v < 2*logSubCount {
		return int(v) // exact: one bucket per nanosecond below 64 ns
	}
	// shift brings v into [logSubCount, 2*logSubCount).
	shift := bits.Len64(v) - logSubBits - 1
	return shift*logSubCount + int(v>>shift)
}

// logBucketBound returns the largest value a bucket holds (its inclusive
// upper bound), which Quantile reports: estimates never under-state the
// true order statistic and over-state it by at most one sub-bucket width.
func logBucketBound(idx int) uint64 {
	if idx < 2*logSubCount {
		return uint64(idx)
	}
	shift := idx/logSubCount - 1
	m := uint64(idx - shift*logSubCount)
	return (m+1)<<shift - 1
}

// Observe records one duration. Negative durations clamp to zero (they
// can only come from clock steps; dropping them would hide the step).
func (h *LogHistogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[logBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; 0 on nil.
func (h *LogHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time; 0 on nil.
func (h *LogHistogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns the q-th order statistic (q in [0,1]) as the upper
// bound of the bucket holding it: the estimate e of a true sample t
// satisfies t ≤ e ≤ t·(1+2^-logSubBits)+1ns. Returns 0 on an empty or nil
// histogram. Concurrent Observes may land between bucket reads; callers
// wanting an exact cut read after their run step completes.
func (h *LogHistogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return time.Duration(logBucketBound(i))
		}
	}
	// Concurrent observers raced count ahead of the buckets; report the
	// highest populated bound seen.
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return time.Duration(logBucketBound(i))
		}
	}
	return 0
}

// Merge adds o's counts into h (multi-worker sinks fold their per-worker
// histograms into one before reporting). Nil receivers and nil arguments
// are no-ops.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// logQuantiles are the exposition cut points: the summary form every
// LogHistogram renders as (Prometheus summary semantics — precomputed
// quantiles, not cumulative buckets; the 1920 underlying buckets would
// bloat the text format for no reader benefit).
var logQuantiles = [...]float64{0.5, 0.9, 0.99, 0.999}

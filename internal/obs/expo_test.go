package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlers exercises the HTTP faces of the registry: /metrics text
// exposition and the /debug/vars JSON snapshot, both on a fresh registry
// and on the process-wide default.
func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("expo_test_requests_total").Add(3)
	g := r.Gauge("expo_test_inflight")
	g.Set(5)
	g.Add(-2)
	r.LogHistogram("expo_test_latency_seconds").Observe(42 * time.Millisecond)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"expo_test_requests_total 3",
		"expo_test_inflight 3",
		"# TYPE expo_test_latency_seconds summary",
		"expo_test_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("vars Content-Type %q", ct)
	}
	vars := rec.Body.String()
	for _, want := range []string{`"expo_test_requests_total": 3`, `"expo_test_latency_seconds_p99"`} {
		if !strings.Contains(vars, want) {
			t.Fatalf("vars snapshot lacks %q:\n%s", want, vars)
		}
	}

	// Default is one stable process-wide registry.
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry not stable")
	}

	// Nil receivers are the disabled plane: no panics, no output.
	var b strings.Builder
	if err := (*Registry)(nil).WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q (%v)", b.String(), err)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge held a value")
	}
}

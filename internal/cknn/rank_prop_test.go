package cknn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ecocharge/internal/charger"
	"ecocharge/internal/interval"
)

// genEntries produces a random entry pool for quick.Check.
type genEntries []Entry

func (genEntries) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	out := make(genEntries, n)
	for i := range out {
		a := r.Float64()
		b := r.Float64()
		out[i] = Entry{
			Charger: &charger.Charger{ID: int64(i + 1)},
			SC:      interval.FromBounds(a, b),
		}
	}
	return reflect.ValueOf(out)
}

// Rank output is always a subset of the input pool, of size min(k, n),
// with no duplicate chargers.
func TestPropRankSubsetAndSize(t *testing.T) {
	f := func(es genEntries, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		got := Rank(es, k)
		want := k
		if len(es) < k {
			want = len(es)
		}
		if len(got) != want {
			return false
		}
		in := map[int64]bool{}
		for _, e := range es {
			in[e.Charger.ID] = true
		}
		seen := map[int64]bool{}
		for _, e := range got {
			if !in[e.Charger.ID] || seen[e.Charger.ID] {
				return false
			}
			seen[e.Charger.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Rank output is sorted by SC midpoint, best first.
func TestPropRankSorted(t *testing.T) {
	f := func(es genEntries, kRaw uint8) bool {
		got := Rank(es, int(kRaw%10)+1)
		for i := 1; i < len(got); i++ {
			if got[i].SC.Mid() > got[i-1].SC.Mid()+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Rank is deterministic: shuffling the input never changes the output.
func TestPropRankOrderInvariant(t *testing.T) {
	f := func(es genEntries, kRaw uint8, seed int64) bool {
		k := int(kRaw%10) + 1
		a := Rank(es, k)
		shuffled := append(genEntries(nil), es...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := Rank(shuffled, k)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Charger.ID != b[i].Charger.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// An entry that dominates every other on both bounds is always ranked
// first.
func TestPropRankDominantWins(t *testing.T) {
	f := func(es genEntries) bool {
		if len(es) == 0 {
			return true
		}
		boss := Entry{
			Charger: &charger.Charger{ID: 9999},
			SC:      interval.New(1.5, 2.0), // above any generated [0,1] interval
		}
		got := Rank(append(es, boss), 3)
		return len(got) > 0 && got[0].Charger.ID == 9999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The eq. 6 intersection property: every ranked charger appears in the
// top-k of SC_max OR was padding; the chargers in both top-k sets always
// survive.
func TestPropRankIntersectionSurvives(t *testing.T) {
	f := func(es genEntries, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		if len(es) == 0 {
			return true
		}
		got := Rank(es, k)
		inGot := map[int64]bool{}
		for _, e := range got {
			inGot[e.Charger.ID] = true
		}
		topMax := topIDsBy(es, k, func(e Entry) float64 { return e.SC.Max })
		topMin := topIDsBy(es, k, func(e Entry) float64 { return e.SC.Min })
		for id := range topMax {
			if topMin[id] && !inGot[id] {
				return false // in both top-k sets but dropped
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func topIDsBy(es []Entry, k int, key func(Entry) float64) map[int64]bool {
	sorted := append([]Entry(nil), es...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0; j-- {
			a, b := sorted[j], sorted[j-1]
			if key(a) > key(b) || (key(a) == key(b) && a.Charger.ID < b.Charger.ID) {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			} else {
				break
			}
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	out := map[int64]bool{}
	for _, e := range sorted[:k] {
		out[e.Charger.ID] = true
	}
	return out
}

// Command ecobench regenerates the paper's evaluation figures (Figs. 6–9)
// as text tables: for every dataset it runs the compared methods and prints
// SC% (of the Brute-Force optimum) and per-query CPU time F_t, mean ±
// standard deviation over repetitions. The extra "design" figure isolates
// EcoCharge's own design choices (cache, interval approximation).
//
// Example:
//
//	ecobench -fig all -scale 0.002 -reps 10 -csv results.csv
//	ecobench -fig 6 -dataset Oldenburg -json bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"ecocharge/internal/experiment"
	"ecocharge/internal/fault"
	"ecocharge/internal/obs"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, design, horizon, serve or all (serve is HTTP-level and excluded from all)")
		scale     = flag.Float64("scale", 0.002, "trip-count scale relative to the paper's full datasets")
		seed      = flag.Int64("seed", 42, "scenario seed")
		reps      = flag.Int("reps", 5, "measurement repetitions (paper: ~10)")
		trips     = flag.Int("trips", 8, "trips sampled per repetition")
		k         = flag.Int("k", 3, "chargers per Offering Table")
		workers   = flag.Int("workers", 0, "sweep-cell worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		dataset   = flag.String("dataset", "", "restrict to one dataset profile (default: all four)")
		csvP      = flag.String("csv", "", "also export all measurements to this CSV file")
		jsonP     = flag.String("json", "", "also export machine-readable benchmark rows to this JSON file")
		commit    = flag.String("commit", "", "commit hash recorded in the JSON export (default: build info)")
		faultRate = flag.Float64("faultrate", 0, "deterministic EC-source fault rate in [0,1] (0 = no injection)")
		faultSeed = flag.Int64("faultseed", 1, "fault-injection PRNG seed (independent of -seed)")
		wireFmt   = flag.Bool("wire", false, "serve figure: also drive Mode 2 over the compact binary wire format")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (see docs/perf.md)")
		memProf   = flag.String("memprofile", "", "write a post-run heap profile to this file (see docs/perf.md)")
	)
	flag.Parse()

	if *faultRate < 0 || *faultRate > 1 {
		fmt.Fprintln(os.Stderr, "ecobench: -faultrate must be in [0,1]")
		os.Exit(1)
	}
	cfg := experiment.RunConfig{Repetitions: *reps, TripsPerRep: *trips, K: *k, Workers: *workers}
	opts := runOpts{
		fig: *fig, dataset: *dataset, scale: *scale, seed: *seed,
		cfg: cfg, csvPath: *csvP, jsonPath: *jsonP, commit: *commit,
		faultRate: *faultRate, faultSeed: *faultSeed, wire: *wireFmt,
	}
	err := withProfiles(*cpuProf, *memProf, func() error {
		return run(context.Background(), opts)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecobench:", err)
		os.Exit(1)
	}
}

// withProfiles brackets fn with optional CPU and heap profiling so every
// exit path through run still flushes the profile files.
func withProfiles(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if memPath != "" {
		defer func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecobench: creating -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ecobench: writing heap profile:", err)
			}
		}()
	}
	return fn()
}

// runOpts carries the resolved command-line configuration.
type runOpts struct {
	fig       string
	dataset   string // empty = all profiles
	scale     float64
	seed      int64
	cfg       experiment.RunConfig
	csvPath   string
	jsonPath  string
	commit    string
	faultRate float64
	faultSeed int64
	wire      bool
}

// benchRow is one machine-readable benchmark record of the -json export:
// one method on one dataset under one figure configuration, aggregated over
// repetitions. Rows are comparable across commits via the commit field.
type benchRow struct {
	Commit    string  `json:"commit"`
	GOOS      string  `json:"goos"`
	Workers   int     `json:"workers"`
	Fig       string  `json:"fig"`
	Dataset   string  `json:"dataset"`
	Method    string  `json:"method"`
	Config    string  `json:"config,omitempty"`
	FaultRate float64 `json:"fault_rate"`
	SCPct     float64 `json:"sc_pct"`
	FtMs      float64 `json:"ft_ms"`
	// Encode micro-benchmark of the row's content type (serve figure only):
	// the marshal share of one response in ns, heap bytes, and allocations
	// per operation.
	EncNsOp     float64 `json:"enc_ns_op,omitempty"`
	EncBOp      float64 `json:"enc_b_op,omitempty"`
	EncAllocsOp float64 `json:"enc_allocs_op,omitempty"`
	// Obs is the registry delta of this figure×dataset run (cache traffic,
	// prune counts, pool stats, ...); rows of the same run share it because
	// methods execute interleaved within one scenario pass. benchdiff
	// ignores the field.
	Obs map[string]float64 `json:"obs,omitempty"`
}

// resolveCommit prefers the -commit flag, then the VCS revision stamped into
// the build, then "unknown" (e.g. plain `go run` without VCS stamping).
func resolveCommit(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// figureSpec binds a figure id to its runner and title.
type figureSpec struct {
	id       string
	title    string
	ablation bool // use the ablation printer (shares columns)
	run      func(ctx context.Context, sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error)
}

func figures() []figureSpec {
	return []figureSpec{
		{
			id:    "6",
			title: "Figure 6 — Performance Evaluation (all methods, R=50km Q=5km, equal weights)",
			run:   experiment.RunPerformance,
		},
		{
			id:    "7",
			title: "Figure 7 — R-opt Evaluation (EcoCharge, R ∈ {25, 50, 75} km)",
			run: func(ctx context.Context, sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error) {
				return experiment.RunROpt(ctx, sc, cfg, []float64{25, 50, 75})
			},
		},
		{
			id:    "8",
			title: "Figure 8 — Q-opt Evaluation (EcoCharge, Q ∈ {5, 10, 15} km)",
			run: func(ctx context.Context, sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error) {
				return experiment.RunQOpt(ctx, sc, cfg, []float64{5, 10, 15})
			},
		},
		{
			id:       "9",
			title:    "Figure 9 — Ablation of Weight Parameters (AWE/OSC/OA/ODC)",
			ablation: true,
			run:      experiment.RunAblation,
		},
		{
			id:    "horizon",
			title: "Horizon Sweep — EcoCharge planning h ahead vs a fresh-forecast oracle",
			run: func(ctx context.Context, sc *experiment.Scenario, cfg experiment.RunConfig) ([]experiment.Measurement, error) {
				return experiment.RunHorizonSweep(ctx, sc, cfg, []time.Duration{0, 2 * time.Hour, 6 * time.Hour, 24 * time.Hour})
			},
		},
		{
			id:    "design",
			title: "Design Ablation — EcoCharge variants (cache off / exact intervals)",
			run:   experiment.RunDesignAblation,
		},
	}
}

func run(ctx context.Context, o runOpts) error {
	valid := o.fig == "serve"
	for _, spec := range figures() {
		if o.fig == "all" || o.fig == spec.id {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("unknown figure %q (want one of %s)", o.fig,
			strings.Join([]string{"6", "7", "8", "9", "design", "horizon", "serve", "all"}, ", "))
	}

	var scenarios []*experiment.Scenario
	if o.dataset != "" {
		sc, err := experiment.BuildScenario(o.dataset, o.scale, o.seed)
		if err != nil {
			return err
		}
		scenarios = []*experiment.Scenario{sc}
	} else {
		var err error
		scenarios, err = experiment.BuildAllScenarios(o.scale, o.seed)
		if err != nil {
			return err
		}
	}
	if o.faultRate > 0 {
		// Degrade every scenario environment with the same deterministic
		// policy so methods are compared under identical source outages.
		for _, sc := range scenarios {
			cp := *sc.Env
			cp.Faults = fault.Sources(fault.New(fault.Config{Seed: o.faultSeed, Rate: o.faultRate}))
			sc.Env = &cp
		}
		fmt.Printf("fault injection: rate %g, seed %d\n", o.faultRate, o.faultSeed)
	}
	fmt.Printf("scenarios at scale %g (trips per dataset: ", o.scale)
	for i, sc := range scenarios {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", sc.Name, len(sc.Trips))
	}
	fmt.Println(")")
	fmt.Println()

	var exported []experiment.Measurement
	var rows []benchRow
	if o.fig == "serve" {
		serveRows, err := runServeFig(ctx, scenarios, o)
		if err != nil {
			return err
		}
		return exportResults(o, nil, serveRows)
	}
	commit := resolveCommit(o.commit)
	workers := o.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, spec := range figures() {
		if o.fig != "all" && o.fig != spec.id {
			continue
		}
		var all []experiment.Measurement
		obsByDataset := make(map[string]map[string]float64, len(scenarios))
		for _, sc := range scenarios {
			before := obs.Default().Snapshot()
			ms, err := spec.run(ctx, sc, o.cfg)
			if err != nil {
				return err
			}
			obsByDataset[sc.Name] = obs.DeltaSnapshot(before, obs.Default().Snapshot())
			all = append(all, ms...)
		}
		var err error
		if spec.ablation {
			err = experiment.PrintAblation(os.Stdout, spec.title, all)
		} else {
			err = experiment.PrintFigure(os.Stdout, spec.title, all)
		}
		if err != nil {
			return err
		}
		fmt.Println()
		exported = append(exported, all...)
		for _, m := range all {
			rows = append(rows, benchRow{
				Commit: commit, GOOS: runtime.GOOS, Workers: workers,
				Fig: spec.id, Dataset: m.Dataset, Method: m.Method, Config: m.Config,
				FaultRate: o.faultRate,
				SCPct:     m.SCPercent.Mean, FtMs: m.FtMillis.Mean,
				Obs: obsByDataset[m.Dataset],
			})
		}
	}

	return exportResults(o, exported, rows)
}

// exportResults writes the optional CSV and JSON artifacts. The serve
// figure has no Measurement rows (its unit is an HTTP round trip, not a
// ranking pass), so the CSV export only applies when measurements exist.
func exportResults(o runOpts, exported []experiment.Measurement, rows []benchRow) error {
	if o.csvPath != "" && len(exported) > 0 {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiment.WriteMeasurementsCSV(f, exported); err != nil {
			return fmt.Errorf("exporting CSV: %w", err)
		}
		fmt.Printf("exported %d measurements to %s\n", len(exported), o.csvPath)
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return fmt.Errorf("exporting JSON: %w", err)
		}
		fmt.Printf("exported %d benchmark rows to %s\n", len(rows), o.jsonPath)
	}
	return nil
}

package spatial_test

import (
	"fmt"

	"ecocharge/internal/geo"
	"ecocharge/internal/spatial"
)

// Index three chargers and find the two nearest to a query point.
func ExampleQuadtree_KNN() {
	bounds := geo.BBox{Min: geo.Point{Lat: 53.0, Lon: 8.0}, Max: geo.Point{Lat: 53.2, Lon: 8.4}}
	qt := spatial.NewQuadtree(bounds, 0)
	qt.Insert(spatial.Item{ID: 1, P: geo.Point{Lat: 53.05, Lon: 8.10}})
	qt.Insert(spatial.Item{ID: 2, P: geo.Point{Lat: 53.10, Lon: 8.20}})
	qt.Insert(spatial.Item{ID: 3, P: geo.Point{Lat: 53.18, Lon: 8.35}})

	for _, n := range qt.KNN(geo.Point{Lat: 53.09, Lon: 8.19}, 2) {
		fmt.Printf("charger %d at %.1f km\n", n.ID, n.Dist/1000)
	}
	// Output:
	// charger 2 at 1.3 km
	// charger 1 at 7.5 km
}

package flow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source and returns its graph.
func parseBody(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fd := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fd.Body)
}

// checkInvariants verifies structural properties every graph must hold.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	// Succs/Preds are mirror images.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d -> %d not mirrored in Preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d <- %d not mirrored in Succs", b.Index, p.Index)
			}
		}
	}
	// Exit holds no nodes and has no successors.
	if len(g.Exit.Nodes) != 0 || len(g.Exit.Succs) != 0 {
		t.Errorf("exit block has nodes (%d) or successors (%d)", len(g.Exit.Nodes), len(g.Exit.Succs))
	}
	// A terminating block edges to Exit.
	for _, b := range g.Blocks {
		if b.Term == TermNone {
			continue
		}
		found := false
		for _, s := range b.Succs {
			if s == g.Exit {
				found = true
			}
		}
		if !found {
			t.Errorf("block %d has Term=%d but no edge to Exit", b.Index, b.Term)
		}
	}
}

// reachable reports whether to is reachable from from along Succs edges.
func reachable(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func countTerm(g *Graph, term Term) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Term == term {
			n++
		}
	}
	return n
}

func TestCFGConstruction(t *testing.T) {
	cases := []struct {
		name string
		body string

		returns     int // blocks with TermReturn
		panics      int // blocks with TermPanic
		fallOff     int // blocks with TermFallthrough
		loops       int
		loopExits   []bool // per-loop HasExit, in source order
		defers      int
		nonBlocking int
		exitLive    bool // Exit reachable from Entry
	}{
		{
			name:     "straight line",
			body:     "x := 1\n_ = x\nreturn",
			returns:  1,
			exitLive: true,
		},
		{
			name:     "fall off end",
			body:     "x := 1\n_ = x",
			fallOff:  1,
			exitLive: true,
		},
		{
			name:     "if else both return",
			body:     "if c() {\nreturn\n}\nreturn",
			returns:  2,
			exitLive: true,
		},
		{
			name:     "if without else",
			body:     "if c() {\nwork()\n}\nwork()",
			fallOff:  1,
			exitLive: true,
		},
		{
			name:      "for with condition",
			body:      "for i := 0; i < 10; i++ {\nwork()\n}",
			loops:     1,
			loopExits: []bool{true},
			fallOff:   1,
			exitLive:  true,
		},
		{
			name:      "infinite for",
			body:      "for {\nwork()\n}",
			loops:     1,
			loopExits: []bool{false},
			exitLive:  false,
		},
		{
			name:      "infinite for with break",
			body:      "for {\nif c() {\nbreak\n}\n}",
			loops:     1,
			loopExits: []bool{true},
			fallOff:   1,
			exitLive:  true,
		},
		{
			name:      "infinite for with return",
			body:      "for {\nif c() {\nreturn\n}\n}",
			loops:     1,
			loopExits: []bool{true},
			returns:   1,
			exitLive:  true,
		},
		{
			name:      "range always exits",
			body:      "for _, v := range xs() {\n_ = v\n}",
			loops:     1,
			loopExits: []bool{true},
			fallOff:   1,
			exitLive:  true,
		},
		{
			name:     "switch with default and fallthrough",
			body:     "switch v() {\ncase 1:\nwork()\nfallthrough\ncase 2:\nwork()\ndefault:\nreturn\n}",
			returns:  1,
			fallOff:  1,
			exitLive: true,
		},
		{
			name:     "type switch",
			body:     "switch x().(type) {\ncase int:\nwork()\ncase string:\nreturn\n}",
			returns:  1,
			fallOff:  1,
			exitLive: true,
		},
		{
			name:        "select with default is non-blocking",
			body:        "select {\ncase <-ch():\nwork()\ncase ch() <- 1:\nwork()\ndefault:\n}",
			nonBlocking: 2,
			fallOff:     1,
			exitLive:    true,
		},
		{
			name:        "select without default blocks",
			body:        "select {\ncase <-ch():\nwork()\n}",
			nonBlocking: 0,
			fallOff:     1,
			exitLive:    true,
		},
		{
			name:     "empty select never proceeds",
			body:     "select {}\nwork()",
			exitLive: false,
		},
		{
			name:     "defer and panic",
			body:     "defer work()\npanic(\"boom\")",
			panics:   1,
			defers:   1,
			exitLive: true,
		},
		{
			name:     "os.Exit terminates",
			body:     "work()\nos.Exit(1)",
			panics:   1,
			exitLive: true,
		},
		{
			name:      "labeled break leaves both loops",
			body:      "outer:\nfor {\nfor {\nif c() {\nbreak outer\n}\n}\n}",
			loops:     2,
			loopExits: []bool{true, true},
			fallOff:   1,
			exitLive:  true,
		},
		{
			name:      "unlabeled break leaves inner loop only",
			body:      "for {\nfor {\nif c() {\nbreak\n}\n}\n}",
			loops:     2,
			loopExits: []bool{false, true},
			exitLive:  false,
		},
		{
			name:      "labeled continue",
			body:      "outer:\nfor i := 0; i < 3; i++ {\nfor {\ncontinue outer\n}\n}",
			loops:     2,
			loopExits: []bool{true, true},
			fallOff:   1,
			exitLive:  true,
		},
		{
			name:     "goto backward",
			body:     "top:\nwork()\nif c() {\ngoto top\n}\nreturn",
			returns:  1,
			exitLive: true,
		},
		{
			name:     "goto forward",
			body:     "if c() {\ngoto done\n}\nwork()\ndone:\nreturn",
			returns:  1,
			exitLive: true,
		},
		{
			name:     "unreachable code after return",
			body:     "return\nwork()",
			returns:  1,
			fallOff:  0, // the unreachable tail is dead code, not an exit path
			exitLive: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			checkInvariants(t, g)
			if got := countTerm(g, TermReturn); got != tc.returns {
				t.Errorf("TermReturn blocks = %d, want %d", got, tc.returns)
			}
			if got := countTerm(g, TermPanic); got != tc.panics {
				t.Errorf("TermPanic blocks = %d, want %d", got, tc.panics)
			}
			if got := countTerm(g, TermFallthrough); got != tc.fallOff {
				t.Errorf("TermFallthrough blocks = %d, want %d", got, tc.fallOff)
			}
			if got := len(g.Loops); got != tc.loops {
				t.Errorf("loops = %d, want %d", got, tc.loops)
			}
			if tc.loopExits != nil {
				for i, want := range tc.loopExits {
					if i >= len(g.Loops) {
						break
					}
					if got := g.Loops[i].HasExit(); got != want {
						t.Errorf("loop %d HasExit = %v, want %v", i, got, want)
					}
				}
			}
			if got := len(g.Defers); got != tc.defers {
				t.Errorf("defers = %d, want %d", got, tc.defers)
			}
			if got := len(g.NonBlocking); got != tc.nonBlocking {
				t.Errorf("non-blocking comm ops = %d, want %d", got, tc.nonBlocking)
			}
			if got := reachable(g.Entry, g.Exit); got != tc.exitLive {
				t.Errorf("exit reachable = %v, want %v", got, tc.exitLive)
			}
		})
	}
}

// TestCFGNodesVisitedOnce checks the core Block.Nodes contract: walking
// every block's nodes visits each simple statement exactly once, with
// nested bodies excluded (they live in their own blocks).
func TestCFGNodesVisitedOnce(t *testing.T) {
	g := parseBody(t, `
x := 0
if x > 1 {
	x = 2
} else {
	x = 3
}
for i := 0; i < 4; i++ {
	x += i
}
switch x {
case 5:
	x = 6
}
_ = x
return`)
	checkInvariants(t, g)

	// Collect assignment statements across all blocks; each must appear once.
	seen := map[string]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				key := fmt.Sprintf("%d", as.Pos())
				seen[key]++
			}
		}
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("assignment at pos %s appears %d times in block nodes", key, n)
		}
	}
	// x:=0, x=2, x=3, i:=0 (for init lives in the pre-header block), x+=i,
	// x=6, _=x — seven distinct assignments.
	if len(seen) != 7 {
		t.Errorf("distinct assignments = %d, want 7", len(seen))
	}
}

// TestFuncGraph covers the decl/literal entry points.
func TestFuncGraph(t *testing.T) {
	src := `package p

func decl() { return }

func noBody()

var lit = func() { x := 1; _ = x }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var graphs int
	Functions(file, func(name string, fn ast.Node, body *ast.BlockStmt) {
		g := FuncGraph(fn)
		if g == nil {
			t.Errorf("FuncGraph(%s) = nil", name)
			return
		}
		checkInvariants(t, g)
		graphs++
	})
	if graphs != 2 {
		t.Errorf("functions visited = %d, want 2 (decl with body + literal)", graphs)
	}
}

// TestInspectSkipsFuncLit checks that Inspect yields the literal node but
// not its body.
func TestInspectSkipsFuncLit(t *testing.T) {
	g := parseBody(t, "go func() {\ninner()\n}()\nouter()")
	var sawLit, sawInner, sawOuter bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					sawLit = true
				case *ast.Ident:
					if n.Name == "inner" {
						sawInner = true
					}
					if n.Name == "outer" {
						sawOuter = true
					}
				}
				return true
			})
		}
	}
	if !sawLit || !sawOuter {
		t.Errorf("sawLit=%v sawOuter=%v, want both true", sawLit, sawOuter)
	}
	if sawInner {
		t.Error("Inspect descended into the function literal body")
	}
}

package charger

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// csvHeader is the column layout of the PlugShare-style CSV interchange
// format. Timetables are not part of the CSV (they are regenerated from
// the availability model's seed); JSON round-trips carry them in full.
var csvHeader = []string{"id", "lat", "lon", "node", "rate_kw", "panel_kw", "wind_kw", "plugs"}

// WriteCSV writes the set in the CSV interchange format.
func (s *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, c := range s.chargers {
		rec := []string{
			strconv.FormatInt(c.ID, 10),
			strconv.FormatFloat(c.P.Lat, 'f', 6, 64),
			strconv.FormatFloat(c.P.Lon, 'f', 6, 64),
			strconv.Itoa(int(c.Node)),
			strconv.FormatFloat(c.Rate.KW(), 'f', 1, 64),
			strconv.FormatFloat(c.PanelKW, 'f', 1, 64),
			strconv.FormatFloat(c.WindKW, 'f', 1, 64),
			strconv.Itoa(c.Plugs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the CSV interchange format. Rate classes are recovered
// from the nearest nominal kW value. Rows with malformed fields produce an
// error naming the offending line.
func ReadCSV(r io.Reader) ([]Charger, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("charger: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("charger: CSV header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []Charger
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("charger: CSV line %d: %w", line, err)
		}
		c, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("charger: CSV line %d: %w", line, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func parseCSVRecord(rec []string) (Charger, error) {
	var c Charger
	var err error
	if c.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return c, fmt.Errorf("id: %w", err)
	}
	if c.P.Lat, err = strconv.ParseFloat(rec[1], 64); err != nil {
		return c, fmt.Errorf("lat: %w", err)
	}
	if c.P.Lon, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return c, fmt.Errorf("lon: %w", err)
	}
	if !c.P.Valid() {
		return c, fmt.Errorf("invalid coordinates %v", c.P)
	}
	node, err := strconv.Atoi(rec[3])
	if err != nil {
		return c, fmt.Errorf("node: %w", err)
	}
	c.Node = roadnet.NodeID(node)
	rateKW, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return c, fmt.Errorf("rate_kw: %w", err)
	}
	c.Rate = rateFromKW(rateKW)
	if c.PanelKW, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return c, fmt.Errorf("panel_kw: %w", err)
	}
	if c.PanelKW < 0 {
		return c, fmt.Errorf("negative panel_kw %v", c.PanelKW)
	}
	if c.WindKW, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return c, fmt.Errorf("wind_kw: %w", err)
	}
	if c.WindKW < 0 {
		return c, fmt.Errorf("negative wind_kw %v", c.WindKW)
	}
	if c.Plugs, err = strconv.Atoi(rec[7]); err != nil {
		return c, fmt.Errorf("plugs: %w", err)
	}
	return c, nil
}

// RateFromKW maps a nominal kW back to the nearest rate class. The binary
// wire codec (internal/wire) uses it so both interchange formats recover
// the class identically.
func RateFromKW(kw float64) RateClass { return rateFromKW(kw) }

// rateFromKW maps a nominal kW back to the nearest rate class.
func rateFromKW(kw float64) RateClass {
	best, bestDiff := RateAC11, 1e18
	for r := RateClass(0); r < numRateClasses; r++ {
		d := kw - r.KW()
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = r, d
		}
	}
	return best
}

// chargerJSON is the stable JSON shape of a charger; it decouples the wire
// format from internal field names.
type chargerJSON struct {
	ID        int64          `json:"id"`
	Lat       float64        `json:"lat"`
	Lon       float64        `json:"lon"`
	Node      int32          `json:"node"`
	RateKW    float64        `json:"rate_kw"`
	PanelKW   float64        `json:"panel_kw"`
	WindKW    float64        `json:"wind_kw"`
	Plugs     int            `json:"plugs"`
	Timetable [7][24]float64 `json:"timetable"`
}

// MarshalJSON implements json.Marshaler.
func (c Charger) MarshalJSON() ([]byte, error) {
	return json.Marshal(chargerJSON{
		ID: c.ID, Lat: c.P.Lat, Lon: c.P.Lon, Node: int32(c.Node),
		RateKW: c.Rate.KW(), PanelKW: c.PanelKW, WindKW: c.WindKW, Plugs: c.Plugs,
		Timetable: [7][24]float64(c.Timetable),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Charger) UnmarshalJSON(data []byte) error {
	var j chargerJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	p := geo.Point{Lat: j.Lat, Lon: j.Lon}
	if !p.Valid() {
		return fmt.Errorf("charger: invalid coordinates (%v, %v)", j.Lat, j.Lon)
	}
	*c = Charger{
		ID: j.ID, P: p, Node: roadnet.NodeID(j.Node),
		Rate: rateFromKW(j.RateKW), PanelKW: j.PanelKW, WindKW: j.WindKW, Plugs: j.Plugs,
	}
	c.Timetable = ec.Timetable(j.Timetable)
	return nil
}

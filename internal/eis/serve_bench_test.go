package eis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ecocharge/internal/wire"
)

// BenchmarkServeEncode measures the full in-process serve path — route,
// handle, encode, write — for the hot payloads in both content types. The
// json/wire pairs are the PR 9 regression surface: the binary plane must
// stay well ahead of JSON on both ns/op and B/op.
func BenchmarkServeEncode(b *testing.B) {
	env := testEnv(b)
	srv := NewServer(env, ServerOptions{Clock: func() time.Time { return fixedNow }})
	handler := srv.Handler()
	center := env.Graph.Bounds().Center()

	serve := func(b *testing.B, req *http.Request) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %.200s", rec.Code, rec.Body.Bytes())
			}
		}
	}

	chargersURL := fmt.Sprintf("%s/chargers?lat=%v&lon=%v&radius_m=5000", APIVersion, center.Lat, center.Lon)
	b.Run("chargers/json", func(b *testing.B) {
		serve(b, httptest.NewRequest(http.MethodGet, chargersURL, nil))
	})
	b.Run("chargers/wire", func(b *testing.B) {
		req := httptest.NewRequest(http.MethodGet, chargersURL, nil)
		req.Header.Set("Accept", wire.ContentType)
		serve(b, req)
	})

	oreq := OfferingRequest{Lat: center.Lat, Lon: center.Lon, K: 8, Now: fixedNow}
	jsonBody, err := json.Marshal(oreq)
	if err != nil {
		b.Fatal(err)
	}
	wireBody := wire.AppendOfferingRequest(nil, &oreq)

	// Warm the dynamic cache once so the sub-benchmarks measure the steady
	// state: decode request, cache hit, write the pre-encoded body.
	warm := httptest.NewRequest(http.MethodPost, APIVersion+"/offering", bytes.NewReader(jsonBody))
	warm.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("cache warm-up: status %d: %.200s", rec.Code, rec.Body.Bytes())
	}

	servePost := func(b *testing.B, body []byte, contentType, accept string) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, APIVersion+"/offering", bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			if accept != "" {
				req.Header.Set("Accept", accept)
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %.200s", rec.Code, rec.Body.Bytes())
			}
		}
	}
	b.Run("offering-cached/json", func(b *testing.B) {
		servePost(b, jsonBody, "application/json", "")
	})
	b.Run("offering-cached/wire", func(b *testing.B) {
		servePost(b, wireBody, wire.ContentType, wire.ContentType)
	})
}

//go:build !race

package cknn

const raceEnabled = false

package eis

// Client-resilience tests: retry/backoff/Retry-After against a scripted
// http.RoundTripper (no real server, no real sleeps), circuit-breaker state
// walks on a fake clock, single-flight collapse, and the response-cache
// hygiene (sweep, lazy delete, bounded eviction).

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptStep is one scripted exchange of a scriptTripper.
type scriptStep struct {
	err    error
	status int
	body   string
	header http.Header
}

// scriptTripper replays a fixed sequence of responses; the last step
// repeats once the script is exhausted.
type scriptTripper struct {
	mu    sync.Mutex
	steps []scriptStep
	calls int
}

func (s *scriptTripper) RoundTrip(*http.Request) (*http.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls
	s.calls++
	if i >= len(s.steps) {
		i = len(s.steps) - 1
	}
	st := s.steps[i]
	if st.err != nil {
		return nil, st.err
	}
	h := make(http.Header)
	for k, v := range st.header {
		h[k] = v
	}
	return &http.Response{
		StatusCode: st.status,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(st.body)),
	}, nil
}

func (s *scriptTripper) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// sleepRecorder captures retry delays instead of sleeping.
type sleepRecorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.slept = append(r.slept, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) durations() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.slept...)
}

func scriptedClient(tr *scriptTripper, rec *sleepRecorder, opts ClientOptions) *Client {
	opts.HTTPClient = &http.Client{Transport: tr}
	if rec != nil {
		opts.Sleep = rec.sleep
	}
	return NewClientOpts("http://eis.test", opts)
}

var errBoom = errors.New("connection refused")

func TestClientRetriesTransientFailures(t *testing.T) {
	tr := &scriptTripper{steps: []scriptStep{
		{err: errBoom},
		{status: http.StatusServiceUnavailable, body: `{"error":"overloaded"}`,
			header: http.Header{"Retry-After": []string{"2"}}},
		{status: http.StatusOK, body: `{"multiplier":{}}`},
	}}
	rec := &sleepRecorder{}
	c := scriptedClient(tr, rec, ClientOptions{JitterSeed: 1})
	if _, err := c.Traffic(context.Background(), time.Unix(0, 0)); err != nil {
		t.Fatalf("Traffic after two transient failures: %v", err)
	}
	if got := tr.callCount(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3", got)
	}
	slept := rec.durations()
	if len(slept) != 2 {
		t.Fatalf("recorded %d sleeps, want 2: %v", len(slept), slept)
	}
	// First delay: 100 ms base with jitter in [50%, 100%].
	if slept[0] < 50*time.Millisecond || slept[0] > 100*time.Millisecond {
		t.Errorf("first backoff %v outside the jittered [50ms, 100ms]", slept[0])
	}
	// Second delay: the server's Retry-After overrides the exponential.
	if slept[1] != 2*time.Second {
		t.Errorf("Retry-After ignored: slept %v, want 2s", slept[1])
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	tr := &scriptTripper{steps: []scriptStep{{err: errBoom}}}
	rec := &sleepRecorder{}
	c := scriptedClient(tr, rec, ClientOptions{MaxRetries: 2})
	if _, err := c.Traffic(context.Background(), time.Unix(0, 0)); err == nil {
		t.Fatal("permanently failing endpoint reported success")
	}
	if got := tr.callCount(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestClientDoesNotRetryPOST(t *testing.T) {
	tr := &scriptTripper{steps: []scriptStep{{err: errBoom}}}
	rec := &sleepRecorder{}
	c := scriptedClient(tr, rec, ClientOptions{})
	if _, err := c.Offering(context.Background(), OfferingRequest{Lat: 53, Lon: 8}); err == nil {
		t.Fatal("failed POST reported success")
	}
	if got := tr.callCount(); got != 1 {
		t.Fatalf("non-idempotent POST attempted %d times, want 1", got)
	}
	if s := rec.durations(); len(s) != 0 {
		t.Fatalf("POST slept %v; must not back off", s)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	tr := &scriptTripper{steps: []scriptStep{
		{status: http.StatusNotFound, body: `{"error":"charger 9 not found"}`},
	}}
	c := scriptedClient(tr, &sleepRecorder{}, ClientOptions{})
	_, err := c.Weather(context.Background(), 9, time.Unix(0, 0))
	if err == nil || !strings.Contains(err.Error(), "charger 9 not found") {
		t.Fatalf("server message lost: %v", err)
	}
	if got := tr.callCount(); got != 1 {
		t.Fatalf("terminal 404 attempted %d times, want 1", got)
	}
}

func TestClientNonJSONErrorBody(t *testing.T) {
	tr := &scriptTripper{steps: []scriptStep{
		{status: http.StatusInternalServerError, body: "<html>gateway exploded</html>"},
	}}
	c := scriptedClient(tr, &sleepRecorder{}, ClientOptions{})
	_, err := c.Traffic(context.Background(), time.Unix(0, 0))
	if err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("non-JSON error body mishandled: %v", err)
	}
	if got := tr.callCount(); got != 1 {
		t.Fatalf("500 attempted %d times, want 1 (not in the retryable set)", got)
	}
}

// midBodyCancel is a response body that serves a partial payload, then
// cancels the request context and fails the next read — the deterministic
// form of "the connection died while the body was streaming".
type midBodyCancel struct {
	cancel context.CancelFunc
	sent   bool
}

func (b *midBodyCancel) Read(p []byte) (int, error) {
	if !b.sent {
		b.sent = true
		return copy(p, `{"multiplier":`), nil
	}
	b.cancel()
	return 0, context.Canceled
}

func (b *midBodyCancel) Close() error { return nil }

type midBodyTripper struct {
	cancel context.CancelFunc
	calls  int
}

func (m *midBodyTripper) RoundTrip(*http.Request) (*http.Response, error) {
	m.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     make(http.Header),
		Body:       &midBodyCancel{cancel: m.cancel},
	}, nil
}

// TestClientContextCancelMidBody cancels the request context after the
// response headers arrive but before the body completes: the client must
// surface the read failure promptly and must not retry against a dead
// context.
func TestClientContextCancelMidBody(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &midBodyTripper{cancel: cancel}
	rec := &sleepRecorder{}
	c := NewClientOpts("http://eis.test", ClientOptions{
		HTTPClient: &http.Client{Transport: tr},
		Sleep:      rec.sleep,
	})
	start := time.Now()
	_, err := c.Traffic(ctx, time.Unix(0, 0))
	if err == nil {
		t.Fatal("mid-body cancellation reported success")
	}
	if !strings.Contains(err.Error(), "reading response") {
		t.Errorf("expected a body-read failure, got: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("mid-body cancellation not honored promptly")
	}
	if tr.calls != 1 {
		t.Fatalf("client attempted %d exchanges against a dead context, want 1", tr.calls)
	}
	if s := rec.durations(); len(s) != 0 {
		t.Fatalf("client backed off %v against a dead context", s)
	}
}

func TestClientReportsOversizeExplicitly(t *testing.T) {
	tr := &scriptTripper{steps: []scriptStep{
		{status: http.StatusOK, body: strings.Repeat("x", (8<<20)+5)},
	}}
	c := scriptedClient(tr, &sleepRecorder{}, ClientOptions{})
	_, err := c.Traffic(context.Background(), time.Unix(0, 0))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized body not reported as such: %v", err)
	}
	if got := tr.callCount(); got != 1 {
		t.Fatalf("oversized response attempted %d times, want 1", got)
	}
}

func TestFlightGroupCollapses(t *testing.T) {
	var g flightGroup
	key := cacheKey{cellLat: 1}
	started := make(chan struct{})
	release := make(chan struct{})
	computed := 0
	leaderDone := make(chan OfferingResponse, 1)
	go func() {
		resp, shared, err := g.do(context.Background(), key, func() OfferingResponse {
			close(started)
			<-release
			computed++
			return OfferingResponse{Cached: false, GeneratedAt: fixedNow}
		})
		if err != nil || shared {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
		leaderDone <- resp
	}()
	<-started

	const followers = 4
	var wg sync.WaitGroup
	results := make([]bool, followers)
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, shared, err := g.do(context.Background(), key, func() OfferingResponse {
				t.Error("follower computed despite an in-flight leader")
				return OfferingResponse{}
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i] = shared && resp.GeneratedAt.Equal(fixedNow)
		}()
	}
	// Give followers a moment to park on the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	if computed != 1 {
		t.Fatalf("computed %d times, want 1", computed)
	}
	for i, ok := range results {
		if !ok {
			t.Fatalf("follower %d did not receive the shared leader result", i)
		}
	}
}

func TestFlightGroupFollowerHonorsContext(t *testing.T) {
	var g flightGroup
	key := cacheKey{cellLat: 2}
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = g.do(context.Background(), key, func() OfferingResponse {
			close(started)
			<-release
			return OfferingResponse{}
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.do(ctx, key, func() OfferingResponse { return OfferingResponse{} })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned follower returned %v, want context.Canceled", err)
	}
}

func TestOfferingComputedOnceThenCached(t *testing.T) {
	env := testEnv(t)
	srv := NewServer(env, ServerOptions{Clock: func() time.Time { return fixedNow }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())

	anchor := env.Chargers.All()[0].P
	req := OfferingRequest{Lat: anchor.Lat, Lon: anchor.Lon, K: 3, Now: fixedNow}
	first, err := client.Offering(context.Background(), req)
	if err != nil {
		t.Fatalf("first offering: %v", err)
	}
	if first.Cached {
		t.Error("first response claims to be cached")
	}
	second, err := client.Offering(context.Background(), req)
	if err != nil {
		t.Fatalf("second offering: %v", err)
	}
	if !second.Cached {
		t.Error("second identical request missed the response cache")
	}
	if got := srv.computes.Load(); got != 1 {
		t.Fatalf("server computed %d tables, want 1", got)
	}
}

func TestRespCacheLazyDeleteOnGet(t *testing.T) {
	var c respCache
	key := cacheKey{cellLat: 1, cellLon: 2, k: 3}
	c.put(key, OfferingResponse{}, fixedNow, fixedNow.Add(time.Minute))
	if n := c.entries(); n != 1 {
		t.Fatalf("entries after put: %d", n)
	}
	if _, ok := c.get(key, fixedNow.Add(2*time.Minute)); ok {
		t.Fatal("expired entry served")
	}
	if n := c.entries(); n != 0 {
		t.Fatalf("expired entry not reclaimed on get: %d entries", n)
	}
}

func TestRespCacheSweepReclaimsExpired(t *testing.T) {
	var c respCache
	// Fill with entries that are already expired by the time the second
	// batch arrives; the amortized sweep during batch-2 puts must reclaim
	// them (pre-fix behavior: they stayed forever).
	const dead = 512
	for i := 0; i < dead; i++ {
		c.put(cacheKey{cellLat: int64(i)}, OfferingResponse{}, fixedNow, fixedNow.Add(time.Second))
	}
	later := fixedNow.Add(time.Hour)
	const live = 2048
	for i := 0; i < live; i++ {
		c.put(cacheKey{cellLat: int64(i), cellLon: 1}, OfferingResponse{}, later, later.Add(time.Hour))
	}
	if n := c.entries(); n > live+sweepEvery {
		t.Fatalf("cache holds %d entries; the sweep reclaimed almost none of the %d expired", n, dead)
	}
}

func TestRespCacheBoundedEviction(t *testing.T) {
	c := respCache{maxPerShard: 4}
	for i := 0; i < 500; i++ {
		c.put(cacheKey{cellLat: int64(i)}, OfferingResponse{}, fixedNow, fixedNow.Add(time.Duration(i)*time.Minute))
	}
	if n, bound := c.entries(), 4*respCacheStripes; n > bound {
		t.Fatalf("bounded cache holds %d entries, want at most %d", n, bound)
	}
}

package eis

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by the client without touching the network
// while an endpoint's circuit breaker is open: the endpoint failed
// repeatedly and the cooldown since the last failure has not elapsed.
// Callers can errors.Is against it to distinguish fail-fast from a fresh
// transport failure.
var ErrCircuitOpen = errors.New("eis client: circuit open")

// breakerState is the classic three-state machine.
type breakerState int

const (
	// breakerClosed passes requests through, counting consecutive faults.
	breakerClosed breakerState = iota
	// breakerOpen fails fast until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing and re-opening.
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker. All methods are safe for
// concurrent use. Time is read through the injected clock only, so tests
// drive the cooldown without sleeping.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive faults while closed
	openedAt  time.Time
	probing   bool // half-open: a probe is in flight
	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed. In the open state it either
// fails fast or — once the cooldown has elapsed — transitions to half-open
// and admits a single probe; concurrent requests during the probe fail fast.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		met.breakerHalfOpen.Inc()
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// onSuccess records a fault-free exchange: it closes the breaker from any
// state and clears the fault count.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		met.breakerClosed.Inc()
	}
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a fault: the threshold-th consecutive fault opens a
// closed breaker, and a failed half-open probe re-opens immediately.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		met.breakerOpened.Inc()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			met.breakerOpened.Inc()
		}
	case breakerOpen:
		// A request admitted before the state flipped lost its race; the
		// breaker is already open, refresh nothing.
	}
}

// snapshot returns the state for tests and diagnostics.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Breaker is the exported form of the circuit breaker so layers above the
// EIS client can reuse the same state machine against their own failure
// domains — the fleet gateway keys one per shard host, feeding it active
// probe outcomes and passive per-request failures. It shares every
// transition rule (and the transition metrics) with the per-endpoint
// breakers inside Client.
type Breaker struct {
	b *breaker
}

// NewBreaker returns a breaker that opens after threshold consecutive
// faults and admits a half-open probe once cooldown has elapsed, reading
// time through now. Zero/nil arguments select the client defaults
// (threshold 5, cooldown 5 s, time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	return &Breaker{b: newBreaker(threshold, cooldown, now)}
}

// Allow reports whether a request may proceed; ErrCircuitOpen means fail
// fast. In the half-open state exactly one caller is admitted as the probe;
// every Allow that returned nil must be followed by OnSuccess or OnFailure,
// or the probe slot leaks and the breaker stays half-open.
func (b *Breaker) Allow() error { return b.b.allow() }

// OnSuccess records a fault-free exchange (closes the breaker).
func (b *Breaker) OnSuccess() { b.b.onSuccess() }

// OnFailure records a fault (the threshold-th opens the breaker; a failed
// half-open probe re-opens it).
func (b *Breaker) OnFailure() { b.b.onFailure() }

// Open reports whether the breaker currently fails fast. It is a read-only
// snapshot — unlike Allow it never consumes the half-open probe slot — so
// health surfaces can poll it freely.
func (b *Breaker) Open() bool { return b.b.snapshot() == breakerOpen }

// State renders the current state for diagnostics: "closed", "open" or
// "half-open".
func (b *Breaker) State() string {
	switch b.b.snapshot() {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

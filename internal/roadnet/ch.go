package roadnet

import (
	"math"
	"sort"
)

// ContractionHierarchy is a preprocessing structure for fast repeated
// point-to-point queries under a fixed weight function: nodes are
// contracted in importance order, shortcut edges preserve shortest-path
// distances, and queries run a bidirectional upward search that touches a
// tiny fraction of the graph. EcoCharge's derouting component prices many
// point pairs against the same network; a production deployment
// preprocesses once per traffic epoch and serves queries from the
// hierarchy.
//
// Build with BuildCH (expensive, run offline); Query is safe for
// concurrent use afterwards.
type ContractionHierarchy struct {
	g     *Graph
	w     WeightFunc
	order []int32 // contraction rank per node; higher = more important

	// Upward adjacency: edges (original or shortcut) to higher-ranked nodes.
	up   [][]chEdge
	down [][]chEdge // reverse: for the backward search
}

type chEdge struct {
	to     NodeID
	weight float64
}

// BuildCH preprocesses the graph under the weight function. The node
// ordering uses the edge-difference heuristic with lazy updates — standard
// practice, adequate for the graph sizes of this repository.
func BuildCH(g *Graph, w WeightFunc) *ContractionHierarchy {
	g.mustFrozen()
	n := g.NumNodes()
	ch := &ContractionHierarchy{g: g, w: w, order: make([]int32, n)}

	// Working adjacency with shortcuts accumulated during contraction.
	type dynEdge struct {
		to     NodeID
		weight float64
	}
	fwd := make([][]dynEdge, n)
	bwd := make([][]dynEdge, n)
	for _, e := range g.Edges() {
		wt := w(e)
		if wt < 0 {
			panic("roadnet: negative edge weight")
		}
		fwd[e.From] = append(fwd[e.From], dynEdge{to: e.To, weight: wt})
		bwd[e.To] = append(bwd[e.To], dynEdge{to: e.From, weight: wt})
	}
	contracted := make([]bool, n)

	// witnessSearch reports whether a path from src to dst avoiding `skip`
	// exists with weight ≤ limit (bounded Dijkstra on the remaining graph).
	witnessSearch := func(src, dst NodeID, skip NodeID, limit float64) bool {
		if src == dst {
			return true
		}
		// Offline preprocessing: a tiny bounded search over the shrinking
		// dynamic graph, so the map is fine here — only the query path is hot.
		//ecolint:ignore hotalloc offline preprocessing, not on the query path
		dist := map[NodeID]float64{src: 0}
		var pq heap4
		pq.push(src, 0)
		settled := 0
		for len(pq.items) > 0 && settled < 80 { // bounded effort: misses cost only extra shortcuts
			cur := pq.pop()
			if cur.prio > dist[cur.node] {
				continue
			}
			if cur.node == dst {
				return true
			}
			if cur.prio > limit {
				return false
			}
			settled++
			for _, e := range fwd[cur.node] {
				if e.to == skip || contracted[e.to] {
					continue
				}
				nd := cur.prio + e.weight
				if nd > limit {
					continue
				}
				if old, ok := dist[e.to]; !ok || nd < old {
					dist[e.to] = nd
					pq.push(e.to, nd)
				}
			}
		}
		return false
	}

	// edgeDifference simulates contracting v: shortcuts needed − edges removed.
	simulate := func(v NodeID, insert bool) int {
		shortcuts := 0
		for _, in := range bwd[v] {
			if contracted[in.to] {
				continue
			}
			for _, out := range fwd[v] {
				if contracted[out.to] || in.to == out.to {
					continue
				}
				via := in.weight + out.weight
				if !witnessSearch(in.to, out.to, v, via) {
					shortcuts++
					if insert {
						fwd[in.to] = append(fwd[in.to], dynEdge{to: out.to, weight: via})
						bwd[out.to] = append(bwd[out.to], dynEdge{to: in.to, weight: via})
					}
				}
			}
		}
		degree := 0
		for _, e := range fwd[v] {
			if !contracted[e.to] {
				degree++
			}
		}
		for _, e := range bwd[v] {
			if !contracted[e.to] {
				degree++
			}
		}
		return shortcuts - degree
	}

	// Initial priority queue by edge difference, lazily re-evaluated.
	type rankItem struct {
		node NodeID
		prio int
	}
	items := make([]rankItem, n)
	for i := range items {
		items[i] = rankItem{node: NodeID(i), prio: simulate(NodeID(i), false)}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].prio < items[j].prio })
	queue := items

	rank := int32(0)
	for len(queue) > 0 {
		// Lazy update: re-evaluate the head; if it is no longer best,
		// re-insert and try again.
		head := queue[0]
		queue = queue[1:]
		if contracted[head.node] {
			continue
		}
		cur := simulate(head.node, false)
		if len(queue) > 0 && cur > queue[0].prio {
			// Re-insert in order.
			idx := sort.Search(len(queue), func(i int) bool { return queue[i].prio >= cur })
			queue = append(queue, rankItem{})
			copy(queue[idx+1:], queue[idx:])
			queue[idx] = rankItem{node: head.node, prio: cur}
			continue
		}
		simulate(head.node, true) // insert shortcuts for real
		contracted[head.node] = true
		ch.order[head.node] = rank
		rank++
	}

	// Assemble upward/downward adjacency from the final dynamic graph.
	ch.up = make([][]chEdge, n)
	ch.down = make([][]chEdge, n)
	for v := 0; v < n; v++ {
		for _, e := range fwd[v] {
			if ch.order[e.to] > ch.order[v] {
				ch.up[v] = append(ch.up[v], chEdge{to: e.to, weight: e.weight})
			}
		}
		for _, e := range bwd[v] {
			if ch.order[e.to] > ch.order[v] {
				ch.down[v] = append(ch.down[v], chEdge{to: e.to, weight: e.weight})
			}
		}
	}
	// Deduplicate parallel edges keeping the cheapest (shortcut insertion
	// can add dominated parallels).
	dedup := func(edges []chEdge) []chEdge {
		if len(edges) < 2 {
			return edges
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].to != edges[j].to {
				return edges[i].to < edges[j].to
			}
			return edges[i].weight < edges[j].weight
		})
		out := edges[:1]
		for _, e := range edges[1:] {
			if e.to != out[len(out)-1].to {
				out = append(out, e)
			}
		}
		return out
	}
	for v := 0; v < n; v++ {
		ch.up[v] = dedup(ch.up[v])
		ch.down[v] = dedup(ch.down[v])
	}
	return ch
}

// Query returns the shortest-path weight from src to dst, or +Inf when
// unreachable. It runs the standard CH bidirectional upward search.
func (ch *ContractionHierarchy) Query(src, dst NodeID) float64 {
	n := len(ch.order)
	if int(src) < 0 || int(src) >= n || int(dst) < 0 || int(dst) >= n {
		return math.Inf(1)
	}
	if src == dst {
		return 0
	}
	stF := ch.g.acquireState()
	defer stF.release()
	stB := ch.g.acquireState()
	defer stB.release()
	best := math.Inf(1)

	search := func(st *searchState, start NodeID, adj [][]chEdge, other *searchState) {
		st.dist[start] = 0
		st.seen[start] = st.stamp
		st.pq.push(start, 0)
		for len(st.pq.items) > 0 {
			cur := st.pq.pop()
			if cur.prio > st.dist[cur.node] {
				continue
			}
			if cur.prio >= best {
				break // nothing cheaper can meet
			}
			if other != nil && other.seen[cur.node] == other.stamp {
				if total := cur.prio + other.dist[cur.node]; total < best {
					best = total
				}
			}
			for _, e := range adj[cur.node] {
				nd := cur.prio + e.weight
				if st.seen[e.to] != st.stamp || nd < st.dist[e.to] {
					st.dist[e.to] = nd
					st.seen[e.to] = st.stamp
					st.pq.push(e.to, nd)
				}
			}
		}
	}
	// Forward upward search, then backward; the meeting check needs both
	// searches, so run forward fully first (graphs here are small), then
	// backward with meeting tests against the forward state.
	search(stF, src, ch.up, nil)
	search(stB, dst, ch.down, stF)
	return best
}

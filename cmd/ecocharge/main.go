// Command ecocharge runs the EcoCharge framework over one scheduled trip of
// a dataset scenario and prints the Offering Table of every path segment,
// followed by the CkNN-EC split list — the closest terminal equivalent of
// the mobile GUI of the paper's Fig. 5.
//
// Example:
//
//	ecocharge -dataset Oldenburg -trip 2 -k 3 -r 50 -q 5
package main

import (
	"flag"
	"fmt"
	"os"

	"ecocharge/internal/cknn"
	"ecocharge/internal/experiment"
	"ecocharge/internal/render"
	"ecocharge/internal/trajectory"
)

func main() {
	var (
		dataset = flag.String("dataset", "Oldenburg", "dataset profile: Oldenburg, California, T-drive, Geolife")
		scale   = flag.Float64("scale", 0.005, "trip-count scale relative to the paper's full dataset")
		seed    = flag.Int64("seed", 42, "scenario seed")
		tripIdx = flag.Int("trip", 0, "index of the trip to evaluate")
		k       = flag.Int("k", 3, "chargers per Offering Table")
		radius  = flag.Float64("r", 50, "search radius R in km")
		reuse   = flag.Float64("q", 5, "cache reuse distance Q in km")
		segLen  = flag.Float64("seg", 4, "trip segment length in km")
		wL      = flag.Float64("wl", 1, "weight of sustainable charging level L")
		wA      = flag.Float64("wa", 1, "weight of availability A")
		wD      = flag.Float64("wd", 1, "weight of derouting cost D")
		svgOut  = flag.String("svg", "", "write a map of the trip and recommendations to this SVG file")
	)
	flag.Parse()

	if err := run(*dataset, *scale, *seed, *tripIdx, *k, *radius, *reuse, *segLen, cknn.Weights{L: *wL, A: *wA, D: *wD}, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "ecocharge:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, tripIdx, k int, radiusKM, reuseKM, segKM float64, w cknn.Weights, svgOut string) error {
	if err := w.Validate(); err != nil {
		return err
	}
	sc, err := experiment.BuildScenario(dataset, scale, seed)
	if err != nil {
		return err
	}
	if tripIdx < 0 || tripIdx >= len(sc.Trips) {
		return fmt.Errorf("trip index %d out of range (have %d trips)", tripIdx, len(sc.Trips))
	}
	trip := sc.Trips[tripIdx]
	fmt.Printf("dataset %s: %d nodes, %d edges, %d chargers, %d trips\n",
		sc.Name, sc.Graph.NumNodes(), sc.Graph.NumEdges(), sc.Env.Chargers.Len(), len(sc.Trips))
	fmt.Printf("trip %d: %.1f km, departs %s\n\n",
		trip.ID, trip.Path.Weight/1000, trip.Depart.Format("15:04"))

	method := cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{
		RadiusM:    radiusKM * 1000,
		ReuseDistM: reuseKM * 1000,
	})
	opts := cknn.TripOptions{K: k, SegmentLenM: segKM * 1000, RadiusM: radiusKM * 1000, Weights: w}
	results := cknn.RunTrip(sc.Env, method, trip, opts)

	for _, r := range results {
		src := "computed"
		if r.Table.Adapted {
			src = "adapted from cache"
		}
		fmt.Printf("segment %d (%.1f km, ETA %s) — Offering Table (%s):\n",
			r.Segment.Index, r.Segment.LengthM/1000, r.Segment.ETA.Format("15:04"), src)
		for rank, e := range r.Table.Entries {
			fmt.Printf("  %d. charger %-4d %-9s SC=%s  L=%s A=%s D=%s  ETA %s  derout %.1f min\n",
				rank+1, e.Charger.ID, e.Charger.Rate,
				e.SC, e.Comp.L, e.Comp.A, e.Comp.D,
				e.Comp.ETA.Format("15:04"), e.Comp.DeroutSecM/60)
		}
		fmt.Println()
	}

	sl := cknn.RefineSplitPoints(sc.Env, method, trip, opts, cknn.RefineOptions{})
	fmt.Printf("split list (%d split points, bisection-refined):\n", len(sl))
	for _, sp := range sl {
		fmt.Printf("  from %s (segment %d, ETA %s): NN = %v\n",
			sp.P, sp.SegmentIndex, sp.ETA.Format("15:04"), sp.NN)
	}

	// Commit to the last segment's top charger and show the route change.
	last := results[len(results)-1]
	if top, ok := last.Table.Top(); ok {
		plan, err := cknn.PlanDetour(sc.Env, trip, last.Segment, top)
		if err != nil {
			return fmt.Errorf("planning detour: %w", err)
		}
		fmt.Printf("\ncommitting to charger %d (%s): %.1f km detour leg, arrive %s, extra travel %.1f–%.1f min\n",
			plan.Charger.ID, plan.Charger.Rate,
			sc.Graph.LengthMeters(plan.ToCharger)/1000,
			plan.ArriveAt.Format("15:04"),
			plan.ExtraSecondsMin/60, plan.ExtraSecondsMax/60)
	}

	hits, misses := method.Stats()
	fmt.Printf("cache: %d hits, %d misses\n", hits, misses)

	if svgOut != "" {
		if err := writeMap(sc.Env, trip, results, sl, svgOut); err != nil {
			return fmt.Errorf("writing SVG: %w", err)
		}
		fmt.Printf("map written to %s\n", svgOut)
	}
	return nil
}

// writeMap renders the trip, the first segment's Offering Table and the
// split points to an SVG file.
func writeMap(env *cknn.Env, trip trajectory.Trip, results []cknn.SegmentResult, sl []cknn.SplitPoint, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m := render.NewMap(env.Graph.Bounds(), render.Options{WidthPx: 1200, MaxEdges: 6000})
	m.AddRoadNetwork(env.Graph)
	m.AddChargers(env.Chargers)
	m.AddTrip(env.Graph, trip.Path)
	if len(results) > 0 {
		m.AddOfferingTable(results[0].Table)
	}
	m.AddSplitPoints(sl)
	if err := m.WriteSVG(f); err != nil {
		return err
	}
	return f.Close()
}

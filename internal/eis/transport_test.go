package eis

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransportConnectionReuse is the load-readiness regression test: N
// sequential waves of concurrent requests through DefaultTransport must
// reuse connections instead of re-dialing. The stdlib default transport
// keeps only 2 idle connections per host, so at concurrency 8 it dials on
// almost every wave — if this test starts failing, load results measure
// TCP handshakes again.
func TestTransportConnectionReuse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer ts.Close()

	const concurrency, waves = 8, 5
	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: DefaultTransport(concurrency, false),
	}

	var dials, reused atomic.Int64
	trace := &httptrace.ClientTrace{
		ConnectStart: func(_, _ string) { dials.Add(1) },
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				reused.Add(1)
			}
		},
	}
	do := func() error {
		req, err := http.NewRequestWithContext(
			httptrace.WithClientTrace(context.Background(), trace),
			http.MethodGet, ts.URL, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		// Drain before closing: an unread body forfeits the connection.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil
	}

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		errs := make(chan error, concurrency)
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs <- do()
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	total := int64(concurrency * waves)
	// The first wave may dial up to `concurrency` connections; every later
	// wave must come out of the idle pool. Allow slack for requests racing
	// the pool, but the stdlib default's behavior (re-dialing most of every
	// wave, ~30+ dials here) must stay far out of reach.
	if d := dials.Load(); d > concurrency+2 {
		t.Fatalf("%d dials for %d requests at concurrency %d — idle connections are not being reused", d, total, concurrency)
	}
	if r := reused.Load(); r < total-int64(concurrency)-2 {
		t.Fatalf("only %d of %d requests reused a connection", r, total)
	}
}

// TestTransportKnobs pins the tuning contract: per-host idle capacity
// follows the requested concurrency (floored at 2), and compression is
// disabled exactly on the wire plane.
func TestTransportKnobs(t *testing.T) {
	tr := DefaultTransport(64, true)
	if tr.MaxIdleConnsPerHost != 64 {
		t.Fatalf("MaxIdleConnsPerHost=%d, want 64", tr.MaxIdleConnsPerHost)
	}
	if !tr.DisableCompression {
		t.Fatal("wire transport must disable transparent compression")
	}
	if tr := DefaultTransport(0, false); tr.MaxIdleConnsPerHost != 2 || tr.DisableCompression {
		t.Fatalf("floor transport misconfigured: perHost=%d compressionDisabled=%v", tr.MaxIdleConnsPerHost, tr.DisableCompression)
	}
	// The zero-config client picks the tuned transport up.
	opts := ClientOptions{Wire: true}.withDefaults()
	ht, ok := opts.HTTPClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", opts.HTTPClient.Transport)
	}
	if ht.MaxIdleConnsPerHost < 8 || !ht.DisableCompression {
		t.Fatalf("default wire client transport not load-ready: perHost=%d compressionDisabled=%v", ht.MaxIdleConnsPerHost, ht.DisableCompression)
	}
}

package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ecocharge/internal/cknn"
	"ecocharge/internal/stats"
	"ecocharge/internal/trajectory"
)

// RunHorizonSweep measures what the "estimated" in Estimated Components
// costs: the same EcoCharge queries are answered with forecasts issued
// progressively earlier (larger horizons mean wider L/A/D intervals), and
// each answer is scored against ground truth and against a brute-force
// oracle that also plans at the same horizon. As the horizon grows the
// intervals widen, the eq. 6 intersection gets less informative, and SC%
// decays — quantifying the paper's premise that forecast quality bounds
// recommendation quality. Repetitions of each horizon run concurrently on
// the config's worker pool and are folded in repetition order.
func RunHorizonSweep(ctx context.Context, sc *Scenario, cfg RunConfig, horizons []time.Duration) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if len(sc.Trips) == 0 {
		return nil, fmt.Errorf("experiment: scenario %s has no trips", sc.Name)
	}
	if len(horizons) == 0 {
		horizons = []time.Duration{0, 2 * time.Hour, 6 * time.Hour, 24 * time.Hour}
	}
	engine := cknn.Engine{Env: sc.Env}

	var out []Measurement
	for _, h := range horizons {
		type repOut struct {
			truthSum, denom float64
			ftMS            []float64
			queries         int
		}
		outs := make([]repOut, cfg.Repetitions)
		err := forEachCell(ctx, cfg.Repetitions, cfg.Workers, func(rep int) {
			rng := rand.New(rand.NewSource(sc.Seed*1000 + int64(rep)))
			trips := sampleTrips(rng, sc.Trips, cfg.TripsPerRep)
			method := cknn.NewEcoCharge(sc.Env, cknn.EcoChargeOptions{
				RadiusM: cfg.RadiusM, ReuseDistM: cfg.ReuseDistM,
			})
			oracle := cknn.NewBruteForce(sc.Env)
			var o repOut
			for _, trip := range trips {
				method.Reset()
				segs := trajectory.SegmentTrip(sc.Graph, trip, cfg.SegmentLenM)
				for _, seg := range segs {
					q := cknn.QueryForSegment(trip, seg, cknn.TripOptions{
						K: cfg.K, SegmentLenM: cfg.SegmentLenM, RadiusM: cfg.RadiusM, Weights: cfg.Weights,
					})
					// EcoCharge plans with forecasts issued h before
					// departure (wider intervals); the oracle plans with
					// fresh forecasts. The gap is the price of planning
					// ahead.
					qOld := q
					qOld.Now = trip.Depart.Add(-h)
					start := time.Now()
					table := method.Rank(qOld)
					o.ftMS = append(o.ftMS, float64(time.Since(start))/float64(time.Millisecond))
					o.queries++
					tm := engine.TruthMaps(q)
					for _, e := range table.Entries {
						if v, ok := engine.TruthSC(q, tm, e.Charger); ok {
							o.truthSum += v
						}
					}
					for _, e := range oracle.Rank(q).Entries {
						if v, ok := engine.TruthSC(q, tm, e.Charger); ok {
							o.denom += v
						}
					}
				}
			}
			outs[rep] = o
		})
		if err != nil {
			return nil, err
		}
		scPct := make([]float64, 0, cfg.Repetitions)
		ft := make([]float64, 0, cfg.Repetitions)
		queries := 0
		for _, o := range outs {
			if o.denom > 0 {
				scPct = append(scPct, o.truthSum/o.denom*100)
			}
			ft = append(ft, stats.Mean(o.ftMS))
			queries += o.queries
		}
		out = append(out, Measurement{
			Dataset:   sc.Name,
			Method:    "EcoCharge",
			Config:    fmt.Sprintf("horizon=%s", h),
			SCPercent: stats.Summarize(scPct),
			FtMillis:  stats.Summarize(ft),
			Queries:   queries,
		})
	}
	return out, nil
}

// Command loadgen is the open-loop load harness: it drives synthetic trip
// traffic (streamed from the Brinkhoff-style generator of a dataset
// profile) against a gateway or single EIS — or an in-process 3-shard
// fleet it starts itself — and reports coordinated-omission-safe latency
// (measured from *intended* send time), goodput of tabletest-valid
// answers, shed rate, and contract violations per rate step.
//
// A rate sweep locates the saturation knee:
//
//	loadgen -inproc -profile Oldenburg -scale 0.005 \
//	        -rate-sweep 50,100,200,400,800 -step-duration 2s -json knee.json
//
// Against a running fleet:
//
//	loadgen -target http://localhost:8080 -plane wire -rate 200 -step-duration 10s
//
// The -json export is benchdiff-comparable (fig "load-knee"), so a knee
// profile commits to CI like any BENCH_*.json artifact. Exit status: 0 on
// a clean run, 1 when any response violated the overload contract
// (non-tabletest-valid 200, 503 without Retry-After, corrupt body), 2 on
// setup errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ecocharge/internal/experiment"
	"ecocharge/internal/load"
	"ecocharge/internal/trajectory"
	"ecocharge/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		target      = flag.String("target", "", "base URL of a gateway or EIS; empty starts the in-process fleet")
		inprocN     = flag.Int("shards", 3, "shard count of the in-process fleet")
		maxInFlight = flag.Int("max-in-flight", 0, "per-shard in-flight cap of the in-process fleet (0 = no shedding)")
		profileName = flag.String("profile", "Oldenburg", "dataset profile driving the trip stream")
		scale       = flag.Float64("scale", 0.005, "environment scale of the in-process fleet")
		seed        = flag.Int64("seed", 42, "seed of trips and arrival schedules")
		planeArg    = flag.String("plane", "both", "interchange plane: json, wire, or both")
		arrivals    = flag.String("arrivals", "poisson", "arrival process: poisson or constant")
		rate        = flag.Float64("rate", 100, "arrival rate (requests/s) when -rate-sweep is not given")
		sweep       = flag.String("rate-sweep", "", "comma-separated rates to sweep for the knee report (e.g. 50,100,200,400)")
		stepDur     = flag.Duration("step-duration", 2*time.Second, "nominal duration of one rate step (arrivals = rate × duration)")
		workers     = flag.Int("workers", 64, "sender pool size (bounds in-flight requests)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		k           = flag.Int("k", 5, "offering table size requested")
		radiusM     = flag.Float64("radius-m", 0, "search radius in meters (0 = server default)")
		vehicles    = flag.Int("vehicles", 256, "concurrent trip sessions queries rotate across")
		segLenM     = flag.Float64("seg-len-m", 4000, "trip segment length (one query per segment)")
		closedLoop  = flag.Bool("closed-loop", false, "closed-loop control mode: latency from actual send (coordinated-omission-UNSAFE; for comparison only)")
		jsonPath    = flag.String("json", "", "write benchdiff-comparable rows to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rates, err := parseRates(*sweep, *rate)
	if err != nil {
		return fatal(err)
	}
	planes, err := parsePlanes(*planeArg)
	if err != nil {
		return fatal(err)
	}
	profile, err := trajectory.ProfileByName(*profileName)
	if err != nil {
		return fatal(err)
	}
	scen, err := experiment.BuildScenarioFromProfile(profile, *scale, *seed)
	if err != nil {
		return fatal(err)
	}

	base, targetName := *target, "remote"
	if base == "" {
		ip, err := load.StartInproc(scen.Env, load.InprocOptions{
			Shards:      *inprocN,
			MaxInFlight: *maxInFlight,
			WireShards:  true,
		})
		if err != nil {
			return fatal(err)
		}
		defer ip.Close()
		base, targetName = ip.URL, "gateway"
		fmt.Printf("loadgen: in-process fleet of %d shards at %s (%s scale %v, %d chargers)\n",
			*inprocN, base, profile.Name, *scale, scen.Env.Chargers.Len())
	}

	var steps []load.Result
	violations := 0
	for _, plane := range planes {
		runner, err := load.NewRunner(load.Options{
			BaseURL: base,
			Plane:   plane,
			K:       *k,
			RadiusM: *radiusM,
			Weights: wire.WeightsJSON{},
			Now:     scen.Start,
			Timeout: *timeout,
			Workers: *workers,

			ClosedLoop: *closedLoop,
		})
		if err != nil {
			return fatal(err)
		}
		// Per-plane sampler with the same seed: both planes offer the
		// byte-identical query stream, so their steps compare like for like.
		sampler, err := trajectory.NewSampler(scen.Graph, profile.SamplerConfig(*seed, scen.Start))
		if err != nil {
			return fatal(err)
		}
		sessions, err := load.NewSessions(scen.Graph, sampler, *vehicles, *segLenM)
		if err != nil {
			return fatal(err)
		}
		for si, hz := range rates {
			n := int(hz * stepDur.Seconds())
			if n < 1 {
				n = 1
			}
			sched, err := buildSchedule(*arrivals, hz, n, *seed+int64(si))
			if err != nil {
				return fatal(err)
			}
			res, err := runner.Run(ctx, sessions, sched, hz)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %s rate %.0f: %v\n", plane, hz, err)
				return 2
			}
			steps = append(steps, res)
			violations += res.Invalid
			fmt.Printf("loadgen: %-4s rate %6.0f/s: %d offered, %d valid, p99 %v, goodput %.1f/s\n",
				plane, hz, res.Offered, res.Valid, res.Latency.Quantile(0.99).Round(100*time.Microsecond), res.Goodput())
		}
	}

	fmt.Println()
	if err := load.WriteReport(os.Stdout, steps); err != nil {
		return fatal(err)
	}
	if idx, ok := load.Knee(steps); ok {
		fmt.Printf("\nknee: %.0f req/s (%s plane) sustained with goodput %.1f/s\n",
			steps[idx].RateHz, steps[idx].Plane, steps[idx].Goodput())
	} else {
		fmt.Println("\nknee: not reached — every step saturated; sweep lower rates")
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fatal(err)
		}
		werr := load.WriteJSONRows(f, load.BenchRows(profile.Name, targetName, steps))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fatal(werr)
		}
		fmt.Printf("loadgen: wrote %s\n", *jsonPath)
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d responses violated the overload contract\n", violations)
		return 1
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	return 2
}

func parseRates(sweep string, single float64) ([]float64, error) {
	if strings.TrimSpace(sweep) == "" {
		if single <= 0 {
			return nil, fmt.Errorf("-rate must be positive")
		}
		return []float64{single}, nil
	}
	var out []float64
	for _, part := range strings.Split(sweep, ",") {
		hz, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || hz <= 0 {
			return nil, fmt.Errorf("bad -rate-sweep entry %q", part)
		}
		out = append(out, hz)
	}
	return out, nil
}

func parsePlanes(arg string) ([]load.Plane, error) {
	switch arg {
	case "json":
		return []load.Plane{load.PlaneJSON}, nil
	case "wire":
		return []load.Plane{load.PlaneWire}, nil
	case "both":
		return []load.Plane{load.PlaneJSON, load.PlaneWire}, nil
	}
	return nil, fmt.Errorf("unknown -plane %q (json, wire, both)", arg)
}

func buildSchedule(kind string, hz float64, n int, seed int64) (load.Schedule, error) {
	switch kind {
	case "poisson":
		return load.Poisson(hz, n, seed)
	case "constant":
		return load.Constant(hz, n)
	}
	return nil, fmt.Errorf("unknown -arrivals %q (poisson, constant)", kind)
}

package roadnet

import (
	"container/heap"
	"math"
)

// BidirectionalShortestPath runs Dijkstra simultaneously from src (forward)
// and dst (backward on the reverse graph), terminating when the frontiers
// guarantee the best meeting point is settled. For point-to-point detour
// costing it explores roughly half the nodes plain Dijkstra would.
// Results are identical to ShortestPath.
func (g *Graph) BidirectionalShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	g.mustFrozen()
	if !g.validID(src) || !g.validID(dst) {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}, Weight: 0}, true
	}

	distF := map[NodeID]float64{src: 0}
	distB := map[NodeID]float64{dst: 0}
	prevF := make(map[NodeID]NodeID)
	prevB := make(map[NodeID]NodeID)
	doneF := make(map[NodeID]bool)
	doneB := make(map[NodeID]bool)
	pqF := &spHeap{{node: src, prio: 0}}
	pqB := &spHeap{{node: dst, prio: 0}}

	best := math.Inf(1)
	var meet NodeID = Invalid

	relaxF := func(cur NodeID) {
		for _, ei := range g.adj[cur] {
			e := g.edges[ei]
			wt := w(e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := distF[cur] + wt
			if old, ok := distF[e.To]; !ok || nd < old {
				distF[e.To] = nd
				prevF[e.To] = cur
				heap.Push(pqF, spItem{node: e.To, prio: nd})
			}
			if db, ok := distB[e.To]; ok {
				if total := nd + db; total < best {
					best = total
					meet = e.To
				}
			}
		}
	}
	relaxB := func(cur NodeID) {
		for _, ei := range g.radj[cur] {
			e := g.edges[ei]
			wt := w(e)
			if wt < 0 {
				panic("roadnet: negative edge weight")
			}
			nd := distB[cur] + wt
			if old, ok := distB[e.From]; !ok || nd < old {
				distB[e.From] = nd
				prevB[e.From] = cur
				heap.Push(pqB, spItem{node: e.From, prio: nd})
			}
			if df, ok := distF[e.From]; ok {
				if total := df + nd; total < best {
					best = total
					meet = e.From
				}
			}
		}
	}

	for pqF.Len() > 0 || pqB.Len() > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if pqF.Len() > 0 {
			topF = (*pqF)[0].prio
		}
		if pqB.Len() > 0 {
			topB = (*pqB)[0].prio
		}
		// Standard stopping criterion: once the sum of the two frontiers'
		// minima reaches the best known meeting cost, no better path exists.
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			cur := heap.Pop(pqF).(spItem)
			if doneF[cur.node] {
				continue
			}
			doneF[cur.node] = true
			relaxF(cur.node)
		} else {
			cur := heap.Pop(pqB).(spItem)
			if doneB[cur.node] {
				continue
			}
			doneB[cur.node] = true
			relaxB(cur.node)
		}
	}
	if meet == Invalid {
		return Path{}, false
	}

	// Stitch: src→meet from the forward tree, meet→dst from the backward.
	forward := reconstruct(prevF, src, meet)
	if forward == nil {
		return Path{}, false
	}
	nodes := forward
	for at := meet; at != dst; {
		next, ok := prevB[at]
		if !ok {
			return Path{}, false
		}
		nodes = append(nodes, next)
		at = next
	}
	return Path{Nodes: nodes, Weight: best}, true
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecocharge/internal/cknn"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build is slow")
	}
	svg := filepath.Join(t.TempDir(), "trip.svg")
	err := run("Oldenburg", 0.0005, 1, 0, 3, 20, 5, 4, cknn.Weights{L: 1, A: 1, D: 1}, svg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatalf("SVG not written: %v", err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("NoSuchDataset", 0.001, 1, 0, 3, 50, 5, 4, cknn.EqualWeights(), ""); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("Oldenburg", 0.0005, 1, 999, 3, 50, 5, 4, cknn.EqualWeights(), ""); err == nil {
		t.Error("out-of-range trip index accepted")
	}
	if err := run("Oldenburg", 0.0005, 1, 0, 3, 50, 5, 4, cknn.Weights{L: -1}, ""); err == nil {
		t.Error("invalid weights accepted")
	}
}

package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func fleetGet(t *testing.T, rt http.RoundTripper, rawurl string) (*http.Response, error) {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Fatalf("parse %q: %v", rawurl, err)
	}
	req := (&http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}).WithContext(context.Background())
	return rt.RoundTrip(req)
}

// TestFleetShapes walks one shard through every fault shape with Advance
// and asserts the probe/API asymmetry the gateway relies on.
func TestFleetShapes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	inj := New(Config{Seed: 1})
	var slept []time.Duration
	fl := NewFleet(inj, map[string]ShardShape{
		host: {
			Blackouts:      []Window{{From: 1, To: 2}},
			PartitionAPI:   []Window{{From: 2, To: 3}},
			PartitionProbe: []Window{{From: 3, To: 4}},
			Slow:           []Window{{From: 4, To: 5}},
			Latency:        25 * time.Millisecond,
		},
	})
	rt := fl.Transport(srv.Client().Transport, func(d time.Duration) { slept = append(slept, d) })

	check := func(path string, wantFail bool, label string) {
		t.Helper()
		resp, err := fleetGet(t, rt, srv.URL+path)
		if wantFail {
			var te *TransportError
			if !errors.As(err, &te) {
				t.Fatalf("%s: got err=%v, want injected TransportError", label, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("%s: unexpected error %v", label, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Tick 0: no window active, everything passes.
	check("/healthz", false, "tick 0 probe")
	check("/api/v1/offering", false, "tick 0 api")

	inj.Advance(1) // tick 1: blackout — both paths dead
	check("/healthz", true, "blackout probe")
	check("/api/v1/offering", true, "blackout api")

	inj.Advance(1) // tick 2: API partition — probes lie healthy
	check("/healthz", false, "partitionAPI probe")
	check("/api/v1/offering", true, "partitionAPI api")

	inj.Advance(1) // tick 3: probe partition — data path fine
	check("/healthz", true, "partitionProbe probe")
	check("/api/v1/offering", false, "partitionProbe api")

	inj.Advance(1) // tick 4: slow shard — API delayed, probes fast
	check("/healthz", false, "slow probe")
	check("/api/v1/offering", false, "slow api")
	if len(slept) != 1 || slept[0] != 25*time.Millisecond {
		t.Fatalf("slow window injected delays %v, want [25ms] on the API call only", slept)
	}

	inj.Advance(1) // tick 5: out of every window
	check("/healthz", false, "recovered probe")
	check("/api/v1/offering", false, "recovered api")

	// A host without a shape never faults.
	other := NewFleet(inj, map[string]ShardShape{"elsewhere:1": {Blackouts: []Window{{From: 0, To: 100}}}})
	resp, err := fleetGet(t, other.Transport(srv.Client().Transport, nil), srv.URL+"/healthz")
	if err != nil {
		t.Fatalf("unshaped host faulted: %v", err)
	}
	resp.Body.Close()
}

// TestFleetDropRateDeterminism pins the flapping shape: same seed, same
// sequence of outcomes; decisions are independent per exchange.
func TestFleetDropRateDeterminism(t *testing.T) {
	outcomes := func() []bool {
		inj := New(Config{Seed: 7})
		fl := NewFleet(inj, map[string]ShardShape{"s1:80": {DropRate: 0.5}})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, fl.Decide("s1:80", "/api/v1/offering").Fail)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("drop rate 0.5 produced %d/%d failures — draws are not independent", fails, len(a))
	}
	// Probes are never dropped by DropRate.
	inj := New(Config{Seed: 7})
	fl := NewFleet(inj, map[string]ShardShape{"s1:80": {DropRate: 1}})
	if fl.Decide("s1:80", "/healthz").Fail {
		t.Fatal("DropRate dropped a health probe")
	}
	if !fl.Decide("s1:80", "/api/v1/offering").Fail {
		t.Fatal("DropRate 1 let an API call through")
	}
}

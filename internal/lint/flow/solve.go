package flow

// solve.go is the generic worklist dataflow solver. Analyzers describe
// their lattice (a fact type, join, equality) and a transfer function over
// blocks; Solve iterates to the fixpoint. Facts are arbitrary values —
// gen/kill bitsets, maps of abstract resources, whatever the analyzer
// needs — the solver only ever copies them through the callbacks, so
// transfer functions must not mutate their input in place unless Clone
// returns a deep copy.

// Dir selects the propagation direction.
type Dir uint8

const (
	// Forward propagates facts from Entry along successor edges.
	Forward Dir = iota
	// Backward propagates facts from Exit along predecessor edges.
	Backward
)

// Problem describes one dataflow analysis over a Graph.
type Problem[F any] struct {
	Dir Dir
	// Boundary is the fact at the boundary block: Entry for forward
	// problems, Exit for backward ones.
	Boundary func() F
	// Init is the initial (bottom) fact of every other block.
	Init func() F
	// Transfer computes the block's output fact from its input fact. It
	// must not mutate in; Clone is applied before every call.
	Transfer func(b *Block, in F) F
	// Join merges src into dst and returns the result. It may mutate and
	// return dst.
	Join func(dst, src F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
	// Clone deep-copies a fact. Required; the solver clones before every
	// Transfer and Join so analyzer callbacks can mutate freely.
	Clone func(F) F
}

// Result carries the fixpoint: the input and output fact of every block.
// For forward problems In[b] is the join over predecessors' Out; for
// backward problems In[b] is the join over successors' Out (facts flow
// against the edges).
type Result[F any] struct {
	In, Out map[*Block]F
}

// Solve runs the worklist fixpoint and returns the per-block facts.
func Solve[F any](g *Graph, p Problem[F]) Result[F] {
	res := Result[F]{
		In:  make(map[*Block]F, len(g.Blocks)),
		Out: make(map[*Block]F, len(g.Blocks)),
	}
	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	sources := func(b *Block) []*Block {
		if p.Dir == Forward {
			return b.Preds
		}
		return b.Succs
	}
	dests := func(b *Block) []*Block {
		if p.Dir == Forward {
			return b.Succs
		}
		return b.Preds
	}

	for _, b := range g.Blocks {
		if b == boundary {
			res.In[b] = p.Boundary()
		} else {
			res.In[b] = p.Init()
		}
		res.Out[b] = p.Transfer(b, p.Clone(res.In[b]))
	}

	// Worklist seeded in block order; order only affects iteration count,
	// not the fixpoint.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		in := res.In[b]
		if b != boundary {
			srcs := sources(b)
			if len(srcs) > 0 {
				in = p.Clone(res.Out[srcs[0]])
				for _, s := range srcs[1:] {
					in = p.Join(in, p.Clone(res.Out[s]))
				}
			} else {
				in = p.Init()
			}
			res.In[b] = in
		}
		out := p.Transfer(b, p.Clone(in))
		if p.Equal(out, res.Out[b]) {
			continue
		}
		res.Out[b] = out
		for _, d := range dests(b) {
			if !queued[d] {
				queued[d] = true
				work = append(work, d)
			}
		}
	}
	return res
}

package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expect.txt files")

// golden runs one analyzer over its fixture package and compares the
// rendered diagnostics with testdata/src/<name>/expect.txt.
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		analyzer   *Analyzer
		importPath string
		dir        string // fixture dir under testdata/src; analyzer name if empty
	}{
		// Import paths are chosen so the path-sensitive analyzers
		// (libprint wants internal/, intervalliteral must not be
		// internal/interval itself) see a realistic location.
		{analyzer: IntervalLiteral, importPath: "ecocharge/internal/lintfixture/intervalliteral"},
		{analyzer: FloatEq, importPath: "ecocharge/internal/lintfixture/floateq"},
		{analyzer: ErrIgnore, importPath: "ecocharge/internal/lintfixture/errignore"},
		{analyzer: NakedGo, importPath: "ecocharge/internal/lintfixture/nakedgo"},
		{analyzer: LibPrint, importPath: "ecocharge/internal/lintfixture/libprint"},
		{analyzer: HTTPServer, importPath: "ecocharge/internal/lintfixture/httpserver"},
		// hotalloc fires inside internal/roadnet and internal/wire with
		// scope-specific shapes, so one fixture masquerades as each.
		{analyzer: HotAlloc, importPath: "ecocharge/internal/lintfixture/internal/roadnet"},
		{analyzer: HotAlloc, importPath: "ecocharge/internal/lintfixture/internal/wire", dir: "hotalloc_wire"},
		// obsalloc fires in internal/cknn and internal/roadnet; the fixture
		// masquerades as the former.
		{analyzer: ObsAlloc, importPath: "ecocharge/internal/lintfixture/internal/cknn"},
		{analyzer: LeakRelease, importPath: "ecocharge/internal/lintfixture/leakrelease"},
		// lockheld only fires in the hot packages; pose as internal/cknn.
		{analyzer: LockHeld, importPath: "ecocharge/internal/lintfixture/internal/cknn"},
		// ctxflow's loop rule only fires in server/worker packages; pose as
		// internal/eis so both rules are active.
		{analyzer: CtxFlow, importPath: "ecocharge/internal/lintfixture/internal/eis"},
		{analyzer: BareDirective, importPath: "ecocharge/internal/lintfixture/baredirective"},
	}
	for _, tc := range cases {
		name := tc.dir
		if name == "" {
			name = tc.analyzer.Name
		}
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkg, err := LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			if len(diags) == 0 {
				t.Fatalf("analyzer %s produced no diagnostics on its fixture; want at least one true positive", tc.analyzer.Name)
			}
			var b strings.Builder
			for _, d := range diags {
				if d.Analyzer != tc.analyzer.Name {
					t.Errorf("diagnostic attributed to %q, want %q", d.Analyzer, tc.analyzer.Name)
				}
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.File), d.Line, d.Col, d.Analyzer, d.Message)
			}
			got := b.String()

			golden := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (run `go test ./internal/lint -update` to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want (%s) ---\n%s", got, golden, want)
			}
		})
	}
}

// The fixtures bundle a //ecolint:ignore example per analyzer; this test
// pins down that the directive actually silences findings (the golden
// files would also drift, but a direct check gives a clearer failure).
func TestSuppression(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floateq")
	pkg, err := LoadDir(dir, "ecocharge/internal/lintfixture/floateq")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{FloatEq}) {
		line := lineOf(t, filepath.Join(dir, filepath.Base(d.File)), d.Line)
		if strings.Contains(line, "SentinelSuppressed") || strings.Contains(line, "x == 0") {
			t.Errorf("finding on suppressed line %d: %s", d.Line, d.Message)
		}
	}
}

func lineOf(t *testing.T, file string, n int) string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

func TestByName(t *testing.T) {
	for _, a := range All {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := ByName("nonexistent"); got != nil {
		t.Errorf("ByName(nonexistent) = %v, want nil", got)
	}
}

// TestLoadRealPackage exercises the go-list loader against the repository
// itself: the interval package must load, type-check and come back clean.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", []string{"./internal/interval"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "ecocharge/internal/interval" {
		t.Errorf("ImportPath = %q", pkg.ImportPath)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil {
		t.Fatalf("package not fully loaded: %+v", pkg)
	}
	if diags := Run(pkgs, All); len(diags) != 0 {
		t.Errorf("internal/interval not baseline-clean: %v", diags)
	}
}

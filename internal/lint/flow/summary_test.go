package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func summarizeSrc(t *testing.T, src string) (*Summaries, *types.Info, *types.Package, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	return Summarize([]*ast.File{file}, info, pkg), info, pkg, file
}

func funcSummary(t *testing.T, s *Summaries, info *types.Info, file *ast.File, name string) *FuncSummary {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			if sum := s.Of(info.Defs[fd.Name]); sum != nil {
				return sum
			}
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

const summarySrc = `package p

import "sync"

type Res struct{ n int }

func (r *Res) Release() {}

type Box struct {
	mu sync.Mutex
	r  *Res
}

// releaseIt releases its argument directly.
func releaseIt(r *Res) { r.Release() }

// forwardRelease releases transitively through a same-package helper;
// the fixpoint has to propagate it.
func forwardRelease(r *Res) { releaseIt(r) }

// keeps stores its argument: a capture.
var global *Res

func keeps(r *Res) { global = r }

// returns hands the argument back: a capture.
func returns(r *Res) *Res { return r }

// reads only touches a field: neither capture nor release.
func reads(r *Res) int { return r.n }

// lockIt locks a mutex reachable from its receiver.
func (b *Box) lockIt()   { b.mu.Lock() }
func (b *Box) unlockIt() { b.mu.Unlock() }

// lockVia propagates lock paths through a method call on the parameter.
func lockVia(b *Box) { b.lockIt() }

// closes over the parameter in a function literal: a capture.
func stows(r *Res) func() { return func() { _ = r } }
`

func TestSummarize(t *testing.T) {
	s, info, _, file := summarizeSrc(t, summarySrc)

	if sum := funcSummary(t, s, info, file, "releaseIt"); !sum.Releases[0] {
		t.Error("releaseIt: Releases[0] = false, want true")
	}
	if sum := funcSummary(t, s, info, file, "forwardRelease"); !sum.Releases[0] {
		t.Error("forwardRelease: Releases[0] = false, want true (fixpoint propagation)")
	}
	if sum := funcSummary(t, s, info, file, "keeps"); !sum.Captures[0] {
		t.Error("keeps: Captures[0] = false, want true")
	}
	if sum := funcSummary(t, s, info, file, "returns"); !sum.Captures[0] {
		t.Error("returns: Captures[0] = false, want true")
	}
	if sum := funcSummary(t, s, info, file, "reads"); sum.Captures[0] || sum.Releases[0] {
		t.Errorf("reads: Captures[0]=%v Releases[0]=%v, want both false", sum.Captures[0], sum.Releases[0])
	}
	if sum := funcSummary(t, s, info, file, "lockIt"); len(sum.Locks[Receiver]) != 1 || sum.Locks[Receiver][0] != ".mu" {
		t.Errorf("lockIt: Locks[Receiver] = %v, want [.mu]", sum.Locks[Receiver])
	}
	if sum := funcSummary(t, s, info, file, "unlockIt"); len(sum.Unlocks[Receiver]) != 1 || sum.Unlocks[Receiver][0] != ".mu" {
		t.Errorf("unlockIt: Unlocks[Receiver] = %v, want [.mu]", sum.Unlocks[Receiver])
	}
	if sum := funcSummary(t, s, info, file, "lockVia"); len(sum.Locks[0]) != 1 || sum.Locks[0][0] != ".mu" {
		t.Errorf("lockVia: Locks[0] = %v, want [.mu]", sum.Locks[0])
	}
	if sum := funcSummary(t, s, info, file, "stows"); !sum.Captures[0] {
		t.Error("stows: Captures[0] = false, want true")
	}
}

func TestReleasableType(t *testing.T) {
	_, info, pkg, _ := summarizeSrc(t, summarySrc)
	_ = info
	res := pkg.Scope().Lookup("Res").Type()
	if name, ok := ReleasableType(types.NewPointer(res)); !ok || name != "Res" {
		t.Errorf("ReleasableType(*Res) = %q, %v; want Res, true", name, ok)
	}
	if name, ok := ReleasableType(res); !ok || name != "Res" {
		t.Errorf("ReleasableType(Res) = %q, %v; want Res, true", name, ok)
	}
	box := pkg.Scope().Lookup("Box").Type()
	if _, ok := ReleasableType(box); ok {
		t.Error("ReleasableType(Box) = true, want false")
	}
}

package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/roadnet"
)

// Decoders mirror the encoders field by field over a sticky-error reader:
// the first malformed byte poisons the reader, every later read returns
// zero values, and the public Decode* functions surface the recorded error.
// Truncated, oversized-count, and non-finite inputs all fail cleanly — the
// fuzz targets drive arbitrary bytes through every decoder.
//
// Decoding is allocation-free in steady state: callers pass the output
// struct (or slice) to reuse, and the only allocation the reader ever makes
// is one fixed zone per *new* UTC offset, cached across the message.

type reader struct {
	b   []byte
	off int
	err error

	// zone caches the last non-UTC offset's location so a message full of
	// same-zone timestamps costs one FixedZone at most.
	zoneOff int32
	zone    *time.Location
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail("truncated message: need %d bytes at offset %d, have %d", n, r.off, len(r.b)-r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// f64 rejects NaN and infinities: JSON cannot carry them, so a binary
// message claiming one is corrupt, not a value to propagate.
func (r *reader) f64() float64 {
	v := math.Float64frombits(r.u64())
	if math.IsNaN(v) || math.IsInf(v, 0) {
		r.fail("non-finite float at offset %d", r.off)
		return 0
	}
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("malformed varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	uv := r.uvarint()
	v := int64(uv >> 1)
	if uv&1 != 0 {
		v = ^v
	}
	return v
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("malformed bool at offset %d", r.off)
		return false
	}
}

// Bounds on what the JSON plane can render: RFC 3339 offsets stop at
// ±23:59, and years at [0, 9999] — shrunk here by the widest offset so the
// *local* year stays in range too. The wire contract is JSON-equivalence,
// so a decoded time the JSON plane cannot marshal is malformed, not merely
// exotic.
const (
	maxZoneOff = 23*3600 + 59*60
	minTimeSec = -62167219200 + maxZoneOff
	maxTimeSec = 253402300800 - maxZoneOff - 1
)

func (r *reader) time() time.Time {
	sec := r.i64()
	nsec := r.u32()
	off := int32(r.u32())
	if r.err != nil {
		return time.Time{}
	}
	if nsec >= 1e9 {
		r.fail("nanoseconds %d out of range at offset %d", nsec, r.off)
		return time.Time{}
	}
	if sec < minTimeSec || sec > maxTimeSec {
		r.fail("timestamp %d outside the JSON-renderable year range at offset %d", sec, r.off)
		return time.Time{}
	}
	if off < -maxZoneOff || off > maxZoneOff {
		r.fail("zone offset %d outside the RFC 3339 range at offset %d", off, r.off)
		return time.Time{}
	}
	loc := time.UTC
	if off != 0 {
		if r.zone == nil || r.zoneOff != off {
			r.zone = time.FixedZone("", int(off))
			r.zoneOff = off
		}
		loc = r.zone
	}
	return time.Unix(sec, int64(nsec)).In(loc)
}

func (r *reader) interval() IntervalJSON {
	min := r.f64()
	max := r.f64()
	return IntervalJSON{Min: min, Max: max}
}

// header consumes and verifies the three-byte message header.
func (r *reader) header(kind byte) {
	s := r.take(3)
	if s == nil {
		return
	}
	if s[0] != magic {
		r.fail("bad magic 0x%02X (want 0x%02X)", s[0], magic)
		return
	}
	if s[1] != version {
		r.fail("unsupported version %d (want %d)", s[1], version)
		return
	}
	if s[2] != kind {
		r.fail("message kind %d, want %d", s[2], kind)
	}
}

// finish asserts the payload consumed the input exactly.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(r.b)-r.off)
	}
	return nil
}

// count validates a length prefix against the bytes actually remaining:
// each element needs at least minSize bytes, so a count the payload cannot
// possibly hold is rejected before any allocation happens.
func (r *reader) count(minSize int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off)/uint64(minSize) {
		r.fail("length prefix %d exceeds payload", n)
		return 0
	}
	return int(n)
}

// Minimum encoded sizes, used to sanity-check length prefixes.
const (
	minEntrySize   = 8 + 8 + 8 + 8 + 4*16 + 16 + 1         // 113
	minChargerSize = 8 + 8 + 8 + 4 + 8 + 8 + 8 + 1 + 168*8 // 1397
)

// DecodeOfferingRequest decodes a binary Mode 2 request into out.
func DecodeOfferingRequest(data []byte, out *OfferingRequest) error {
	r := reader{b: data}
	r.header(kindOfferingRequest)
	out.Lat = r.f64()
	out.Lon = r.f64()
	out.K = int(r.varint())
	out.RadiusM = r.f64()
	out.Weights.L = r.f64()
	out.Weights.A = r.f64()
	out.Weights.D = r.f64()
	out.Now = r.time()
	out.ETA = r.time()
	return r.finish()
}

func (r *reader) entry(e *OfferingEntry) {
	e.ChargerID = r.i64()
	e.Lat = r.f64()
	e.Lon = r.f64()
	e.RateKW = r.f64()
	e.SC = r.interval()
	e.L = r.interval()
	e.A = r.interval()
	e.D = r.interval()
	e.ETA = r.time()
	e.Degraded = r.u8()
}

// DecodeOfferingResponse decodes a binary Mode 2 response into out,
// reusing out.Entries' capacity.
func DecodeOfferingResponse(data []byte, out *OfferingResponse) error {
	r := reader{b: data}
	r.header(kindOfferingResponse)
	switch r.u8() {
	case 0:
		out.Entries = nil
	case 1:
		n := r.count(minEntrySize)
		if out.Entries == nil {
			// An encoded empty list must decode to [] (not null), even into
			// a fresh destination.
			out.Entries = make([]OfferingEntry, 0, n)
		}
		out.Entries = out.Entries[:0]
		for i := 0; i < n && r.err == nil; i++ {
			var e OfferingEntry
			r.entry(&e)
			out.Entries = append(out.Entries, e)
		}
	default:
		r.fail("malformed entries presence byte")
	}
	out.GeneratedAt = r.time()
	out.Cached = r.bool()
	return r.finish()
}

func (r *reader) charger(c *charger.Charger) {
	c.ID = r.i64()
	c.P.Lat = r.f64()
	c.P.Lon = r.f64()
	if r.err == nil && !c.P.Valid() {
		r.fail("charger %d: invalid coordinates (%v, %v)", c.ID, c.P.Lat, c.P.Lon)
		return
	}
	c.Node = roadnet.NodeID(int32(r.u32()))
	c.Rate = charger.RateFromKW(r.f64())
	c.PanelKW = r.f64()
	c.WindKW = r.f64()
	c.Plugs = int(r.varint())
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			c.Timetable[d][h] = r.f64()
		}
	}
}

// DecodeChargers decodes a binary charger list, appending into dst[:0] so
// callers can reuse one slice across responses. It returns nil for an
// encoded nil list (preserving the JSON null/[] distinction).
func DecodeChargers(data []byte, dst []charger.Charger) ([]charger.Charger, error) {
	r := reader{b: data}
	r.header(kindChargers)
	switch r.u8() {
	case 0:
		return nil, r.finish()
	case 1:
	default:
		r.fail("malformed chargers presence byte")
		return nil, r.finish()
	}
	n := r.count(minChargerSize)
	if dst == nil {
		// An encoded empty list must decode to [] (not null), even into a
		// fresh destination.
		dst = make([]charger.Charger, 0, n)
	}
	dst = dst[:0]
	for i := 0; i < n && r.err == nil; i++ {
		var c charger.Charger
		r.charger(&c)
		dst = append(dst, c)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecodeWeather decodes a binary production-forecast lookup into out.
func DecodeWeather(data []byte, out *WeatherResponse) error {
	r := reader{b: data}
	r.header(kindWeather)
	out.ChargerID = r.i64()
	out.At = r.time()
	out.ProductionKW = r.interval()
	return r.finish()
}

// DecodeAvailability decodes a binary availability lookup into out.
func DecodeAvailability(data []byte, out *AvailabilityResponse) error {
	r := reader{b: data}
	r.header(kindAvailability)
	out.ChargerID = r.i64()
	out.At = r.time()
	out.Availability = r.interval()
	return r.finish()
}

// DecodeInto decodes a binary message into a supported output type; the
// eis.Client routes its Content-Type-negotiated bodies through it.
func DecodeInto(data []byte, out interface{}) error {
	switch v := out.(type) {
	case *OfferingRequest:
		return DecodeOfferingRequest(data, v)
	case *OfferingResponse:
		return DecodeOfferingResponse(data, v)
	case *[]charger.Charger:
		cs, err := DecodeChargers(data, (*v)[:0])
		if err != nil {
			return err
		}
		*v = cs
		return nil
	case *WeatherResponse:
		return DecodeWeather(data, v)
	case *AvailabilityResponse:
		return DecodeAvailability(data, v)
	default:
		return fmt.Errorf("wire: no binary decoder for %T", out)
	}
}

package cknn

import (
	"math"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

// DeroutingMaps hold the network expansions that price a visit to any
// charger from one query point (Algorithm 1 lines 9–10): forward distances
// from the anchor and reverse distances back to the return node, each under
// the traffic model's lower and upper travel-time weights.
//
// Derouting is the *extra* travel the visit causes relative to staying on
// the route: derout(b) = t(anchor→b) + t(b→return) − t(anchor→return),
// which is zero for a charger on the route, matching the paper's "no
// derouting occurs" case.
//
// The expansions are slice-backed views over pooled search scratch
// (roadnet.Expansion); Cost and TravelTo read the dense arrays directly and
// apply the lazy scaleLo/scaleHi factors per element, so the approximate
// variant never materializes scaled copies of whole distance maps. Callers
// that obtain a DeroutingMaps must Release it when the Offering Table is
// built; the zero value is valid and prices nothing.
type DeroutingMaps struct {
	fwdLo, fwdHi roadnet.Expansion // seconds from anchor (lower/upper weights)
	retLo, retHi roadnet.Expansion // seconds to return node
	// scaleLo/scaleHi multiply raw expansion values on read. The exact
	// variant uses 1/1 with four distinct expansions; the approximate
	// variant runs two mid-traffic expansions, aliases fwdHi/retHi onto
	// fwdLo/retLo and sets the scales to the per-class multiplier ratios.
	scaleLo, scaleHi float64
	approx           bool    // hi expansions alias the lo ones
	baseLo           float64 // anchor→return under lower weights
	baseHi           float64 // anchor→return under upper weights
}

// Release returns the underlying expansion scratch to the graph's pool.
// It must be called exactly once, after the last Cost/TravelTo read.
func (d DeroutingMaps) Release() {
	met.deroutReleases.Inc()
	d.fwdLo.Release()
	d.retLo.Release()
	if !d.approx {
		// In approx mode fwdHi/retHi alias fwdLo/retLo; releasing the alias
		// could free scratch a concurrent query just re-acquired.
		d.fwdHi.Release()
		d.retHi.Release()
	}
}

// deroutTargets collects the road-network nodes the filtering phase will
// read from the derouting maps: one per candidate charger plus the return
// node (whose forward distance is the on-route baseline). It is the only
// producer of the target slices handed to the batched derouting variants,
// which rely on the return node being present.
func deroutTargets(cands []*charger.Charger, ret roadnet.NodeID) []roadnet.NodeID {
	out := make([]roadnet.NodeID, 0, len(cands)+1)
	for _, c := range cands {
		out = append(out, c.Node)
	}
	return append(out, ret)
}

// deroutingMapsFor prices a visit to the candidate set: the batched
// target-aware expansions by default, the full-ball deroutingMaps when the
// environment's FullDerouting oracle switch is set or no target set is
// known. The two paths are byte-identical at the candidate nodes (the
// differential suite in derouting_batch_test.go proves it), so which one
// runs is purely a cost decision.
func (env *Env) deroutingMapsFor(q Query, boundSec float64, targets []roadnet.NodeID) DeroutingMaps {
	if env.FullDerouting || targets == nil {
		return env.deroutingMaps(q, boundSec)
	}
	return env.deroutingMapsTo(q, boundSec, targets)
}

// deroutingMapsApproxFor is deroutingMapsFor for the approximate variant.
func (env *Env) deroutingMapsApproxFor(q Query, boundSec float64, targets []roadnet.NodeID) DeroutingMaps {
	if env.FullDerouting || targets == nil {
		return env.deroutingMapsApprox(q, boundSec)
	}
	return env.deroutingMapsApproxTo(q, boundSec, targets)
}

// deroutingMaps runs the four bounded expansions. boundSec limits the
// search effort; pass math.Inf(1) for the exhaustive (brute-force) variant.
func (env *Env) deroutingMaps(q Query, boundSec float64) DeroutingMaps {
	met.deroutExact.Inc()
	loT, hiT := env.Traffic.ClassWeightTables(q.ETABase, q.Now)
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	d := DeroutingMaps{
		fwdLo:   env.Graph.ExpandFrom(q.AnchorNode, loT, boundSec),
		fwdHi:   env.Graph.ExpandFrom(q.AnchorNode, hiT, boundSec),
		retLo:   env.Graph.ExpandTo(ret, loT, boundSec),
		retHi:   env.Graph.ExpandTo(ret, hiT, boundSec),
		scaleLo: 1,
		scaleHi: 1,
	}
	d.baseLo = distOr(d.fwdLo, ret, math.Inf(1))
	d.baseHi = distOr(d.fwdHi, ret, math.Inf(1))
	if math.IsInf(d.baseLo, 1) {
		// Return node unreachable within the bound: treat the on-route
		// baseline as zero so derouting reduces to the round-trip cost.
		d.baseLo, d.baseHi = 0, 0
	}
	return d
}

// deroutingMapsTo is the batched form of deroutingMaps: the four
// expansions terminate as soon as every target is settled instead of
// settling the whole travel-time ball (Alg. 1 prices a few hundred
// candidates; the ball holds orders of magnitude more). targets must come
// from deroutTargets — Cost/TravelTo are exact only at the targets, and the
// on-route baseline needs the return node among them.
func (env *Env) deroutingMapsTo(q Query, boundSec float64, targets []roadnet.NodeID) DeroutingMaps {
	met.deroutExact.Inc()
	met.deroutBatched.Inc()
	met.deroutTargets.Add(uint64(len(targets)))
	loT, hiT := env.Traffic.ClassWeightTables(q.ETABase, q.Now)
	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	d := DeroutingMaps{
		fwdLo:   env.Graph.ExpandToMany(q.AnchorNode, targets, loT, boundSec),
		fwdHi:   env.Graph.ExpandToMany(q.AnchorNode, targets, hiT, boundSec),
		retLo:   env.Graph.ExpandToManyReverse(ret, targets, loT, boundSec),
		retHi:   env.Graph.ExpandToManyReverse(ret, targets, hiT, boundSec),
		scaleLo: 1,
		scaleHi: 1,
	}
	d.baseLo = distOr(d.fwdLo, ret, math.Inf(1))
	d.baseHi = distOr(d.fwdHi, ret, math.Inf(1))
	if math.IsInf(d.baseLo, 1) {
		d.baseLo, d.baseHi = 0, 0
	}
	return d
}

func distOr(x roadnet.Expansion, id roadnet.NodeID, def float64) float64 {
	if v, ok := x.Dist(id); ok {
		return v
	}
	return def
}

func lookup(m map[roadnet.NodeID]float64, id roadnet.NodeID, def float64) float64 {
	if v, ok := m[id]; ok {
		return v
	}
	return def
}

// deroutingMapsApprox is the cheaper variant EcoCharge uses on cache
// misses: one expansion per direction under the mid-traffic weights, with
// interval bounds derived by scaling every distance by the most optimistic
// and most pessimistic per-class multiplier ratios. This halves the
// Dijkstra work against the exact four-expansion computation at the cost
// of slightly wider (but still truth-covering, up to route divergence)
// intervals. The ratios are applied lazily on read — the two expansions are
// shared between the lo and hi views, nothing is copied.
func (env *Env) deroutingMapsApprox(q Query, boundSec float64) DeroutingMaps {
	met.deroutApprox.Inc()
	loT, hiT := env.Traffic.ClassWeightTables(q.ETABase, q.Now)

	// Mid-traffic table plus the global scaling band across road classes:
	// the most optimistic lo/mid and most pessimistic hi/mid ratios.
	var midT roadnet.ClassWeights
	loRatio, hiRatio := 1.0, 1.0
	for c := range midT {
		midT[c] = (loT[c] + hiT[c]) / 2
		if midT[c] <= 0 {
			continue
		}
		if r := loT[c] / midT[c]; r < loRatio {
			loRatio = r
		}
		if r := hiT[c] / midT[c]; r > hiRatio {
			hiRatio = r
		}
	}

	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	fwd := env.Graph.ExpandFrom(q.AnchorNode, midT, boundSec)
	rev := env.Graph.ExpandTo(ret, midT, boundSec)

	d := DeroutingMaps{
		fwdLo: fwd, fwdHi: fwd,
		retLo: rev, retHi: rev,
		scaleLo: loRatio, scaleHi: hiRatio,
		approx: true,
	}
	base := distOr(fwd, ret, math.Inf(1))
	if math.IsInf(base, 1) {
		d.baseLo, d.baseHi = 0, 0
	} else {
		d.baseLo, d.baseHi = base*loRatio, base*hiRatio
	}
	return d
}

// deroutingMapsApproxTo is the batched form of deroutingMapsApprox: the
// two mid-traffic expansions terminate once every target is settled. The
// lazy scale factors and the hi-view aliasing are identical to the
// full-ball variant; only the search effort changes.
func (env *Env) deroutingMapsApproxTo(q Query, boundSec float64, targets []roadnet.NodeID) DeroutingMaps {
	met.deroutApprox.Inc()
	met.deroutBatched.Inc()
	met.deroutTargets.Add(uint64(len(targets)))
	loT, hiT := env.Traffic.ClassWeightTables(q.ETABase, q.Now)

	var midT roadnet.ClassWeights
	loRatio, hiRatio := 1.0, 1.0
	for c := range midT {
		midT[c] = (loT[c] + hiT[c]) / 2
		if midT[c] <= 0 {
			continue
		}
		if r := loT[c] / midT[c]; r < loRatio {
			loRatio = r
		}
		if r := hiT[c] / midT[c]; r > hiRatio {
			hiRatio = r
		}
	}

	ret := q.ReturnNode
	if ret < 0 {
		ret = q.AnchorNode
	}
	fwd := env.Graph.ExpandToMany(q.AnchorNode, targets, midT, boundSec)
	rev := env.Graph.ExpandToManyReverse(ret, targets, midT, boundSec)

	d := DeroutingMaps{
		fwdLo: fwd, fwdHi: fwd,
		retLo: rev, retHi: rev,
		scaleLo: loRatio, scaleHi: hiRatio,
		approx: true,
	}
	base := distOr(fwd, ret, math.Inf(1))
	if math.IsInf(base, 1) {
		d.baseLo, d.baseHi = 0, 0
	} else {
		d.baseLo, d.baseHi = base*loRatio, base*hiRatio
	}
	return d
}

// Cost returns the derouting seconds interval for a charger at node n and
// whether the charger is reachable within the expansions' bound. The
// interval mixes bounds soundly: the optimistic derouting uses optimistic
// legs against the pessimistic baseline, and vice versa.
func (d DeroutingMaps) Cost(n roadnet.NodeID) (interval.I, bool) {
	fRaw, ok1 := d.fwdLo.Dist(n)
	rRaw, ok2 := d.retLo.Dist(n)
	if !ok1 || !ok2 {
		return interval.I{}, false
	}
	fLo := fRaw * d.scaleLo
	rLo := rRaw * d.scaleLo
	fHi := fLo
	if raw, ok := d.fwdHi.Dist(n); ok {
		fHi = raw * d.scaleHi
	}
	rHi := rLo
	if raw, ok := d.retHi.Dist(n); ok {
		rHi = raw * d.scaleHi
	}
	lo := fLo + rLo - d.baseHi
	hi := fHi + rHi - d.baseLo
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi), true
}

// TravelTo returns the forward travel-time interval in seconds from the
// anchor to node n, used to derive the charger's ETA.
func (d DeroutingMaps) TravelTo(n roadnet.NodeID) (interval.I, bool) {
	raw, ok := d.fwdLo.Dist(n)
	if !ok {
		return interval.I{}, false
	}
	lo := raw * d.scaleLo
	hi := lo
	if rawHi, ok := d.fwdHi.Dist(n); ok {
		hi = rawHi * d.scaleHi
	}
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi), true
}

// etaAt converts a mid travel estimate into the charger's ETA.
func etaAt(base time.Time, travel interval.I) time.Time {
	return base.Add(time.Duration(travel.Mid() * float64(time.Second)))
}

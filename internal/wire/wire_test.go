package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

var (
	utcNow  = time.Date(2024, 6, 18, 9, 30, 0, 0, time.UTC)
	cestNow = time.Date(2024, 6, 18, 11, 30, 0, 123456789, time.FixedZone("", 2*3600))
)

func sampleRequest() OfferingRequest {
	return OfferingRequest{
		Lat: 53.07, Lon: 8.81, K: 5, RadiusM: 25000,
		Weights: WeightsJSON{L: 0.5, A: 0.25, D: 0.25},
		Now:     utcNow, ETA: cestNow,
	}
}

func sampleResponse(n int) OfferingResponse {
	resp := OfferingResponse{GeneratedAt: utcNow, Cached: true}
	for i := 0; i < n; i++ {
		f := float64(i)
		resp.Entries = append(resp.Entries, OfferingEntry{
			ChargerID: int64(1000 + i),
			Lat:       53 + f/100, Lon: 8 - f/100, RateKW: 50,
			SC:       IntervalJSON{Min: 0.1 * f, Max: 0.1*f + 0.3},
			L:        IntervalJSON{Min: 0.2, Max: 0.4},
			A:        IntervalJSON{Min: 0, Max: 1},
			D:        IntervalJSON{Min: 0.9, Max: 0.95},
			ETA:      utcNow.Add(time.Duration(i) * time.Minute),
			Degraded: uint8(i % 8),
		})
	}
	return resp
}

func sampleChargers(n int) []charger.Charger {
	cs := make([]charger.Charger, n)
	for i := range cs {
		f := float64(i)
		cs[i] = charger.Charger{
			ID:   int64(i + 1),
			P:    geo.Point{Lat: 53 + f/50, Lon: 8 + f/50},
			Node: roadnet.NodeID(i * 7), Rate: charger.RateFromKW(150),
			PanelKW: 10 + f, WindKW: f, Plugs: 2 + i%3,
		}
		for d := 0; d < 7; d++ {
			for h := 0; h < 24; h++ {
				cs[i].Timetable[d][h] = float64((d*24+h+i)%10) / 10
			}
		}
	}
	return cs
}

func jsonBytes(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	return b
}

// assertJSONEqual pins the equivalence contract the way the wire actually
// observes it: the re-encoded JSON of the binary round trip must be
// byte-identical to the JSON of the original. (DeepEqual is wrong for
// time.Time — locations legitimately differ by pointer.)
func assertJSONEqual(t *testing.T, want, got interface{}) {
	t.Helper()
	wb, gb := jsonBytes(t, want), jsonBytes(t, got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("binary round trip changed the JSON rendering\nwant %s\ngot  %s", wb, gb)
	}
}

func TestOfferingRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	enc := AppendOfferingRequest(nil, &req)
	var out OfferingRequest
	if err := DecodeOfferingRequest(enc, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	assertJSONEqual(t, &req, &out)
	if !out.Now.Equal(req.Now) || !out.ETA.Equal(req.ETA) {
		t.Fatal("decoded times are not the same instants")
	}
}

func TestOfferingResponseRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7} {
		resp := sampleResponse(n)
		if n == 0 {
			resp.Entries = []OfferingEntry{} // empty but present
		}
		enc := AppendOfferingResponse(nil, &resp)
		var out OfferingResponse
		if err := DecodeOfferingResponse(enc, &out); err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		assertJSONEqual(t, &resp, &out)
	}
}

// TestNilEntriesPreserved pins the JSON null vs [] distinction across the
// binary plane.
func TestNilEntriesPreserved(t *testing.T) {
	for _, entries := range [][]OfferingEntry{nil, {}} {
		resp := OfferingResponse{Entries: entries, GeneratedAt: utcNow}
		var out OfferingResponse
		out.Entries = []OfferingEntry{{}} // stale state the decoder must overwrite
		if err := DecodeOfferingResponse(AppendOfferingResponse(nil, &resp), &out); err != nil {
			t.Fatal(err)
		}
		if (out.Entries == nil) != (entries == nil) {
			t.Fatalf("nil-ness lost: sent %v, got %v", entries == nil, out.Entries == nil)
		}
		assertJSONEqual(t, &resp, &out)
	}
}

func TestChargersRoundTrip(t *testing.T) {
	cs := sampleChargers(5)
	enc := AppendChargers(nil, cs)
	out, err := DecodeChargers(enc, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	assertJSONEqual(t, cs, out)

	// The pointer-slice encoder must produce identical bytes.
	refs := make([]*charger.Charger, len(cs))
	for i := range cs {
		refs[i] = &cs[i]
	}
	if !bytes.Equal(enc, AppendChargerRefs(nil, refs)) {
		t.Fatal("AppendChargerRefs bytes differ from AppendChargers")
	}

	// Nil list round trip (the JSON null inventory).
	out, err = DecodeChargers(AppendChargers(nil, nil), out)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatalf("nil charger list decoded as %v", out)
	}
}

func TestPointLookupRoundTrips(t *testing.T) {
	w := WeatherResponse{ChargerID: 42, At: cestNow, ProductionKW: IntervalJSON{Min: 0, Max: 17.5}}
	var wOut WeatherResponse
	if err := DecodeWeather(AppendWeather(nil, &w), &wOut); err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, &w, &wOut)

	a := AvailabilityResponse{ChargerID: 7, At: utcNow, Availability: IntervalJSON{Min: 0.25, Max: 0.75}}
	var aOut AvailabilityResponse
	if err := DecodeAvailability(AppendAvailability(nil, &a), &aOut); err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, &a, &aOut)
}

func TestDecodeIntoRoutesByType(t *testing.T) {
	resp := sampleResponse(2)
	var out OfferingResponse
	if err := DecodeInto(AppendOfferingResponse(nil, &resp), &out); err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, &resp, &out)
	if err := DecodeInto(AppendOfferingResponse(nil, &resp), &struct{}{}); err == nil {
		t.Fatal("DecodeInto accepted an unsupported output type")
	}
}

// TestTruncatedInputs feeds every strict prefix of valid messages to their
// decoders: each must fail cleanly, none may panic.
func TestTruncatedInputs(t *testing.T) {
	req := sampleRequest()
	resp := sampleResponse(3)
	cs := sampleChargers(2)
	msgs := []struct {
		name string
		enc  []byte
		dec  func([]byte) error
	}{
		{"request", AppendOfferingRequest(nil, &req), func(b []byte) error {
			var o OfferingRequest
			return DecodeOfferingRequest(b, &o)
		}},
		{"response", AppendOfferingResponse(nil, &resp), func(b []byte) error {
			var o OfferingResponse
			return DecodeOfferingResponse(b, &o)
		}},
		{"chargers", AppendChargers(nil, cs), func(b []byte) error {
			_, err := DecodeChargers(b, nil)
			return err
		}},
	}
	for _, m := range msgs {
		for i := 0; i < len(m.enc); i++ {
			if err := m.dec(m.enc[:i]); err == nil {
				t.Fatalf("%s: %d-byte prefix of %d decoded without error", m.name, i, len(m.enc))
			}
		}
		if err := m.dec(append(append([]byte(nil), m.enc...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", m.name)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	w := WeatherResponse{ChargerID: 1, At: utcNow}
	enc := AppendWeather(nil, &w)
	var out WeatherResponse

	bad := append([]byte(nil), enc...)
	bad[0] = 0x00 // magic
	if err := DecodeWeather(bad, &out); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[1] = 99 // version
	if err := DecodeWeather(bad, &out); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Kind cross-wiring: a weather message is not an availability message.
	var aOut AvailabilityResponse
	if err := DecodeAvailability(enc, &aOut); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

// TestNonFiniteRejected overwrites a float field with NaN and ±Inf bits:
// JSON cannot carry them, so the decoder must refuse them.
func TestNonFiniteRejected(t *testing.T) {
	w := WeatherResponse{ChargerID: 1, At: utcNow, ProductionKW: IntervalJSON{Min: 1, Max: 2}}
	enc := AppendWeather(nil, &w)
	const minOff = 3 + 8 + 16 // header, charger id, time
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad := append([]byte(nil), enc...)
		copy(bad[minOff:], appendF64(nil, v))
		var out WeatherResponse
		if err := DecodeWeather(bad, &out); err == nil {
			t.Fatalf("non-finite %v accepted", v)
		}
	}
}

// TestCountBombRejected pins the length-prefix validation: a count the
// payload cannot possibly hold must fail before any allocation.
func TestCountBombRejected(t *testing.T) {
	b := appendHeader(nil, kindChargers)
	b = append(b, 1)
	b = appendUvarint(b, 1<<40) // claims a trillion chargers in 3 bytes
	if _, err := DecodeChargers(b, nil); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestMalformedScalars(t *testing.T) {
	resp := sampleResponse(0)
	enc := AppendOfferingResponse(nil, &resp)
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] = 2 // Cached bool out of range
	var out OfferingResponse
	if err := DecodeOfferingResponse(bad, &out); err == nil {
		t.Fatal("bool byte 2 accepted")
	}

	// Nanoseconds >= 1e9 in GeneratedAt.
	bad = append([]byte(nil), enc...)
	nsecOff := len(bad) - 1 - 4 - 4 // cached, zone offset, nsec
	copy(bad[nsecOff:], appendU32(nil, 2_000_000_000))
	if err := DecodeOfferingResponse(bad, &out); err == nil {
		t.Fatal("out-of-range nanoseconds accepted")
	}
}

func TestNegotiationHelpers(t *testing.T) {
	acceptCases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{ContentType, true},
		{"APPLICATION/X-ECOCHARGE-WIRE", true},
		{"application/json, " + ContentType + ";q=0.9", true},
		{" " + ContentType + " ", true},
		{ContentType + "x", false},
	}
	for _, c := range acceptCases {
		if got := Accepts(c.accept); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
	if !IsWire(ContentType + "; charset=binary") {
		t.Error("IsWire rejected a parameterized Content-Type")
	}
	if IsWire("application/json") {
		t.Error("IsWire accepted JSON")
	}
}

// chunkReader yields data in tiny reads to exercise ReadLimit's growth loop.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestReadLimit(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 1000)
	var buf Buffer
	if err := buf.ReadLimit(&chunkReader{data: data, n: 7}, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.B, data) {
		t.Fatalf("ReadLimit read %d bytes, want %d", len(buf.B), len(data))
	}
	// One byte over the limit is readable (the caller's oversize signal),
	// never more.
	if err := buf.ReadLimit(&chunkReader{data: data, n: 13}, int64(len(data))-1); err != nil {
		t.Fatal(err)
	}
	if len(buf.B) != len(data) {
		t.Fatalf("over-limit read returned %d bytes, want max+1 = %d", len(buf.B), len(data))
	}
	// Reuse must reset content.
	if err := buf.ReadLimit(strings.NewReader("xy"), 100); err != nil {
		t.Fatal(err)
	}
	if string(buf.B) != "xy" {
		t.Fatalf("reused buffer holds %q", buf.B)
	}
}

// TestAllocFreeSteadyState asserts the codec's core promise: encode and
// decode run with zero allocations per operation once buffers and output
// structures are warm.
func TestAllocFreeSteadyState(t *testing.T) {
	resp := sampleResponse(8)
	req := sampleRequest()
	req.Now, req.ETA = utcNow, utcNow // UTC stays zone-cache-free
	for i := range resp.Entries {
		resp.Entries[i].ETA = utcNow
	}
	cs := sampleChargers(4)

	buf := make([]byte, 0, 1<<16)
	if a := testing.AllocsPerRun(200, func() {
		buf = AppendOfferingResponse(buf[:0], &resp)
	}); a != 0 {
		t.Errorf("encode response: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		buf = AppendChargers(buf[:0], cs)
	}); a != 0 {
		t.Errorf("encode chargers: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		buf = AppendOfferingRequest(buf[:0], &req)
	}); a != 0 {
		t.Errorf("encode request: %v allocs/op, want 0", a)
	}

	encResp := AppendOfferingResponse(nil, &resp)
	out := OfferingResponse{Entries: make([]OfferingEntry, 0, len(resp.Entries))}
	if a := testing.AllocsPerRun(200, func() {
		if err := DecodeOfferingResponse(encResp, &out); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("decode response: %v allocs/op, want 0", a)
	}

	encCs := AppendChargers(nil, cs)
	dst := make([]charger.Charger, 0, len(cs))
	if a := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = DecodeChargers(encCs, dst)
		if err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("decode chargers: %v allocs/op, want 0", a)
	}

	encReq := AppendOfferingRequest(nil, &req)
	var reqOut OfferingRequest
	if a := testing.AllocsPerRun(200, func() {
		if err := DecodeOfferingRequest(encReq, &reqOut); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("decode request: %v allocs/op, want 0", a)
	}
}

// TestZoneOffsetsSurviveRoundTrip exercises the time codec across zone
// shapes: UTC, positive and negative fixed offsets, and sub-second parts.
func TestZoneOffsetsSurviveRoundTrip(t *testing.T) {
	times := []time.Time{
		utcNow,
		cestNow,
		time.Date(2031, 12, 31, 23, 59, 59, 999999999, time.FixedZone("", -7*3600)),
		time.Unix(0, 1).UTC(),
	}
	for _, ts := range times {
		w := WeatherResponse{ChargerID: 1, At: ts}
		var out WeatherResponse
		if err := DecodeWeather(AppendWeather(nil, &w), &out); err != nil {
			t.Fatalf("%v: %v", ts, err)
		}
		if !out.At.Equal(ts) {
			t.Fatalf("instant drifted: sent %v, got %v", ts, out.At)
		}
		assertJSONEqual(t, &w, &out)
	}
}

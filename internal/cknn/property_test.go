package cknn_test

// Property-based harness over RunTrip: testing/quick drives random trips,
// integer weight mixes and fault rates through the EcoCharge method and
// asserts every emitted Offering Table through the shared tabletest
// invariants. A metamorphic companion check rides along: scaling all three
// weights by a common positive factor must not change the emitted tables,
// because the score only ever sees normalized weights. Scale factors are
// powers of two so (c·w)/(c·s) is bit-identical to w/s and the comparison
// needs no tolerance.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ecocharge/internal/cknn"
	"ecocharge/internal/cknn/tabletest"
)

func TestRunTripPropertyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario builds are slow")
	}
	sc := chaosScenario(t)
	freshEco := func(env *cknn.Env) cknn.Method {
		return cknn.NewEcoCharge(env, cknn.EcoChargeOptions{ReuseDistM: 5000})
	}

	prop := func(tripSel, wl, wa, wd, rateSel uint8) bool {
		trip := sc.Trips[int(tripSel)%len(sc.Trips)]
		rate := []float64{0, 0.1, 0.3}[int(rateSel)%3]
		env := sc.Env
		if rate > 0 {
			env = faultedEnv(sc.Env, rate, int64(rateSel)+1)
		}
		// Small integer weights cover the mix space while every power-of-two
		// multiple of them stays exactly representable.
		w := cknn.Weights{
			L: float64(1 + wl%8),
			A: float64(1 + wa%8),
			D: float64(1 + wd%8),
		}
		opts := cknn.TripOptions{K: 3, SegmentLenM: 4000, Workers: 1, Weights: w}

		base := cknn.RunTrip(env, freshEco(env), trip, opts)
		for i, res := range base {
			if err := tabletest.Err(res.Table, opts.K, tabletest.Options{}); err != nil {
				t.Logf("trip %d seg %d (weights %+v, rate %g): %v", trip.ID, i, w, rate, err)
				return false
			}
		}

		// Metamorphic: common scaling of the weight vector is invisible.
		for _, c := range []float64{2, 0.25, 16} {
			scaled := opts
			scaled.Weights = cknn.Weights{L: c * w.L, A: c * w.A, D: c * w.D}
			got := cknn.RunTrip(env, freshEco(env), trip, scaled)
			if !reflect.DeepEqual(base, got) {
				t.Logf("trip %d: scaling weights %+v by %g changed the tables: %v vs %v",
					trip.ID, w, c, summarize(base), summarize(got))
				return false
			}
		}
		return true
	}

	cfg := &quick.Config{
		MaxCount: 6,
		Rand:     rand.New(rand.NewSource(11)), // deterministic case stream
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("property violated: %v", err)
	}
}

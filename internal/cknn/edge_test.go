package cknn

import (
	"math"
	"testing"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// TestEmptyChargerSet: every method must return an empty table, not panic.
func TestEmptyChargerSet(t *testing.T) {
	g := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 3, HeightKM: 3,
		SpacingM: 500, Seed: 1,
	})
	empty, err := charger.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(g, empty, ec.NewSolarModel(1), ec.NewAvailabilityModel(2), ec.NewTrafficModel(3), EnvConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Anchor: g.Node(0).P, AnchorNode: 0, ReturnNode: 0,
		Now: queryTime, K: 3, RadiusM: 10000,
	}
	for _, m := range []Method{
		NewBruteForce(env),
		NewIndexQuadtree(env),
		NewRandom(env, 1),
		NewEcoCharge(env, EcoChargeOptions{}),
	} {
		if table := m.Rank(q); len(table.Entries) != 0 {
			t.Errorf("%s: non-empty table on empty charger set", m.Name())
		}
	}
}

// TestUnreachableChargersExcluded: chargers on a disconnected island must
// never appear in brute-force results, and the engine must not panic.
func TestUnreachableChargersExcluded(t *testing.T) {
	g := roadnet.NewGraph(6, 8)
	// Mainland: 0-1-2 connected line. Island: 3-4-5 connected line, no
	// bridge.
	pts := []geo.Point{
		{Lat: 53.00, Lon: 8.00}, {Lat: 53.00, Lon: 8.01}, {Lat: 53.00, Lon: 8.02},
		{Lat: 53.05, Lon: 8.00}, {Lat: 53.05, Lon: 8.01}, {Lat: 53.05, Lon: 8.02},
	}
	for _, p := range pts {
		g.AddNode(p)
	}
	g.AddBidirectional(0, 1, 0, roadnet.ClassLocal)
	g.AddBidirectional(1, 2, 0, roadnet.ClassLocal)
	g.AddBidirectional(3, 4, 0, roadnet.ClassLocal)
	g.AddBidirectional(4, 5, 0, roadnet.ClassLocal)
	g.Freeze()

	avail := ec.NewAvailabilityModel(1)
	cs := []charger.Charger{
		{ID: 1, P: pts[2], Node: 2, Rate: charger.RateAC22, PanelKW: 20, Plugs: 2, Timetable: avail.GenerateTimetable(1)},
		{ID: 2, P: pts[4], Node: 4, Rate: charger.RateDC150, PanelKW: 150, Plugs: 2, Timetable: avail.GenerateTimetable(2)}, // island: better but unreachable
	}
	set, err := charger.NewSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(g, set, ec.NewSolarModel(2), avail, ec.NewTrafficModel(3), EnvConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Anchor: pts[0], AnchorNode: 0, ReturnNode: 0, Now: queryTime, K: 2, RadiusM: 50000}
	table := NewBruteForce(env).Rank(q)
	if len(table.Entries) != 1 || table.Entries[0].Charger.ID != 1 {
		t.Fatalf("expected only the reachable charger, got %v", table.IDs())
	}
	// Truth scoring of the unreachable charger reports !ok.
	eng := Engine{Env: env}
	tm := eng.TruthMaps(q)
	if _, ok := eng.TruthSC(q, tm, &set.All()[1]); ok {
		t.Error("truth SC computed for unreachable charger")
	}
}

// TestApproxDeroutingSoundness: the single-expansion approximation must
// bracket the exact mid-traffic distances and stay non-negative.
func TestApproxDeroutingSoundness(t *testing.T) {
	env := testEnv(t)
	q := testQuery(env).normalized()
	exact := env.deroutingMaps(q, math.Inf(1))
	approx := env.deroutingMapsApprox(q, math.Inf(1))
	checked := 0
	for _, c := range env.Chargers.All() {
		ai, okA := approx.Cost(c.Node)
		ei, okE := exact.Cost(c.Node)
		if okA != okE {
			t.Fatalf("charger %d: reachability disagreement approx=%v exact=%v", c.ID, okA, okE)
		}
		if !okA {
			continue
		}
		checked++
		if !ai.Valid() || ai.Min < 0 {
			t.Fatalf("charger %d: invalid approx interval %v", c.ID, ai)
		}
		// The approximation brackets the exact midpoint within the scaled
		// band plus slack for route divergence between the metrics.
		slack := 0.25*ei.Mid() + 30
		if ai.Mid() > ei.Mid()+ei.Width()/2+slack || ai.Mid() < ei.Mid()-ei.Width()/2-slack {
			t.Fatalf("charger %d: approx mid %.1f far from exact mid %.1f (width %.1f)",
				c.ID, ai.Mid(), ei.Mid(), ei.Width())
		}
	}
	if checked < 100 {
		t.Fatalf("only %d chargers checked", checked)
	}
}

// TestExactVsApproxRankingOverlap: the approximation must preserve most of
// the exact top-k across many query points.
func TestExactVsApproxRankingOverlap(t *testing.T) {
	env := testEnv(t)
	exactM := NewEcoCharge(env, EcoChargeOptions{RadiusM: 50000, ReuseDistM: 1, ExactDerouting: true})
	approxM := NewEcoCharge(env, EcoChargeOptions{RadiusM: 50000, ReuseDistM: 1})
	overlap, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		node := roadnet.NodeID((trial * 101) % env.Graph.NumNodes())
		q := Query{
			Anchor: env.Graph.Node(node).P, AnchorNode: node, ReturnNode: node,
			Now: queryTime, K: 3, RadiusM: 50000,
		}
		exactM.Reset()
		approxM.Reset()
		want := exactM.Rank(q).IDs()
		got := approxM.Rank(q).IDs()
		inWant := map[int64]bool{}
		for _, id := range want {
			inWant[id] = true
		}
		for _, id := range got {
			if inWant[id] {
				overlap++
			}
			total++
		}
	}
	if total == 0 || float64(overlap)/float64(total) < 0.8 {
		t.Fatalf("approx ranking overlap %d/%d below 80%%", overlap, total)
	}
}

// TestQueryNormalizationDefaults exercises the zero-value path.
func TestQueryNormalizationDefaults(t *testing.T) {
	q := Query{ReturnNode: -1, Now: queryTime}.normalized()
	if q.K != 3 || q.RadiusM != 50000 {
		t.Errorf("defaults wrong: %+v", q)
	}
	if q.Weights != EqualWeights() {
		t.Errorf("default weights %+v", q.Weights)
	}
	if !q.ETABase.Equal(queryTime) {
		t.Errorf("ETABase default wrong: %v", q.ETABase)
	}
	if q.ReturnNode != q.AnchorNode {
		t.Errorf("ReturnNode default wrong: %v", q.ReturnNode)
	}
}

// TestKLargerThanPool: asking for more chargers than exist within R.
func TestKLargerThanPool(t *testing.T) {
	env := testEnv(t)
	q := testQuery(env)
	q.K = 10000
	table := NewEcoCharge(env, EcoChargeOptions{RadiusM: 100000}).Rank(q)
	if len(table.Entries) == 0 || len(table.Entries) > env.Chargers.Len() {
		t.Fatalf("k>pool returned %d entries", len(table.Entries))
	}
}

// TestAdaptedTableDropsOutOfRadiusChargers: after a big in-Q move near the
// radius boundary, chargers drifting outside R disappear from the adapted
// table rather than being served stale.
func TestAdaptedTableDropsOutOfRadiusChargers(t *testing.T) {
	env := testEnv(t)
	// Anchor at the west edge; radius barely covers some eastern chargers.
	west := env.Graph.NearestNode(geo.Point{Lat: 53.04, Lon: 8.0})
	q := Query{
		Anchor: env.Graph.Node(west).P, AnchorNode: west, ReturnNode: west,
		Now: queryTime, K: 5, RadiusM: 6000,
	}
	m := NewEcoCharge(env, EcoChargeOptions{RadiusM: 6000, ReuseDistM: 5000})
	first := m.Rank(q)
	if len(first.Entries) == 0 {
		t.Skip("no chargers near the west edge")
	}
	// Move 4 km west (within Q): eastern picks may now exceed R.
	q2 := q
	q2.Anchor = geo.Destination(q.Anchor, 270, 4000)
	q2.AnchorNode = env.Graph.NearestNode(q2.Anchor)
	second := m.Rank(q2)
	if !second.Adapted {
		t.Fatal("expected cache hit")
	}
	for _, e := range second.Entries {
		if d := geo.Distance(q2.Anchor, e.Charger.P); d > 6000 {
			t.Errorf("adapted table kept charger %d at %.0f m outside R", e.Charger.ID, d)
		}
	}
}

// TestSecondsDur sanity.
func TestSecondsDur(t *testing.T) {
	if secondsDur(1.5) != 1500*time.Millisecond {
		t.Errorf("secondsDur(1.5) = %v", secondsDur(1.5))
	}
}

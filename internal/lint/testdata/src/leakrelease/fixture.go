// Package fixture exercises the leakrelease analyzer: values acquired
// from a constructor that returns a releasable type (one with a niladic
// Release method) must reach Release() on every path out of the function.
package fixture

// Expansion mirrors the real roadnet.Expansion surface: pool-backed, and
// leaked permanently if Release is never called.
type Expansion struct{ n int }

func (e *Expansion) Release() {}

func acquire() *Expansion { return &Expansion{} }

func acquirePair() (*Expansion, error) { return &Expansion{}, nil }

// GoodDefer is the intended shape: release is deferred immediately.
func GoodDefer() int {
	e := acquire()
	defer e.Release()
	return e.n
}

// GoodAllPaths releases explicitly on both branches.
func GoodAllPaths(c bool) int {
	e := acquire()
	if c {
		e.Release()
		return 1
	}
	n := e.n
	e.Release()
	return n
}

// GoodBranchMerge binds two acquire sites to one name before the deferred
// release; both sites are covered (no finding).
func GoodBranchMerge(c bool) int {
	var e *Expansion
	if c {
		e = acquire()
	} else {
		e = acquire()
	}
	defer e.Release()
	return e.n
}

// GoodHelper delegates the release to a same-package helper; the helper's
// summary vouches for the argument.
func GoodHelper() {
	e := acquire()
	releaseIt(e)
}

func releaseIt(e *Expansion) { e.Release() }

// GoodReturn transfers ownership to the caller.
func GoodReturn() *Expansion { return acquire() }

// GoodStore escapes into a longer-lived structure.
type holder struct{ e *Expansion }

func GoodStore(h *holder) { h.e = acquire() }

// BadNoRelease is the seeded leak: the defer was "forgotten".
func BadNoRelease() int {
	e := acquire() // flagged: never released
	return e.n
}

// BadErrPath leaks on the early error return.
func BadErrPath() (int, error) {
	e, err := acquirePair() // flagged: not released on the err path
	if err != nil {
		return 0, err
	}
	n := e.n
	e.Release()
	return n, nil
}

// BadDiscard drops the acquired value on the floor.
func BadDiscard() {
	acquire() // flagged: result discarded
}

// BadDoubleRelease releases the same value twice.
func BadDoubleRelease() {
	e := acquire()
	e.Release()
	e.Release() // flagged: released more than once
}

// BadDeferPlusExplicit pairs a deferred release with an explicit one.
func BadDeferPlusExplicit() {
	e := acquire()
	defer e.Release()
	e.Release() // flagged: the defer will release it again
}

// SuppressedWitness documents a deliberate leak with the escape hatch.
func SuppressedWitness() {
	//ecolint:ignore leakrelease fire-and-forget warmup; the background sweeper reclaims it
	acquire()
}

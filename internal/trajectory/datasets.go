package trajectory

import (
	"fmt"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// Profile describes one of the evaluation datasets: how to build its road
// network and how its trips are distributed. The four shipped profiles are
// synthetic equivalents of the paper's Oldenburg, California, T-drive and
// Geolife workloads; counts at scale 1.0 match the paper, and experiments
// run at reduced scale to keep wall-clock reasonable (the scale is reported
// alongside results).
type Profile struct {
	// Name as used in the paper's figures.
	Name string
	// FullTrips is the trajectory count the original dataset has.
	FullTrips int
	// Chargers is the inventory size at scale 1.0 (paper: >1,000).
	Chargers int
	// SamplingInterval of the GPS stream the profile emulates.
	SamplingInterval time.Duration
	// buildGraph constructs the road network for this dataset.
	buildGraph func(seed int64) *roadnet.Graph
	// tripConfig returns the generator settings for n trips.
	tripConfig func(n int, seed int64, start time.Time) GenConfig
}

// BuildGraph constructs the profile's road network.
func (p *Profile) BuildGraph(seed int64) *roadnet.Graph { return p.buildGraph(seed) }

// GenerateTrips builds scale·FullTrips trips (at least 1) on g.
func (p *Profile) GenerateTrips(g *roadnet.Graph, scale float64, seed int64, start time.Time) ([]Trip, error) {
	n := int(float64(p.FullTrips) * scale)
	if n < 1 {
		n = 1
	}
	return Generate(g, p.tripConfig(n, seed, start))
}

// SamplerConfig returns the profile's generator settings for streaming an
// unbounded trip sequence via NewSampler (GenConfig.N is left 0: the
// sampler has no trip bound). Apart from N it is the exact config
// GenerateTrips uses, so a streamed prefix matches a generated slice.
func (p *Profile) SamplerConfig(seed int64, start time.Time) GenConfig {
	return p.tripConfig(0, seed, start)
}

// ProfileByName returns the named profile or an error listing valid names.
func ProfileByName(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, 4)
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	return nil, fmt.Errorf("trajectory: unknown profile %q (have %v)", name, names)
}

// Profiles returns the four evaluation dataset profiles in the order the
// paper's figures present them (smallest to largest).
func Profiles() []*Profile {
	return []*Profile{oldenburg(), california(), tdrive(), geolife()}
}

// oldenburg: Brinkhoff-generated trajectories over a 45×35 km urban grid —
// medium-length city trips, no strong downtown bias.
func oldenburg() *Profile {
	return &Profile{
		Name:             "Oldenburg",
		FullTrips:        4000,
		Chargers:         1000,
		SamplingInterval: 30 * time.Second,
		buildGraph: func(seed int64) *roadnet.Graph {
			cfg := roadnet.DefaultUrbanConfig()
			cfg.Seed = seed
			return roadnet.GenerateUrban(cfg)
		},
		tripConfig: func(n int, seed int64, start time.Time) GenConfig {
			return GenConfig{
				N: n, Seed: seed, MinTripKM: 3, MaxTripKM: 30,
				Start: start, Window: 2 * time.Hour,
			}
		},
	}
}

// california: long corridor trips over the sparse 1,220×400 km highway
// network (run here at reduced physical scale with preserved aspect ratio).
func california() *Profile {
	return &Profile{
		Name:             "California",
		FullTrips:        7000,
		Chargers:         1200,
		SamplingInterval: time.Minute,
		buildGraph: func(seed int64) *roadnet.Graph {
			cfg := roadnet.DefaultHighwayConfig()
			cfg.Seed = seed
			return roadnet.GenerateHighway(cfg)
		},
		tripConfig: func(n int, seed int64, start time.Time) GenConfig {
			return GenConfig{
				N: n, Seed: seed, MinTripKM: 5, MaxTripKM: 0,
				Start: start, Window: 3 * time.Hour,
			}
		},
	}
}

// tdrive: Beijing taxi fleet — many short urban trips with heavy downtown
// bias, the densest query stream of the evaluation.
func tdrive() *Profile {
	return &Profile{
		Name:             "T-drive",
		FullTrips:        10357,
		Chargers:         1500,
		SamplingInterval: 3 * time.Minute, // T-drive's sparse taxi sampling
		buildGraph: func(seed int64) *roadnet.Graph {
			cfg := roadnet.UrbanConfig{
				Origin:  geo.Point{Lat: 39.75, Lon: 116.20}, // Beijing-like
				WidthKM: 40, HeightKM: 40, SpacingM: 450,
				RemoveFrac: 0.06, JitterFrac: 0.2, ArterialEach: 4, Seed: seed,
			}
			return roadnet.GenerateUrban(cfg)
		},
		tripConfig: func(n int, seed int64, start time.Time) GenConfig {
			return GenConfig{
				N: n, Seed: seed, MinTripKM: 2, MaxTripKM: 20,
				Start: start, Window: 6 * time.Hour,
				HotspotFrac: 0.6, Hotspots: 6,
			}
		},
	}
}

// geolife: heterogeneous mixed-mode trajectories with dense 1–5 s sampling
// for most of the data; modeled as a wide trip-length mix over a large
// urban area.
func geolife() *Profile {
	return &Profile{
		Name:             "Geolife",
		FullTrips:        17621,
		Chargers:         1500,
		SamplingInterval: 5 * time.Second,
		buildGraph: func(seed int64) *roadnet.Graph {
			cfg := roadnet.UrbanConfig{
				Origin:  geo.Point{Lat: 39.70, Lon: 116.10},
				WidthKM: 50, HeightKM: 45, SpacingM: 500,
				RemoveFrac: 0.08, JitterFrac: 0.25, ArterialEach: 5, Seed: seed,
			}
			return roadnet.GenerateUrban(cfg)
		},
		tripConfig: func(n int, seed int64, start time.Time) GenConfig {
			return GenConfig{
				N: n, Seed: seed, MinTripKM: 1, MaxTripKM: 40,
				Start: start, Window: 8 * time.Hour,
				HotspotFrac: 0.3, Hotspots: 10,
			}
		},
	}
}

// Package experiment implements the paper's trace-driven evaluation (§V):
// it assembles dataset scenarios (road network + charger inventory + trip
// workload), runs the four ranking methods over them, and reports the two
// metrics of every figure — the Sustainability Score as a percentage of the
// Brute-Force optimum (SC%) and the CPU execution time per query (F_t) —
// as mean ± standard deviation over repetitions.
package experiment

import (
	"fmt"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/roadnet"
	"ecocharge/internal/trajectory"
)

// Scenario is one instantiated dataset: everything a run needs.
type Scenario struct {
	Name    string
	Profile *trajectory.Profile
	Graph   *roadnet.Graph
	Env     *cknn.Env
	Trips   []trajectory.Trip
	Scale   float64
	Seed    int64
	Start   time.Time
}

// DefaultStart is the reference wall-clock the experiments run at: a summer
// Tuesday morning, so solar production and commuter traffic are both active.
var DefaultStart = time.Date(2024, 6, 18, 9, 0, 0, 0, time.UTC)

// BuildScenario assembles the named dataset at the given trip scale.
// scale 1.0 reproduces the paper's full trajectory counts; experiments
// default to a reduced scale (reported with the results) to keep wall-clock
// time reasonable on a laptop.
func BuildScenario(profileName string, scale float64, seed int64) (*Scenario, error) {
	p, err := trajectory.ProfileByName(profileName)
	if err != nil {
		return nil, err
	}
	return BuildScenarioFromProfile(p, scale, seed)
}

// BuildScenarioFromProfile is BuildScenario for an already-resolved profile.
func BuildScenarioFromProfile(p *trajectory.Profile, scale float64, seed int64) (*Scenario, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("experiment: scale must be positive, got %v", scale)
	}
	g := p.BuildGraph(seed)
	// Departures start at local solar morning: the reference 09:00 applies
	// at the dataset's own longitude (Beijing mornings are not Oldenburg
	// mornings in UTC), so solar production is comparably active across
	// datasets.
	lonOffset := time.Duration(g.Bounds().Center().Lon / 15 * float64(time.Hour))
	start := DefaultStart.Add(-lonOffset)
	avail := ec.NewAvailabilityModel(seed + 1)
	set, err := charger.Generate(g, avail, charger.GenConfig{N: p.Chargers, Seed: seed + 2})
	if err != nil {
		return nil, fmt.Errorf("experiment: generating chargers for %s: %w", p.Name, err)
	}
	env, err := cknn.NewEnv(g, set,
		ec.NewSolarModel(seed+3), avail, ec.NewTrafficModel(seed+4),
		cknn.EnvConfig{RadiusM: 50000, Wind: ec.NewWindModel(seed + 6)})
	if err != nil {
		return nil, fmt.Errorf("experiment: environment for %s: %w", p.Name, err)
	}
	trips, err := p.GenerateTrips(g, scale, seed+5, start)
	if err != nil {
		return nil, fmt.Errorf("experiment: trips for %s: %w", p.Name, err)
	}
	return &Scenario{
		Name: p.Name, Profile: p, Graph: g, Env: env,
		Trips: trips, Scale: scale, Seed: seed, Start: start,
	}, nil
}

// BuildAllScenarios assembles the four evaluation datasets at the scale.
func BuildAllScenarios(scale float64, seed int64) ([]*Scenario, error) {
	var out []*Scenario
	for _, p := range trajectory.Profiles() {
		sc, err := BuildScenarioFromProfile(p, scale, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

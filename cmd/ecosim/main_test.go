package main

import (
	"testing"
	"time"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	if err := run("Oldenburg", 10, 15, 1, 10, 0.3, 30*time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadDataset(t *testing.T) {
	if err := run("nope", 5, 5, 1, 10, 0.3, time.Minute); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

package ec

import (
	"math"
	"time"

	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

// TrafficModel estimates road congestion as a travel-cost multiplier per
// road class and time of day. The derouting component D queries it to turn
// geometric shortest paths into lower/upper travel-cost estimates: real
// GIS services report a "current to worst case" travel time band, which is
// exactly the interval the paper's D consumes.
type TrafficModel struct {
	Seed int64
	// PeakSeverity ≥ 0 scales rush-hour slowdowns; 1.0 is the default
	// profile (up to ~1.8× on arterials at peak).
	PeakSeverity float64
}

// NewTrafficModel returns a model with the default peak severity.
func NewTrafficModel(seed int64) *TrafficModel {
	return &TrafficModel{Seed: seed, PeakSeverity: 1.0}
}

func (m *TrafficModel) severity() float64 {
	if m.PeakSeverity <= 0 {
		return 1.0
	}
	return m.PeakSeverity
}

// baseProfile returns the congestion multiplier ≥ 1 for a road class at the
// given hour-of-week under average conditions.
func (m *TrafficModel) baseProfile(class roadnet.RoadClass, t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	weekend := t.Weekday() == time.Saturday || t.Weekday() == time.Sunday
	var peak float64
	if weekend {
		peak = 0.25 * math.Exp(-sq(hour-15)/10)
	} else {
		peak = 0.8*math.Exp(-sq(hour-8.5)/2) + 0.9*math.Exp(-sq(hour-17.5)/3)
	}
	classFactor := 1.0
	switch class {
	case roadnet.ClassLocal:
		classFactor = 0.6
	case roadnet.ClassArterial:
		classFactor = 1.0
	case roadnet.ClassHighway:
		classFactor = 0.8
	case roadnet.ClassMotorway:
		classFactor = 0.7
	}
	return 1 + peak*classFactor*m.severity()
}

// TruthMultiplier returns the actual congestion multiplier for the class at
// t, including the day-specific realization noise.
func (m *TrafficModel) TruthMultiplier(class roadnet.RoadClass, t time.Time) float64 {
	base := m.baseProfile(class, t)
	n := smoothNoise(uint64(m.Seed)^trafficSalt, uint64(class), float64(t.Unix())/3600)
	// Noise multiplies the congested share only: free-flow night traffic
	// does not fluctuate much.
	return 1 + (base-1)*(0.7+0.6*n)
}

// trafficSalt decorrelates the traffic noise stream from weather and
// availability noise derived from the same experiment seed.
const trafficSalt uint64 = 0x77a1f1c0ffee

// trafficError returns the relative half-width of the congestion estimate
// at the given horizon. Live traffic is accurate now and decays toward a
// historical-profile floor.
func trafficError(horizon time.Duration) float64 {
	h := horizon.Hours()
	if h < 0 {
		h = 0
	}
	return math.Min(0.03+0.05*h, 0.25)
}

// ForecastMultiplier returns the interval congestion multiplier for class
// at time t, for an estimate issued at issuedAt. Bounds never drop below 1
// (traffic cannot beat free flow in this model).
func (m *TrafficModel) ForecastMultiplier(class roadnet.RoadClass, t, issuedAt time.Time) interval.I {
	truth := m.TruthMultiplier(class, t)
	err := trafficError(t.Sub(issuedAt)) * truth
	lo := truth - err
	if lo < 1 {
		lo = 1
	}
	hi := truth + err
	if hi < lo {
		hi = lo
	}
	return interval.New(lo, hi)
}

// ClassWeightTables returns lower/upper-bound travel-time weight tables for
// the road network at time t (estimate issued at issuedAt): one seconds-per-
// meter multiplier per road class, ready for the flat expansion kernel. The
// per-edge cost edge.Length * table[class] equals the congested travel time
// under the forecast band, so plugging the tables into ExpandFrom/ExpandTo
// yields the D_min / D_max derouting costs of Algorithm 1 lines 9–10.
func (m *TrafficModel) ClassWeightTables(t, issuedAt time.Time) (lower, upper roadnet.ClassWeights) {
	for c := roadnet.RoadClass(0); c < roadnet.RoadClass(roadnet.NumRoadClasses); c++ {
		iv := m.ForecastMultiplier(c, t, issuedAt)
		lower[c] = iv.Min / c.FreeFlowSpeed()
		upper[c] = iv.Max / c.FreeFlowSpeed()
	}
	return lower, upper
}

// WeightFuncs returns the closure form of ClassWeightTables for the generic
// map-shaped search APIs. The closures compute the identical per-edge
// product the tables do, so table-driven and closure-driven searches agree
// bit for bit.
func (m *TrafficModel) WeightFuncs(t, issuedAt time.Time) (lower, upper roadnet.WeightFunc) {
	loT, hiT := m.ClassWeightTables(t, issuedAt)
	return loT.Func(), hiT.Func()
}

// TruthClassWeights returns the travel-time weight table under the actual
// congestion at time t.
func (m *TrafficModel) TruthClassWeights(t time.Time) roadnet.ClassWeights {
	var cw roadnet.ClassWeights
	for c := roadnet.RoadClass(0); c < roadnet.RoadClass(roadnet.NumRoadClasses); c++ {
		cw[c] = m.TruthMultiplier(c, t) / c.FreeFlowSpeed()
	}
	return cw
}

// TruthWeightFunc returns the travel-time weight function under the actual
// congestion at time t. Experiments use it to score chosen chargers against
// ground truth rather than forecasts.
func (m *TrafficModel) TruthWeightFunc(t time.Time) roadnet.WeightFunc {
	return m.TruthClassWeights(t).Func()
}

package roadnet

import (
	"math"
	"math/rand"

	"ecocharge/internal/geo"
)

// UrbanConfig parameterizes the synthetic urban network generator, the
// stand-in for the Oldenburg road network (45 km × 35 km in the paper).
type UrbanConfig struct {
	Origin       geo.Point // south-west corner
	WidthKM      float64   // east-west extent
	HeightKM     float64   // north-south extent
	SpacingM     float64   // target block size in meters
	RemoveFrac   float64   // fraction of street edges removed (irregularity)
	JitterFrac   float64   // node position jitter as a fraction of spacing
	ArterialEach int       // every n-th row/column is an arterial
	Seed         int64
}

// DefaultUrbanConfig mirrors Oldenburg's extent at a 500 m block size.
func DefaultUrbanConfig() UrbanConfig {
	return UrbanConfig{
		Origin:       geo.Point{Lat: 53.05, Lon: 8.05},
		WidthKM:      45,
		HeightKM:     35,
		SpacingM:     500,
		RemoveFrac:   0.08,
		JitterFrac:   0.25,
		ArterialEach: 5,
		Seed:         1,
	}
}

// GenerateUrban builds a jittered grid street network with periodic
// arterials, the essential topology the Brinkhoff generator moves objects
// over. The graph is frozen and guaranteed strongly connected on its kept
// edges by construction (edge removal skips edges that would disconnect the
// boundary lattice rows/columns).
func GenerateUrban(cfg UrbanConfig) *Graph {
	if cfg.SpacingM <= 0 {
		cfg.SpacingM = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := int(cfg.WidthKM*1000/cfg.SpacingM) + 1
	rows := int(cfg.HeightKM*1000/cfg.SpacingM) + 1
	if cols < 2 {
		cols = 2
	}
	if rows < 2 {
		rows = 2
	}
	g := NewGraph(rows*cols, rows*cols*4)

	metersLat := geo.EarthRadius * math.Pi / 180
	metersLon := metersLat * math.Cos(cfg.Origin.Lat*math.Pi/180)
	dLat := cfg.SpacingM / metersLat
	dLon := cfg.SpacingM / metersLon

	ids := make([]NodeID, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jLat := (rng.Float64() - 0.5) * cfg.JitterFrac * dLat
			jLon := (rng.Float64() - 0.5) * cfg.JitterFrac * dLon
			p := geo.Point{
				Lat: cfg.Origin.Lat + float64(r)*dLat + jLat,
				Lon: cfg.Origin.Lon + float64(c)*dLon + jLon,
			}
			ids[r*cols+c] = g.AddNode(p)
		}
	}
	class := func(rc int) RoadClass {
		if cfg.ArterialEach > 0 && rc%cfg.ArterialEach == 0 {
			return ClassArterial
		}
		return ClassLocal
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Horizontal edge to the east neighbor.
			if c+1 < cols {
				keep := r == 0 || r == rows-1 || rng.Float64() >= cfg.RemoveFrac
				if keep {
					g.AddBidirectional(ids[r*cols+c], ids[r*cols+c+1], 0, class(r))
				}
			}
			// Vertical edge to the north neighbor.
			if r+1 < rows {
				keep := c == 0 || c == cols-1 || rng.Float64() >= cfg.RemoveFrac
				if keep {
					g.AddBidirectional(ids[r*cols+c], ids[(r+1)*cols+c], 0, class(c))
				}
			}
		}
	}
	g.Freeze()
	return g
}

// HighwayConfig parameterizes the sparse long-range network generator, the
// stand-in for the California dataset (1,220 km × 400 km): a few corridors
// of motorway with feeder towns hanging off them.
type HighwayConfig struct {
	Origin    geo.Point
	WidthKM   float64
	HeightKM  float64
	Corridors int // count of east-west motorway corridors
	TownsPer  int // towns per corridor
	TownNodes int // local nodes per town
	Seed      int64
}

// DefaultHighwayConfig mirrors California's aspect ratio at reduced scale.
func DefaultHighwayConfig() HighwayConfig {
	return HighwayConfig{
		Origin:    geo.Point{Lat: 34.0, Lon: -121.0},
		WidthKM:   400,
		HeightKM:  130,
		Corridors: 3,
		TownsPer:  12,
		TownNodes: 25,
		Seed:      2,
	}
}

// GenerateHighway builds the corridor/town network and freezes it.
func GenerateHighway(cfg HighwayConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Corridors < 1 {
		cfg.Corridors = 1
	}
	if cfg.TownsPer < 2 {
		cfg.TownsPer = 2
	}
	if cfg.TownNodes < 1 {
		cfg.TownNodes = 1
	}
	g := NewGraph(cfg.Corridors*cfg.TownsPer*(cfg.TownNodes+1), 0)

	metersLat := geo.EarthRadius * math.Pi / 180
	metersLon := metersLat * math.Cos(cfg.Origin.Lat*math.Pi/180)
	latSpan := cfg.HeightKM * 1000 / metersLat
	lonSpan := cfg.WidthKM * 1000 / metersLon

	// Corridor junction nodes per corridor, west to east.
	junctions := make([][]NodeID, cfg.Corridors)
	for ci := 0; ci < cfg.Corridors; ci++ {
		lat := cfg.Origin.Lat + latSpan*(float64(ci)+0.5)/float64(cfg.Corridors)
		junctions[ci] = make([]NodeID, cfg.TownsPer)
		for ti := 0; ti < cfg.TownsPer; ti++ {
			lon := cfg.Origin.Lon + lonSpan*float64(ti)/float64(cfg.TownsPer-1)
			jLat := lat + (rng.Float64()-0.5)*latSpan*0.05
			junctions[ci][ti] = g.AddNode(geo.Point{Lat: jLat, Lon: lon})
		}
		for ti := 1; ti < cfg.TownsPer; ti++ {
			g.AddBidirectional(junctions[ci][ti-1], junctions[ci][ti], 0, ClassMotorway)
		}
	}
	// North-south connectors between corridors at a few longitudes.
	for ci := 1; ci < cfg.Corridors; ci++ {
		for ti := 0; ti < cfg.TownsPer; ti += 3 {
			g.AddBidirectional(junctions[ci-1][ti], junctions[ci][ti], 0, ClassHighway)
		}
	}
	// Local town clusters around each junction.
	for ci := range junctions {
		for _, j := range junctions[ci] {
			center := g.Node(j).P
			prev := j
			for n := 0; n < cfg.TownNodes; n++ {
				p := geo.Point{
					Lat: center.Lat + (rng.Float64()-0.5)*latSpan*0.02,
					Lon: center.Lon + (rng.Float64()-0.5)*lonSpan*0.008,
				}
				id := g.AddNode(p)
				g.AddBidirectional(prev, id, 0, ClassLocal)
				if n%4 == 3 { // occasional shortcut back to the junction
					g.AddBidirectional(j, id, 0, ClassArterial)
				}
				prev = id
			}
		}
	}
	// Ensure corridor 0 junction 0 connects everything: link corridors at
	// both ends too.
	for ci := 1; ci < cfg.Corridors; ci++ {
		last := cfg.TownsPer - 1
		g.AddBidirectional(junctions[ci-1][last], junctions[ci][last], 0, ClassHighway)
	}
	g.Freeze()
	return g
}

// ConnectedComponentSize returns the number of nodes reachable from src
// ignoring edge direction. Generators use it in tests to assert
// connectivity.
func (g *Graph) ConnectedComponentSize(src NodeID) int {
	g.mustFrozen()
	if !g.validID(src) {
		return 0
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{src}
	seen[src] = true
	count := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		push := func(e Edge) {
			var other NodeID
			if e.From == n {
				other = e.To
			} else {
				other = e.From
			}
			if !seen[other] {
				seen[other] = true
				stack = append(stack, other)
			}
		}
		g.OutEdges(n, push)
		g.InEdges(n, push)
	}
	return count
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WriteText renders every metric in a Prometheus-compatible text form:
// counters and gauges as single samples, histograms as cumulative
// <name>_bucket{le="..."} samples plus <name>_sum and <name>_count. Output
// is sorted by metric name so the format is golden-file testable.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.logHistograms) {
		h := r.logHistograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		// Summary semantics: precomputed quantiles — the 1920 log-linear
		// buckets stay internal, the text format carries the cut points the
		// load reports read (p50/p90/p99/p999).
		for _, q := range logQuantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, formatFloat(q), formatFloat(h.Quantile(q).Seconds())); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum().Seconds()), name, h.Count()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		buckets := h.snapshotBuckets()
		for i, b := range h.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), buckets[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, buckets[len(buckets)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum()), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot flattens the registry into name→value pairs: counters and
// gauges by name, histograms as <name>_count and <name>_sum. ecobench
// embeds snapshot deltas into its -json rows so BENCH files carry the
// cache/prune telemetry alongside SC%/ft_ms.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.histograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	for name, h := range r.logHistograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum().Seconds()
		out[name+"_p50"] = h.Quantile(0.5).Seconds()
		out[name+"_p99"] = h.Quantile(0.99).Seconds()
		out[name+"_p999"] = h.Quantile(0.999).Seconds()
	}
	return out
}

// DeltaSnapshot subtracts before from after, keeping keys whose value
// changed plus gauges/new keys as-is; both maps are Snapshot outputs.
func DeltaSnapshot(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		//ecolint:ignore floateq exact snapshot comparison: unchanged metrics are bit-identical
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Handler serves the text exposition (GET /metrics shape).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w) // client went away; nothing to do with the error
	})
}

// VarsHandler serves the Snapshot as JSON (the /debug/vars shape of the
// stdlib expvar package, without importing its global side effects).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot()) // client went away; nothing to do with the error
	})
}

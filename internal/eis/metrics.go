package eis

import "ecocharge/internal/obs"

// eisMetrics bundles the server- and client-side instrumentation handles of
// the EIS, resolved once at package init. Every update is a single atomic
// op; the request path never builds a metric name (per-endpoint histograms
// are distinct handles with constant names, not one histogram with a
// formatted label).
type eisMetrics struct {
	// Per-endpoint request duration histograms (server side, measured
	// around the handler including JSON encoding).
	httpChargers     *obs.Histogram
	httpInventory    *obs.Histogram
	httpWeather      *obs.Histogram
	httpAvailability *obs.Histogram
	httpTraffic      *obs.Histogram
	httpOffering     *obs.Histogram
	httpTrip         *obs.Histogram
	httpAdvice       *obs.Histogram

	// Response cache (the server-side dynamic cache).
	rescacheHits      *obs.Counter
	rescacheMisses    *obs.Counter
	rescacheExpired   *obs.Counter // entries reclaimed on touch or by the sweep
	rescacheEvictions *obs.Counter // capacity evictions of live entries
	rescacheEntries   *obs.Gauge   // current occupancy across all shards

	// Per-format response marshalling on the negotiated endpoints: the
	// histograms isolate the encode share of serving latency, the counters
	// track format adoption. Cache hits serve pre-encoded bytes and count
	// under the response counters only (no encode happens).
	encodeJSON *obs.Histogram
	encodeWire *obs.Histogram
	respJSON   *obs.Counter
	respWire   *obs.Counter
	// Binary-encoded request bodies accepted on POST endpoints.
	reqWire *obs.Counter

	// Single-flight offering computation: leaders run the ranking engine,
	// coalesced followers wait for the leader's table.
	flightLeads     *obs.Counter
	flightCoalesced *obs.Counter

	// Client-side circuit breaker state transitions.
	breakerOpened   *obs.Counter
	breakerHalfOpen *obs.Counter
	breakerClosed   *obs.Counter

	// Client retry attempts beyond the first exchange.
	clientRetries *obs.Counter
}

func newEISMetrics(r *obs.Registry) *eisMetrics {
	return &eisMetrics{
		httpChargers:     r.Histogram("eis_http_seconds_chargers", nil),
		httpInventory:    r.Histogram("eis_http_seconds_inventory", nil),
		httpWeather:      r.Histogram("eis_http_seconds_weather", nil),
		httpAvailability: r.Histogram("eis_http_seconds_availability", nil),
		httpTraffic:      r.Histogram("eis_http_seconds_traffic", nil),
		httpOffering:     r.Histogram("eis_http_seconds_offering", nil),
		httpTrip:         r.Histogram("eis_http_seconds_offering_trip", nil),
		httpAdvice:       r.Histogram("eis_http_seconds_advice", nil),

		rescacheHits:      r.Counter("eis_rescache_hits_total"),
		rescacheMisses:    r.Counter("eis_rescache_misses_total"),
		rescacheExpired:   r.Counter("eis_rescache_expired_total"),
		rescacheEvictions: r.Counter("eis_rescache_evictions_total"),
		rescacheEntries:   r.Gauge("eis_rescache_entries"),

		encodeJSON: r.Histogram("eis_encode_seconds_json", nil),
		encodeWire: r.Histogram("eis_encode_seconds_wire", nil),
		respJSON:   r.Counter("eis_responses_json_total"),
		respWire:   r.Counter("eis_responses_wire_total"),
		reqWire:    r.Counter("eis_requests_wire_total"),

		flightLeads:     r.Counter("eis_singleflight_leads_total"),
		flightCoalesced: r.Counter("eis_singleflight_coalesced_total"),

		breakerOpened:   r.Counter("eis_breaker_opened_total"),
		breakerHalfOpen: r.Counter("eis_breaker_halfopen_total"),
		breakerClosed:   r.Counter("eis_breaker_closed_total"),

		clientRetries: r.Counter("eis_client_retries_total"),
	}
}

var met = newEISMetrics(obs.Default())

package trajectory

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

// The CSV interchange format follows the T-drive release layout:
// one sample per row, `id,datetime,longitude,latitude`, rows of one
// trajectory contiguous and time-ordered. Datetimes are RFC3339 with
// nanoseconds (the original uses a local format; RFC3339 keeps the codec
// unambiguous and lossless).
var trajHeader = []string{"id", "time", "lon", "lat"}

// WriteCSV writes trajectories in the interchange format.
func WriteCSV(w io.Writer, trs []Trajectory) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(trajHeader); err != nil {
		return err
	}
	for _, tr := range trs {
		for _, p := range tr.Points {
			rec := []string{
				strconv.FormatInt(tr.ID, 10),
				p.T.UTC().Format(time.RFC3339Nano),
				strconv.FormatFloat(p.P.Lon, 'f', 6, 64),
				strconv.FormatFloat(p.P.Lat, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the interchange format, grouping rows by trajectory ID
// (rows of one ID need not be contiguous; samples are sorted by time).
func ReadCSV(r io.Reader) ([]Trajectory, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(trajHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trajectory: reading CSV header: %w", err)
	}
	for i, h := range trajHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trajectory: CSV header column %d is %q, want %q", i, header[i], h)
		}
	}
	byID := make(map[int64]*Trajectory)
	var order []int64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV line %d: id: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339Nano, rec[1])
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV line %d: time: %w", line, err)
		}
		lon, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV line %d: lon: %w", line, err)
		}
		lat, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV line %d: lat: %w", line, err)
		}
		p := geo.Point{Lat: lat, Lon: lon}
		if !p.Valid() {
			return nil, fmt.Errorf("trajectory: CSV line %d: invalid coordinates %v", line, p)
		}
		tr, ok := byID[id]
		if !ok {
			tr = &Trajectory{ID: id}
			byID[id] = tr
			order = append(order, id)
		}
		tr.Points = append(tr.Points, TimedPoint{P: p, T: ts})
	}
	out := make([]Trajectory, 0, len(order))
	for _, id := range order {
		tr := byID[id]
		sort.SliceStable(tr.Points, func(i, j int) bool { return tr.Points[i].T.Before(tr.Points[j].T) })
		out = append(out, *tr)
	}
	return out, nil
}

// MatchConfig tunes the GPS map-matcher.
type MatchConfig struct {
	// MaxSnapM rejects samples farther than this from any network node
	// (GPS outliers). 0 selects 300 m.
	MaxSnapM float64
	// MaxGap splits the trajectory when consecutive samples are farther
	// apart in time (vehicle parked / logger off). 0 selects 10 minutes.
	MaxGap time.Duration
}

func (c MatchConfig) withDefaults() MatchConfig {
	if c.MaxSnapM <= 0 {
		c.MaxSnapM = 300
	}
	if c.MaxGap <= 0 {
		c.MaxGap = 10 * time.Minute
	}
	return c
}

// MapMatch converts a raw GPS trajectory into scheduled trips on the road
// network: samples snap to their nearest node, consecutive snapped nodes
// are connected by shortest paths, and long time gaps split the stream
// into separate trips (the T-drive taxis park between rides). Unmatchable
// samples are skipped. The resulting trips carry synthetic IDs
// trajectoryID*1000 + tripIndex.
func MapMatch(g *roadnet.Graph, tr Trajectory, cfg MatchConfig) []Trip {
	cfg = cfg.withDefaults()
	if len(tr.Points) == 0 || g.NumNodes() == 0 {
		return nil
	}
	type snapped struct {
		node roadnet.NodeID
		t    time.Time
	}
	var snaps []snapped
	for _, p := range tr.Points {
		n := g.NearestNode(p.P)
		if n == roadnet.Invalid {
			continue
		}
		if geo.Distance(p.P, g.Node(n).P) > cfg.MaxSnapM {
			continue // outlier
		}
		// Collapse runs snapped to the same node.
		if len(snaps) > 0 && snaps[len(snaps)-1].node == n {
			continue
		}
		snaps = append(snaps, snapped{node: n, t: p.T})
	}
	if len(snaps) < 2 {
		return nil
	}

	var trips []Trip
	cur := roadnet.Path{Nodes: []roadnet.NodeID{snaps[0].node}}
	depart := snaps[0].t
	flush := func() {
		if len(cur.Nodes) >= 2 {
			trips = append(trips, Trip{
				ID:     tr.ID*1000 + int64(len(trips)),
				Path:   cur,
				Depart: depart,
			})
		}
	}
	for i := 1; i < len(snaps); i++ {
		prev, next := snaps[i-1], snaps[i]
		if next.t.Sub(prev.t) > cfg.MaxGap {
			flush()
			cur = roadnet.Path{Nodes: []roadnet.NodeID{next.node}}
			depart = next.t
			continue
		}
		leg, ok := g.ShortestPath(prev.node, next.node, roadnet.DistanceWeight)
		if !ok {
			// Disconnected hop: close the trip and restart.
			flush()
			cur = roadnet.Path{Nodes: []roadnet.NodeID{next.node}}
			depart = next.t
			continue
		}
		cur.Nodes = append(cur.Nodes, leg.Nodes[1:]...)
		cur.Weight += leg.Weight
	}
	flush()
	return trips
}

package tabletest

import (
	"strings"
	"testing"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/interval"
)

func entry(id int64, scMin, scMax float64) cknn.Entry {
	return cknn.Entry{
		Charger: &charger.Charger{ID: id},
		SC:      interval.New(scMin, scMax),
		Comp: cknn.Components{
			L: interval.New(scMin, scMax),
			A: interval.New(scMin, scMax),
			D: interval.New(0, 0),
		},
	}
}

func table(entries ...cknn.Entry) cknn.OfferingTable {
	return cknn.OfferingTable{Entries: entries}
}

func TestErrAcceptsValidTables(t *testing.T) {
	valid := table(entry(2, 0.6, 0.8), entry(1, 0.5, 0.7), entry(3, 0.1, 0.2))
	if err := Err(valid, 3, Options{}); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	if err := Err(cknn.OfferingTable{}, 3, Options{}); err != nil {
		t.Fatalf("empty table rejected: %v", err)
	}
	// Full ties must come out in charger-ID order.
	tied := table(entry(1, 0.5, 0.5), entry(2, 0.5, 0.5))
	if err := Err(tied, 2, Options{}); err != nil {
		t.Fatalf("ID-ordered tie rejected: %v", err)
	}
}

func TestErrCatchesViolations(t *testing.T) {
	degraded := entry(1, 0.2, 0.9)
	degraded.Comp.Degraded = cknn.DegradedL // but L is not the ignorance bound

	cases := []struct {
		name string
		tab  cknn.OfferingTable
		k    int
		want string
	}{
		{"too many entries", table(entry(1, 0.5, 0.5), entry(2, 0.4, 0.4)), 1, "at most"},
		{"nil charger", table(cknn.Entry{}), 3, "no charger"},
		{"duplicate charger", table(entry(1, 0.6, 0.6), entry(1, 0.5, 0.5)), 3, "twice"},
		{"SC above one", table(entry(1, 0.5, 1.5)), 3, "outside [0,1]"},
		//ecolint:ignore intervalliteral deliberately malformed interval: the harness must reject it
		{"SC inverted", table(cknn.Entry{Charger: &charger.Charger{ID: 1}, SC: interval.I{Min: 0.8, Max: 0.2}}), 3, "outside [0,1]"},
		{"degraded without ignorance bound", table(degraded), 3, "ignorance bound"},
		{"mid order violated", table(entry(1, 0.1, 0.2), entry(2, 0.6, 0.8)), 3, "out of order"},
		{"tie against ID order", table(entry(2, 0.5, 0.5), entry(1, 0.5, 0.5)), 3, "charger-ID order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Err(tc.tab, tc.k, Options{})
			if err == nil {
				t.Fatalf("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSkipScoresStillChecksStructure(t *testing.T) {
	// Random-style entries: no scores, out of mid order — fine when skipped.
	unscored := table(
		cknn.Entry{Charger: &charger.Charger{ID: 5}},
		cknn.Entry{Charger: &charger.Charger{ID: 2}},
	)
	if err := Err(unscored, 3, Options{SkipScores: true}); err != nil {
		t.Fatalf("unscored table rejected under SkipScores: %v", err)
	}
	dup := table(
		cknn.Entry{Charger: &charger.Charger{ID: 5}},
		cknn.Entry{Charger: &charger.Charger{ID: 5}},
	)
	if err := Err(dup, 3, Options{SkipScores: true}); err == nil {
		t.Fatal("duplicate charger accepted under SkipScores")
	}
}

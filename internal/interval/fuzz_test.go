package interval_test

import (
	"math"
	"testing"

	"ecocharge/internal/interval"
)

// FuzzFromBounds checks the constructor's contract over the whole float64
// domain: NaN bounds must panic, everything else must yield a valid
// interval spanning both inputs.
func FuzzFromBounds(f *testing.F) {
	f.Add(0.0, 1.0)
	f.Add(1.0, 0.0)
	f.Add(-1.5, -1.5)
	f.Add(math.Inf(-1), math.Inf(1))
	f.Add(math.NaN(), 0.0)
	f.Fuzz(func(t *testing.T, a, b float64) {
		if math.IsNaN(a) || math.IsNaN(b) {
			defer func() {
				if recover() == nil {
					t.Errorf("FromBounds(%v, %v) accepted a NaN bound", a, b)
				}
			}()
			interval.FromBounds(a, b)
			return
		}
		iv := interval.FromBounds(a, b)
		if !iv.Valid() {
			t.Fatalf("FromBounds(%v, %v) = %v is invalid", a, b, iv)
		}
		if iv.Min != math.Min(a, b) || iv.Max != math.Max(a, b) {
			t.Errorf("FromBounds(%v, %v) = %v, want [%v, %v]", a, b, iv, math.Min(a, b), math.Max(a, b))
		}
		if !iv.Contains(a) || !iv.Contains(b) {
			t.Errorf("FromBounds(%v, %v) = %v does not span its inputs", a, b, iv)
		}
	})
}

// FuzzOps drives the interval algebra with finite inputs and checks that
// no operation lets a NaN or inverted interval escape. Finite bounds are
// the EC domain (scores are normalized into [0, 1]); infinities can
// legitimately produce NaN via Inf-Inf and are exercised separately above.
func FuzzOps(f *testing.F) {
	f.Add(0.0, 1.0, 0.25, 0.75, 2.0)
	f.Add(-5.0, 3.0, -2.0, 8.0, -1.5)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1e300, 1e308, -1e308, -1e300, 1e10)
	// Regression: subnormal normalizer used to overflow 1/max to +Inf and
	// produce a [NaN, 1] interval via 0·Inf in Scale.
	f.Add(0.0, 1.0, 0.0, 1.0, 1e-320)
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2, s float64) {
		for _, v := range []float64{a1, a2, b1, b2, s} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("finite-domain fuzz")
			}
		}
		a := interval.FromBounds(a1, a2)
		b := interval.FromBounds(b1, b2)

		check := func(op string, iv interval.I) {
			t.Helper()
			if !iv.Valid() {
				t.Errorf("%s(%v, %v; s=%v) = %v is invalid", op, a, b, s, iv)
			}
		}
		check("Add", a.Add(b))
		check("Sub", a.Sub(b))
		check("Scale", a.Scale(s))
		check("Neg", a.Neg())
		check("Complement", a.Complement())
		check("Union", a.Union(b))
		check("Clamp", a.Clamp(interval.FromBounds(b1, b2).Min, interval.FromBounds(b1, b2).Max))
		check("Normalize", a.Normalize(s))

		if iv, ok := a.Intersect(b); ok {
			check("Intersect", iv)
			if !a.Overlaps(b) {
				t.Errorf("Intersect(%v, %v) non-empty but Overlaps is false", a, b)
			}
		} else if a.Overlaps(b) {
			t.Errorf("Intersect(%v, %v) empty but Overlaps is true", a, b)
		}

		norm := a.Normalize(s)
		if s > 0 && (norm.Min < 0 || norm.Max > 1) {
			t.Errorf("Normalize(%v, %v) = %v escapes [0, 1]", a, s, norm)
		}
		if math.IsNaN(a.Mid()) || math.IsNaN(a.Width()) {
			t.Errorf("Mid/Width of %v produced NaN", a)
		}
	})
}

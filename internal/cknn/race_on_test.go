//go:build race

package cknn

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation allocates inside sync.Pool and invalidates
// allocation-count assertions.
const raceEnabled = true

package charger

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	return roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 10, HeightKM: 8,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 1,
	})
}

func testSet(t testing.TB, n int) *Set {
	t.Helper()
	g := testGraph(t)
	s, err := Generate(g, ec.NewAvailabilityModel(1), GenConfig{N: n, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

func TestGenerateBasics(t *testing.T) {
	s := testSet(t, 200)
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
	g := testGraph(t)
	bounds := g.Bounds().Buffer(100)
	seenRates := map[RateClass]bool{}
	var withPanels int
	for _, c := range s.All() {
		if !bounds.Contains(c.P) {
			t.Fatalf("charger %d outside network bounds: %v", c.ID, c.P)
		}
		if c.Node < 0 || int(c.Node) >= g.NumNodes() {
			t.Fatalf("charger %d has invalid node %d", c.ID, c.Node)
		}
		if g.Node(c.Node).P != c.P {
			t.Fatalf("charger %d not placed on its node", c.ID)
		}
		if c.Plugs < 1 || c.Plugs > 4 {
			t.Fatalf("charger %d has %d plugs", c.ID, c.Plugs)
		}
		seenRates[c.Rate] = true
		if c.PanelKW > 0 {
			withPanels++
		}
	}
	if len(seenRates) < 3 {
		t.Errorf("rate mix too uniform: %v", seenRates)
	}
	if withPanels < 100 {
		t.Errorf("only %d/200 chargers have panels", withPanels)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testSet(t, 50)
	b := testSet(t, 50)
	for i := range a.All() {
		if a.All()[i].P != b.All()[i].P || a.All()[i].Rate != b.All()[i].Rate {
			t.Fatalf("charger %d differs across identical generations", i)
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	g := testGraph(t)
	if s, err := Generate(g, ec.NewAvailabilityModel(1), GenConfig{N: 0}); err != nil || s.Len() != 0 {
		t.Errorf("N=0: set=%v err=%v", s.Len(), err)
	}
	empty := roadnet.NewGraph(0, 0)
	empty.Freeze()
	if _, err := Generate(empty, ec.NewAvailabilityModel(1), GenConfig{N: 5}); err == nil {
		t.Error("generating on empty graph must fail")
	}
}

func TestNewSetRejectsDuplicateIDs(t *testing.T) {
	cs := []Charger{
		{ID: 1, P: geo.Point{Lat: 53, Lon: 8}},
		{ID: 1, P: geo.Point{Lat: 53.1, Lon: 8.1}},
	}
	if _, err := NewSet(cs); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestSetQueries(t *testing.T) {
	s := testSet(t, 300)
	c0 := s.All()[17]
	got, ok := s.ByID(c0.ID)
	if !ok || got.ID != c0.ID {
		t.Fatalf("ByID failed")
	}
	if _, ok := s.ByID(99999); ok {
		t.Error("ByID of unknown ID succeeded")
	}
	near := s.KNearest(c0.P, 5)
	if len(near) != 5 {
		t.Fatalf("KNearest returned %d", len(near))
	}
	if near[0].ID != c0.ID && geo.Distance(near[0].P, c0.P) > 1 {
		t.Errorf("nearest charger to a charger location is %v away", geo.Distance(near[0].P, c0.P))
	}
	within := s.Within(c0.P, 3000)
	for _, c := range within {
		if geo.Distance(c.P, c0.P) > 3000 {
			t.Errorf("Within returned charger at %v m", geo.Distance(c.P, c0.P))
		}
	}
	if s.MaxRESKW() <= 0 {
		t.Error("MaxPanelKW not positive")
	}
}

func TestEmptySetQueries(t *testing.T) {
	s, err := NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.KNearest(geo.Point{Lat: 53, Lon: 8}, 3); len(got) != 0 {
		t.Errorf("empty set KNearest = %v", got)
	}
	if got := s.Within(geo.Point{Lat: 53, Lon: 8}, 1000); len(got) != 0 {
		t.Errorf("empty set Within = %v", got)
	}
	if s.MaxRESKW() != 0 {
		t.Error("empty set MaxPanelKW != 0")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSet(t, 40)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back) != s.Len() {
		t.Fatalf("round trip length %d vs %d", len(back), s.Len())
	}
	for i, c := range back {
		orig := s.All()[i]
		if c.ID != orig.ID || c.Node != orig.Node || c.Rate != orig.Rate || c.Plugs != orig.Plugs {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, c, orig)
		}
		if geo.Distance(c.P, orig.P) > 0.2 {
			t.Fatalf("row %d position drifted %v m", i, geo.Distance(c.P, orig.P))
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header": "nope,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\n",
		"bad id":     "id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\nxx,53,8,0,11,5,0,2\n",
		"bad lat":    "id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\n1,abc,8,0,11,5,0,2\n",
		"lat range":  "id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\n1,95,8,0,11,5,0,2\n",
		"neg panel":  "id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\n1,53,8,0,11,-5,0,2\n",
		"neg wind":   "id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\n1,53,8,0,11,5,-2,2\n",
		"短 row":      "id,lat,lon,node,rate_kw,panel_kw,wind_kw,plugs\n1,53,8\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: malformed CSV accepted", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := testSet(t, 10)
	orig := s.All()[3]
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Charger
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != orig.ID || back.P != orig.P || back.Rate != orig.Rate ||
		back.PanelKW != orig.PanelKW || back.Timetable != orig.Timetable {
		t.Fatalf("JSON round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestJSONRejectsInvalidCoords(t *testing.T) {
	var c Charger
	if err := json.Unmarshal([]byte(`{"id":1,"lat":123,"lon":8}`), &c); err == nil {
		t.Fatal("invalid latitude accepted")
	}
}

func TestRateFromKW(t *testing.T) {
	cases := map[float64]RateClass{3.7: RateAC37, 11: RateAC11, 22: RateAC22, 50: RateDC50, 150: RateDC150, 12: RateAC11}
	for kw, want := range cases {
		if got := rateFromKW(kw); got != want {
			t.Errorf("rateFromKW(%v) = %v, want %v", kw, got, want)
		}
	}
}

func TestProductionSeries(t *testing.T) {
	s := testSet(t, 5)
	m := ec.NewSolarModel(1)
	c := &s.All()[0]
	if c.PanelKW == 0 { // find one with panels
		for i := range s.All() {
			if s.All()[i].PanelKW > 0 {
				c = &s.All()[i]
				break
			}
		}
	}
	from := time.Date(2017, 6, 10, 0, 0, 0, 0, time.UTC)
	to := from.Add(24 * time.Hour)
	series := ProductionSeries(m, c, from, to)
	if len(series) != 96 {
		t.Fatalf("24h of 15-min samples = %d, want 96", len(series))
	}
	var day, night float64
	for _, smp := range series {
		if smp.KW < 0 {
			t.Fatalf("negative production %v", smp.KW)
		}
		h := smp.Start.Hour()
		if h >= 10 && h < 14 {
			day += smp.KW
		}
		if h < 2 || h >= 22 {
			night += smp.KW
		}
	}
	if day <= night {
		t.Errorf("midday production %v not above night %v", day, night)
	}
	if got := ProductionSeries(m, c, to, from); got != nil {
		t.Error("reversed range must return nil")
	}
}

func TestRateClassStrings(t *testing.T) {
	if RateDC150.String() != "DC 150kW" || RateAC37.String() != "AC 3.7kW" {
		t.Error("RateClass String wrong")
	}
	if RateClass(200).KW() != 11 {
		t.Error("unknown rate KW default wrong")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecocharge/internal/lint"
)

// probeModule writes a throwaway single-file module into a temp dir so the
// CLI can be exercised end to end (go list, type-check, report) without
// touching the real tree.
func probeModule(t *testing.T, mainSrc string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lintprobe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(mainSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const dirtySrc = `package main

func eq(a, b float64) bool { return a == b }

func main() { _ = eq(1, 2) }
`

const cleanSrc = `package main

func main() {}
`

func TestRunFindings(t *testing.T) {
	dir := probeModule(t, dirtySrc)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "floateq") {
		t.Errorf("stdout missing floateq finding: %s", &stdout)
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary: %s", &stderr)
	}
}

func TestRunClean(t *testing.T) {
	dir := probeModule(t, cleanSrc)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no output on clean tree, got: %s", &stdout)
	}
}

func TestRunJSON(t *testing.T) {
	dir := probeModule(t, dirtySrc)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, &stderr)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, &stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "floateq" || d.Line == 0 || !strings.HasSuffix(d.File, "main.go") {
		t.Errorf("unexpected diagnostic %+v", d)
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	dir := probeModule(t, cleanSrc)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, &stderr)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestRunDisable(t *testing.T) {
	dir := probeModule(t, dirtySrc)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-disable", "floateq", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 with floateq disabled\nstdout: %s", code, &stdout)
	}
}

func TestRunEnableOther(t *testing.T) {
	dir := probeModule(t, dirtySrc)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-enable", "errignore,libprint", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 when floateq not enabled\nstdout: %s", code, &stdout)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-enable", "nonexistent"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer: exit code = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-enable", "floateq", "-disable", "nakedgo"}, &stdout, &stderr); code != 2 {
		t.Errorf("enable+disable: exit code = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-C", t.TempDir(), "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("empty dir (go list failure): exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range lint.All {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, &stdout)
		}
	}
}

// Package fixture exercises the lockheld analyzer: the file poses as part
// of internal/cknn (see the import path in lint_test.go), where a held
// mutex may not span a blocking operation and must unlock on every path.
package fixture

import (
	"net/http"
	"sync"
	"time"
)

type cache struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

// GoodDefer is the intended shape: lock, defer unlock, touch memory only.
func (c *cache) GoodDefer(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// GoodTrySend holds the lock across a send that cannot block: the select
// has a default arm.
func (c *cache) GoodTrySend(ch chan int) {
	c.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	c.mu.Unlock()
}

// GoodHelperPair uses same-package lock/unlock helpers; the summaries keep
// the books balanced.
func (c *cache) GoodHelperPair(k string) int {
	lockShard(c)
	defer unlockShard(c)
	return c.m[k]
}

// lockShard locks on behalf of its caller; holding at return is its
// contract, so the balance check exempts it.
func lockShard(c *cache) { c.mu.Lock() }

func unlockShard(c *cache) { c.mu.Unlock() }

// BadSleep parks the scheduler while every other goroutine queues on mu.
func (c *cache) BadSleep() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // flagged: held across time.Sleep
	c.mu.Unlock()
}

// BadRPC holds the lock across a network round trip.
func (c *cache) BadRPC(cl *http.Client, req *http.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := cl.Do(req) // flagged: held across an http request
	return err
}

// BadSend can block forever if no receiver is ready.
func (c *cache) BadSend(ch chan int) {
	c.mu.Lock()
	ch <- 1 // flagged: held across a channel send
	c.mu.Unlock()
}

// BadReadSleep shows RLock is tracked too.
func (c *cache) BadReadSleep() {
	c.rw.RLock()
	time.Sleep(time.Millisecond) // flagged
	c.rw.RUnlock()
}

// BadEarlyReturn leaves the lock held on the miss path.
func (c *cache) BadEarlyReturn(k string) (int, bool) {
	c.mu.Lock() // flagged: may still be held at return
	v, ok := c.m[k]
	if !ok {
		return 0, false
	}
	c.mu.Unlock()
	return v, true
}

// SuppressedWitness stands in for a deliberate hold with the escape hatch
// documenting why.
func (c *cache) SuppressedWitness() {
	c.mu.Lock()
	//ecolint:ignore lockheld startup-only path; nothing contends before serving begins
	time.Sleep(time.Millisecond)
	c.mu.Unlock()
}

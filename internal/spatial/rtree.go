package spatial

import (
	"container/heap"
	"math"
	"sort"

	"ecocharge/internal/geo"
)

// RTree is a static R-tree bulk-loaded with the Sort-Tile-Recursive (STR)
// packing algorithm. The moving-object kNN literature the paper builds on
// (Tao et al., Benetis et al., §VI.B) indexes with R-trees; this
// implementation provides the same best-first kNN and range search over a
// point set, optimized for the load-once/query-forever pattern of the
// charger inventory.
//
// Unlike Quadtree and Grid, RTree does not support incremental Insert
// after Bulk loading completes cheaply — Insert falls back to a simple
// node-expansion strategy adequate for occasional additions.
type RTree struct {
	root *rnode
	size int
	fan  int
}

const defaultRTreeFan = 16

type rnode struct {
	bounds   geo.BBox
	leaf     bool
	items    []Item   // leaf payload
	children []*rnode // internal payload
}

// NewRTree bulk-loads the items with STR packing. fan ≤ 1 selects the
// default fanout of 16.
func NewRTree(items []Item, fan int) *RTree {
	if fan <= 1 {
		fan = defaultRTreeFan
	}
	t := &RTree{fan: fan}
	t.Bulk(items)
	return t
}

// Bulk replaces the tree's contents with the STR packing of items.
func (t *RTree) Bulk(items []Item) {
	t.size = len(items)
	if len(items) == 0 {
		t.root = nil
		return
	}
	leaves := t.packLeaves(items)
	t.root = t.packUp(leaves)
}

// packLeaves sorts by longitude, tiles into vertical slices, sorts each
// slice by latitude, and cuts leaf nodes of up to fan items.
func (t *RTree) packLeaves(items []Item) []*rnode {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
		if sorted[i].P.Lon != sorted[j].P.Lon {
			return sorted[i].P.Lon < sorted[j].P.Lon
		}
		return sorted[i].P.Lat < sorted[j].P.Lat
	})
	leafCount := (len(sorted) + t.fan - 1) / t.fan
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	if sliceCount < 1 {
		sliceCount = 1
	}
	perSlice := sliceCount * t.fan

	var leaves []*rnode
	for start := 0; start < len(sorted); start += perSlice {
		end := start + perSlice
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[start:end]
		sort.Slice(slice, func(i, j int) bool {
			//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
			if slice[i].P.Lat != slice[j].P.Lat {
				return slice[i].P.Lat < slice[j].P.Lat
			}
			return slice[i].P.Lon < slice[j].P.Lon
		})
		for ls := 0; ls < len(slice); ls += t.fan {
			le := ls + t.fan
			if le > len(slice) {
				le = len(slice)
			}
			leaf := &rnode{leaf: true, items: append([]Item(nil), slice[ls:le]...)}
			leaf.bounds = itemsBounds(leaf.items)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packUp builds internal levels until a single root remains.
func (t *RTree) packUp(nodes []*rnode) *rnode {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			ci, cj := nodes[i].bounds.Center(), nodes[j].bounds.Center()
			//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
			if ci.Lon != cj.Lon {
				return ci.Lon < cj.Lon
			}
			return ci.Lat < cj.Lat
		})
		var level []*rnode
		for start := 0; start < len(nodes); start += t.fan {
			end := start + t.fan
			if end > len(nodes) {
				end = len(nodes)
			}
			n := &rnode{children: append([]*rnode(nil), nodes[start:end]...)}
			n.bounds = nodes[start].bounds
			for _, c := range n.children[1:] {
				n.bounds = n.bounds.Union(c.bounds)
			}
			level = append(level, n)
		}
		nodes = level
	}
	return nodes[0]
}

func itemsBounds(items []Item) geo.BBox {
	b := geo.BBox{Min: items[0].P, Max: items[0].P}
	for _, it := range items[1:] {
		b = b.Extend(it.P)
	}
	return b
}

// Len implements Index.
func (t *RTree) Len() int { return t.size }

// Insert implements Index with a least-enlargement descent; the tree stays
// correct but packing quality degrades under heavy incremental insertion
// (re-Bulk for that).
func (t *RTree) Insert(it Item) {
	t.size++
	if t.root == nil {
		t.root = &rnode{leaf: true, items: []Item{it}, bounds: geo.BBox{Min: it.P, Max: it.P}}
		return
	}
	n := t.root
	var path []*rnode
	for !n.leaf {
		path = append(path, n)
		best := n.children[0]
		bestGrow := math.Inf(1)
		for _, c := range n.children {
			grown := c.bounds.Extend(it.P)
			grow := bboxArea(grown) - bboxArea(c.bounds)
			if grow < bestGrow {
				bestGrow = grow
				best = c
			}
		}
		n = best
	}
	n.items = append(n.items, it)
	n.bounds = n.bounds.Extend(it.P)
	for _, p := range path {
		p.bounds = p.bounds.Extend(it.P)
	}
	// Split an overfull leaf in place by latitude median.
	if len(n.items) > 2*t.fan {
		t.splitLeaf(n)
	}
}

func (t *RTree) splitLeaf(n *rnode) {
	sort.Slice(n.items, func(i, j int) bool { return n.items[i].P.Lat < n.items[j].P.Lat })
	mid := len(n.items) / 2
	left := &rnode{leaf: true, items: append([]Item(nil), n.items[:mid]...)}
	right := &rnode{leaf: true, items: append([]Item(nil), n.items[mid:]...)}
	left.bounds = itemsBounds(left.items)
	right.bounds = itemsBounds(right.items)
	n.leaf = false
	n.items = nil
	n.children = []*rnode{left, right}
}

func bboxArea(b geo.BBox) float64 {
	return (b.Max.Lat - b.Min.Lat) * (b.Max.Lon - b.Min.Lon)
}

// rentry is the best-first queue element.
type rentry struct {
	dist float64
	node *rnode
	item Item
}

type rpq []rentry

func (q rpq) Len() int            { return len(q) }
func (q rpq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q rpq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *rpq) Push(x interface{}) { *q = append(*q, x.(rentry)) }
func (q *rpq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// KNN implements Index with the classic best-first R-tree search.
func (t *RTree) KNN(q geo.Point, k int) []Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	pq := rpq{{dist: t.root.bounds.DistanceTo(q), node: t.root}}
	heap.Init(&pq)
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(&pq).(rentry)
		switch {
		case e.node == nil:
			out = append(out, Neighbor{Item: e.item, Dist: e.dist})
		case e.node.leaf:
			for _, it := range e.node.items {
				heap.Push(&pq, rentry{dist: geo.Distance(q, it.P), item: it})
			}
		default:
			for _, c := range e.node.children {
				heap.Push(&pq, rentry{dist: c.bounds.DistanceTo(q), node: c})
			}
		}
	}
	stabilizeTies(out)
	return out
}

// Within implements Index by pruning subtrees beyond the radius.
func (t *RTree) Within(q geo.Point, radius float64) []Neighbor {
	if t.root == nil || radius < 0 {
		return nil
	}
	var out []Neighbor
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if n.bounds.DistanceTo(q) > radius {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				if d := geo.Distance(q, it.P); d <= radius {
					out = append(out, Neighbor{Item: it, Dist: d})
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sortNeighbors(out)
	return out
}

// Height returns the tree height, exposed for tests.
func (t *RTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// Server mode (Mode 2): the EcoCharge Information Server computes Offering
// Tables centrally and thin clients consume them over HTTP — the
// architecture of paper §IV. The example starts an EIS in-process, drives
// it with a client as a vehicle moves along a street, and shows the
// server-side dynamic cache absorbing repeat queries.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/eis"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

func main() {
	// Server side: the EIS owns the consolidated environment.
	graph := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin:  geo.Point{Lat: 53.08, Lon: 8.10},
		WidthKM: 10, HeightKM: 8, SpacingM: 500,
		RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 41,
	})
	solar := ec.NewSolarModel(13)
	avail := ec.NewAvailabilityModel(14)
	traffic := ec.NewTrafficModel(15)
	chargers, err := charger.Generate(graph, avail, charger.GenConfig{N: 120, Seed: 16})
	if err != nil {
		log.Fatal(err)
	}
	env, err := cknn.NewEnv(graph, chargers, solar, avail, traffic, cknn.EnvConfig{RadiusM: 10000})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(eis.NewServer(env, eis.ServerOptions{}).Handler())
	defer server.Close()
	fmt.Printf("EIS serving %d chargers at %s\n\n", chargers.Len(), server.URL)

	// Client side: a vehicle polling the server as it drives east.
	client := eis.NewClient(server.URL, server.Client())
	ctx := context.Background()
	if !client.Healthy(ctx) {
		log.Fatal("EIS not healthy")
	}

	now := time.Date(2024, 6, 18, 10, 0, 0, 0, time.UTC)
	pos := graph.Bounds().Center()
	fmt.Println("time   position              top charger  SC(mid)  served-from")
	for step := 0; step < 6; step++ {
		resp, err := client.Offering(ctx, eis.OfferingRequest{
			Lat: pos.Lat, Lon: pos.Lon, K: 3, RadiusM: 10000, Now: now,
		})
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.Entries) == 0 {
			log.Fatal("empty offering table")
		}
		top := resp.Entries[0]
		source := "computed"
		if resp.Cached {
			source = "server cache"
		}
		sc := top.SC.Interval()
		fmt.Printf("%s  (%.4f, %.4f)  charger %-4d  %.3f   %s\n",
			now.Format("15:04"), pos.Lat, pos.Lon, top.ChargerID, sc.Mid(), source)

		// Drive ~700 m east per minute; queries 2 and 3 land in the same
		// cache cell, later ones move beyond it.
		pos = geo.Destination(pos, 90, 700)
		now = now.Add(time.Minute)
	}

	// The client can also inspect the raw component feeds (Mode 3 pulls).
	first, err := client.Chargers(ctx, graph.Bounds().Center(), 2000)
	if err != nil || len(first) == 0 {
		log.Fatalf("charger pull failed: %v", err)
	}
	id := first[0].ID
	weather, err := client.Weather(ctx, id, now.Add(time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	availResp, err := client.Availability(ctx, id, now.Add(time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	trafficResp, err := client.Traffic(ctx, now.Add(time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nraw feeds for charger %d one hour ahead:\n", id)
	fmt.Printf("  production: [%.1f, %.1f] kW\n", weather.ProductionKW.Min, weather.ProductionKW.Max)
	fmt.Printf("  availability: [%.0f%%, %.0f%%]\n", availResp.Availability.Min*100, availResp.Availability.Max*100)
	fmt.Printf("  arterial congestion: [%.2fx, %.2fx]\n",
		trafficResp.Multiplier["arterial"].Min, trafficResp.Multiplier["arterial"].Max)
}

package cknn

import (
	"testing"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/trajectory"
)

func refineTrip(t *testing.T, env *Env) trajectory.Trip {
	t.Helper()
	trips, err := trajectory.Generate(env.Graph, trajectory.GenConfig{
		N: 1, Seed: 17, MinTripKM: 7, MaxTripKM: 12, Start: queryTime, Window: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trips[0]
}

func TestRefineSplitPointsSharpens(t *testing.T) {
	env := testEnv(t)
	m := NewEcoCharge(env, EcoChargeOptions{RadiusM: 10000, ReuseDistM: 1})
	opts := TripOptions{K: 3, SegmentLenM: 2500, RadiusM: 10000}
	trip := refineTrip(t, env)

	coarse := SplitList(env, m, trip, opts)
	refined := RefineSplitPoints(env, m, trip, opts, RefineOptions{})
	if len(refined) != len(coarse) {
		t.Fatalf("refinement changed split count: %d vs %d", len(refined), len(coarse))
	}
	if len(refined) < 2 {
		t.Skip("trip has a single result set; nothing to refine")
	}
	// Refined positions must lie between the coarse bracketing anchors and
	// keep the NN sets.
	segs := trajectory.SegmentTrip(env.Graph, trip, opts.SegmentLenM)
	for i := 1; i < len(refined); i++ {
		if !sameIDs(refined[i].NN, coarse[i].NN) {
			t.Fatalf("refinement changed NN set at %d", i)
		}
		lo := segs[coarse[i-1].SegmentIndex].Anchor
		hi := segs[coarse[i].SegmentIndex].Anchor
		span := geo.Distance(lo, hi)
		dLo := geo.Distance(lo, refined[i].P)
		dHi := geo.Distance(hi, refined[i].P)
		if dLo > span+500 || dHi > span+500 {
			t.Errorf("refined point %d escaped its bracket: span=%.0f dLo=%.0f dHi=%.0f", i, span, dLo, dHi)
		}
		// And it should be at least as precise as the coarse anchor (not
		// farther from the bracket interior).
		if dLo+dHi > 2*span+500 {
			t.Errorf("refined point %d inconsistent", i)
		}
	}
	// ETAs stay ordered.
	for i := 1; i < len(refined); i++ {
		if refined[i].ETA.Before(refined[i-1].ETA) {
			t.Fatalf("refined ETAs out of order at %d", i)
		}
	}
}

func TestRefineSinglePointList(t *testing.T) {
	env := testEnv(t)
	m := NewBruteForce(env)
	// A one-segment trip yields a single split point; refinement is a no-op.
	trips, err := trajectory.Generate(env.Graph, trajectory.GenConfig{
		N: 1, Seed: 3, MinTripKM: 1, MaxTripKM: 3, Start: queryTime, Window: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := TripOptions{K: 3, SegmentLenM: 1e7, RadiusM: 10000}
	got := RefineSplitPoints(env, m, trips[0], opts, RefineOptions{})
	if len(got) != 1 {
		t.Fatalf("expected a single split point, got %d", len(got))
	}
}

func TestTransitionDistance(t *testing.T) {
	if got := TransitionDistanceM(nil); got != nil {
		t.Errorf("nil input: %v", got)
	}
	pts := []SplitPoint{
		{P: geo.Point{Lat: 53.0, Lon: 8.0}},
		{P: geo.Point{Lat: 53.0, Lon: 8.1}},
		{P: geo.Point{Lat: 53.1, Lon: 8.1}},
	}
	ds := TransitionDistanceM(pts)
	if len(ds) != 2 {
		t.Fatalf("got %d distances", len(ds))
	}
	for _, d := range ds {
		if d <= 0 {
			t.Errorf("non-positive transition distance %v", d)
		}
	}
}

package trajectory

import (
	"math"
	"testing"
	"time"

	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

var t0 = time.Date(2024, 6, 18, 9, 0, 0, 0, time.UTC)

func smallGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	return roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin: geo.Point{Lat: 53.0, Lon: 8.0}, WidthKM: 12, HeightKM: 10,
		SpacingM: 500, RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 5, Seed: 1,
	})
}

func genTrips(t testing.TB, g *roadnet.Graph, n int) []Trip {
	t.Helper()
	trips, err := Generate(g, GenConfig{
		N: n, Seed: 7, MinTripKM: 3, MaxTripKM: 15, Start: t0, Window: time.Hour,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return trips
}

func TestGenerateRespectsConstraints(t *testing.T) {
	g := smallGraph(t)
	trips := genTrips(t, g, 30)
	if len(trips) != 30 {
		t.Fatalf("got %d trips", len(trips))
	}
	for _, trip := range trips {
		km := trip.Path.Weight / 1000
		if km < 3 || km > 15 {
			t.Errorf("trip %d length %.1f km outside [3, 15]", trip.ID, km)
		}
		if trip.Depart.Before(t0) || !trip.Depart.Before(t0.Add(time.Hour)) {
			t.Errorf("trip %d departs at %v outside window", trip.ID, trip.Depart)
		}
		if len(trip.Path.Nodes) < 2 {
			t.Errorf("trip %d has %d nodes", trip.ID, len(trip.Path.Nodes))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := smallGraph(t)
	a := genTrips(t, g, 10)
	b := genTrips(t, g, 10)
	for i := range a {
		if a[i].Path.Weight != b[i].Path.Weight || !a[i].Depart.Equal(b[i].Depart) {
			t.Fatalf("trip %d differs across identical generations", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	tiny := roadnet.NewGraph(1, 0)
	tiny.AddNode(geo.Point{Lat: 53, Lon: 8})
	tiny.Freeze()
	if _, err := Generate(tiny, GenConfig{N: 1}); err == nil {
		t.Error("1-node graph accepted")
	}
	g := smallGraph(t)
	// Impossible constraint: minimum longer than the network diameter.
	if _, err := Generate(g, GenConfig{N: 1, Seed: 1, MinTripKM: 10000}); err == nil {
		t.Error("impossible MinTripKM accepted")
	}
	if trips, err := Generate(g, GenConfig{N: 0}); err != nil || trips != nil {
		t.Errorf("N=0: trips=%v err=%v", trips, err)
	}
}

func TestSegmentTripCoversWholePath(t *testing.T) {
	g := smallGraph(t)
	trips := genTrips(t, g, 10)
	for _, trip := range trips {
		segs := SegmentTrip(g, trip, 4000)
		if len(segs) == 0 {
			t.Fatalf("trip %d: no segments", trip.ID)
		}
		// Segment chain is contiguous: each segment starts where the
		// previous ended, first at trip start, last at trip end.
		first := g.Node(trip.Path.Nodes[0]).P
		last := g.Node(trip.Path.Nodes[len(trip.Path.Nodes)-1]).P
		if segs[0].Start != first {
			t.Errorf("trip %d: first segment starts at %v, not %v", trip.ID, segs[0].Start, first)
		}
		if segs[len(segs)-1].End != last {
			t.Errorf("trip %d: last segment ends at %v, not %v", trip.ID, segs[len(segs)-1].End, last)
		}
		var total float64
		for i, s := range segs {
			if i > 0 && s.Start != segs[i-1].End {
				t.Errorf("trip %d: segment %d not contiguous", trip.ID, i)
			}
			if s.Index != i {
				t.Errorf("trip %d: segment index %d != %d", trip.ID, s.Index, i)
			}
			if len(s.Nodes) < 2 {
				t.Errorf("trip %d: segment %d has %d nodes", trip.ID, i, len(s.Nodes))
			}
			total += s.LengthM
		}
		if math.Abs(total-trip.Path.Weight) > 1 {
			t.Errorf("trip %d: segments sum to %.0f m, path weight %.0f m", trip.ID, total, trip.Path.Weight)
		}
		// Non-final segments reach at least the target length; all bounded
		// by target + longest edge (~spacing·2).
		for i, s := range segs[:len(segs)-1] {
			if s.LengthM < 4000 {
				t.Errorf("trip %d: segment %d only %.0f m", trip.ID, i, s.LengthM)
			}
		}
	}
}

func TestSegmentETAsMonotone(t *testing.T) {
	g := smallGraph(t)
	trips := genTrips(t, g, 5)
	for _, trip := range trips {
		segs := SegmentTrip(g, trip, 3000)
		prev := trip.Depart.Add(-time.Second)
		for _, s := range segs {
			if s.ETA.Before(prev) {
				t.Fatalf("trip %d: ETA went backwards at segment %d", trip.ID, s.Index)
			}
			if s.ETA.Before(trip.Depart) {
				t.Fatalf("trip %d: ETA before departure", trip.ID)
			}
			prev = s.ETA
		}
	}
}

func TestSegmentTripDegenerate(t *testing.T) {
	g := smallGraph(t)
	trip := Trip{ID: 1, Path: roadnet.Path{Nodes: []roadnet.NodeID{3}}, Depart: t0}
	if segs := SegmentTrip(g, trip, 4000); segs != nil {
		t.Errorf("single-node trip segmented: %v", segs)
	}
	// Short two-node trip yields exactly one segment.
	trips := genTrips(t, g, 1)
	segs := SegmentTrip(g, trips[0], 1e9)
	if len(segs) != 1 {
		t.Errorf("huge segment length produced %d segments", len(segs))
	}
}

func TestSampleTrajectory(t *testing.T) {
	g := smallGraph(t)
	trip := genTrips(t, g, 1)[0]
	tr := Sample(g, trip, 10*time.Second)
	if len(tr.Points) < 3 {
		t.Fatalf("trajectory has %d points", len(tr.Points))
	}
	// Timestamps strictly non-decreasing, positions near the path.
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].T.Before(tr.Points[i-1].T) {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
	// Sampled length close to path length (within 10%, interpolation cuts corners).
	if l := tr.LengthMeters(); math.Abs(l-trip.Path.Weight) > trip.Path.Weight*0.1 {
		t.Errorf("sampled length %.0f vs path %.0f", l, trip.Path.Weight)
	}
	if tr.Duration() <= 0 {
		t.Error("non-positive duration")
	}
	// Empty trip.
	empty := Sample(g, Trip{}, time.Second)
	if len(empty.Points) != 0 {
		t.Errorf("empty trip sampled %d points", len(empty.Points))
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("got %d profiles", len(ps))
	}
	wantNames := []string{"Oldenburg", "California", "T-drive", "Geolife"}
	for i, p := range ps {
		if p.Name != wantNames[i] {
			t.Errorf("profile %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if p.FullTrips <= 0 || p.Chargers <= 0 {
			t.Errorf("profile %s has zero sizes", p.Name)
		}
	}
	if _, err := ProfileByName("Oldenburg"); err != nil {
		t.Errorf("ProfileByName(Oldenburg): %v", err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfilesGenerateSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("profile generation is slow")
	}
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			g := p.BuildGraph(1)
			if g.NumNodes() == 0 {
				t.Fatal("empty graph")
			}
			trips, err := p.GenerateTrips(g, 0.002, 3, t0)
			if err != nil {
				t.Fatalf("GenerateTrips: %v", err)
			}
			if len(trips) == 0 {
				t.Fatal("no trips")
			}
			for _, trip := range trips {
				if len(SegmentTrip(g, trip, 4000)) == 0 {
					t.Fatalf("trip %d produced no segments", trip.ID)
				}
			}
		})
	}
}

func TestTDriveHotspotBias(t *testing.T) {
	p, _ := ProfileByName("T-drive")
	g := p.BuildGraph(1)
	trips, err := p.GenerateTrips(g, 0.005, 3, t0) // ~51 trips
	if err != nil {
		t.Fatalf("GenerateTrips: %v", err)
	}
	// With 60% hotspot bias over 6 hotspots, endpoint reuse must be high:
	// count distinct endpoints; biased generation reuses nodes heavily.
	endpoints := map[roadnet.NodeID]int{}
	for _, trip := range trips {
		endpoints[trip.Path.Nodes[0]]++
		endpoints[trip.Path.Nodes[len(trip.Path.Nodes)-1]]++
	}
	maxReuse := 0
	for _, c := range endpoints {
		if c > maxReuse {
			maxReuse = c
		}
	}
	if maxReuse < 3 {
		t.Errorf("hotspot bias missing: max endpoint reuse %d", maxReuse)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq reports == and != between floating-point expressions.
// Sustainability scores are estimates: comparing them for exact equality
// is almost always a bug — use an epsilon tolerance, interval dominance
// (DefinitelyLess / Dominates) or the interval helpers instead. When exact
// comparison is genuinely intended (sentinel checks, deterministic sort
// tie-breaks), suppress the finding with
//
//	//ecolint:ignore floateq <reason>
//
// Comparisons where both operands are compile-time constants are exempt:
// they are evaluated exactly by the compiler.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floating-point expressions; scores need tolerance or interval dominance",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isConstant(pass, bin.X) && isConstant(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison; use a tolerance or interval dominance (or //ecolint:ignore floateq with a reason)",
				bin.Op)
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}

func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

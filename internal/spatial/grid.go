package spatial

import (
	"math"

	"ecocharge/internal/geo"
)

// Grid is a uniform in-memory grid index. kNN is answered by the iterative
// deepening ring expansion the CkNN literature uses (Mouratidis et al.,
// Xiong et al., §VI.B of the paper): examine the query cell, then widen the
// search ring until k results are found whose distances are certified
// smaller than the unexplored region's minimum distance.
type Grid struct {
	bounds   geo.BBox
	cols     int
	rows     int
	cellLat  float64 // degrees per cell, latitude
	cellLon  float64 // degrees per cell, longitude
	cells    [][]Item
	size     int
	metersLa float64 // meters per degree latitude (constant)
	metersLo float64 // meters per degree longitude at the region's center
}

// NewGrid returns a grid over bounds with square-ish cells of approximately
// cellMeters on a side. cellMeters ≤ 0 selects 1000 m.
func NewGrid(bounds geo.BBox, cellMeters float64) *Grid {
	if cellMeters <= 0 {
		cellMeters = 1000
	}
	metersLat := geo.EarthRadius * math.Pi / 180
	metersLon := metersLat * math.Cos(bounds.Center().Lat*math.Pi/180)
	if metersLon < 1 {
		metersLon = 1
	}
	heightDeg := bounds.Max.Lat - bounds.Min.Lat
	widthDeg := bounds.Max.Lon - bounds.Min.Lon
	rows := int(math.Ceil(heightDeg * metersLat / cellMeters))
	cols := int(math.Ceil(widthDeg * metersLon / cellMeters))
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	// Guard against pathological tiny cells creating huge allocations.
	const maxCells = 1 << 22
	for rows*cols > maxCells {
		rows = (rows + 1) / 2
		cols = (cols + 1) / 2
	}
	return &Grid{
		bounds:   bounds,
		cols:     cols,
		rows:     rows,
		cellLat:  heightDeg / float64(rows),
		cellLon:  widthDeg / float64(cols),
		cells:    make([][]Item, rows*cols),
		metersLa: metersLat,
		metersLo: metersLon,
	}
}

// Len implements Index.
func (g *Grid) Len() int { return g.size }

// cellOf maps a point to row/col, clamping outside points to the border.
func (g *Grid) cellOf(p geo.Point) (row, col int) {
	if g.cellLat > 0 {
		row = int((p.Lat - g.bounds.Min.Lat) / g.cellLat)
	}
	if g.cellLon > 0 {
		col = int((p.Lon - g.bounds.Min.Lon) / g.cellLon)
	}
	if row < 0 {
		row = 0
	} else if row >= g.rows {
		row = g.rows - 1
	}
	if col < 0 {
		col = 0
	} else if col >= g.cols {
		col = g.cols - 1
	}
	return row, col
}

// Insert implements Index.
func (g *Grid) Insert(it Item) {
	row, col := g.cellOf(it.P)
	idx := row*g.cols + col
	g.cells[idx] = append(g.cells[idx], it)
	g.size++
}

// ringMinDistance returns a lower bound in meters on the distance from p to
// any cell in ring r (Chebyshev ring of cells around p's cell). Ring 0 is
// the query cell itself, lower bound 0.
func (g *Grid) ringMinDistance(r int) float64 {
	if r <= 0 {
		return 0
	}
	dLat := float64(r-1) * g.cellLat * g.metersLa
	dLon := float64(r-1) * g.cellLon * g.metersLo
	return math.Min(dLat, dLon)
}

// KNN implements Index via ring expansion.
func (g *Grid) KNN(q geo.Point, k int) []Neighbor {
	if k <= 0 || g.size == 0 {
		return nil
	}
	row, col := g.cellOf(q)
	maxRing := g.rows
	if g.cols > maxRing {
		maxRing = g.cols
	}
	var found []Neighbor
	for r := 0; r <= maxRing; r++ {
		// Stop when we already hold k results all closer than anything the
		// next ring could contain.
		if len(found) >= k {
			sortNeighbors(found)
			if found[k-1].Dist <= g.ringMinDistance(r) {
				return found[:k]
			}
		}
		if !g.scanRing(q, row, col, r, &found) && r > 0 && len(found) >= k {
			break
		}
	}
	sortNeighbors(found)
	if len(found) > k {
		found = found[:k]
	}
	return found
}

// scanRing appends all items of Chebyshev ring r around (row, col) to out.
// It reports whether any cell of the ring was inside the grid.
func (g *Grid) scanRing(q geo.Point, row, col, r int, out *[]Neighbor) bool {
	touched := false
	visit := func(rr, cc int) {
		if rr < 0 || rr >= g.rows || cc < 0 || cc >= g.cols {
			return
		}
		touched = true
		for _, it := range g.cells[rr*g.cols+cc] {
			*out = append(*out, Neighbor{Item: it, Dist: geo.Distance(q, it.P)})
		}
	}
	if r == 0 {
		visit(row, col)
		return touched
	}
	for cc := col - r; cc <= col+r; cc++ {
		visit(row-r, cc)
		visit(row+r, cc)
	}
	for rr := row - r + 1; rr <= row+r-1; rr++ {
		visit(rr, col-r)
		visit(rr, col+r)
	}
	return touched
}

// Within implements Index by scanning the rings that can reach radius.
func (g *Grid) Within(q geo.Point, radius float64) []Neighbor {
	if g.size == 0 || radius < 0 {
		return nil
	}
	row, col := g.cellOf(q)
	cellMeters := math.Min(g.cellLat*g.metersLa, g.cellLon*g.metersLo)
	maxRing := g.rows + g.cols
	if cellMeters > 0 {
		maxRing = int(radius/cellMeters) + 2
	}
	var all []Neighbor
	for r := 0; r <= maxRing; r++ {
		if g.ringMinDistance(r) > radius {
			break
		}
		g.scanRing(q, row, col, r, &all)
	}
	out := all[:0]
	for _, n := range all {
		if n.Dist <= radius {
			out = append(out, n)
		}
	}
	sortNeighbors(out)
	return out
}

// Dims reports rows and cols, exposed for tests and diagnostics.
func (g *Grid) Dims() (rows, cols int) { return g.rows, g.cols }

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IntervalLiteral reports composite literals of interval.I built outside
// package internal/interval. Raw literals bypass the ordered-bounds /
// non-NaN checks in interval.New and interval.FromBounds; a single
// inverted interval silently corrupts the CkNN-EC filtering phase, whose
// pruning rule (optimistic SC definitely below the k-th pessimistic SC)
// assumes Min <= Max everywhere. The empty literal interval.I{} is allowed:
// the zero value is the documented exact interval [0, 0].
var IntervalLiteral = &Analyzer{
	Name: "intervalliteral",
	Doc:  "flags interval.I{...} composite literals that bypass interval.New's invariant checks",
	Run:  runIntervalLiteral,
}

func runIntervalLiteral(pass *Pass) {
	if pass.Pkg.inIntervalPackage() {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if len(lit.Elts) == 0 {
				return true // interval.I{} is the valid zero interval [0, 0]
			}
			if isIntervalI(pass.TypeOf(lit)) {
				pass.Reportf(lit.Pos(),
					"composite literal of interval.I bypasses invariant checks; use interval.New, interval.Exact or interval.FromBounds")
			}
			return true
		})
	}
}

// isIntervalI reports whether t is the named type I from internal/interval.
func isIntervalI(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "I" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/interval")
}

// Quickstart: the minimal end-to-end EcoCharge flow — build a small urban
// road network, place chargers with solar panels on it, and ask for the
// top-3 most sustainable chargers around a position.
package main

import (
	"fmt"
	"log"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/roadnet"
)

func main() {
	// 1. A road network: a 6×5 km synthetic urban grid.
	graph := roadnet.GenerateUrban(roadnet.UrbanConfig{
		Origin:  geo.Point{Lat: 53.10, Lon: 8.20}, // Oldenburg-ish
		WidthKM: 6, HeightKM: 5, SpacingM: 500,
		RemoveFrac: 0.05, JitterFrac: 0.2, ArterialEach: 4, Seed: 7,
	})

	// 2. The three Estimated Component models and 60 chargers.
	solar := ec.NewSolarModel(1)
	avail := ec.NewAvailabilityModel(2)
	traffic := ec.NewTrafficModel(3)
	chargers, err := charger.Generate(graph, avail, charger.GenConfig{N: 60, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The environment and the EcoCharge method (R = 10 km, Q = 2 km).
	env, err := cknn.NewEnv(graph, chargers, solar, avail, traffic, cknn.EnvConfig{RadiusM: 10000})
	if err != nil {
		log.Fatal(err)
	}
	method := cknn.NewEcoCharge(env, cknn.EcoChargeOptions{RadiusM: 10000, ReuseDistM: 2000})

	// 4. One query: "I am here now, rank the chargers."
	now := time.Date(2024, 6, 18, 11, 0, 0, 0, time.UTC) // sunny late morning
	here := graph.Bounds().Center()
	node := graph.NearestNode(here)
	table := method.Rank(cknn.Query{
		Anchor: here, AnchorNode: node, ReturnNode: node,
		Now: now, ETABase: now, K: 3, RadiusM: 10000,
	})

	fmt.Printf("Offering Table at %s (%s):\n", here, now.Format("15:04"))
	for i, e := range table.Entries {
		fmt.Printf("%d. charger %-3d %-9s panels %4.1f kW  SC=%s  (L=%s A=%s D=%s)\n",
			i+1, e.Charger.ID, e.Charger.Rate, e.Charger.PanelKW,
			e.SC, e.Comp.L, e.Comp.A, e.Comp.D)
	}
}

package experiment

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ecocharge/internal/charger"
	"ecocharge/internal/cknn"
)

// RunChargerScalability sweeps the inventory size |B| on one dataset
// profile and measures EcoCharge and BruteForce: the supplementary
// experiment behind the paper's O(n) vs O(log n) discussion. Each point
// rebuilds the charger set (same placement seed) on the scenario's graph.
func RunChargerScalability(ctx context.Context, sc *Scenario, cfg RunConfig, counts []int) ([]Measurement, error) {
	if len(counts) == 0 {
		counts = []int{250, 500, 1000, 2000}
	}
	var out []Measurement
	for _, n := range counts {
		set, err := charger.Generate(sc.Graph, sc.Env.Avail, charger.GenConfig{N: n, Seed: sc.Seed + 2})
		if err != nil {
			return nil, fmt.Errorf("experiment: %d chargers: %w", n, err)
		}
		env, err := cknn.NewEnv(sc.Graph, set, sc.Env.Solar, sc.Env.Avail, sc.Env.Traffic,
			cknn.EnvConfig{RadiusM: cfg.withDefaults().RadiusM, Wind: sc.Env.Wind})
		if err != nil {
			return nil, err
		}
		scaled := *sc
		scaled.Env = env
		ms, err := runSeries(ctx, &scaled, cfg, allMethodFactories(), fmt.Sprintf("|B|=%d", n))
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// RunKSweep sweeps the Offering Table size k on one scenario for EcoCharge
// (with BruteForce as the SC% denominator at the same k).
func RunKSweep(ctx context.Context, sc *Scenario, cfg RunConfig, ks []int) ([]Measurement, error) {
	if len(ks) == 0 {
		ks = []int{1, 3, 5, 10}
	}
	var out []Measurement
	for _, k := range ks {
		c := cfg
		c.K = k
		ms, err := runSeries(ctx, sc, c, ecoOnlyFactory(), fmt.Sprintf("k=%d", k))
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if m.Method == "EcoCharge" {
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// WriteMeasurementsCSV exports measurements for external plotting.
func WriteMeasurementsCSV(w io.Writer, ms []Measurement) error {
	cw := csv.NewWriter(w)
	header := []string{
		"dataset", "method", "config",
		"sc_mean", "sc_stddev", "ft_ms_mean", "ft_ms_stddev",
		"queries", "cache_hits", "cache_misses",
		"share_l", "share_a", "share_d",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, m := range ms {
		rec := []string{
			m.Dataset, m.Method, m.Config,
			f(m.SCPercent.Mean), f(m.SCPercent.StdDev),
			f(m.FtMillis.Mean), f(m.FtMillis.StdDev),
			strconv.Itoa(m.Queries), strconv.Itoa(m.CacheHits), strconv.Itoa(m.CacheMiss),
			f(m.Shares.L), f(m.Shares.A), f(m.Shares.D),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

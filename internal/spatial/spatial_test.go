package spatial

import (
	"math/rand"
	"testing"

	"ecocharge/internal/geo"
)

var testBounds = geo.BBox{
	Min: geo.Point{Lat: 53.0, Lon: 8.0},
	Max: geo.Point{Lat: 53.4, Lon: 8.6},
}

func randomItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID: int64(i),
			P: geo.Point{
				Lat: testBounds.Min.Lat + r.Float64()*(testBounds.Max.Lat-testBounds.Min.Lat),
				Lon: testBounds.Min.Lon + r.Float64()*(testBounds.Max.Lon-testBounds.Min.Lon),
			},
		}
	}
	return items
}

func buildAll(items []Item) (bf *BruteForce, qt *Quadtree, gr *Grid) {
	bf = NewBruteForce()
	qt = NewQuadtree(testBounds, 8)
	gr = NewGrid(testBounds, 2000)
	for _, it := range items {
		bf.Insert(it)
		qt.Insert(it)
		gr.Insert(it)
	}
	return bf, qt, gr
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func TestIndexesAgreeWithBruteForceKNN(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	items := randomItems(r, 500)
	bf, qt, gr := buildAll(items)

	for trial := 0; trial < 100; trial++ {
		q := geo.Point{
			Lat: testBounds.Min.Lat + r.Float64()*0.4,
			Lon: testBounds.Min.Lon + r.Float64()*0.6,
		}
		for _, k := range []int{1, 3, 10, 50} {
			want := bf.KNN(q, k)
			if got := qt.KNN(q, k); !neighborsEqual(got, want) {
				t.Fatalf("trial %d k=%d: quadtree KNN mismatch\n got=%v\nwant=%v", trial, k, got, want)
			}
			if got := gr.KNN(q, k); !neighborsEqual(got, want) {
				t.Fatalf("trial %d k=%d: grid KNN mismatch\n got=%v\nwant=%v", trial, k, got, want)
			}
		}
	}
}

func TestIndexesAgreeWithBruteForceWithin(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	items := randomItems(r, 400)
	bf, qt, gr := buildAll(items)

	for trial := 0; trial < 50; trial++ {
		q := geo.Point{
			Lat: testBounds.Min.Lat + r.Float64()*0.4,
			Lon: testBounds.Min.Lon + r.Float64()*0.6,
		}
		for _, radius := range []float64{500, 3000, 15000} {
			want := bf.Within(q, radius)
			if got := qt.Within(q, radius); !neighborsEqual(got, want) {
				t.Fatalf("trial %d r=%.0f: quadtree Within mismatch: got %d want %d", trial, radius, len(got), len(want))
			}
			if got := gr.Within(q, radius); !neighborsEqual(got, want) {
				t.Fatalf("trial %d r=%.0f: grid Within mismatch: got %d want %d", trial, radius, len(got), len(want))
			}
		}
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(1)), 5)
	_, qt, gr := buildAll(items)
	q := testBounds.Center()
	if got := qt.KNN(q, 10); len(got) != 5 {
		t.Errorf("quadtree KNN k>n returned %d items, want 5", len(got))
	}
	if got := gr.KNN(q, 10); len(got) != 5 {
		t.Errorf("grid KNN k>n returned %d items, want 5", len(got))
	}
}

func TestKNNEmptyAndZeroK(t *testing.T) {
	qt := NewQuadtree(testBounds, 0)
	gr := NewGrid(testBounds, 0)
	bf := NewBruteForce()
	q := testBounds.Center()
	for name, idx := range map[string]Index{"quadtree": qt, "grid": gr, "bruteforce": bf} {
		if got := idx.KNN(q, 3); len(got) != 0 {
			t.Errorf("%s: empty index KNN = %v, want none", name, got)
		}
	}
	qt.Insert(Item{P: q, ID: 1})
	if got := qt.KNN(q, 0); got != nil {
		t.Errorf("k=0 KNN = %v, want nil", got)
	}
}

func TestQuadtreeDuplicatePointsSplitSafely(t *testing.T) {
	qt := NewQuadtree(testBounds, 2)
	p := testBounds.Center()
	for i := 0; i < 100; i++ {
		qt.Insert(Item{P: p, ID: int64(i)})
	}
	if qt.Len() != 100 {
		t.Fatalf("Len = %d, want 100", qt.Len())
	}
	got := qt.KNN(p, 100)
	if len(got) != 100 {
		t.Fatalf("KNN on 100 co-located points returned %d", len(got))
	}
	// Ties must come back in ID order.
	for i, n := range got {
		if n.ID != int64(i) {
			t.Fatalf("tie order broken at %d: ID %d", i, n.ID)
		}
	}
	if d := qt.Depth(); d > maxDepth+1 {
		t.Errorf("depth %d exceeded maxDepth bound", d)
	}
}

func TestQuadtreeClampsOutOfBounds(t *testing.T) {
	qt := NewQuadtree(testBounds, 4)
	stray := geo.Point{Lat: 60.0, Lon: 20.0} // far outside
	qt.Insert(Item{P: stray, ID: 99})
	got := qt.KNN(testBounds.Max, 1)
	if len(got) != 1 || got[0].ID != 99 {
		t.Fatalf("stray point not retrievable: %v", got)
	}
	if !testBounds.Contains(got[0].P) {
		t.Errorf("stray point not clamped into bounds: %v", got[0].P)
	}
}

func TestWithinRadiusBoundaryInclusive(t *testing.T) {
	bf := NewBruteForce()
	center := testBounds.Center()
	target := geo.Destination(center, 90, 1000)
	bf.Insert(Item{P: target, ID: 1})
	d := geo.Distance(center, target)
	if got := bf.Within(center, d); len(got) != 1 {
		t.Errorf("point exactly at radius excluded")
	}
	if got := bf.Within(center, d-1); len(got) != 0 {
		t.Errorf("point beyond radius included")
	}
}

func TestGridDims(t *testing.T) {
	g := NewGrid(testBounds, 2000)
	rows, cols := g.Dims()
	if rows < 10 || cols < 10 {
		t.Errorf("grid dims %dx%d too coarse for 2km cells over ~44x40km", rows, cols)
	}
	// Degenerate box must still produce at least one cell.
	g2 := NewGrid(geo.BBox{Min: testBounds.Min, Max: testBounds.Min}, 1000)
	r2, c2 := g2.Dims()
	if r2 < 1 || c2 < 1 {
		t.Errorf("degenerate grid dims %dx%d", r2, c2)
	}
	g2.Insert(Item{P: testBounds.Min, ID: 1})
	if got := g2.KNN(testBounds.Min, 1); len(got) != 1 {
		t.Errorf("degenerate grid KNN failed: %v", got)
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	_, qt, gr := buildAll(randomItems(rand.New(rand.NewSource(3)), 50))
	q := testBounds.Center()
	if got := gr.Within(q, -1); len(got) != 0 {
		t.Errorf("grid negative radius returned %d items", len(got))
	}
	if got := qt.Within(q, -1); len(got) != 0 {
		t.Errorf("quadtree negative radius returned %d items", len(got))
	}
}

func TestClusteredDistribution(t *testing.T) {
	// Heavy clustering stresses quadtree splitting and grid ring logic.
	r := rand.New(rand.NewSource(11))
	var items []Item
	id := int64(0)
	for c := 0; c < 5; c++ {
		cLat := testBounds.Min.Lat + r.Float64()*0.4
		cLon := testBounds.Min.Lon + r.Float64()*0.6
		for i := 0; i < 200; i++ {
			items = append(items, Item{
				ID: id,
				P:  geo.Point{Lat: cLat + r.NormFloat64()*0.002, Lon: cLon + r.NormFloat64()*0.002},
			})
			id++
		}
	}
	// Clamp any wandering normal samples back into bounds for the oracle.
	for i := range items {
		items[i].P = clampInto(items[i].P, testBounds)
	}
	bf, qt, gr := buildAll(items)
	for trial := 0; trial < 30; trial++ {
		q := geo.Point{
			Lat: testBounds.Min.Lat + r.Float64()*0.4,
			Lon: testBounds.Min.Lon + r.Float64()*0.6,
		}
		want := bf.KNN(q, 20)
		if got := qt.KNN(q, 20); !neighborsEqual(got, want) {
			t.Fatalf("clustered quadtree mismatch at trial %d", trial)
		}
		if got := gr.KNN(q, 20); !neighborsEqual(got, want) {
			t.Fatalf("clustered grid mismatch at trial %d", trial)
		}
	}
}

func BenchmarkQuadtreeKNN(b *testing.B) {
	items := randomItems(rand.New(rand.NewSource(5)), 10000)
	qt := NewQuadtree(testBounds, 0)
	for _, it := range items {
		qt.Insert(it)
	}
	q := testBounds.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt.KNN(q, 10)
	}
}

func BenchmarkGridKNN(b *testing.B) {
	items := randomItems(rand.New(rand.NewSource(5)), 10000)
	gr := NewGrid(testBounds, 1000)
	for _, it := range items {
		gr.Insert(it)
	}
	q := testBounds.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gr.KNN(q, 10)
	}
}

func BenchmarkBruteForceKNN(b *testing.B) {
	items := randomItems(rand.New(rand.NewSource(5)), 10000)
	bf := NewBruteForce()
	for _, it := range items {
		bf.Insert(it)
	}
	q := testBounds.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.KNN(q, 10)
	}
}

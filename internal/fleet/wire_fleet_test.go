package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ecocharge/internal/eis"
	"ecocharge/internal/fault"
	"ecocharge/internal/wire"
)

// TestChaosFleetWireShardByteIdentity turns the binary shard plane on and
// repeats the fault-free identity bar: with every gateway↔shard exchange
// negotiated binary, the JSON a client sees must still be byte-identical to
// a single EIS over the whole inventory. The decode counters prove the
// exchanges actually travelled binary rather than silently falling back.
func TestChaosFleetWireShardByteIdentity(t *testing.T) {
	wireBefore := met.decodeWire.Count()
	h := newFleetHarness(t, harnessOpts{n: 3, gw: func(o *Options) { o.WireShards = true }})
	center := h.env.Graph.Bounds().Center()
	at := fixedNow.Add(time.Hour).Format(time.RFC3339)

	for _, radius := range []float64{1, 3000, 50000} {
		pathq := eis.APIVersion + "/chargers?lat=" + fmtFloat(center.Lat) + "&lon=" + fmtFloat(center.Lon) + "&radius_m=" + fmtFloat(radius)
		h.assertIdentical("chargers", http.MethodGet, pathq, nil)
	}

	// Point lookups and traffic are pass-through: the gateway forwards the
	// client's Accept, so a JSON client gets JSON straight off the shard.
	all := h.env.Chargers.All()
	probe := all[0]
	for _, c := range all {
		if h.part.ShardOf(c.ID) == 1 {
			probe = c
			break
		}
	}
	q := "?charger=" + fmt.Sprint(probe.ID) + "&t=" + at
	h.assertIdentical("weather", http.MethodGet, eis.APIVersion+"/weather"+q, nil)
	h.assertIdentical("availability", http.MethodGet, eis.APIVersion+"/availability"+q, nil)
	h.assertIdentical("traffic", http.MethodGet, eis.APIVersion+"/traffic?t="+at, nil)

	// Offering: fresh then cache-hit, both byte-identical even though the
	// shard legs carried binary tables.
	body := offeringBody(t, eis.OfferingRequest{
		Lat: center.Lat, Lon: center.Lon, K: 4, RadiusM: 5000,
		Weights: eis.WeightsJSON{L: 2, A: 1, D: 1}, Now: fixedNow,
	})
	h.assertIdentical("offering", http.MethodPost, eis.APIVersion+"/offering", body)
	h.assertIdentical("offering cached", http.MethodPost, eis.APIVersion+"/offering", body)
	// Errors pass through as JSON regardless of the shard plane's format.
	h.assertIdentical("offering bad weights", http.MethodPost, eis.APIVersion+"/offering",
		offeringBody(t, eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, Weights: eis.WeightsJSON{L: -1}, Now: fixedNow}))

	if met.decodeWire.Count() == wireBefore {
		t.Fatal("WireShards gateway never decoded a binary shard response — the exchanges fell back to JSON")
	}
}

// TestChaosFleetWireClientNegotiation asks the WireShards gateway itself
// for binary: the decoded table must match the single EIS answer, and a
// degraded synth (dead shard) must still answer a binary client correctly.
func TestChaosFleetWireClientNegotiation(t *testing.T) {
	h := newFleetHarness(t, harnessOpts{n: 3, gw: func(o *Options) { o.WireShards = true }})
	center := h.env.Graph.Bounds().Center()

	oreq := eis.OfferingRequest{Lat: center.Lat, Lon: center.Lon, K: 5, RadiusM: 6000, Now: fixedNow}
	body := offeringBody(t, oreq)

	// Single EIS JSON oracle.
	_, singleBody, _ := doReq(t, h.single.URL, http.MethodPost, eis.APIVersion+"/offering", body)

	// Binary client against the gateway.
	req, err := http.NewRequest(http.MethodPost, h.gwts.URL+eis.APIVersion+"/offering", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.200s", resp.StatusCode, buf.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsWire(ct) {
		t.Fatalf("gateway ignored the binary negotiation: Content-Type %q", ct)
	}
	var got eis.OfferingResponse
	if err := wire.DecodeInto(buf.Bytes(), &got); err != nil {
		t.Fatalf("decoding gateway binary response: %v", err)
	}
	rendered, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(rendered, '\n'), singleBody) {
		t.Fatalf("binary gateway table differs from single EIS\nwire:   %.400s\nsingle: %.400s", rendered, singleBody)
	}
}

// TestChaosFleetWireBlackoutSynth kills one shard under a WireShards
// gateway: the synthesized ignorance-bound entries must merge into the
// binary shard tables exactly as they do on the JSON plane, for JSON and
// binary clients alike.
func TestChaosFleetWireBlackoutSynth(t *testing.T) {
	mk := func(wireShards bool) (*fleetHarness, []byte) {
		h := newFleetHarness(t, harnessOpts{
			n: 3,
			shapes: func(hosts []string) map[string]fault.ShardShape {
				return map[string]fault.ShardShape{hosts[1]: {Blackouts: blackoutForever}}
			},
			gw: func(o *Options) { o.WireShards = wireShards },
		})
		ctx := context.Background()
		h.gw.ProbeAll(ctx) // tick 0: healthy — inventories cached
		h.inj.Advance(1)   // shard 1 goes dark
		h.gw.ProbeAll(ctx)
		h.gw.ProbeAll(ctx) // two failed probe rounds trip the breaker
		center := h.env.Graph.Bounds().Center()
		body := offeringBody(t, eis.OfferingRequest{
			Lat: center.Lat, Lon: center.Lon, K: 4, RadiusM: 5000, Now: fixedNow,
		})
		status, respBody, hdr := doReq(t, h.gwts.URL, http.MethodPost, eis.APIVersion+"/offering", body)
		if status != http.StatusOK {
			t.Fatalf("blackout offering: status %d: %.200s", status, respBody)
		}
		if hdr.Get(degradedHeader) == "" {
			t.Fatal("blackout response not marked shard-degraded")
		}
		return h, respBody
	}

	_, jsonPlane := mk(false)
	_, wirePlane := mk(true)
	if !bytes.Equal(jsonPlane, wirePlane) {
		t.Fatalf("blackout synthesis differs between shard planes\njson plane: %.400s\nwire plane: %.400s", jsonPlane, wirePlane)
	}
}

package cknn

// Differential suite for the batched derouting maps: the target-aware
// variants (deroutingMapsTo / deroutingMapsApproxTo) must price every
// target bit-identically to both the full-ball expansions they replace and
// the original map-backed implementation, across the exact/approx × query
// shape × bound matrix. The all-nodes run extends the comparison to every
// node of the graph — with the whole graph as the target set, early
// termination never fires and the batched expansion degenerates to the full
// ball, so Cost/TravelTo must agree everywhere, not just at chargers.

import (
	"math"
	"testing"

	"ecocharge/internal/charger"
	"ecocharge/internal/roadnet"
)

// allChargerPtrs adapts the charger set to the pointer slice the ranking
// methods hand to deroutTargets.
func allChargerPtrs(env *Env) []*charger.Charger {
	all := env.Chargers.All()
	out := make([]*charger.Charger, len(all))
	for i := range all {
		out[i] = &all[i]
	}
	return out
}

// compareDeroutingAtTargets checks batch ≡ full ≡ map-backed ref at every
// target node, bit for bit, for both Cost and TravelTo.
func compareDeroutingAtTargets(t *testing.T, label string, batch, full DeroutingMaps, ref refDerouting, targets []roadnet.NodeID) {
	t.Helper()
	priced := 0
	for _, n := range targets {
		bc, bok := batch.Cost(n)
		fc, fok := full.Cost(n)
		rc, rok := ref.cost(n)
		if bok != fok || bok != rok {
			t.Fatalf("%s node %d: Cost reachability batch=%v full=%v ref=%v", label, n, bok, fok, rok)
		}
		if bok {
			priced++
			if !sameInterval(bc, fc) || !sameInterval(bc, rc) {
				t.Fatalf("%s node %d: Cost batch=%v full=%v ref=%v", label, n, bc, fc, rc)
			}
		}
		bt, bok2 := batch.TravelTo(n)
		ft, fok2 := full.TravelTo(n)
		rt, rok2 := ref.travelTo(n)
		if bok2 != fok2 || bok2 != rok2 {
			t.Fatalf("%s node %d: TravelTo reachability batch=%v full=%v ref=%v", label, n, bok2, fok2, rok2)
		}
		if bok2 && (!sameInterval(bt, ft) || !sameInterval(bt, rt)) {
			t.Fatalf("%s node %d: TravelTo batch=%v full=%v ref=%v", label, n, bt, ft, rt)
		}
	}
	if priced == 0 && len(targets) > 1 {
		t.Fatalf("%s: no target was priced; the comparison is vacuous", label)
	}
}

// batchQueryMatrix is the query-shape × bound matrix shared by the batched
// differential tests: anchored return, distinct return, defaulted return,
// each unbounded, tightly bounded, and budget-bounded.
func batchQueryMatrix(env *Env) (map[string]Query, []float64) {
	base := testQuery(env).normalized()
	distinctRet := base
	distinctRet.ReturnNode = roadnet.NodeID(env.Graph.NumNodes() / 3)
	noRet := base
	noRet.ReturnNode = -1
	noRet = noRet.normalized()
	return map[string]Query{
		"anchored": base, "distinctReturn": distinctRet, "defaultReturn": noRet,
	}, []float64{math.Inf(1), 600, base.RadiusM / avgUrbanSpeed}
}

// TestBatchedDeroutingMatchesFullBallAtTargets is the production-shaped
// differential property: with the candidate chargers (plus return node) as
// the target set — exactly what the ranking methods pass — both batched
// variants must reproduce the full-ball and map-backed prices at every
// target.
func TestBatchedDeroutingMatchesFullBallAtTargets(t *testing.T) {
	env := testEnv(t)
	queries, bounds := batchQueryMatrix(env)
	for qname, q := range queries {
		for _, bound := range bounds {
			targets := deroutTargets(allChargerPtrs(env), q.ReturnNode)

			batchE := env.deroutingMapsTo(q, bound, targets)
			fullE := env.deroutingMaps(q, bound)
			refE := refDeroutingExact(env, q, bound)
			compareDeroutingAtTargets(t, qname+"/exact", batchE, fullE, refE, targets)
			batchE.Release()
			fullE.Release()

			batchA := env.deroutingMapsApproxTo(q, bound, targets)
			fullA := env.deroutingMapsApprox(q, bound)
			refA := refDeroutingApprox(env, q, bound)
			compareDeroutingAtTargets(t, qname+"/approx", batchA, fullA, refA, targets)
			batchA.Release()
			fullA.Release()
		}
	}
}

// TestBatchedDeroutingAllNodesMatchesEverywhere widens the target set to
// the whole graph: the batched expansion then settles exactly the full
// ball, and Cost/TravelTo must match the map-backed oracle at every node —
// the same every-node sweep the full-ball suite runs, now through the
// batched entry point.
func TestBatchedDeroutingAllNodesMatchesEverywhere(t *testing.T) {
	env := testEnv(t)
	all := make([]roadnet.NodeID, env.Graph.NumNodes())
	for i := range all {
		all[i] = roadnet.NodeID(i)
	}
	queries, bounds := batchQueryMatrix(env)
	for qname, q := range queries {
		for _, bound := range bounds {
			batchE := env.deroutingMapsTo(q, bound, all)
			refE := refDeroutingExact(env, q, bound)
			compareDerouting(t, env, qname+"/exact/allNodes", batchE, refE)
			batchE.Release()

			batchA := env.deroutingMapsApproxTo(q, bound, all)
			refA := refDeroutingApprox(env, q, bound)
			compareDerouting(t, env, qname+"/approx/allNodes", batchA, refA)
			batchA.Release()
		}
	}
}

// TestBatchedDeroutingEdgeCases pins the corners the ranking methods can
// reach: a return-node-only target set (no candidates survived filtering),
// anchor==return with a zero-cost baseline, and a bound too small to settle
// any charger — in each the batched maps must behave exactly like the
// full-ball maps at the nodes the caller may read.
func TestBatchedDeroutingEdgeCases(t *testing.T) {
	env := testEnv(t)
	q := testQuery(env).normalized()

	// No candidates: deroutTargets still carries the return node, and the
	// anchored query prices the anchor itself at derouting zero.
	targets := deroutTargets(nil, q.ReturnNode)
	if len(targets) != 1 || targets[0] != q.ReturnNode {
		t.Fatalf("deroutTargets(nil, ret) = %v", targets)
	}
	d := env.deroutingMapsTo(q, math.Inf(1), targets)
	if c, ok := d.Cost(q.AnchorNode); !ok || c.Min != 0 || c.Max != 0 {
		t.Fatalf("anchored return-only targets: Cost(anchor) = %v, %v; want [0,0], true", c, ok)
	}
	d.Release()

	// Bound smaller than the hop to any neighbor: every charger off the
	// anchor must be unreachable through both paths.
	tiny := 1e-9
	targets = deroutTargets(allChargerPtrs(env), q.ReturnNode)
	batch := env.deroutingMapsTo(q, tiny, targets)
	full := env.deroutingMaps(q, tiny)
	for _, n := range targets {
		_, bok := batch.Cost(n)
		_, fok := full.Cost(n)
		if bok != fok {
			t.Fatalf("tiny bound: Cost reachability at %d batch=%v full=%v", n, bok, fok)
		}
		if bok && n != q.AnchorNode {
			t.Fatalf("tiny bound priced charger node %d", n)
		}
	}
	batch.Release()
	full.Release()

	// The Fors route nil target sets to the full-ball variants (callers
	// without a candidate set keep the old semantics).
	dm := env.deroutingMapsFor(q, math.Inf(1), nil)
	da := env.deroutingMapsApproxFor(q, math.Inf(1), nil)
	refE := refDeroutingExact(env, q, math.Inf(1))
	refA := refDeroutingApprox(env, q, math.Inf(1))
	compareDerouting(t, env, "nilTargets/exact", dm, refE)
	compareDerouting(t, env, "nilTargets/approx", da, refA)
	dm.Release()
	da.Release()
}

// TestBatchedDeroutingCounters checks the observability contract: batched
// computations tick cknn_derouting_batched_total and count their targets.
func TestBatchedDeroutingCounters(t *testing.T) {
	env := testEnv(t)
	q := testQuery(env).normalized()
	targets := deroutTargets(allChargerPtrs(env), q.ReturnNode)
	batchedBefore := met.deroutBatched.Value()
	targetsBefore := met.deroutTargets.Value()
	d := env.deroutingMapsTo(q, math.Inf(1), targets)
	d.Release()
	da := env.deroutingMapsApproxTo(q, math.Inf(1), targets)
	da.Release()
	if got := met.deroutBatched.Value() - batchedBefore; got != 2 {
		t.Errorf("deroutBatched advanced by %d, want 2", got)
	}
	if got := met.deroutTargets.Value() - targetsBefore; got != 2*uint64(len(targets)) {
		t.Errorf("deroutTargets advanced by %d, want %d", got, 2*len(targets))
	}
}

// BenchmarkRankBatchedVsFull prices a full Rank call per method with the
// batched target-aware derouting (production) against the full-ball oracle
// path (FullDerouting), isolating what the batching buys end to end.
func BenchmarkRankBatchedVsFull(b *testing.B) {
	env := testEnv(b)
	q := testQuery(env)
	for _, mode := range []struct {
		name string
		full bool
	}{{"Batched", false}, {"FullBall", true}} {
		for _, m := range []Method{NewBruteForce(env), NewIndexQuadtree(env)} {
			b.Run(m.Name()+"/"+mode.name, func(b *testing.B) {
				env.FullDerouting = mode.full
				defer func() { env.FullDerouting = false }()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Rank(q)
				}
			})
		}
	}
}

// TestBatchedDeroutingZeroAllocSteadyState asserts the acceptance
// criterion on the cknn layer: with the pool warm and the target slice in
// hand, batched derouting (build, read every target, release) allocates
// nothing in steady state.
func TestBatchedDeroutingZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	env := testEnv(t)
	q := testQuery(env).normalized()
	budget := q.RadiusM / avgUrbanSpeed
	targets := deroutTargets(allChargerPtrs(env), q.ReturnNode)
	for i := 0; i < 4; i++ {
		d := env.deroutingMapsTo(q, budget, targets)
		d.Release()
	}
	for name, run := range map[string]func() DeroutingMaps{
		"exact":  func() DeroutingMaps { return env.deroutingMapsTo(q, budget, targets) },
		"approx": func() DeroutingMaps { return env.deroutingMapsApproxTo(q, budget, targets) },
	} {
		allocs := testing.AllocsPerRun(20, func() {
			d := run()
			for _, n := range targets {
				d.Cost(n)
				d.TravelTo(n)
			}
			d.Release()
		})
		if allocs != 0 {
			t.Errorf("%s batched derouting allocates %.1f allocs/op steady-state, want 0", name, allocs)
		}
	}
}

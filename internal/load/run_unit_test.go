package load

import (
	"net/http"
	"testing"
	"time"
)

func TestResultRates(t *testing.T) {
	r := Result{Valid: 50, Shed: 25, Sent: 100, Elapsed: 2 * time.Second}
	if got := r.Goodput(); got != 25 {
		t.Fatalf("Goodput=%v, want 25", got)
	}
	if got := r.ShedRate(); got != 0.25 {
		t.Fatalf("ShedRate=%v, want 0.25", got)
	}
	var zero Result
	if zero.Goodput() != 0 || zero.ShedRate() != 0 {
		t.Fatalf("zero-valued result must rate 0, got %v / %v", zero.Goodput(), zero.ShedRate())
	}
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Options{}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := NewRunner(Options{BaseURL: "http://x", Plane: Plane("carrier-pigeon")}); err == nil {
		t.Fatal("unknown plane accepted")
	}
	r, err := NewRunner(Options{BaseURL: "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	o := r.opts
	if o.Plane != PlaneJSON || o.Timeout != 10*time.Second || o.Workers != 64 || o.HTTPClient == nil {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if tr, ok := o.HTTPClient.Transport.(*http.Transport); !ok || tr.DisableCompression {
		t.Fatalf("JSON-plane default client misconfigured: %#v", o.HTTPClient.Transport)
	}

	// A caller-supplied client is kept verbatim.
	custom := &http.Client{Timeout: time.Second}
	r2, err := NewRunner(Options{BaseURL: "http://x", Plane: PlaneWire, HTTPClient: custom})
	if err != nil {
		t.Fatal(err)
	}
	if r2.opts.HTTPClient != custom {
		t.Fatal("caller-supplied HTTP client replaced")
	}
}

func TestScheduleSpan(t *testing.T) {
	if got := (Schedule{}).Span(); got != 0 {
		t.Fatalf("empty span %v", got)
	}
	s := Schedule{0, time.Second, 3 * time.Second}
	if got := s.Span(); got != 3*time.Second {
		t.Fatalf("span %v, want 3s", got)
	}
}

func TestFmtLat(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		2500 * time.Microsecond: "2.5ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtLat(d); got != want {
			t.Fatalf("fmtLat(%v)=%q, want %q", d, got, want)
		}
	}
}

package load

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ecocharge/internal/obs"
)

// synthStep fabricates a completed rate step: n latencies around lat, with
// the outcome counts given. Elapsed is pinned to exactly 1 s so goodput
// equals the valid count.
func synthStep(plane Plane, rate float64, valid, degraded, shed, invalid, errors int, lat time.Duration) Result {
	h := &obs.LogHistogram{}
	n := valid + degraded + shed + invalid + errors
	for i := 0; i < n; i++ {
		h.Observe(lat + time.Duration(i)*time.Microsecond)
	}
	return Result{
		Plane: plane, RateHz: rate, Mode: "open",
		Offered: n, Sent: n,
		Valid: valid, Degraded: degraded, Shed: shed, Invalid: invalid, Errors: errors,
		Elapsed: time.Second, MaxLat: lat, Latency: h,
	}
}

func TestKneeSelection(t *testing.T) {
	steps := []Result{
		synthStep(PlaneWire, 100, 100, 0, 0, 0, 0, time.Millisecond),  // holds
		synthStep(PlaneWire, 200, 150, 45, 0, 0, 5, time.Millisecond), // holds via degraded
		synthStep(PlaneWire, 400, 200, 0, 200, 0, 0, time.Second),     // saturated: 50% goodput
	}
	idx, ok := Knee(steps)
	if !ok || idx != 1 {
		t.Fatalf("Knee=%d,%v, want 1,true", idx, ok)
	}

	// A contract violation disqualifies a step no matter its goodput.
	steps[1].Invalid, steps[1].Valid = 1, steps[1].Valid-1
	if idx, _ := Knee(steps); idx != 0 {
		t.Fatalf("invalid step still counted as knee: idx=%d", idx)
	}

	// All saturated: no knee.
	if _, ok := Knee(steps[2:]); ok {
		t.Fatal("knee reported for an all-saturated sweep")
	}
	if _, ok := Knee(nil); ok {
		t.Fatal("knee reported for an empty sweep")
	}
}

func TestWriteReportMarksKneeAndViolations(t *testing.T) {
	steps := []Result{
		synthStep(PlaneJSON, 100, 100, 0, 0, 0, 0, 900*time.Microsecond),
		synthStep(PlaneJSON, 400, 100, 0, 0, 1, 299, 2*time.Second),
	}
	steps[1].FirstViolation = "offering table misordered at rank 2"
	var b strings.Builder
	if err := WriteReport(&b, steps); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<-- knee", "sat", "first violation: offering table misordered", "µs", "s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestBenchRowsRoundTrip(t *testing.T) {
	steps := []Result{
		synthStep(PlaneJSON, 100, 95, 2, 2, 0, 1, 3*time.Millisecond),
		synthStep(PlaneWire, 100, 100, 0, 0, 0, 0, time.Millisecond),
	}
	rows := BenchRows("Oldenburg", "gateway", steps)
	if len(rows) != 2 {
		t.Fatalf("%d rows for 2 steps", len(rows))
	}
	r := rows[0]
	if r.Fig != "load-knee" || r.Dataset != "Oldenburg" || r.Method != "gateway-json" || r.Config != "rate=100" {
		t.Fatalf("row key wrong: %+v", r)
	}
	if r.Goodput != steps[0].Goodput() || r.Goodput != 95 {
		t.Fatalf("goodput %v, want 95 (1s elapsed, 95 valid)", r.Goodput)
	}
	if r.SCPct != 95 || r.Offered != 100 || r.Degraded != 2 || r.Errors != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.ShedPct != steps[0].ShedRate()*100 || r.ShedPct != 2 {
		t.Fatalf("shed_pct %v, want 2", r.ShedPct)
	}
	if r.FtMs < 3 || r.FtMs > 3.3 || r.P50Ms < 3 || r.P999Ms < r.P50Ms {
		t.Fatalf("latency columns implausible: %+v", r)
	}

	// The JSON export must decode into rows benchdiff can key on.
	var b strings.Builder
	if err := WriteJSONRows(&b, rows); err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	for _, key := range []string{"fig", "dataset", "method", "config", "sc_pct", "ft_ms", "goodput"} {
		if _, ok := back[0][key]; !ok {
			t.Fatalf("export row lacks %q: %v", key, back[0])
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	seen := map[string]bool{}
	for o := Outcome(0); o < outcomeCount; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "outcome(") {
			t.Fatalf("outcome %d has no name", o)
		}
		if seen[s] {
			t.Fatalf("duplicate outcome name %q", s)
		}
		seen[s] = true
	}
	if len(seen) != int(outcomeCount) {
		t.Fatalf("%d distinct names for %d outcomes", len(seen), outcomeCount)
	}
}

// Package spatial provides the in-memory spatial indexes EcoCharge queries:
// a point quadtree (the paper's Index-Quadtree baseline, §V.A), a uniform
// grid with iterative-deepening ring search (the main-memory structure of
// the CkNN literature surveyed in §VI.B), and a brute-force reference used
// both as the optimal baseline and as the oracle in property tests.
package spatial

import (
	"sort"

	"ecocharge/internal/geo"
)

// Item is an indexed point with an opaque identifier (charger ID, node ID…).
type Item struct {
	P  geo.Point
	ID int64
}

// Neighbor is a query result: an item and its distance from the query point.
type Neighbor struct {
	Item
	Dist float64 // meters
}

// Index is the common contract of all spatial indexes in this package.
// Implementations are not safe for concurrent mutation; concurrent reads
// are safe once loading has finished, matching how the framework uses them
// (load once, query continuously).
type Index interface {
	// Insert adds an item. Duplicate positions and IDs are permitted.
	Insert(Item)
	// KNN returns up to k nearest items to q, closest first. Ties are
	// broken by ID for determinism.
	KNN(q geo.Point, k int) []Neighbor
	// Within returns all items within radius meters of q, closest first.
	Within(q geo.Point, radius float64) []Neighbor
	// Len reports the number of stored items.
	Len() int
}

// sortNeighbors orders by distance then ID, the deterministic order every
// Index implementation must produce.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		//ecolint:ignore floateq sort comparator: tolerance would break strict weak ordering
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// BruteForce is the trivial Index: a flat slice scanned per query. It is
// the correctness oracle and the "Brute-Force Method" baseline of the
// evaluation.
type BruteForce struct {
	items []Item
}

// NewBruteForce returns an empty brute-force index.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Insert implements Index.
func (b *BruteForce) Insert(it Item) { b.items = append(b.items, it) }

// Len implements Index.
func (b *BruteForce) Len() int { return len(b.items) }

// Items exposes the raw storage for full scans (the brute-force ranking
// method iterates every charger regardless of distance).
func (b *BruteForce) Items() []Item { return b.items }

// KNN implements Index by scanning all items.
func (b *BruteForce) KNN(q geo.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	ns := make([]Neighbor, 0, len(b.items))
	for _, it := range b.items {
		ns = append(ns, Neighbor{Item: it, Dist: geo.Distance(q, it.P)})
	}
	sortNeighbors(ns)
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// Within implements Index by scanning all items.
func (b *BruteForce) Within(q geo.Point, radius float64) []Neighbor {
	var ns []Neighbor
	for _, it := range b.items {
		if d := geo.Distance(q, it.P); d <= radius {
			ns = append(ns, Neighbor{Item: it, Dist: d})
		}
	}
	sortNeighbors(ns)
	return ns
}

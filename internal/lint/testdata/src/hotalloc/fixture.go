// Package fixture exercises the hotalloc analyzer: the file poses as part
// of internal/roadnet (see the import path in lint_test.go), where
// map[NodeID] types and container/heap imports are flagged.
package fixture

import (
	"container/heap" // flagged: interface boxing on the hot path
	"sort"
)

// NodeID mirrors the real roadnet.NodeID.
type NodeID int32

// BadSearchState reintroduces per-search maps: both field types flagged.
type BadSearchState struct {
	dist map[NodeID]float64
	prev map[NodeID]NodeID
}

// BadExpand allocates a node map per call: the make type is flagged, and so
// is the return type.
func BadExpand(n int) map[NodeID]float64 {
	out := make(map[NodeID]float64, n)
	return out
}

// GoodDense is the intended shape: dense arrays, no maps keyed by NodeID.
func GoodDense(n int) []float64 {
	return make([]float64, n)
}

// GoodOtherKeys shows that only NodeID keys are the hot-path smell.
func GoodOtherKeys() (map[int64]float64, map[string]NodeID) {
	return map[int64]float64{}, map[string]NodeID{}
}

// SuppressedWitness stands in for offline preprocessing, where a small map
// is fine and the escape hatch documents why.
func SuppressedWitness(src NodeID) float64 {
	//ecolint:ignore hotalloc offline preprocessing, not on the query path
	dist := map[NodeID]float64{src: 0}
	return dist[src]
}

// useHeap keeps the flagged import referenced so the fixture type-checks.
func useHeap(h heap.Interface) { sort.Sort(h) }

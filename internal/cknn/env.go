package cknn

import (
	"fmt"
	"time"

	"ecocharge/internal/charger"
	"ecocharge/internal/ec"
	"ecocharge/internal/geo"
	"ecocharge/internal/interval"
	"ecocharge/internal/roadnet"
)

// Env bundles the world every ranking method queries: the road network,
// the charger inventory, and the three Estimated Component models. Build it
// once per scenario with NewEnv; it is immutable and safe for concurrent
// readers.
type Env struct {
	Graph    *roadnet.Graph
	Chargers *charger.Set
	Solar    *ec.SolarModel
	Avail    *ec.AvailabilityModel
	Traffic  *ec.TrafficModel
	// Wind optionally adds wind-turbine production to sites with WindKW
	// capacity (the paper's RES integration names both panels and
	// turbines). Nil disables wind.
	Wind *ec.WindModel

	// MaxLKW normalizes the L component: the environment's maximum
	// effective charging level max_b min(rate_b, panel_b).
	MaxLKW float64
	// MaxDeroutSec normalizes the D component: the derouting budget in
	// seconds. Chargers costing more than this to visit are treated as
	// maximally expensive (D = 1).
	MaxDeroutSec float64

	// Faults, when non-nil, can fail individual component fetches: the
	// engine then degrades that component to its ignorance bound [0,1]
	// and tags the entry instead of erroring (the graceful-degradation
	// contract of docs/resilience.md). Assign it before the environment is
	// shared between goroutines; nil means every source always serves.
	Faults FaultPolicy

	// FullDerouting forces every ranking method back onto the full-ball
	// derouting expansions instead of the batched target-aware ones. The
	// two paths are byte-identical at the candidate nodes; this switch
	// exists so the differential suite can run the per-charger oracle
	// through unmodified methods. Assign it before the environment is
	// shared between goroutines; production leaves it false.
	FullDerouting bool
}

// Component names one Estimated Component for fault bookkeeping.
type Component uint8

// The three Estimated Components of the paper, in bitmask order.
const (
	CompL Component = iota // sustainable charging level (weather source)
	CompA                  // availability (busy-timetable source)
	CompD                  // derouting cost (traffic source)
)

// String returns the component's single-letter name.
func (c Component) String() string {
	switch c {
	case CompL:
		return "L"
	case CompA:
		return "A"
	case CompD:
		return "D"
	}
	return "?"
}

// FaultPolicy decides per fetch whether the external source backing a
// component could serve it. Implementations must be safe for concurrent
// use and pure over (component, charger, issue time) between harness
// steps: the engine may consult the same decision more than once (prune
// bound and evaluation) and the parallel filtering phase must see the
// answers the sequential oracle saw.
type FaultPolicy interface {
	// FetchOK reports whether the source backing comp served a fresh
	// estimate for the charger, for a query issued at the given time.
	FetchOK(comp Component, chargerID int64, issued time.Time) bool
}

// sourceOK is the nil-tolerant form of the policy check.
func (env *Env) sourceOK(comp Component, chargerID int64, issued time.Time) bool {
	return env.Faults == nil || env.Faults.FetchOK(comp, chargerID, issued)
}

// LForecast is the fallible form of ProductionForecast: ok is false when
// the weather source failed or served stale data, in which case the caller
// must degrade L to its ignorance bound.
func (env *Env) LForecast(c *charger.Charger, at, issued time.Time) (interval.I, bool) {
	if !env.sourceOK(CompL, c.ID, issued) {
		return interval.I{}, false
	}
	return env.ProductionForecast(c, at, issued), true
}

// AForecast is the fallible availability estimate: ok is false when the
// busy-timetable source failed the fetch.
func (env *Env) AForecast(c *charger.Charger, at, issued time.Time) (interval.I, bool) {
	if !env.sourceOK(CompA, c.ID, issued) {
		return interval.I{}, false
	}
	return env.Avail.ForecastAvailability(c.ID, &c.Timetable, at, issued), true
}

// DSourceOK reports whether the traffic source could price the charger's
// derouting for an estimate issued at the given time. The road network
// itself is local, so a traffic outage degrades only the congestion band —
// the engine keeps the graph-derived ETA and widens D to [0,1].
func (env *Env) DSourceOK(chargerID int64, issued time.Time) bool {
	return env.sourceOK(CompD, chargerID, issued)
}

// EnvConfig carries the optional knobs of NewEnv.
type EnvConfig struct {
	// MaxDeroutSec overrides the derouting normalizer; 0 derives it from
	// RadiusM (a round trip at urban average speed).
	MaxDeroutSec float64
	// RadiusM is the default search radius used to derive MaxDeroutSec.
	// 0 selects 50 km, the paper's default R.
	RadiusM float64
	// Wind enables wind production for chargers with WindKW capacity.
	Wind *ec.WindModel
}

// avgUrbanSpeed is the mixed urban/arterial speed used to convert the
// radius into a derouting time budget.
const avgUrbanSpeed = 50.0 / 3.6 // m/s

// NewEnv validates and assembles an environment.
func NewEnv(g *roadnet.Graph, set *charger.Set, solar *ec.SolarModel, avail *ec.AvailabilityModel, traffic *ec.TrafficModel, cfg EnvConfig) (*Env, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("cknn: environment needs a non-empty road network")
	}
	if set == nil {
		return nil, fmt.Errorf("cknn: environment needs a charger set")
	}
	if solar == nil || avail == nil || traffic == nil {
		return nil, fmt.Errorf("cknn: environment needs all three EC models")
	}
	env := &Env{Graph: g, Chargers: set, Solar: solar, Avail: avail, Traffic: traffic, Wind: cfg.Wind}
	for _, c := range set.All() {
		if l := effectiveKW(&c); l > env.MaxLKW {
			env.MaxLKW = l
		}
	}
	radius := cfg.RadiusM
	if radius <= 0 {
		radius = 50000
	}
	env.MaxDeroutSec = cfg.MaxDeroutSec
	if env.MaxDeroutSec <= 0 {
		// One-way radius crossing at mixed urban speed: a charger whose
		// visit costs more than driving R is maximally penalized (D = 1).
		env.MaxDeroutSec = radius / avgUrbanSpeed
	}
	return env, nil
}

// effectiveKW is the charging level a site can sustain from renewables
// alone: production is capped by both the installed RES capacity and the
// charger rate.
func effectiveKW(c *charger.Charger) float64 {
	if res := c.RESKW(); res < c.Rate.KW() {
		return res
	}
	return c.Rate.KW()
}

// ProductionForecast is the total renewable production interval at the
// charger at time at, for an estimate issued at issued: solar plus wind
// when the environment has a wind model and the site has turbines.
func (env *Env) ProductionForecast(c *charger.Charger, at, issued time.Time) interval.I {
	prod := env.Solar.Forecast(c.Site(), at, issued)
	if env.Wind != nil && c.WindKW > 0 {
		prod = prod.Add(env.Wind.Forecast(c.WindSite(), at, issued))
	}
	return prod
}

// ProductionTruth is the actual total renewable production in kW.
func (env *Env) ProductionTruth(c *charger.Charger, at time.Time) float64 {
	p := env.Solar.Truth(c.Site(), at)
	if env.Wind != nil && c.WindKW > 0 {
		p += env.Wind.Truth(c.WindSite(), at)
	}
	return p
}

// Query is one CkNN-EC evaluation point: the vehicle's anchor position on
// its trip, the time the estimate is issued, and the search parameters.
type Query struct {
	// Anchor is the query position (a segment anchor of the trip).
	Anchor geo.Point
	// AnchorNode is the road-network node of the anchor.
	AnchorNode roadnet.NodeID
	// ReturnNode is where the vehicle rejoins its route after charging
	// (the end of the current segment or the next segment's anchor,
	// whichever the caller selects). Invalid means "return to the anchor".
	ReturnNode roadnet.NodeID
	// Now is when the estimate is issued (forecast horizons are measured
	// from it).
	Now time.Time
	// ETABase is the arrival time at the anchor; charger ETAs add the
	// derouting travel time to it.
	ETABase time.Time
	// K is the number of chargers requested in the Offering Table.
	K int
	// RadiusM is the user-configured search radius R.
	RadiusM float64
	// Weights are the SC objective weights; zero value selects equal
	// weights.
	Weights Weights
}

// normalized fills defaults and returns the query ready for evaluation.
func (q Query) normalized() Query {
	if q.K <= 0 {
		q.K = 3
	}
	if q.RadiusM <= 0 {
		q.RadiusM = 50000
	}
	if q.Weights == (Weights{}) {
		q.Weights = EqualWeights()
	} else {
		q.Weights = q.Weights.Normalized()
	}
	if q.ETABase.IsZero() {
		q.ETABase = q.Now
	}
	if q.ReturnNode < 0 {
		q.ReturnNode = q.AnchorNode
	}
	return q
}

package eis

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// Middleware wraps the EIS handler with production hygiene: panic
// recovery, optional request logging, and a hard cap on in-flight
// requests (the paper's EIS serves a whole fleet; an overloaded Mode 2
// server should shed load instead of queueing unboundedly).
type Middleware struct {
	// MaxInFlight caps concurrent requests; 0 disables shedding.
	MaxInFlight int
	// RetryAfter is the delay stamped on shed responses. A shard under
	// sustained overload raises it so hedged gateway traffic stays away
	// longer instead of re-hitting every second. 0 selects 1 s.
	RetryAfter time.Duration
	// Logger receives one line per request; nil disables logging.
	Logger *log.Logger

	slots chan struct{}
}

// Wrap applies the middleware to h.
func (m *Middleware) Wrap(h http.Handler) http.Handler {
	if m.MaxInFlight > 0 {
		m.slots = make(chan struct{}, m.MaxInFlight)
	}
	retryAfter := retryAfterSeconds(m.RetryAfter)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m.slots != nil {
			select {
			case m.slots <- struct{}{}:
				defer func() { <-m.slots }()
			default:
				w.Header().Set("Retry-After", retryAfter)
				http.Error(w, `{"error":"server overloaded"}`, http.StatusServiceUnavailable)
				if m.Logger != nil {
					m.Logger.Printf("eis: shed %s %s", r.Method, r.URL.Path)
				}
				return
			}
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if m.Logger != nil {
					m.Logger.Printf("eis: panic on %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				}
				// Headers may already be gone; best effort.
				http.Error(sw, `{"error":"internal error"}`, http.StatusInternalServerError)
				return
			}
			if m.Logger != nil {
				m.Logger.Printf("eis: %s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Millisecond))
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// statusWriter records the response code for the log line.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wroteHeader {
		sw.status = code
		sw.wroteHeader = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wroteHeader = true
	return sw.ResponseWriter.Write(b)
}

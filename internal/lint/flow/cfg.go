// Package flow is the control-flow and dataflow substrate of ecolint's
// path-sensitive analyzers (leakrelease, lockheld, ctxflow — see
// docs/lint.md). It builds a per-function control-flow graph from the
// standard library's go/ast alone, runs a generic worklist fixpoint over
// it (solve.go), and summarizes small same-package helper functions so the
// analyzers can reason across calls without a whole-program analysis
// (summary.go).
//
// The graph deliberately mirrors the shape of golang.org/x/tools/go/cfg —
// basic blocks holding simple statements and the conditions of the
// branches that end them — but is built from scratch on the standard
// library, like everything else in ecolint.
package flow

import (
	"go/ast"
	"go/token"
)

// Term describes how a block transfers control to the synthetic Exit
// block, for blocks that do.
type Term uint8

const (
	// TermNone: the block does not edge to Exit.
	TermNone Term = iota
	// TermReturn: the block ends in an explicit return statement.
	TermReturn
	// TermPanic: the block ends in a call that never returns (panic,
	// os.Exit, log.Fatal*).
	TermPanic
	// TermFallthrough: control falls off the end of the function body
	// (implicit return of a function without results).
	TermFallthrough
)

// Block is one basic block: a maximal run of straight-line code. Nodes
// holds simple statements and the condition expressions of the branch
// that ends the block, in execution order; nested statement bodies (the
// arms of an if, the body of a loop) live in successor blocks, never
// inside Nodes, so walking Nodes visits every expression exactly once.
// Function literals are opaque: their bodies belong to their own graph
// (see Inspect).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Term is how this block reaches Exit, when it does.
	Term Term
}

// Loop records one for/range statement: its header block, the set of
// blocks belonging to the loop (header, body, post), and the block
// control reaches after a natural exit or break.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	Head *Block
	// Blocks is every block inside the loop, header included.
	Blocks []*Block
	After  *Block
}

// HasExit reports whether any edge leaves the loop's block set (a break,
// return, goto out, a loop condition, or a range ending). A loop without
// one spins forever.
func (l *Loop) HasExit() bool {
	in := make(map[*Block]bool, len(l.Blocks))
	for _, b := range l.Blocks {
		in[b] = true
	}
	for _, b := range l.Blocks {
		if b.Term != TermNone {
			return true
		}
		for _, s := range b.Succs {
			if !in[s] {
				return true
			}
		}
	}
	return false
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is synthetic: every return, panic and fall-off-the-end edge
	// leads here. It holds no nodes.
	Exit *Block
	// Defers lists every defer statement in the body, in registration
	// order. Deferred calls run at every path out of the function,
	// including panics.
	Defers []*ast.DeferStmt
	// Loops lists every for/range statement with its block membership.
	Loops []*Loop
	// NonBlocking marks send/receive statements that cannot block: the
	// communication clauses of a select that has a default clause.
	NonBlocking map[ast.Node]bool
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{NonBlocking: make(map[ast.Node]bool)}
	b := &builder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.patchGotos()
	// Fall-off-the-end: the final block implicitly returns, but only when
	// control can actually reach it (the tail after an infinite loop or an
	// empty select is dead code, not an exit path).
	if b.cur != nil && b.cur.Term == TermNone && !b.terminated &&
		(b.cur == g.Entry || reachableFromEntry(g, b.cur)) {
		b.cur.Term = TermFallthrough
		b.edge(b.cur, g.Exit)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// FuncGraph builds the graph of a *ast.FuncDecl or *ast.FuncLit. It
// returns nil for declarations without a body.
func FuncGraph(fn ast.Node) *Graph {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if fn.Body == nil {
			return nil
		}
		return New(fn.Body)
	case *ast.FuncLit:
		return New(fn.Body)
	}
	return nil
}

// labelInfo resolves the three uses of a label: break target, continue
// target and goto target.
type labelInfo struct {
	breakTo    *Block
	continueTo *Block
	gotoBlock  *Block
}

// frame is one enclosing breakable construct (loop, switch, select).
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
	loop       *Loop  // non-nil for loops, collects member blocks
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []*frame
	labels map[string]*labelInfo
	// pending gotos to labels not yet seen.
	gotos []pendingGoto
	// terminated is set when the current block ended in a jump, so the
	// fall-off-the-end edge is not added twice.
	terminated bool
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	for _, f := range b.frames {
		if f.loop != nil {
			f.loop.Blocks = append(f.loop.Blocks, blk)
		}
	}
	return blk
}

// reachableFromEntry reports whether blk is reachable from the entry
// block along successor edges (Preds are not wired yet when this runs).
func reachableFromEntry(g *Graph, blk *Block) bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == blk {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// start opens a fresh current block with an edge from the old one.
func (b *builder) start(blk *Block) {
	if b.cur != nil && b.cur.Term == TermNone && !b.terminated {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	b.terminated = false
}

// jump ends the current block with an edge to target; following code is
// unreachable until a new block starts.
func (b *builder) jump(target *Block) {
	if b.cur != nil && !b.terminated {
		b.edge(b.cur, target)
	}
	b.terminated = true
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	if b.terminated {
		// Unreachable code still gets blocks so positions stay addressable.
		b.cur = b.newBlock()
		b.terminated = false
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur.Term = TermReturn
		b.jump(b.g.Exit)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if neverReturns(s.X) {
			b.cur.Term = TermPanic
			b.jump(b.g.Exit)
		}
	default:
		// Assignments, declarations, sends, inc/dec, go statements and
		// empty statements are simple nodes.
		b.add(s)
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	// The labeled statement starts a fresh block so gotos have a target.
	blk := b.newBlock()
	b.start(blk)
	li.gotoBlock = blk
	b.stmt(s.Stmt, name)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then)
	b.cur, b.terminated = then, false
	b.stmtList(s.Body.List)
	b.jump(after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur, b.terminated = els, false
		b.stmt(s.Else, "")
		b.jump(after)
	} else {
		b.edge(cond, after)
	}
	b.cur, b.terminated = after, false
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	loop := &Loop{Stmt: s}
	b.g.Loops = append(b.g.Loops, loop)
	// The after-block is allocated before the loop's frame is pushed, so
	// it joins enclosing loops but not this one.
	after := b.newBlock()
	loop.After = after

	f := &frame{label: label, breakTo: after, loop: loop}
	b.frames = append(b.frames, f)

	head := b.newBlock()
	loop.Head = head
	b.start(head)
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(head, after)
	}

	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		f.continueTo = post
	} else {
		f.continueTo = head
	}
	if label != "" {
		b.labels[label].breakTo = after
		b.labels[label].continueTo = f.continueTo
	}

	body := b.newBlock()
	b.edge(head, body)
	b.cur, b.terminated = body, false
	b.stmtList(s.Body.List)
	if post != nil {
		b.jump(post)
	} else {
		b.jump(head)
	}

	b.frames = b.frames[:len(b.frames)-1]
	b.cur, b.terminated = after, false
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	loop := &Loop{Stmt: s}
	b.g.Loops = append(b.g.Loops, loop)
	after := b.newBlock()
	loop.After = after

	f := &frame{label: label, breakTo: after, loop: loop}
	b.frames = append(b.frames, f)

	head := b.newBlock()
	loop.Head = head
	b.start(head)
	// Only the ranged expression and the key/value targets are header
	// nodes; appending the RangeStmt itself would duplicate the body
	// statements, which live in the body blocks.
	head.Nodes = append(head.Nodes, s.X)
	if s.Key != nil {
		head.Nodes = append(head.Nodes, s.Key)
	}
	if s.Value != nil {
		head.Nodes = append(head.Nodes, s.Value)
	}
	b.edge(head, after) // every range can end
	f.continueTo = head
	if label != "" {
		b.labels[label].breakTo = after
		b.labels[label].continueTo = head
	}

	body := b.newBlock()
	b.edge(head, body)
	b.cur, b.terminated = body, false
	b.stmtList(s.Body.List)
	b.jump(head)

	b.frames = b.frames[:len(b.frames)-1]
	b.cur, b.terminated = after, false
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body, label, func(cc *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, 0, len(cc.List))
		for _, e := range cc.List {
			nodes = append(nodes, e)
		}
		return nodes
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, label, func(cc *ast.CaseClause) []ast.Node { return nil })
}

// caseClauses builds the clause blocks shared by value and type switches.
// headNodes extracts the per-clause guard nodes (the case expressions).
func (b *builder) caseClauses(body *ast.BlockStmt, label string, headNodes func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	after := b.newBlock()
	f := &frame{label: label, breakTo: after}
	b.frames = append(b.frames, f)
	if label != "" {
		b.labels[label].breakTo = after
	}

	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		blk.Nodes = append(blk.Nodes, headNodes(cc)...)
		b.edge(head, blk)
		clauseBlocks = append(clauseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.cur, b.terminated = clauseBlocks[i], false
		ft := b.buildClauseBody(cc.Body)
		if ft && i+1 < len(clauseBlocks) {
			// fallthrough: the next clause body runs unconditionally.
			b.jump(clauseBlocks[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault || len(clauseBlocks) == 0 {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur, b.terminated = after, false
}

// buildClauseBody builds a case clause body, reporting whether it ends in
// a fallthrough statement.
func (b *builder) buildClauseBody(list []ast.Stmt) bool {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			return true
		}
		b.stmt(s, "")
	}
	return false
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.newBlock()
	f := &frame{label: label, breakTo: after}
	b.frames = append(b.frames, f)
	if label != "" {
		b.labels[label].breakTo = after
	}

	hasDefault := false
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	anyClause := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		anyClause = true
		blk := b.newBlock()
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
			if hasDefault {
				b.g.NonBlocking[cc.Comm] = true
			}
		}
		b.edge(head, blk)
		b.cur, b.terminated = blk, false
		b.stmtList(cc.Body)
		b.jump(after)
	}
	if !anyClause {
		// select{} blocks forever: no successors at all.
		b.terminated = true
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur, b.terminated = after, false
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		b.add(s)
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
				b.jump(li.breakTo)
				return
			}
		}
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].breakTo != nil {
				b.jump(b.frames[i].breakTo)
				return
			}
		}
		b.terminated = true
	case token.CONTINUE:
		b.add(s)
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
				b.jump(li.continueTo)
				return
			}
		}
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].continueTo != nil {
				b.jump(b.frames[i].continueTo)
				return
			}
		}
		b.terminated = true
	case token.GOTO:
		b.add(s)
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.gotoBlock != nil {
				b.jump(li.gotoBlock)
				return
			}
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.terminated = true
	case token.FALLTHROUGH:
		// Handled by buildClauseBody; a stray fallthrough is a compile
		// error, ignore.
		b.add(s)
	}
}

func (b *builder) patchGotos() {
	for _, pg := range b.gotos {
		if li := b.labels[pg.label]; li != nil && li.gotoBlock != nil {
			b.edge(pg.from, li.gotoBlock)
		}
	}
}

// neverReturns reports (syntactically) whether the expression is a call
// that never returns control: panic, os.Exit, log.Fatal and friends.
func neverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fn.Sel.Name == "Exit"
		case "log":
			switch fn.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		case "runtime":
			return fn.Sel.Name == "Goexit"
		}
	}
	return false
}

// Inspect walks n in depth-first order like ast.Inspect but does not
// descend into function literal bodies: a literal's statements belong to
// its own control-flow graph, not the enclosing one.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			f(n)
			return false
		}
		return f(n)
	})
}

// Functions yields every function-like in the file — declarations with
// bodies and function literals, literals nested anywhere — so analyzers
// can treat each as an independent unit.
func Functions(file *ast.File, visit func(name string, fn ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Name.Name, n, n.Body)
			}
		case *ast.FuncLit:
			visit("func literal", n, n.Body)
		}
		return true
	})
}

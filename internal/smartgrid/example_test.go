package smartgrid_test

import (
	"fmt"
	"time"

	"ecocharge/internal/smartgrid"
)

// Compare the cost of a 20 kWh session at the weekday evening peak versus
// the night off-peak band.
func ExampleAdvisor_SessionCost() {
	advisor := smartgrid.NewAdvisor(smartgrid.DefaultTariff(), smartgrid.NewGridSignal())
	peak := time.Date(2024, 6, 18, 18, 0, 0, 0, time.UTC)
	night := time.Date(2024, 6, 19, 1, 0, 0, 0, time.UTC)
	fmt.Printf("peak:     %s €\n", advisor.SessionCost(peak, 20))
	fmt.Printf("off-peak: %s €\n", advisor.SessionCost(night, 20))
	// Output:
	// peak:     [8.4, 8.4] €
	// off-peak: [3.6, 3.6] €
}

func ExampleTariff_BandAt() {
	t := smartgrid.DefaultTariff()
	fmt.Println(t.BandAt(time.Date(2024, 6, 18, 3, 0, 0, 0, time.UTC)))
	fmt.Println(t.BandAt(time.Date(2024, 6, 18, 18, 0, 0, 0, time.UTC)))
	// Output:
	// off-peak
	// peak
}
